package xsketch_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"xsketch"
)

// TestPublicAPIQuickstart exercises the documented public flow end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	doc, err := xsketch.ParseXMLString(`
<bib>
  <author><name/><paper><year>2001</year><keyword/></paper></author>
  <author><name/><paper><year>1999</year><keyword/><keyword/></paper></author>
</bib>`)
	if err != nil {
		t.Fatalf("ParseXMLString: %v", err)
	}
	sk := xsketch.Build(doc, 4096)
	if sk.SizeBytes() <= 0 {
		t.Fatal("empty synopsis")
	}
	q, err := xsketch.ParseQuery("for t0 in author, t1 in t0/paper, t2 in t1/keyword")
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	est := sk.EstimateQuery(q)
	exact := xsketch.Exact(doc, q)
	if exact != 3 {
		t.Fatalf("exact = %d, want 3", exact)
	}
	if est < 2.5 || est > 3.5 {
		t.Fatalf("estimate = %v, want ~3", est)
	}
}

func TestPublicAPIDatasetsAndWorkloads(t *testing.T) {
	if len(xsketch.Datasets()) != 3 {
		t.Fatalf("Datasets = %v", xsketch.Datasets())
	}
	all := xsketch.AllDatasets()
	if len(all) != 4 {
		t.Fatalf("AllDatasets = %v", all)
	}
	hasParts := false
	for _, name := range all {
		if name == "parts" {
			hasParts = true
		}
		if _, err := xsketch.GenerateDataset(name, 1, 0.02); err != nil {
			t.Fatalf("GenerateDataset(%q): %v", name, err)
		}
	}
	if !hasParts {
		t.Fatalf("AllDatasets misses the recursive dataset: %v", all)
	}
	doc, err := xsketch.GenerateDataset("imdb", 1, 0.02)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if _, err := xsketch.GenerateDataset("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	cfg := xsketch.DefaultWorkloadConfig(xsketch.WorkloadP)
	cfg.NumQueries = 10
	w := xsketch.GenerateWorkload(doc, cfg)
	if len(w.Queries) != 10 {
		t.Fatalf("workload = %d queries", len(w.Queries))
	}
	ev := xsketch.NewEvaluator(doc)
	for _, q := range w.Queries {
		if ev.Selectivity(q.Twig) != q.Truth {
			t.Fatal("evaluator disagrees with workload truth")
		}
	}
}

func TestPublicAPIBuilderAndPersistence(t *testing.T) {
	doc, err := xsketch.GenerateDataset("sprot", 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	opts := xsketch.DefaultBuildOptions(1 << 30)
	opts.MaxSteps = 5
	b := xsketch.NewBuilder(doc, opts)
	b.Run()
	if len(b.Steps()) == 0 {
		t.Fatal("builder applied no refinements")
	}
	sk := b.Sketch()

	var buf bytes.Buffer
	if err := xsketch.SaveSketch(&buf, sk); err != nil {
		t.Fatalf("SaveSketch: %v", err)
	}
	loaded, err := xsketch.LoadSketch(&buf, doc)
	if err != nil {
		t.Fatalf("LoadSketch: %v", err)
	}
	p, err := xsketch.ParsePath("entry/reference/author")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := sk.EstimatePath(p), loaded.EstimatePath(p); a != b {
		t.Fatalf("persisted estimate differs: %v vs %v", a, b)
	}
}

func TestPublicAPIProgrammaticQuery(t *testing.T) {
	doc := xsketch.NewDocument("r")
	a := doc.AddChild(doc.Root(), "a")
	doc.AddChild(a, "b")
	doc.AddChild(a, "b")
	doc.AddChild(a, "c")

	root, err := xsketch.ParsePath("a")
	if err != nil {
		t.Fatal(err)
	}
	q := xsketch.NewQuery(root)
	pb, _ := xsketch.ParsePath("b")
	pc, _ := xsketch.ParsePath("c")
	q.AddChild(q.Root, pb)
	q.AddChild(q.Root, pc)
	if got := xsketch.Exact(doc, q); got != 2 {
		t.Fatalf("Exact = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := xsketch.WriteXML(&buf, doc); err != nil {
		t.Fatal(err)
	}
	doc2, err := xsketch.ParseXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if xsketch.Exact(doc2, q) != 2 {
		t.Fatal("round-tripped document changed the count")
	}
}

// TestPublicAPITracing exercises the re-exported EXPLAIN surface: the
// recorder-based traced estimation and the one-shot Explain helper, both
// bit-identical to the untraced estimate.
func TestPublicAPITracing(t *testing.T) {
	doc, err := xsketch.GenerateDataset("imdb", 1, 0.02)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	sk := xsketch.NewSketch(doc, xsketch.DefaultSketchConfig())
	q, err := xsketch.ParseQuery("for t0 in movie, t1 in t0/actor")
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	want := sk.EstimateQuery(q)

	rec := xsketch.NewTraceRecorder(xsketch.TraceOptions{})
	res, err := sk.EstimateQueryTraced(context.Background(), q, rec)
	if err != nil {
		t.Fatalf("EstimateQueryTraced: %v", err)
	}
	if res.Estimate != want {
		t.Fatalf("traced estimate %v != untraced %v", res.Estimate, want)
	}
	tr := rec.Trace()
	if tr == nil || tr.Version != 2 || len(tr.Embeddings) == 0 {
		t.Fatalf("unexpected trace: %+v", tr)
	}

	ex := xsketch.Explain(sk, q)
	if ex.Estimate != want {
		t.Fatalf("Explain estimate %v != untraced %v", ex.Estimate, want)
	}
	var buf bytes.Buffer
	if err := ex.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "covered (E)") {
		t.Fatalf("text rendering missing TREEPARSE markers:\n%s", buf.String())
	}
}

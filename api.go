// Package xsketch is the public API of the Twig XSKETCH library — a Go
// implementation of "Selectivity Estimation for XML Twigs" (Polyzotis,
// Garofalakis, Ioannidis; ICDE 2004).
//
// The typical flow is: parse or generate an XML document, build a synopsis
// under a byte budget with the XBUILD construction algorithm, and estimate
// twig-query selectivities:
//
//	doc, _ := xsketch.ParseXMLString(src)
//	sk := xsketch.Build(doc, 50*1024)
//	q, _ := xsketch.ParseQuery("for t0 in //movie[/type=0], t1 in t0/actor, t2 in t0/producer")
//	estimate := sk.EstimateQuery(q)
//	exact := xsketch.Exact(doc, q)
//
// The package re-exports the library's core types as aliases, so the full
// surface of the implementation packages (estimation internals, refinement
// operations, dataset generators, workload generation, metrics, the HTTP
// estimation service) is reachable from here without importing internal
// paths.
package xsketch

import (
	"fmt"
	"io"

	"xsketch/internal/build"
	"xsketch/internal/eval"
	"xsketch/internal/graphsyn"
	"xsketch/internal/pathexpr"
	"xsketch/internal/plan"
	"xsketch/internal/serve"
	"xsketch/internal/trace"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
	core "xsketch/internal/xsketch"
)

// Core data model.
type (
	// Document is an XML document in the library's arena tree form.
	Document = xmltree.Document
	// NodeID identifies a document element.
	NodeID = xmltree.NodeID
	// Path is a parsed XPath-subset expression.
	Path = pathexpr.Path
	// ValuePred is an inclusive integer range predicate.
	ValuePred = pathexpr.ValuePred
	// Query is a twig query (a tree of path-labeled nodes).
	Query = twig.Query
	// QueryNode is one node of a twig query.
	QueryNode = twig.Node
)

// Synopsis types.
type (
	// Sketch is a Twig XSKETCH synopsis with estimation methods
	// (EstimateQuery, EstimatePath, EstimateEmbedding, WriteDOT, ...).
	Sketch = core.Sketch
	// SketchConfig controls synopsis construction and estimation.
	SketchConfig = core.Config
	// ScopeEdge is one count dimension of a node's edge histogram.
	ScopeEdge = core.ScopeEdge
	// SynopsisNodeID identifies a synopsis node.
	SynopsisNodeID = graphsyn.NodeID
	// EstimateResult is one query's estimate with its truncation flag
	// (Sketch.EstimateQueryResult, Sketch.EstimateBatch).
	EstimateResult = core.EstimateResult
	// EstimatorStats reports the estimation cache's lifetime counters
	// (Sketch.EstimatorStats).
	EstimatorStats = core.EstimatorStats
	// EstimatorCacheView is a race-safe handle for polling a sketch's
	// estimator-cache counters (Sketch.EstimatorCache().Snapshot()).
	EstimatorCacheView = core.EstimatorCacheView
	// BuildOptions configures the XBUILD construction algorithm.
	BuildOptions = build.Options
	// Builder runs XBUILD incrementally (budget sweeps, tracing).
	Builder = build.Builder
	// Refinement is one XBUILD refinement operation.
	Refinement = build.Refinement
)

// Workload and evaluation types.
type (
	// Evaluator computes exact path and twig selectivities.
	Evaluator = eval.Evaluator
	// Workload is a set of generated queries with exact selectivities.
	Workload = workload.Workload
	// WorkloadConfig controls workload generation.
	WorkloadConfig = workload.Config
	// WorkloadKind selects P, P+V, simple-path or negative workloads.
	WorkloadKind = workload.Kind
	// DatasetConfig controls the synthetic dataset generators.
	DatasetConfig = xmlgen.Config
)

// Workload kinds (paper Section 6.1).
const (
	WorkloadP        = workload.KindP
	WorkloadPV       = workload.KindPV
	WorkloadSimple   = workload.KindSimple
	WorkloadNegative = workload.KindNegative
)

// ParseXML reads an XML document.
func ParseXML(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseXMLString parses an XML document from a string.
func ParseXMLString(s string) (*Document, error) { return xmltree.ParseString(s) }

// WriteXML serializes a document as XML.
func WriteXML(w io.Writer, d *Document) error { return xmltree.Serialize(w, d) }

// NewDocument creates an empty document with the given root tag, to be
// populated with Document.AddChild / AddValueChild.
func NewDocument(rootTag string) *Document { return xmltree.NewDocument(rootTag) }

// ParseQuery parses a twig query in the paper's for-clause notation, e.g.
// "for t0 in //movie[/type=0], t1 in t0/actor, t2 in t0/producer".
func ParseQuery(s string) (*Query, error) { return twig.Parse(s) }

// ParsePath parses a path expression, e.g. "author/paper[year>2000]/title".
func ParsePath(s string) (*Path, error) { return pathexpr.Parse(s) }

// NewQuery builds a twig query programmatically from a root path; attach
// children with Query.AddChild.
func NewQuery(root *Path) *Query { return twig.New(root) }

// Datasets lists the paper's three evaluation dataset names ("xmark",
// "imdb", "sprot"). GenerateDataset additionally accepts the recursive
// "parts" dataset; AllDatasets lists the full accepted set.
func Datasets() []string { return xmlgen.Names() }

// AllDatasets lists every dataset name GenerateDataset accepts: the
// paper's three evaluation datasets plus the recursive "parts" dataset.
func AllDatasets() []string { return xmlgen.AllNames() }

// GenerateDataset builds one of the synthetic datasets named by
// AllDatasets at the given scale (1 = paper-sized, roughly 100k elements).
func GenerateDataset(name string, seed int64, scale float64) (*Document, error) {
	for _, n := range xmlgen.AllNames() {
		if n == name {
			return xmlgen.Generate(name, xmlgen.Config{Seed: seed, Scale: scale}), nil
		}
	}
	return nil, fmt.Errorf("xsketch: unknown dataset %q (want one of %v)", name, xmlgen.AllNames())
}

// DefaultSketchConfig returns the paper-prototype synopsis configuration.
func DefaultSketchConfig() SketchConfig { return core.DefaultConfig() }

// NewSketch builds the coarsest Twig XSKETCH (the label split graph with
// initial histograms) without running XBUILD.
func NewSketch(d *Document, cfg SketchConfig) *Sketch { return core.New(d, cfg) }

// DefaultBuildOptions returns XBUILD options for the given byte budget.
func DefaultBuildOptions(budgetBytes int) BuildOptions { return build.DefaultOptions(budgetBytes) }

// Build constructs a Twig XSKETCH of at most roughly budgetBytes using the
// XBUILD algorithm with default options.
func Build(d *Document, budgetBytes int) *Sketch {
	return build.XBuild(d, build.DefaultOptions(budgetBytes))
}

// BuildWithOptions constructs a synopsis with full control over XBUILD.
func BuildWithOptions(d *Document, opts BuildOptions) *Sketch { return build.XBuild(d, opts) }

// NewBuilder initializes an incremental XBUILD run (snapshots, tracing).
func NewBuilder(d *Document, opts BuildOptions) *Builder { return build.NewBuilder(d, opts) }

// NewEvaluator returns an exact evaluator for ground-truth selectivities.
func NewEvaluator(d *Document) *Evaluator { return eval.New(d) }

// Exact computes the exact selectivity (binding-tuple count) of a twig
// query over the document.
func Exact(d *Document, q *Query) int64 { return eval.New(d).Selectivity(q) }

// GenerateWorkload builds a query workload over the document (see
// WorkloadConfig and the Workload* kinds).
func GenerateWorkload(d *Document, cfg WorkloadConfig) *Workload { return workload.Generate(d, cfg) }

// DefaultWorkloadConfig mirrors the paper's workload parameters for the
// given kind.
func DefaultWorkloadConfig(kind WorkloadKind) WorkloadConfig { return workload.DefaultConfig(kind) }

// SaveSketch persists a synopsis's construction state.
func SaveSketch(w io.Writer, sk *Sketch) error { return core.Save(w, sk) }

// LoadSketch restores a synopsis persisted by SaveSketch, rebinding it to
// the document it was built from.
func LoadSketch(r io.Reader, d *Document) (*Sketch, error) { return core.Load(r, d) }

// Estimation tracing types: the structured EXPLAIN machinery (see
// DESIGN.md §10 for the trace model and its mapping onto the paper's
// TREEPARSE estimation framework).
type (
	// Explanation is a structured estimation trace: expansion events and
	// per-embedding TREEPARSE trees carrying every numeric term with the
	// assumption justifying it (Sketch.ExplainQuery).
	Explanation = core.Explanation
	// TraceRecorder collects an Explanation plus per-stage latencies
	// while an estimation runs (Sketch.EstimateQueryTraced). A nil
	// recorder disables tracing at zero cost.
	TraceRecorder = trace.Recorder
	// TraceOptions tunes a TraceRecorder (event cap, clock injection).
	TraceOptions = trace.Options
	// TraceNode is one synopsis node's TREEPARSE trace within an
	// Explanation.
	TraceNode = trace.Node
	// TraceTerm is one numeric factor of a traced estimate.
	TraceTerm = trace.Term
	// TraceEvent is one estimation-level trace event (expansion, dedup,
	// truncation).
	TraceEvent = trace.Event
	// TraceEmbedding is one query embedding's trace tree.
	TraceEmbedding = trace.EmbeddingTrace
	// TraceStage identifies an instrumented estimation stage (expand,
	// embed, treeparse, histogram lookup).
	TraceStage = trace.Stage
)

// NewTraceRecorder returns an enabled trace recorder to pass to
// Sketch.EstimateQueryTraced; read the result with TraceRecorder.Trace
// and TraceRecorder.StageSeconds.
func NewTraceRecorder(opts TraceOptions) *TraceRecorder { return trace.NewRecorder(opts) }

// Explain runs a traced estimation of the query and returns its
// structured explanation (equivalent to Sketch.ExplainQuery).
func Explain(sk *Sketch, q *Query) *Explanation { return sk.ExplainQuery(q) }

// Compiled query plans: the plan-once/execute-many estimation path (see
// DESIGN.md §11). Plans come from Sketch.PlanQuery / PlanQueryText, are
// cached per sketch in a generation-checked LRU, and execute bit-identical
// to EstimateQuery with zero steady-state allocations on cache hits
// (Sketch.EstimateQueryPlanned, Sketch.EstimateBatchPlanned).
type (
	// Plan is a compiled, executable form of one twig query against one
	// sketch state, safe for concurrent execution.
	Plan = plan.Program
	// PlanCacheStats reports a sketch's compiled-plan cache counters
	// (Sketch.PlanCacheStats).
	PlanCacheStats = plan.Stats
)

// DefaultPlanCacheSize is the per-sketch compiled-plan LRU capacity when
// SketchConfig.PlanCacheSize is zero (negative disables plan caching).
const DefaultPlanCacheSize = core.DefaultPlanCacheSize

// Serving types: the networked estimation service behind cmd/xserve (see
// SERVING.md for endpoints and metrics).
type (
	// Server is the HTTP estimation service: hardened handlers over a
	// fixed set of sketches, with metrics, logs and pprof built in.
	Server = serve.Server
	// ServerConfig tunes the service's hardening knobs (concurrency cap,
	// request timeout, body and batch limits).
	ServerConfig = serve.Config
	// ServedSketch is one named synopsis offered by a Server.
	ServedSketch = serve.Sketch
)

// NewServer builds an estimation server over the given sketches; mount
// Server.Handler() on any http.Server.
func NewServer(cfg ServerConfig, sketches []ServedSketch) (*Server, error) {
	return serve.New(cfg, sketches)
}

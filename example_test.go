package xsketch_test

import (
	"fmt"
	"log"

	"xsketch"
)

// ExampleBuild demonstrates the core flow: parse, build, estimate.
func ExampleBuild() {
	doc, err := xsketch.ParseXMLString(`
<bib>
  <author><name/><paper><year>2001</year><keyword/></paper></author>
  <author><name/><paper><year>1999</year><keyword/><keyword/></paper></author>
  <author><name/><book><title/></book></author>
</bib>`)
	if err != nil {
		log.Fatal(err)
	}
	sk := xsketch.Build(doc, 4096)
	q, err := xsketch.ParseQuery("for t0 in author, t1 in t0/paper, t2 in t1/keyword")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate: %.0f\n", sk.EstimateQuery(q))
	fmt.Printf("exact:    %d\n", xsketch.Exact(doc, q))
	// Output:
	// estimate: 3
	// exact:    3
}

// ExampleParseQuery shows the paper's for-clause notation round-tripping
// through the parser.
func ExampleParseQuery() {
	q, err := xsketch.ParseQuery("for t0 in //movie[/type=0], t1 in t0/actor, t2 in t0/producer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.NodeCount(), "twig nodes, fanout", q.AvgFanout())
	fmt.Println(q)
	// Output:
	// 3 twig nodes, fanout 2
	// for t0 in //movie[type[=0]], t1 in t0/actor, t2 in t0/producer
}

// ExampleExact evaluates the paper's Figure 4 motivating twig exactly.
func ExampleExact() {
	doc := xsketch.NewDocument("r")
	a := doc.AddChild(doc.Root(), "a")
	for i := 0; i < 10; i++ {
		doc.AddChild(a, "b")
	}
	for i := 0; i < 100; i++ {
		doc.AddChild(a, "c")
	}
	q, _ := xsketch.ParseQuery("t0 in a, t1 in t0/b, t2 in t0/c")
	fmt.Println(xsketch.Exact(doc, q))
	// Output:
	// 1000
}

// ExampleGenerateWorkload generates a paper-style P workload and prints
// its summary statistics.
func ExampleGenerateWorkload() {
	doc, err := xsketch.GenerateDataset("imdb", 1, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	cfg := xsketch.DefaultWorkloadConfig(xsketch.WorkloadP)
	cfg.NumQueries = 25
	w := xsketch.GenerateWorkload(doc, cfg)
	st := w.Stats()
	fmt.Println("queries:", st.Count)
	fmt.Println("all positive:", allPositive(w))
	// Output:
	// queries: 25
	// all positive: true
}

func allPositive(w *xsketch.Workload) bool {
	for _, q := range w.Queries {
		if q.Truth <= 0 {
			return false
		}
	}
	return true
}

module xsketch

go 1.22

package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xsketch/internal/serve"
	"xsketch/internal/twig"
	"xsketch/internal/xmlgen"
	core "xsketch/internal/xsketch"
)

const testQuery = "t0 in movie, t1 in t0/actor"

// testConfig keeps retries fast and probes manual (huge interval) so
// tests drive state transitions deterministically via ProbeOnce.
func testConfig() Config {
	return Config{
		AttemptTimeout: 5 * time.Second,
		RetryBackoff:   time.Millisecond,
		ProbeInterval:  time.Hour,
		ProbeTimeout:   2 * time.Second,
	}
}

// newTestRouter builds a router over the given backends plus an httptest
// front end.
func newTestRouter(t *testing.T, cfg Config, backends ...string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg, backends)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// newStub builds a stub backend whose /estimate answers with the given
// status and body; other paths 404.
func newStub(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/estimate" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(status)
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts
}

// newTestReplica builds a real xserve replica over a shared sketch.
func newTestReplica(t *testing.T, sk *core.Sketch) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{}, []serve.Sketch{{Name: "imdb", Source: "test", Sketch: sk}})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func newTestSketch(t *testing.T) *core.Sketch {
	t.Helper()
	d := xmlgen.Generate("imdb", xmlgen.Config{Seed: 1, Scale: 0.02})
	return core.New(d, core.DefaultConfig())
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestPassThroughStatuses checks that request-level client statuses from
// a replica relay unchanged — status, body, backpressure headers — and
// never trigger a retry.
func TestPassThroughStatuses(t *testing.T) {
	cases := []struct {
		status int
		body   string
	}{
		{http.StatusBadRequest, `{"error":"malformed query","trace_id":"x"}`},
		{http.StatusNotFound, `{"error":"unknown sketch","trace_id":"x"}`},
		{http.StatusRequestEntityTooLarge, `{"error":"body too large","trace_id":"x"}`},
		{http.StatusUnprocessableEntity, `{"error":"query planning failed","trace_id":"x"}`},
		{http.StatusTooManyRequests, `{"error":"shed","trace_id":"x"}`},
		{http.StatusGatewayTimeout, `{"error":"estimate timed out","trace_id":"x"}`},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.status), func(t *testing.T) {
			primary := newStub(t, tc.status, tc.body)
			secondary := newStub(t, http.StatusOK, `{"estimate":1}`)
			rt, ts := newTestRouter(t, testConfig(), primary.URL, secondary.URL)
			// Pin the single candidate order by marking the secondary
			// draining, so the stubbed status is guaranteed to come from
			// `primary` regardless of where the key hashes.
			rt.setState(rt.backends[secondary.URL], stateDraining, "test pin")

			resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery))
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if string(body) != tc.body {
				t.Errorf("body %q, want verbatim relay of %q", body, tc.body)
			}
			if tc.status == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("Retry-After header not relayed")
			}
			if v := rt.m.retries.Value(); v != 0 {
				t.Errorf("pass-through status triggered %d retries, want 0", v)
			}
		})
	}
}

// TestRouterOwn404And405 checks the router's own mux answers for unknown
// paths and wrong methods without touching any backend.
func TestRouterOwn404And405(t *testing.T) {
	primary := newStub(t, http.StatusOK, `{"estimate":1}`)
	rt, ts := newTestRouter(t, testConfig(), primary.URL)

	resp, _ := getBody(t, ts.URL+"/estimate") // GET on a POST-only route
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /estimate status %d, want 405", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/no-such-path", `{}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /no-such-path status %d, want 404", resp.StatusCode)
	}
	if v := rt.m.shardReq.With(primary.URL).Value(); v != 0 {
		t.Errorf("router-level rejections reached the backend %d times", v)
	}
}

// TestRouterOwn413 checks the router enforces its own body limit before
// any fan-out.
func TestRouterOwn413(t *testing.T) {
	primary := newStub(t, http.StatusOK, `{"estimate":1}`)
	cfg := testConfig()
	cfg.MaxBodyBytes = 64
	_, ts := newTestRouter(t, cfg, primary.URL)
	resp, _ := postJSON(t, ts.URL+"/estimate",
		fmt.Sprintf(`{"sketch":"imdb","query":%q}`, strings.Repeat("x", 200)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d, want 413", resp.StatusCode)
	}
}

// TestRetryFailsOverToNextCandidate checks a 503 replica is retried once
// against the next ring candidate and the request still succeeds.
func TestRetryFailsOverToNextCandidate(t *testing.T) {
	bad := newStub(t, http.StatusServiceUnavailable, `{"error":"shutting down","trace_id":"x"}`)
	good := newStub(t, http.StatusOK, `{"estimate":42.5,"truncated":false,"trace_id":"y"}`)
	rt, ts := newTestRouter(t, testConfig(), bad.URL, good.URL)

	// Every request must succeed no matter which stub owns the key: the
	// bad one answers 503 -> retry lands on the good one.
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, ts.URL+"/estimate",
			fmt.Sprintf(`{"sketch":"s%d","query":%q}`, i, testQuery))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	if rt.m.retries.Value() == 0 {
		t.Error("no retries counted although one backend always answers 503")
	}
	if rt.m.shardErr.With(bad.URL, errKindUnavailable).Value() == 0 {
		t.Error("no unavailable errors counted against the 503 backend")
	}
}

// TestExhaustedRetriesAnswer502 checks the router's own 502 when every
// candidate fails, and the exhausted error kind is counted.
func TestExhaustedRetriesAnswer502(t *testing.T) {
	b1 := newStub(t, http.StatusServiceUnavailable, `{"error":"nope","trace_id":"x"}`)
	b2 := newStub(t, http.StatusBadGateway, `{"error":"nope","trace_id":"x"}`)
	rt, ts := newTestRouter(t, testConfig(), b1.URL, b2.URL)

	resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (body %s)", resp.StatusCode, body)
	}
	var er struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" || er.TraceID == "" {
		t.Fatalf("502 body %s not a router error response (%v)", body, err)
	}
	exhausted := rt.m.shardErr.With(b1.URL, errKindExhausted).Value() +
		rt.m.shardErr.With(b2.URL, errKindExhausted).Value()
	if exhausted == 0 {
		t.Error("no exhausted error counted after total failure")
	}
	if rt.m.retries.Value() == 0 {
		t.Error("no retry counted before giving up")
	}
}

// TestTransportFailureMarksDownAndFailsOver kills one backend outright:
// requests must keep succeeding via the survivor, the dead backend must be
// marked down, and subsequent traffic must stop attempting it.
func TestTransportFailureMarksDownAndFailsOver(t *testing.T) {
	dead := newStub(t, http.StatusOK, `{"estimate":1}`)
	live := newStub(t, http.StatusOK, `{"estimate":2,"truncated":false,"trace_id":"y"}`)
	rt, ts := newTestRouter(t, testConfig(), dead.URL, live.URL)
	dead.Close()

	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, ts.URL+"/estimate",
			fmt.Sprintf(`{"sketch":"s%d","query":%q}`, i, testQuery))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	if st := rt.BackendStates()[dead.URL]; st != "down" {
		t.Errorf("dead backend state %q, want down", st)
	}
	if rt.m.shardErr.With(dead.URL, errKindTransport).Value() == 0 {
		t.Error("no transport errors counted against the dead backend")
	}

	// Once down, the dead backend should no longer receive first attempts.
	before := rt.m.shardReq.With(dead.URL).Value()
	for i := 0; i < 8; i++ {
		postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"sketch":"s%d","query":%q}`, i, testQuery))
	}
	if after := rt.m.shardReq.With(dead.URL).Value(); after != before {
		t.Errorf("down backend still attempted: %d -> %d", before, after)
	}
}

// batchStub is a replica-shaped batch endpoint that answers each query
// with a fixed per-stub estimate, so merged results reveal which shard
// served each item.
func batchStub(t *testing.T, estimate float64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"status":"ok","draining":false,"sketches":1,"uptime_seconds":1}`))
			return
		}
		if r.URL.Path == "/estimate" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"estimate":%g,"truncated":false,"trace_id":%q}`, estimate, r.Header.Get("X-Trace-Id"))
			return
		}
		if r.URL.Path != "/estimate/batch" {
			http.NotFound(w, r)
			return
		}
		var req struct {
			Sketch  string   `json:"sketch"`
			Queries []string `json:"queries"`
			Workers int      `json:"workers"`
			Explain []bool   `json:"explain"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]json.RawMessage, len(req.Queries))
		for i := range results {
			results[i] = json.RawMessage(fmt.Sprintf(`{"estimate":%g,"truncated":false}`, estimate))
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"sketch": req.Sketch, "count": len(results), "results": results,
			"elapsed_seconds": 0.001, "trace_id": r.Header.Get("X-Trace-Id"),
		})
	}))
	t.Cleanup(ts.Close)
	return ts
}

// spreadQueries generates queries until both given shards own at least
// min items each, returning the queries and the per-shard ownership.
func spreadQueries(t *testing.T, rt *Router, sketch string, shards []string, min int) []string {
	t.Helper()
	var queries []string
	perShard := map[string]int{}
	short := func() bool {
		for _, s := range shards {
			if perShard[s] < min {
				return true
			}
		}
		return false
	}
	for i := 0; len(queries) < 256 && short(); i++ {
		q := fmt.Sprintf("t0 in movie, t1 in t0/actor%d", i)
		queries = append(queries, q)
		perShard[rt.ring.Owner(sketch+"\x00"+q)]++
	}
	if short() {
		t.Fatalf("could not spread queries over shards %v: %v", shards, perShard)
	}
	return queries
}

// TestBatchFailoverLosesNothing kills one of two shards outright: the
// batch must still answer 200 with every item estimated — the dead
// shard's sub-batch fails over to the survivor — and the failure must be
// visible in the retry and transport-error counters.
func TestBatchFailoverLosesNothing(t *testing.T) {
	alive := batchStub(t, 7)
	doomed := batchStub(t, 9)
	rt, ts := newTestRouter(t, testConfig(), alive.URL, doomed.URL)
	queries := spreadQueries(t, rt, "imdb", []string{alive.URL, doomed.URL}, 3)
	doomed.Close()

	reqBody, _ := json.Marshal(map[string]any{"sketch": "imdb", "queries": queries})
	resp, body := postJSON(t, ts.URL+"/estimate/batch", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, body %s", resp.StatusCode, body)
	}
	var br struct {
		Count   int `json:"count"`
		Results []struct {
			Estimate float64 `json:"estimate"`
			Error    string  `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v (%s)", err, body)
	}
	if br.Count != len(queries) || len(br.Results) != len(queries) {
		t.Fatalf("count %d / %d results, want %d", br.Count, len(br.Results), len(queries))
	}
	for i, res := range br.Results {
		if res.Error != "" || res.Estimate != 7 {
			t.Errorf("item %d: estimate %v error %q — failover lost it", i, res.Estimate, res.Error)
		}
	}
	if rt.m.retries.Value() == 0 {
		t.Error("failover left no trace in xrouter_retry_total")
	}
	if rt.m.shardErr.With(doomed.URL, errKindTransport).Value() == 0 {
		t.Error("dead shard's transport failure not counted")
	}
}

// TestBatchShardFailureIsolation drives a group through total failure —
// its owner is dead AND its retry candidate refuses exactly that group —
// and checks the batch still answers 200: the failed group's items carry
// per-item errors while every other item survives intact.
func TestBatchShardFailureIsolation(t *testing.T) {
	// reject, once set, makes the alive stub answer 503 for any sub-batch
	// containing a rejected query — simulating the retry also failing for
	// the dead shard's group only.
	var mu sync.Mutex
	var reject func(q string) bool
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Sketch  string   `json:"sketch"`
			Queries []string `json:"queries"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		rej := reject
		mu.Unlock()
		if rej != nil {
			for _, q := range req.Queries {
				if rej(q) {
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusServiceUnavailable)
					w.Write([]byte(`{"error":"overloaded","trace_id":"x"}`))
					return
				}
			}
		}
		results := make([]json.RawMessage, len(req.Queries))
		for i := range results {
			results[i] = json.RawMessage(`{"estimate":7,"truncated":false}`)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"sketch": req.Sketch, "count": len(results), "results": results,
			"elapsed_seconds": 0.001, "trace_id": "y",
		})
	}))
	t.Cleanup(alive.Close)
	doomed := batchStub(t, 9)
	rt, ts := newTestRouter(t, testConfig(), alive.URL, doomed.URL)
	queries := spreadQueries(t, rt, "imdb", []string{alive.URL, doomed.URL}, 3)
	doomed.Close()
	mu.Lock()
	reject = func(q string) bool { return rt.ring.Owner("imdb\x00"+q) == doomed.URL }
	mu.Unlock()

	reqBody, _ := json.Marshal(map[string]any{"sketch": "imdb", "queries": queries})
	resp, body := postJSON(t, ts.URL+"/estimate/batch", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, body %s", resp.StatusCode, body)
	}
	var br struct {
		Count   int `json:"count"`
		Results []struct {
			Estimate float64 `json:"estimate"`
			Error    string  `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v (%s)", err, body)
	}
	okItems, errItems := 0, 0
	for i, res := range br.Results {
		if rt.ring.Owner("imdb\x00"+queries[i]) == alive.URL {
			if res.Error != "" || res.Estimate != 7 {
				t.Errorf("item %d (alive shard): estimate %v error %q", i, res.Estimate, res.Error)
			}
			okItems++
		} else {
			if res.Error == "" {
				t.Errorf("item %d (failed shard): no per-item error recorded", i)
			}
			errItems++
		}
	}
	if okItems == 0 || errItems == 0 {
		t.Fatalf("degenerate split: %d ok, %d errored", okItems, errItems)
	}
}

// TestBatchPassThroughClientError checks a request-level client error from
// a shard (e.g. unknown sketch) relays as the whole batch's answer.
func TestBatchPassThroughClientError(t *testing.T) {
	notFound := `{"error":"unknown sketch \"nope\"","trace_id":"x"}`
	mk := func() *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(notFound))
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	b1, b2 := mk(), mk()
	_, ts := newTestRouter(t, testConfig(), b1.URL, b2.URL)

	reqBody, _ := json.Marshal(map[string]any{
		"sketch": "nope", "queries": []string{testQuery, testQuery + "x", testQuery + "y"},
	})
	resp, body := postJSON(t, ts.URL+"/estimate/batch", string(reqBody))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 pass-through (body %s)", resp.StatusCode, body)
	}
	if string(body) != notFound {
		t.Errorf("body %q, want verbatim relay of %q", body, notFound)
	}
}

// TestBatchRejectsBadShapes covers the router's own batch validation.
func TestBatchRejectsBadShapes(t *testing.T) {
	b := batchStub(t, 1)
	cfg := testConfig()
	cfg.MaxBatchQueries = 4
	_, ts := newTestRouter(t, cfg, b.URL)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{"queries": nope}`, http.StatusBadRequest},
		{"empty", `{"sketch":"imdb","queries":[]}`, http.StatusBadRequest},
		{"too many", `{"sketch":"imdb","queries":["a","b","c","d","e"]}`, http.StatusRequestEntityTooLarge},
		{"explain mismatch", `{"sketch":"imdb","queries":["a","b"],"explain":[true]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/estimate/batch", tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
		})
	}
}

// TestProbeClassification drives the three-state prober: healthy, then
// draining (no error counters fired), then down, then back to healthy via
// automatic re-inclusion.
func TestProbeClassification(t *testing.T) {
	var mu sync.Mutex
	mode := "ok"
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		mu.Lock()
		m := mode
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch m {
		case "ok":
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"status":"ok","draining":false,"sketches":1,"uptime_seconds":1}`))
		case "draining":
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"draining","draining":true,"sketches":1,"uptime_seconds":1}`))
		default:
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`boom`))
		}
	}))
	t.Cleanup(replica.Close)
	set := func(m string) { mu.Lock(); mode = m; mu.Unlock() }

	rt, _ := newTestRouter(t, testConfig(), replica.URL)
	ctx := t.Context()

	rt.ProbeOnce(ctx)
	if st := rt.BackendStates()[replica.URL]; st != "healthy" {
		t.Fatalf("after ok probe: state %q, want healthy", st)
	}

	set("draining")
	rt.ProbeOnce(ctx)
	if st := rt.BackendStates()[replica.URL]; st != "draining" {
		t.Fatalf("after draining probe: state %q, want draining", st)
	}
	// Draining is deliberate: it must not count as a shard error.
	for _, kind := range []string{errKindTransport, errKindUnavailable, errKindExhausted} {
		if v := rt.m.shardErr.With(replica.URL, kind).Value(); v != 0 {
			t.Errorf("draining probe fired %s error counter (%d)", kind, v)
		}
	}
	if rt.routableCount() != 0 {
		t.Errorf("draining backend still counted routable")
	}

	set("down")
	rt.ProbeOnce(ctx)
	if st := rt.BackendStates()[replica.URL]; st != "down" {
		t.Fatalf("after failing probe: state %q, want down", st)
	}

	set("ok")
	rt.ProbeOnce(ctx)
	if st := rt.BackendStates()[replica.URL]; st != "healthy" {
		t.Fatalf("after recovery probe: state %q, want healthy (automatic re-inclusion)", st)
	}
	if rt.routableCount() != 1 {
		t.Errorf("recovered backend not routable")
	}
}

// TestClassifyProbeTable pins the classification rules, including the
// fallback on the status string for replicas predating the Draining flag.
func TestClassifyProbeTable(t *testing.T) {
	cases := []struct {
		code int
		body string
		want backendState
	}{
		{200, `{"status":"ok"}`, stateHealthy},
		{200, ``, stateHealthy},
		{503, `{"status":"draining","draining":true}`, stateDraining},
		{503, `{"status":"draining"}`, stateDraining},
		{503, `{"status":"unavailable","draining":false}`, stateDown},
		{503, `not json`, stateDown},
		{500, `{"status":"ok"}`, stateDown},
		{404, ``, stateDown},
	}
	for _, tc := range cases {
		if got := classifyProbe(tc.code, []byte(tc.body)); got != tc.want {
			t.Errorf("classifyProbe(%d, %q) = %v, want %v", tc.code, tc.body, got, tc.want)
		}
	}
}

// TestRouterHealthz covers the router's own health states: ok, draining
// (machine-readable flag set), and unavailable when the fleet is gone.
func TestRouterHealthz(t *testing.T) {
	replica := newStub(t, http.StatusOK, `{"estimate":1}`)
	rt, ts := newTestRouter(t, testConfig(), replica.URL)

	decode := func(body []byte) routerHealth {
		var h routerHealth
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz unmarshal: %v (%s)", err, body)
		}
		return h
	}

	resp, body := getBody(t, ts.URL+"/healthz")
	h := decode(body)
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Draining || h.Healthy != 1 {
		t.Fatalf("healthy router: status %d body %+v", resp.StatusCode, h)
	}
	if len(h.Backends) != 1 || h.Backends[0].State != "healthy" {
		t.Errorf("backend listing %+v, want one healthy entry", h.Backends)
	}

	rt.SetDraining(true)
	resp, body = getBody(t, ts.URL+"/healthz")
	if h = decode(body); resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Fatalf("draining router: status %d body %+v", resp.StatusCode, h)
	}
	rt.SetDraining(false)

	rt.setState(rt.backends[replica.URL], stateDown, "test")
	resp, body = getBody(t, ts.URL+"/healthz")
	if h = decode(body); resp.StatusCode != http.StatusServiceUnavailable || h.Status != "unavailable" || h.Draining {
		t.Fatalf("fleetless router: status %d body %+v", resp.StatusCode, h)
	}
}

// TestTraceIDForwarding checks one trace ID flows client -> router ->
// replica and back out in the response header.
func TestTraceIDForwarding(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get("X-Trace-Id"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"estimate":1,"truncated":false,"trace_id":"r"}`))
	}))
	t.Cleanup(replica.Close)
	_, ts := newTestRouter(t, testConfig(), replica.URL)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/estimate",
		strings.NewReader(fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "client-chosen-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "client-chosen-id" {
		t.Errorf("response trace ID %q, want client-chosen-id", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "client-chosen-id" {
		t.Errorf("replica saw trace IDs %v, want the client's", seen)
	}
}

// TestBitIdentityThroughRouter is the end-to-end determinism gate: single
// and batch estimates served through router -> replica -> plan cache must
// be Float64bits-identical to direct local estimation, under concurrency
// (run with -race).
func TestBitIdentityThroughRouter(t *testing.T) {
	sk := newTestSketch(t)
	r1 := newTestReplica(t, sk)
	r2 := newTestReplica(t, sk)
	_, ts := newTestRouter(t, testConfig(), r1.URL, r2.URL)

	queries := []string{
		testQuery,
		"t0 in movie, t1 in t0/actor, t2 in t0/director",
		"t0 in movie, t1 in t0//name",
		"t0 in movie, t1 in t0/actor, t2 in t1/name",
	}
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = sk.EstimateQueryResult(twig.MustParse(q)).Estimate
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				i := (w + rep) % len(queries)
				resp, body := postJSON(t, ts.URL+"/estimate",
					fmt.Sprintf(`{"sketch":"imdb","query":%q}`, queries[i]))
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("estimate status %d: %s", resp.StatusCode, body)
					return
				}
				var er struct {
					Estimate float64 `json:"estimate"`
				}
				if err := json.Unmarshal(body, &er); err != nil {
					errs <- err
					return
				}
				if math.Float64bits(er.Estimate) != math.Float64bits(want[i]) {
					errs <- fmt.Errorf("query %d: routed %v != local %v", i, er.Estimate, want[i])
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qb, _ := json.Marshal(queries)
			resp, body := postJSON(t, ts.URL+"/estimate/batch",
				fmt.Sprintf(`{"sketch":"imdb","queries":%s}`, qb))
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("batch status %d: %s", resp.StatusCode, body)
				return
			}
			var br struct {
				Results []struct {
					Estimate float64 `json:"estimate"`
					Error    string  `json:"error"`
				} `json:"results"`
			}
			if err := json.Unmarshal(body, &br); err != nil {
				errs <- err
				return
			}
			if len(br.Results) != len(queries) {
				errs <- fmt.Errorf("batch returned %d results, want %d", len(br.Results), len(queries))
				return
			}
			for i, res := range br.Results {
				if res.Error != "" {
					errs <- fmt.Errorf("batch item %d errored: %s", i, res.Error)
					return
				}
				if math.Float64bits(res.Estimate) != math.Float64bits(want[i]) {
					errs <- fmt.Errorf("batch item %d: routed %v != local %v", i, res.Estimate, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSketchesProxy checks GET /sketches relays a replica's listing.
func TestSketchesProxy(t *testing.T) {
	sk := newTestSketch(t)
	r1 := newTestReplica(t, sk)
	_, ts := newTestRouter(t, testConfig(), r1.URL)
	resp, body := getBody(t, ts.URL+"/sketches")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("imdb")) {
		t.Errorf("sketch listing %s does not mention imdb", body)
	}
}

// TestAuditSampleHeaderForwarded checks the router passes the replicas'
// X-Audit-Sample override through on both estimate paths (and omits it
// when the client did not send one), so fleet-wide accuracy sampling is
// controlled identically through either tier.
func TestAuditSampleHeaderForwarded(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string][]string)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.URL.Path] = append(seen[r.URL.Path], r.Header.Get("X-Audit-Sample"))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/estimate":
			w.Write([]byte(`{"sketch":"imdb","estimate":1,"trace_id":"x"}`))
		case "/estimate/batch":
			w.Write([]byte(`{"sketch":"imdb","count":1,"results":[{"estimate":1,"truncated":false}],"trace_id":"x"}`))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(stub.Close)
	_, ts := newTestRouter(t, testConfig(), stub.URL)

	send := func(path, body, header string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		if header != "" {
			req.Header.Set("X-Audit-Sample", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
	}

	est := fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery)
	batch := fmt.Sprintf(`{"sketch":"imdb","queries":[%q]}`, testQuery)
	send("/estimate", est, "1")
	send("/estimate", est, "")
	send("/estimate/batch", batch, "0")

	mu.Lock()
	defer mu.Unlock()
	if got := seen["/estimate"]; len(got) != 2 || got[0] != "1" || got[1] != "" {
		t.Errorf("/estimate saw audit headers %q, want [1 \"\"]", got)
	}
	if got := seen["/estimate/batch"]; len(got) != 1 || got[0] != "0" {
		t.Errorf("/estimate/batch saw audit headers %q, want [0]", got)
	}
}

package router

import (
	"time"

	"xsketch/internal/obs"
)

// Error kinds recorded in xrouter_shard_errors_total{shard,kind}.
const (
	// errKindTransport is a failed connection or a request that died on
	// the wire — the strongest signal a replica is gone.
	errKindTransport = "transport"
	// errKindUnavailable is a replica answering 502/503 — shedding,
	// draining mid-request, or an upstream of its own misbehaving.
	errKindUnavailable = "unavailable"
	// errKindExhausted marks a request whose every retry candidate failed;
	// the client saw the router's own 502.
	errKindExhausted = "exhausted"
)

// metrics bundles the router's instrument handles. Every family rendered
// at the router's /metrics is declared here and documented in SERVING.md's
// catalog; TestRouterMetricsMatchDocumentedCatalog cross-checks the two.
type metrics struct {
	requests *obs.CounterVec   // xrouter_requests_total{path,code}
	shardReq *obs.CounterVec   // xrouter_shard_requests_total{shard}
	shardErr *obs.CounterVec   // xrouter_shard_errors_total{shard,kind}
	retries  *obs.Counter      // xrouter_retry_total
	shardLat *obs.HistogramVec // xrouter_shard_latency_seconds{shard}
	fanout   *obs.Histogram    // xrouter_batch_fanout_shards
	up       *obs.GaugeVec     // xrouter_backend_up{backend}
	draining *obs.GaugeVec     // xrouter_backend_draining{backend}
}

// newRouterMetrics registers every family on the router's registry and
// pre-creates the per-shard series for each configured backend, so a
// scrape taken before any traffic (or any failure) already shows the full
// shard catalog at zero.
func newRouterMetrics(reg *obs.Registry, rt *Router, backends []string) *metrics {
	m := &metrics{
		requests: reg.NewCounterVec("xrouter_requests_total",
			"HTTP requests at the router by path and status code.", "path", "code"),
		shardReq: reg.NewCounterVec("xrouter_shard_requests_total",
			"Proxy attempts sent to each backend shard (retries count again).", "shard"),
		shardErr: reg.NewCounterVec("xrouter_shard_errors_total",
			"Failed proxy attempts by shard and kind (transport, unavailable, exhausted).", "shard", "kind"),
		retries: reg.NewCounter("xrouter_retry_total",
			"Proxy attempts re-sent to the next ring candidate after a failure."),
		shardLat: reg.NewHistogramVec("xrouter_shard_latency_seconds",
			"Latency of proxy attempts per backend shard.", nil, "shard"),
		fanout: reg.NewHistogram("xrouter_batch_fanout_shards",
			"Distinct shards each batch request fanned out to.",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		up: reg.NewGaugeVec("xrouter_backend_up",
			"1 while the backend's last probe (or proxy attempt) succeeded, else 0.", "backend"),
		draining: reg.NewGaugeVec("xrouter_backend_draining",
			"1 while the backend reports draining:true on /healthz, else 0.", "backend"),
	}
	for _, b := range backends {
		m.shardReq.With(b)
		m.shardErr.With(b, errKindTransport)
		m.shardErr.With(b, errKindUnavailable)
		m.shardErr.With(b, errKindExhausted)
		m.shardLat.With(b)
		// Backends start healthy until the first probe says otherwise, so
		// the gauges begin at 1/0.
		m.up.With(b).Set(1)
		m.draining.With(b).Set(0)
	}

	reg.NewFuncFamily("xrouter_healthy_backends",
		"Backends currently routable (healthy, not draining, not down).", "gauge").
		Attach(func() float64 { return float64(rt.routableCount()) })
	reg.NewFuncFamily("xrouter_uptime_seconds",
		"Seconds since the router started.", "gauge").
		Attach(func() float64 { return time.Since(rt.start).Seconds() })
	// Build metadata registers under its cross-tier name on both serve and
	// router registries, so one dashboard join covers the whole fleet.
	obs.RegisterBuildInfo(reg)
	return m
}

// observeState mirrors one backend's state transition into the health
// gauges.
func (m *metrics) observeState(addr string, st backendState) {
	switch st {
	case stateHealthy:
		m.up.With(addr).Set(1)
		m.draining.With(addr).Set(0)
	case stateDraining:
		m.up.With(addr).Set(0)
		m.draining.With(addr).Set(1)
	default:
		m.up.With(addr).Set(0)
		m.draining.With(addr).Set(0)
	}
}

package router

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// catalogRow matches one SERVING.md metrics-catalog table row, e.g.
// | `xrouter_requests_total{path,code}` | counter | ... |
var catalogRow = regexp.MustCompile("^\\| `(xrouter_[a-z_]+)(?:\\{[^}]*\\})?` \\| (counter|gauge|histogram) \\|")

// documentedRouterSeries reads the router families promised in SERVING.md's
// metrics catalog, keyed by family name with the documented type.
func documentedRouterSeries(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile("../../SERVING.md")
	if err != nil {
		t.Fatalf("reading SERVING.md: %v", err)
	}
	out := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		if m := catalogRow.FindStringSubmatch(sc.Text()); m != nil {
			if _, dup := out[m[1]]; dup {
				t.Errorf("SERVING.md documents %s twice", m[1])
			}
			out[m[1]] = m[2]
		}
	}
	if len(out) == 0 {
		t.Fatal("no xrouter_* rows found in SERVING.md metrics catalog")
	}
	return out
}

// parseExposition validates the Prometheus text format and returns TYPE
// declarations plus every sample keyed by full series.
func parseExposition(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	helped := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if !helped[parts[0]] {
				t.Errorf("TYPE before HELP for %s", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		val, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		if _, dup := samples[line[:idx]]; dup {
			t.Errorf("duplicate series %q", line[:idx])
		}
		samples[line[:idx]] = val
	}
	return types, samples
}

// TestRouterMetricsMatchDocumentedCatalog cross-checks SERVING.md's
// xrouter_* catalog against the live /metrics exposition in both
// directions: every documented family must render, every rendered family
// must be documented, and types must agree.
func TestRouterMetricsMatchDocumentedCatalog(t *testing.T) {
	documented := documentedRouterSeries(t)

	good := batchStub(t, 3)
	bad := newStub(t, http.StatusServiceUnavailable, `{"error":"no","trace_id":"x"}`)
	rt, ts := newTestRouter(t, testConfig(), good.URL, bad.URL)

	// Drive traffic over every instrumented path, including a retry and a
	// batch fan-out, so labeled series materialize.
	postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery))
	qb, _ := json.Marshal([]string{testQuery, testQuery + " x", testQuery + " y"})
	postJSON(t, ts.URL+"/estimate/batch", fmt.Sprintf(`{"sketch":"imdb","queries":%s}`, qb))
	getBody(t, ts.URL+"/healthz")
	rt.ProbeOnce(t.Context())

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	types, samples := parseExposition(t, string(body))

	for name, typ := range documented {
		got, ok := types[name]
		if !ok {
			t.Errorf("documented family %s missing from /metrics", name)
			continue
		}
		if got != typ {
			t.Errorf("family %s has type %s, documented as %s", name, got, typ)
		}
	}
	for name := range types {
		if name == "xserve_build_info" {
			// The one deliberately cross-tier family: build metadata is
			// registered on both serve and router registries (documented in
			// the serve half of the catalog).
			continue
		}
		if !strings.HasPrefix(name, "xrouter_") {
			t.Errorf("non-router family %s on the router registry", name)
			continue
		}
		if _, ok := documented[name]; !ok {
			t.Errorf("undocumented family %s exposed at /metrics", name)
		}
	}
	if _, ok := types["xserve_build_info"]; !ok {
		t.Error("xserve_build_info missing from the router registry")
	}

	// Spot-check series driven by the traffic above.
	if v := samples[`xrouter_requests_total{path="/estimate",code="200"}`]; v != 1 {
		t.Errorf("estimate request count %v, want 1", v)
	}
	if v := samples[fmt.Sprintf(`xrouter_shard_requests_total{shard=%q}`, good.URL)]; v < 1 {
		t.Errorf("good shard attempts %v, want >= 1", v)
	}
	if v := samples["xrouter_batch_fanout_shards_count"]; v != 1 {
		t.Errorf("fanout observations %v, want 1", v)
	}
	if v := samples["xrouter_healthy_backends"]; v < 1 {
		t.Errorf("healthy backends %v, want >= 1", v)
	}
	for _, b := range []string{good.URL, bad.URL} {
		if _, ok := samples[fmt.Sprintf(`xrouter_backend_up{backend=%q}`, b)]; !ok {
			t.Errorf("xrouter_backend_up series missing for %s", b)
		}
		if _, ok := samples[fmt.Sprintf(`xrouter_backend_draining{backend=%q}`, b)]; !ok {
			t.Errorf("xrouter_backend_draining series missing for %s", b)
		}
	}
}

// Package router is xserve's horizontal scale-out layer: a stdlib-only
// HTTP router that consistent-hashes sketch names across a fleet of
// backend xserve replicas, all loading the same sketch catalog.
//
// The router proxies POST /estimate to the shard owning the request's
// sketch name, fans POST /estimate/batch out shard-wise — each batch item
// is hashed by (sketch, query) so one large batch spreads over the whole
// fleet while repeated query shapes keep hitting the same replica's warm
// plan cache — and merges the per-item results back into input order with
// per-item error isolation: a shard that fails even after retry poisons
// only its own items, never the batch.
//
// A failed attempt (transport error, or a replica answering 502/503) is
// retried once against the next distinct backend on the ring, after a
// small backoff, under a per-attempt timeout. Client-level statuses
// (400/404/405/413/422/429/504) pass through untouched — they would fail
// identically on every replica, so retrying them only doubles work.
//
// A background prober keeps the ring honest: each backend's GET /healthz
// is polled on a fixed interval and classified three ways. A 200 is
// healthy; a 503 whose JSON body carries "draining":true is draining —
// the replica is finishing in-flight work before shutdown, so the router
// stops routing to it without counting errors or firing retries; anything
// else is down. Healthy probes re-include a backend automatically, and a
// transport failure during a proxied request marks the backend down
// immediately rather than waiting for the next probe tick.
//
// Because every replica serves the same catalog (PR 7's stateless binary
// sketches), any backend can answer any request — consistent hashing is a
// cache-affinity optimization, not a correctness requirement, which is
// what makes the retry-anywhere strategy sound. Estimates through the
// router are bit-identical to direct replica calls: single-estimate
// bodies are relayed verbatim and batch merges splice raw JSON items,
// so no float64 is ever re-parsed on the way through.
package router

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xsketch/internal/obs"
)

// Config tunes the router. Zero values select the defaults noted on each
// field.
type Config struct {
	// AttemptTimeout bounds one proxy attempt against one backend; expiry
	// counts as a transport failure and triggers the retry. Default: 15s
	// (above the replicas' 10s estimation timeout, so a replica's own 504
	// arrives as a response instead of being cut off mid-flight).
	AttemptTimeout time.Duration
	// RetryBackoff is the pause before re-sending a failed attempt to the
	// next ring candidate. Default: 25ms.
	RetryBackoff time.Duration
	// ProbeInterval is the health-probe period per backend. Default: 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe. Default: 2s.
	ProbeTimeout time.Duration
	// MaxBodyBytes bounds a request body; larger bodies answer 413.
	// Default: 1 MiB.
	MaxBodyBytes int64
	// MaxBatchQueries bounds the query count of one batch request before
	// fan-out (the replicas' own limit applies per sub-batch, so the
	// router must enforce the request-level cap itself). Default: 4096.
	MaxBatchQueries int
	// VirtualNodes is the ring points per backend (<= 0 selects
	// DefaultVirtualNodes).
	VirtualNodes int
	// Logger receives one structured JSON line per request and per backend
	// state transition; nil disables logging.
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 15 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 4096
	}
	return c
}

// backendState is one backend's routability classification.
type backendState int32

const (
	// stateHealthy backends receive traffic.
	stateHealthy backendState = iota
	// stateDraining backends answered their last probe with a
	// draining:true body: they are finishing in-flight work before
	// shutdown. The router routes around them silently — no error
	// counters, no retries fired by the drain itself.
	stateDraining
	// stateDown backends failed their last probe or a proxied request's
	// transport; they rejoin the ring on the next successful probe (or
	// successful desperation attempt when nothing else is routable).
	stateDown
)

// String names the state for health listings and logs.
func (s backendState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// backend is one replica the router fans out to.
type backend struct {
	addr  string
	state atomic.Int32
}

// A Router consistent-hashes sketch names across a fleet of xserve
// replicas: it proxies estimates shard-wise, retries failed attempts
// against the next ring candidate, probes replica health in the
// background, and exposes its own metrics registry. Create with New,
// expose via Handler, start probing with StartProbing.
type Router struct {
	cfg      Config
	ring     *Ring
	backends map[string]*backend
	log      *obs.Logger
	reg      *obs.Registry
	m        *metrics
	client   *http.Client
	mux      *http.ServeMux
	draining atomic.Bool
	start    time.Time
}

// New builds a router over the given backend base URLs (e.g.
// "http://10.0.0.7:8080"). At least one backend is required; addresses
// must be absolute http/https URLs and duplicates collapse.
func New(cfg Config, backendAddrs []string) (*Router, error) {
	if len(backendAddrs) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	for _, a := range backendAddrs {
		u, err := url.Parse(a)
		if err != nil {
			return nil, fmt.Errorf("router: backend %q: %v", a, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("router: backend %q must be an absolute http(s) URL", a)
		}
	}
	cfg = cfg.withDefaults()
	ring := NewRing(backendAddrs, cfg.VirtualNodes)
	rt := &Router{
		cfg:      cfg,
		ring:     ring,
		backends: make(map[string]*backend, len(ring.Backends())),
		log:      cfg.Logger,
		reg:      obs.NewRegistry(),
		client:   &http.Client{},
		start:    time.Now(),
	}
	for _, a := range ring.Backends() {
		rt.backends[a] = &backend{addr: a}
	}
	rt.m = newRouterMetrics(rt.reg, rt, ring.Backends())
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /estimate", rt.instrument("/estimate", rt.handleEstimate))
	rt.mux.HandleFunc("POST /estimate/batch", rt.instrument("/estimate/batch", rt.handleEstimateBatch))
	rt.mux.HandleFunc("GET /sketches", rt.instrument("/sketches", rt.handleSketches))
	rt.mux.HandleFunc("GET /healthz", rt.instrument("/healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /metrics", rt.instrument("/metrics", rt.handleMetrics))
	return rt, nil
}

// Handler returns the router's root handler, ready for an http.Server.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Backends returns the configured backend addresses, sorted.
func (rt *Router) Backends() []string { return rt.ring.Backends() }

// BackendStates reports each backend's current routability state by
// address ("healthy", "draining" or "down").
func (rt *Router) BackendStates() map[string]string {
	out := make(map[string]string, len(rt.backends))
	for a, b := range rt.backends {
		out[a] = backendState(b.state.Load()).String()
	}
	return out
}

// SetDraining marks the router itself as draining: its /healthz answers
// 503 (with draining:true) so upstream load balancers stop routing here,
// while in-flight proxies still complete. Call it right before
// http.Server.Shutdown.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Draining reports whether SetDraining(true) was called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// setState applies a backend state transition, mirroring it into the
// health gauges and logging only actual changes.
func (rt *Router) setState(b *backend, st backendState, reason string) {
	old := backendState(b.state.Swap(int32(st)))
	if old == st {
		return
	}
	rt.m.observeState(b.addr, st)
	rt.log.Info("backend state",
		"backend", b.addr,
		"from", old.String(),
		"to", st.String(),
		"reason", reason,
	)
}

// routableCount counts healthy backends.
func (rt *Router) routableCount() int {
	n := 0
	for _, b := range rt.backends {
		if backendState(b.state.Load()) == stateHealthy {
			n++
		}
	}
	return n
}

// candidatesFor orders the key's ring candidates for attempting: healthy
// backends first (in ring order), then — only if none are healthy — the
// draining and down ones as a last resort, so the router degrades to
// "try anything" rather than failing outright when the whole fleet looks
// unhealthy (e.g. before the first probe after a mass restart).
func (rt *Router) candidatesFor(key string) []*backend {
	cands := rt.ring.Candidates(key)
	routable := make([]*backend, 0, len(cands))
	rest := make([]*backend, 0, len(cands))
	for _, addr := range cands {
		b := rt.backends[addr]
		if backendState(b.state.Load()) == stateHealthy {
			routable = append(routable, b)
		} else {
			rest = append(rest, b)
		}
	}
	if len(routable) == 0 {
		return rest
	}
	return routable
}

// attemptResult is one proxied response, body fully read.
type attemptResult struct {
	status  int
	header  http.Header
	body    []byte
	backend string
}

// retryableStatus reports whether a replica status should be retried on
// the next ring candidate. 502/503 mean "this replica cannot serve right
// now"; every other status is a request-level answer that would repeat
// identically elsewhere.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable
}

// forward proxies method+path with the given body through the key's ring
// candidates: the owner first, then — after RetryBackoff — one retry
// against the next candidate. It returns the first non-retryable
// response, or an error when every attempt failed. audit is the request's
// X-Audit-Sample override, forwarded verbatim (empty omits the header).
func (rt *Router) forward(ctx context.Context, key, method, path string, body []byte, tid, audit string) (attemptResult, error) {
	cands := rt.candidatesFor(key)
	if len(cands) == 0 {
		return attemptResult{}, errors.New("no backends on the ring")
	}
	const maxAttempts = 2 // the owner plus one retry on the next candidate
	attempts := len(cands)
	if attempts > maxAttempts {
		attempts = maxAttempts
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		b := cands[i]
		if i > 0 {
			rt.m.retries.Inc()
			select {
			case <-time.After(rt.cfg.RetryBackoff):
			case <-ctx.Done():
				return attemptResult{}, ctx.Err()
			}
		}
		res, err := rt.attempt(ctx, b, method, path, body, tid, audit)
		if err != nil {
			rt.m.shardErr.With(b.addr, errKindTransport).Inc()
			rt.setState(b, stateDown, "proxy transport failure")
			lastErr = fmt.Errorf("backend %s: %w", b.addr, err)
			continue
		}
		if retryableStatus(res.status) {
			rt.m.shardErr.With(b.addr, errKindUnavailable).Inc()
			lastErr = fmt.Errorf("backend %s answered %d", b.addr, res.status)
			continue
		}
		// Any conclusive answer proves the backend is alive, even if the
		// answer is a client error — re-include it without waiting for the
		// next probe tick.
		rt.setState(b, stateHealthy, "proxy success")
		return res, nil
	}
	rt.m.shardErr.With(cands[attempts-1].addr, errKindExhausted).Inc()
	return attemptResult{}, fmt.Errorf("all %d attempts failed: %w", attempts, lastErr)
}

// attempt sends one proxy request to one backend under the per-attempt
// timeout, counting the shard request and its latency.
func (rt *Router) attempt(ctx context.Context, b *backend, method, path string, body []byte, tid, audit string) (attemptResult, error) {
	rt.m.shardReq.With(b.addr).Inc()
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, b.addr+path, bytes.NewReader(body))
	if err != nil {
		return attemptResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Forward the router's trace ID so one request carries one ID across
	// the fleet: the replica echoes it into its own logs and response.
	req.Header.Set(traceIDHeader, tid)
	// An audit-sampling override rides through unchanged, so clients (and
	// shadow-test harnesses) control replica-side accuracy sampling
	// identically whether they talk to a replica or the router. Without
	// the header, replicas hash the forwarded trace ID — the same
	// deterministic decision fleet-wide.
	if audit != "" {
		req.Header.Set(auditSampleHeader, audit)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.m.shardLat.With(b.addr).Observe(time.Since(start).Seconds())
		return attemptResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	rt.m.shardLat.With(b.addr).Observe(time.Since(start).Seconds())
	if err != nil {
		return attemptResult{}, err
	}
	return attemptResult{status: resp.StatusCode, header: resp.Header, body: data, backend: b.addr}, nil
}

// relay writes a proxied response through to the client, preserving the
// replica's status, body and the headers that matter (content type and
// backpressure hints).
func (rt *Router) relay(w http.ResponseWriter, res attemptResult) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// estimateRequest is the slice of the /estimate body the router needs for
// routing; the full body is forwarded verbatim, so unknown fields are the
// replica's to judge.
type estimateRequest struct {
	Sketch string `json:"sketch"`
}

func (rt *Router) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tid := traceID(r)
	body, ok := rt.readBody(w, r, tid)
	if !ok {
		return
	}
	var req estimateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, tid, fmt.Errorf("malformed request body: %w", err))
		return
	}
	// Single estimates shard by sketch name alone: all of one sketch's
	// point queries land on its owner replica, whose estimator and plan
	// caches stay hot for exactly that sketch.
	res, err := rt.forward(r.Context(), req.Sketch, http.MethodPost, "/estimate?"+r.URL.RawQuery, body, tid, r.Header.Get(auditSampleHeader))
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, tid, fmt.Errorf("estimate failed on every candidate: %w", err))
		return
	}
	rt.relay(w, res)
}

// batchRequest mirrors the replica's batch body closely enough to fan it
// out: items are re-grouped by shard and everything else is copied into
// each sub-request.
type batchRequest struct {
	Sketch  string   `json:"sketch"`
	Queries []string `json:"queries"`
	Workers int      `json:"workers"`
	Explain []bool   `json:"explain"`
}

// batchResponse is the merged body the router answers batches with.
// Results hold the replicas' item objects verbatim (raw JSON splicing —
// no float64 is re-parsed on the way through, so merged estimates are
// bit-identical to direct replica calls).
type batchResponse struct {
	Sketch         string            `json:"sketch"`
	Count          int               `json:"count"`
	Results        []json.RawMessage `json:"results"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	TraceID        string            `json:"trace_id"`
}

// shardGroup is the slice of one batch routed to a single backend.
type shardGroup struct {
	key   string // ring key of the group's first item, anchor for retries
	items []int  // original batch indices, ascending
	res   attemptResult
	err   error
}

func (rt *Router) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	tid := traceID(r)
	body, ok := rt.readBody(w, r, tid)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, tid, fmt.Errorf("malformed request body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		rt.writeError(w, http.StatusBadRequest, tid, errors.New("empty batch"))
		return
	}
	if len(req.Queries) > rt.cfg.MaxBatchQueries {
		rt.writeError(w, http.StatusRequestEntityTooLarge, tid,
			fmt.Errorf("batch of %d queries exceeds limit %d", len(req.Queries), rt.cfg.MaxBatchQueries))
		return
	}
	if len(req.Explain) > 0 && len(req.Explain) != len(req.Queries) {
		rt.writeError(w, http.StatusBadRequest, tid,
			fmt.Errorf("explain flags length %d != queries length %d", len(req.Explain), len(req.Queries)))
		return
	}

	// Partition items by shard. Batch items hash by (sketch, query) — not
	// by sketch alone — so one big batch spreads across the fleet while
	// repeated query shapes still pin to one replica's warm plan cache.
	// Grouping follows input order, so the group list (and therefore every
	// downstream merge decision) is deterministic for a given request and
	// fleet state.
	groupIdx := make(map[string]int)
	var groups []*shardGroup
	for i, q := range req.Queries {
		key := req.Sketch + "\x00" + q
		cands := rt.candidatesFor(key)
		if len(cands) == 0 {
			rt.writeError(w, http.StatusBadGateway, tid, errors.New("no backends on the ring"))
			return
		}
		addr := cands[0].addr
		gi, ok := groupIdx[addr]
		if !ok {
			gi = len(groups)
			groupIdx[addr] = gi
			groups = append(groups, &shardGroup{key: key})
		}
		groups[gi].items = append(groups[gi].items, i)
	}
	rt.m.fanout.Observe(float64(len(groups)))

	// Fan the sub-batches out concurrently; each group retries through its
	// own anchor key's candidate order independently.
	audit := r.Header.Get(auditSampleHeader)
	start := time.Now()
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *shardGroup) {
			defer wg.Done()
			sub := batchRequest{Sketch: req.Sketch, Workers: req.Workers}
			sub.Queries = make([]string, len(g.items))
			for j, i := range g.items {
				sub.Queries[j] = req.Queries[i]
			}
			if len(req.Explain) > 0 {
				sub.Explain = make([]bool, len(g.items))
				for j, i := range g.items {
					sub.Explain[j] = req.Explain[i]
				}
			}
			subBody, err := json.Marshal(sub)
			if err != nil {
				g.err = err
				return
			}
			g.res, g.err = rt.forward(r.Context(), g.key, http.MethodPost, "/estimate/batch", subBody, tid, audit)
		}(g)
	}
	wg.Wait()

	// A request-level client error (unknown sketch, malformed query,
	// replica shedding) would repeat on every shard, so relay the first
	// group's verdict — "first" by lowest original item index, which the
	// group construction order already guarantees.
	for _, g := range groups {
		if g.err == nil && g.res.status != http.StatusOK {
			rt.relay(w, g.res)
			return
		}
	}

	// Merge: scatter each group's raw result items back to their original
	// positions. A group that failed even after retry poisons only its own
	// items — each gets an error object while every other shard's results
	// survive with their exact bytes.
	out := make([]json.RawMessage, len(req.Queries))
	sketchName := req.Sketch
	itemErrs := 0
	for _, g := range groups {
		if g.err != nil {
			msg, _ := json.Marshal(fmt.Sprintf("shard failed: %v", g.err))
			item := json.RawMessage(fmt.Sprintf(`{"estimate":0,"truncated":false,"error":%s}`, msg))
			for _, i := range g.items {
				out[i] = item
				itemErrs++
			}
			continue
		}
		var sub batchResponse
		if uerr := json.Unmarshal(g.res.body, &sub); uerr != nil || len(sub.Results) != len(g.items) {
			msg, _ := json.Marshal(fmt.Sprintf("shard %s answered an unparseable batch body", g.res.backend))
			item := json.RawMessage(fmt.Sprintf(`{"estimate":0,"truncated":false,"error":%s}`, msg))
			for _, i := range g.items {
				out[i] = item
				itemErrs++
			}
			continue
		}
		if sub.Sketch != "" {
			sketchName = sub.Sketch
		}
		for j, i := range g.items {
			out[i] = sub.Results[j]
		}
	}
	if itemErrs > 0 {
		rt.log.Info("batch merged with shard failures",
			"trace_id", tid, "items", len(out), "failed_items", itemErrs, "shards", len(groups))
	}
	rt.writeJSON(w, http.StatusOK, batchResponse{
		Sketch:         sketchName,
		Count:          len(out),
		Results:        out,
		ElapsedSeconds: time.Since(start).Seconds(),
		TraceID:        tid,
	})
}

func (rt *Router) handleSketches(w http.ResponseWriter, r *http.Request) {
	tid := traceID(r)
	// Every replica serves the same catalog, so any healthy backend's
	// listing is authoritative; the empty key picks a stable owner.
	res, err := rt.forward(r.Context(), "", http.MethodGet, "/sketches", nil, tid, "")
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, tid, fmt.Errorf("sketches failed on every candidate: %w", err))
		return
	}
	rt.relay(w, res)
}

// routerHealth is the body of the router's GET /healthz.
type routerHealth struct {
	Status        string          `json:"status"`
	Draining      bool            `json:"draining"`
	Healthy       int             `json:"healthy"`
	Backends      []backendHealth `json:"backends"`
	UptimeSeconds float64         `json:"uptime_seconds"`
}

// backendHealth is one backend's entry in the router health listing.
type backendHealth struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := routerHealth{
		Status:        "ok",
		Healthy:       rt.routableCount(),
		UptimeSeconds: time.Since(rt.start).Seconds(),
	}
	for _, addr := range rt.ring.Backends() {
		h.Backends = append(h.Backends, backendHealth{
			Addr:  addr,
			State: backendState(rt.backends[addr].state.Load()).String(),
		})
	}
	code := http.StatusOK
	switch {
	case rt.Draining():
		h.Status = "draining"
		h.Draining = true
		code = http.StatusServiceUnavailable
	case h.Healthy == 0:
		h.Status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, code, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.reg.WriteTo(w)
}

// readBody reads a size-limited request body, answering 413 for oversized
// input. It reports whether the caller may proceed.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request, tid string) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rt.writeError(w, http.StatusRequestEntityTooLarge, tid,
				fmt.Errorf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes))
			return nil, false
		}
		rt.writeError(w, http.StatusBadRequest, tid, fmt.Errorf("reading request body: %w", err))
		return nil, false
	}
	return body, true
}

// errorResponse is the body of every router-originated non-2xx answer,
// the same shape the replicas use.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id"`
}

func (rt *Router) writeError(w http.ResponseWriter, code int, tid string, err error) {
	rt.writeJSON(w, code, errorResponse{Error: err.Error(), TraceID: tid})
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// traceIDHeader carries the request's trace ID in both directions, and
// onward to the backend replicas.
const traceIDHeader = "X-Trace-Id"

// auditSampleHeader is the replicas' accuracy-sampling override header
// (see internal/serve); the router forwards it verbatim so fleet-wide
// sample control works through either tier.
const auditSampleHeader = "X-Audit-Sample"

type traceKey struct{}

// traceID reads the request's assigned trace ID (set by instrument).
func traceID(r *http.Request) string {
	if id, ok := r.Context().Value(traceKey{}).(string); ok {
		return id
	}
	return ""
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the router's per-request observability
// chain: trace-ID assignment (honoring a client-supplied header), request
// counting by path and status, and one structured JSON log line.
func (rt *Router) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tid := r.Header.Get(traceIDHeader)
		if tid == "" {
			tid = obs.NewTraceID()
		}
		w.Header().Set(traceIDHeader, tid)
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, tid))
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sr, r)
		elapsed := time.Since(start)
		rt.m.requests.With(path, strconv.Itoa(sr.code)).Inc()
		rt.log.Info("request",
			"trace_id", tid,
			"method", r.Method,
			"path", path,
			"status", sr.code,
			"elapsed_seconds", elapsed.Seconds(),
			"remote", r.RemoteAddr,
		)
	}
}

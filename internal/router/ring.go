package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the number of ring points each backend
// contributes. 64 points per backend keeps the load imbalance across a
// handful of replicas within a few percent while the ring stays small
// enough to rebuild instantly.
const DefaultVirtualNodes = 64

// A Ring is a consistent-hash ring over backend addresses. Construction
// is deterministic and seed-free: every backend contributes a fixed set
// of virtual points at positions derived only from its address and
// the point index, so two routers configured with the same backends — in
// any order — route every key identically. Lookups walk the ring
// clockwise and return each distinct backend once, which is exactly the
// retry candidate order.
type Ring struct {
	points   []ringPoint // sorted by hash
	backends []string    // sorted, distinct
}

// ringPoint is one virtual node: a position on the ring owned by a backend.
type ringPoint struct {
	hash    uint64
	backend string
}

// NewRing builds a ring over the given backend addresses with vnodes
// virtual points per backend (<= 0 selects DefaultVirtualNodes).
// Duplicate addresses collapse to one backend.
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(backends))
	distinct := make([]string, 0, len(backends))
	for _, b := range backends {
		if !seen[b] {
			seen[b] = true
			distinct = append(distinct, b)
		}
	}
	sort.Strings(distinct)
	r := &Ring{
		points:   make([]ringPoint, 0, len(distinct)*vnodes),
		backends: distinct,
	}
	for _, b := range distinct {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(b + "#" + strconv.Itoa(i)), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on the backend address so the
		// ring order never depends on sort stability.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// ringHash is the ring's position function: 64-bit FNV-1a of the key,
// pushed through an avalanche finalizer. The finalizer is load-bearing:
// FNV's per-byte multiply spreads differing prefixes well, but keys that
// differ only in a short suffix (exactly what a batch of near-identical
// queries produces) end up within a ~2^48-wide window of each other on a
// 2^64 ring — close enough to land on one backend's arc and defeat the
// fan-out entirely. Full avalanche makes neighboring keys uniform.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Stafford variant 13): every input
// bit flips every output bit with probability ~1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Backends returns the distinct backend addresses on the ring, sorted.
func (r *Ring) Backends() []string {
	return append([]string(nil), r.backends...)
}

// Candidates returns every backend in ring order starting at the key's
// position: the first entry is the key's owner, the rest are the retry
// candidates in the order a failed attempt should try them. The slice is
// freshly allocated and contains each backend exactly once.
func (r *Ring) Candidates(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.backends))
	seen := make(map[string]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// Owner returns the backend owning the key (the first Candidates entry),
// or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	c := r.Candidates(key)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}

package router

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// probeHealth is the slice of a replica's /healthz body the prober reads:
// just enough to tell a draining replica from a dead one.
type probeHealth struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
}

// classifyProbe maps one probe outcome to a backend state. A 200 is
// healthy. A non-200 whose body admits to draining (the explicit flag, or
// the status string for older replicas) is draining — deliberate, not a
// failure. Everything else is down.
func classifyProbe(code int, body []byte) backendState {
	if code == http.StatusOK {
		return stateHealthy
	}
	var h probeHealth
	if err := json.Unmarshal(body, &h); err == nil && (h.Draining || h.Status == "draining") {
		return stateDraining
	}
	return stateDown
}

// probeBackend runs one /healthz probe against one backend and applies the
// resulting state transition.
func (rt *Router) probeBackend(ctx context.Context, b *backend) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.addr+"/healthz", nil)
	if err != nil {
		rt.setState(b, stateDown, "probe request: "+err.Error())
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.setState(b, stateDown, "probe transport failure")
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		rt.setState(b, stateDown, "probe body read failure")
		return
	}
	st := classifyProbe(resp.StatusCode, body)
	reason := "probe"
	switch st {
	case stateDraining:
		reason = "probe reported draining"
	case stateDown:
		reason = "probe failed"
	}
	rt.setState(b, st, reason)
}

// ProbeOnce probes every backend concurrently and waits for the round to
// finish. Call it at startup to settle initial states before taking
// traffic; tests use it to drive the prober deterministically.
func (rt *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, addr := range rt.ring.Backends() {
		b := rt.backends[addr]
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probeBackend(ctx, b)
		}(b)
	}
	wg.Wait()
}

// StartProbing launches the background probe loop at the configured
// interval and returns a stop function that halts it and waits for the
// in-flight round to finish.
func (rt *Router) StartProbing() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(rt.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				rt.ProbeOnce(ctx)
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

package router

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOrderAndDuplicateIndependence(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 0)
	if !reflect.DeepEqual(a.Backends(), b.Backends()) {
		t.Fatalf("backends differ: %v vs %v", a.Backends(), b.Backends())
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("sketch-%d", i)
		if !reflect.DeepEqual(a.Candidates(key), b.Candidates(key)) {
			t.Fatalf("key %q routes differently: %v vs %v", key, a.Candidates(key), b.Candidates(key))
		}
	}
}

func TestRingCandidatesDistinctAndComplete(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(backends, 0)
	for i := 0; i < 200; i++ {
		cands := r.Candidates(fmt.Sprintf("key-%d", i))
		if len(cands) != len(backends) {
			t.Fatalf("key %d: %d candidates, want %d", i, len(cands), len(backends))
		}
		seen := make(map[string]bool)
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %d: duplicate candidate %s", i, c)
			}
			seen[c] = true
		}
	}
	if got := r.Owner("key-0"); got != r.Candidates("key-0")[0] {
		t.Errorf("Owner %q != first candidate", got)
	}
}

func TestRingDistribution(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	r := NewRing(backends, 0)
	counts := make(map[string]int)
	const keys = 30000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("sketch-%d\x00query-%d", i%97, i))]++
	}
	// With 64 virtual nodes per backend the split should be within a few
	// percent of even; 15% is a very loose floor that still catches a
	// broken hash or a collapsed vnode loop.
	for _, b := range backends {
		if frac := float64(counts[b]) / keys; frac < 0.15 {
			t.Errorf("backend %s owns only %.1f%% of keys: %v", b, 100*frac, counts)
		}
	}
}

func TestRingScaleOutMovesFewKeys(t *testing.T) {
	before := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	after := NewRing([]string{"http://a", "http://b", "http://c", "http://d"}, 0)
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	// Consistent hashing should move roughly 1/4 of the keys when growing
	// 3 -> 4 backends; naive mod-N hashing would move ~3/4.
	if frac := float64(moved) / keys; frac > 0.5 {
		t.Errorf("%.1f%% of keys moved on scale-out, want well under 50%%", 100*frac)
	}
}

// TestRingNearIdenticalKeysSpread is the regression test for the raw-FNV
// clustering bug: keys differing only in a short suffix (a batch of
// near-identical queries) hash within a ~2^48 window of each other and —
// without the avalanche finalizer — all land on one backend's arc,
// silently defeating batch fan-out.
func TestRingNearIdenticalKeysSpread(t *testing.T) {
	r := NewRing([]string{"http://127.0.0.1:40001", "http://127.0.0.1:40002"}, 0)
	counts := make(map[string]int)
	const keys = 64
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("imdb\x00t0 in movie, t1 in t0/actor%d", i))]++
	}
	for b, n := range counts {
		if n < keys/5 {
			t.Errorf("backend %s owns %d/%d near-identical keys (clustered): %v", b, n, keys, counts)
		}
	}
	if len(counts) != 2 {
		t.Errorf("near-identical keys landed on %d backends, want 2: %v", len(counts), counts)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if c := r.Candidates("anything"); c != nil {
		t.Errorf("empty ring candidates = %v, want nil", c)
	}
	if o := r.Owner("anything"); o != "" {
		t.Errorf("empty ring owner = %q, want empty", o)
	}
}

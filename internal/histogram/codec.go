package histogram

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Binary encode/decode hooks for the summary types, used by the standalone
// synopsis format (internal/catalog). The layouts are little-endian and
// fully deterministic: equal summaries encode to equal bytes, and decoding
// reconstructs values whose estimates are Float64bits-identical to the
// originals (frequencies, centroids and wavelet coefficients travel as raw
// IEEE-754 bit patterns, never through text formatting). Decoders validate
// every length prefix against the remaining input and return wrapped
// errors instead of panicking on truncated or corrupt data.

// Value-summary kind tags written by AppendValueSummaryBinary.
const (
	valueSummaryNone    = 0 // nil summary
	valueSummaryHist    = 1 // *ValueHistogram
	valueSummaryWavelet = 2 // *Wavelet
)

// appendUvarint-style fixed-width helpers: the format favors fixed-width
// little-endian fields over varints so offsets stay predictable and the
// golden-fixture diff of a corrupted file points at the broken field.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// ByteReader is a bounds-checked cursor over an encoded byte slice. Every
// read reports an error on underflow; the zero error state sticks, so a
// decode can issue its reads linearly and check once per logical field
// group.
type ByteReader struct {
	data []byte
	err  error
}

// NewByteReader wraps data for decoding. It is exported for the catalog
// package, which shares the same primitive field layout.
func NewByteReader(data []byte) *ByteReader { return &ByteReader{data: data} }

// Err returns the first read error, or nil.
func (r *ByteReader) Err() error { return r.err }

// Rest returns the undecoded remainder.
func (r *ByteReader) Rest() []byte { return r.data }

// Len returns the number of undecoded bytes.
func (r *ByteReader) Len() int { return len(r.data) }

func (r *ByteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("histogram: truncated input reading %s (%d bytes left)", what, len(r.data))
	}
}

// U32 reads a little-endian uint32.
func (r *ByteReader) U32(what string) uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 4 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data)
	r.data = r.data[4:]
	return v
}

// U64 reads a little-endian uint64.
func (r *ByteReader) U64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

// I64 reads a little-endian int64.
func (r *ByteReader) I64(what string) int64 { return int64(r.U64(what)) }

// F64 reads a float64 as raw IEEE-754 bits.
func (r *ByteReader) F64(what string) float64 { return math.Float64frombits(r.U64(what)) }

// Byte reads one byte.
func (r *ByteReader) Byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 1 {
		r.fail(what)
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

// Bytes reads n raw bytes.
func (r *ByteReader) Bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data) < n {
		r.fail(what)
		return nil
	}
	v := r.data[:n]
	r.data = r.data[n:]
	return v
}

// Count reads a uint32 length prefix and validates it against the bytes
// still available at minBytesPer each, rejecting lengths that could not
// possibly fit (the standard defense against a corrupt prefix driving a
// huge allocation).
func (r *ByteReader) Count(minBytesPer int, what string) int {
	n := r.U32(what)
	if r.err != nil {
		return 0
	}
	if minBytesPer > 0 && int(n) > len(r.data)/minBytesPer {
		r.err = fmt.Errorf("histogram: %s count %d exceeds remaining input (%d bytes)", what, n, len(r.data))
		return 0
	}
	return int(n)
}

// AppendBinary appends the histogram's binary form: dims, bucket count,
// then per bucket the frequency followed by the centroid coordinates.
func (h *Histogram) AppendBinary(buf []byte) []byte {
	buf = appendU32(buf, uint32(h.dims))
	buf = appendU32(buf, uint32(len(h.buckets)))
	for _, b := range h.buckets {
		buf = appendF64(buf, b.Freq)
		for _, c := range b.Centroid {
			buf = appendF64(buf, c)
		}
	}
	return buf
}

// DecodeHistogramBinary decodes a histogram appended by AppendBinary,
// returning it with the unconsumed remainder of data.
func DecodeHistogramBinary(data []byte) (*Histogram, []byte, error) {
	r := NewByteReader(data)
	h, err := decodeHistogram(r)
	if err != nil {
		return nil, nil, err
	}
	return h, r.Rest(), nil
}

func decodeHistogram(r *ByteReader) (*Histogram, error) {
	dims := r.U32("histogram dims")
	if r.Err() == nil && dims > 1<<16 {
		return nil, fmt.Errorf("histogram: implausible dimensionality %d", dims)
	}
	per := 8 * (1 + int(dims))
	n := r.Count(per, "histogram buckets")
	h := &Histogram{dims: int(dims)}
	for i := 0; i < n; i++ {
		b := Bucket{Freq: r.F64("bucket freq"), Centroid: make([]float64, dims)}
		for j := range b.Centroid {
			b.Centroid[j] = r.F64("bucket centroid")
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		h.buckets = append(h.buckets, b)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return h, nil
}

// AppendBinary appends the equi-depth value histogram's binary form:
// total, bucket count, then per bucket lo, hi, count, distinct-values.
func (h *ValueHistogram) AppendBinary(buf []byte) []byte {
	buf = appendU64(buf, uint64(h.total))
	buf = appendU32(buf, uint32(len(h.buckets)))
	for _, b := range h.buckets {
		buf = appendI64(buf, b.lo)
		buf = appendI64(buf, b.hi)
		buf = appendU64(buf, uint64(b.count))
		buf = appendU64(buf, uint64(b.dv))
	}
	return buf
}

// DecodeValueHistogramBinary decodes a value histogram appended by
// AppendBinary, returning it with the unconsumed remainder of data.
func DecodeValueHistogramBinary(data []byte) (*ValueHistogram, []byte, error) {
	r := NewByteReader(data)
	h, err := decodeValueHistogram(r)
	if err != nil {
		return nil, nil, err
	}
	return h, r.Rest(), nil
}

func decodeValueHistogram(r *ByteReader) (*ValueHistogram, error) {
	h := &ValueHistogram{total: int(r.U64("value-histogram total"))}
	n := r.Count(32, "value-histogram buckets")
	for i := 0; i < n; i++ {
		b := vbucket{
			lo:    r.I64("value-bucket lo"),
			hi:    r.I64("value-bucket hi"),
			count: int(r.U64("value-bucket count")),
			dv:    int(r.U64("value-bucket dv")),
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if b.hi < b.lo {
			return nil, fmt.Errorf("histogram: value bucket %d has inverted range [%d, %d]", i, b.lo, b.hi)
		}
		if b.count < 0 || b.dv < 0 {
			return nil, fmt.Errorf("histogram: value bucket %d has negative counts", i)
		}
		h.buckets = append(h.buckets, b)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if h.total < 0 {
		return nil, fmt.Errorf("histogram: negative value-histogram total %d", h.total)
	}
	return h, nil
}

// AppendBinary appends the wavelet synopsis's binary form: lo, hi, grid,
// total, then the retained coefficients as (index, value) pairs in
// ascending index order (deterministic bytes for equal synopses).
func (w *Wavelet) AppendBinary(buf []byte) []byte {
	buf = appendI64(buf, w.lo)
	buf = appendI64(buf, w.hi)
	buf = appendU32(buf, uint32(w.grid))
	buf = appendU64(buf, uint64(w.total))
	idxs := make([]int, 0, len(w.coeffs))
	for i := range w.coeffs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	buf = appendU32(buf, uint32(len(idxs)))
	for _, i := range idxs {
		buf = appendU32(buf, uint32(i))
		buf = appendF64(buf, w.coeffs[i])
	}
	return buf
}

// DecodeWaveletBinary decodes a wavelet synopsis appended by AppendBinary,
// returning it with the unconsumed remainder of data. The reconstruction
// cache is rebuilt eagerly, exactly as NewWavelet does, so the decoded
// synopsis is safe for concurrent Selectivity calls.
func DecodeWaveletBinary(data []byte) (*Wavelet, []byte, error) {
	r := NewByteReader(data)
	w, err := decodeWavelet(r)
	if err != nil {
		return nil, nil, err
	}
	return w, r.Rest(), nil
}

func decodeWavelet(r *ByteReader) (*Wavelet, error) {
	w := &Wavelet{
		lo:     r.I64("wavelet lo"),
		hi:     r.I64("wavelet hi"),
		grid:   int(r.U32("wavelet grid")),
		total:  int(r.U64("wavelet total")),
		coeffs: map[int]float64{},
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if w.grid < 1 || w.grid > 1<<20 || w.grid&(w.grid-1) != 0 {
		return nil, fmt.Errorf("histogram: wavelet grid %d is not a positive power of two", w.grid)
	}
	if w.total < 0 {
		return nil, fmt.Errorf("histogram: negative wavelet total %d", w.total)
	}
	if w.hi < w.lo {
		return nil, fmt.Errorf("histogram: wavelet range [%d, %d] inverted", w.lo, w.hi)
	}
	n := r.Count(12, "wavelet coefficients")
	for i := 0; i < n; i++ {
		idx := int(r.U32("coefficient index"))
		val := r.F64("coefficient value")
		if r.Err() != nil {
			return nil, r.Err()
		}
		if idx < 0 || idx >= w.grid {
			return nil, fmt.Errorf("histogram: wavelet coefficient index %d outside grid %d", idx, w.grid)
		}
		if _, dup := w.coeffs[idx]; dup {
			return nil, fmt.Errorf("histogram: duplicate wavelet coefficient index %d", idx)
		}
		w.coeffs[idx] = val
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	w.reconstruct()
	return w, nil
}

// AppendValueSummaryBinary appends a kind-tagged value summary (nil, an
// equi-depth histogram, or a wavelet synopsis).
func AppendValueSummaryBinary(buf []byte, s ValueSummary) ([]byte, error) {
	switch v := s.(type) {
	case nil:
		return append(buf, valueSummaryNone), nil
	case *ValueHistogram:
		return v.AppendBinary(append(buf, valueSummaryHist)), nil
	case *Wavelet:
		return v.AppendBinary(append(buf, valueSummaryWavelet)), nil
	default:
		return nil, fmt.Errorf("histogram: cannot encode value summary of type %T", s)
	}
}

// DecodeValueSummaryBinary decodes a kind-tagged value summary appended by
// AppendValueSummaryBinary; a nil summary decodes to nil.
func DecodeValueSummaryBinary(data []byte) (ValueSummary, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("histogram: truncated input reading value-summary kind")
	}
	kind, rest := data[0], data[1:]
	switch kind {
	case valueSummaryNone:
		return nil, rest, nil
	case valueSummaryHist:
		h, rest, err := DecodeValueHistogramBinary(rest)
		if err != nil {
			return nil, nil, err
		}
		return h, rest, nil
	case valueSummaryWavelet:
		w, rest, err := DecodeWaveletBinary(rest)
		if err != nil {
			return nil, nil, err
		}
		return w, rest, nil
	default:
		return nil, nil, fmt.Errorf("histogram: unknown value-summary kind %d", kind)
	}
}

package histogram

import (
	"math"
	"sort"
)

// ValueHistogram is a one-dimensional equi-depth histogram over element
// values, the paper's per-node value summary H(v). It supports estimating
// the fraction of values falling inside an integer range, with uniform
// interpolation inside buckets (the standard equi-depth estimate).
type ValueHistogram struct {
	total   int
	buckets []vbucket
}

type vbucket struct {
	lo, hi int64 // inclusive value bounds
	count  int   // number of values in the bucket
	dv     int   // number of distinct values in the bucket
}

// NewValueHistogram builds an equi-depth histogram with at most maxBuckets
// buckets over the given values. A nil/empty input yields a histogram whose
// selectivities are all zero.
func NewValueHistogram(values []int64, maxBuckets int) *ValueHistogram {
	h := &ValueHistogram{total: len(values)}
	if len(values) == 0 {
		return h
	}
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	sorted := make([]int64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	per := (len(sorted) + maxBuckets - 1) / maxBuckets
	i := 0
	for i < len(sorted) {
		j := i + per
		if j > len(sorted) {
			j = len(sorted)
		}
		// Extend the bucket so equal values never straddle a boundary
		// (keeps the equi-depth estimate consistent).
		for j < len(sorted) && sorted[j] == sorted[j-1] {
			j++
		}
		b := vbucket{lo: sorted[i], hi: sorted[j-1], count: j - i}
		dv := 1
		for k := i + 1; k < j; k++ {
			if sorted[k] != sorted[k-1] {
				dv++
			}
		}
		b.dv = dv
		h.buckets = append(h.buckets, b)
		i = j
	}
	return h
}

// NumBuckets returns the number of buckets (the size-model unit).
func (h *ValueHistogram) NumBuckets() int { return len(h.buckets) }

// Total returns the number of summarized values.
func (h *ValueHistogram) Total() int { return h.total }

// Selectivity estimates the fraction of values within [lo, hi] (inclusive).
// Buckets fully inside the range contribute all of their mass; partially
// overlapping buckets contribute proportionally to the overlapped share of
// their value span (continuous-uniform assumption).
func (h *ValueHistogram) Selectivity(lo, hi int64) float64 {
	if h.total == 0 || hi < lo {
		return 0
	}
	match := 0.0
	for _, b := range h.buckets {
		if b.hi < lo || b.lo > hi {
			continue
		}
		if lo <= b.lo && b.hi <= hi {
			match += float64(b.count)
			continue
		}
		// Partial overlap: interpolate over the bucket's span, clamping to
		// avoid division by zero on single-value buckets (and to survive
		// b.hi-b.lo overflow on absurd ranges).
		span := float64(b.hi-b.lo) + 1
		if span < 1 {
			span = 1
		}
		olo, ohi := maxI64(lo, b.lo), minI64(hi, b.hi)
		overlap := float64(ohi-olo) + 1
		match += float64(b.count) * overlap / span
	}
	frac := match / float64(h.total)
	// Clamp: overflowed spans can push the interpolated overlap past the
	// bucket count; a selectivity is always a fraction.
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// EstimateCount estimates how many of the summarized values fall in
// [lo, hi].
func (h *ValueHistogram) EstimateCount(lo, hi int64) float64 {
	return h.Selectivity(lo, hi) * float64(h.total)
}

// Domain returns the [min, max] of the summarized values and false when the
// histogram is empty.
func (h *ValueHistogram) Domain() (int64, int64, bool) {
	if len(h.buckets) == 0 {
		return 0, 0, false
	}
	return h.buckets[0].lo, h.buckets[len(h.buckets)-1].hi, true
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Quantile returns an approximate q-quantile (0 <= q <= 1) of the
// summarized values.
func (h *ValueHistogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	target := q * float64(h.total)
	acc := 0.0
	for _, b := range h.buckets {
		if b.count == 0 {
			continue
		}
		if acc+float64(b.count) >= target {
			within := (target - acc) / float64(b.count)
			if within < 0 {
				within = 0
			}
			if within > 1 {
				within = 1
			}
			return b.lo + int64(math.Round(within*float64(b.hi-b.lo)))
		}
		acc += float64(b.count)
	}
	return h.buckets[len(h.buckets)-1].hi
}

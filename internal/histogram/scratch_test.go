package histogram

import (
	"math"
	"testing"
)

// scratchTestHist builds a small 2-dim histogram with duplicate coordinates
// so that conditional matches select strict subsets and the nearest-match
// fallback is reachable.
func scratchTestHist() *Histogram {
	return FromBuckets(2, []Bucket{
		{Centroid: []float64{1, 2}, Freq: 0.25},
		{Centroid: []float64{1, 3}, Freq: 0.25},
		{Centroid: []float64{2, 2}, Freq: 0.30},
		{Centroid: []float64{3, 5}, Freq: 0.20},
	})
}

// TestMatchIntoEquivalence asserts MatchInto selects bit-identical bucket
// sets and denominators to Match for exact matches, the nearest-match
// fallback, and the empty condition.
func TestMatchIntoEquivalence(t *testing.T) {
	h := scratchTestHist()
	cases := []struct {
		dims []int
		vals []float64
	}{
		{nil, nil},
		{[]int{0}, []float64{1}},
		{[]int{0}, []float64{2}},
		{[]int{0, 1}, []float64{1, 3}},
		{[]int{0}, []float64{7}},    // nearest fallback, single winner
		{[]int{1}, []float64{2.5}},  // nearest fallback, tie
		{[]int{0}, []float64{-1.5}}, // nearest fallback below range
	}
	var buf []Bucket
	for _, c := range cases {
		want, wantFreq := h.Match(c.dims, c.vals)
		var got []Bucket
		var gotFreq float64
		got, gotFreq = h.MatchInto(buf, c.dims, c.vals)
		if len(c.dims) != 0 {
			buf = got
		}
		if math.Float64bits(gotFreq) != math.Float64bits(wantFreq) {
			t.Fatalf("cond %v=%v: freq %v != %v", c.dims, c.vals, gotFreq, wantFreq)
		}
		if len(got) != len(want) {
			t.Fatalf("cond %v=%v: %d buckets != %d", c.dims, c.vals, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i].Freq) != math.Float64bits(want[i].Freq) {
				t.Fatalf("cond %v=%v: bucket %d freq differs", c.dims, c.vals, i)
			}
			for j := range got[i].Centroid {
				if math.Float64bits(got[i].Centroid[j]) != math.Float64bits(want[i].Centroid[j]) {
					t.Fatalf("cond %v=%v: bucket %d coord %d differs", c.dims, c.vals, i, j)
				}
			}
		}
	}
}

// TestCondSumProductIntoEquivalence asserts the scratch form computes
// bit-identical values to CondSumProduct and that a warmed buffer makes the
// lookup allocation-free.
func TestCondSumProductIntoEquivalence(t *testing.T) {
	h := scratchTestHist()
	cases := []struct {
		eDims []int
		dims  []int
		vals  []float64
	}{
		{[]int{1}, nil, nil},
		{[]int{0}, []int{1}, []float64{2}},
		{[]int{0, 1}, []int{0}, []float64{1}},
		{[]int{1}, []int{0}, []float64{9}}, // fallback path
	}
	var buf []Bucket
	for _, c := range cases {
		want := h.CondSumProduct(c.eDims, c.dims, c.vals)
		var got float64
		got, buf = h.CondSumProductInto(buf, c.eDims, c.dims, c.vals)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("eDims %v cond %v=%v: %v != %v", c.eDims, c.dims, c.vals, got, want)
		}
	}

	// Steady state: a buffer grown once is reused without allocating.
	allocs := testing.AllocsPerRun(100, func() {
		_, buf = h.CondSumProductInto(buf, []int{0}, []int{1}, []float64{2})
	})
	if allocs != 0 {
		t.Fatalf("warmed CondSumProductInto allocates %v/op", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		got, _ := h.MatchInto(buf[:0], []int{0}, []float64{7})
		if len(got) == 0 {
			t.Fatal("no buckets matched")
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed MatchInto allocates %v/op", allocs)
	}
}

package histogram_test

import (
	"fmt"

	"xsketch/internal/histogram"
)

// ExampleCompress reproduces the paper's Figure 4 computation: the joint
// edge distribution f_A(b, c) = {(10,100): 0.5, (100,10): 0.5} yields
// Σ f·b·c = 1000 expected (b, c) pairs per a element.
func ExampleCompress() {
	f := histogram.NewSparse(2)
	f.Add([]int32{10, 100}, 1)
	f.Add([]int32{100, 10}, 1)
	f.Normalize()

	exact := histogram.Compress(f, 4) // enough buckets: lossless
	coarse := histogram.Compress(f, 1)

	fmt.Printf("exact   Σ f·b·c = %.0f\n", exact.SumProduct([]int{0, 1}))
	fmt.Printf("1-bucket Σ f·b·c = %.0f (correlation lost)\n", coarse.SumProduct([]int{0, 1}))
	// Output:
	// exact   Σ f·b·c = 1000
	// 1-bucket Σ f·b·c = 3025 (correlation lost)
}

// ExampleHistogram_CondSumProduct evaluates the paper's Section 4
// conditional term F_P(k, y | p) from the histogram H_P(k, y, p).
func ExampleHistogram_CondSumProduct() {
	hp := histogram.FromBuckets(3, []histogram.Bucket{
		{Centroid: []float64{2, 1, 2}, Freq: 0.25},
		{Centroid: []float64{1, 1, 2}, Freq: 0.25},
		{Centroid: []float64{1, 1, 1}, Freq: 0.50},
	})
	fmt.Printf("F_P(k,y | p=2) = %.2f\n", hp.CondSumProduct([]int{0, 1}, []int{2}, []float64{2}))
	fmt.Printf("F_P(k,y | p=1) = %.2f\n", hp.CondSumProduct([]int{0, 1}, []int{2}, []float64{1}))
	// Output:
	// F_P(k,y | p=2) = 1.50
	// F_P(k,y | p=1) = 1.00
}

// ExampleNewValueHistogram estimates a range predicate's selectivity.
func ExampleNewValueHistogram() {
	years := []int64{1998, 1999, 2001, 2002}
	h := histogram.NewValueHistogram(years, 4)
	fmt.Printf("P(year > 2000) = %.2f\n", h.Selectivity(2001, 1<<62))
	// Output:
	// P(year > 2000) = 0.50
}

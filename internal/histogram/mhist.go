package histogram

import (
	"fmt"
	"math"
	"sort"
)

// Bucket is one weighted centroid of a compressed multidimensional
// distribution: it represents Freq probability mass located at Centroid in
// count space. When a bucket summarizes a single exact point the centroid
// coordinates are integral.
type Bucket struct {
	Centroid []float64
	Freq     float64
}

// Histogram is the compressed form of an edge distribution: a small set of
// weighted centroid buckets. The paper's estimation framework only ever
// needs sums of freq * Π(counts) over (conditioned subsets of) the
// distribution, which centroid buckets support directly.
type Histogram struct {
	dims    int
	buckets []Bucket
}

// Dims returns the dimensionality.
func (h *Histogram) Dims() int { return h.dims }

// Buckets returns the buckets; the slice and its contents must not be
// modified.
func (h *Histogram) Buckets() []Bucket { return h.buckets }

// NumBuckets returns the bucket count (the unit of the size model).
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// TotalFreq returns the summed bucket frequency (1 for a normalized
// distribution).
func (h *Histogram) TotalFreq() float64 {
	t := 0.0
	for _, b := range h.buckets {
		t += b.Freq
	}
	return t
}

// Compress builds a Histogram from a Sparse distribution using at most
// maxBuckets buckets. When the distribution has at most maxBuckets distinct
// points the result is exact. Otherwise an MHIST-style greedy splitter
// partitions the points: starting from one partition holding everything, it
// repeatedly splits the partition with the largest weighted count variance
// along its widest-spread dimension at the weighted median, until the
// budget is reached; each final partition becomes a weighted centroid
// bucket.
func Compress(s *Sparse, maxBuckets int) *Histogram {
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	pts := s.Points()
	h := &Histogram{dims: s.Dims()}
	if len(pts) == 0 {
		return h
	}
	if len(pts) <= maxBuckets {
		for _, p := range pts {
			h.buckets = append(h.buckets, Bucket{Centroid: toFloat(p.Coords), Freq: p.Freq})
		}
		return h
	}
	parts := []part{{points: pts}}
	for len(parts) < maxBuckets {
		// Pick the partition with largest weighted variance.
		best, bestScore := -1, 0.0
		for i := range parts {
			if len(parts[i].points) < 2 {
				continue
			}
			sc := parts[i].variance(s.Dims())
			if sc > bestScore {
				best, bestScore = i, sc
			}
		}
		if best < 0 || bestScore == 0 {
			break
		}
		a, b, ok := parts[best].split(s.Dims())
		if !ok {
			// Mark as unsplittable by zeroing further consideration: all
			// coordinates equal; cannot happen with positive variance, but
			// guard anyway.
			break
		}
		parts[best] = a
		parts = append(parts, b)
	}
	for _, p := range parts {
		h.buckets = append(h.buckets, p.bucket(s.Dims()))
	}
	sort.Slice(h.buckets, func(i, j int) bool {
		return lessFloats(h.buckets[i].Centroid, h.buckets[j].Centroid)
	})
	return h
}

// Exact builds a Histogram with one bucket per distinct point (no
// compression). Used for reference summaries and tests.
func Exact(s *Sparse) *Histogram {
	return Compress(s, s.Len())
}

// FromBuckets builds a Histogram directly from buckets; used by tests and
// by the paper's worked examples where the histogram contents are given.
func FromBuckets(dims int, buckets []Bucket) *Histogram {
	h := &Histogram{dims: dims}
	for _, b := range buckets {
		if len(b.Centroid) != dims {
			panic(fmt.Sprintf("histogram: bucket with %d coords in %d-dim histogram", len(b.Centroid), dims))
		}
		c := make([]float64, dims)
		copy(c, b.Centroid)
		h.buckets = append(h.buckets, Bucket{Centroid: c, Freq: b.Freq})
	}
	return h
}

type part struct {
	points []Point
}

func (p *part) variance(dims int) float64 {
	// Weighted variance summed over dimensions.
	totalW := 0.0
	mean := make([]float64, dims)
	for _, pt := range p.points {
		totalW += pt.Freq
		for j, c := range pt.Coords {
			mean[j] += pt.Freq * float64(c)
		}
	}
	if totalW == 0 {
		return 0
	}
	for j := range mean {
		mean[j] /= totalW
	}
	v := 0.0
	for _, pt := range p.points {
		for j, c := range pt.Coords {
			d := float64(c) - mean[j]
			v += pt.Freq * d * d
		}
	}
	return v
}

// split divides the partition along the dimension with the widest spread at
// the weighted median coordinate.
func (p *part) split(dims int) (part, part, bool) {
	bestDim, bestSpread := -1, int32(0)
	for j := 0; j < dims; j++ {
		lo, hi := p.points[0].Coords[j], p.points[0].Coords[j]
		for _, pt := range p.points {
			if pt.Coords[j] < lo {
				lo = pt.Coords[j]
			}
			if pt.Coords[j] > hi {
				hi = pt.Coords[j]
			}
		}
		if hi-lo > bestSpread {
			bestDim, bestSpread = j, hi-lo
		}
	}
	if bestDim < 0 {
		return part{}, part{}, false
	}
	pts := make([]Point, len(p.points))
	copy(pts, p.points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Coords[bestDim] < pts[j].Coords[bestDim] })
	totalW := 0.0
	for _, pt := range pts {
		totalW += pt.Freq
	}
	// Weighted median split point, ensuring both sides are non-empty and
	// the cut falls between distinct coordinates.
	acc := 0.0
	cut := -1
	for i := 0; i < len(pts)-1; i++ {
		acc += pts[i].Freq
		if pts[i].Coords[bestDim] != pts[i+1].Coords[bestDim] && acc >= totalW/2 {
			cut = i + 1
			break
		}
	}
	if cut < 0 {
		// Fall back to the first coordinate change.
		for i := 0; i < len(pts)-1; i++ {
			if pts[i].Coords[bestDim] != pts[i+1].Coords[bestDim] {
				cut = i + 1
				break
			}
		}
	}
	if cut < 0 {
		return part{}, part{}, false
	}
	return part{points: pts[:cut]}, part{points: pts[cut:]}, true
}

func (p *part) bucket(dims int) Bucket {
	b := Bucket{Centroid: make([]float64, dims)}
	for _, pt := range p.points {
		b.Freq += pt.Freq
		for j, c := range pt.Coords {
			b.Centroid[j] += pt.Freq * float64(c)
		}
	}
	if b.Freq > 0 {
		for j := range b.Centroid {
			b.Centroid[j] /= b.Freq
		}
	}
	return b
}

func toFloat(coords []int32) []float64 {
	out := make([]float64, len(coords))
	for i, c := range coords {
		out[i] = float64(c)
	}
	return out
}

func lessFloats(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// SumProduct returns Σ_b freq(b) * Π_{j∈dims} centroid(b)[j], the paper's
// ΣF(C) term restricted to the given dimensions. With dims empty it returns
// the total frequency.
func (h *Histogram) SumProduct(dims []int) float64 {
	total := 0.0
	for _, b := range h.buckets {
		w := b.Freq
		for _, j := range dims {
			w *= b.Centroid[j]
		}
		total += w
	}
	return total
}

// Mean returns the expected count along dimension j.
func (h *Histogram) Mean(j int) float64 { return h.SumProduct([]int{j}) }

// Match returns the buckets whose coordinates on condDims are (nearly)
// equal to condVals, together with their summed frequency. When no bucket
// matches exactly (possible after lossy compression), the buckets nearest
// in Euclidean distance on condDims are returned instead — the closest
// available approximation of the conditional slice. An empty condDims
// matches every bucket.
func (h *Histogram) Match(condDims []int, condVals []float64) ([]Bucket, float64) {
	return h.MatchInto(nil, condDims, condVals)
}

// MatchInto is Match with a caller-provided scratch buffer: matching
// buckets are appended to buf (re-sliced to length zero first), so a
// steady-state caller reuses one grown buffer across lookups instead of
// allocating per call. When condDims is empty the histogram's own bucket
// slice is returned directly and buf is untouched. The result must be
// treated as read-only in both cases. Match delegates here, so the two
// forms select bit-identical bucket sets by construction.
//
//lint:hotpath steady-state match kernel, zero allocations asserted by TestMatchIntoEquivalence
func (h *Histogram) MatchInto(buf []Bucket, condDims []int, condVals []float64) ([]Bucket, float64) {
	if len(condDims) == 0 {
		return h.buckets, h.TotalFreq()
	}
	const eps = 1e-9
	out := buf[:0]
	freq := 0.0
	for _, b := range h.buckets {
		ok := true
		for i, j := range condDims {
			if math.Abs(b.Centroid[j]-condVals[i]) > eps {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b)
			freq += b.Freq
		}
	}
	if len(out) > 0 {
		return out, freq
	}
	// Nearest-match fallback.
	bestDist := math.Inf(1)
	for _, b := range h.buckets {
		d := 0.0
		for i, j := range condDims {
			diff := b.Centroid[j] - condVals[i]
			d += diff * diff
		}
		switch {
		case d < bestDist-eps:
			bestDist = d
			out = out[:0]
			out = append(out, b)
			freq = b.Freq
		case d <= bestDist+eps:
			out = append(out, b)
			freq += b.Freq
		}
	}
	return out, freq
}

// CondSumProduct returns Σ F(E | D=d) = Σ_{b matching D=d} freq(b)/denom *
// Π_{j∈eDims} centroid(b)[j], i.e. the conditional expected tuple
// multiplier of the paper's Correlation Scope Independence assumption,
// computed directly from the histogram's joint buckets.
func (h *Histogram) CondSumProduct(eDims, condDims []int, condVals []float64) float64 {
	v, _ := h.CondSumProductInto(nil, eDims, condDims, condVals)
	return v
}

// CondSumProductInto is CondSumProduct with a caller-provided match
// buffer (see MatchInto). It returns the conditional sum-product together
// with the possibly grown buffer, which the caller stores for the next
// lookup; CondSumProduct delegates here so both forms compute bit-identical
// values.
//
//lint:hotpath steady-state conditional kernel under the factorized plan mode
func (h *Histogram) CondSumProductInto(buf []Bucket, eDims, condDims []int, condVals []float64) (float64, []Bucket) {
	matched, denom := h.MatchInto(buf, condDims, condVals)
	if len(condDims) != 0 {
		// matched aliases buf's (possibly reallocated) array; an empty
		// condDims returns the histogram's own buckets, which must not
		// replace the caller's scratch.
		buf = matched
	}
	if denom == 0 {
		return 0, buf
	}
	total := 0.0
	for _, b := range matched {
		w := b.Freq
		for _, j := range eDims {
			w *= b.Centroid[j]
		}
		total += w
	}
	return total / denom, buf
}

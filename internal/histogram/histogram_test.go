package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSparseAddNormalize(t *testing.T) {
	s := NewSparse(2)
	s.Add([]int32{1, 2}, 1)
	s.Add([]int32{1, 2}, 1)
	s.Add([]int32{3, 4}, 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Total() != 4 {
		t.Fatalf("Total = %v", s.Total())
	}
	s.Normalize()
	pts := s.Points()
	if !almostEq(pts[0].Freq, 0.5) || !almostEq(pts[1].Freq, 0.5) {
		t.Fatalf("normalized points = %+v", pts)
	}
	// Deterministic ordering.
	if pts[0].Coords[0] != 1 || pts[1].Coords[0] != 3 {
		t.Fatalf("points unsorted: %+v", pts)
	}
}

func TestSparseZeroDim(t *testing.T) {
	s := NewSparse(0)
	s.Add(nil, 3)
	s.Normalize()
	if s.Len() != 1 || !almostEq(s.Points()[0].Freq, 1) {
		t.Fatalf("zero-dim distribution = %+v", s.Points())
	}
}

func TestSparseAddPanicsOnWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity mismatch")
		}
	}()
	NewSparse(2).Add([]int32{1}, 1)
}

func TestCompressExactWhenSmall(t *testing.T) {
	s := NewSparse(2)
	s.Add([]int32{10, 100}, 0.5)
	s.Add([]int32{100, 10}, 0.5)
	h := Compress(s, 4)
	if h.NumBuckets() != 2 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
	// Paper Figure 4: Σ f(b,c)*b*c = 0.5*1000 + 0.5*1000 = 1000.
	if got := h.SumProduct([]int{0, 1}); !almostEq(got, 1000) {
		t.Fatalf("SumProduct = %v, want 1000", got)
	}
	if got := h.SumProduct(nil); !almostEq(got, 1) {
		t.Fatalf("TotalFreq via SumProduct = %v", got)
	}
}

func TestCompressPreservesMassAndMean(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSparse(3)
		n := rng.Intn(200) + 10
		for i := 0; i < n; i++ {
			s.Add([]int32{int32(rng.Intn(20)), int32(rng.Intn(20)), int32(rng.Intn(5))}, rng.Float64()+0.01)
		}
		s.Normalize()
		exactMean := make([]float64, 3)
		for _, p := range s.Points() {
			for j, c := range p.Coords {
				exactMean[j] += p.Freq * float64(c)
			}
		}
		for _, budget := range []int{1, 4, 16} {
			h := Compress(s, budget)
			if h.NumBuckets() > budget {
				t.Logf("bucket budget exceeded: %d > %d", h.NumBuckets(), budget)
				return false
			}
			if !almostEq(h.TotalFreq(), 1) {
				t.Logf("mass not preserved: %v", h.TotalFreq())
				return false
			}
			// Per-dimension means are preserved exactly by centroid
			// bucketing (weighted average of weighted averages).
			for j := 0; j < 3; j++ {
				if math.Abs(h.Mean(j)-exactMean[j]) > 1e-6 {
					t.Logf("mean[%d] = %v, exact %v (budget %d)", j, h.Mean(j), exactMean[j], budget)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressReducesToBudget(t *testing.T) {
	s := NewSparse(1)
	for i := 0; i < 100; i++ {
		s.Add([]int32{int32(i)}, 1)
	}
	s.Normalize()
	h := Compress(s, 10)
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets = %d, want 10", h.NumBuckets())
	}
	// SumProduct approximates the true mean * 1.
	want := 49.5
	if math.Abs(h.SumProduct([]int{0})-want) > 1e-6 {
		t.Fatalf("SumProduct = %v, want %v", h.SumProduct([]int{0}), want)
	}
}

func TestCompressSkewIsolatesHeavyPoint(t *testing.T) {
	// A heavily skewed distribution: one huge count point and uniform
	// noise. With enough buckets the big point should sit in a bucket whose
	// centroid is closer to it than a single-bucket average would be.
	s := NewSparse(1)
	s.Add([]int32{1000}, 0.5)
	for i := 0; i < 20; i++ {
		s.Add([]int32{int32(i)}, 0.025)
	}
	h1 := Compress(s, 1)
	h4 := Compress(s, 4)
	exact := Exact(s)
	truth := exact.SumProduct([]int{0})
	e1 := math.Abs(h1.SumProduct([]int{0}) - truth)
	e4 := math.Abs(h4.SumProduct([]int{0}) - truth)
	if e4 > e1 {
		t.Fatalf("more buckets increased SumProduct error: %v vs %v", e4, e1)
	}
	// The second moment (product over the same dim twice is not available;
	// check bucket structure instead): some bucket should have centroid
	// near 1000.
	found := false
	for _, b := range h4.Buckets() {
		if b.Centroid[0] > 900 {
			found = true
		}
	}
	if !found {
		t.Fatal("no bucket isolates the heavy point")
	}
}

func TestExact(t *testing.T) {
	s := NewSparse(2)
	s.Add([]int32{1, 1}, 0.25)
	s.Add([]int32{2, 1}, 0.25)
	s.Add([]int32{1, 2}, 0.5)
	h := Exact(s)
	if h.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestFromBucketsAndCond(t *testing.T) {
	// The paper's worked example (Section 4): H_P(k, y, p) with dims
	// ordered (k, y, p).
	hp := FromBuckets(3, []Bucket{
		{Centroid: []float64{2, 1, 2}, Freq: 0.25},
		{Centroid: []float64{1, 1, 2}, Freq: 0.25},
		{Centroid: []float64{1, 1, 1}, Freq: 0.50},
	})
	// F_P(k,y | p=2) = (0.25*2*1 + 0.25*1*1) / 0.5 = 1.5
	got := hp.CondSumProduct([]int{0, 1}, []int{2}, []float64{2})
	if !almostEq(got, 1.5) {
		t.Fatalf("CondSumProduct(p=2) = %v, want 1.5", got)
	}
	// F_P(k,y | p=1) = (0.5*1*1) / 0.5 = 1
	got = hp.CondSumProduct([]int{0, 1}, []int{2}, []float64{1})
	if !almostEq(got, 1) {
		t.Fatalf("CondSumProduct(p=1) = %v, want 1", got)
	}
	// Unconditioned: Σ f * k * y = 0.25*2 + 0.25*1 + 0.5*1 = 1.25
	if got := hp.SumProduct([]int{0, 1}); !almostEq(got, 1.25) {
		t.Fatalf("SumProduct = %v, want 1.25", got)
	}
}

func TestMatchNearestFallback(t *testing.T) {
	h := FromBuckets(2, []Bucket{
		{Centroid: []float64{1, 5}, Freq: 0.5},
		{Centroid: []float64{4, 7}, Freq: 0.5},
	})
	// Condition on dim 0 = 3: no exact match; nearest is centroid 4.
	buckets, freq := h.Match([]int{0}, []float64{3})
	if len(buckets) != 1 || buckets[0].Centroid[0] != 4 {
		t.Fatalf("nearest match = %+v", buckets)
	}
	if !almostEq(freq, 0.5) {
		t.Fatalf("freq = %v", freq)
	}
	// Empty condition matches everything.
	all, f := h.Match(nil, nil)
	if len(all) != 2 || !almostEq(f, 1) {
		t.Fatalf("empty match = %d buckets, freq %v", len(all), f)
	}
}

func TestCondSumProductZeroDenominator(t *testing.T) {
	h := FromBuckets(1, nil)
	if got := h.CondSumProduct(nil, []int{0}, []float64{1}); got != 0 {
		t.Fatalf("empty histogram conditional = %v", got)
	}
}

func TestFromBucketsPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromBuckets(2, []Bucket{{Centroid: []float64{1}, Freq: 1}})
}

func TestValueHistogramBasic(t *testing.T) {
	vals := []int64{1998, 1999, 2001, 2002}
	h := NewValueHistogram(vals, 4)
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.Selectivity(2001, math.MaxInt64); !almostEq(got, 0.5) {
		t.Fatalf("Selectivity(>2000) = %v, want 0.5", got)
	}
	if got := h.Selectivity(1998, 2002); !almostEq(got, 1) {
		t.Fatalf("full range = %v", got)
	}
	if got := h.Selectivity(3000, 4000); got != 0 {
		t.Fatalf("out of range = %v", got)
	}
	if got := h.Selectivity(10, 5); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
	lo, hi, ok := h.Domain()
	if !ok || lo != 1998 || hi != 2002 {
		t.Fatalf("Domain = %d..%d %v", lo, hi, ok)
	}
}

func TestValueHistogramEmpty(t *testing.T) {
	h := NewValueHistogram(nil, 8)
	if h.Selectivity(0, 100) != 0 || h.Total() != 0 {
		t.Fatal("empty histogram misbehaves")
	}
	if _, _, ok := h.Domain(); ok {
		t.Fatal("empty Domain ok")
	}
}

func TestValueHistogramEquiDepthExactOnBoundaries(t *testing.T) {
	// 100 values 0..99, 10 buckets of 10: a query aligned to bucket
	// boundaries is exact.
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	h := NewValueHistogram(vals, 10)
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
	if got := h.Selectivity(0, 9); !almostEq(got, 0.1) {
		t.Fatalf("Selectivity(0..9) = %v", got)
	}
	if got := h.Selectivity(20, 59); !almostEq(got, 0.4) {
		t.Fatalf("Selectivity(20..59) = %v", got)
	}
}

func TestValueHistogramDuplicatesDontStraddle(t *testing.T) {
	// Many duplicates of one value; ensure a range covering just that value
	// captures all its mass even with small budgets.
	var vals []int64
	for i := 0; i < 50; i++ {
		vals = append(vals, 7)
	}
	for i := 0; i < 50; i++ {
		vals = append(vals, int64(100+i))
	}
	h := NewValueHistogram(vals, 5)
	got := h.Selectivity(7, 7)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Selectivity(7,7) = %v, want 0.5", got)
	}
}

func TestValueHistogramAccuracyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000))
		}
		h := NewValueHistogram(vals, 20)
		// Random range query: estimate within 10 percentage points of
		// truth for a 20-bucket equi-depth histogram over ~uniform data.
		lo := int64(rng.Intn(900))
		hi := lo + int64(rng.Intn(100)) + 1
		truth := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				truth++
			}
		}
		got := h.Selectivity(lo, hi)
		return math.Abs(got-float64(truth)/float64(n)) < 0.10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValueHistogramQuantile(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	h := NewValueHistogram(vals, 10)
	q10 := h.Quantile(0.1)
	if q10 < 5 || q10 > 15 {
		t.Fatalf("Quantile(0.1) = %d", q10)
	}
	q100 := h.Quantile(1)
	if q100 != 99 {
		t.Fatalf("Quantile(1) = %d", q100)
	}
	if NewValueHistogram(nil, 4).Quantile(0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

// TestQuantileZeroCountBucket is the divguard regression for Quantile: a
// zero-count bucket (possible only in a hand-built or corrupt histogram)
// previously divided 0/0 into the interpolation; now it is skipped.
func TestQuantileZeroCountBucket(t *testing.T) {
	h := &ValueHistogram{
		total: 4,
		buckets: []vbucket{
			{lo: 0, hi: 9, count: 0},
			{lo: 10, hi: 19, count: 4},
		},
	}
	got := h.Quantile(0.5)
	if got < 10 || got > 19 {
		t.Fatalf("Quantile(0.5) = %d, want within the populated bucket", got)
	}
}

// TestSelectivityOverflowedSpan pins the span clamp: a bucket spanning the
// full int64 range overflows b.hi-b.lo, and the partial-overlap
// interpolation must stay finite instead of dividing by a zero or negative
// span.
func TestSelectivityOverflowedSpan(t *testing.T) {
	h := &ValueHistogram{
		total:   2,
		buckets: []vbucket{{lo: math.MinInt64, hi: math.MaxInt64, count: 2}},
	}
	got := h.Selectivity(0, 100)
	if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || got > 1 {
		t.Fatalf("Selectivity over overflowed span = %v, want a finite fraction", got)
	}
}

package histogram

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestHaarRoundTrip(t *testing.T) {
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	coeffs := haarDecompose(data)
	back := haarReconstruct(coeffs)
	for i := range data {
		if math.Abs(back[i]-data[i]) > 1e-9 {
			t.Fatalf("round trip[%d] = %v, want %v", i, back[i], data[i])
		}
	}
}

func TestHaarRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (rng.Intn(6) + 1)
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(rng.Intn(100))
		}
		back := haarReconstruct(haarDecompose(data))
		for i := range data {
			if math.Abs(back[i]-data[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarEnergyPreserved(t *testing.T) {
	// The normalized transform is orthonormal: Σ data^2 == Σ coeff^2.
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	coeffs := haarDecompose(data)
	var e1, e2 float64
	for i := range data {
		e1 += data[i] * data[i]
		e2 += coeffs[i] * coeffs[i]
	}
	if math.Abs(e1-e2) > 1e-9 {
		t.Fatalf("energy %v vs %v", e1, e2)
	}
}

func TestWaveletExactWithAllCoeffs(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	w := NewWavelet(vals, 1024)
	if got := w.Selectivity(0, 3); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Selectivity(0,3) = %v", got)
	}
	if got := w.Selectivity(0, 7); math.Abs(got-1) > 1e-9 {
		t.Fatalf("full range = %v", got)
	}
	if got := w.Selectivity(100, 200); got != 0 {
		t.Fatalf("out of range = %v", got)
	}
	if got := w.Selectivity(5, 2); got != 0 {
		t.Fatalf("empty range = %v", got)
	}
}

func TestWaveletEmpty(t *testing.T) {
	w := NewWavelet(nil, 8)
	if w.Selectivity(0, 10) != 0 || w.Total() != 0 {
		t.Fatal("empty wavelet misbehaves")
	}
	if w.SizeUnits() < 1 {
		t.Fatal("SizeUnits must be at least 1")
	}
}

func TestWaveletTruncationApproximates(t *testing.T) {
	// A smooth distribution summarized with few coefficients still gives
	// usable range estimates.
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 2000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	w := NewWavelet(vals, 16)
	if w.NumCoeffs() > 16 {
		t.Fatalf("NumCoeffs = %d", w.NumCoeffs())
	}
	truth := func(lo, hi int64) float64 {
		n := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				n++
			}
		}
		return float64(n) / float64(len(vals))
	}
	for _, r := range [][2]int64{{0, 499}, {100, 399}, {500, 999}, {900, 999}} {
		got := w.Selectivity(r[0], r[1])
		want := truth(r[0], r[1])
		if math.Abs(got-want) > 0.12 {
			t.Errorf("Selectivity(%d,%d) = %v, truth %v", r[0], r[1], got, want)
		}
	}
}

func TestWaveletSkewedSpike(t *testing.T) {
	// A spiked distribution: most mass at one value. Few coefficients
	// should capture the spike well (wavelets excel at this).
	var vals []int64
	for i := 0; i < 900; i++ {
		vals = append(vals, 500)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, int64(i*10))
	}
	w := NewWavelet(vals, 12)
	// Query a range fully covering the spike's grid bin (the 256-bin grid
	// spreads the spike's mass over a ~4-value span).
	got := w.Selectivity(496, 503)
	if got < 0.85 {
		t.Fatalf("spike mass = %v, want >= 0.85", got)
	}
}

func TestWaveletMoreCoeffsMoreAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 3000)
	for i := range vals {
		// Bimodal distribution.
		if rng.Intn(2) == 0 {
			vals[i] = int64(rng.Intn(100))
		} else {
			vals[i] = int64(800 + rng.Intn(100))
		}
	}
	truth := func(lo, hi int64) float64 {
		n := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				n++
			}
		}
		return float64(n) / float64(len(vals))
	}
	errAt := func(coeffs int) float64 {
		w := NewWavelet(vals, coeffs)
		total := 0.0
		for lo := int64(0); lo < 900; lo += 100 {
			total += math.Abs(w.Selectivity(lo, lo+99) - truth(lo, lo+99))
		}
		return total
	}
	e4, e64 := errAt(4), errAt(64)
	if e64 > e4+1e-9 {
		t.Fatalf("more coefficients increased error: %v -> %v", e4, e64)
	}
}

func TestValueSummaryInterface(t *testing.T) {
	var s ValueSummary = NewValueHistogram([]int64{1, 2, 3}, 2)
	if s.Total() != 3 || s.SizeUnits() < 1 {
		t.Fatal("histogram as ValueSummary misbehaves")
	}
	s = NewWavelet([]int64{1, 2, 3}, 4)
	if s.Total() != 3 || s.SizeUnits() < 1 {
		t.Fatal("wavelet as ValueSummary misbehaves")
	}
}

func TestWaveletSingleValue(t *testing.T) {
	w := NewWavelet([]int64{42, 42, 42}, 4)
	if got := w.Selectivity(42, 42); math.Abs(got-1) > 1e-9 {
		t.Fatalf("single value selectivity = %v", got)
	}
	if got := w.Selectivity(0, 41); got != 0 {
		t.Fatalf("below single value = %v", got)
	}
}

// TestWaveletConcurrentSelectivity guards the eager-reconstruction fix:
// Selectivity is called concurrently from the batch estimator, and the
// reconstructed bin vector must be built before the synopsis is shared, not
// lazily on first use (a data race this test catches under -race).
func TestWaveletConcurrentSelectivity(t *testing.T) {
	vals := make([]int64, 400)
	for i := range vals {
		vals[i] = int64(i % 64)
	}
	w := NewWavelet(vals, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				lo := int64((g + j) % 32)
				if frac := w.Selectivity(lo, lo+16); math.IsNaN(frac) {
					t.Errorf("NaN selectivity at [%d, %d]", lo, lo+16)
				}
			}
		}(g)
	}
	wg.Wait()
}

package histogram

import (
	"math"
	"sort"
)

// ValueSummary is the interface shared by the per-node value summaries: the
// equi-depth ValueHistogram and the Haar Wavelet synopsis. The paper notes
// that its distributions "can be summarized very efficiently using
// multidimensional methods such as histograms or wavelets"; both options
// are provided for the one-dimensional value case and selected through
// xsketch.Config.
type ValueSummary interface {
	// Selectivity estimates the fraction of summarized values in [lo, hi].
	Selectivity(lo, hi int64) float64
	// Total returns the number of summarized values.
	Total() int
	// SizeUnits returns the number of stored units (buckets or retained
	// coefficients) for the size model.
	SizeUnits() int
}

// SizeUnits implements ValueSummary for the equi-depth histogram.
func (h *ValueHistogram) SizeUnits() int { return h.NumBuckets() }

// Wavelet is a one-dimensional Haar wavelet synopsis over an integer value
// distribution: the value domain is mapped onto an equi-width power-of-two
// grid, the bin frequencies are Haar-decomposed, and only the largest
// (normalized) coefficients are retained. Range selectivities reconstruct
// bin sums from the retained coefficients.
type Wavelet struct {
	lo, hi int64
	grid   int // power of two
	total  int
	// coeffs maps coefficient index (0 = overall average) to its value in
	// the normalized Haar basis.
	coeffs map[int]float64
	// recon caches the reconstructed bin vector (lazily built).
	recon []float64
}

// NewWavelet builds a Haar synopsis retaining at most maxCoeffs
// coefficients. A nil/empty input yields a summary whose selectivities are
// zero.
func NewWavelet(values []int64, maxCoeffs int) *Wavelet {
	w := &Wavelet{coeffs: map[int]float64{}, total: len(values)}
	if len(values) == 0 {
		w.grid = 1
		return w
	}
	if maxCoeffs < 1 {
		maxCoeffs = 1
	}
	w.lo, w.hi = values[0], values[0]
	for _, v := range values {
		if v < w.lo {
			w.lo = v
		}
		if v > w.hi {
			w.hi = v
		}
	}
	// Grid resolution: enough bins to separate values, capped at 256.
	w.grid = 1
	span := w.hi - w.lo + 1
	for w.grid < 256 && int64(w.grid) < span {
		w.grid *= 2
	}
	bins := make([]float64, w.grid)
	for _, v := range values {
		bins[w.binOf(v)]++
	}
	// Normalized Haar decomposition (pyramid algorithm). Coefficients are
	// scaled by 1/sqrt(2) per level so thresholding by absolute value
	// minimizes the L2 reconstruction error.
	coeffs := haarDecompose(bins)
	type kv struct {
		idx int
		val float64
	}
	ranked := make([]kv, 0, len(coeffs))
	for i, c := range coeffs {
		if c != 0 {
			ranked = append(ranked, kv{i, c})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		ai, aj := math.Abs(ranked[i].val), math.Abs(ranked[j].val)
		if ai != aj {
			return ai > aj
		}
		return ranked[i].idx < ranked[j].idx
	})
	if len(ranked) > maxCoeffs {
		ranked = ranked[:maxCoeffs]
	}
	for _, r := range ranked {
		w.coeffs[r.idx] = r.val
	}
	// Reconstruct eagerly: Selectivity is called concurrently from the
	// batch estimator, and a lazy first-use build of w.recon would be a
	// data race.
	w.reconstruct()
	return w
}

func (w *Wavelet) binOf(v int64) int {
	span := w.hi - w.lo + 1
	idx := int(int64(w.grid) * (v - w.lo) / span)
	if idx >= w.grid {
		idx = w.grid - 1
	}
	if idx < 0 {
		idx = 0
	}
	return idx
}

// binSpan returns the inclusive value range covered by a grid bin: the
// exact preimage of binOf, i.e. the values v with
// floor(grid*(v-lo)/span) == i.
func (w *Wavelet) binSpan(i int) (int64, int64) {
	span := w.hi - w.lo + 1
	g := int64(w.grid)
	lo := w.lo + ceilDiv(int64(i)*span, g)
	hi := w.lo + ceilDiv(int64(i+1)*span, g) - 1
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Total returns the number of summarized values.
func (w *Wavelet) Total() int { return w.total }

// SizeUnits returns the number of retained coefficients (each stored as an
// index + value pair; the size model charges it like a 1-D bucket).
func (w *Wavelet) SizeUnits() int {
	n := len(w.coeffs)
	if n == 0 {
		n = 1
	}
	return n
}

// NumCoeffs returns the retained coefficient count.
func (w *Wavelet) NumCoeffs() int { return len(w.coeffs) }

// Selectivity estimates the fraction of values within [lo, hi].
func (w *Wavelet) Selectivity(lo, hi int64) float64 {
	if w.total == 0 || hi < lo || hi < w.lo || lo > w.hi {
		return 0
	}
	w.reconstruct()
	sum := 0.0
	for i := 0; i < w.grid; i++ {
		blo, bhi := w.binSpan(i)
		if bhi < lo || blo > hi {
			continue
		}
		mass := w.recon[i]
		if mass <= 0 {
			continue
		}
		if lo <= blo && bhi <= hi {
			sum += mass
			continue
		}
		olo, ohi := maxI64(lo, blo), minI64(hi, bhi)
		//lint:allow divguard binSpan clamps hi to lo, so a bin always spans at least one value
		sum += mass * float64(ohi-olo+1) / float64(bhi-blo+1)
	}
	frac := sum / float64(w.total)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

func (w *Wavelet) reconstruct() {
	if w.recon != nil {
		return
	}
	coeffs := make([]float64, w.grid)
	for i, c := range w.coeffs {
		coeffs[i] = c
	}
	w.recon = haarReconstruct(coeffs)
}

// haarDecompose performs the normalized Haar pyramid transform. The input
// length must be a power of two; the result uses the standard layout:
// index 0 holds the overall (scaled) average, indexes [2^l, 2^(l+1)) hold
// level-l detail coefficients.
func haarDecompose(data []float64) []float64 {
	n := len(data)
	out := make([]float64, n)
	cur := make([]float64, n)
	copy(cur, data)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		next := make([]float64, half)
		for i := 0; i < half; i++ {
			a, b := cur[2*i], cur[2*i+1]
			next[i] = (a + b) / math.Sqrt2
			out[half+i] = (a - b) / math.Sqrt2
		}
		copy(cur, next)
	}
	out[0] = cur[0]
	return out
}

// haarReconstruct inverts haarDecompose.
func haarReconstruct(coeffs []float64) []float64 {
	n := len(coeffs)
	cur := []float64{coeffs[0]}
	for length := 1; length < n; length *= 2 {
		next := make([]float64, 2*length)
		for i := 0; i < length; i++ {
			d := coeffs[length+i]
			next[2*i] = (cur[i] + d) / math.Sqrt2
			next[2*i+1] = (cur[i] - d) / math.Sqrt2
		}
		cur = next
	}
	return cur
}

// Package histogram implements the distribution summaries used by Twig
// XSKETCH synopses:
//
//   - Sparse: an exact multidimensional distribution of integer count
//     vectors with fractional frequencies (the paper's edge distribution
//     f_i(C1, ..., Ck)).
//   - Histogram: a compressed approximation consisting of weighted centroid
//     buckets, built by an MHIST-style greedy splitter (the paper's
//     edge-histogram H_i(C1, ..., Ck)).
//   - ValueHistogram: a one-dimensional equi-depth histogram over element
//     values supporting range-selectivity estimates (the paper's H(v)).
//
// Edge distributions are "essentially defined over a space of integer edge
// counts" (Section 3.2) and therefore compress very well with standard
// multidimensional methods; the centroid-bucket representation keeps the
// estimation framework's marginals and conditionals cheap.
package histogram

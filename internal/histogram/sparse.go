package histogram

import (
	"fmt"
	"sort"
)

// Sparse is an exact distribution over integer count vectors. Frequencies
// are fractions of a population (they sum to 1 after Normalize) so that a
// point f(c1..ck) is "the fraction of elements with these counts".
type Sparse struct {
	dims   int
	points map[string]*point
	total  float64
}

type point struct {
	coords []int32
	freq   float64
}

// NewSparse creates an empty distribution with the given dimensionality.
// dims may be 0 (a distribution with a single empty-vector point).
func NewSparse(dims int) *Sparse {
	return &Sparse{dims: dims, points: make(map[string]*point)}
}

// Dims returns the dimensionality.
func (s *Sparse) Dims() int { return s.dims }

// Add accumulates weight onto the point with the given coordinates.
func (s *Sparse) Add(coords []int32, weight float64) {
	if len(coords) != s.dims {
		panic(fmt.Sprintf("histogram: Add with %d coords on %d-dim distribution", len(coords), s.dims))
	}
	k := key(coords)
	p := s.points[k]
	if p == nil {
		c := make([]int32, len(coords))
		copy(c, coords)
		p = &point{coords: c}
		s.points[k] = p
	}
	p.freq += weight
	s.total += weight
}

// Len returns the number of distinct points.
func (s *Sparse) Len() int { return len(s.points) }

// Total returns the accumulated weight.
func (s *Sparse) Total() float64 { return s.total }

// Normalize scales frequencies to sum to 1. A zero-total distribution is
// left unchanged.
func (s *Sparse) Normalize() {
	if s.total == 0 {
		return
	}
	for _, p := range s.points {
		p.freq /= s.total
	}
	s.total = 1
}

// Points returns the points in deterministic (lexicographic coordinate)
// order as (coords, freq) pairs. The coordinate slices must not be
// modified.
func (s *Sparse) Points() []Point {
	out := make([]Point, 0, len(s.points))
	for _, p := range s.points {
		out = append(out, Point{Coords: p.coords, Freq: p.freq})
	}
	sort.Slice(out, func(i, j int) bool { return lessCoords(out[i].Coords, out[j].Coords) })
	return out
}

// Point is an exported (coords, frequency) pair.
type Point struct {
	Coords []int32
	Freq   float64
}

func key(coords []int32) string {
	b := make([]byte, 0, len(coords)*4)
	for _, c := range coords {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

func lessCoords(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

package pathexpr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	p, err := Parse("author/paper/keyword")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	labels := []string{"author", "paper", "keyword"}
	for i, s := range p.Steps {
		if s.Label != labels[i] || s.Axis != Child || s.Value != nil || len(s.Branches) != 0 {
			t.Fatalf("step %d = %+v", i, s)
		}
	}
	if !p.IsSimple() {
		t.Fatal("IsSimple = false")
	}
}

func TestParseLeadingSlash(t *testing.T) {
	p1 := MustParse("/a/b")
	p2 := MustParse("a/b")
	if p1.String() != p2.String() {
		t.Fatalf("leading slash changed path: %q vs %q", p1, p2)
	}
}

func TestParseDescendant(t *testing.T) {
	p, err := Parse("//movie/actor")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Steps[0].Axis != Descendant || p.Steps[1].Axis != Child {
		t.Fatalf("axes = %v %v", p.Steps[0].Axis, p.Steps[1].Axis)
	}
	if p.IsSimple() {
		t.Fatal("IsSimple = true for descendant path")
	}
	if !p.HasDescendant() {
		t.Fatal("HasDescendant = false")
	}

	p2 := MustParse("a//b")
	if p2.Steps[0].Axis != Child || p2.Steps[1].Axis != Descendant {
		t.Fatalf("axes = %v %v", p2.Steps[0].Axis, p2.Steps[1].Axis)
	}
}

func TestParseValuePredOnStep(t *testing.T) {
	cases := []struct {
		src    string
		lo, hi int64
	}{
		{"year[>2000]", 2001, math.MaxInt64},
		{"year[>=2000]", 2000, math.MaxInt64},
		{"year[<2000]", math.MinInt64, 1999},
		{"year[<=2000]", math.MinInt64, 2000},
		{"year[=2000]", 2000, 2000},
		{"year[=1990:1999]", 1990, 1999},
		{"year[=-5:-1]", -5, -1},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		v := p.Steps[0].Value
		if v == nil || v.Lo != c.lo || v.Hi != c.hi {
			t.Fatalf("Parse(%q) value = %+v, want [%d,%d]", c.src, v, c.lo, c.hi)
		}
	}
}

func TestParseBranch(t *testing.T) {
	p, err := Parse("paper[year>2000]/title")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	brs := p.Steps[0].Branches
	if len(brs) != 1 {
		t.Fatalf("branches = %d", len(brs))
	}
	br := brs[0]
	if len(br.Steps) != 1 || br.Steps[0].Label != "year" {
		t.Fatalf("branch = %+v", br)
	}
	v := br.Steps[0].Value
	if v == nil || v.Lo != 2001 || v.Hi != math.MaxInt64 {
		t.Fatalf("branch value = %+v", v)
	}
}

func TestParseBranchLeadingSlash(t *testing.T) {
	// The paper writes //movie[/type=5]; a leading slash inside a branch is
	// a relative child step.
	p, err := Parse("//movie[/type=5]")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	br := p.Steps[0].Branches[0]
	if br.Steps[0].Label != "type" || br.Steps[0].Value == nil || br.Steps[0].Value.Lo != 5 {
		t.Fatalf("branch = %+v", br.Steps[0])
	}
}

func TestParseMultipleBrackets(t *testing.T) {
	p, err := Parse("paper[>1990][keyword][author/name]/title")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := p.Steps[0]
	if s.Value == nil || s.Value.Lo != 1991 {
		t.Fatalf("value = %+v", s.Value)
	}
	if len(s.Branches) != 2 {
		t.Fatalf("branches = %d", len(s.Branches))
	}
	if len(s.Branches[1].Steps) != 2 {
		t.Fatalf("second branch steps = %d", len(s.Branches[1].Steps))
	}
}

func TestParseNestedBranch(t *testing.T) {
	p, err := Parse("a[b[c>3]/d]/e")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	br := p.Steps[0].Branches[0]
	if len(br.Steps) != 2 || br.Steps[1].Label != "d" {
		t.Fatalf("branch = %v", br)
	}
	inner := br.Steps[0].Branches[0]
	if inner.Steps[0].Label != "c" || inner.Steps[0].Value == nil || inner.Steps[0].Value.Lo != 4 {
		t.Fatalf("inner branch = %+v", inner.Steps[0])
	}
}

func TestParseValuePredIntersection(t *testing.T) {
	p := MustParse("year[>1990][<2000]")
	v := p.Steps[0].Value
	if v.Lo != 1991 || v.Hi != 1999 {
		t.Fatalf("intersected value = %+v", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"/",
		"a/",
		"a[",
		"a[]",
		"a[>]",
		"a[>2000",
		"a[=5:1]",
		"a b",
		"a[>2000]]",
		"[b]",
		"a//",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"author/paper/keyword",
		"//movie/actor",
		"a//b/c",
		"paper[year>2000]/title",
		"paper[=1990:1999][keyword]",
		"a[b[c=4]/d]/e",
		"item[quantity>=2][payment][shipping]/mailbox//mail",
	}
	for _, src := range cases {
		p := MustParse(src)
		p2 := MustParse(p.String())
		if p.String() != p2.String() {
			t.Errorf("round trip %q -> %q -> %q", src, p, p2)
		}
	}
}

func TestValuePredMatches(t *testing.T) {
	v := ValuePred{Lo: 10, Hi: 20}
	for _, x := range []int64{10, 15, 20} {
		if !v.Matches(x) {
			t.Errorf("Matches(%d) = false", x)
		}
	}
	for _, x := range []int64{9, 21, -5} {
		if v.Matches(x) {
			t.Errorf("Matches(%d) = true", x)
		}
	}
	if !AnyValue().Matches(math.MinInt64) || !AnyValue().Matches(math.MaxInt64) {
		t.Error("AnyValue does not match extremes")
	}
}

func TestClone(t *testing.T) {
	p := MustParse("paper[year>2000][keyword]/title[=3]")
	c := p.Clone()
	if c.String() != p.String() {
		t.Fatalf("clone = %q, want %q", c, p)
	}
	// Mutating the clone must not affect the original.
	c.Steps[0].Branches[0].Steps[0].Value.Lo = 1
	c.Steps[1].Value.Hi = 99
	c.Steps[0].Label = "x"
	if p.Steps[0].Branches[0].Steps[0].Value.Lo == 1 ||
		p.Steps[1].Value.Hi == 99 || p.Steps[0].Label == "x" {
		t.Fatal("clone aliases original")
	}
	if (*Path)(nil).Clone() != nil {
		t.Fatal("nil clone not nil")
	}
}

func TestCountValuePreds(t *testing.T) {
	p := MustParse("a[>1][b[=2]/c]/d[e<5]")
	if got := p.CountValuePreds(); got != 3 {
		t.Fatalf("CountValuePreds = %d, want 3", got)
	}
}

func TestNewSimple(t *testing.T) {
	p := NewSimple("a", "b", "c")
	if p.String() != "a/b/c" {
		t.Fatalf("NewSimple = %q", p)
	}
}

// genPath builds a random valid path for the round-trip property test.
func genPath(rng *rand.Rand, depth int) *Path {
	labels := []string{"a", "b", "c", "dd", "e_1"}
	n := rng.Intn(3) + 1
	p := &Path{}
	for i := 0; i < n; i++ {
		s := &Step{Axis: Child, Label: labels[rng.Intn(len(labels))]}
		if rng.Intn(3) == 0 {
			s.Axis = Descendant
		}
		if rng.Intn(3) == 0 {
			lo := int64(rng.Intn(100))
			hi := lo + int64(rng.Intn(50))
			s.Value = &ValuePred{Lo: lo, Hi: hi}
		}
		if depth > 0 && rng.Intn(3) == 0 {
			s.Branches = append(s.Branches, genPath(rng, depth-1))
		}
		p.Steps = append(p.Steps, s)
	}
	return p
}

func TestParseStringInverse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := genPath(rng, 2)
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Logf("Parse(%q): %v", s, err)
			return false
		}
		return p2.String() == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrorMentionsOffset(t *testing.T) {
	_, err := Parse("a[>x]")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("err = %v", err)
	}
}

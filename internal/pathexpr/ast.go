package pathexpr

import (
	"fmt"
	"math"
	"strings"
)

// Axis selects how a step navigates from its context element.
type Axis int

const (
	// Child matches children of the context element ("/").
	Child Axis = iota
	// Descendant matches descendants at any depth ("//").
	Descendant
)

// String renders the axis in XPath notation ("/" or "//").
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// ValuePred is an inclusive integer range predicate [Lo, Hi] over an
// element's value. Open ends use math.MinInt64 / math.MaxInt64. An element
// without a value never satisfies a ValuePred.
type ValuePred struct {
	Lo, Hi int64
}

// Any returns a predicate matching every valued element.
func AnyValue() ValuePred { return ValuePred{math.MinInt64, math.MaxInt64} }

// Matches reports whether a value satisfies the predicate.
func (v ValuePred) Matches(x int64) bool { return x >= v.Lo && x <= v.Hi }

// String renders the predicate in parseable form.
func (v ValuePred) String() string {
	switch {
	case v.Lo == math.MinInt64 && v.Hi == math.MaxInt64:
		return ""
	case v.Lo == v.Hi:
		return fmt.Sprintf("=%d", v.Lo)
	case v.Lo == math.MinInt64:
		return fmt.Sprintf("<=%d", v.Hi)
	case v.Hi == math.MaxInt64:
		return fmt.Sprintf(">=%d", v.Lo)
	default:
		return fmt.Sprintf("=%d:%d", v.Lo, v.Hi)
	}
}

// Step is one navigational step of a path expression.
type Step struct {
	Axis  Axis
	Label string
	// Value, when non-nil, restricts the value of the element reached by
	// this step (the σi of the paper).
	Value *ValuePred
	// Branches are branching predicates: each requires at least one match
	// of the nested relative path starting at the element reached by this
	// step (the [l̄i{σ̄i}] of the paper).
	Branches []*Path
}

// Path is a sequence of steps. The first step's axis is interpreted relative
// to the evaluation context (the document root for twig root paths, the
// parent twig node's elements otherwise).
type Path struct {
	Steps []*Step
}

// String renders the path in parseable concrete syntax.
func (p *Path) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		if i == 0 {
			if s.Axis == Descendant {
				b.WriteString("//")
			}
		} else {
			b.WriteString(s.Axis.String())
		}
		b.WriteString(s.Label)
		if s.Value != nil {
			fmt.Fprintf(&b, "[%s]", s.Value)
		}
		for _, br := range s.Branches {
			fmt.Fprintf(&b, "[%s]", br)
		}
	}
	return b.String()
}

// Clone returns a deep copy of the path.
func (p *Path) Clone() *Path {
	if p == nil {
		return nil
	}
	out := &Path{Steps: make([]*Step, len(p.Steps))}
	for i, s := range p.Steps {
		ns := &Step{Axis: s.Axis, Label: s.Label}
		if s.Value != nil {
			v := *s.Value
			ns.Value = &v
		}
		for _, br := range s.Branches {
			ns.Branches = append(ns.Branches, br.Clone())
		}
		out.Steps[i] = ns
	}
	return out
}

// IsSimple reports whether the path uses only the child axis and carries no
// value or branching predicates (the paper's "simple path expressions").
func (p *Path) IsSimple() bool {
	for _, s := range p.Steps {
		if s.Axis == Descendant || s.Value != nil || len(s.Branches) > 0 {
			return false
		}
	}
	return true
}

// HasDescendant reports whether any step (including branch steps) uses the
// descendant axis.
func (p *Path) HasDescendant() bool {
	for _, s := range p.Steps {
		if s.Axis == Descendant {
			return true
		}
		for _, br := range s.Branches {
			if br.HasDescendant() {
				return true
			}
		}
	}
	return false
}

// CountValuePreds returns the number of value predicates in the path,
// including those nested in branching predicates.
func (p *Path) CountValuePreds() int {
	n := 0
	for _, s := range p.Steps {
		if s.Value != nil {
			n++
		}
		for _, br := range s.Branches {
			n += br.CountValuePreds()
		}
	}
	return n
}

// NewSimple builds a child-axis path from a sequence of labels.
func NewSimple(labels ...string) *Path {
	p := &Path{}
	for _, l := range labels {
		p.Steps = append(p.Steps, &Step{Axis: Child, Label: l})
	}
	return p
}

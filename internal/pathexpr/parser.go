package pathexpr

import (
	"fmt"
	"math"
	"strconv"
	"unicode"
)

// Parse parses the concrete path syntax described in the package comment.
func Parse(src string) (*Path, error) {
	p := &parser{src: src}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errorf("unexpected %q", p.rest())
	}
	return path, nil
}

// MustParse is Parse but panics on error; intended for tests and constants.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) rest() string { return p.src[p.pos:] }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("pathexpr: at offset %d of %q: %s", p.pos, p.src, fmt.Sprintf(format, args...))
}

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) accept(c byte) bool {
	if !p.eof() && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// parsePath parses a (possibly relative) path: [/ | //] step (/ | // step)*
func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	axis := Child
	if p.accept('/') {
		if p.accept('/') {
			axis = Descendant
		}
	}
	for {
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		if !p.accept('/') {
			break
		}
		axis = Child
		if p.accept('/') {
			axis = Descendant
		}
	}
	return path, nil
}

func (p *parser) parseStep(axis Axis) (*Step, error) {
	label := p.parseLabel()
	if label == "" {
		return nil, p.errorf("expected element label")
	}
	step := &Step{Axis: axis, Label: label}
	for p.accept('[') {
		if err := p.parseBracket(step); err != nil {
			return nil, err
		}
		if !p.accept(']') {
			return nil, p.errorf("expected ']'")
		}
	}
	return step, nil
}

func (p *parser) parseLabel() string {
	start := p.pos
	for !p.eof() {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '@' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

// parseBracket parses the content of one [...] predicate onto step.
func (p *parser) parseBracket(step *Step) error {
	c := p.peek()
	if c == '>' || c == '<' || c == '=' {
		// Value predicate on the step's own element.
		v, err := p.parseComparison()
		if err != nil {
			return err
		}
		if step.Value != nil {
			merged := intersect(*step.Value, v)
			step.Value = &merged
		} else {
			step.Value = &v
		}
		return nil
	}
	// Branching predicate: a relative path, possibly with a trailing
	// comparison applied to the final step.
	branch, err := p.parsePath()
	if err != nil {
		return err
	}
	if c := p.peek(); c == '>' || c == '<' || c == '=' {
		v, err := p.parseComparison()
		if err != nil {
			return err
		}
		last := branch.Steps[len(branch.Steps)-1]
		if last.Value != nil {
			merged := intersect(*last.Value, v)
			last.Value = &merged
		} else {
			last.Value = &v
		}
	}
	step.Branches = append(step.Branches, branch)
	return nil
}

// parseComparison parses >N, >=N, <N, <=N, =N or =N:M (inclusive range).
func (p *parser) parseComparison() (ValuePred, error) {
	switch {
	case p.accept('>'):
		eq := p.accept('=')
		n, err := p.parseInt()
		if err != nil {
			return ValuePred{}, err
		}
		if !eq {
			if n == math.MaxInt64 {
				return ValuePred{}, p.errorf("range overflow")
			}
			n++
		}
		return ValuePred{Lo: n, Hi: math.MaxInt64}, nil
	case p.accept('<'):
		eq := p.accept('=')
		n, err := p.parseInt()
		if err != nil {
			return ValuePred{}, err
		}
		if !eq {
			if n == math.MinInt64 {
				return ValuePred{}, p.errorf("range overflow")
			}
			n--
		}
		return ValuePred{Lo: math.MinInt64, Hi: n}, nil
	case p.accept('='):
		lo, err := p.parseInt()
		if err != nil {
			return ValuePred{}, err
		}
		if p.accept(':') {
			hi, err := p.parseInt()
			if err != nil {
				return ValuePred{}, err
			}
			if hi < lo {
				return ValuePred{}, p.errorf("empty range %d:%d", lo, hi)
			}
			return ValuePred{Lo: lo, Hi: hi}, nil
		}
		return ValuePred{Lo: lo, Hi: lo}, nil
	}
	return ValuePred{}, p.errorf("expected comparison operator")
}

func (p *parser) parseInt() (int64, error) {
	start := p.pos
	if p.accept('-') {
	}
	for !p.eof() && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.src[start] == '-' && p.pos == start+1) {
		return 0, p.errorf("expected integer")
	}
	n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q: %v", p.src[start:p.pos], err)
	}
	return n, nil
}

func intersect(a, b ValuePred) ValuePred {
	out := a
	if b.Lo > out.Lo {
		out.Lo = b.Lo
	}
	if b.Hi < out.Hi {
		out.Hi = b.Hi
	}
	return out
}

package pathexpr

import "testing"

// FuzzParse checks that the parser never panics and that every accepted
// path round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a/b/c",
		"//movie[/type=5]/actor",
		"paper[>1990][keyword]/title",
		"a[b[c=4]/d]/e",
		"year[=1990:1999]",
		"a//b[c>=0]",
		"",
		"[",
		"a[",
		"a[>",
		"a[=5:",
		"a/b[",
		"////",
		"a[b][c][d][e]",
		"x[=-9223372036854775808]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, s, err)
		}
		if p2.String() != s {
			t.Fatalf("rendering not a fixed point: %q -> %q", s, p2.String())
		}
	})
}

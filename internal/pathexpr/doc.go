// Package pathexpr implements the XPath-subset path expression language of
// the paper (Section 2):
//
//	l1{σ1}[branch1]/ ... /ln{σn}[branchn]
//
// where each li is an element label, σi is an optional integer range value
// predicate restricting the value of the element reached at step i, and each
// [branch] is an optional branching predicate requiring the existence of at
// least one match of a nested relative path. Steps may use the child axis
// ("/") or the descendant axis ("//").
//
// Concrete syntax accepted by Parse (XPath-flavoured):
//
//	author/paper[year>2000]/keyword
//	//movie[type=5]/actor
//	paper[>1990][keyword]/title
//	item[quantity>=2][payment][shipping]/mailbox//mail
//
// A bracket whose content starts with a comparison operator ("[>2000]") is a
// value predicate on the current step's own element; otherwise the bracket
// holds a branching predicate — a relative path whose final step may carry a
// trailing comparison ("[year>2000]"), which is shorthand for a value
// predicate on that final step.
package pathexpr

package experiments

import (
	"xsketch/internal/build"
	"xsketch/internal/cst"
	"xsketch/internal/metrics"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
	"xsketch/internal/xsketch"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the dataset scale factor (1 = paper-sized, ~100k elements).
	Scale float64
	// Seed drives dataset, workload and construction sampling.
	Seed int64
	// WorkloadSize is the number of queries per evaluation workload
	// (paper: 1000 for P/P+V, 500 for the CST comparison).
	WorkloadSize int
	// BudgetFactors are the synopsis-size sweep points as multiples of the
	// coarsest synopsis size.
	BudgetFactors []float64
	// BuildMaxSteps bounds XBUILD iterations per budget sweep.
	BuildMaxSteps int
	// OutlierCap excludes individual errors above this value when scoring
	// CSTs (paper: estimates beyond 1000% are excluded); 0 disables.
	OutlierCap float64
	// Datasets restricts the run; empty means the paper's selection per
	// experiment.
	Datasets []string
	// Workers is the estimation worker count used when scoring workloads
	// on a synopsis (Sketch.EstimateBatch); <= 0 selects GOMAXPROCS.
	Workers int
	// Planned scores workloads through the compiled-plan cache
	// (Sketch.EstimateBatchPlanned) instead of the interpreter. Results
	// are bit-identical; repeated-shape workloads run faster.
	Planned bool
}

// DefaultOptions returns a laptop-scale configuration: ~5k-element
// documents and 120-query workloads. The experiment shapes (who wins,
// how error declines) match the paper; absolute sizes do not need to.
func DefaultOptions() Options {
	return Options{
		Scale:         0.05,
		Seed:          1,
		WorkloadSize:  120,
		BudgetFactors: []float64{1, 1.5, 2, 3, 4, 6},
		BuildMaxSteps: 300,
		OutlierCap:    10,
	}
}

// PaperOptions returns the full-scale configuration matching the paper's
// setup (slow: minutes per figure).
func PaperOptions() Options {
	o := DefaultOptions()
	o.Scale = 1
	o.WorkloadSize = 1000
	return o
}

// dataset materializes one generated document with cached derived state.
type dataset struct {
	name string
	doc  *xmltree.Document
}

func (o Options) datasets(names ...string) []dataset {
	selected := names
	if len(o.Datasets) > 0 {
		selected = nil
		for _, n := range names {
			for _, want := range o.Datasets {
				if n == want {
					selected = append(selected, n)
				}
			}
		}
	}
	out := make([]dataset, 0, len(selected))
	for _, n := range selected {
		out = append(out, dataset{
			name: n,
			doc:  xmlgen.Generate(n, xmlgen.Config{Seed: o.Seed, Scale: o.Scale}),
		})
	}
	return out
}

// Table1Row is one row of the paper's Table 1.
type Table1Row struct {
	Dataset      string
	ElementCount int
	TextMB       float64
	CoarsestKB   float64
}

// Table1 reports dataset characteristics: element count, serialized text
// size, and the size of the coarsest Twig XSKETCH.
func Table1(o Options) []Table1Row {
	var rows []Table1Row
	for _, ds := range o.datasets(xmlgen.Names()...) {
		stats := xmltree.ComputeStats(ds.doc)
		coarse := xsketch.New(ds.doc, xsketch.DefaultConfig())
		rows = append(rows, Table1Row{
			Dataset:      ds.name,
			ElementCount: stats.ElementCount,
			TextMB:       float64(stats.TextBytes) / (1 << 20),
			CoarsestKB:   float64(coarse.SizeBytes()) / 1024,
		})
	}
	return rows
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Dataset   string
	Workload  string
	AvgResult float64
	AvgFanout float64
}

// Table2 reports workload characteristics (average result cardinality and
// internal-node fanout) for the P and P+V workloads on XMark and IMDB and
// the P workload on SwissProt, matching the paper's table layout.
func Table2(o Options) []Table2Row {
	var rows []Table2Row
	for _, ds := range o.datasets(xmlgen.Names()...) {
		kinds := []workload.Kind{workload.KindP, workload.KindPV}
		if ds.name == xmlgen.SwissProtName {
			kinds = kinds[:1] // the paper reports P only for SwissProt
		}
		for _, kind := range kinds {
			w := o.makeWorkload(ds.doc, kind)
			st := w.Stats()
			rows = append(rows, Table2Row{
				Dataset:   ds.name,
				Workload:  kind.String(),
				AvgResult: st.AvgResult,
				AvgFanout: st.AvgFanout,
			})
		}
	}
	return rows
}

func (o Options) makeWorkload(doc *xmltree.Document, kind workload.Kind) *workload.Workload {
	cfg := workload.DefaultConfig(kind)
	cfg.NumQueries = o.WorkloadSize
	cfg.Seed = o.Seed + int64(kind)*101
	return workload.Generate(doc, cfg)
}

// SweepPoint is one (size, error) point of an error-vs-size curve.
type SweepPoint struct {
	SizeKB   float64
	AvgError float64
}

// Series is an error curve for one dataset.
type Series struct {
	Dataset string
	Points  []SweepPoint
}

// Figure9a sweeps synopsis size against the P (branching predicates)
// workload on XMark and IMDB.
func Figure9a(o Options) []Series {
	return o.errorSweep(workload.KindP, xmlgen.XMarkName, xmlgen.IMDBName)
}

// Figure9b sweeps synopsis size against the P+V (branching + value
// predicates) workload on XMark and IMDB.
func Figure9b(o Options) []Series {
	return o.errorSweep(workload.KindPV, xmlgen.XMarkName, xmlgen.IMDBName)
}

// errorSweep builds one XBUILD run per dataset, snapshotting the error at
// each budget point.
func (o Options) errorSweep(kind workload.Kind, names ...string) []Series {
	var out []Series
	for _, ds := range o.datasets(names...) {
		w := o.makeWorkload(ds.doc, kind)
		out = append(out, Series{Dataset: ds.name, Points: o.sweepSketch(ds.doc, w, nil)})
	}
	return out
}

// sweepSketch runs XBUILD once and scores the evaluation workload at each
// budget threshold. mutateOpts, when non-nil, adjusts the build options
// (used by ablations).
func (o Options) sweepSketch(doc *xmltree.Document, w *workload.Workload, mutateOpts func(*build.Options)) []SweepPoint {
	coarseSize := xsketch.New(doc, xsketch.DefaultConfig()).SizeBytes()
	opts := build.DefaultOptions(1 << 30)
	opts.Seed = o.Seed
	opts.MaxSteps = o.BuildMaxSteps
	if mutateOpts != nil {
		mutateOpts(&opts)
	}
	b := build.NewBuilder(doc, opts)
	var points []SweepPoint
	for _, f := range o.BudgetFactors {
		target := int(f * float64(coarseSize))
		b.RunTo(target)
		sk := b.Sketch()
		points = append(points, SweepPoint{
			SizeKB:   float64(sk.SizeBytes()) / 1024,
			AvgError: scoreXSketch(sk, w, 0, o),
		})
	}
	return points
}

// scoreXSketch evaluates the workload on the sketch's concurrent batch
// path (o.Workers <= 0 selects GOMAXPROCS); estimates are bit-identical to
// the sequential path for any worker count, planned or interpreted.
func scoreXSketch(sk *xsketch.Sketch, w *workload.Workload, outlierCap float64, o Options) float64 {
	ests := estimateWorkload(sk, w, o)
	results := make([]metrics.Result, len(w.Queries))
	for i, q := range w.Queries {
		results[i] = metrics.Result{Truth: q.Truth, Estimate: ests[i].Estimate}
	}
	return metrics.Evaluate(results, outlierCap).AvgError
}

// estimateWorkload runs a workload's queries through the sketch's batch
// path — compiled plans when o.Planned is set, the interpreter otherwise.
func estimateWorkload(sk *xsketch.Sketch, w *workload.Workload, o Options) []xsketch.EstimateResult {
	qs := make([]*twig.Query, len(w.Queries))
	for i, q := range w.Queries {
		qs[i] = q.Twig
	}
	if o.Planned {
		return sk.EstimateBatchPlanned(qs, o.Workers)
	}
	return sk.EstimateBatch(qs, o.Workers)
}

func scoreCST(c *cst.CST, w *workload.Workload, outlierCap float64) float64 {
	results := make([]metrics.Result, len(w.Queries))
	for i, q := range w.Queries {
		results[i] = metrics.Result{Truth: q.Truth, Estimate: c.EstimateQuery(q.Twig)}
	}
	return metrics.Evaluate(results, outlierCap).AvgError
}

// RatioPoint is one point of the Figure 9(c) comparison.
type RatioPoint struct {
	SizeKB float64
	ErrCST float64
	ErrX   float64
	// Ratio is errCST / errX (the paper's y-axis); +Inf-avoiding: when the
	// XSKETCH error is ~0 the ratio is reported against a 0.1% floor.
	Ratio float64
}

// RatioSeries is the Figure 9(c) curve for one dataset.
type RatioSeries struct {
	Dataset string
	Points  []RatioPoint
}

// Figure9c compares CSTs against Twig XSKETCHes on workloads of twig
// queries with simple path expressions, reporting err_CST / err_X at each
// budget on all three datasets. CST outliers beyond OutlierCap are
// excluded, as in the paper.
func Figure9c(o Options) []RatioSeries {
	var out []RatioSeries
	for _, ds := range o.datasets(xmlgen.Names()...) {
		wcfg := workload.DefaultConfig(workload.KindSimple)
		wcfg.NumQueries = o.WorkloadSize / 2 // paper: 500 vs 1000
		if wcfg.NumQueries < 10 {
			wcfg.NumQueries = 10
		}
		wcfg.Seed = o.Seed + 7
		w := workload.Generate(ds.doc, wcfg)

		coarseSize := xsketch.New(ds.doc, xsketch.DefaultConfig()).SizeBytes()
		opts := build.DefaultOptions(1 << 30)
		opts.Seed = o.Seed
		opts.MaxSteps = o.BuildMaxSteps
		// The comparison workload has no value predicates; spend the budget
		// on structure (matching the value-free CST).
		opts.Sketch.InitialValueBuckets = 0
		b := build.NewBuilder(ds.doc, opts)

		series := RatioSeries{Dataset: ds.name}
		for _, f := range o.BudgetFactors {
			target := int(f * float64(coarseSize))
			b.RunTo(target)
			sk := b.Sketch()
			size := sk.SizeBytes()

			// Prune a fresh CST to the same byte budget for a fair
			// comparison.
			c := cst.Build(ds.doc, cst.DefaultConfig())
			if c.SizeBytes() > size {
				c.Prune(size)
			}
			errX := scoreXSketch(sk, w, 0, o)
			errC := scoreCST(c, w, o.OutlierCap)
			floor := 0.001
			den := errX
			if den < floor {
				den = floor
			}
			series.Points = append(series.Points, RatioPoint{
				SizeKB: float64(size) / 1024,
				ErrCST: errC,
				ErrX:   errX,
				Ratio:  errC / den,
			})
		}
		out = append(out, series)
	}
	return out
}

// result couples a truth with an estimate (shared by the scoring helpers).
type result struct {
	truth int64
	est   float64
}

// scoreResults evaluates a result batch with the paper's metric.
func scoreResults(rs []result, outlierCap float64) float64 {
	conv := make([]metrics.Result, len(rs))
	for i, r := range rs {
		conv[i] = metrics.Result{Truth: r.truth, Estimate: r.est}
	}
	return metrics.Evaluate(conv, outlierCap).AvgError
}

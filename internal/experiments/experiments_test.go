package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions keeps the experiment tests fast; the benchmark harness runs
// larger scales.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.02
	o.WorkloadSize = 30
	o.BudgetFactors = []float64{1, 2}
	o.BuildMaxSteps = 25
	return o
}

func TestTable1(t *testing.T) {
	rows := Table1(tinyOptions())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ElementCount <= 0 || r.TextMB <= 0 || r.CoarsestKB <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// The coarsest synopsis is a tiny fraction of the text size.
		if r.CoarsestKB*1024 > r.TextMB*(1<<20)/10 {
			t.Fatalf("coarsest synopsis too large: %+v", r)
		}
	}
	var buf bytes.Buffer
	FormatTable1(&buf, rows)
	if !strings.Contains(buf.String(), "xmark") {
		t.Fatalf("format output: %s", buf.String())
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(tinyOptions())
	// XMark P, XMark P+V, IMDB P, IMDB P+V, SProt P.
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgResult <= 0 {
			t.Fatalf("AvgResult = %v for %+v", r.AvgResult, r)
		}
		if r.AvgFanout < 1 || r.AvgFanout > 3.5 {
			t.Fatalf("AvgFanout = %v for %+v", r.AvgFanout, r)
		}
	}
	var buf bytes.Buffer
	FormatTable2(&buf, rows)
	if !strings.Contains(buf.String(), "P+V") {
		t.Fatalf("format output: %s", buf.String())
	}
}

func TestFigure9aShape(t *testing.T) {
	o := tinyOptions()
	series := Figure9a(o)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(o.BudgetFactors) {
			t.Fatalf("%s: %d points", s.Dataset, len(s.Points))
		}
		for _, p := range s.Points {
			if p.SizeKB <= 0 || p.AvgError < 0 {
				t.Fatalf("%s: bad point %+v", s.Dataset, p)
			}
		}
		// Size grows along the sweep.
		if s.Points[len(s.Points)-1].SizeKB < s.Points[0].SizeKB {
			t.Fatalf("%s: sizes not monotone: %+v", s.Dataset, s.Points)
		}
		// The refined synopsis is no worse than the coarsest (allowing
		// small sampling noise).
		first, last := s.Points[0].AvgError, s.Points[len(s.Points)-1].AvgError
		if last > first+0.10 {
			t.Fatalf("%s: error grew along sweep: %.3f -> %.3f", s.Dataset, first, last)
		}
	}
	var buf bytes.Buffer
	FormatSeries(&buf, "Figure 9(a)", series)
	if !strings.Contains(buf.String(), "imdb") {
		t.Fatalf("format output: %s", buf.String())
	}
}

func TestFigure9cShape(t *testing.T) {
	o := tinyOptions()
	series := Figure9c(o)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != len(o.BudgetFactors) {
			t.Fatalf("%s: %d points", s.Dataset, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Ratio < 0 {
				t.Fatalf("%s: negative ratio %+v", s.Dataset, p)
			}
		}
	}
	var buf bytes.Buffer
	FormatRatios(&buf, series)
	if !strings.Contains(buf.String(), "ratio") {
		t.Fatalf("format output: %s", buf.String())
	}
}

func TestNegativeWorkloadNearZero(t *testing.T) {
	o := tinyOptions()
	rows := NegativeWorkload(o)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		// "Close to zero estimates": average estimate below the sanity
		// bound scale (which is 1 for all-zero truths -> error == avg est).
		if r.AvgError > 0.75 {
			t.Fatalf("%s: negative-workload error %.2f too high", r.Dataset, r.AvgError)
		}
	}
	var buf bytes.Buffer
	FormatNegative(&buf, rows)
	if !strings.Contains(buf.String(), "avg estimate") {
		t.Fatal("format output missing header")
	}
}

func TestDatasetsFilter(t *testing.T) {
	o := tinyOptions()
	o.Datasets = []string{"imdb"}
	rows := Table1(o)
	if len(rows) != 1 || rows[0].Dataset != "imdb" {
		t.Fatalf("filtered rows = %+v", rows)
	}
}

func TestAblationBucketBudget(t *testing.T) {
	o := tinyOptions()
	rows := AblationBucketBudget(o)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Size grows with buckets; error does not get dramatically worse.
	for i := 1; i < len(rows); i++ {
		if rows[i].SizeKB < rows[i-1].SizeKB {
			t.Fatalf("size not monotone: %+v", rows)
		}
	}
	if rows[len(rows)-1].Error > rows[0].Error+0.10 {
		t.Fatalf("more buckets increased error: %+v", rows)
	}
	var buf bytes.Buffer
	FormatAblation(&buf, "bucket budget", rows)
	if !strings.Contains(buf.String(), "buckets-16") {
		t.Fatal("format output missing variant")
	}
}

func TestFormatSinglePath(t *testing.T) {
	var buf bytes.Buffer
	FormatSinglePath(&buf, []SinglePathRow{{Dataset: "imdb", SizeKB: 3, TwigErr: 0.1, StructuralErr: 0.08}})
	if !strings.Contains(buf.String(), "imdb") {
		t.Fatal("format output missing row")
	}
}

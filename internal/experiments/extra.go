package experiments

import (
	"fmt"

	"xsketch/internal/eval"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"

	"xsketch/internal/build"
	"xsketch/internal/metrics"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xsketch"
)

// This file implements the experiments the paper reports in prose plus the
// design-choice ablations DESIGN.md calls out.

// NegativeRow reports one dataset's behaviour on a zero-selectivity
// workload.
type NegativeRow struct {
	Dataset string
	Queries int
	// AvgEstimate is the mean estimate over the negative queries; the
	// paper reports "consistently ... close to zero estimates".
	AvgEstimate float64
	// AvgError is the sanity-bounded relative error (estimate / sanity).
	AvgError float64
}

// NegativeWorkload scores a built synopsis on zero-selectivity queries
// (paper Section 6.1: "our synopses consistently give close to zero
// estimates for this type of queries").
func NegativeWorkload(o Options) []NegativeRow {
	var rows []NegativeRow
	for _, ds := range o.datasets(xmlgen.Names()...) {
		cfg := workload.DefaultConfig(workload.KindNegative)
		cfg.NumQueries = o.WorkloadSize / 2
		if cfg.NumQueries < 10 {
			cfg.NumQueries = 10
		}
		cfg.Seed = o.Seed + 13
		w := workload.Generate(ds.doc, cfg)
		if len(w.Queries) == 0 {
			continue
		}
		sk := o.buildAt(ds, 3, nil)
		sum, results := 0.0, make([]metrics.Result, len(w.Queries))
		for i, q := range w.Queries {
			est := sk.EstimateQuery(q.Twig)
			sum += est
			results[i] = metrics.Result{Truth: 0, Estimate: est}
		}
		rows = append(rows, NegativeRow{
			Dataset:     ds.name,
			Queries:     len(w.Queries),
			AvgEstimate: sum / float64(len(w.Queries)),
			AvgError:    metrics.Evaluate(results, 0).AvgError,
		})
	}
	return rows
}

// buildAt runs XBUILD until the synopsis reaches factor x the coarsest
// size (so variants are compared at matched sizes), bounded by a generous
// step limit.
func (o Options) buildAt(ds dataset, factor float64, mutateOpts func(*build.Options)) *xsketch.Sketch {
	coarseSize := xsketch.New(ds.doc, xsketch.DefaultConfig()).SizeBytes()
	target := int(factor * float64(coarseSize))
	opts := build.DefaultOptions(target)
	opts.Seed = o.Seed
	opts.MaxSteps = 4 * o.BuildMaxSteps
	if mutateOpts != nil {
		mutateOpts(&opts)
	}
	b := build.NewBuilder(ds.doc, opts)
	b.RunTo(target)
	return b.Sketch()
}

// SinglePathRow compares Twig XSKETCHes against path-specialized
// ("Structural") XSKETCHes on single-path workloads.
type SinglePathRow struct {
	Dataset string
	SizeKB  float64
	// TwigErr is the error of a synopsis built against twig workloads.
	TwigErr float64
	// StructuralErr is the error of a synopsis built (scored) against
	// single-path workloads only — the paper's Structural XSKETCH stand-in.
	StructuralErr float64
}

// SinglePathComparison reproduces the Section 6.2 prose experiment: Twig
// XSKETCHes compute low-error path estimates, but a synopsis whose
// construction targets single paths is (weakly) better on them.
func SinglePathComparison(o Options) []SinglePathRow {
	var rows []SinglePathRow
	for _, ds := range o.datasets(xmlgen.XMarkName, xmlgen.IMDBName) {
		// Single-path evaluation workload: chains only.
		cfg := workload.DefaultConfig(workload.KindSimple)
		cfg.NumQueries = o.WorkloadSize / 2
		if cfg.NumQueries < 10 {
			cfg.NumQueries = 10
		}
		cfg.Seed = o.Seed + 29
		cfg.MinNodes = 1
		cfg.MaxNodes = 1
		cfg.MultiStepProb = 0.8
		// Descendant-axis roots make the paths non-trivial: the estimator
		// must sum over alternative synopsis embeddings.
		cfg.DescendantProb = 0.6
		paths := workload.Generate(ds.doc, cfg)

		twigSk := o.buildAt(ds, 3, nil)
		structSk := o.buildAt(ds, 3, func(b *build.Options) {
			b.ScoringWorkload = paths // score refinements on paths only
			b.Seed = o.Seed + 1
		})
		rows = append(rows, SinglePathRow{
			Dataset:       ds.name,
			SizeKB:        float64(twigSk.SizeBytes()) / 1024,
			TwigErr:       scoreXSketch(twigSk, paths, 0, o),
			StructuralErr: scoreXSketch(structSk, paths, 0, o),
		})
	}
	return rows
}

// AblationRow is one configuration's error at a fixed budget.
type AblationRow struct {
	Dataset string
	Variant string
	SizeKB  float64
	Error   float64
}

// AblationRefinementPolicy compares XBUILD's marginal-gains selection
// against random refinement selection at the same budget — the design
// choice the paper credits for outperforming CSTs ("takes directly into
// account the assumptions of the estimation framework"). Both variants are
// averaged over three construction seeds: individual runs are noisy
// because XBUILD scores candidates on small sampled workloads.
func AblationRefinementPolicy(o Options) []AblationRow {
	var rows []AblationRow
	for _, ds := range o.datasets(xmlgen.IMDBName) {
		w := o.makeWorkload(ds.doc, workload.KindP)
		variants := []struct {
			name   string
			mutate func(*build.Options)
		}{
			{"marginal-gains", nil},
			{"random", func(b *build.Options) { b.RandomSelection = true }},
		}
		for _, v := range variants {
			var errSum, sizeSum float64
			const seeds = 3
			for s := 0; s < seeds; s++ {
				seed := o.Seed + int64(s)*37
				sk := o.buildAt(ds, 3, func(b *build.Options) {
					b.Seed = seed
					if v.mutate != nil {
						v.mutate(b)
					}
				})
				errSum += scoreXSketch(sk, w, 0, o)
				sizeSum += float64(sk.SizeBytes())
			}
			rows = append(rows, AblationRow{
				Dataset: ds.name,
				Variant: v.name,
				SizeKB:  sizeSum / seeds / 1024,
				Error:   errSum / seeds,
			})
		}
	}
	return rows
}

// AblationBackwardCounts compares the paper's prototype restriction
// (forward-only scopes, the default) against the full model's backward
// edge-expand candidates.
func AblationBackwardCounts(o Options) []AblationRow {
	var rows []AblationRow
	for _, ds := range o.datasets(xmlgen.IMDBName) {
		w := o.makeWorkload(ds.doc, workload.KindP)
		forward := o.buildAt(ds, 3, nil)
		backward := o.buildAt(ds, 3, func(b *build.Options) { b.EnableBackwardExpand = true })
		rows = append(rows,
			AblationRow{ds.name, "forward-only", float64(forward.SizeBytes()) / 1024, scoreXSketch(forward, w, 0, o)},
			AblationRow{ds.name, "with-backward", float64(backward.SizeBytes()) / 1024, scoreXSketch(backward, w, 0, o)},
		)
	}
	return rows
}

// AblationValueExpand compares a coarse synopsis against the same synopsis
// with a value dimension correlating movie type into the movie histogram
// (the extended H^v model of Section 3.2). It is scored on the paper's
// motivating query family — for t0 in movie[/type=g], t1 in t0/actor,
// t2 in t0/producer, for every genre g — where the type↔cast-size
// correlation is exactly what independent value histograms miss.
func AblationValueExpand(o Options) []AblationRow {
	var rows []AblationRow
	for _, ds := range o.datasets(xmlgen.IMDBName) {
		w := motivatingWorkload(ds.doc)
		cfg := xsketch.DefaultConfig()
		cfg.InitialEdgeBuckets = 8
		cfg.InitialValueBuckets = 8

		// bumpMovie grows the movie node's bucket budget so the joint
		// histogram has resolution to spend on the extra dimension; the
		// bucket-matched control isolates the dimension's own effect.
		bumpMovie := func(sk *xsketch.Sketch, buckets int) {
			if nid, ok := ds.doc.LookupTag("movie"); ok {
				for _, n := range sk.Syn.NodesByTag(nid) {
					sk.SetBuckets(n, buckets)
				}
			}
		}
		addDim := func(sk *xsketch.Sketch, nodeTag, childTag string) {
			nid, ok1 := ds.doc.LookupTag(nodeTag)
			cid, ok2 := ds.doc.LookupTag(childTag)
			if !ok1 || !ok2 {
				return
			}
			for _, n := range sk.Syn.NodesByTag(nid) {
				for _, c := range sk.Syn.NodesByTag(cid) {
					sk.AddValueDim(n, c, 10)
				}
			}
		}

		plain := xsketch.New(ds.doc, cfg)
		control := xsketch.New(ds.doc, cfg)
		bumpMovie(control, 64)
		joint := xsketch.New(ds.doc, cfg)
		addDim(joint, "movie", "type")
		bumpMovie(joint, 64)

		rows = append(rows,
			AblationRow{ds.name, "independent-values", float64(plain.SizeBytes()) / 1024, scoreXSketch(plain, w, 0, o)},
			AblationRow{ds.name, "independent+64-buckets", float64(control.SizeBytes()) / 1024, scoreXSketch(control, w, 0, o)},
			AblationRow{ds.name, "joint-type+64-buckets", float64(joint.SizeBytes()) / 1024, scoreXSketch(joint, w, 0, o)},
		)
	}
	return rows
}

// AblationReferenceScoring compares XBUILD construction scored against
// exact true selectivities (our default substitute) with construction
// scored against a large reference summary (the paper's method, "avoiding
// costly accesses to the database"). Similar final errors validate the
// paper's choice.
func AblationReferenceScoring(o Options) []AblationRow {
	var rows []AblationRow
	for _, ds := range o.datasets(xmlgen.IMDBName) {
		w := o.makeWorkload(ds.doc, workload.KindP)
		exact := o.buildAt(ds, 3, nil)
		ref := o.buildAt(ds, 3, func(b *build.Options) { b.ReferenceScoring = true })
		rows = append(rows,
			AblationRow{ds.name, "exact-scored", float64(exact.SizeBytes()) / 1024, scoreXSketch(exact, w, 0, o)},
			AblationRow{ds.name, "reference-scored", float64(ref.SizeBytes()) / 1024, scoreXSketch(ref, w, 0, o)},
		)
	}
	return rows
}

// AblationEdgeCounts compares the paper's stored model (node counts +
// stability bits; unstable edges estimated by proportional splitting)
// against storing exact per-edge counts, at the small extra cost the size
// model charges.
func AblationEdgeCounts(o Options) []AblationRow {
	var rows []AblationRow
	for _, ds := range o.datasets(xmlgen.IMDBName, xmlgen.SwissProtName) {
		w := o.makeWorkload(ds.doc, workload.KindP)
		for _, stored := range []bool{false, true} {
			cfg := xsketch.DefaultConfig()
			cfg.InitialEdgeBuckets = 8
			cfg.InitialValueBuckets = 8
			cfg.StoreEdgeCounts = stored
			sk := xsketch.New(ds.doc, cfg)
			variant := "stability-bits"
			if stored {
				variant = "stored-edge-counts"
			}
			rows = append(rows, AblationRow{
				Dataset: ds.name,
				Variant: variant,
				SizeKB:  float64(sk.SizeBytes()) / 1024,
				Error:   scoreXSketch(sk, w, 0, o),
			})
		}
	}
	return rows
}

// AblationValueSummary compares equi-depth histograms against Haar wavelet
// synopses for the per-node value summaries at matched unit budgets,
// scored on the P+V workload (the paper mentions both as candidate
// summarization methods).
func AblationValueSummary(o Options) []AblationRow {
	var rows []AblationRow
	for _, ds := range o.datasets(xmlgen.IMDBName, xmlgen.XMarkName) {
		w := o.makeWorkload(ds.doc, workload.KindPV)
		for _, wavelet := range []bool{false, true} {
			cfg := xsketch.DefaultConfig()
			cfg.InitialEdgeBuckets = 8
			cfg.InitialValueBuckets = 8
			cfg.WaveletValues = wavelet
			sk := xsketch.New(ds.doc, cfg)
			variant := "equi-depth"
			if wavelet {
				variant = "wavelet"
			}
			rows = append(rows, AblationRow{
				Dataset: ds.name,
				Variant: variant,
				SizeKB:  float64(sk.SizeBytes()) / 1024,
				Error:   scoreXSketch(sk, w, 0, o),
			})
		}
	}
	return rows
}

// motivatingWorkload builds the introduction's movie/actor/producer query
// for every genre value present in the document, with exact truths.
func motivatingWorkload(doc *xmltree.Document) *workload.Workload {
	ev := eval.New(doc)
	w := &workload.Workload{Kind: workload.KindPV}
	for g := int64(0); g < 10; g++ {
		q, err := twig.Parse(fmt.Sprintf("t0 in movie[type=%d], t1 in t0/actor, t2 in t0/producer", g))
		if err != nil {
			continue
		}
		truth := ev.Selectivity(q)
		if truth == 0 {
			continue
		}
		w.Queries = append(w.Queries, workload.Query{Twig: q, Truth: truth})
	}
	return w
}

// AblationBucketBudget measures the coarsest structure with increasing
// uniform histogram budgets (no structural refinement): how much of the
// error reduction comes from distribution detail alone.
func AblationBucketBudget(o Options) []AblationRow {
	var rows []AblationRow
	for _, ds := range o.datasets(xmlgen.IMDBName) {
		w := o.makeWorkload(ds.doc, workload.KindP)
		for _, buckets := range []int{1, 2, 4, 8, 16} {
			cfg := xsketch.DefaultConfig()
			cfg.InitialEdgeBuckets = buckets
			cfg.InitialValueBuckets = buckets
			sk := xsketch.New(ds.doc, cfg)
			rows = append(rows, AblationRow{
				Dataset: ds.name,
				Variant: fmt.Sprintf("buckets-%d", buckets),
				SizeKB:  float64(sk.SizeBytes()) / 1024,
				Error:   scoreXSketch(sk, w, 0, o),
			})
		}
	}
	return rows
}

package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// This file renders experiment results as the text tables the paper
// reports, for cmd/xbench and the benchmark harness.

// FormatTable1 writes Table 1 ("Data Sets").
func FormatTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 1. Data Sets")
	fmt.Fprintln(tw, "dataset\telements\ttext (MB)\tcoarsest synopsis (KB)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\n", r.Dataset, r.ElementCount, r.TextMB, r.CoarsestKB)
	}
	tw.Flush()
}

// FormatTable2 writes Table 2 ("Workload Characteristics").
func FormatTable2(w io.Writer, rows []Table2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 2. Workload Characteristics")
	fmt.Fprintln(tw, "dataset\tworkload\tavg result\tavg fanout")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.2f\n", r.Dataset, r.Workload, r.AvgResult, r.AvgFanout)
	}
	tw.Flush()
}

// FormatSeries writes an error-vs-size figure as one block per dataset.
func FormatSeries(w io.Writer, title string, series []Series) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	for _, s := range series {
		fmt.Fprintf(tw, "%s:\tsize (KB)\tavg error\n", s.Dataset)
		for _, p := range s.Points {
			fmt.Fprintf(tw, "\t%.2f\t%.1f%%\n", p.SizeKB, p.AvgError*100)
		}
	}
	tw.Flush()
}

// FormatRatios writes the Figure 9(c) comparison.
func FormatRatios(w io.Writer, series []RatioSeries) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Figure 9(c). Simple Paths: CSTs vs. XSKETCHes")
	for _, s := range series {
		fmt.Fprintf(tw, "%s:\tsize (KB)\terr CST\terr XSKETCH\tratio\n", s.Dataset)
		for _, p := range s.Points {
			fmt.Fprintf(tw, "\t%.2f\t%.1f%%\t%.1f%%\t%.2f\n",
				p.SizeKB, p.ErrCST*100, p.ErrX*100, p.Ratio)
		}
	}
	tw.Flush()
}

// FormatNegative writes the negative-workload experiment.
func FormatNegative(w io.Writer, rows []NegativeRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Negative workloads (true selectivity 0)")
	fmt.Fprintln(tw, "dataset\tqueries\tavg estimate\tavg error")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.1f%%\n", r.Dataset, r.Queries, r.AvgEstimate, r.AvgError*100)
	}
	tw.Flush()
}

// FormatSinglePath writes the Twig vs Structural XSKETCH comparison.
func FormatSinglePath(w io.Writer, rows []SinglePathRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Single XPath expressions: Twig vs Structural XSKETCH")
	fmt.Fprintln(tw, "dataset\tsize (KB)\ttwig-built err\tpath-built err")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\t%.1f%%\n", r.Dataset, r.SizeKB, r.TwigErr*100, r.StructuralErr*100)
	}
	tw.Flush()
}

// FormatAblation writes an ablation table.
func FormatAblation(w io.Writer, title string, rows []AblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprintln(tw, "dataset\tvariant\tsize (KB)\tavg error")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.1f%%\n", r.Dataset, r.Variant, r.SizeKB, r.Error*100)
	}
	tw.Flush()
}

// FormatThreeWay writes the three-technique extension comparison.
func FormatThreeWay(w io.Writer, rows []ThreeWayRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Extension: XSKETCH vs CST vs StatiX-lite (simple paths, matched budgets)")
	fmt.Fprintln(tw, "dataset\tsize (KB)\terr XSKETCH\terr CST\terr StatiX")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Dataset, r.SizeKB, r.ErrX*100, r.ErrCST*100, r.ErrStatiX*100)
	}
	tw.Flush()
}

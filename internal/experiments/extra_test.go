package experiments

import (
	"bytes"
	"strings"
	"testing"

	"xsketch/internal/xmlgen"
)

func TestSinglePathComparison(t *testing.T) {
	o := tinyOptions()
	rows := SinglePathComparison(o)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TwigErr < 0 || r.StructuralErr < 0 {
			t.Fatalf("negative error: %+v", r)
		}
		if r.SizeKB <= 0 {
			t.Fatalf("zero size: %+v", r)
		}
	}
}

func TestAblationRefinementPolicy(t *testing.T) {
	o := tinyOptions()
	rows := AblationRefinementPolicy(o)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
		if r.Error < 0 {
			t.Fatalf("negative error: %+v", r)
		}
	}
	if !names["marginal-gains"] || !names["random"] {
		t.Fatalf("variants = %v", names)
	}
}

func TestAblationBackwardCounts(t *testing.T) {
	o := tinyOptions()
	rows := AblationBackwardCounts(o)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Variant != "forward-only" || rows[1].Variant != "with-backward" {
		t.Fatalf("variants = %+v", rows)
	}
}

func TestAblationValueExpand(t *testing.T) {
	o := tinyOptions()
	rows := AblationValueExpand(o)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The joint variant must improve substantially over the bucket-matched
	// control on the motivating query family.
	var control, joint float64
	for _, r := range rows {
		switch r.Variant {
		case "independent+64-buckets":
			control = r.Error
		case "joint-type+64-buckets":
			joint = r.Error
		}
	}
	if joint >= control {
		t.Fatalf("value dimension did not help: joint %.3f vs control %.3f", joint, control)
	}
}

func TestAblationValueSummary(t *testing.T) {
	o := tinyOptions()
	rows := AblationValueSummary(o)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Error < 0 || r.SizeKB <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// Both methods must produce sane errors at comparable sizes; their
	// relative accuracy fluctuates at this tiny scale (the paper-scale run
	// shows them within a point of each other).
	for i := 0; i+1 < len(rows); i += 2 {
		for _, r := range rows[i : i+2] {
			if r.Error > 2 {
				t.Fatalf("value summary error implausible: %+v", r)
			}
		}
		ratio := rows[i].SizeKB / rows[i+1].SizeKB
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("sizes not comparable: %+v vs %+v", rows[i], rows[i+1])
		}
	}
}

func TestMotivatingWorkload(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 1, Scale: 0.02})
	w := motivatingWorkload(doc)
	if len(w.Queries) == 0 {
		t.Fatal("no motivating queries")
	}
	for _, q := range w.Queries {
		if q.Truth <= 0 {
			t.Fatalf("non-positive truth: %s", q.Twig)
		}
	}
}

func TestFigure9b(t *testing.T) {
	o := tinyOptions()
	series := Figure9b(o)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	var buf bytes.Buffer
	FormatSeries(&buf, "Figure 9(b)", series)
	if !strings.Contains(buf.String(), "xmark") {
		t.Fatal("format output missing dataset")
	}
}

func TestPaperOptions(t *testing.T) {
	o := PaperOptions()
	if o.Scale != 1 || o.WorkloadSize != 1000 {
		t.Fatalf("PaperOptions = %+v", o)
	}
}

func TestAblationReferenceScoring(t *testing.T) {
	o := tinyOptions()
	rows := AblationReferenceScoring(o)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Variant != "exact-scored" || rows[1].Variant != "reference-scored" {
		t.Fatalf("variants = %+v", rows)
	}
	for _, r := range rows {
		if r.Error < 0 || r.SizeKB <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestThreeWay(t *testing.T) {
	o := tinyOptions()
	rows := ThreeWay(o)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SizeKB <= 0 || r.ErrX < 0 || r.ErrCST < 0 || r.ErrStatiX < 0 {
			t.Fatalf("bad row %+v", r)
		}
		// The headline claim holds even at tiny scale: XSKETCH is at least
		// as accurate as both baselines on skewed data (allow slack on the
		// regular datasets).
		if r.Dataset == "imdb" && (r.ErrX > r.ErrCST || r.ErrX > r.ErrStatiX+0.05) {
			t.Fatalf("XSKETCH not leading on imdb: %+v", r)
		}
	}
	var buf bytes.Buffer
	FormatThreeWay(&buf, rows)
	if !strings.Contains(buf.String(), "StatiX") {
		t.Fatal("format output missing StatiX")
	}
}

package experiments

import (
	"xsketch/internal/build"
	"xsketch/internal/cst"
	"xsketch/internal/statix"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xsketch"
)

// ThreeWayRow compares the three summarization techniques at one matched
// budget.
type ThreeWayRow struct {
	Dataset   string
	SizeKB    float64
	ErrX      float64 // Twig XSKETCH
	ErrCST    float64 // Correlated Suffix Tree (Chen et al.)
	ErrStatiX float64 // StatiX-lite (Freire et al.)
}

// ThreeWay extends the paper's Figure 9(c) with the second related-work
// baseline it discusses but does not measure: StatiX. All three techniques
// are scored on the simple-path twig workload at a matched byte budget
// (the XSKETCH's built size; the CST is pruned and the StatiX summary
// coarsened to it).
func ThreeWay(o Options) []ThreeWayRow {
	var rows []ThreeWayRow
	for _, ds := range o.datasets(xmlgen.Names()...) {
		wcfg := workload.DefaultConfig(workload.KindSimple)
		wcfg.NumQueries = o.WorkloadSize / 2
		if wcfg.NumQueries < 10 {
			wcfg.NumQueries = 10
		}
		wcfg.Seed = o.Seed + 7
		w := workload.Generate(ds.doc, wcfg)

		cfg := xsketch.DefaultConfig()
		cfg.InitialValueBuckets = 0 // value-free comparison, as in Figure 9(c)
		coarseSize := xsketch.New(ds.doc, cfg).SizeBytes()
		opts := build.DefaultOptions(4 * coarseSize)
		opts.Sketch = cfg
		opts.Seed = o.Seed
		opts.MaxSteps = o.BuildMaxSteps
		b := build.NewBuilder(ds.doc, opts)
		b.RunTo(4 * coarseSize)
		sk := b.Sketch()
		budget := sk.SizeBytes()

		c := cst.Build(ds.doc, cst.DefaultConfig())
		if c.SizeBytes() > budget {
			c.Prune(budget)
		}
		sx := statix.Build(ds.doc, statix.Config{BucketsPerEdge: 64, BucketBytes: 8, NodeBytes: 6})
		if sx.SizeBytes() > budget {
			sx.Coarsen(budget)
		}

		var xres, cres, sres []result
		xests := estimateWorkload(sk, w, o)
		for i, q := range w.Queries {
			xres = append(xres, result{q.Truth, xests[i].Estimate})
			cres = append(cres, result{q.Truth, c.EstimateQuery(q.Twig)})
			sres = append(sres, result{q.Truth, sx.EstimateQuery(q.Twig)})
		}
		rows = append(rows, ThreeWayRow{
			Dataset:   ds.name,
			SizeKB:    float64(budget) / 1024,
			ErrX:      scoreResults(xres, 0),
			ErrCST:    scoreResults(cres, o.OutlierCap),
			ErrStatiX: scoreResults(sres, o.OutlierCap),
		})
	}
	return rows
}

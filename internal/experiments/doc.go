// Package experiments regenerates every table and figure of the paper's
// experimental study (Section 6) over the synthetic dataset stand-ins:
//
//	Table 1    — dataset characteristics
//	Table 2    — workload characteristics
//	Figure 9a  — error vs. synopsis size, P workload (XMark, IMDB)
//	Figure 9b  — error vs. synopsis size, P+V workload (XMark, IMDB)
//	Figure 9c  — CST/XSKETCH error ratio, simple paths (all datasets)
//
// plus the two experiments the paper reports in prose (near-zero estimates
// on negative workloads; Twig vs. Structural XSKETCHes on single paths) and
// the design-choice ablations listed in DESIGN.md.
//
// Scale and budgets are configurable: Options.Scale = 1 reproduces the
// paper's dataset sizes; the benchmark harness uses smaller scales so the
// full suite runs in minutes. Budgets sweep multiples of each dataset's
// coarsest-synopsis size, mirroring the paper's x-axes that start at the
// label split graph.
package experiments

// Package statix implements a simplified version of StatiX (Freire,
// Haritsa, Ramanath, Roy, Siméon: "StatiX: Making XML Count", SIGMOD
// 2002), the other twig-selectivity proposal the paper's related work
// discusses ("StatiX captures the underlying path distribution with
// one-dimensional histograms on element ids"). The paper compares only
// against CSTs; this baseline is provided as an extension experiment.
//
// Model (following the published description, without XML-Schema types —
// tags play the role of types, as in the paper's own summary of StatiX):
//
//   - Every element receives a type-local ID: its index among the elements
//     of its tag, in document order. Document order makes the children of
//     one parent contiguous in the child type's ID space.
//   - For every synopsis edge (parentTag -> childTag), a one-dimensional
//     equi-width histogram over the PARENT type's ID space records how
//     many childTag children the parents in each ID bucket have, plus how
//     many of those parents have at least one such child.
//   - Twig estimation walks the query top-down. At a branching node, the
//     per-bucket child averages of the sibling edges are multiplied inside
//     each bucket before summing — bucket-level correlation, the mechanism
//     StatiX uses to beat pure independence. Deeper levels compose through
//     per-edge averages (cross-level correlation is lost, as in the
//     original unless the schema is refined).
//
// Value predicates are ignored (the comparison workload contains none) and
// a descendant step at the query root falls back to the global tag count.
package statix

package statix

import (
	"fmt"

	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// Config controls summary construction.
type Config struct {
	// BucketsPerEdge is the number of ID-space buckets per edge histogram.
	BucketsPerEdge int
	// BucketBytes prices one bucket (two counts), NodeBytes one tag entry,
	// for budget comparisons.
	BucketBytes, NodeBytes int
}

// DefaultConfig uses 8 buckets per edge.
func DefaultConfig() Config { return Config{BucketsPerEdge: 8, BucketBytes: 8, NodeBytes: 6} }

// Summary is a StatiX-lite synopsis.
type Summary struct {
	cfg Config
	// counts[tag] is the number of elements with the tag.
	counts map[string]int
	// rootChildren[tag] is the number of tag children of the document root.
	rootChildren map[string]int
	rootTag      string
	// edges maps (parentTag, childTag) to the edge histogram.
	edges map[[2]string]*edgeHist
}

// edgeHist is the 1-D histogram over the parent type's ID space.
type edgeHist struct {
	parentTotal int // |parentTag|
	// children[b] is the number of childTag children whose parent ID falls
	// in bucket b; parents[b] the number of distinct such parents.
	children []int
	parents  []int
}

func (h *edgeHist) buckets() int { return len(h.children) }

// bucketOf maps a parent ID to its bucket.
func (h *edgeHist) bucketOf(parentID int) int {
	b := parentID * h.buckets() / h.parentTotal
	if b >= h.buckets() {
		b = h.buckets() - 1
	}
	return b
}

// bucketWidth returns the number of parent IDs covered by bucket b.
func (h *edgeHist) bucketWidth(b int) float64 {
	n, k := h.parentTotal, h.buckets()
	lo := b * n / k
	hi := (b + 1) * n / k
	if b == k-1 {
		hi = n
	}
	return float64(hi - lo)
}

// Build constructs the summary for a document.
func Build(d *xmltree.Document, cfg Config) *Summary {
	if cfg.BucketsPerEdge < 1 {
		cfg.BucketsPerEdge = 1
	}
	s := &Summary{
		cfg:          cfg,
		counts:       map[string]int{},
		rootChildren: map[string]int{},
		rootTag:      d.Tag(d.Node(d.Root()).Tag),
		edges:        map[[2]string]*edgeHist{},
	}
	// Type-local IDs in document order.
	ids := make([]int, d.Len())
	d.Walk(func(id xmltree.NodeID, _ int) bool {
		tag := d.Tag(d.Node(id).Tag)
		ids[id] = s.counts[tag]
		s.counts[tag]++
		return true
	})
	for _, c := range d.Node(d.Root()).Children {
		s.rootChildren[d.Tag(d.Node(c).Tag)]++
	}
	// Edge histograms.
	type seenKey struct {
		key      [2]string
		parentID int
	}
	seen := map[seenKey]bool{}
	for i := 0; i < d.Len(); i++ {
		id := xmltree.NodeID(i)
		p := d.Node(id).Parent
		if p == xmltree.NilNode {
			continue
		}
		key := [2]string{d.Tag(d.Node(p).Tag), d.Tag(d.Node(id).Tag)}
		h := s.edges[key]
		if h == nil {
			h = &edgeHist{
				parentTotal: s.counts[key[0]],
				children:    make([]int, cfg.BucketsPerEdge),
				parents:     make([]int, cfg.BucketsPerEdge),
			}
			s.edges[key] = h
		}
		b := h.bucketOf(ids[p])
		h.children[b]++
		sk := seenKey{key, ids[p]}
		if !seen[sk] {
			seen[sk] = true
			h.parents[b]++
		}
	}
	return s
}

// SizeBytes prices the stored summary.
func (s *Summary) SizeBytes() int {
	total := len(s.counts) * s.cfg.NodeBytes
	for _, h := range s.edges {
		total += h.buckets() * s.cfg.BucketBytes
	}
	return total
}

// Coarsen rebuilds every edge histogram with fewer buckets so the summary
// fits the byte budget (StatiX's uniform space allocation, which the paper
// contrasts with XBUILD's skew-directed allocation).
func (s *Summary) Coarsen(budgetBytes int) {
	for s.SizeBytes() > budgetBytes {
		maxB := 0
		for _, h := range s.edges {
			if h.buckets() > maxB {
				maxB = h.buckets()
			}
		}
		if maxB <= 1 {
			return
		}
		for key, h := range s.edges {
			if h.buckets() < 2 {
				continue
			}
			s.edges[key] = h.halve()
		}
	}
}

// halve merges adjacent bucket pairs.
func (h *edgeHist) halve() *edgeHist {
	k := (h.buckets() + 1) / 2
	out := &edgeHist{parentTotal: h.parentTotal, children: make([]int, k), parents: make([]int, k)}
	for b := 0; b < h.buckets(); b++ {
		out.children[b/2] += h.children[b]
		out.parents[b/2] += h.parents[b]
	}
	return out
}

// Count returns the stored element count of a tag.
func (s *Summary) Count(tag string) int { return s.counts[tag] }

// EstimateQuery estimates the binding-tuple count of a twig query with
// simple (child-axis) path expressions. Value and branching predicates are
// ignored; a descendant-axis root step resolves to the global tag count.
func (s *Summary) EstimateQuery(q *twig.Query) float64 {
	if q.Root == nil {
		return 0
	}
	steps := q.Root.Path.Steps
	if len(steps) == 0 {
		return 0
	}
	var base float64
	var parentTag string
	switch {
	case steps[0].Axis == pathexpr.Descendant:
		base = float64(s.counts[steps[0].Label])
	case steps[0].Label == s.rootTag:
		// Absolute-style path naming the root element itself.
		base = 1
	default:
		base = float64(s.rootChildren[steps[0].Label])
	}
	parentTag = steps[0].Label
	// Continue along the remaining root-path steps with per-edge averages.
	for _, st := range steps[1:] {
		base *= s.avgChildren(parentTag, st.Label)
		parentTag = st.Label
	}
	if base == 0 {
		return 0
	}
	return base * s.contrib(q.Root, parentTag)
}

// contrib returns the expected subtree binding tuples per element of the
// twig node's final tag. Sibling branches are combined with bucket-level
// correlation over the shared parent's ID space.
func (s *Summary) contrib(t *twig.Node, parentTag string) float64 {
	if len(t.Children) == 0 {
		return 1
	}
	// Per-branch: the edge histogram for the first step, plus the
	// continuation multiplier for deeper steps and the child's own subtree.
	type branch struct {
		h    *edgeHist
		cont float64
	}
	branches := make([]branch, 0, len(t.Children))
	for _, ct := range t.Children {
		steps := ct.Path.Steps
		if len(steps) == 0 {
			return 0
		}
		h := s.edges[[2]string{parentTag, steps[0].Label}]
		if h == nil {
			return 0
		}
		cont := 1.0
		prev := steps[0].Label
		for _, st := range steps[1:] {
			cont *= s.avgChildren(prev, st.Label)
			prev = st.Label
		}
		cont *= s.contrib(ct, prev)
		if cont == 0 {
			return 0
		}
		branches = append(branches, branch{h, cont})
	}
	// Bucket-level correlation: Σ_b width_b/|parent| * Π_i avg_i,b.
	// All histograms share the parent ID space and bucket boundaries (same
	// bucket count unless coarsening diverged; fall back to independence
	// then).
	k := branches[0].h.buckets()
	uniform := false
	for _, br := range branches[1:] {
		if br.h.buckets() != k {
			uniform = true
			break
		}
	}
	parentTotal := float64(branches[0].h.parentTotal)
	if parentTotal == 0 {
		return 0
	}
	if uniform || len(branches) == 1 {
		// Independence across branches on global averages.
		result := 1.0
		for _, br := range branches {
			total := 0
			for _, c := range br.h.children {
				total += c
			}
			result *= float64(total) / parentTotal * br.cont
		}
		return result
	}
	total := 0.0
	for b := 0; b < k; b++ {
		width := branches[0].h.bucketWidth(b)
		if width == 0 {
			continue
		}
		term := width / parentTotal
		for _, br := range branches {
			term *= float64(br.h.children[b]) / width * br.cont
		}
		total += term
	}
	return total
}

// avgChildren returns the average number of childTag children per
// parentTag element.
func (s *Summary) avgChildren(parentTag, childTag string) float64 {
	h := s.edges[[2]string{parentTag, childTag}]
	if h == nil || h.parentTotal == 0 {
		return 0
	}
	total := 0
	for _, c := range h.children {
		total += c
	}
	return float64(total) / float64(h.parentTotal)
}

// String summarizes the synopsis.
func (s *Summary) String() string {
	return fmt.Sprintf("statix{%d tags, %d edges, %d bytes}", len(s.counts), len(s.edges), s.SizeBytes())
}

package statix

import (
	"math"
	"testing"

	"xsketch/internal/eval"
	"xsketch/internal/metrics"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
)

func TestBuildCounts(t *testing.T) {
	d := xmltree.Bibliography()
	s := Build(d, DefaultConfig())
	if s.Count("author") != 3 || s.Count("paper") != 4 || s.Count("keyword") != 5 {
		t.Fatalf("counts = %v %v %v", s.Count("author"), s.Count("paper"), s.Count("keyword"))
	}
	if s.SizeBytes() <= 0 {
		t.Fatal("zero size")
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestEstimateChains(t *testing.T) {
	d := xmltree.Bibliography()
	s := Build(d, DefaultConfig())
	ev := eval.New(d)
	for _, src := range []string{
		"t0 in author",
		"t0 in author/paper",
		"t0 in author/paper/keyword",
		"t0 in //title",
	} {
		q := twig.MustParse(src)
		got := s.EstimateQuery(q)
		want := float64(ev.Selectivity(q))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("EstimateQuery(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestEstimateZeroForMissing(t *testing.T) {
	d := xmltree.Bibliography()
	s := Build(d, DefaultConfig())
	for _, src := range []string{
		"t0 in magazine",
		"t0 in author, t1 in t0/magazine",
	} {
		if got := s.EstimateQuery(twig.MustParse(src)); got != 0 {
			t.Errorf("EstimateQuery(%q) = %v, want 0", src, got)
		}
	}
}

func TestBucketCorrelation(t *testing.T) {
	// The Figure-4 motivating documents: b and c counts anti-correlated
	// (uniform doc) vs positively correlated (skewed doc). With enough ID
	// buckets, StatiX's bucket-level correlation separates the two, unlike
	// global independence.
	q := twig.MustParse("t0 in a, t1 in t0/b, t2 in t0/c")
	cfg := DefaultConfig()
	cfg.BucketsPerEdge = 2 // one bucket per a element
	u := Build(xmltree.MotivatingUniform(), cfg)
	sk := Build(xmltree.MotivatingSkewed(), cfg)
	eu := u.EstimateQuery(q)
	es := sk.EstimateQuery(q)
	if math.Abs(eu-2000) > 1e-6 {
		t.Fatalf("uniform doc = %v, want 2000", eu)
	}
	if math.Abs(es-10100) > 1e-6 {
		t.Fatalf("skewed doc = %v, want 10100", es)
	}
	// A single bucket collapses to independence: 2 * 55 * 55.
	cfg1 := DefaultConfig()
	cfg1.BucketsPerEdge = 1
	u1 := Build(xmltree.MotivatingUniform(), cfg1)
	if got := u1.EstimateQuery(q); math.Abs(got-6050) > 1e-6 {
		t.Fatalf("1-bucket estimate = %v, want 6050", got)
	}
}

func TestCoarsenReducesSize(t *testing.T) {
	d := xmlgen.SwissProt(xmlgen.Config{Seed: 2, Scale: 0.03})
	s := Build(d, Config{BucketsPerEdge: 32, BucketBytes: 8, NodeBytes: 6})
	full := s.SizeBytes()
	s.Coarsen(full / 4)
	if s.SizeBytes() > full/4 {
		t.Fatalf("Coarsen left %d > %d", s.SizeBytes(), full/4)
	}
	// Still estimates.
	q := twig.MustParse("t0 in entry, t1 in t0/reference, t2 in t1/author")
	if got := s.EstimateQuery(q); got <= 0 {
		t.Fatalf("post-coarsen estimate = %v", got)
	}
	// Coarsening to an impossible budget stops at 1 bucket per edge.
	s.Coarsen(1)
	if s.SizeBytes() <= 0 {
		t.Fatal("degenerate size")
	}
}

func TestAccuracyOnSimpleWorkload(t *testing.T) {
	d := xmlgen.IMDB(xmlgen.Config{Seed: 4, Scale: 0.03})
	s := Build(d, DefaultConfig())
	wcfg := workload.DefaultConfig(workload.KindSimple)
	wcfg.NumQueries = 50
	w := workload.Generate(d, wcfg)
	results := make([]metrics.Result, len(w.Queries))
	for i, q := range w.Queries {
		results[i] = metrics.Result{Truth: q.Truth, Estimate: s.EstimateQuery(q.Twig)}
	}
	sum := metrics.Evaluate(results, 10)
	t.Logf("statix on imdb: %s", sum)
	if sum.AvgError > 2 {
		t.Fatalf("statix error %.0f%% implausible", sum.AvgError*100)
	}
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSanityBound(t *testing.T) {
	truths := make([]int64, 100)
	for i := range truths {
		truths[i] = int64(i + 1) // 1..100
	}
	s := SanityBound(truths, 0.1)
	if s != 11 {
		t.Fatalf("SanityBound = %v, want 11", s)
	}
	if got := SanityBound(nil, 0.1); got != 1 {
		t.Fatalf("empty SanityBound = %v", got)
	}
	if got := SanityBound([]int64{0, 0, 0}, 0.1); got != 1 {
		t.Fatalf("zero-count SanityBound = %v, want clamp to 1", got)
	}
	if got := SanityBound([]int64{5}, 1); got != 5 {
		t.Fatalf("q=1 SanityBound = %v", got)
	}
}

func TestAbsRelError(t *testing.T) {
	cases := []struct {
		est    float64
		truth  int64
		sanity float64
		want   float64
	}{
		{100, 100, 10, 0},
		{150, 100, 10, 0.5},
		{50, 100, 10, 0.5},
		{5, 0, 10, 0.5},      // negative query: sanity bound in denominator
		{0, 2, 10, 0.2},      // low-count query damped by sanity bound
		{200, 100, 200, 0.5}, // sanity bound larger than truth
	}
	for _, c := range cases {
		got := AbsRelError(c.est, c.truth, c.sanity)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AbsRelError(%v, %d, %v) = %v, want %v", c.est, c.truth, c.sanity, got, c.want)
		}
	}
}

func TestEvaluate(t *testing.T) {
	results := []Result{
		{Truth: 100, Estimate: 100},
		{Truth: 100, Estimate: 150},
		{Truth: 100, Estimate: 50},
		{Truth: 100, Estimate: 200},
	}
	s := Evaluate(results, 0)
	if s.Count != 4 || s.Excluded != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.AvgError-0.5) > 1e-9 {
		t.Fatalf("AvgError = %v, want 0.5", s.AvgError)
	}
	if math.Abs(s.MaxError-1.0) > 1e-9 {
		t.Fatalf("MaxError = %v, want 1.0", s.MaxError)
	}
}

func TestEvaluateOutlierCap(t *testing.T) {
	results := []Result{
		{Truth: 100, Estimate: 100},
		{Truth: 100, Estimate: 100_000}, // 99900% error, excluded at cap 10
	}
	s := Evaluate(results, 10)
	if s.Excluded != 1 || s.Count != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.AvgError != 0 {
		t.Fatalf("AvgError = %v", s.AvgError)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	s := Evaluate(nil, 0)
	if s.Count != 0 || s.AvgError != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestErrorNonNegativeProperty(t *testing.T) {
	prop := func(est float64, truth int64, sanity float64) bool {
		if math.IsNaN(est) || math.IsInf(est, 0) {
			return true
		}
		e := AbsRelError(est, truth, math.Abs(sanity))
		return e >= 0 && !math.IsNaN(e)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExactEstimateZeroErrorProperty(t *testing.T) {
	prop := func(truth int64, sanity float64) bool {
		e := AbsRelError(float64(truth), truth, math.Abs(sanity))
		return e == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

package metrics

import (
	"fmt"
	"math"
	"sort"
)

// SanityBound returns the q-quantile (0 < q <= 1) of the true counts; the
// paper uses q = 0.1 ("90% of the queries have a true count greater than
// s"). The bound is at least 1 so the error is always defined.
func SanityBound(truths []int64, q float64) float64 {
	if len(truths) == 0 {
		return 1
	}
	sorted := make([]int64, len(truths))
	copy(sorted, truths)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	s := float64(sorted[idx])
	if s < 1 {
		s = 1
	}
	return s
}

// AbsRelError returns |est - truth| / max(sanity, truth).
func AbsRelError(est float64, truth int64, sanity float64) float64 {
	denom := math.Max(sanity, float64(truth))
	if denom <= 0 {
		denom = 1
	}
	return math.Abs(est-float64(truth)) / denom
}

// Result couples a query's true count with an estimate.
type Result struct {
	Truth    int64
	Estimate float64
}

// Summary aggregates workload error statistics.
type Summary struct {
	// Count is the number of scored queries.
	Count int
	// Sanity is the sanity bound used.
	Sanity float64
	// AvgError is the average absolute relative error (the paper's metric).
	AvgError float64
	// MaxError is the largest individual error.
	MaxError float64
	// Excluded is the number of results dropped by an outlier threshold
	// (the paper excludes CST outliers above 1000%).
	Excluded int
}

// Evaluate scores a batch of results with the paper's metric. The sanity
// bound is the 10th percentile of the true counts. outlierCap, when
// positive, excludes individual errors above the cap from the average (the
// treatment the paper applies to CST outliers); excluded results are
// counted in Summary.Excluded.
func Evaluate(results []Result, outlierCap float64) Summary {
	truths := make([]int64, len(results))
	for i, r := range results {
		truths[i] = r.Truth
	}
	s := Summary{Sanity: SanityBound(truths, 0.1)}
	total := 0.0
	for _, r := range results {
		e := AbsRelError(r.Estimate, r.Truth, s.Sanity)
		if outlierCap > 0 && e > outlierCap {
			s.Excluded++
			continue
		}
		total += e
		if e > s.MaxError {
			s.MaxError = e
		}
		s.Count++
	}
	if s.Count > 0 {
		s.AvgError = total / float64(s.Count)
	}
	return s
}

// String renders the summary for diagnostics.
func (s Summary) String() string {
	return fmt.Sprintf("avg %.1f%% over %d queries (sanity %.0f, max %.0f%%, %d excluded)",
		s.AvgError*100, s.Count, s.Sanity, s.MaxError*100, s.Excluded)
}

package metrics_test

import (
	"fmt"

	"xsketch/internal/metrics"
)

// ExampleEvaluate scores a batch of estimates with the paper's
// sanity-bounded average absolute relative error.
func ExampleEvaluate() {
	results := []metrics.Result{
		{Truth: 100, Estimate: 90},  // 10% error
		{Truth: 200, Estimate: 260}, // 30% error
		{Truth: 0, Estimate: 5},     // negative query, scored against the sanity bound
	}
	s := metrics.Evaluate(results, 0)
	fmt.Printf("avg error %.1f%% over %d queries\n", s.AvgError*100, s.Count)
	// Output:
	// avg error 180.0% over 3 queries
}

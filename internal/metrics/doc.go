// Package metrics implements the paper's evaluation metric (Section 6.1):
// the average absolute relative error with a sanity bound. For a query with
// true count c and estimate r the error is |r - c| / max(s, c), where the
// sanity bound s is the 10th percentile of the true counts of the workload
// — avoiding artificially high percentages on low-count twigs and defining
// the metric for negative queries (c = 0).
package metrics

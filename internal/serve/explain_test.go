package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"xsketch/internal/twig"
)

func TestEstimateExplain(t *testing.T) {
	sk := newTestSketch(t)
	want := sk.EstimateQuery(twig.MustParse(testQuery))
	_, ts := newTestServer(t, sk, nil)

	resp, body := postJSON(t, ts.URL+"/estimate?explain=true",
		fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var er estimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if er.Estimate != want {
		t.Errorf("traced estimate %v != untraced %v", er.Estimate, want)
	}
	ex := er.Explanation
	if ex == nil {
		t.Fatal("explanation missing from ?explain=true response")
	}
	if ex.Version != 2 {
		t.Errorf("explanation version %d, want 2", ex.Version)
	}
	if ex.Estimate != er.Estimate {
		t.Errorf("explanation estimate %v != response estimate %v", ex.Estimate, er.Estimate)
	}
	if len(ex.Embeddings) == 0 {
		t.Fatal("explanation has no embeddings")
	}
	sum := 0.0
	for _, em := range ex.Embeddings {
		if em.Root == nil {
			t.Fatal("embedding trace without a root node")
		}
		sum += em.Estimate
	}
	if sum != ex.Estimate {
		t.Errorf("embedding estimates sum %v != total %v", sum, ex.Estimate)
	}
}

func TestEstimateExplainOmittedByDefault(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, body := postJSON(t, ts.URL+"/estimate",
		fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if _, ok := raw["explanation"]; ok {
		t.Error("explanation present without ?explain=true")
	}
}

func TestBatchExplainPerItem(t *testing.T) {
	sk := newTestSketch(t)
	_, ts := newTestServer(t, sk, nil)
	const second = "t0 in movie, t1 in t0/year"
	wantFirst := sk.EstimateQuery(twig.MustParse(testQuery))
	wantSecond := sk.EstimateQuery(twig.MustParse(second))

	resp, body := postJSON(t, ts.URL+"/estimate/batch",
		fmt.Sprintf(`{"queries":[%q,%q],"explain":[true,false]}`, testQuery, second))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if br.Count != 2 || len(br.Results) != 2 {
		t.Fatalf("count %d, results %d, want 2/2", br.Count, len(br.Results))
	}
	if br.Results[0].Estimate != wantFirst || br.Results[1].Estimate != wantSecond {
		t.Errorf("estimates (%v, %v), want (%v, %v)",
			br.Results[0].Estimate, br.Results[1].Estimate, wantFirst, wantSecond)
	}
	if br.Results[0].Explanation == nil {
		t.Error("flagged item missing explanation")
	} else if br.Results[0].Explanation.Estimate != br.Results[0].Estimate {
		t.Errorf("explanation estimate %v != item estimate %v",
			br.Results[0].Explanation.Estimate, br.Results[0].Estimate)
	}
	if br.Results[1].Explanation != nil {
		t.Error("unflagged item carries an explanation")
	}
}

func TestBatchExplainLengthMismatch(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, body := postJSON(t, ts.URL+"/estimate/batch",
		fmt.Sprintf(`{"queries":[%q,%q],"explain":[true]}`, testQuery, testQuery))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
}

// TestEstimateExplainConcurrent hammers the traced path from many
// goroutines; under -race this exercises recorder isolation across
// concurrent requests sharing one sketch.
func TestEstimateExplainConcurrent(t *testing.T) {
	sk := newTestSketch(t)
	want := sk.EstimateQuery(twig.MustParse(testQuery))
	_, ts := newTestServer(t, sk, nil)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// postJSON fails the test via t.Fatalf, which must not run on
			// this goroutine; do the request by hand and report over errs.
			resp, err := http.Post(ts.URL+"/estimate?explain=true", "application/json",
				strings.NewReader(fmt.Sprintf(`{"query":%q}`, testQuery)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var er estimateResponse
			if derr := json.NewDecoder(resp.Body).Decode(&er); derr != nil {
				errs <- derr
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if er.Estimate != want || er.Explanation == nil || er.Explanation.Estimate != want {
				errs <- fmt.Errorf("estimate %v (explanation %v), want %v",
					er.Estimate, er.Explanation, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchExplainErrorIsolation asserts one explain item's failure is
// reported on that item alone: the batch still answers 200, estimates for
// every other item are present in order, and only the failed slot carries
// an error.
func TestBatchExplainErrorIsolation(t *testing.T) {
	sk := newTestSketch(t)
	s, ts := newTestServer(t, sk, nil)
	const second = "t0 in movie, t1 in t0/year"
	wantFirst := sk.EstimateQuery(twig.MustParse(testQuery))
	wantThird := sk.EstimateQuery(twig.MustParse(second))
	s.testHookExplainItem = func(i int) error {
		if i == 1 {
			return fmt.Errorf("injected explain failure")
		}
		return nil
	}

	resp, body := postJSON(t, ts.URL+"/estimate/batch",
		fmt.Sprintf(`{"queries":[%q,%q,%q],"explain":[true,true,false]}`, testQuery, testQuery, second))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 despite item failure; body %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if br.Count != 3 || len(br.Results) != 3 {
		t.Fatalf("count %d, results %d, want 3/3", br.Count, len(br.Results))
	}
	if br.Results[0].Error != "" || br.Results[0].Estimate != wantFirst || br.Results[0].Explanation == nil {
		t.Errorf("item 0 = %+v, want clean explained estimate %v", br.Results[0], wantFirst)
	}
	if br.Results[1].Error == "" || !strings.Contains(br.Results[1].Error, "injected explain failure") {
		t.Errorf("item 1 error = %q, want the injected failure", br.Results[1].Error)
	}
	if br.Results[1].Explanation != nil {
		t.Error("failed item carries an explanation")
	}
	if br.Results[2].Error != "" || br.Results[2].Estimate != wantThird {
		t.Errorf("item 2 = %+v, want untouched plain estimate %v", br.Results[2], wantThird)
	}
}

// TestServePlannedBitIdenticalToInterpreted asserts flipping the planner
// off does not change a single served byte-value: both configurations must
// answer the interpreter's floats.
func TestServePlannedBitIdenticalToInterpreted(t *testing.T) {
	sk := newTestSketch(t)
	want := sk.EstimateQueryResult(twig.MustParse(testQuery))
	for _, disable := range []bool{false, true} {
		_, ts := newTestServer(t, sk, func(c *Config) { c.DisablePlanner = disable })
		resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"query":%q}`, testQuery))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("disable=%v: status %d, body %s", disable, resp.StatusCode, body)
		}
		var er estimateResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if math.Float64bits(er.Estimate) != math.Float64bits(want.Estimate) {
			t.Errorf("disable=%v: served %v != interpreted %v", disable, er.Estimate, want.Estimate)
		}
	}
	if st := sk.PlanCacheStats(); st.Misses == 0 {
		t.Error("planner-enabled request did not touch the plan cache")
	}
}

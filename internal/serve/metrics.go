package serve

import (
	"runtime"
	"time"

	"xsketch/internal/obs"
	"xsketch/internal/trace"
)

// metrics bundles the server's instrument handles. Every series rendered
// at /metrics is declared here and documented in SERVING.md's catalog; the
// metrics-endpoint test cross-checks the documented names.
type metrics struct {
	requests   *obs.CounterVec // xserve_requests_total{path,code}
	inFlight   *obs.Gauge      // xserve_in_flight_requests
	shed       *obs.Counter    // xserve_requests_shed_total
	timeouts   *obs.Counter    // xserve_request_timeouts_total
	estLatency *obs.Histogram  // xserve_estimate_latency_seconds
	batchLat   *obs.Histogram  // xserve_batch_latency_seconds
	batchSize  *obs.Counter    // xserve_batch_queries_total
	truncated  *obs.CounterVec // xserve_sketch_truncated_total{sketch}

	batchItemErrs *obs.Counter // xserve_batch_item_errors_total

	reloadErrs *obs.Counter // xserve_reload_errors_total

	traced      *obs.Counter      // xserve_traced_requests_total
	stageLat    *obs.HistogramVec // xserve_estimate_stage_latency_seconds{stage}
	traceEvents *obs.CounterVec   // xserve_trace_events_total{kind}
}

// newMetrics registers every family on the server's registry. Per-sketch
// cache counters are func-backed: each scrape snapshots the sketch's live
// EstimatorStats through its race-safe cache view, so the server never
// owns (or lags) the counters it reports.
func newMetrics(reg *obs.Registry, s *Server) *metrics {
	m := &metrics{
		requests: reg.NewCounterVec("xserve_requests_total",
			"HTTP requests by path and status code.", "path", "code"),
		inFlight: reg.NewGauge("xserve_in_flight_requests",
			"Estimate requests currently admitted (holding a concurrency slot)."),
		shed: reg.NewCounter("xserve_requests_shed_total",
			"Estimate requests rejected with 429 at the concurrency cap."),
		timeouts: reg.NewCounter("xserve_request_timeouts_total",
			"Estimate requests cancelled by the per-request timeout (504)."),
		estLatency: reg.NewHistogram("xserve_estimate_latency_seconds",
			"Latency of successful single-query estimations.", nil),
		batchLat: reg.NewHistogram("xserve_batch_latency_seconds",
			"Latency of successful batch estimations.", nil),
		batchSize: reg.NewCounter("xserve_batch_queries_total",
			"Queries received across batch requests."),
		truncated: reg.NewCounterVec("xserve_sketch_truncated_total",
			"Estimates whose embedding enumeration hit MaxEmbeddings.", "sketch"),
		batchItemErrs: reg.NewCounter("xserve_batch_item_errors_total",
			"Batch items answered with a per-item error (the batch itself succeeded)."),
		reloadErrs: reg.NewCounter("xserve_reload_errors_total",
			"Failed /admin/reload attempts (the served sketch stayed untouched)."),
		traced: reg.NewCounter("xserve_traced_requests_total",
			"Estimates served with explain tracing enabled."),
		stageLat: reg.NewHistogramVec("xserve_estimate_stage_latency_seconds",
			"Per-stage latency of traced estimations (stages nest: embed includes expand, treeparse includes histogram_lookup).",
			nil, "stage"),
		traceEvents: reg.NewCounterVec("xserve_trace_events_total",
			"Trace events recorded by traced estimations, by event kind.", "kind"),
	}

	quant := reg.NewFuncFamily("xserve_estimate_latency_quantile_seconds",
		"Estimate-latency quantiles interpolated from the histogram buckets.", "gauge")
	for _, q := range []struct {
		label string
		v     float64
	}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
		q := q
		quant.Attach(func() float64 { return m.estLatency.Quantile(q.v) }, "quantile", q.label)
	}

	hits := reg.NewFuncFamily("xserve_sketch_cache_hits_total",
		"Estimator-cache hits per served sketch (lifetime of the sketch).", "counter")
	misses := reg.NewFuncFamily("xserve_sketch_cache_misses_total",
		"Estimator-cache misses per served sketch.", "counter")
	evictions := reg.NewFuncFamily("xserve_sketch_cache_evictions_total",
		"Estimator-cache entries dropped by invalidation per served sketch.", "counter")
	ratio := reg.NewFuncFamily("xserve_sketch_cache_hit_ratio",
		"Estimator-cache hits / lookups per served sketch.", "gauge")
	size := reg.NewFuncFamily("xserve_sketch_size_bytes",
		"Stored synopsis size per served sketch.", "gauge")
	planHits := reg.NewFuncFamily("xserve_sketch_plan_cache_hits_total",
		"Compiled-plan cache hits per served sketch.", "counter")
	planMisses := reg.NewFuncFamily("xserve_sketch_plan_cache_misses_total",
		"Compiled-plan cache misses (compilations) per served sketch.", "counter")
	planEvictions := reg.NewFuncFamily("xserve_sketch_plan_cache_evictions_total",
		"Compiled plans dropped for capacity or staleness per served sketch.", "counter")
	planSize := reg.NewFuncFamily("xserve_sketch_plan_cache_size",
		"Compiled plans currently cached per served sketch.", "gauge")
	swaps := reg.NewFuncFamily("xserve_sketch_swaps_total",
		"Hot swaps applied per served sketch (/admin/reload, SIGHUP, SwapSketch).", "counter")
	// Every closure loads the entry's current state, so a scrape right
	// after a hot swap reports the new synopsis — and the swap counter is
	// pre-created per name, so its zero is visible before the first swap.
	for _, name := range s.names {
		e := s.entries[name]
		hits.Attach(func() float64 { return float64(e.state.Load().view.Snapshot().Hits) }, "sketch", name)
		misses.Attach(func() float64 { return float64(e.state.Load().view.Snapshot().Misses) }, "sketch", name)
		evictions.Attach(func() float64 { return float64(e.state.Load().view.Snapshot().Evictions) }, "sketch", name)
		ratio.Attach(func() float64 { return e.state.Load().view.Snapshot().HitRate() }, "sketch", name)
		size.Attach(func() float64 { return float64(e.state.Load().sizeBytes) }, "sketch", name)
		planHits.Attach(func() float64 { return float64(e.state.Load().sk.PlanCacheStats().Hits) }, "sketch", name)
		planMisses.Attach(func() float64 { return float64(e.state.Load().sk.PlanCacheStats().Misses) }, "sketch", name)
		planEvictions.Attach(func() float64 { return float64(e.state.Load().sk.PlanCacheStats().Evictions) }, "sketch", name)
		planSize.Attach(func() float64 { return float64(e.state.Load().sk.PlanCacheStats().Size) }, "sketch", name)
		swaps.Attach(func() float64 { return float64(e.swaps.Load()) }, "sketch", name)
	}

	// Pre-create one stage series per pipeline stage so the scrape catalog
	// is complete from the first scrape, not only after the first traced
	// request.
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		m.stageLat.With(st.String())
	}

	obs.RegisterBuildInfo(reg)
	reg.NewFuncFamily("xserve_goroutines",
		"Goroutines in the serving process.", "gauge").
		Attach(func() float64 { return float64(runtime.NumGoroutine()) })
	reg.NewFuncFamily("xserve_uptime_seconds",
		"Seconds since the server started.", "gauge").
		Attach(func() float64 { return time.Since(s.start).Seconds() })

	return m
}

// observeTrace feeds one finished recorder into the trace metrics:
// per-stage latencies and event-kind counters. A nil recorder (tracing
// disabled) is a no-op.
func (m *metrics) observeTrace(rec *trace.Recorder) {
	if rec == nil {
		return
	}
	m.traced.Inc()
	secs := rec.StageSeconds()
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		m.stageLat.With(st.String()).Observe(secs[st])
	}
	for _, ec := range rec.EventCounts() {
		m.traceEvents.With(ec.Kind).Add(uint64(ec.Count))
	}
}

package serve

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"xsketch/internal/accuracy"
	"xsketch/internal/obs"
	core "xsketch/internal/xsketch"
)

// Config tunes the service's hardening knobs. Zero values select the
// defaults noted on each field.
type Config struct {
	// MaxConcurrent bounds the number of estimate requests (single and
	// batch combined) admitted at once; excess requests are shed with 429.
	// Default: 2 × GOMAXPROCS.
	MaxConcurrent int
	// RequestTimeout bounds one estimate request; expiry cancels the
	// estimation context and answers 504. Default: 10s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a request body; larger bodies answer 413.
	// Default: 1 MiB.
	MaxBodyBytes int64
	// MaxBatchQueries bounds the query count of one batch request.
	// Default: 4096.
	MaxBatchQueries int
	// BatchWorkers is the worker count handed to EstimateBatchContext.
	// Default: GOMAXPROCS.
	BatchWorkers int
	// DisablePlanner routes estimates through the interpreted path instead
	// of the compiled-plan cache. Results are bit-identical either way; the
	// planner is only a performance lever. Default: planner on.
	DisablePlanner bool
	// EnablePprof mounts net/http/pprof under /debug/pprof.
	EnablePprof bool
	// CatalogDir is the sketch-catalog directory backing hot reloads: a
	// POST /admin/reload (or a SIGHUP in cmd/xserve) without an explicit
	// path re-opens the named entry from here. Empty disables the
	// directory default; reloads then require a path in the request.
	CatalogDir string
	// Logger receives one structured JSON line per request; nil disables
	// logging.
	Logger *obs.Logger
	// Audit configures the accuracy auditor: sampled estimates are
	// journaled to a JSONL log and, for sketches with a live source
	// document, ground-truthed in the background (see internal/accuracy).
	// The Registry, Logger and Sketches fields are filled in by New. nil
	// disables auditing entirely; the estimate path then pays a single
	// nil check.
	Audit *accuracy.Config
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 4096
	}
	return c
}

// A Sketch is one synopsis offered by the service.
type Sketch struct {
	// Name addresses the sketch in requests ({"sketch": "imdb"}).
	Name string
	// Source describes where the synopsis came from, for /sketches
	// listings and logs (e.g. "dataset:imdb scale=0.05 budget=16384").
	Source string
	// Sketch is the loaded synopsis. The server only estimates against it
	// — never mutates — so one sketch may even be shared across servers.
	Sketch *core.Sketch
}

// sketchState is one immutable generation of a served synopsis: the
// sketch, its cache view, and the size figures reported by /sketches and
// the per-sketch gauges. A hot swap publishes a brand-new state; nothing
// in an old state is ever mutated, so a request that loaded the pointer
// keeps a fully consistent synopsis until it finishes.
type sketchState struct {
	source    string
	sk        *core.Sketch
	view      core.EstimatorCacheView
	sizeBytes int
	nodes     int
	edges     int
}

func newSketchState(source string, sk *core.Sketch) *sketchState {
	return &sketchState{
		source:    source,
		sk:        sk,
		view:      sk.EstimatorCache(),
		sizeBytes: sk.SizeBytes(),
		nodes:     sk.Syn.NumNodes(),
		edges:     sk.Syn.NumEdges(),
	}
}

// entry is one served sketch name. The name set is fixed at New; what a
// name serves is the atomically swappable state (the same
// pointer-generation idiom as the estimator and plan caches): handlers
// load the pointer once per request, SwapSketch stores a new one, and
// in-flight estimates finish on the state they loaded — no request ever
// observes a half-loaded synopsis.
type entry struct {
	name  string
	state atomic.Pointer[sketchState]
	swaps atomic.Uint64
}

// Server is the xserve HTTP service: a fixed set of sketches, the
// observability registry, and the hardened handler chain. Create with New,
// expose via Handler, and flip SetDraining before shutting the listener
// down gracefully.
type Server struct {
	cfg      Config
	log      *obs.Logger
	reg      *obs.Registry
	entries  map[string]*entry
	names    []string // sorted
	sem      chan struct{}
	draining atomic.Bool
	start    time.Time
	mux      *http.ServeMux
	m        *metrics
	aud      *accuracy.Auditor

	// testHookEstimate, when set, runs inside an estimate handler after
	// admission and before estimation — test scaffolding for the drain and
	// shedding paths.
	testHookEstimate func()
	// testHookExplainItem, when set, can inject a per-item failure into the
	// batch explain loop — test scaffolding for error isolation.
	testHookExplainItem func(i int) error
}

// New builds a server over the given sketches. At least one sketch is
// required; names must be unique and non-empty.
func New(cfg Config, sketches []Sketch) (*Server, error) {
	if len(sketches) == 0 {
		return nil, fmt.Errorf("serve: no sketches to serve")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		reg:     obs.NewRegistry(),
		entries: make(map[string]*entry, len(sketches)),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		start:   time.Now(),
	}
	for _, sk := range sketches {
		if sk.Name == "" {
			return nil, fmt.Errorf("serve: sketch with empty name")
		}
		if sk.Sketch == nil {
			return nil, fmt.Errorf("serve: sketch %q is nil", sk.Name)
		}
		if _, dup := s.entries[sk.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate sketch name %q", sk.Name)
		}
		e := &entry{name: sk.Name}
		e.state.Store(newSketchState(sk.Source, sk.Sketch))
		s.entries[sk.Name] = e
		s.names = append(s.names, sk.Name)
	}
	sort.Strings(s.names)
	s.m = newMetrics(s.reg, s)
	if cfg.Audit != nil {
		ac := *cfg.Audit
		ac.Registry = s.reg
		ac.Logger = cfg.Logger
		ac.Sketches = s.names
		aud, err := accuracy.New(ac)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.aud = aud
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /estimate", s.instrument("/estimate", s.handleEstimate))
	s.mux.HandleFunc("POST /estimate/batch", s.instrument("/estimate/batch", s.handleEstimateBatch))
	s.mux.HandleFunc("GET /sketches", s.instrument("/sketches", s.handleSketches))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /admin/reload", s.instrument("/admin/reload", s.handleReload))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the service's root handler, ready for an http.Server or
// an httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Names returns the served sketch names, sorted.
func (s *Server) Names() []string { return append([]string(nil), s.names...) }

// SetDraining marks the server as draining: /healthz answers 503 so load
// balancers stop routing here, while in-flight and already-accepted
// requests still complete. Call it right before http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether SetDraining(true) was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Auditor returns the accuracy auditor, or nil when auditing is disabled.
// Owners should Close it after draining the HTTP server so queued audit
// records are flushed to the log.
func (s *Server) Auditor() *accuracy.Auditor { return s.aud }

// lookup resolves a request's sketch name; an empty name selects the only
// sketch when exactly one is served.
func (s *Server) lookup(name string) (*entry, error) {
	if name == "" {
		if len(s.names) == 1 {
			return s.entries[s.names[0]], nil
		}
		return nil, fmt.Errorf("multiple sketches served, name one of %v", s.names)
	}
	e, ok := s.entries[name]
	if !ok {
		return nil, fmt.Errorf("unknown sketch %q (serving %v)", name, s.names)
	}
	return e, nil
}

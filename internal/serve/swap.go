package serve

import (
	"fmt"
	"net/http"

	"xsketch/internal/catalog"
	core "xsketch/internal/xsketch"
)

// SwapSketch atomically replaces the synopsis served under name. The name
// must already be served — the route set is fixed at New; a swap changes
// what a name answers with, never which names exist. In-flight estimates
// that loaded the previous state finish on it untouched (its estimator and
// plan caches retire with it); requests admitted after the store see only
// the new synopsis. Safe for concurrent use with request handling.
func (s *Server) SwapSketch(name, source string, sk *core.Sketch) error {
	if sk == nil {
		return fmt.Errorf("serve: swap of %q with nil sketch", name)
	}
	e, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("serve: unknown sketch %q (serving %v)", name, s.names)
	}
	e.state.Store(newSketchState(source, sk))
	e.swaps.Add(1)
	s.log.Info("sketch swapped",
		"sketch", name,
		"source", source,
		"nodes", sk.Syn.NumNodes(),
		"edges", sk.Syn.NumEdges(),
		"size_bytes", sk.SizeBytes(),
		"swaps", e.swaps.Load(),
	)
	return nil
}

// Swaps reports how many hot swaps the named sketch has received (0 for
// unknown names).
func (s *Server) Swaps(name string) uint64 {
	if e, ok := s.entries[name]; ok {
		return e.swaps.Load()
	}
	return 0
}

// ReloadFromCatalog re-opens one served name from a catalog file and swaps
// it in: from path when given, otherwise from the configured catalog
// directory. The decode happens entirely off to the side — on any error
// the served state is untouched.
func (s *Server) ReloadFromCatalog(name, path string) (catalog.Info, error) {
	if _, ok := s.entries[name]; !ok {
		return catalog.Info{}, fmt.Errorf("serve: unknown sketch %q (serving %v)", name, s.names)
	}
	var (
		sk   *core.Sketch
		info catalog.Info
		err  error
	)
	if path != "" {
		sk, info, err = catalog.Open(path)
	} else if s.cfg.CatalogDir != "" {
		sk, info, err = catalog.OpenByName(s.cfg.CatalogDir, name)
	} else {
		return catalog.Info{}, fmt.Errorf("serve: no reload path given and no catalog directory configured")
	}
	if err != nil {
		return catalog.Info{}, err
	}
	if err := s.SwapSketch(name, "catalog:"+info.Path, sk); err != nil {
		return catalog.Info{}, err
	}
	return info, nil
}

// reloadRequest is the body of POST /admin/reload. A body of `{}` reloads
// the only served sketch from the catalog directory.
type reloadRequest struct {
	// Sketch names the served entry to swap; optional when the server
	// serves exactly one.
	Sketch string `json:"sketch"`
	// Path is an explicit catalog file to load. Empty means the entry of
	// the same name in the server's catalog directory.
	Path string `json:"path"`
}

// reloadResponse is the body of a successful POST /admin/reload.
type reloadResponse struct {
	Sketch    string `json:"sketch"`
	Path      string `json:"path"`
	Nodes     int    `json:"nodes"`
	Edges     int    `json:"edges"`
	SizeBytes int64  `json:"size_bytes"`
	Swaps     uint64 `json:"swaps"`
	TraceID   string `json:"trace_id"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	tid := traceID(r)
	var req reloadRequest
	if !s.decodeBody(w, r, tid, &req) {
		return
	}
	name := req.Sketch
	if name == "" {
		if len(s.names) != 1 {
			s.writeError(w, http.StatusBadRequest, tid,
				fmt.Errorf("multiple sketches served, name one of %v", s.names))
			return
		}
		name = s.names[0]
	}
	info, err := s.ReloadFromCatalog(name, req.Path)
	if err != nil {
		s.m.reloadErrs.Inc()
		code := http.StatusUnprocessableEntity
		if _, ok := s.entries[name]; !ok {
			code = http.StatusNotFound
		}
		s.writeError(w, code, tid, err)
		return
	}
	s.writeJSON(w, http.StatusOK, reloadResponse{
		Sketch:    name,
		Path:      info.Path,
		Nodes:     info.Nodes,
		Edges:     info.Edges,
		SizeBytes: info.ModelBytes,
		Swaps:     s.Swaps(name),
		TraceID:   tid,
	})
}

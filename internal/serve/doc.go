// Package serve implements the xserve estimation service: a resident HTTP
// server (stdlib net/http only) that loads one or more built Twig XSKETCH
// synopses at startup and answers selectivity-estimation requests over
// them. See SERVING.md for the endpoint and metrics reference and
// DESIGN.md §9 for the architecture.
//
// Endpoints: POST /estimate (one twig query), POST /estimate/batch (a
// workload fanned into the xsketch batch worker pool), GET /sketches
// (loaded synopses with estimator-cache stats), GET /healthz, GET /metrics
// (Prometheus text format via internal/obs), and optionally /debug/pprof.
//
// The serving path is hardened the way a production estimator sidecar
// must be: request bodies are size-limited, every estimate runs under a
// per-request timeout whose context cancellation propagates into the
// estimation engine (Sketch.EstimateQueryContext), and admission is a
// fixed-size semaphore that sheds excess load with 429 instead of queuing
// unboundedly. Because estimation is read-only and the per-sketch memo
// cache stores only pure sub-results, concurrent serving returns values
// bit-identical to sequential Sketch.EstimateQuery calls.
package serve

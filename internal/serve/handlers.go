package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"xsketch/internal/trace"
	"xsketch/internal/twig"
	core "xsketch/internal/xsketch"
)

// estimateRequest is the body of POST /estimate.
type estimateRequest struct {
	// Sketch names the synopsis to estimate against; optional when the
	// server serves exactly one.
	Sketch string `json:"sketch"`
	// Query is a twig query in the paper's for-clause notation.
	Query string `json:"query"`
}

// estimateResponse is the body of a successful POST /estimate.
type estimateResponse struct {
	Sketch         string  `json:"sketch"`
	Query          string  `json:"query"`
	Estimate       float64 `json:"estimate"`
	Truncated      bool    `json:"truncated"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TraceID        string  `json:"trace_id"`
	// Explanation is the structured estimation trace, present only when
	// the request asked for ?explain=true.
	Explanation *trace.Trace `json:"explanation,omitempty"`
}

// batchRequest is the body of POST /estimate/batch.
type batchRequest struct {
	Sketch  string   `json:"sketch"`
	Queries []string `json:"queries"`
	// Workers overrides the server's batch worker count for this request
	// (clamped to the server setting as an upper bound; 0 keeps it).
	Workers int `json:"workers"`
	// Explain, when non-empty, must parallel Queries: items flagged true
	// are estimated with tracing and carry an explanation in their result.
	Explain []bool `json:"explain"`
}

// batchResponse is the body of a successful POST /estimate/batch.
type batchResponse struct {
	Sketch         string        `json:"sketch"`
	Count          int           `json:"count"`
	Results        []batchResult `json:"results"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	TraceID        string        `json:"trace_id"`
}

// batchResult is one query's outcome inside a batch response, in request
// order.
type batchResult struct {
	Estimate  float64 `json:"estimate"`
	Truncated bool    `json:"truncated"`
	// Explanation is present only for items whose explain flag was true.
	Explanation *trace.Trace `json:"explanation,omitempty"`
	// Error reports a per-item explain failure. The item's estimate fields
	// are zero and must be ignored; the rest of the batch is unaffected.
	Error string `json:"error,omitempty"`
}

// errorResponse is the body of every non-2xx JSON answer.
type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id"`
}

// explainRequested reads the ?explain= query parameter (accepting the
// strconv.ParseBool spellings; absent or malformed means false).
func explainRequested(r *http.Request) bool {
	v, err := strconv.ParseBool(r.URL.Query().Get("explain"))
	return err == nil && v
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tid := traceID(r)
	var req estimateRequest
	if !s.decodeBody(w, r, tid, &req) {
		return
	}
	e, err := s.lookup(req.Sketch)
	if err != nil {
		s.writeError(w, http.StatusNotFound, tid, err)
		return
	}
	// One atomic load pins this request to a single synopsis generation:
	// a concurrent hot swap never changes the sketch mid-estimate.
	st := e.state.Load()
	q, err := twig.Parse(req.Query)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, tid, fmt.Errorf("malformed twig query: %w", err))
		return
	}
	var rec *trace.Recorder
	if explainRequested(r) {
		rec = trace.NewRecorder(trace.Options{})
	}
	if !s.admit(w, tid) {
		return
	}
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	start := time.Now()
	var res core.EstimateResult
	if rec == nil && !s.cfg.DisablePlanner {
		// Hot path: serve from the sketch's compiled-plan cache. The plan
		// is bit-identical to the interpreter, so flipping the planner on
		// or off never changes a response body.
		res, err = st.sk.EstimatePlanContext(ctx, st.sk.PlanQuery(q))
	} else {
		res, err = st.sk.EstimateQueryTraced(ctx, q, rec)
	}
	if err != nil {
		s.writeEstimateError(w, tid, err)
		return
	}
	elapsed := time.Since(start)
	s.m.estLatency.Observe(elapsed.Seconds())
	s.m.observeTrace(rec)
	if res.Truncated {
		s.m.truncated.With(e.name).Inc()
	}
	if s.aud != nil && s.auditSampled(r, tid) {
		s.auditEstimate(e, st, q, tid, res)
	}
	resp := estimateResponse{
		Sketch:         e.name,
		Query:          q.String(),
		Estimate:       res.Estimate,
		Truncated:      res.Truncated,
		ElapsedSeconds: elapsed.Seconds(),
		TraceID:        tid,
	}
	if rec != nil {
		resp.Explanation = rec.Trace()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEstimateBatch(w http.ResponseWriter, r *http.Request) {
	tid := traceID(r)
	var req batchRequest
	if !s.decodeBody(w, r, tid, &req) {
		return
	}
	e, err := s.lookup(req.Sketch)
	if err != nil {
		s.writeError(w, http.StatusNotFound, tid, err)
		return
	}
	st := e.state.Load()
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, tid, errors.New("empty batch"))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		s.writeError(w, http.StatusRequestEntityTooLarge, tid,
			fmt.Errorf("batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatchQueries))
		return
	}
	queries := make([]*twig.Query, len(req.Queries))
	for i, qs := range req.Queries {
		q, err := twig.Parse(qs)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, tid, fmt.Errorf("malformed twig query %d: %w", i, err))
			return
		}
		queries[i] = q
	}
	if len(req.Explain) > 0 && len(req.Explain) != len(req.Queries) {
		s.writeError(w, http.StatusBadRequest, tid,
			fmt.Errorf("explain flags length %d != queries length %d", len(req.Explain), len(req.Queries)))
		return
	}
	workers := s.cfg.BatchWorkers
	if req.Workers > 0 && (workers <= 0 || req.Workers < workers) {
		workers = req.Workers
	}
	if !s.admit(w, tid) {
		return
	}
	defer s.release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Items flagged for explanation run traced, one at a time; the rest go
	// through the concurrent batch pool. Estimation is pure, so the split
	// is bit-identical to an all-batch run.
	start := time.Now()
	out := make([]batchResult, len(queries))
	plainIdx := make([]int, 0, len(queries))
	for i := range queries {
		if len(req.Explain) == 0 || !req.Explain[i] {
			plainIdx = append(plainIdx, i)
		}
	}
	plainQueries := make([]*twig.Query, len(plainIdx))
	for j, i := range plainIdx {
		plainQueries[j] = queries[i]
	}
	var results []core.EstimateResult
	if s.cfg.DisablePlanner {
		results, err = st.sk.EstimateBatchContext(ctx, plainQueries, workers)
	} else {
		results, err = st.sk.EstimateBatchPlannedContext(ctx, plainQueries, workers)
	}
	if err != nil {
		s.writeEstimateError(w, tid, err)
		return
	}
	for j, i := range plainIdx {
		out[i] = batchResult{Estimate: results[j].Estimate, Truncated: results[j].Truncated}
	}
	// Explained items fail independently: one item's error (a cancelled
	// trace, an injected fault) is recorded on that item alone and never
	// discards or reorders the rest of the batch.
	for i := range queries {
		if len(req.Explain) == 0 || !req.Explain[i] {
			continue
		}
		rec := trace.NewRecorder(trace.Options{})
		res, err := st.sk.EstimateQueryTraced(ctx, queries[i], rec)
		if err == nil && s.testHookExplainItem != nil {
			err = s.testHookExplainItem(i)
		}
		if err != nil {
			s.m.batchItemErrs.Inc()
			out[i] = batchResult{Error: fmt.Sprintf("explain item %d: %v", i, err)}
			continue
		}
		s.m.observeTrace(rec)
		out[i] = batchResult{Estimate: res.Estimate, Truncated: res.Truncated, Explanation: rec.Trace()}
	}
	elapsed := time.Since(start)
	s.m.batchLat.Observe(elapsed.Seconds())
	s.m.batchSize.Add(uint64(len(queries)))
	for i := range out {
		if out[i].Truncated {
			s.m.truncated.With(e.name).Inc()
		}
	}
	if s.aud != nil {
		for i := range queries {
			// Items that failed carry no estimate to audit.
			if out[i].Error != "" || !s.auditSampledItem(r, tid, i) {
				continue
			}
			s.auditEstimate(e, st, queries[i], tid,
				core.EstimateResult{Estimate: out[i].Estimate, Truncated: out[i].Truncated})
		}
	}
	s.writeJSON(w, http.StatusOK, batchResponse{
		Sketch:         e.name,
		Count:          len(out),
		Results:        out,
		ElapsedSeconds: elapsed.Seconds(),
		TraceID:        tid,
	})
}

// sketchInfo is one entry of the GET /sketches listing.
type sketchInfo struct {
	Name      string        `json:"name"`
	Source    string        `json:"source,omitempty"`
	Nodes     int           `json:"nodes"`
	Edges     int           `json:"edges"`
	SizeBytes int           `json:"size_bytes"`
	Swaps     uint64        `json:"swaps"`
	Estimator estimatorInfo `json:"estimator"`
}

// estimatorInfo is a sketch's estimation-cache snapshot in JSON form.
type estimatorInfo struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func (s *Server) handleSketches(w http.ResponseWriter, r *http.Request) {
	out := make([]sketchInfo, 0, len(s.names))
	for _, name := range s.names {
		e := s.entries[name]
		st := e.state.Load()
		cs := st.view.Snapshot()
		out = append(out, sketchInfo{
			Name:      e.name,
			Source:    st.source,
			Nodes:     st.nodes,
			Edges:     st.edges,
			SizeBytes: st.sizeBytes,
			Swaps:     e.swaps.Load(),
			Estimator: estimatorInfo{
				Hits:      cs.Hits,
				Misses:    cs.Misses,
				Evictions: cs.Evictions,
				HitRate:   cs.HitRate(),
			},
		})
	}
	s.writeJSON(w, http.StatusOK, out)
}

// healthResponse is the body of GET /healthz. The explicit Draining flag
// exists for probers: a draining replica answers 503 exactly like a dead
// one would (load balancers must stop routing either way), but the body
// lets a router tell "drain soon, still finishing in-flight work" apart
// from "gone" — and skip the replica without firing retry alarms.
type healthResponse struct {
	Status        string  `json:"status"`
	Draining      bool    `json:"draining"`
	Sketches      int     `json:"sketches"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Generations maps each served sketch to its hot-swap count, so a
	// router tier (or an operator mid-rolling-reload) can spot replicas
	// serving different catalog generations without scraping metrics.
	Generations map[string]uint64 `json:"generations"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	gens := make(map[string]uint64, len(s.names))
	for _, name := range s.names {
		gens[name] = s.entries[name].swaps.Load()
	}
	h := healthResponse{
		Status:        "ok",
		Sketches:      len(s.entries),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Generations:   gens,
	}
	code := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		h.Draining = true
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteTo(w)
}

// admit takes a concurrency slot, answering 429 (with Retry-After) and
// counting the shed when the server is saturated. It never queues: under
// overload the cheap rejection keeps tail latency of admitted requests
// intact instead of letting a queue grow without bound.
func (s *Server) admit(w http.ResponseWriter, tid string) bool {
	select {
	case s.sem <- struct{}{}:
		s.m.inFlight.Add(1)
		if s.testHookEstimate != nil {
			s.testHookEstimate()
		}
		return true
	default:
		s.m.shed.Inc()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, tid,
			fmt.Errorf("server at concurrency limit %d", s.cfg.MaxConcurrent))
		return false
	}
}

func (s *Server) release() {
	s.m.inFlight.Add(-1)
	<-s.sem
}

// decodeBody parses a size-limited JSON body, answering 413 for oversized
// and 400 for malformed input. It reports whether the caller may proceed.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, tid string, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, tid,
				fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return false
		}
		s.writeError(w, http.StatusBadRequest, tid, fmt.Errorf("malformed request body: %w", err))
		return false
	}
	return true
}

// writeEstimateError maps estimation-context errors to status codes: a
// deadline is the per-request timeout (504), anything else means the
// client went away or the server is shutting down (503).
func (s *Server) writeEstimateError(w http.ResponseWriter, tid string, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.m.timeouts.Inc()
		s.writeError(w, http.StatusGatewayTimeout, tid,
			fmt.Errorf("estimate exceeded request timeout %s", s.cfg.RequestTimeout))
		return
	}
	s.writeError(w, http.StatusServiceUnavailable, tid, fmt.Errorf("estimate cancelled: %w", err))
}

func (s *Server) writeError(w http.ResponseWriter, code int, tid string, err error) {
	s.writeJSON(w, code, errorResponse{Error: err.Error(), TraceID: tid})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

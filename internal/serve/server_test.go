package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xsketch/internal/twig"
	"xsketch/internal/xmlgen"
	core "xsketch/internal/xsketch"
)

const testQuery = "t0 in movie, t1 in t0/actor"

// newTestSketch builds a small IMDB sketch shared-safely across subtests.
func newTestSketch(t *testing.T) *core.Sketch {
	t.Helper()
	d := xmlgen.Generate("imdb", xmlgen.Config{Seed: 1, Scale: 0.02})
	return core.New(d, core.DefaultConfig())
}

// newTestServer wires a sketch into a Server and an httptest front end.
// mutate, when non-nil, adjusts the config before construction.
func newTestServer(t *testing.T, sk *core.Sketch, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg, []Sketch{{Name: "imdb", Source: "test", Sketch: sk}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestEstimateSuccessBitIdentical(t *testing.T) {
	sk := newTestSketch(t)
	want := sk.EstimateQueryResult(twig.MustParse(testQuery))
	_, ts := newTestServer(t, sk, nil)

	resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var er estimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("unmarshal: %v (%s)", err, body)
	}
	// encoding/json emits the shortest representation that round-trips, so
	// the served float must decode to the same bits as the local estimate.
	if math.Float64bits(er.Estimate) != math.Float64bits(want.Estimate) {
		t.Errorf("served estimate %v != local %v", er.Estimate, want.Estimate)
	}
	if er.Truncated != want.Truncated {
		t.Errorf("served truncated %v != local %v", er.Truncated, want.Truncated)
	}
	if er.TraceID == "" {
		t.Error("response missing trace_id")
	}
	if got := resp.Header.Get("X-Trace-Id"); got != er.TraceID {
		t.Errorf("header trace ID %q != body trace ID %q", got, er.TraceID)
	}
}

func TestEstimateOmittedSketchNameWithSingleSketch(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"query":%q}`, testQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
}

func TestEstimateMalformedTwig(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, body := postJSON(t, ts.URL+"/estimate", `{"query":"t0 in in in"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, body)
	}
	if !strings.Contains(er.Error, "malformed twig query") {
		t.Errorf("error %q does not mention the malformed query", er.Error)
	}
}

func TestEstimateMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, _ := postJSON(t, ts.URL+"/estimate", `{"query": nope}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestEstimateUnknownSketch(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"sketch":"nope","query":%q}`, testQuery))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (body %s)", resp.StatusCode, body)
	}
}

func TestEstimateWrongMethod(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, _ := getBody(t, ts.URL+"/estimate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestEstimateOversizedBody(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), func(c *Config) { c.MaxBodyBytes = 64 })
	big := fmt.Sprintf(`{"query":%q,"sketch":"imdb"}`, strings.Repeat("x", 200))
	resp, body := postJSON(t, ts.URL+"/estimate", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, body)
	}
}

func TestEstimateTimeout(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), func(c *Config) { c.RequestTimeout = time.Nanosecond })
	resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"query":%q}`, testQuery))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
}

func TestEstimateShedsAtConcurrencyCap(t *testing.T) {
	s, ts := newTestServer(t, newTestSketch(t), func(c *Config) { c.MaxConcurrent = 2 })
	// Occupy every slot directly; the next request must be shed, not queued.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	defer func() { <-s.sem; <-s.sem }()

	resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"query":%q}`, testQuery))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if got := s.m.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

func TestBatchMatchesSingleEstimates(t *testing.T) {
	sk := newTestSketch(t)
	queries := []string{
		"t0 in movie, t1 in t0/actor",
		"t0 in movie/type",
		"t0 in movie, t1 in t0/actor, t2 in t0/type",
	}
	want := make([]core.EstimateResult, len(queries))
	for i, qs := range queries {
		want[i] = sk.EstimateQueryResult(twig.MustParse(qs))
	}
	_, ts := newTestServer(t, sk, nil)

	reqBody, _ := json.Marshal(batchRequest{Queries: queries, Workers: 2})
	resp, body := postJSON(t, ts.URL+"/estimate/batch", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if br.Count != len(queries) || len(br.Results) != len(queries) {
		t.Fatalf("count %d / %d results, want %d", br.Count, len(br.Results), len(queries))
	}
	for i, res := range br.Results {
		if math.Float64bits(res.Estimate) != math.Float64bits(want[i].Estimate) {
			t.Errorf("query %d: served %v != local %v", i, res.Estimate, want[i].Estimate)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	resp, _ := postJSON(t, ts.URL+"/estimate/batch", `{"queries":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestBatchOverLimit(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), func(c *Config) { c.MaxBatchQueries = 2 })
	reqBody, _ := json.Marshal(batchRequest{Queries: []string{testQuery, testQuery, testQuery}})
	resp, _ := postJSON(t, ts.URL+"/estimate/batch", string(reqBody))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestBatchMalformedQueryNamesIndex(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	reqBody, _ := json.Marshal(batchRequest{Queries: []string{testQuery, "t0 in"}})
	resp, body := postJSON(t, ts.URL+"/estimate/batch", string(reqBody))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	json.Unmarshal(body, &er)
	if !strings.Contains(er.Error, "query 1") {
		t.Errorf("error %q does not name the failing query index", er.Error)
	}
}

func TestSketchesListing(t *testing.T) {
	sk := newTestSketch(t)
	// Prime the estimator cache so the snapshot shows activity.
	sk.EstimateQueryResult(twig.MustParse(testQuery))
	_, ts := newTestServer(t, sk, nil)

	resp, body := getBody(t, ts.URL+"/sketches")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var infos []sketchInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("unmarshal: %v (%s)", err, body)
	}
	if len(infos) != 1 || infos[0].Name != "imdb" {
		t.Fatalf("listing %+v, want one sketch named imdb", infos)
	}
	if infos[0].Nodes == 0 || infos[0].SizeBytes == 0 {
		t.Errorf("listing has zero nodes/size: %+v", infos[0])
	}
	if infos[0].Estimator.Misses == 0 {
		t.Errorf("estimator snapshot shows no misses after a primed estimate: %+v", infos[0].Estimator)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, newTestSketch(t), nil)
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %s (err %v)", body, err)
	}
	if h.Draining {
		t.Error("healthy healthz body claims draining")
	}

	s.SetDraining(true)
	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	json.Unmarshal(body, &h)
	if h.Status != "draining" {
		t.Errorf("draining status %q, want draining", h.Status)
	}
	if !h.Draining {
		t.Error("draining healthz body missing draining:true — a prober cannot tell drain from dead")
	}
}

// TestHealthzDrainProbeOrdering pins the drain/probe contract a router
// relies on: the 503 flip and the draining:true body land atomically with
// SetDraining, and flipping back restores a clean 200 ok body. A prober
// must never observe 503 without the draining marker on a live replica.
func TestHealthzDrainProbeOrdering(t *testing.T) {
	s, ts := newTestServer(t, newTestSketch(t), nil)
	for i := 0; i < 3; i++ {
		s.SetDraining(true)
		resp, body := getBody(t, ts.URL+"/healthz")
		var h healthResponse
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz body %s: %v", body, err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || !h.Draining {
			t.Fatalf("round %d: draining replica answered %d draining=%v, want 503 draining=true",
				i, resp.StatusCode, h.Draining)
		}
		s.SetDraining(false)
		resp, body = getBody(t, ts.URL+"/healthz")
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz body %s: %v", body, err)
		}
		if resp.StatusCode != http.StatusOK || h.Draining || h.Status != "ok" {
			t.Fatalf("round %d: un-drained replica answered %d status=%q draining=%v, want 200 ok false",
				i, resp.StatusCode, h.Status, h.Draining)
		}
	}
}

func TestClientSuppliedTraceID(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), nil)
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Trace-Id", "deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "deadbeef" {
		t.Errorf("echoed trace ID %q, want deadbeef", got)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, newTestSketch(t), func(c *Config) { c.EnablePprof = true })
	resp, _ := getBody(t, ts.URL+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
}

func TestConcurrentEstimatesBitIdentical(t *testing.T) {
	// The determinism claim end to end: many goroutines hammering one
	// sketch over HTTP all receive the exact bits a cold local estimate
	// produces. Run under -race in CI.
	sk := newTestSketch(t)
	want := core.New(xmlgen.Generate("imdb", xmlgen.Config{Seed: 1, Scale: 0.02}), core.DefaultConfig()).
		EstimateQueryResult(twig.MustParse(testQuery))
	_, ts := newTestServer(t, sk, nil)

	const goroutines, rounds = 8, 5
	errc := make(chan error, goroutines*rounds)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, err := http.Post(ts.URL+"/estimate", "application/json",
					strings.NewReader(fmt.Sprintf(`{"query":%q}`, testQuery)))
				if err != nil {
					errc <- err
					return
				}
				var er estimateResponse
				err = json.NewDecoder(resp.Body).Decode(&er)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if math.Float64bits(er.Estimate) != math.Float64bits(want.Estimate) {
					errc <- fmt.Errorf("estimate %v != %v", er.Estimate, want.Estimate)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	sk := newTestSketch(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	s, err := New(Config{}, []Sketch{{Name: "imdb", Sketch: sk}})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	s.testHookEstimate = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park one estimate inside the handler.
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/estimate", "application/json",
			strings.NewReader(fmt.Sprintf(`{"query":%q}`, testQuery)))
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	<-entered

	// Begin the drain: mark unhealthy, then shut the listener down. The
	// shutdown must wait for the parked request instead of killing it.
	s.SetDraining(true)
	shutDone := make(chan error, 1)
	go func() { shutDone <- ts.Config.Shutdown(context.Background()) }()

	select {
	case err := <-shutDone:
		t.Fatalf("shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := <-reqDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
}

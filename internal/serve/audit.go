package serve

import (
	"net/http"
	"strconv"

	"xsketch/internal/accuracy"
	"xsketch/internal/twig"
	core "xsketch/internal/xsketch"
)

// auditSampleHeader overrides the hash sampling decision for one request:
// a true value (strconv.ParseBool spellings) forces the estimate into the
// audit sample, a false value suppresses it, absence defers to the
// trace-ID hash. The router forwards the header untouched, so a client
// or a shadow-test harness controls sampling identically through either
// tier.
const auditSampleHeader = "X-Audit-Sample"

// auditSampled decides whether this request's estimate joins the audit
// sample. Only called with auditing enabled.
func (s *Server) auditSampled(r *http.Request, tid string) bool {
	if v := r.Header.Get(auditSampleHeader); v != "" {
		b, err := strconv.ParseBool(v)
		return err == nil && b
	}
	return s.aud.ShouldSample(tid)
}

// auditSampledItem is auditSampled for one batch item: the override
// header still wins, otherwise items sample independently by index.
func (s *Server) auditSampledItem(r *http.Request, tid string, item int) bool {
	if v := r.Header.Get(auditSampleHeader); v != "" {
		b, err := strconv.ParseBool(v)
		return err == nil && b
	}
	return s.aud.ShouldSampleItem(tid, item)
}

// auditEstimate submits one served estimate to the auditor. The record
// carries the entry's swap count, so replays can tell which synopsis
// generation produced the estimate; the state's document (nil for
// detached catalog sketches) decides whether the online ground-truth loop
// can audit it.
func (s *Server) auditEstimate(e *entry, st *sketchState, q *twig.Query, tid string, res core.EstimateResult) {
	s.aud.Submit(accuracy.Record{
		Sketch:     e.name,
		Query:      q.String(),
		Estimate:   res.Estimate,
		Truncated:  res.Truncated,
		Generation: e.swaps.Load(),
		TraceID:    tid,
	}, st.sk.Document(), q)
}

package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"xsketch/internal/catalog"
	"xsketch/internal/twig"
	"xsketch/internal/xmlgen"
	core "xsketch/internal/xsketch"
)

// newScaledSketch builds an IMDB sketch at the given scale, so tests can
// swap between two synopses with observably different estimates.
func newScaledSketch(t *testing.T, scale float64) *core.Sketch {
	t.Helper()
	d := xmlgen.Generate("imdb", xmlgen.Config{Seed: 1, Scale: scale})
	return core.New(d, core.DefaultConfig())
}

func estimateOnce(t *testing.T, url string) float64 {
	t.Helper()
	resp, body := postJSON(t, url+"/estimate", fmt.Sprintf(`{"sketch":"imdb","query":%q}`, testQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d, body %s", resp.StatusCode, body)
	}
	var er estimateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return er.Estimate
}

// TestSwapSketch: a swap atomically changes what a name answers with, and
// the listing plus swap metric reflect it.
func TestSwapSketch(t *testing.T) {
	small := newScaledSketch(t, 0.02)
	big := newScaledSketch(t, 0.05)
	wantSmall := small.EstimateQuery(twig.MustParse(testQuery))
	wantBig := big.EstimateQuery(twig.MustParse(testQuery))
	if math.Float64bits(wantSmall) == math.Float64bits(wantBig) {
		t.Fatalf("fixture sketches estimate identically; swap would be unobservable")
	}

	s, ts := newTestServer(t, small, nil)
	if got := estimateOnce(t, ts.URL); math.Float64bits(got) != math.Float64bits(wantSmall) {
		t.Fatalf("pre-swap estimate %v, want %v", got, wantSmall)
	}
	if err := s.SwapSketch("imdb", "test:big", big); err != nil {
		t.Fatalf("swap: %v", err)
	}
	if got := estimateOnce(t, ts.URL); math.Float64bits(got) != math.Float64bits(wantBig) {
		t.Fatalf("post-swap estimate %v, want %v", got, wantBig)
	}
	if n := s.Swaps("imdb"); n != 1 {
		t.Fatalf("swap count %d, want 1", n)
	}

	_, body := getBody(t, ts.URL+"/sketches")
	var infos []sketchInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("unmarshal sketches: %v", err)
	}
	if len(infos) != 1 || infos[0].Swaps != 1 || infos[0].Source != "test:big" {
		t.Fatalf("listing after swap: %+v", infos)
	}
	if infos[0].Nodes != big.Syn.NumNodes() || infos[0].SizeBytes != big.SizeBytes() {
		t.Fatalf("listing still reports old sketch: %+v", infos[0])
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `xserve_sketch_swaps_total{sketch="imdb"} 1`) {
		t.Fatalf("swap metric not incremented:\n%s", metrics)
	}

	if err := s.SwapSketch("nope", "x", big); err == nil {
		t.Fatalf("swap of unknown name succeeded")
	}
	if err := s.SwapSketch("imdb", "x", nil); err == nil {
		t.Fatalf("swap with nil sketch succeeded")
	}
}

// TestSwapDrainOrdering is the acceptance check for hot-swap under load:
// an estimate admitted before the swap finishes on the sketch it loaded —
// the swap neither drops nor retargets it — while requests after the swap
// see only the new synopsis.
func TestSwapDrainOrdering(t *testing.T) {
	small := newScaledSketch(t, 0.02)
	big := newScaledSketch(t, 0.05)
	wantSmall := small.EstimateQuery(twig.MustParse(testQuery))
	wantBig := big.EstimateQuery(twig.MustParse(testQuery))

	s, ts := newTestServer(t, small, nil)
	admitted := make(chan struct{})
	proceed := make(chan struct{})
	var hookOnce sync.Once
	s.testHookEstimate = func() {
		hookOnce.Do(func() {
			close(admitted)
			<-proceed
		})
	}

	res := make(chan float64, 1)
	go func() {
		res <- estimateOnce(t, ts.URL)
	}()
	<-admitted
	// The first request sits inside the handler, holding its loaded state.
	if err := s.SwapSketch("imdb", "test:big", big); err != nil {
		t.Fatalf("swap: %v", err)
	}
	close(proceed)
	if got := <-res; math.Float64bits(got) != math.Float64bits(wantSmall) {
		t.Fatalf("in-flight estimate %v, want pre-swap %v", got, wantSmall)
	}
	if got := estimateOnce(t, ts.URL); math.Float64bits(got) != math.Float64bits(wantBig) {
		t.Fatalf("post-swap estimate %v, want %v", got, wantBig)
	}
}

// TestReloadEndpoint drives POST /admin/reload against a real catalog
// directory: a successful reload swaps in the detached sketch with
// bit-identical estimates, and every failure mode leaves the served
// synopsis untouched while counting xserve_reload_errors_total.
func TestReloadEndpoint(t *testing.T) {
	live := newScaledSketch(t, 0.02)
	want := live.EstimateQuery(twig.MustParse(testQuery))
	dir := t.TempDir()
	if _, err := catalog.Write(dir, "imdb", live); err != nil {
		t.Fatalf("catalog write: %v", err)
	}

	s, ts := newTestServer(t, live, func(c *Config) { c.CatalogDir = dir })

	resp, body := postJSON(t, ts.URL+"/admin/reload", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d, body %s", resp.StatusCode, body)
	}
	var rr reloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("unmarshal reload response: %v", err)
	}
	if rr.Sketch != "imdb" || rr.Swaps != 1 || rr.Nodes != live.Syn.NumNodes() {
		t.Fatalf("reload response %+v", rr)
	}
	// The reloaded sketch is the detached catalog form; estimates must be
	// bit-identical to the document-backed original.
	if got := estimateOnce(t, ts.URL); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("estimate after reload %v, want %v", got, want)
	}

	// Unknown sketch name: 404, no swap.
	resp, body = postJSON(t, ts.URL+"/admin/reload", `{"sketch":"nope"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload of unknown sketch: status %d, body %s", resp.StatusCode, body)
	}

	// Corrupt catalog file: 422, served sketch untouched.
	bad := filepath.Join(dir, "broken.xsb")
	if err := os.WriteFile(bad, []byte("XSKBgarbage"), 0o644); err != nil {
		t.Fatalf("write corrupt file: %v", err)
	}
	resp, body = postJSON(t, ts.URL+"/admin/reload", fmt.Sprintf(`{"path":%q}`, bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("reload of corrupt file: status %d, body %s", resp.StatusCode, body)
	}
	if got := estimateOnce(t, ts.URL); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("estimate changed after failed reload: %v, want %v", got, want)
	}
	if n := s.Swaps("imdb"); n != 1 {
		t.Fatalf("failed reloads changed swap count to %d", n)
	}

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "xserve_reload_errors_total 2") {
		t.Fatalf("reload error counter not at 2:\n%s", metrics)
	}
}

// TestReloadWithoutCatalogDir: with no directory configured and no path in
// the request, reload fails cleanly.
func TestReloadWithoutCatalogDir(t *testing.T) {
	live := newScaledSketch(t, 0.02)
	_, ts := newTestServer(t, live, nil)
	resp, body := postJSON(t, ts.URL+"/admin/reload", `{}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("reload without catalog dir: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no catalog directory") {
		t.Fatalf("unexpected error body %s", body)
	}
}

package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"xsketch/internal/obs"
)

// traceIDHeader carries the request's trace ID in both directions: clients
// may supply one for cross-service correlation, and every response echoes
// the ID that tagged the server's log lines.
const traceIDHeader = "X-Trace-Id"

type traceKey struct{}

// traceID reads the request's assigned trace ID (set by instrument).
func traceID(r *http.Request) string {
	if id, ok := r.Context().Value(traceKey{}).(string); ok {
		return id
	}
	return ""
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-request observability chain:
// trace-ID assignment (honoring a client-supplied header), request
// counting by path and status, and one structured JSON log line.
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tid := r.Header.Get(traceIDHeader)
		if tid == "" {
			tid = obs.NewTraceID()
		}
		w.Header().Set(traceIDHeader, tid)
		r = r.WithContext(context.WithValue(r.Context(), traceKey{}, tid))
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sr, r)
		elapsed := time.Since(start)
		s.m.requests.With(path, strconv.Itoa(sr.code)).Inc()
		s.log.Info("request",
			"trace_id", tid,
			"method", r.Method,
			"path", path,
			"status", sr.code,
			"elapsed_seconds", elapsed.Seconds(),
			"remote", r.RemoteAddr,
		)
	}
}

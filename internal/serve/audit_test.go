package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"testing"

	"xsketch/internal/accuracy"
	"xsketch/internal/eval"
	"xsketch/internal/obs"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// auditTestConfig wires a fast auditor into a test server: sample
// everything, journal into buf, ground-truth without pacing.
func auditTestConfig(buf *bytes.Buffer) *accuracy.Config {
	return &accuracy.Config{SampleRate: 1, Out: buf, TruthInterval: -1}
}

func TestHealthzReportsGenerations(t *testing.T) {
	sk := newTestSketch(t)
	s, ts := newTestServer(t, sk, nil)

	generations := func() map[string]uint64 {
		t.Helper()
		_, body := getBody(t, ts.URL+"/healthz")
		var h healthResponse
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("unmarshal healthz: %v (%s)", err, body)
		}
		return h.Generations
	}

	if got := generations(); len(got) != 1 || got["imdb"] != 0 {
		t.Fatalf("generations before swap = %v, want map[imdb:0]", got)
	}
	if err := s.SwapSketch("imdb", "test-swap", newTestSketch(t)); err != nil {
		t.Fatalf("SwapSketch: %v", err)
	}
	if got := generations(); got["imdb"] != 1 {
		t.Fatalf("generations after swap = %v, want imdb at 1", got)
	}
}

func TestAuditDisabledBitIdenticalAndSilent(t *testing.T) {
	// The same sketch served twice: once with auditing off, once sampling
	// at rate 0. Responses must be bit-identical — the auditor must not
	// perturb the estimate path — and rate 0 must journal nothing.
	sk := newTestSketch(t)
	_, tsOff := newTestServer(t, sk, nil)
	var buf bytes.Buffer
	sRate0, tsRate0 := newTestServer(t, sk, func(c *Config) {
		c.Audit = &accuracy.Config{SampleRate: 0, Out: &buf, TruthInterval: -1}
	})

	body := fmt.Sprintf(`{"query":%q}`, testQuery)
	_, off := postJSON(t, tsOff.URL+"/estimate", body)
	_, rate0 := postJSON(t, tsRate0.URL+"/estimate", body)
	var eOff, eRate0 estimateResponse
	if err := json.Unmarshal(off, &eOff); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := json.Unmarshal(rate0, &eRate0); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if math.Float64bits(eOff.Estimate) != math.Float64bits(eRate0.Estimate) {
		t.Errorf("audit-off estimate %v != rate-0 estimate %v", eOff.Estimate, eRate0.Estimate)
	}

	sRate0.Auditor().Flush()
	if buf.Len() != 0 {
		t.Errorf("rate-0 auditor journaled %d bytes: %s", buf.Len(), buf.Bytes())
	}
	_, metrics := getBody(t, tsRate0.URL+"/metrics")
	if !strings.Contains(string(metrics), `xserve_accuracy_sampled_total{sketch="imdb"} 0`) {
		t.Error("rate-0 sampled counter not zero")
	}
}

func TestAuditSampleHeaderOverridesHashDecision(t *testing.T) {
	var buf bytes.Buffer
	s, ts := newTestServer(t, newTestSketch(t), func(c *Config) {
		c.Audit = &accuracy.Config{SampleRate: 0, Out: &buf, TruthInterval: -1}
	})
	post := func(path, header string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path,
			strings.NewReader(fmt.Sprintf(`{"query":%q}`, testQuery)))
		if err != nil {
			t.Fatalf("request: %v", err)
		}
		if header != "" {
			req.Header.Set("X-Audit-Sample", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	post("/estimate", "1") // forced into the sample despite rate 0
	s.Auditor().Flush()
	records, err := accuracy.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil || len(records) != 1 {
		t.Fatalf("forced sample journaled %d records (%v), want 1", len(records), err)
	}

	// And a false value suppresses sampling even at rate 1.
	var buf2 bytes.Buffer
	s2, ts2 := newTestServer(t, newTestSketch(t), func(c *Config) {
		c.Audit = auditTestConfig(&buf2)
	})
	req, _ := http.NewRequest(http.MethodPost, ts2.URL+"/estimate",
		strings.NewReader(fmt.Sprintf(`{"query":%q}`, testQuery)))
	req.Header.Set("X-Audit-Sample", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	s2.Auditor().Flush()
	if buf2.Len() != 0 {
		t.Errorf("suppressed request was journaled: %s", buf2.Bytes())
	}
}

// TestAuditOnlineMatchesOfflineReplay is the tentpole's equivalence
// criterion: the q-errors the online ground-truth worker fed into the
// sliding window must match an offline xaudit-style replay of the same
// log bit-for-bit.
func TestAuditOnlineMatchesOfflineReplay(t *testing.T) {
	sk := newTestSketch(t)
	doc := sk.Document()
	if doc == nil {
		t.Fatal("test sketch has no live document")
	}
	var buf bytes.Buffer
	s, ts := newTestServer(t, sk, func(c *Config) { c.Audit = auditTestConfig(&buf) })

	queries := []string{
		"t0 in movie, t1 in t0/actor",
		"t0 in movie/type",
		"t0 in movie//name",
	}
	for _, q := range queries {
		resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"query":%q}`, q))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %q: status %d body %s", q, resp.StatusCode, body)
		}
	}
	// A batch rides along so batch items hit the same audit path.
	resp, body := postJSON(t, ts.URL+"/estimate/batch",
		fmt.Sprintf(`{"queries":[%q,%q]}`, queries[0], queries[1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d body %s", resp.StatusCode, body)
	}
	s.Auditor().Flush()

	records, err := accuracy.ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(records) != len(queries)+2 {
		t.Fatalf("journaled %d records, want %d", len(records), len(queries)+2)
	}
	for i, rec := range records {
		if rec.Sketch != "imdb" || rec.TraceID == "" || rec.Generation != 0 {
			t.Errorf("record %d malformed: %+v", i, rec)
		}
	}

	rep, err := accuracy.Replay(records, doc, len(records))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(rep.Sketches) != 1 || rep.Sketches[0].Records != len(records) {
		t.Fatalf("report shape %+v", rep)
	}
	replayed := make([]float64, 0, len(records))
	for _, w := range rep.Sketches[0].Worst {
		replayed = append(replayed, w.QError)
	}
	online := append([]float64(nil), s.Auditor().WindowStats("imdb").QErrors...)
	if len(online) != len(replayed) {
		t.Fatalf("online window has %d q-errors, replay %d", len(online), len(replayed))
	}
	sort.Float64s(online)
	sort.Float64s(replayed)
	for i := range online {
		if math.Float64bits(online[i]) != math.Float64bits(replayed[i]) {
			t.Errorf("q-error %d: online %v != replayed %v (bit mismatch)", i, online[i], replayed[i])
		}
	}

	// The worker's aggregates surface at /metrics.
	_, metrics := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		fmt.Sprintf(`xserve_accuracy_sampled_total{sketch="imdb"} %d`, len(records)),
		fmt.Sprintf(`xserve_accuracy_audited_total{sketch="imdb"} %d`, len(records)),
		fmt.Sprintf(`xserve_accuracy_qerror_count{sketch="imdb"} %d`, len(records)),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestAuditDriftInjection serves a sketch whose source document mutated
// after construction: the stale estimates must push the windowed mean
// q-error over the threshold and fire the drift counter and log event.
func TestAuditDriftInjection(t *testing.T) {
	sk := newTestSketch(t)
	doc := sk.Document()
	q := twig.MustParse(testQuery)
	before := eval.New(doc).Selectivity(q)
	if before <= 0 {
		t.Fatalf("test query matches nothing before mutation (truth %d)", before)
	}

	// Inject drift: quadruple the true (movie, actor) pair count by
	// appending actors the already-built synopsis knows nothing about.
	movieTag, ok := doc.LookupTag("movie")
	if !ok {
		t.Fatal("no movie tag in test document")
	}
	var movie xmltree.NodeID = -1
	for i := 0; i < doc.Len(); i++ {
		if doc.Node(xmltree.NodeID(i)).Tag == movieTag {
			movie = xmltree.NodeID(i)
			break
		}
	}
	if movie < 0 {
		t.Fatal("no movie element in test document")
	}
	for i := int64(0); i < 3*before; i++ {
		doc.AddChild(movie, "actor")
	}
	after := eval.New(doc).Selectivity(q)
	if after < 4*before {
		t.Fatalf("mutation did not move truth: before %d, after %d", before, after)
	}

	var logBuf, auditBuf bytes.Buffer
	s, ts := newTestServer(t, sk, func(c *Config) {
		c.Logger = obs.NewLogger(&logBuf)
		ac := auditTestConfig(&auditBuf)
		ac.DriftThreshold = 2 // truth moved 4x, stale estimates err >= 4x
		c.Audit = ac
	})
	resp, body := postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"query":%q}`, testQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d body %s", resp.StatusCode, body)
	}
	s.Auditor().Flush()

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `xserve_accuracy_drift_total{sketch="imdb"} 1`) {
		t.Errorf("drift counter did not fire; metrics:\n%s",
			grepLines(string(metrics), "xserve_accuracy"))
	}
	if !strings.Contains(logBuf.String(), "accuracy drift") {
		t.Errorf("no structured drift event logged; log:\n%s", logBuf.String())
	}
	if ws := s.Auditor().WindowStats("imdb"); !ws.InDrift || ws.Mean < 2 {
		t.Errorf("window not in drift: %+v", ws)
	}
}

// grepLines returns text's lines containing substr, for failure output.
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

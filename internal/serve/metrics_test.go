package serve

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"xsketch/internal/accuracy"
)

// documentedSeries is the metrics catalog promised in SERVING.md: every
// family xserve exposes, keyed by name with its TYPE line value. The test
// fails when the endpoint and this catalog drift apart in either
// direction, which keeps the docs honest.
var documentedSeries = map[string]string{
	"xserve_requests_total":                    "counter",
	"xserve_in_flight_requests":                "gauge",
	"xserve_requests_shed_total":               "counter",
	"xserve_request_timeouts_total":            "counter",
	"xserve_estimate_latency_seconds":          "histogram",
	"xserve_estimate_latency_quantile_seconds": "gauge",
	"xserve_batch_latency_seconds":             "histogram",
	"xserve_batch_queries_total":               "counter",
	"xserve_sketch_truncated_total":            "counter",
	"xserve_traced_requests_total":             "counter",
	"xserve_estimate_stage_latency_seconds":    "histogram",
	"xserve_trace_events_total":                "counter",
	"xserve_sketch_cache_hits_total":           "counter",
	"xserve_sketch_cache_misses_total":         "counter",
	"xserve_sketch_cache_evictions_total":      "counter",
	"xserve_sketch_cache_hit_ratio":            "gauge",
	"xserve_sketch_plan_cache_hits_total":      "counter",
	"xserve_sketch_plan_cache_misses_total":    "counter",
	"xserve_sketch_plan_cache_evictions_total": "counter",
	"xserve_sketch_plan_cache_size":            "gauge",
	"xserve_batch_item_errors_total":           "counter",
	"xserve_sketch_swaps_total":                "counter",
	"xserve_reload_errors_total":               "counter",
	"xserve_sketch_size_bytes":                 "gauge",
	"xserve_goroutines":                        "gauge",
	"xserve_uptime_seconds":                    "gauge",
	"xserve_build_info":                        "gauge",

	// Accuracy-auditor families; rendered only when auditing is enabled
	// (the catalog test's server enables it).
	"xserve_accuracy_sampled_total":         "counter",
	"xserve_accuracy_dropped_total":         "counter",
	"xserve_accuracy_audited_total":         "counter",
	"xserve_accuracy_truth_skipped_total":   "counter",
	"xserve_accuracy_drift_total":           "counter",
	"xserve_accuracy_qerror":                "histogram",
	"xserve_accuracy_truth_latency_seconds": "histogram",
	"xserve_accuracy_window_qerror":         "gauge",
}

// parseExposition validates the Prometheus text format line by line and
// returns TYPE declarations plus every rendered sample keyed by full
// series (name + label string).
func parseExposition(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	helped := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if !helped[parts[0]] {
				t.Errorf("TYPE before HELP for %s", parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, valStr := line[:idx], line[idx+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value %q: %v", series, valStr, err)
		}
		if _, dup := samples[series]; dup {
			t.Errorf("duplicate series %q", series)
		}
		samples[series] = val
	}
	return types, samples
}

func TestMetricsEndpointMatchesDocumentedCatalog(t *testing.T) {
	// Auditing enabled so the xserve_accuracy_* families render too.
	_, ts := newTestServer(t, newTestSketch(t), func(c *Config) {
		c.Audit = &accuracy.Config{SampleRate: 1, TruthInterval: -1}
	})

	// Generate traffic across the instrumented paths first.
	postJSON(t, ts.URL+"/estimate", fmt.Sprintf(`{"query":%q}`, testQuery))
	postJSON(t, ts.URL+"/estimate?explain=true", fmt.Sprintf(`{"query":%q}`, testQuery))
	postJSON(t, ts.URL+"/estimate/batch", fmt.Sprintf(`{"queries":[%q,%q]}`, testQuery, testQuery))
	getBody(t, ts.URL+"/sketches")

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}

	types, samples := parseExposition(t, string(body))
	for name, typ := range documentedSeries {
		got, ok := types[name]
		if !ok {
			t.Errorf("documented family %s missing from /metrics", name)
			continue
		}
		if got != typ {
			t.Errorf("family %s has type %s, documented as %s", name, got, typ)
		}
	}
	for name := range types {
		if _, ok := documentedSeries[name]; !ok {
			t.Errorf("undocumented family %s exposed at /metrics", name)
		}
	}

	// Spot-check sample values driven by the traffic above.
	if v := samples[`xserve_requests_total{path="/estimate",code="200"}`]; v != 2 {
		t.Errorf("estimate request count %v, want 2", v)
	}
	if v := samples["xserve_batch_queries_total"]; v != 2 {
		t.Errorf("batch query count %v, want 2", v)
	}
	if v := samples["xserve_estimate_latency_seconds_count"]; v != 2 {
		t.Errorf("latency histogram count %v, want 2", v)
	}
	if v := samples[`xserve_sketch_cache_misses_total{sketch="imdb"}`]; v <= 0 {
		t.Errorf("cache misses %v, want > 0 after estimates", v)
	}
	if v := samples[`xserve_sketch_plan_cache_misses_total{sketch="imdb"}`]; v <= 0 {
		t.Errorf("plan-cache misses %v, want > 0 after planned estimates", v)
	}
	if v := samples[`xserve_sketch_plan_cache_hits_total{sketch="imdb"}`]; v <= 0 {
		t.Errorf("plan-cache hits %v, want > 0 after repeated queries", v)
	}
	if v := samples[`xserve_sketch_plan_cache_size{sketch="imdb"}`]; v <= 0 {
		t.Errorf("plan-cache size %v, want > 0", v)
	}
	if _, ok := samples[`xserve_estimate_latency_quantile_seconds{quantile="0.99"}`]; !ok {
		t.Error("p99 quantile series missing")
	}
	if v := samples["xserve_traced_requests_total"]; v != 1 {
		t.Errorf("traced request count %v, want 1", v)
	}
	if v := samples[`xserve_trace_events_total{kind="expand"}`]; v <= 0 {
		t.Errorf("expand trace events %v, want > 0 after explain request", v)
	}
	for _, stage := range []string{"expand", "embed", "treeparse", "histogram_lookup"} {
		series := fmt.Sprintf(`xserve_estimate_stage_latency_seconds_count{stage=%q}`, stage)
		if v, ok := samples[series]; !ok || v != 1 {
			t.Errorf("%s = %v (present %v), want 1 after one traced request", series, v, ok)
		}
	}

	// Histogram buckets must be cumulative and end at +Inf == _count.
	var prev float64
	var sawInf bool
	for _, b := range histogramBuckets(samples, "xserve_estimate_latency_seconds") {
		if b.count < prev {
			t.Errorf("bucket le=%q count %v below previous %v (not cumulative)", b.le, b.count, prev)
		}
		prev = b.count
		if b.le == "+Inf" {
			sawInf = true
			if b.count != samples["xserve_estimate_latency_seconds_count"] {
				t.Errorf("+Inf bucket %v != _count %v", b.count, samples["xserve_estimate_latency_seconds_count"])
			}
		}
	}
	if !sawInf {
		t.Error("histogram missing +Inf bucket")
	}
}

type bucket struct {
	le    string
	count float64
}

// histogramBuckets extracts a family's buckets in exposition order... which
// parseExposition flattened into a map, so re-derive order by bound value.
func histogramBuckets(samples map[string]float64, family string) []bucket {
	var out []bucket
	prefix := family + `_bucket{le="`
	for series, v := range samples {
		if strings.HasPrefix(series, prefix) {
			le := strings.TrimSuffix(strings.TrimPrefix(series, prefix), `"}`)
			out = append(out, bucket{le: le, count: v})
		}
	}
	sortBuckets(out)
	return out
}

func sortBuckets(bs []bucket) {
	parse := func(le string) float64 {
		if le == "+Inf" {
			return math.Inf(1)
		}
		v, _ := strconv.ParseFloat(le, 64)
		return v
	}
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && parse(bs[j].le) < parse(bs[j-1].le); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xsketch/internal/twig"
)

// Save writes the workload as tab-separated lines "truth<TAB>query", with a
// one-line header recording the kind. Queries render in the for-clause
// notation and re-parse losslessly, so saved workloads replay across runs
// and tools.
func Save(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# xsketch workload kind=%s queries=%d\n", wl.Kind, len(wl.Queries)); err != nil {
		return err
	}
	for _, q := range wl.Queries {
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", q.Truth, q.Twig); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a workload written by Save.
func Load(r io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	wl := &Workload{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if k, ok := parseKindHeader(line); ok {
				wl.Kind = k
			}
			continue
		}
		truthStr, querySrc, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("workload: line %d: expected 'truth<TAB>query'", lineNo)
		}
		truth, err := strconv.ParseInt(strings.TrimSpace(truthStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad truth %q: %v", lineNo, truthStr, err)
		}
		q, err := twig.Parse(querySrc)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %v", lineNo, err)
		}
		wl.Queries = append(wl.Queries, Query{Twig: q, Truth: truth})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	return wl, nil
}

func parseKindHeader(line string) (Kind, bool) {
	idx := strings.Index(line, "kind=")
	if idx < 0 {
		return 0, false
	}
	rest := line[idx+len("kind="):]
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	for _, k := range []Kind{KindP, KindPV, KindSimple, KindNegative} {
		if k.String() == rest {
			return k, true
		}
	}
	return 0, false
}

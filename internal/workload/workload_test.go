package workload

import (
	"testing"

	"xsketch/internal/eval"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
)

func testDoc() *xmltree.Document {
	return xmlgen.IMDB(xmlgen.Config{Seed: 11, Scale: 0.05})
}

func smallCfg(kind Kind) Config {
	cfg := DefaultConfig(kind)
	cfg.NumQueries = 40
	return cfg
}

func TestGeneratePPositive(t *testing.T) {
	d := testDoc()
	w := Generate(d, smallCfg(KindP))
	if len(w.Queries) != 40 {
		t.Fatalf("generated %d queries, want 40", len(w.Queries))
	}
	for i, q := range w.Queries {
		if q.Truth <= 0 {
			t.Fatalf("query %d (%s) has truth %d", i, q.Twig, q.Truth)
		}
		n := q.Twig.NodeCount()
		if n < 4 || n > 8 {
			t.Fatalf("query %d has %d nodes", i, n)
		}
		if q.Twig.CountValuePreds() != 0 {
			t.Fatalf("P workload query %d has value predicates: %s", i, q.Twig)
		}
	}
}

func TestGenerateTruthMatchesEvaluator(t *testing.T) {
	d := testDoc()
	w := Generate(d, smallCfg(KindP))
	ev := eval.New(d)
	for i, q := range w.Queries[:10] {
		if got := ev.Selectivity(q.Twig); got != q.Truth {
			t.Fatalf("query %d truth mismatch: %d vs %d", i, got, q.Truth)
		}
	}
}

func TestGeneratePVHasValuePreds(t *testing.T) {
	d := testDoc()
	w := Generate(d, smallCfg(KindPV))
	if len(w.Queries) != 40 {
		t.Fatalf("generated %d queries", len(w.Queries))
	}
	st := w.Stats()
	// Roughly half the queries carry value predicates (paper: 500 of
	// 1000). Bounds are loose: predicates occasionally fail to attach.
	if st.WithValuePreds < 8 || st.WithValuePreds > 32 {
		t.Fatalf("WithValuePreds = %d of 40", st.WithValuePreds)
	}
	for i, q := range w.Queries {
		if q.Truth <= 0 {
			t.Fatalf("P+V query %d has truth %d: %s", i, q.Truth, q.Twig)
		}
	}
}

func TestGenerateSimple(t *testing.T) {
	d := testDoc()
	w := Generate(d, smallCfg(KindSimple))
	for i, q := range w.Queries {
		if !q.Twig.IsSimple() {
			t.Fatalf("simple workload query %d is not simple: %s", i, q.Twig)
		}
		if q.Truth <= 0 {
			t.Fatalf("simple query %d truth = %d", i, q.Truth)
		}
	}
}

func TestGenerateNegative(t *testing.T) {
	d := testDoc()
	w := Generate(d, smallCfg(KindNegative))
	if len(w.Queries) == 0 {
		t.Fatal("no negative queries generated")
	}
	for i, q := range w.Queries {
		if q.Truth != 0 {
			t.Fatalf("negative query %d has truth %d: %s", i, q.Truth, q.Twig)
		}
	}
}

func TestStats(t *testing.T) {
	d := testDoc()
	w := Generate(d, smallCfg(KindP))
	st := w.Stats()
	if st.Count != 40 {
		t.Fatalf("Count = %d", st.Count)
	}
	if st.AvgResult <= 0 {
		t.Fatalf("AvgResult = %v", st.AvgResult)
	}
	if st.AvgFanout < 1 || st.AvgFanout > 4 {
		t.Fatalf("AvgFanout = %v", st.AvgFanout)
	}
	if st.AvgNodes < 4 || st.AvgNodes > 8 {
		t.Fatalf("AvgNodes = %v", st.AvgNodes)
	}
	truths := w.Truths()
	if len(truths) != 40 || truths[0] != w.Queries[0].Truth {
		t.Fatalf("Truths mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	d := testDoc()
	w1 := Generate(d, smallCfg(KindP))
	w2 := Generate(d, smallCfg(KindP))
	if len(w1.Queries) != len(w2.Queries) {
		t.Fatal("nondeterministic workload size")
	}
	for i := range w1.Queries {
		if w1.Queries[i].Twig.String() != w2.Queries[i].Twig.String() {
			t.Fatalf("query %d differs:\n%s\n%s", i, w1.Queries[i].Twig, w2.Queries[i].Twig)
		}
	}
	cfg := smallCfg(KindP)
	cfg.Seed = 99
	w3 := Generate(d, cfg)
	same := true
	for i := range w1.Queries {
		if i >= len(w3.Queries) || w1.Queries[i].Twig.String() != w3.Queries[i].Twig.String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestBranchPredicatesAppear(t *testing.T) {
	d := testDoc()
	cfg := smallCfg(KindP)
	cfg.BranchProb = 0.6
	w := Generate(d, cfg)
	branches := 0
	for _, q := range w.Queries {
		for _, n := range q.Twig.Nodes() {
			for _, s := range n.Path.Steps {
				branches += len(s.Branches)
			}
		}
	}
	if branches == 0 {
		t.Fatal("no branching predicates generated in P workload")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindP: "P", KindPV: "P+V", KindSimple: "simple", KindNegative: "negative", Kind(99): "?"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k, want)
		}
	}
}

func TestSmallDocumentWorkload(t *testing.T) {
	// The tiny bibliography fixture: the generator must still produce
	// positive queries (possibly fewer than requested).
	d := xmltree.Bibliography()
	cfg := smallCfg(KindP)
	cfg.NumQueries = 10
	cfg.MinNodes = 2
	cfg.MaxNodes = 4
	w := Generate(d, cfg)
	if len(w.Queries) == 0 {
		t.Fatal("no queries on bibliography fixture")
	}
	for _, q := range w.Queries {
		if q.Truth <= 0 {
			t.Fatalf("non-positive query: %s", q.Twig)
		}
	}
}

package workload

import (
	"bytes"
	"strings"
	"testing"

	"xsketch/internal/eval"
	"xsketch/internal/xmlgen"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := xmlgen.IMDB(xmlgen.Config{Seed: 11, Scale: 0.03})
	cfg := DefaultConfig(KindPV)
	cfg.NumQueries = 25
	w := Generate(d, cfg)

	var buf bytes.Buffer
	if err := Save(&buf, w); err != nil {
		t.Fatalf("Save: %v", err)
	}
	w2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if w2.Kind != w.Kind {
		t.Fatalf("kind %v -> %v", w.Kind, w2.Kind)
	}
	if len(w2.Queries) != len(w.Queries) {
		t.Fatalf("queries %d -> %d", len(w.Queries), len(w2.Queries))
	}
	ev := eval.New(d)
	for i := range w2.Queries {
		if w2.Queries[i].Truth != w.Queries[i].Truth {
			t.Fatalf("query %d truth %d -> %d", i, w.Queries[i].Truth, w2.Queries[i].Truth)
		}
		if w2.Queries[i].Twig.String() != w.Queries[i].Twig.String() {
			t.Fatalf("query %d rendering changed:\n%s\n%s", i, w.Queries[i].Twig, w2.Queries[i].Twig)
		}
		// The reloaded query evaluates to the recorded truth.
		if got := ev.Selectivity(w2.Queries[i].Twig); got != w2.Queries[i].Truth {
			t.Fatalf("query %d reloaded truth %d != recorded %d", i, got, w2.Queries[i].Truth)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"5 no-tab-here",
		"notanumber\tt0 in a",
		"7\tt0 in a[",
	}
	for _, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("Load(%q) succeeded, want error", src)
		}
	}
	// Blank lines and comments are tolerated.
	w, err := Load(strings.NewReader("# xsketch workload kind=P queries=1\n\n3\tt0 in a\n"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if w.Kind != KindP || len(w.Queries) != 1 || w.Queries[0].Truth != 3 {
		t.Fatalf("loaded = %+v", w)
	}
}

// Package workload generates the query workloads of the paper's
// experimental study (Section 6.1): "positive" twig queries sampled from
// the document so that their selectivity is non-zero, with 4-8 twig nodes
// per query, in four flavours:
//
//   - P: paths with branching predicates (Figure 9(a)),
//   - P+V: half the queries additionally carry one or two value predicates
//     covering a random 10% range of the value domain (Figure 9(b)),
//   - Simple: simple path expressions only, for the CST comparison
//     (Figure 9(c)),
//   - Negative: structurally plausible queries with zero selectivity.
//
// Positivity is guaranteed by construction: every twig node is grown from a
// concrete witness element of the document, so the witnesses themselves
// form a binding tuple.
package workload

package workload

import (
	"math/rand"

	"xsketch/internal/eval"
	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// Kind selects a workload flavour.
type Kind int

const (
	// KindP is the paper's P workload: branching predicates, no values.
	KindP Kind = iota
	// KindPV is the P+V workload: branching plus value predicates on half
	// the queries.
	KindPV
	// KindSimple restricts queries to simple path expressions (child axis,
	// no predicates), the CST-comparison workload.
	KindSimple
	// KindNegative generates zero-selectivity queries.
	KindNegative
)

// String names the workload kind the way the paper's experiments do.
func (k Kind) String() string {
	switch k {
	case KindP:
		return "P"
	case KindPV:
		return "P+V"
	case KindSimple:
		return "simple"
	case KindNegative:
		return "negative"
	}
	return "?"
}

// Config controls generation.
type Config struct {
	Kind Kind
	// NumQueries is the workload size (paper: 1000 for P and P+V, 500 for
	// the simple-path comparison).
	NumQueries int
	// MinNodes/MaxNodes bound the twig node count (paper: uniform 4..8).
	MinNodes, MaxNodes int
	// Seed drives the deterministic random stream.
	Seed int64
	// BranchProb is the probability of converting a grown child into a
	// branching predicate instead of a twig node (P and P+V only).
	BranchProb float64
	// DescendantProb is the probability of rooting the query at //tag
	// instead of the full label path (disabled for Simple).
	DescendantProb float64
	// MultiStepProb is the probability of extending a twig node's path by
	// an extra navigational step.
	MultiStepProb float64
	// Anchors, when non-empty, restricts twig roots to (the internal
	// elements among) these document elements. XBUILD uses this to sample
	// queries "around the regions transformed by the candidate operations"
	// (paper Section 5).
	Anchors []xmltree.NodeID
}

// DefaultConfig mirrors the paper's workload parameters for the given
// kind.
func DefaultConfig(kind Kind) Config {
	cfg := Config{
		Kind:           kind,
		NumQueries:     1000,
		MinNodes:       4,
		MaxNodes:       8,
		Seed:           1,
		BranchProb:     0.25,
		DescendantProb: 0.3,
		MultiStepProb:  0.3,
	}
	if kind == KindSimple {
		cfg.NumQueries = 500
		cfg.BranchProb = 0
		cfg.DescendantProb = 0
		cfg.MultiStepProb = 0.3
	}
	return cfg
}

// Query is a generated twig with its exact selectivity.
type Query struct {
	Twig  *twig.Query
	Truth int64
}

// Workload is a set of generated queries.
type Workload struct {
	Kind    Kind
	Queries []Query
}

// Stats summarizes a workload as in the paper's Table 2.
type Stats struct {
	// Count is the number of queries.
	Count int
	// AvgResult is the average true cardinality ("Avg. Result").
	AvgResult float64
	// AvgFanout is the average internal-twig-node fanout ("Avg. Fanout").
	AvgFanout float64
	// AvgNodes is the average twig node count.
	AvgNodes float64
	// WithValuePreds counts queries carrying at least one value predicate.
	WithValuePreds int
}

// Stats computes the workload summary.
func (w *Workload) Stats() Stats {
	var s Stats
	s.Count = len(w.Queries)
	if s.Count == 0 {
		return s
	}
	fanoutSum, fanoutN := 0.0, 0
	for _, q := range w.Queries {
		s.AvgResult += float64(q.Truth)
		s.AvgNodes += float64(q.Twig.NodeCount())
		if f := q.Twig.AvgFanout(); f > 0 {
			fanoutSum += f
			fanoutN++
		}
		if q.Twig.CountValuePreds() > 0 {
			s.WithValuePreds++
		}
	}
	s.AvgResult /= float64(s.Count)
	s.AvgNodes /= float64(s.Count)
	if fanoutN > 0 {
		s.AvgFanout = fanoutSum / float64(fanoutN)
	}
	return s
}

// Truths returns the true counts in query order.
func (w *Workload) Truths() []int64 {
	out := make([]int64, len(w.Queries))
	for i, q := range w.Queries {
		out[i] = q.Truth
	}
	return out
}

// Generate builds a workload over the document.
func Generate(d *xmltree.Document, cfg Config) *Workload {
	g := &generator{
		doc: d,
		ev:  eval.New(d),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
	}
	g.prepare()
	w := &Workload{Kind: cfg.Kind}
	attempts := 0
	maxAttempts := cfg.NumQueries * 30
	for len(w.Queries) < cfg.NumQueries && attempts < maxAttempts {
		attempts++
		var q *twig.Query
		if cfg.Kind == KindNegative {
			q = g.negativeQuery()
		} else {
			q = g.positiveQuery()
		}
		if q == nil {
			continue
		}
		truth := g.ev.Selectivity(q)
		switch cfg.Kind {
		case KindNegative:
			if truth != 0 {
				continue
			}
		default:
			if truth <= 0 {
				continue // should not happen by construction; skip defensively
			}
		}
		w.Queries = append(w.Queries, Query{Twig: q, Truth: truth})
	}
	return w
}

type generator struct {
	doc *xmltree.Document
	ev  *eval.Evaluator
	rng *rand.Rand
	cfg Config
	// anchorTags lists the tags that have internal elements; anchorsByTag
	// holds the eligible twig-root elements per tag. Sampling a tag first
	// keeps workloads spread across the schema instead of concentrating on
	// the most numerous element kind.
	anchorTags   []xmltree.TagID
	anchorsByTag map[xmltree.TagID][]xmltree.NodeID
	// childTags[tag] records which child tags occur under parents of the
	// given tag, for negative-query construction.
	childTags map[xmltree.TagID]map[xmltree.TagID]bool
	// stepWitness maps each step of the query under construction to the
	// document element it was sampled from; value predicates are centered
	// on witness values so queries stay positive.
	stepWitness map[*pathexpr.Step]xmltree.NodeID
}

func (g *generator) prepare() {
	d := g.doc
	restricted := make(map[xmltree.NodeID]bool, len(g.cfg.Anchors))
	for _, a := range g.cfg.Anchors {
		restricted[a] = true
	}
	g.childTags = make(map[xmltree.TagID]map[xmltree.TagID]bool)
	g.anchorsByTag = make(map[xmltree.TagID][]xmltree.NodeID)
	for i := 0; i < d.Len(); i++ {
		id := xmltree.NodeID(i)
		n := d.Node(id)
		if len(n.Children) == 0 {
			continue
		}
		if id != d.Root() && (len(restricted) == 0 || restricted[id]) {
			if len(g.anchorsByTag[n.Tag]) == 0 {
				g.anchorTags = append(g.anchorTags, n.Tag)
			}
			g.anchorsByTag[n.Tag] = append(g.anchorsByTag[n.Tag], id)
		}
		m := g.childTags[n.Tag]
		if m == nil {
			m = make(map[xmltree.TagID]bool)
			g.childTags[n.Tag] = m
		}
		for _, c := range n.Children {
			m[d.Node(c).Tag] = true
		}
	}
}

// node-in-progress: a twig node with the witness element that produced it.
type growth struct {
	node    *twig.Node
	witness xmltree.NodeID
}

// positiveQuery grows a twig from a random anchor element.
func (g *generator) positiveQuery() *twig.Query {
	if len(g.anchorTags) == 0 {
		return nil
	}
	d := g.doc
	tag := g.anchorTags[g.rng.Intn(len(g.anchorTags))]
	pool := g.anchorsByTag[tag]
	anchor := pool[g.rng.Intn(len(pool))]
	target := g.cfg.MinNodes + g.rng.Intn(g.cfg.MaxNodes-g.cfg.MinNodes+1)

	g.stepWitness = make(map[*pathexpr.Step]xmltree.NodeID)
	rootPath := g.rootPath(anchor)
	q := twig.New(rootPath)
	frontier := []growth{{q.Root, anchor}}
	nodes := 1
	// Fanout cap keeps twigs near the paper's ~2 average internal fanout;
	// the root cap relaxes when a shallow document leaves no other way to
	// reach the minimum node count.
	rootCap := 2
	for nodes < target {
		if len(frontier) == 0 {
			// Relax the root cap only when the minimum node count is not
			// yet met; otherwise accept the smaller twig.
			if nodes >= g.cfg.MinNodes || rootCap >= 5 {
				break
			}
			rootCap++
			frontier = append(frontier, growth{q.Root, anchor})
			continue
		}
		// Bias growth toward the most recently added node so twigs develop
		// depth rather than star shapes.
		gi := len(frontier) - 1
		if g.rng.Float64() < 0.3 {
			gi = g.rng.Intn(len(frontier))
		}
		cur := frontier[gi]
		cap := 2
		if cur.node == q.Root {
			cap = rootCap
		}
		children := d.Node(cur.witness).Children
		if len(children) == 0 || len(cur.node.Children) >= cap {
			frontier = append(frontier[:gi], frontier[gi+1:]...)
			continue
		}
		// Prefer child witnesses that have children of their own, so the
		// twig can keep growing downward.
		childWitness := children[g.rng.Intn(len(children))]
		if len(d.Node(childWitness).Children) == 0 {
			for tries := 0; tries < 3; tries++ {
				alt := children[g.rng.Intn(len(children))]
				if len(d.Node(alt).Children) > 0 {
					childWitness = alt
					break
				}
			}
		}
		// Avoid degenerate twigs that request the same child tag twice
		// under one node: drop this growth site instead.
		if g.hasChildLabel(cur.node, d.Tag(d.Node(childWitness).Tag)) {
			frontier = append(frontier[:gi], frontier[gi+1:]...)
			continue
		}
		path, finalWitness := g.growPath(childWitness)
		if path == nil {
			frontier = append(frontier[:gi], frontier[gi+1:]...)
			continue
		}
		if g.cfg.BranchProb > 0 && g.rng.Float64() < g.cfg.BranchProb {
			// Attach as a branching predicate on the parent's last step
			// instead of a new twig node. Always positive: the witness has
			// this child.
			last := cur.node.Path.Steps[len(cur.node.Path.Steps)-1]
			last.Branches = append(last.Branches, path)
			continue
		}
		n := q.AddChild(cur.node, path)
		nodes++
		frontier = append(frontier, growth{n, finalWitness})
	}
	if nodes < g.cfg.MinNodes {
		return nil
	}
	if g.cfg.Kind == KindPV && g.rng.Intn(2) == 0 {
		g.attachValuePreds(q)
	}
	return q
}

// hasChildLabel reports whether the twig node already selects the given
// label via a child twig node or a branching predicate on its final step.
func (g *generator) hasChildLabel(n *twig.Node, label string) bool {
	for _, c := range n.Children {
		if len(c.Path.Steps) > 0 && c.Path.Steps[0].Label == label {
			return true
		}
	}
	last := n.Path.Steps[len(n.Path.Steps)-1]
	for _, br := range last.Branches {
		if len(br.Steps) > 0 && br.Steps[0].Label == label {
			return true
		}
	}
	return false
}

// rootPath derives the twig root's path expression from the anchor's
// root-to-anchor label path: either the full child-axis chain or //tag.
func (g *generator) rootPath(anchor xmltree.NodeID) *pathexpr.Path {
	d := g.doc
	if g.cfg.DescendantProb > 0 && g.rng.Float64() < g.cfg.DescendantProb {
		s := &pathexpr.Step{Axis: pathexpr.Descendant, Label: d.Tag(d.Node(anchor).Tag)}
		g.stepWitness[s] = anchor
		return &pathexpr.Path{Steps: []*pathexpr.Step{s}}
	}
	// Witness chain: the elements from the root down to the anchor.
	var chain []xmltree.NodeID
	for id := anchor; id != d.Root(); id = d.Node(id).Parent {
		chain = append(chain, id)
	}
	p := &pathexpr.Path{}
	// chain is anchor-first; emit steps root-downward. The document root's
	// own tag is skipped: paths are evaluated from the root element.
	for i := len(chain) - 1; i >= 0; i-- {
		s := &pathexpr.Step{Axis: pathexpr.Child, Label: d.Tag(d.Node(chain[i]).Tag)}
		g.stepWitness[s] = chain[i]
		p.Steps = append(p.Steps, s)
	}
	if len(p.Steps) == 0 {
		return nil
	}
	return p
}

// growPath builds a (possibly multi-step) child-axis path starting at the
// given witness element, returning the path and the witness of its final
// step.
func (g *generator) growPath(witness xmltree.NodeID) (*pathexpr.Path, xmltree.NodeID) {
	d := g.doc
	first := &pathexpr.Step{Axis: pathexpr.Child, Label: d.Tag(d.Node(witness).Tag)}
	g.stepWitness[first] = witness
	p := &pathexpr.Path{Steps: []*pathexpr.Step{first}}
	cur := witness
	for g.cfg.MultiStepProb > 0 && g.rng.Float64() < g.cfg.MultiStepProb {
		children := d.Node(cur).Children
		if len(children) == 0 {
			break
		}
		next := children[g.rng.Intn(len(children))]
		s := &pathexpr.Step{Axis: pathexpr.Child, Label: d.Tag(d.Node(next).Tag)}
		g.stepWitness[s] = next
		p.Steps = append(p.Steps, s)
		cur = next
	}
	return p, cur
}

// attachValuePreds adds one or two value predicates to steps whose
// witnesses carry values. Each predicate covers a random 10% range of the
// tag's value domain positioned to include the witness value (guaranteeing
// positivity).
func (g *generator) attachValuePreds(q *twig.Query) {
	d := g.doc
	// Candidate steps: those whose witness element carries a value. The
	// predicate's 10% range is positioned to contain the witness value, so
	// the witness binding tuple remains valid and the query stays positive.
	type cand struct {
		step    *pathexpr.Step
		tag     xmltree.TagID
		witness xmltree.NodeID
	}
	var collectPath func(p *pathexpr.Path, cands []cand) []cand
	collectPath = func(p *pathexpr.Path, cands []cand) []cand {
		for _, s := range p.Steps {
			if w, ok := g.stepWitness[s]; ok && s.Value == nil && d.Node(w).HasValue {
				if tag, ok := d.LookupTag(s.Label); ok {
					cands = append(cands, cand{s, tag, w})
				}
			}
			for _, br := range s.Branches {
				cands = collectPath(br, cands)
			}
		}
		return cands
	}
	collect := func() []cand {
		var cands []cand
		q.Walk(func(n, _ *twig.Node, _ int) { cands = collectPath(n.Path, cands) })
		return cands
	}
	cands := collect()
	if len(cands) == 0 {
		// No valued step yet: extend a leaf twig node's path down to a
		// valued child of its witness (safe only at leaves, where no twig
		// children depend on the path's endpoint).
		for _, n := range q.Nodes() {
			if len(n.Children) > 0 {
				continue
			}
			last := n.Path.Steps[len(n.Path.Steps)-1]
			w, ok := g.stepWitness[last]
			if !ok {
				continue
			}
			for _, c := range d.Node(w).Children {
				if !d.Node(c).HasValue {
					continue
				}
				s := &pathexpr.Step{Axis: pathexpr.Child, Label: d.Tag(d.Node(c).Tag)}
				g.stepWitness[s] = c
				n.Path.Steps = append(n.Path.Steps, s)
				break
			}
			if cands = collect(); len(cands) > 0 {
				break
			}
		}
	}
	if len(cands) == 0 {
		// Last resort: attach a value-predicated branching predicate to a
		// node whose witness has a valued child (safe anywhere — branches
		// never move a node's endpoint).
		for _, n := range q.Nodes() {
			last := n.Path.Steps[len(n.Path.Steps)-1]
			w, ok := g.stepWitness[last]
			if !ok {
				continue
			}
			for _, c := range d.Node(w).Children {
				if !d.Node(c).HasValue {
					continue
				}
				s := &pathexpr.Step{Axis: pathexpr.Child, Label: d.Tag(d.Node(c).Tag)}
				g.stepWitness[s] = c
				last.Branches = append(last.Branches, &pathexpr.Path{Steps: []*pathexpr.Step{s}})
				break
			}
			if cands = collect(); len(cands) > 0 {
				break
			}
		}
	}
	if len(cands) == 0 {
		return
	}
	nPreds := 1 + g.rng.Intn(2)
	for i := 0; i < nPreds && len(cands) > 0; i++ {
		ci := g.rng.Intn(len(cands))
		c := cands[ci]
		cands = append(cands[:ci], cands[ci+1:]...)
		lo, hi, _ := xmltree.ValueDomain(d, c.tag)
		width := (hi - lo + 1) / 10
		if width < 1 {
			width = 1
		}
		v := d.Node(c.witness).Value
		start := v - g.rng.Int63n(width)
		if start < lo {
			start = lo
		}
		end := start + width - 1
		if end < v {
			end = v
		}
		if end > hi {
			end = hi
		}
		c.step.Value = &pathexpr.ValuePred{Lo: start, Hi: end}
	}
}

// negativeQuery builds a structurally plausible query with zero
// selectivity by growing a positive query and then retargeting one leaf to
// a tag that never occurs under its parent tag.
func (g *generator) negativeQuery() *twig.Query {
	q := g.positiveQuery()
	if q == nil {
		return nil
	}
	d := g.doc
	// Pick a leaf twig node and change its final step's label to a tag that
	// exists in the document but never under the leaf's parent-step tag.
	var leaves []*twig.Node
	q.Walk(func(n, _ *twig.Node, _ int) {
		if len(n.Children) == 0 {
			leaves = append(leaves, n)
		}
	})
	leaf := leaves[g.rng.Intn(len(leaves))]
	steps := leaf.Path.Steps
	last := steps[len(steps)-1]
	var parentTag xmltree.TagID
	ok := false
	if len(steps) >= 2 {
		parentTag, ok = d.LookupTag(steps[len(steps)-2].Label)
	}
	if !ok {
		// Single-step leaf path: the parent is the twig parent's final
		// step; fall back to the document-wide tag set.
		parentTag, ok = d.LookupTag(last.Label)
		if !ok {
			return nil
		}
	}
	under := g.childTags[parentTag]
	allTags := d.Tags()
	// Try a few random tags that never occur under parentTag.
	for tries := 0; tries < 20; tries++ {
		t := allTags[g.rng.Intn(len(allTags))]
		id, _ := d.LookupTag(t)
		if under[id] || t == last.Label {
			continue
		}
		last.Label = t
		last.Value = nil
		last.Branches = nil
		return q
	}
	return nil
}

package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// A Logger writes structured JSON log lines: one object per line with
// fixed "ts", "level" and "msg" keys followed by the caller's key/value
// pairs in argument order (the encoder preserves ordering, unlike
// marshaling a map). A nil Logger discards everything, so call sites never
// need a nil check.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
	// base fields are appended to every line (e.g. component=xserve).
	base []any
}

// NewLogger returns a logger writing to w with the given base key/value
// pairs. A nil writer yields a logger that discards everything.
func NewLogger(w io.Writer, baseKV ...any) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w, base: baseKV}
}

// With returns a child logger whose lines carry the additional key/value
// pairs (typically a per-request trace ID).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{w: l.w, base: append(append([]any(nil), l.base...), kv...)}
}

// Info logs at level info.
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Error logs at level error.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

func (l *Logger) log(level, msg string, kv []any) {
	if l == nil {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	buf = appendJSON(buf, time.Now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = appendJSON(buf, level)
	buf = append(buf, `,"msg":`...)
	buf = appendJSON(buf, msg)
	buf = appendKV(buf, l.base)
	buf = appendKV(buf, kv)
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(buf)
}

// appendKV appends ,"k":v pairs; a trailing odd value is paired with the
// key "extra" rather than dropped.
func appendKV(buf []byte, kv []any) []byte {
	for i := 0; i+1 < len(kv); i += 2 {
		buf = append(buf, ',')
		buf = appendJSON(buf, fmt.Sprint(kv[i]))
		buf = append(buf, ':')
		buf = appendJSON(buf, kv[i+1])
	}
	if len(kv)%2 != 0 {
		buf = append(buf, `,"extra":`...)
		buf = appendJSON(buf, kv[len(kv)-1])
	}
	return buf
}

// appendJSON appends v's JSON encoding; values json cannot encode (e.g.
// channels) degrade to their fmt rendering instead of dropping the line.
func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}

// NewTraceID returns a 16-byte random trace ID in hex, suitable for
// correlating a request's log lines and response header.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed ID rather than panicking in the serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

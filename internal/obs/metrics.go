package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds metric families and renders them in the Prometheus text
// exposition format. Families render in registration order; series within a
// family render sorted by label string, so two scrapes of an unchanged
// registry produce byte-identical output (modulo the counter values).
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// family is one named metric family: HELP/TYPE header plus its series.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          map[string]seriesWriter // keyed by rendered label string
}

// seriesWriter renders one series (one or more exposition lines).
type seriesWriter interface {
	writeSeries(w io.Writer, name, labels string)
}

func (r *Registry) addFamily(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric family " + name)
	}
	r.names[name] = true
	f := &family{name: name, help: help, typ: typ, series: make(map[string]seriesWriter)}
	r.families = append(r.families, f)
	return f
}

func (f *family) add(labels string, s seriesWriter) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[labels]; ok {
		panic("obs: duplicate series " + f.name + labels)
	}
	f.series[labels] = s
}

// WriteTo renders every family in the Prometheus text format. It always
// returns a nil error (the signature matches io.WriterTo uses); write errors
// surface through the underlying writer's state.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	cw := &countWriter{w: w}
	for _, f := range families {
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]seriesWriter, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, s := range series {
			s.writeSeries(cw, f.name, keys[i])
		}
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Labels renders key/value pairs as a Prometheus label set, e.g.
// Labels("sketch", "imdb") == `{sketch="imdb"}`. Pairs must alternate
// key, value; values are escaped. An empty pair list renders as "".
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: odd label pair count")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	// 'g' with precision -1 is the shortest representation that parses
	// back to the same float64, so scrapes never lose precision.
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// A Counter is a monotonically increasing sample backed by an atomic.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative to keep the counter monotone).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// NewCounter registers an unlabeled counter family with a single series.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.addFamily(name, help, "counter")
	c := &Counter{}
	f.add("", c)
	return c
}

// A CounterVec is a counter family with one series per label set.
type CounterVec struct {
	f    *family
	keys []string
	mu   sync.Mutex
	got  map[string]*Counter
}

// NewCounterVec registers a counter family whose series are distinguished
// by the given label keys.
func (r *Registry) NewCounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{f: r.addFamily(name, help, "counter"), keys: keys, got: make(map[string]*Counter)}
}

// With returns the counter for the given label values (one per key),
// creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.keys) {
		panic("obs: label value count mismatch for " + v.f.name)
	}
	pairs := make([]string, 0, 2*len(values))
	for i, k := range v.keys {
		pairs = append(pairs, k, values[i])
	}
	ls := Labels(pairs...)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.got[ls]
	if !ok {
		c = &Counter{}
		v.got[ls] = c
		v.f.add(ls, c)
	}
	return c
}

// A Gauge is a sample that can go up and down, stored as atomic float bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g.Value()))
}

// NewGauge registers an unlabeled gauge family with a single series.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.addFamily(name, help, "gauge")
	g := &Gauge{}
	f.add("", g)
	return g
}

// A GaugeVec is a gauge family with one series per label set (e.g. the
// router's per-backend health flags keyed by backend address).
type GaugeVec struct {
	f    *family
	keys []string
	mu   sync.Mutex
	got  map[string]*Gauge
}

// NewGaugeVec registers a gauge family whose series are distinguished by
// the given label keys.
func (r *Registry) NewGaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{f: r.addFamily(name, help, "gauge"), keys: keys, got: make(map[string]*Gauge)}
}

// With returns the gauge for the given label values (one per key),
// creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.keys) {
		panic("obs: label value count mismatch for " + v.f.name)
	}
	pairs := make([]string, 0, 2*len(values))
	for i, k := range v.keys {
		pairs = append(pairs, k, values[i])
	}
	ls := Labels(pairs...)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.got[ls]
	if !ok {
		g = &Gauge{}
		v.got[ls] = g
		v.f.add(ls, g)
	}
	return g
}

// funcSeries samples a callback at scrape time.
type funcSeries func() float64

func (fn funcSeries) writeSeries(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(fn()))
}

// A FuncFamily is a metric family whose series values are read from
// callbacks at scrape time — the natural shape for polling an external
// counter block such as xsketch's EstimatorStats.
type FuncFamily struct {
	f *family
}

// NewFuncFamily registers a callback-backed family. typ is the Prometheus
// type to advertise ("counter" for monotone sources, "gauge" otherwise).
func (r *Registry) NewFuncFamily(name, help, typ string) *FuncFamily {
	return &FuncFamily{f: r.addFamily(name, help, typ)}
}

// Attach adds one series whose value is fn(), labeled by the given
// key/value pairs (alternating, possibly empty).
func (ff *FuncFamily) Attach(fn func() float64, labelPairs ...string) {
	ff.f.add(Labels(labelPairs...), funcSeries(fn))
}

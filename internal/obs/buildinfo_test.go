package obs

import (
	"bytes"
	"regexp"
	"testing"
)

// TestRegisterBuildInfo checks the build-metadata gauge renders as the
// Prometheus build_info convention: constant 1 with version and
// go_version labels, declared as a gauge.
func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	var b bytes.Buffer
	r.WriteTo(&b)
	out := b.String()
	if !regexp.MustCompile(`(?m)^# TYPE xserve_build_info gauge$`).MatchString(out) {
		t.Errorf("missing gauge TYPE line:\n%s", out)
	}
	series := regexp.MustCompile(`(?m)^xserve_build_info\{version="[^"]+",go_version="go[^"]+"\} 1$`)
	if !series.MatchString(out) {
		t.Errorf("build info series malformed:\n%s", out)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "a counter")
	g := r.NewGauge("x_gauge", "a gauge")
	c.Inc()
	c.Add(4)
	g.Set(2.5)
	g.Add(-1)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
	var b bytes.Buffer
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP x_total a counter\n", "# TYPE x_total counter\n", "x_total 5\n",
		"# TYPE x_gauge gauge\n", "x_gauge 1.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("req_total", "requests", "path", "code")
	v.With("/estimate", "200").Add(3)
	v.With("/estimate", "400").Inc()
	if got := v.With("/estimate", "200"); got.Value() != 3 {
		t.Fatalf("With returned a fresh counter, value %d", got.Value())
	}
	var b bytes.Buffer
	r.WriteTo(&b)
	out := b.String()
	if !strings.Contains(out, `req_total{path="/estimate",code="200"} 3`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
	if !strings.Contains(out, `req_total{path="/estimate",code="400"} 1`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
}

func TestGaugeVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("backend_up", "per-backend health", "backend")
	v.With("http://a:1").Set(1)
	v.With("http://b:2").Set(0)
	v.With("http://a:1").Add(-1)
	if got := v.With("http://a:1").Value(); got != 0 {
		t.Fatalf("With returned a fresh gauge, value %v", got)
	}
	var b bytes.Buffer
	r.WriteTo(&b)
	out := b.String()
	if !strings.Contains(out, "# TYPE backend_up gauge\n") {
		t.Errorf("missing gauge TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `backend_up{backend="http://a:1"} 0`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
	if !strings.Contains(out, `backend_up{backend="http://b:2"} 0`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Labels("k", "a\"b\\c\nd")
	want := `{k="a\"b\\c\nd"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
}

func TestFuncFamily(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	ff := r.NewFuncFamily("poll_total", "polled", "counter")
	ff.Attach(func() float64 { return n }, "sketch", "imdb")
	var b bytes.Buffer
	r.WriteTo(&b)
	if !strings.Contains(b.String(), `poll_total{sketch="imdb"} 7`) {
		t.Fatalf("missing func series:\n%s", b.String())
	}
	n = 8
	b.Reset()
	r.WriteTo(&b)
	if !strings.Contains(b.String(), `poll_total{sketch="imdb"} 8`) {
		t.Fatalf("func series not re-sampled:\n%s", b.String())
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b bytes.Buffer
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramVecRendering(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("stage_seconds", "per-stage latency", []float64{0.1, 1}, "stage")
	v.With("expand").Observe(0.05)
	v.With("embed").Observe(0.5)
	v.With("embed").Observe(5)
	if v.With("embed") != v.With("embed") {
		t.Fatal("With not memoized per label set")
	}
	var b bytes.Buffer
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`stage_seconds_bucket{stage="embed",le="0.1"} 0`,
		`stage_seconds_bucket{stage="embed",le="1"} 1`,
		`stage_seconds_bucket{stage="embed",le="+Inf"} 2`,
		`stage_seconds_count{stage="embed"} 2`,
		`stage_seconds_bucket{stage="expand",le="0.1"} 1`,
		`stage_seconds_count{stage="expand"} 1`,
		`stage_seconds_sum{stage="expand"} 0.05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Series render sorted by label string, so "embed" precedes "expand".
	if strings.Index(out, `stage="embed"`) > strings.Index(out, `stage="expand"`) {
		t.Fatalf("series not sorted by label string:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "q", []float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %v, want 0", h.Quantile(0.5))
	}
	// 100 samples uniform in (0,1]: every quantile interpolates inside the
	// first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.5 (rank interpolation in [0,1])", q)
	}
	// Push 100 samples beyond the last bound: high quantiles clamp to the
	// largest finite bound.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %v, want clamp to 4", q)
	}
}

// TestHistogramQuantileClampsQ is the regression test for out-of-range q:
// q < 0 used to interpolate below the bucket's lower edge (negative
// latencies), q > 1 walked past every bucket, and NaN poisoned the rank
// arithmetic. All now clamp to [0, 1].
func TestHistogramQuantileClampsQ(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("clamp_seconds", "q", []float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	lo, hi := h.Quantile(0), h.Quantile(1)
	for _, q := range []float64{-1, -0.001, 1.001, 50, math.NaN(), math.Inf(1), math.Inf(-1)} {
		got := h.Quantile(q)
		if math.IsNaN(got) || got < lo || got > hi {
			t.Errorf("Quantile(%v) = %v, want within [%v, %v]", q, got, lo, hi)
		}
	}
	if got := h.Quantile(-5); got != lo {
		t.Errorf("Quantile(-5) = %v, want Quantile(0) = %v", got, lo)
	}
	if got := h.Quantile(5); got != hi {
		t.Errorf("Quantile(5) = %v, want Quantile(1) = %v", got, hi)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("c_seconds", "c", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 4000 {
		t.Fatalf("count=%d sum=%v, want 8000/4000", h.Count(), h.Sum())
	}
}

func TestLoggerJSONLines(t *testing.T) {
	var b bytes.Buffer
	l := NewLogger(&b, "component", "xserve")
	l.With("trace_id", "abc").Info("estimate done", "sketch", "imdb", "estimate", 12.5)
	l.Error("boom", "code", 500)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v\n%s", err, lines[0])
	}
	if first["level"] != "info" || first["component"] != "xserve" ||
		first["trace_id"] != "abc" || first["estimate"] != 12.5 {
		t.Fatalf("unexpected fields: %v", first)
	}
	// Fixed keys come first and caller keys preserve order.
	if !strings.HasPrefix(lines[0], `{"ts":`) {
		t.Fatalf("ts not first: %s", lines[0])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if second["level"] != "error" {
		t.Fatalf("level = %v", second["level"])
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored")
	l.With("k", "v").Error("also ignored")
	if got := NewLogger(nil); got != nil {
		t.Fatalf("NewLogger(nil) = %v, want nil", got)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || a == b {
		t.Fatalf("trace ids %q %q", a, b)
	}
}

// TestHistogramVecLabelOrdering pins the series-identity contract the
// accuracy auditor's per-sketch histograms rely on: labels render in
// declaration order with the bucket's le last, and With maps values to
// keys positionally, so swapped values are a different series.
func TestHistogramVecLabelOrdering(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("win_qerror", "windowed q-error", []float64{1, 10}, "sketch", "stat")
	v.With("imdb", "mean").Observe(0.5)
	v.With("mean", "imdb").Observe(20) // swapped values: distinct series
	var b bytes.Buffer
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`win_qerror_bucket{sketch="imdb",stat="mean",le="1"} 1`,
		`win_qerror_bucket{sketch="imdb",stat="mean",le="+Inf"} 1`,
		`win_qerror_count{sketch="imdb",stat="mean"} 1`,
		`win_qerror_bucket{sketch="mean",stat="imdb",le="10"} 0`,
		`win_qerror_count{sketch="mean",stat="imdb"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if v.With("imdb", "mean").Count() != 1 || v.With("mean", "imdb").Count() != 1 {
		t.Error("swapped label values shared a histogram")
	}
}

package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo registers the xserve_build_info family: a constant-1
// func-backed gauge whose labels carry the binary's module version and Go
// toolchain, the Prometheus convention for joining build metadata onto
// other series. Both serve and router modes register it, so a fleet
// dashboard can group replicas by rollout version.
func RegisterBuildInfo(r *Registry) {
	version := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	r.NewFuncFamily("xserve_build_info",
		"Build metadata as labels; the value is always 1.", "gauge").
		Attach(func() float64 { return 1 }, "version", version, "go_version", runtime.Version())
}

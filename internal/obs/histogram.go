package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets spans 100µs to 10s, the useful range for twig
// estimation latencies: sub-millisecond for cached single queries up to
// seconds for cold paper-scale batches.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// A Histogram counts observations into fixed buckets and tracks their sum,
// rendering as a Prometheus histogram (cumulative `_bucket` series plus
// `_sum` and `_count`). All updates are atomic; Observe never allocates.
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, ascending; an
	// implicit +Inf bucket follows.
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, non-cumulative
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// checkBounds validates ascending bucket bounds, defaulting nil to
// DefaultLatencyBuckets.
func checkBounds(name string, bounds []float64) []float64 {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending for " + name)
		}
	}
	return bounds
}

// NewHistogram registers a histogram family with the given ascending
// bucket upper bounds (nil selects DefaultLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	bounds = checkBounds(name, bounds)
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	f := r.addFamily(name, help, "histogram")
	f.add("", h)
	return h
}

// A HistogramVec is a histogram family with one histogram per label set
// (e.g. per-stage estimation latencies keyed by stage name).
type HistogramVec struct {
	f      *family
	keys   []string
	bounds []float64
	mu     sync.Mutex
	got    map[string]*Histogram
}

// NewHistogramVec registers a histogram family whose series are
// distinguished by the given label keys; every member histogram shares the
// same bucket bounds (nil selects DefaultLatencyBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	return &HistogramVec{
		f:      r.addFamily(name, help, "histogram"),
		keys:   keys,
		bounds: checkBounds(name, bounds),
		got:    make(map[string]*Histogram),
	}
}

// With returns the histogram for the given label values (one per key),
// creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.keys) {
		panic("obs: label value count mismatch for " + v.f.name)
	}
	pairs := make([]string, 0, 2*len(values))
	for i, k := range v.keys {
		pairs = append(pairs, k, values[i])
	}
	ls := Labels(pairs...)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.got[ls]
	if !ok {
		h = &Histogram{bounds: v.bounds, counts: make([]atomic.Uint64, len(v.bounds)+1)}
		v.got[ls] = h
		v.f.add(ls, h)
	}
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile from the bucket counts by linear
// interpolation inside the selected bucket, the same estimate
// Prometheus's histogram_quantile computes server-side. q is clamped to
// [0, 1] (NaN counts as 0), so out-of-range inputs can never interpolate
// past a bucket edge into negative or inflated values. It returns 0 when
// nothing has been observed; samples landing in the +Inf bucket clamp to
// the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if !(q > 0) { // catches q <= 0 and NaN
		q = 0
	} else if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c < rank || c == 0 {
			cum += c
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: no upper bound to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*((rank-cum)/c)
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) writeSeries(w io.Writer, name, labels string) {
	// The cumulative bucket series splice `le` into the family labels
	// (last, matching Prometheus client output).
	bucketLabels := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(formatValue(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

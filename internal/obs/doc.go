// Package obs is the observability layer shared by the long-running
// entry points (most prominently cmd/xserve via internal/serve): a small,
// dependency-free metrics registry rendering the Prometheus text
// exposition format, plus structured JSON logging with trace IDs.
//
// The registry supports four series shapes: Counter / CounterVec
// (monotone, atomic), Gauge (atomic float), Histogram (fixed buckets with
// atomic counts, cumulative `_bucket`/`_sum`/`_count` rendering and
// server-side Quantile estimation), and FuncFamily (values sampled from a
// callback at scrape time — the shape used to poll a Sketch's
// EstimatorStats without the server owning the counters).
//
// Everything here is safe for concurrent use and deliberately tiny: the
// repo's north star is a stdlib-only production service, so this package
// implements just enough of the Prometheus data model for the SERVING.md
// metrics catalog, not a general client library.
package obs

// Package cst reimplements the Correlated Suffix Trees of Chen et al.
// ("Counting Twig Matches in a Tree", ICDE 2001), the baseline of the
// paper's Figure 9(c). No open-source artifact of CSTs exists; this
// implementation follows the published description:
//
//   - a trie over label paths (anchored root paths plus bounded-length
//     path suffixes) with per-node occurrence counts;
//   - set hashing: each trie node carries a min-hash signature of the set
//     of parents of its matching elements, used to correlate sibling
//     branches of a twig (the "MOSH" family of estimators; we implement the
//     P-MOSH flavour the paper reports as most accurate);
//   - greedy pruning of low-frequency trie nodes down to a space budget,
//     with pruned mass pooled into per-parent star counts used as a uniform
//     fallback — exactly the rigidity the paper contrasts with XBUILD's
//     error-driven refinement.
//
// As in the paper's comparison, the CST is built on path structure only
// (element values ignored) and estimates twig queries with simple path
// expressions; unsupported features (value predicates, descendant steps
// below the root) degrade gracefully by ignoring the predicate.
package cst

package cst

import (
	"math"
	"testing"

	"xsketch/internal/eval"
	"xsketch/internal/metrics"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
)

func bibCST() *CST {
	return Build(xmltree.Bibliography(), DefaultConfig())
}

func TestBuildCounts(t *testing.T) {
	c := bibCST()
	cases := []struct {
		labels []string
		want   float64
	}{
		{[]string{"author"}, 3},
		{[]string{"author", "paper"}, 4},
		{[]string{"author", "paper", "keyword"}, 5},
		{[]string{"author", "book"}, 1},
		{[]string{"author", "book", "title"}, 1},
	}
	for _, cse := range cases {
		if got := c.Count(cse.labels); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("Count(%v) = %v, want %v", cse.labels, got, cse.want)
		}
	}
	if got := c.Count([]string{"magazine"}); got != 0 {
		t.Errorf("Count(missing) = %v", got)
	}
}

func TestSuffixCounts(t *testing.T) {
	c := bibCST()
	// Unanchored suffix [title] counts all titles (paper + book).
	if got := c.suffixCount([]string{"title"}); got != 5 {
		t.Errorf("suffixCount(title) = %v, want 5", got)
	}
	if got := c.suffixCount([]string{"book", "title"}); got != 1 {
		t.Errorf("suffixCount(book/title) = %v, want 1", got)
	}
	if got := c.suffixCount([]string{"paper", "title"}); got != 4 {
		t.Errorf("suffixCount(paper/title) = %v, want 4", got)
	}
}

func TestEstimateChainQueries(t *testing.T) {
	c := bibCST()
	d := xmltree.Bibliography()
	ev := eval.New(d)
	for _, src := range []string{
		"t0 in author",
		"t0 in author/paper",
		"t0 in author/paper/keyword",
		"t0 in author/book/title",
	} {
		q := twig.MustParse(src)
		got := c.EstimateQuery(q)
		want := float64(ev.Selectivity(q))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("EstimateQuery(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestEstimateDescendantRoot(t *testing.T) {
	c := bibCST()
	q := twig.MustParse("t0 in //title")
	if got := c.EstimateQuery(q); math.Abs(got-5) > 1e-9 {
		t.Errorf("//title = %v, want 5", got)
	}
}

func TestEstimateBranchingTwig(t *testing.T) {
	c := bibCST()
	d := xmltree.Bibliography()
	ev := eval.New(d)
	q := twig.MustParse("t0 in author, t1 in t0/paper, t2 in t0/name")
	got := c.EstimateQuery(q)
	want := float64(ev.Selectivity(q)) // 4
	// The estimate need not be exact (it relies on parent-fraction and
	// fanout uniformity) but must be in the right ballpark.
	if got < want/2 || got > want*2 {
		t.Errorf("branching twig = %v, want near %v", got, want)
	}
	// Twig with a rare branch: author with book AND paper.
	q2 := twig.MustParse("t0 in author, t1 in t0/book, t2 in t0/paper")
	got2 := c.EstimateQuery(q2)
	truth2 := float64(ev.Selectivity(q2)) // 1
	if got2 <= 0 || got2 > 4*truth2+1 {
		t.Errorf("book+paper twig = %v, truth %v", got2, truth2)
	}
}

func TestEstimateZeroForMissing(t *testing.T) {
	c := bibCST()
	for _, src := range []string{
		"t0 in magazine",
		"t0 in author, t1 in t0/magazine",
	} {
		if got := c.EstimateQuery(twig.MustParse(src)); got != 0 {
			t.Errorf("EstimateQuery(%q) = %v, want 0", src, got)
		}
	}
}

func TestPruneReducesSizeAndKeepsEstimates(t *testing.T) {
	d := xmlgen.SwissProt(xmlgen.Config{Seed: 4, Scale: 0.03})
	c := Build(d, DefaultConfig())
	full := c.SizeBytes()
	if full == 0 {
		t.Fatal("empty CST")
	}
	budget := full / 2
	c.Prune(budget)
	if c.SizeBytes() > budget {
		t.Fatalf("Prune left %d bytes > budget %d", c.SizeBytes(), budget)
	}
	// Frequent anchored paths survive pruning.
	if got := c.Count([]string{"entry"}); got == 0 {
		t.Fatal("frequent path pruned away")
	}
}

func TestPrunedFallbackNonZero(t *testing.T) {
	// After heavy pruning, estimates for pruned paths use the star pool.
	d := xmlgen.SwissProt(xmlgen.Config{Seed: 4, Scale: 0.03})
	c := Build(d, DefaultConfig())
	c.Prune(c.SizeBytes() / 8)
	w := workload.Generate(d, func() workload.Config {
		cfg := workload.DefaultConfig(workload.KindSimple)
		cfg.NumQueries = 30
		return cfg
	}())
	nonzero := 0
	for _, q := range w.Queries {
		if c.EstimateQuery(q.Twig) > 0 {
			nonzero++
		}
	}
	if nonzero < len(w.Queries)/2 {
		t.Fatalf("only %d of %d pruned estimates nonzero", nonzero, len(w.Queries))
	}
}

func TestCSTAccuracyOnSimpleWorkload(t *testing.T) {
	// Unpruned CST on a small document: average error on simple-path twigs
	// should be moderate (it is a real estimator, not a stub).
	d := xmlgen.XMark(xmlgen.Config{Seed: 6, Scale: 0.02})
	c := Build(d, DefaultConfig())
	wcfg := workload.DefaultConfig(workload.KindSimple)
	wcfg.NumQueries = 50
	w := workload.Generate(d, wcfg)
	if len(w.Queries) < 20 {
		t.Fatalf("workload too small: %d", len(w.Queries))
	}
	results := make([]metrics.Result, len(w.Queries))
	for i, q := range w.Queries {
		results[i] = metrics.Result{Truth: q.Truth, Estimate: c.EstimateQuery(q.Twig)}
	}
	s := metrics.Evaluate(results, 10)
	t.Logf("unpruned CST on XMark: %s", s)
	if s.AvgError > 1.5 {
		t.Fatalf("unpruned CST error %.0f%% implausibly high", s.AvgError*100)
	}
}

func TestJaccardAndJoint(t *testing.T) {
	a := []uint64{1, 2, 3, 4}
	b := []uint64{1, 2, 9, 9}
	if got := jaccard(a, b); got != 0.5 {
		t.Fatalf("jaccard = %v", got)
	}
	if got := jaccard(nil, nil); got != 0 {
		t.Fatalf("jaccard(nil) = %v", got)
	}
	// Identical signatures: intersection estimate equals the smaller set.
	c := &CST{cfg: DefaultConfig()}
	frac := c.jointParentFraction([]branchStat{
		{parents: 10, sig: a},
		{parents: 10, sig: a},
	}, 20)
	if math.Abs(frac-0.5) > 1e-9 {
		t.Fatalf("joint fraction = %v, want 0.5", frac)
	}
	// Disjoint signatures: near-zero intersection.
	dsig := []uint64{7, 8, 11, 12}
	frac2 := c.jointParentFraction([]branchStat{
		{parents: 10, sig: a},
		{parents: 10, sig: dsig},
	}, 20)
	if frac2 > 0.1 {
		t.Fatalf("disjoint joint fraction = %v", frac2)
	}
}

func TestPruneDeterminism(t *testing.T) {
	d := xmlgen.IMDB(xmlgen.Config{Seed: 8, Scale: 0.02})
	c1 := Build(d, DefaultConfig())
	c2 := Build(d, DefaultConfig())
	c1.Prune(c1.SizeBytes() / 3)
	c2.Prune(c2.SizeBytes() / 3)
	if c1.NumNodes() != c2.NumNodes() {
		t.Fatalf("nondeterministic pruning: %d vs %d nodes", c1.NumNodes(), c2.NumNodes())
	}
}

func TestSizeBytesScalesWithSignature(t *testing.T) {
	d := xmltree.Bibliography()
	small := Build(d, Config{MaxSuffix: 2, SignatureSize: 2, NodeBytes: 4, CountBytes: 4, HashBytes: 4})
	big := Build(d, Config{MaxSuffix: 2, SignatureSize: 16, NodeBytes: 4, CountBytes: 4, HashBytes: 4})
	if small.SizeBytes() >= big.SizeBytes() {
		t.Fatalf("size %d !< %d", small.SizeBytes(), big.SizeBytes())
	}
}

package cst

import (
	"hash/fnv"
	"sort"

	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// anchor is the synthetic label marking paths anchored at the document
// root.
const anchor = "^"

// Config controls CST construction.
type Config struct {
	// MaxSuffix bounds the length of unanchored path suffixes inserted per
	// element (the trie's Markov order).
	MaxSuffix int
	// SignatureSize is the number of min-hash values per trie node.
	SignatureSize int
	// NodeBytes, CountBytes and HashBytes price the stored trie for budget
	// comparisons with XSKETCH synopses.
	NodeBytes, CountBytes, HashBytes int
}

// DefaultConfig mirrors a compact CST: order-3 suffixes, 4-hash signatures
// with 2-byte stored hashes (set-hashing signatures are kept small so the
// trie can afford nodes at tight budgets).
func DefaultConfig() Config {
	return Config{MaxSuffix: 3, SignatureSize: 4, NodeBytes: 4, CountBytes: 4, HashBytes: 2}
}

// CST is a pruned correlated suffix tree.
type CST struct {
	cfg     Config
	root    *tnode
	rootTag string // the document root's tag, implied by anchored lookups
}

type tnode struct {
	label    string
	count    int
	parents  int      // number of distinct document parents of the matching elements
	sig      []uint64 // min-hash signature of the parent set
	children map[string]*tnode
	parent   *tnode
	// starCount and starKinds pool the mass of pruned children for the
	// uniform fallback.
	starCount int
	starKinds int
}

func newTnode(label string, parent *tnode, sigK int) *tnode {
	sig := make([]uint64, sigK)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	return &tnode{label: label, parent: parent, sig: sig, children: map[string]*tnode{}}
}

// Build constructs the unpruned CST for a document.
func Build(d *xmltree.Document, cfg Config) *CST {
	if cfg.MaxSuffix < 1 {
		cfg.MaxSuffix = 1
	}
	if cfg.SignatureSize < 1 {
		cfg.SignatureSize = 1
	}
	t := &CST{
		cfg:     cfg,
		root:    newTnode("", nil, cfg.SignatureSize),
		rootTag: d.Tag(d.Node(d.Root()).Tag),
	}
	parentSets := map[*tnode]map[xmltree.NodeID]struct{}{}

	insert := func(labels []string, elem, parent xmltree.NodeID) {
		cur := t.root
		for _, l := range labels {
			next := cur.children[l]
			if next == nil {
				next = newTnode(l, cur, cfg.SignatureSize)
				cur.children[l] = next
			}
			cur = next
		}
		cur.count++
		set := parentSets[cur]
		if set == nil {
			set = map[xmltree.NodeID]struct{}{}
			parentSets[cur] = set
		}
		set[parent] = struct{}{}
		for i := 0; i < cfg.SignatureSize; i++ {
			h := saltedHash(uint64(parent), uint64(i))
			if h < cur.sig[i] {
				cur.sig[i] = h
			}
		}
	}

	for i := 0; i < d.Len(); i++ {
		id := xmltree.NodeID(i)
		tags := d.PathTags(id)
		labels := make([]string, 0, len(tags)+1)
		labels = append(labels, anchor)
		for _, tg := range tags {
			labels = append(labels, d.Tag(tg))
		}
		parent := d.Node(id).Parent
		// Anchored full path (with root marker).
		insert(labels, id, parent)
		// Unanchored suffixes up to MaxSuffix, skipping the marker.
		bare := labels[1:]
		for l := 1; l <= cfg.MaxSuffix && l <= len(bare); l++ {
			insert(bare[len(bare)-l:], id, parent)
		}
	}
	for n, set := range parentSets {
		n.parents = len(set)
	}
	return t
}

// saltedHash mixes a value with a salt (64-bit FNV-1a over both words).
func saltedHash(v, salt uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
		buf[8+i] = byte(salt >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// NumNodes returns the number of trie nodes (excluding the root).
func (t *CST) NumNodes() int {
	n := -1 // skip root
	var rec func(*tnode)
	rec = func(x *tnode) {
		n++
		for _, c := range x.children {
			rec(c)
		}
	}
	rec(t.root)
	return n
}

// SizeBytes prices the stored trie: per node, a label reference, the count,
// the parent count, the star pool and the signature.
func (t *CST) SizeBytes() int {
	per := t.cfg.NodeBytes + 2*t.cfg.CountBytes + t.cfg.CountBytes +
		t.cfg.SignatureSize*t.cfg.HashBytes
	return t.NumNodes() * per
}

// Prune greedily removes the lowest-count leaf nodes until the trie fits
// the byte budget; the pruned mass pools into the parent's star counters.
func (t *CST) Prune(budgetBytes int) {
	for t.SizeBytes() > budgetBytes {
		leaf := t.smallestLeaf()
		if leaf == nil {
			return
		}
		p := leaf.parent
		delete(p.children, leaf.label)
		p.starCount += leaf.count + leaf.starCount
		p.starKinds += 1 + leaf.starKinds
	}
}

// smallestLeaf returns the leaf (non-root) trie node with the smallest
// count, breaking ties toward deeper nodes and lexicographically for
// determinism.
func (t *CST) smallestLeaf() *tnode {
	var best *tnode
	bestDepth := -1
	var rec func(x *tnode, depth int)
	rec = func(x *tnode, depth int) {
		if len(x.children) == 0 && x.parent != nil {
			if best == nil || x.count < best.count ||
				(x.count == best.count && depth > bestDepth) ||
				(x.count == best.count && depth == bestDepth && x.label < best.label) {
				best = x
				bestDepth = depth
			}
			return
		}
		keys := make([]string, 0, len(x.children))
		for k := range x.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rec(x.children[k], depth+1)
		}
	}
	rec(t.root, 0)
	return best
}

// lookupStats resolves a label sequence to (count, parents, signature,
// exact). When the walk falls off the pruned trie it returns the uniform
// star fallback and exact = false; a total miss yields zeros.
func (t *CST) lookupStats(labels []string) (count, parents float64, sig []uint64, exact bool) {
	cur := t.root
	for _, l := range labels {
		next := cur.children[l]
		if next == nil {
			if cur.starKinds > 0 {
				// Uniform fallback: pruned mass spread evenly over pruned
				// kinds; deeper labels cannot be followed, so assume the
				// remaining steps retain the mass (the CST's uniformity
				// assumption).
				c := float64(cur.starCount) / float64(cur.starKinds)
				return c, c, nil, false
			}
			return 0, 0, nil, false
		}
		cur = next
	}
	return float64(cur.count), float64(cur.parents), cur.sig, true
}

// Count estimates the number of elements reached by a root path given as a
// label sequence relative to the document root (the twig-root convention),
// using maximal overlap parsing: the longest anchored prefix found in the
// trie extended by suffix-conditional probabilities.
func (t *CST) Count(labels []string) float64 {
	// Absolute-style paths that start with the root tag denote the root
	// element itself; drop the redundant step.
	if len(labels) > 0 && labels[0] == t.rootTag {
		labels = labels[1:]
	}
	if len(labels) == 0 {
		return 1
	}
	full := append([]string{anchor, t.rootTag}, labels...)
	if c, _, _, ok := t.lookupStats(full); ok || c > 0 {
		return c
	}
	// Maximal overlap: find the longest prefix with an exact count, then
	// extend with conditional suffix estimates.
	best := 0
	var bestCount float64
	for i := len(full); i >= 1; i-- {
		if c, _, _, ok := t.lookupStats(full[:i]); ok {
			best = i
			bestCount = c
			break
		}
	}
	if best == 0 {
		return 0
	}
	est := bestCount
	for j := best; j < len(full); j++ {
		est *= t.condProb(full[:j+1])
		if est == 0 {
			return 0
		}
	}
	return est
}

// condProb estimates P(label_j | preceding window) from unanchored suffix
// counts of length up to MaxSuffix.
func (t *CST) condProb(prefix []string) float64 {
	// Drop the anchor for suffix lookups.
	bare := prefix
	if len(bare) > 0 && bare[0] == anchor {
		bare = bare[1:]
	}
	if len(bare) == 0 {
		return 0
	}
	for l := t.cfg.MaxSuffix; l >= 1; l-- {
		if l > len(bare) {
			continue
		}
		den, _, _, okDen := t.lookupStats(bare[len(bare)-l : len(bare)-1])
		num, _, _, okNum := t.lookupStats(bare[len(bare)-l:])
		if l == 1 {
			// Unconditional frequency: num / total elements.
			total := 0.0
			for _, c := range t.root.children {
				if c.label != anchor && len(c.label) > 0 {
					total += float64(c.count)
				}
			}
			if total > 0 && (okNum || num > 0) {
				return num / total
			}
			continue
		}
		if (okDen || den > 0) && (okNum || num > 0) && den > 0 {
			return num / den
		}
	}
	return 0
}

// EstimateQuery estimates the number of binding tuples of a twig query
// with simple (child-axis) path expressions. Value predicates and
// branching predicates inside paths are ignored (the comparison workload
// contains neither); a descendant step at the query root is resolved as an
// unanchored suffix count, deeper descendant steps fall back to suffix
// estimates.
func (t *CST) EstimateQuery(q *twig.Query) float64 {
	if q.Root == nil {
		return 0
	}
	rootLabels := stepLabels(q.Root)
	var base float64
	var prefix []string
	if isDescendantRoot(q.Root) {
		// //tag: count all elements with the tag via the unanchored
		// suffix trie, then continue with the remaining labels.
		base = t.suffixCount(rootLabels[:1])
		for j := 1; j < len(rootLabels); j++ {
			base *= t.condProb(append([]string{}, rootLabels[:j+1]...))
		}
		prefix = rootLabels
	} else {
		base = t.Count(rootLabels)
		prefix = append([]string{anchor, t.rootTag}, rootLabels...)
	}
	if base == 0 {
		return 0
	}
	return base * t.contrib(q.Root, prefix)
}

// suffixCount returns the unanchored count for a label sequence.
func (t *CST) suffixCount(labels []string) float64 {
	c, _, _, _ := t.lookupStats(labels)
	return c
}

// contrib returns the expected binding tuples of the subtree below twig
// node tn, per element matching prefix.
func (t *CST) contrib(tn *twig.Node, prefix []string) float64 {
	if len(tn.Children) == 0 {
		return 1
	}
	baseCount, _, _, _ := t.lookupStats(prefix)
	if baseCount == 0 {
		return 0
	}
	// Per-branch statistics at the first label of each child path.
	type branch struct {
		labels   []string
		count    float64 // elements at prefix+first
		parents  float64 // distinct parents with such a child
		sig      []uint64
		contProb float64 // continuation over the remaining labels
	}
	branches := make([]branch, 0, len(tn.Children))
	for _, ct := range tn.Children {
		ls := stepLabels(ct)
		if len(ls) == 0 {
			return 0
		}
		ext := append(append([]string{}, prefix...), ls[0])
		c, p, sig, _ := t.lookupStats(ext)
		if c == 0 || p == 0 {
			return 0
		}
		cont := 1.0
		cur := ext
		for j := 1; j < len(ls); j++ {
			cur = append(cur, ls[j])
			cont *= t.condProb(cur)
		}
		branches = append(branches, branch{labels: ls, count: c, parents: p, sig: sig, contProb: cont})
	}
	// Probability a prefix-element has all branch kinds: P-MOSH combines
	// the per-branch parent fractions with a min-hash intersection
	// correction chained over the branches.
	stats := make([]branchStat, len(branches))
	for i, b := range branches {
		stats[i] = branchStat{parents: b.parents, sig: b.sig}
	}
	joint := t.jointParentFraction(stats, baseCount)
	if joint == 0 {
		return 0
	}
	result := joint
	for i, b := range branches {
		perParent := b.count / b.parents
		sub := t.contrib(tn.Children[i], append(append([]string{}, prefix...), b.labels...))
		result *= perParent * b.contProb * sub
		if result == 0 {
			return 0
		}
	}
	return result
}

type branchStat struct {
	parents float64
	sig     []uint64
}

// jointParentFraction estimates the fraction of base elements whose
// children include every branch kind. Sets are intersected pairwise using
// min-hash Jaccard estimates, chaining through the branches; missing
// signatures (star fallbacks) degrade to independence.
func (t *CST) jointParentFraction(bs []branchStat, base float64) float64 {
	if len(bs) == 0 || base == 0 {
		return 1
	}
	curSize := bs[0].parents
	curSig := bs[0].sig
	for _, b := range bs[1:] {
		if curSig == nil || b.sig == nil {
			// Independence fallback.
			curSize = curSize * b.parents / base
			curSig = nil
			continue
		}
		j := jaccard(curSig, b.sig)
		inter := j / (1 + j) * (curSize + b.parents)
		if m := minF(curSize, b.parents); inter > m {
			inter = m
		}
		// Keep the signature of the smaller operand as a proxy for the
		// running intersection.
		if b.parents < curSize {
			curSig = b.sig
		}
		curSize = inter
	}
	frac := curSize / base
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return frac
}

// jaccard estimates the Jaccard coefficient of two sets from their
// min-hash signatures (fraction of matching positions).
func jaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// stepLabels extracts the label sequence of a twig node's path expression,
// ignoring predicates.
func stepLabels(tn *twig.Node) []string {
	out := make([]string, 0, len(tn.Path.Steps))
	for _, s := range tn.Path.Steps {
		out = append(out, s.Label)
	}
	return out
}

// isDescendantRoot reports whether the twig root's first step uses the
// descendant axis.
func isDescendantRoot(tn *twig.Node) bool {
	if len(tn.Path.Steps) == 0 {
		return false
	}
	return tn.Path.Steps[0].Axis == pathexpr.Descendant
}

package accuracy

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xsketch/internal/eval"
	"xsketch/internal/obs"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// A Record is one sampled estimate: everything the offline replay needs to
// recompute the error the service observed. Estimates round-trip through
// JSON bit-exactly (the encoder emits the shortest form that parses back
// to the same float64), so a replayed q-error matches the online one.
type Record struct {
	// TS is the RFC3339Nano write timestamp, stamped by the audit writer
	// (not the request path). Informational; replay ignores it.
	TS string `json:"ts,omitempty"`
	// Sketch is the served sketch name.
	Sketch string `json:"sketch"`
	// Query is the canonical twig query text (twig.Query.String form).
	Query string `json:"query"`
	// Estimate is the selectivity the service answered.
	Estimate float64 `json:"estimate"`
	// Truncated reports whether embedding enumeration hit MaxEmbeddings.
	Truncated bool `json:"truncated"`
	// Generation is the sketch entry's hot-swap count when the estimate
	// was served, so replays can separate stale-generation error.
	Generation uint64 `json:"generation"`
	// TraceID correlates the record with the request's log lines.
	TraceID string `json:"trace_id"`
}

// Config tunes an Auditor. Zero values select the defaults noted on each
// field.
type Config struct {
	// SampleRate is the fraction of served estimates to audit, in [0, 1].
	// The decision hashes the request's trace ID, so a fleet of replicas
	// behind a router samples the same requests.
	SampleRate float64
	// Out receives one JSON object per sampled record, newline-delimited.
	// nil journals nothing (the ground-truth loop still runs).
	Out io.Writer
	// QueueSize bounds the request-path-to-writer queue; a full queue
	// drops the record and increments xserve_accuracy_dropped_total
	// rather than blocking the request. Default: 1024.
	QueueSize int
	// TruthQueueSize bounds the writer-to-ground-truth queue; overflow is
	// counted as a skip, the record stays in the log for offline replay.
	// Default: QueueSize.
	TruthQueueSize int
	// TruthInterval is the minimum delay between ground-truth
	// evaluations, bounding the worker's document-scan load. Default:
	// 50ms; negative disables pacing.
	TruthInterval time.Duration
	// WindowSize is the per-sketch sliding window (in audited records)
	// behind the mean/p95/max gauges and the drift detector. Default: 256.
	WindowSize int
	// DriftThreshold is the windowed mean q-error above which a sketch is
	// considered drifted. Each upward crossing increments
	// xserve_accuracy_drift_total and logs an "accuracy drift" event;
	// recovery below the threshold re-arms the detector. <= 0 disables.
	DriftThreshold float64
	// Logger receives writer errors and drift events; nil discards.
	Logger *obs.Logger
	// Registry receives the xserve_accuracy_* families; nil uses a
	// private registry (the metrics then render nowhere).
	Registry *obs.Registry
	// Sketches pre-creates per-sketch series and windows so zero-valued
	// counters and gauges are visible from the first scrape.
	Sketches []string
	// Now overrides the record-timestamp clock, for tests. Default:
	// time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.TruthQueueSize <= 0 {
		c.TruthQueueSize = c.QueueSize
	}
	if c.TruthInterval == 0 {
		c.TruthInterval = 50 * time.Millisecond
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// job carries one sampled estimate through the audit pipeline. doc and q
// ride along (rather than being re-resolved later) so the ground truth is
// computed against exactly the document generation that was served.
type job struct {
	rec Record
	doc *xmltree.Document
	q   *twig.Query
}

// An Auditor samples served estimates into an audit log and a ground-truth
// loop. Create with New; Submit from the request path; Close on shutdown.
// All methods are safe for concurrent use.
type Auditor struct {
	cfg       Config
	log       *obs.Logger
	m         *metrics
	threshold uint64
	sampleAll bool

	recCh     chan job
	truthCh   chan job
	quitWrite chan struct{}
	quitTruth chan struct{}
	wgWrite   sync.WaitGroup
	wgTruth   sync.WaitGroup
	closed    atomic.Bool
	// pending counts records accepted but not yet fully processed
	// (written, and ground-truthed where applicable); Flush spins on it.
	pending atomic.Int64

	mu      sync.Mutex
	windows map[string]*window
}

// New builds an Auditor and starts its writer and ground-truth workers.
func New(cfg Config) (*Auditor, error) {
	if math.IsNaN(cfg.SampleRate) || cfg.SampleRate < 0 || cfg.SampleRate > 1 {
		return nil, fmt.Errorf("accuracy: sample rate %v outside [0, 1]", cfg.SampleRate)
	}
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	a := &Auditor{
		cfg:       cfg,
		log:       cfg.Logger,
		m:         newMetrics(reg),
		recCh:     make(chan job, cfg.QueueSize),
		truthCh:   make(chan job, cfg.TruthQueueSize),
		quitWrite: make(chan struct{}),
		quitTruth: make(chan struct{}),
		windows:   make(map[string]*window),
	}
	switch {
	case cfg.SampleRate >= 1:
		a.sampleAll = true
	case cfg.SampleRate > 0:
		// float64(MaxUint64) is exactly 2^64, so the product is the
		// threshold a uniform 64-bit hash falls under with probability
		// SampleRate. Guard the conversion: a product at or above 2^64
		// (impossible for rate < 1, but be safe) would overflow.
		t := cfg.SampleRate * float64(math.MaxUint64)
		if t >= float64(math.MaxUint64) {
			a.sampleAll = true
		} else {
			a.threshold = uint64(t)
		}
	}
	for _, name := range cfg.Sketches {
		a.m.precreate(name)
		a.mu.Lock()
		a.windowFor(name)
		a.mu.Unlock()
	}
	a.wgWrite.Add(1)
	go a.writeLoop()
	a.wgTruth.Add(1)
	go a.truthLoop()
	return a, nil
}

// SampleRate returns the configured sampling fraction.
func (a *Auditor) SampleRate() float64 { return a.cfg.SampleRate }

// ShouldSample reports whether the request carrying this trace ID falls in
// the audit sample. The decision is a pure hash of the ID — deterministic
// across replicas and across time — and never allocates.
func (a *Auditor) ShouldSample(traceID string) bool {
	if a.sampleAll {
		return true
	}
	return hashString(traceID) < a.threshold
}

// ShouldSampleItem is ShouldSample for one item of a batch request: the
// item index is mixed into the hash so a batch's items sample
// independently instead of all-or-nothing on the shared trace ID.
func (a *Auditor) ShouldSampleItem(traceID string, item int) bool {
	if a.sampleAll {
		return true
	}
	return mix64(hashString(traceID)+uint64(item)*0x9e3779b97f4a7c15) < a.threshold
}

// Submit hands one sampled estimate to the audit pipeline. doc is the
// live source document backing the sketch (nil for detached catalog
// sketches — the record is still journaled, ground truth is skipped) and
// q is the parsed query. Submit never blocks: a full queue drops the
// record and counts the drop.
func (a *Auditor) Submit(rec Record, doc *xmltree.Document, q *twig.Query) {
	if a.closed.Load() {
		a.m.dropped.Inc()
		return
	}
	a.pending.Add(1)
	select {
	case a.recCh <- job{rec: rec, doc: doc, q: q}:
		a.m.sampled.With(rec.Sketch).Inc()
	default:
		a.pending.Add(-1)
		a.m.dropped.Inc()
	}
}

// Flush blocks until every accepted record has been written and, where a
// ground truth was queued, audited. It exists for tests and for draining
// before Close; it returns immediately once the auditor is closed.
func (a *Auditor) Flush() {
	for a.pending.Load() > 0 && !a.closed.Load() {
		time.Sleep(100 * time.Microsecond)
	}
}

// Close drains both queues and stops the workers. Submits racing Close
// are dropped (and counted); Close is idempotent.
func (a *Auditor) Close() {
	if !a.closed.CompareAndSwap(false, true) {
		return
	}
	// Writer first: it may still feed the truth queue, whose worker keeps
	// running until the writer has fully drained.
	close(a.quitWrite)
	a.wgWrite.Wait()
	// A Submit that read closed=false before the flip may have landed
	// after the writer exited; count those as drops.
	for {
		select {
		case <-a.recCh:
			a.pending.Add(-1)
			a.m.dropped.Inc()
			continue
		default:
		}
		break
	}
	close(a.quitTruth)
	a.wgTruth.Wait()
}

// writeLoop is the audit-log writer: it stamps and journals records, then
// forwards ground-truthable ones to the truth queue without blocking.
func (a *Auditor) writeLoop() {
	defer a.wgWrite.Done()
	var enc *json.Encoder
	if a.cfg.Out != nil {
		enc = json.NewEncoder(a.cfg.Out)
	}
	for {
		select {
		case j := <-a.recCh:
			a.handleRecord(enc, j)
		case <-a.quitWrite:
			for {
				select {
				case j := <-a.recCh:
					a.handleRecord(enc, j)
					continue
				default:
				}
				return
			}
		}
	}
}

func (a *Auditor) handleRecord(enc *json.Encoder, j job) {
	j.rec.TS = a.cfg.Now().UTC().Format(time.RFC3339Nano)
	if enc != nil {
		if err := enc.Encode(&j.rec); err != nil {
			a.log.Error("audit log write failed", "error", err.Error(), "sketch", j.rec.Sketch)
		}
	}
	if j.doc == nil || j.q == nil {
		a.m.skipped.With(skipDetached).Inc()
		a.pending.Add(-1)
		return
	}
	select {
	case a.truthCh <- j:
	default:
		a.m.skipped.With(skipQueueFull).Inc()
		a.pending.Add(-1)
	}
}

// truthLoop computes exact selectivities for sampled estimates, paced by
// TruthInterval so audit load on the document stays bounded. After quit
// it drains the queue unpaced: shutdown flushes, it does not dawdle.
func (a *Auditor) truthLoop() {
	defer a.wgTruth.Done()
	for {
		select {
		case j := <-a.truthCh:
			a.audit(j)
			if a.cfg.TruthInterval > 0 {
				select {
				case <-time.After(a.cfg.TruthInterval):
				case <-a.quitTruth:
				}
			}
		case <-a.quitTruth:
			for {
				select {
				case j := <-a.truthCh:
					a.audit(j)
					continue
				default:
				}
				return
			}
		}
	}
}

// audit computes one record's ground truth and feeds the error metrics,
// the sliding window, and the drift detector.
func (a *Auditor) audit(j job) {
	defer a.pending.Add(-1)
	start := time.Now()
	truth := eval.New(j.doc).Selectivity(j.q)
	a.m.truthLat.Observe(time.Since(start).Seconds())
	qe := QError(j.rec.Estimate, float64(truth))
	a.m.audited.With(j.rec.Sketch).Inc()
	a.m.qerror.With(j.rec.Sketch).Observe(qe)

	a.mu.Lock()
	w := a.windowFor(j.rec.Sketch)
	w.push(qe, j.rec.Query)
	crossed := false
	if a.cfg.DriftThreshold > 0 {
		if w.mean() > a.cfg.DriftThreshold {
			if !w.inDrift {
				w.inDrift = true
				crossed = true
			}
		} else {
			w.inDrift = false
		}
	}
	mean := w.mean()
	worst := w.max()
	a.mu.Unlock()

	if crossed {
		a.m.drift.With(j.rec.Sketch).Inc()
		a.log.Error("accuracy drift",
			"sketch", j.rec.Sketch,
			"window_mean_qerror", mean,
			"threshold", a.cfg.DriftThreshold,
			"worst_qerror", worst.qerr,
			"worst_query", worst.query,
			"generation", j.rec.Generation,
		)
	}
}

// windowFor returns the sketch's window, creating it (and attaching its
// scrape-time gauges) on first use. Callers must hold a.mu; the attach is
// safe because scrapes never hold a family lock while sampling a series.
func (a *Auditor) windowFor(sketch string) *window {
	w, ok := a.windows[sketch]
	if !ok {
		w = &window{cap: a.cfg.WindowSize}
		a.windows[sketch] = w
		for _, s := range []struct {
			stat string
			fn   func(*window) float64
		}{
			{"mean", (*window).mean},
			{"p95", (*window).p95},
			{"max", func(w *window) float64 { return w.max().qerr }},
		} {
			fn := s.fn
			a.m.window.Attach(func() float64 {
				a.mu.Lock()
				defer a.mu.Unlock()
				return fn(w)
			}, "sketch", sketch, "stat", s.stat)
		}
	}
	return w
}

// WindowStats is a snapshot of one sketch's sliding q-error window, for
// tests and admin introspection.
type WindowStats struct {
	// Count is the number of audited records currently in the window.
	Count int
	// Mean, P95 and Max summarize the window (0 when empty); P95 is the
	// nearest-rank quantile, matching internal/loadgen.
	Mean, P95, Max float64
	// QErrors lists the window's q-errors, oldest first.
	QErrors []float64
	// InDrift reports whether the window mean currently exceeds the drift
	// threshold.
	InDrift bool
}

// WindowStats returns the named sketch's current window snapshot.
func (a *Auditor) WindowStats(sketch string) WindowStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	w, ok := a.windows[sketch]
	if !ok {
		return WindowStats{}
	}
	return WindowStats{
		Count:   w.len(),
		Mean:    w.mean(),
		P95:     w.p95(),
		Max:     w.max().qerr,
		QErrors: w.ordered(),
		InDrift: w.inDrift,
	}
}

// sample is one audited record's residue in the sliding window.
type sample struct {
	qerr  float64
	query string
}

// window is a fixed-capacity ring of recent q-errors for one sketch.
// Methods are not self-locking; the Auditor's mutex guards them.
type window struct {
	cap     int
	vals    []sample
	next    int
	inDrift bool
}

func (w *window) len() int { return len(w.vals) }

func (w *window) push(qe float64, query string) {
	if len(w.vals) < w.cap {
		w.vals = append(w.vals, sample{qerr: qe, query: query})
		return
	}
	w.vals[w.next] = sample{qerr: qe, query: query}
	w.next = (w.next + 1) % w.cap
}

// ordered returns the window's q-errors oldest first.
func (w *window) ordered() []float64 {
	out := make([]float64, 0, len(w.vals))
	for i := 0; i < len(w.vals); i++ {
		out = append(out, w.vals[(w.next+i)%len(w.vals)].qerr)
	}
	return out
}

func (w *window) mean() float64 {
	if len(w.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range w.vals {
		sum += s.qerr
	}
	return sum / float64(len(w.vals))
}

func (w *window) max() sample {
	var m sample
	for _, s := range w.vals {
		if s.qerr > m.qerr {
			m = s
		}
	}
	return m
}

func (w *window) p95() float64 {
	if len(w.vals) == 0 {
		return 0
	}
	qs := make([]float64, len(w.vals))
	for i, s := range w.vals {
		qs[i] = s.qerr
	}
	sort.Float64s(qs)
	return quantileSorted(qs, 0.95)
}

// hashString is FNV-1a over the string's bytes followed by an avalanche
// finalizer, the same construction the router's ring uses: raw FNV leaves
// structured IDs (hex trace IDs share an alphabet) poorly mixed in the
// high bits the threshold comparison reads.
func hashString(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every input
// bit affects every output bit.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Package accuracy is the online estimate-quality auditor: it samples a
// deterministic fraction of served estimates, journals them to a JSONL
// audit log through a bounded asynchronous writer, and — when the sampled
// sketch still has its source document — recomputes exact ground truth in
// a rate-limited background worker using internal/eval.
//
// Observed error is reported as the q-error (the symmetric multiplicative
// error factor, see QError) through per-sketch histograms, windowed
// mean/p95/max gauges, and a drift detector that counts threshold
// crossings and emits a structured log event naming the worst-erring
// query — the hook a future adaptive-refinement pass consumes.
//
// The request path pays exactly one atomic-free branch when auditing is
// disabled, and a hash comparison plus a non-blocking channel send when
// enabled: sampling decisions never allocate and the writer never blocks
// a request (full queues drop and count instead).
//
// The same package also replays audit logs offline (ReadLog, Replay) so
// the xaudit command reports exactly the error figures the online loop
// observed: both paths share QError and the internal/eval ground truth.
package accuracy

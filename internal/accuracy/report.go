package accuracy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"xsketch/internal/eval"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// QError returns the symmetric multiplicative error factor between an
// estimate and the true count: max(e, t) / min(e, t) with both floored at
// one, so a perfect estimate scores 1 and over- and under-estimation are
// penalized alike. This is the error measure both the online worker and
// the offline replay report — they agree bit-for-bit on equal inputs.
func QError(estimate, truth float64) float64 {
	e := estimate
	if e < 1 {
		e = 1
	}
	t := truth
	if t < 1 {
		t = 1
	}
	if e > t {
		return e / t
	}
	return t / e
}

// ReadLog decodes a JSONL audit log. Blank lines are skipped; a malformed
// line fails with its line number so truncated logs are diagnosable.
func ReadLog(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("audit log line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit log line %d: %w", line, err)
	}
	return out, nil
}

// A Report is the outcome of replaying an audit log against a document:
// per-sketch accuracy aggregates over every journaled estimate.
type Report struct {
	// Records is the total record count replayed.
	Records int `json:"records"`
	// Sketches aggregates per sketch name, sorted by name.
	Sketches []SketchReport `json:"sketches"`
}

// A SketchReport aggregates one sketch's replayed records.
type SketchReport struct {
	// Sketch is the sketch name the records were served from.
	Sketch string `json:"sketch"`
	// Records is the record count for this sketch.
	Records int `json:"records"`
	// MeanQError, P50QError, P95QError and MaxQError summarize the
	// replayed q-errors; the quantiles are nearest-rank.
	MeanQError float64 `json:"mean_qerror"`
	P50QError  float64 `json:"p50_qerror"`
	P95QError  float64 `json:"p95_qerror"`
	MaxQError  float64 `json:"max_qerror"`
	// Worst lists the worst-erring records, q-error descending.
	Worst []WorstQuery `json:"worst,omitempty"`
}

// A WorstQuery is one high-error record in a SketchReport.
type WorstQuery struct {
	// Query is the canonical twig query text.
	Query string `json:"query"`
	// Estimate is the selectivity the service answered.
	Estimate float64 `json:"estimate"`
	// Truth is the exact selectivity recomputed by the replay.
	Truth int64 `json:"truth"`
	// QError is the record's replayed q-error.
	QError float64 `json:"qerror"`
	// Generation is the sketch's hot-swap generation when served.
	Generation uint64 `json:"generation"`
}

// Replay recomputes every record's ground truth against doc with
// internal/eval — the same engine the online worker uses — and aggregates
// per-sketch accuracy. topN bounds each sketch's Worst list (0 omits it).
// Truth is cached per distinct query text, so replaying a hot workload
// costs one evaluation per unique query.
func Replay(records []Record, doc *xmltree.Document, topN int) (*Report, error) {
	ev := eval.New(doc)
	truthByQuery := make(map[string]int64)
	bySketch := make(map[string][]WorstQuery)
	for i, rec := range records {
		truth, ok := truthByQuery[rec.Query]
		if !ok {
			q, err := twig.Parse(rec.Query)
			if err != nil {
				return nil, fmt.Errorf("record %d: malformed query %q: %w", i, rec.Query, err)
			}
			truth = ev.Selectivity(q)
			truthByQuery[rec.Query] = truth
		}
		bySketch[rec.Sketch] = append(bySketch[rec.Sketch], WorstQuery{
			Query:      rec.Query,
			Estimate:   rec.Estimate,
			Truth:      truth,
			QError:     QError(rec.Estimate, float64(truth)),
			Generation: rec.Generation,
		})
	}
	rep := &Report{Records: len(records)}
	names := make([]string, 0, len(bySketch))
	for name := range bySketch {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entries := bySketch[name]
		qs := make([]float64, len(entries))
		sum := 0.0
		for i, e := range entries {
			qs[i] = e.QError
			sum += e.QError
		}
		sort.Float64s(qs)
		sr := SketchReport{
			Sketch:     name,
			Records:    len(entries),
			MeanQError: sum / float64(len(entries)),
			P50QError:  quantileSorted(qs, 0.5),
			P95QError:  quantileSorted(qs, 0.95),
			MaxQError:  qs[len(qs)-1],
		}
		if topN > 0 {
			sort.SliceStable(entries, func(i, j int) bool {
				if entries[i].QError != entries[j].QError {
					return entries[i].QError > entries[j].QError
				}
				return entries[i].Query < entries[j].Query
			})
			if len(entries) > topN {
				entries = entries[:topN]
			}
			sr.Worst = entries
		}
		rep.Sketches = append(rep.Sketches, sr)
	}
	return rep, nil
}

// Text renders the report as a human-readable table with one row per
// sketch, followed by each sketch's worst queries.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d audit records over %d sketch(es)\n\n", r.Records, len(r.Sketches))
	fmt.Fprintf(&b, "%-20s %8s %12s %12s %12s %12s\n",
		"sketch", "records", "mean qerr", "p50 qerr", "p95 qerr", "max qerr")
	for _, s := range r.Sketches {
		fmt.Fprintf(&b, "%-20s %8d %12.4f %12.4f %12.4f %12.4f\n",
			s.Sketch, s.Records, s.MeanQError, s.P50QError, s.P95QError, s.MaxQError)
	}
	for _, s := range r.Sketches {
		if len(s.Worst) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nworst queries for %s:\n", s.Sketch)
		for _, w := range s.Worst {
			fmt.Fprintf(&b, "  qerr=%-10.4f est=%-14.4f truth=%-10d gen=%-4d %s\n",
				w.QError, w.Estimate, w.Truth, w.Generation, w.Query)
		}
	}
	return b.String()
}

// quantileSorted is the nearest-rank quantile over an ascending-sorted
// slice, the same convention internal/loadgen reports: index
// int(q*(n-1)), so q=0 is the minimum and q=1 the maximum. Empty input
// returns 0.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

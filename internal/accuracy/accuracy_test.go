package accuracy

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"xsketch/internal/eval"
	"xsketch/internal/obs"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

func testDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.Parse(strings.NewReader(
		"<site><movie><actor/><actor/></movie><movie><actor/></movie></site>"))
	if err != nil {
		t.Fatalf("parse test doc: %v", err)
	}
	return d
}

func mustParse(t *testing.T, s string) *twig.Query {
	t.Helper()
	q, err := twig.Parse(s)
	if err != nil {
		t.Fatalf("parse query %q: %v", s, err)
	}
	return q
}

// newTestAuditor builds an auditor with fast, deterministic settings.
func newTestAuditor(t *testing.T, mutate func(*Config)) (*Auditor, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	cfg := Config{
		SampleRate:    1,
		Out:           &buf,
		TruthInterval: -1, // no pacing in tests
		Now:           func() time.Time { return time.Unix(0, 0) },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(a.Close)
	return a, &buf
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{10, 10, 1},
		{2, 4, 2},
		{4, 2, 2},
		{0.5, 1, 1},    // both floored at 1
		{0, 100, 100},  // zero estimate floors to 1
		{100, 0, 100},  // zero truth floors to 1
		{0.25, 0.5, 1}, // sub-one pairs are equal after flooring
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
}

func TestSamplingDeterministicAndProportional(t *testing.T) {
	a, _ := newTestAuditor(t, func(c *Config) { c.SampleRate = 0.25 })
	b, _ := newTestAuditor(t, func(c *Config) { c.SampleRate = 0.25 })
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		id := obs.NewTraceID()
		da, db := a.ShouldSample(id), b.ShouldSample(id)
		if da != db {
			t.Fatalf("two auditors at the same rate disagree on %q", id)
		}
		if da != a.ShouldSample(id) {
			t.Fatalf("decision for %q not deterministic", id)
		}
		if da {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("sample rate 0.25 hit %.4f of %d trace IDs", got, n)
	}
}

func TestSamplingRateExtremes(t *testing.T) {
	all, _ := newTestAuditor(t, func(c *Config) { c.SampleRate = 1 })
	none, _ := newTestAuditor(t, func(c *Config) { c.SampleRate = 0 })
	for i := 0; i < 1000; i++ {
		id := obs.NewTraceID()
		if !all.ShouldSample(id) {
			t.Fatalf("rate 1 skipped %q", id)
		}
		if none.ShouldSample(id) {
			t.Fatalf("rate 0 sampled %q", id)
		}
	}
}

func TestSamplingItemsIndependent(t *testing.T) {
	a, _ := newTestAuditor(t, func(c *Config) { c.SampleRate = 0.5 })
	// Across many batch items of one trace ID the item decisions must
	// split, not inherit the request decision wholesale.
	id := obs.NewTraceID()
	hits := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.ShouldSampleItem(id, i) {
			hits++
		}
	}
	if hits == 0 || hits == n {
		t.Fatalf("item sampling at rate 0.5 hit %d of %d items of one trace", hits, n)
	}
}

func TestInvalidSampleRate(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := New(Config{SampleRate: rate}); err == nil {
			t.Errorf("New accepted sample rate %v", rate)
		}
	}
}

func TestShouldSampleZeroAlloc(t *testing.T) {
	a, _ := newTestAuditor(t, func(c *Config) { c.SampleRate = 0.5 })
	id := obs.NewTraceID()
	if n := testing.AllocsPerRun(1000, func() { a.ShouldSample(id) }); n != 0 {
		t.Errorf("ShouldSample allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { a.ShouldSampleItem(id, 7) }); n != 0 {
		t.Errorf("ShouldSampleItem allocates %v per run, want 0", n)
	}
}

func TestSubmitJournalsAndAudits(t *testing.T) {
	doc := testDoc(t)
	q := mustParse(t, "t0 in movie, t1 in t0/actor")
	truth := eval.New(doc).Selectivity(q)
	a, buf := newTestAuditor(t, nil)

	rec := Record{Sketch: "s", Query: q.String(), Estimate: 7.25, Generation: 3, TraceID: "tid1"}
	a.Submit(rec, doc, q)
	a.Flush()

	records, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(records) != 1 {
		t.Fatalf("journaled %d records, want 1", len(records))
	}
	got := records[0]
	if got.TS == "" {
		t.Errorf("record missing write timestamp")
	}
	got.TS = ""
	if got != rec {
		t.Errorf("record round-trip mismatch: got %+v want %+v", got, rec)
	}
	if math.Float64bits(got.Estimate) != math.Float64bits(rec.Estimate) {
		t.Errorf("estimate bits changed across JSON round trip")
	}

	want := QError(rec.Estimate, float64(truth))
	ws := a.WindowStats("s")
	if ws.Count != 1 || ws.Mean != want || ws.Max != want {
		t.Errorf("window stats %+v, want single q-error %v", ws, want)
	}
	if v := a.m.audited.With("s").Value(); v != 1 {
		t.Errorf("audited counter %d, want 1", v)
	}
	if v := a.m.sampled.With("s").Value(); v != 1 {
		t.Errorf("sampled counter %d, want 1", v)
	}
}

func TestDetachedSketchSkipsTruth(t *testing.T) {
	a, buf := newTestAuditor(t, nil)
	a.Submit(Record{Sketch: "s", Query: "t0 in movie", Estimate: 2}, nil, nil)
	a.Flush()
	if records, err := ReadLog(bytes.NewReader(buf.Bytes())); err != nil || len(records) != 1 {
		t.Fatalf("ReadLog: %v, %d records, want 1 (detached records still journal)", err, len(records))
	}
	if v := a.m.skipped.With(skipDetached).Value(); v != 1 {
		t.Errorf("detached skip counter %d, want 1", v)
	}
	if v := a.m.audited.With("s").Value(); v != 0 {
		t.Errorf("audited counter %d for a detached record, want 0", v)
	}
}

func TestWindowRingAndStats(t *testing.T) {
	doc := testDoc(t)
	q := mustParse(t, "t0 in movie")
	truth := float64(eval.New(doc).Selectivity(q))
	a, _ := newTestAuditor(t, func(c *Config) { c.WindowSize = 3 })
	// Five submissions into a window of three: only the last three stay.
	ests := []float64{truth, truth * 2, truth * 4, truth * 8, truth * 16}
	for _, est := range ests {
		a.Submit(Record{Sketch: "s", Query: q.String(), Estimate: est}, doc, q)
		a.Flush()
	}
	ws := a.WindowStats("s")
	if ws.Count != 3 {
		t.Fatalf("window count %d, want 3", ws.Count)
	}
	want := []float64{4, 8, 16}
	for i, w := range want {
		if ws.QErrors[i] != w {
			t.Errorf("window[%d] = %v, want %v (full window %v)", i, ws.QErrors[i], w, ws.QErrors)
		}
	}
	if ws.Max != 16 {
		t.Errorf("window max %v, want 16", ws.Max)
	}
	if wantMean := (4.0 + 8.0 + 16.0) / 3.0; ws.Mean != wantMean {
		t.Errorf("window mean %v, want %v", ws.Mean, wantMean)
	}
	// Nearest rank over 3 sorted samples indexes int(0.95*2) == 1.
	if ws.P95 != 8 {
		t.Errorf("window p95 %v, want 8 (nearest rank of 3 samples)", ws.P95)
	}
}

func TestDriftCrossingSemantics(t *testing.T) {
	doc := testDoc(t)
	q := mustParse(t, "t0 in movie")
	truth := float64(eval.New(doc).Selectivity(q))
	a, _ := newTestAuditor(t, func(c *Config) {
		c.WindowSize = 1 // each record is the whole window: mean == its q-error
		c.DriftThreshold = 2
	})
	submit := func(est float64) {
		a.Submit(Record{Sketch: "s", Query: q.String(), Estimate: est}, doc, q)
		a.Flush()
	}
	drifts := func() uint64 { return a.m.drift.With("s").Value() }

	submit(truth) // qerr 1: under threshold
	if got := drifts(); got != 0 {
		t.Fatalf("drift counter %d before any drift", got)
	}
	submit(truth * 10) // qerr 10: crossing
	if got := drifts(); got != 1 {
		t.Fatalf("drift counter %d after crossing, want 1", got)
	}
	submit(truth * 20) // still over: no new crossing
	if got := drifts(); got != 1 {
		t.Fatalf("drift counter %d while staying over, want 1", got)
	}
	submit(truth) // recovery re-arms
	submit(truth * 10)
	if got := drifts(); got != 2 {
		t.Fatalf("drift counter %d after recover + re-cross, want 2", got)
	}
}

// gateWriter blocks every Write until released, to hold the audit writer
// mid-record while a test fills the queue behind it.
type gateWriter struct {
	entered chan struct{}
	release chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.entered <- struct{}{}
	<-g.release
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

func TestFullQueueDropsInsteadOfBlocking(t *testing.T) {
	gate := &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
	var a *Auditor
	a, _ = newTestAuditor(t, func(c *Config) {
		c.Out = gate
		c.QueueSize = 1
	})
	a.Submit(Record{Sketch: "s", Query: "t0 in movie", Estimate: 1}, nil, nil)
	<-gate.entered                                                             // writer is now parked inside Write for record 1
	a.Submit(Record{Sketch: "s", Query: "t0 in movie", Estimate: 2}, nil, nil) // queued
	a.Submit(Record{Sketch: "s", Query: "t0 in movie", Estimate: 3}, nil, nil) // dropped
	if v := a.m.dropped.Value(); v != 1 {
		t.Errorf("dropped counter %d, want 1", v)
	}
	close(gate.release)
	<-gate.entered // record 2 reaches the writer
	a.Flush()
	if v := a.m.sampled.With("s").Value(); v != 2 {
		t.Errorf("sampled counter %d, want 2 accepted records", v)
	}
}

func TestSubmitAfterCloseDrops(t *testing.T) {
	a, _ := newTestAuditor(t, nil)
	a.Close()
	a.Submit(Record{Sketch: "s", Query: "t0 in movie", Estimate: 1}, nil, nil)
	if v := a.m.dropped.Value(); v != 1 {
		t.Errorf("dropped counter %d after post-close submit, want 1", v)
	}
}

func TestReadLogMalformedLine(t *testing.T) {
	in := "{\"sketch\":\"s\",\"query\":\"q\",\"estimate\":1,\"truncated\":false,\"generation\":0,\"trace_id\":\"t\"}\nnot json\n"
	if _, err := ReadLog(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("ReadLog error %v, want a line-2 failure", err)
	}
}

func TestReplayAggregates(t *testing.T) {
	doc := testDoc(t)
	q := mustParse(t, "t0 in movie")
	truth := eval.New(doc).Selectivity(q)
	records := []Record{
		{Sketch: "b", Query: q.String(), Estimate: float64(truth), Generation: 1},
		{Sketch: "a", Query: q.String(), Estimate: float64(truth) * 3},
		{Sketch: "a", Query: q.String(), Estimate: float64(truth)},
	}
	rep, err := Replay(records, doc, 1)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Records != 3 || len(rep.Sketches) != 2 {
		t.Fatalf("report shape %+v, want 3 records over 2 sketches", rep)
	}
	if rep.Sketches[0].Sketch != "a" || rep.Sketches[1].Sketch != "b" {
		t.Fatalf("sketches not sorted: %q, %q", rep.Sketches[0].Sketch, rep.Sketches[1].Sketch)
	}
	a := rep.Sketches[0]
	if a.Records != 2 || a.MaxQError != 3 || a.MeanQError != 2 {
		t.Errorf("sketch a aggregates %+v, want 2 records, mean 2, max 3", a)
	}
	if len(a.Worst) != 1 || a.Worst[0].QError != 3 || a.Worst[0].Truth != truth {
		t.Errorf("sketch a worst %+v, want the 3x record with truth %d", a.Worst, truth)
	}
	b := rep.Sketches[1]
	if b.Records != 1 || b.MaxQError != 1 || b.Worst[0].Generation != 1 {
		t.Errorf("sketch b aggregates %+v, want one exact record at generation 1", b)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not JSON-marshalable: %v", err)
	}
	if text := rep.Text(); !strings.Contains(text, "worst queries for a") {
		t.Errorf("text report missing worst section:\n%s", text)
	}
}

func TestReplayMalformedQuery(t *testing.T) {
	doc := testDoc(t)
	if _, err := Replay([]Record{{Sketch: "s", Query: "][", Estimate: 1}}, doc, 0); err == nil {
		t.Fatal("Replay accepted a malformed query")
	}
}

func TestQuantileSortedEdges(t *testing.T) {
	if got := quantileSorted(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	one := []float64{42}
	for _, q := range []float64{0, 0.5, 1, -1, 2} {
		if got := quantileSorted(one, q); got != 42 {
			t.Errorf("single-sample quantile(%v) = %v, want 42", q, got)
		}
	}
	asc := []float64{1, 2, 3, 4}
	if got := quantileSorted(asc, 0); got != 1 {
		t.Errorf("q=0 = %v, want min", got)
	}
	if got := quantileSorted(asc, 1); got != 4 {
		t.Errorf("q=1 = %v, want max", got)
	}
}

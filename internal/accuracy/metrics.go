package accuracy

import "xsketch/internal/obs"

// Reasons the ground-truth loop skips a journaled record.
const (
	// skipDetached: the sketch has no live source document (catalog-served),
	// so truth can only be computed by an offline xaudit replay.
	skipDetached = "detached"
	// skipQueueFull: the truth queue was full; the record stays in the log.
	skipQueueFull = "queue_full"
)

// metrics bundles the auditor's instrument handles. Every family is
// documented in SERVING.md's catalog; internal/serve's metrics-endpoint
// test cross-checks the names.
type metrics struct {
	sampled  *obs.CounterVec   // xserve_accuracy_sampled_total{sketch}
	dropped  *obs.Counter      // xserve_accuracy_dropped_total
	audited  *obs.CounterVec   // xserve_accuracy_audited_total{sketch}
	skipped  *obs.CounterVec   // xserve_accuracy_truth_skipped_total{reason}
	drift    *obs.CounterVec   // xserve_accuracy_drift_total{sketch}
	qerror   *obs.HistogramVec // xserve_accuracy_qerror{sketch}
	truthLat *obs.Histogram    // xserve_accuracy_truth_latency_seconds
	window   *obs.FuncFamily   // xserve_accuracy_window_qerror{sketch,stat}
}

// QErrorBuckets spans exact estimates (q-error 1) through catastrophic
// misses (1000×); the lower edges are dense because the paper's synopses
// live in the 1–2× band at realistic budgets.
func QErrorBuckets() []float64 {
	return []float64{1, 1.1, 1.25, 1.5, 2, 3, 5, 10, 25, 100, 1000}
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		sampled: reg.NewCounterVec("xserve_accuracy_sampled_total",
			"Served estimates sampled into the audit log, per sketch.", "sketch"),
		dropped: reg.NewCounter("xserve_accuracy_dropped_total",
			"Sampled records dropped because the audit queue was full or the auditor closed."),
		audited: reg.NewCounterVec("xserve_accuracy_audited_total",
			"Sampled estimates ground-truthed by the background worker, per sketch.", "sketch"),
		skipped: reg.NewCounterVec("xserve_accuracy_truth_skipped_total",
			"Journaled records whose ground truth was skipped, by reason (detached, queue_full).", "reason"),
		drift: reg.NewCounterVec("xserve_accuracy_drift_total",
			"Upward crossings of the windowed mean q-error over the drift threshold, per sketch.", "sketch"),
		qerror: reg.NewHistogramVec("xserve_accuracy_qerror",
			"Observed q-error (max(est,truth)/min(est,truth), floored at 1) of audited estimates, per sketch.",
			QErrorBuckets(), "sketch"),
		truthLat: reg.NewHistogram("xserve_accuracy_truth_latency_seconds",
			"Latency of exact ground-truth evaluations in the audit worker.", nil),
		window: reg.NewFuncFamily("xserve_accuracy_window_qerror",
			"Sliding-window q-error summary per sketch (stat = mean, p95, max).", "gauge"),
	}
}

// precreate materializes a sketch's zero-valued counter series so the
// scrape catalog is complete before the first sample.
func (m *metrics) precreate(sketch string) {
	m.sampled.With(sketch)
	m.audited.With(sketch)
	m.drift.With(sketch)
	m.qerror.With(sketch)
	m.skipped.With(skipDetached)
	m.skipped.With(skipQueueFull)
}

package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Config describes one open-loop run.
type Config struct {
	// TargetURL is the server base URL (e.g. "http://127.0.0.1:8080");
	// requests go to TargetURL+"/estimate".
	TargetURL string
	// Sketch names the synopsis to estimate against; empty selects the
	// server's single-sketch default.
	Sketch string
	// Queries are cycled through round-robin, one per request. At least
	// one is required.
	Queries []string
	// Rate is the arrival rate in requests per second. Required.
	Rate float64
	// Duration is how long to keep arriving. Required.
	Duration time.Duration
	// Timeout bounds one request (default 10s). Timed-out requests count
	// as errors.
	Timeout time.Duration
	// Client overrides the HTTP client (the default derives one from
	// Timeout). Tests inject httptest clients here.
	Client *http.Client
}

// Result is one run's measurements, shaped for direct JSON emission into
// a BENCH report.
type Result struct {
	TargetRate      float64        `json:"target_rate_rps"`
	Duration        float64        `json:"duration_seconds"`
	Sent            int            `json:"sent"`
	Completed       int            `json:"completed"`
	Errors          int            `json:"errors"`
	StatusCounts    map[string]int `json:"status_counts"`
	AchievedRPS     float64        `json:"achieved_rps"`
	P50Seconds      float64        `json:"p50_seconds"`
	P95Seconds      float64        `json:"p95_seconds"`
	P99Seconds      float64        `json:"p99_seconds"`
	MeanSeconds     float64        `json:"mean_seconds"`
	MaxSeconds      float64        `json:"max_seconds"`
	MaxLateArrivals int            `json:"max_late_arrivals"`
}

// Run executes one open-loop run: requests launch at Config.Rate per
// second for Config.Duration, each in its own goroutine, and Run returns
// once every launched request has completed. Cancelling ctx stops the
// schedule early; in-flight requests still finish.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.TargetURL == "" {
		return Result{}, fmt.Errorf("loadgen: TargetURL required")
	}
	if len(cfg.Queries) == 0 {
		return Result{}, fmt.Errorf("loadgen: at least one query required")
	}
	if cfg.Rate <= 0 {
		return Result{}, fmt.Errorf("loadgen: Rate must be positive, got %v", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: Duration must be positive, got %v", cfg.Duration)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}

	// Pre-marshal one body per distinct query; the schedule loop must not
	// spend its budget on JSON encoding.
	bodies := make([][]byte, len(cfg.Queries))
	for i, q := range cfg.Queries {
		b, err := json.Marshal(map[string]string{"sketch": cfg.Sketch, "query": q})
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: marshal query %d: %w", i, err)
		}
		bodies[i] = b
	}

	total := int(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	type sample struct {
		latency time.Duration
		status  int
		err     bool
	}
	samples := make([]sample, total)
	var wg sync.WaitGroup
	url := cfg.TargetURL + "/estimate"

	start := time.Now()
	sent := 0
	late := 0
	for i := 0; i < total; i++ {
		// Open-loop, self-correcting: request i is due at start+i*interval
		// no matter how long earlier requests take. When the generator
		// falls behind it bursts to catch up instead of stretching the
		// schedule (which would silently lower the offered rate).
		due := start.Add(time.Duration(i) * interval)
		if wait := time.Until(due); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				i = total // stop scheduling; fallthrough to wait for in-flight
				continue
			}
		} else if wait < -interval {
			late++
		}
		sent++
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				samples[i] = sample{err: true}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			lat := time.Since(t0)
			if err != nil {
				samples[i] = sample{latency: lat, err: true}
				return
			}
			resp.Body.Close()
			samples[i] = sample{latency: lat, status: resp.StatusCode}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		TargetRate:      cfg.Rate,
		Duration:        cfg.Duration.Seconds(),
		Sent:            sent,
		StatusCounts:    make(map[string]int),
		MaxLateArrivals: late,
	}
	var latencies []float64
	var sum float64
	for _, s := range samples[:sent] {
		if s.err {
			res.Errors++
			continue
		}
		res.Completed++
		res.StatusCounts[strconv.Itoa(s.status)]++
		sec := s.latency.Seconds()
		latencies = append(latencies, sec)
		sum += sec
		if sec > res.MaxSeconds {
			res.MaxSeconds = sec
		}
	}
	if elapsed > 0 {
		res.AchievedRPS = float64(res.Completed) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		res.P50Seconds = quantile(latencies, 0.50)
		res.P95Seconds = quantile(latencies, 0.95)
		res.P99Seconds = quantile(latencies, 0.99)
		res.MeanSeconds = sum / float64(len(latencies))
	}
	return res, nil
}

// quantile reads the q-th quantile from an ascending sample by
// nearest-rank; exact because the raw latencies are all retained.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

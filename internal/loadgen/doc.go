// Package loadgen is an open-loop HTTP load generator for xserve and its
// router: requests launch on a fixed arrival schedule regardless of how
// fast responses come back, which is what distinguishes measured latency
// from the closed-loop (back-to-back) numbers a benchmark harness
// produces. Closed-loop clients slow down when the server slows down,
// hiding queueing delay exactly when it matters; an open-loop schedule
// keeps arriving at the target rate, so p95/p99 reflect what a real
// client population would see (the coordinated-omission problem).
//
// The schedule is self-correcting: request i is due at start+i/rate, and
// a generator that falls behind (a GC pause, a slow response hogging a
// connection) bursts to catch up rather than silently stretching the
// measured interval. Latencies are recorded raw and quantiles computed
// exactly from the sorted sample, not from histogram buckets.
package loadgen

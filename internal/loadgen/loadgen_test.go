package loadgen

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOpenLoop(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/estimate" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"estimate":1,"truncated":false,"trace_id":"x"}`))
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		TargetURL: ts.URL,
		Sketch:    "imdb",
		Queries:   []string{"t0 in movie", "t0 in movie, t1 in t0/actor"},
		Rate:      200,
		Duration:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int(200 * 0.25)
	if res.Sent != want {
		t.Errorf("sent %d, want %d", res.Sent, want)
	}
	if res.Completed != want || res.Errors != 0 {
		t.Errorf("completed %d errors %d, want %d / 0", res.Completed, res.Errors, want)
	}
	if int(hits.Load()) != want {
		t.Errorf("server saw %d requests, want %d", hits.Load(), want)
	}
	if res.StatusCounts["200"] != want {
		t.Errorf("status counts %v, want %d x 200", res.StatusCounts, want)
	}
	if res.P50Seconds <= 0 || res.P99Seconds < res.P95Seconds || res.P95Seconds < res.P50Seconds {
		t.Errorf("quantiles not ordered: p50=%v p95=%v p99=%v", res.P50Seconds, res.P95Seconds, res.P99Seconds)
	}
	if res.MaxSeconds < res.P99Seconds || res.MeanSeconds <= 0 {
		t.Errorf("max %v below p99 %v, or mean %v <= 0", res.MaxSeconds, res.P99Seconds, res.MeanSeconds)
	}
	if res.AchievedRPS <= 0 {
		t.Errorf("achieved rps %v, want > 0", res.AchievedRPS)
	}
}

func TestRunCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	res, err := Run(context.Background(), Config{
		TargetURL: ts.URL,
		Queries:   []string{"q"},
		Rate:      100,
		Duration:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Non-2xx responses are completions (the server answered), tallied by
	// status; only transport-level failures count as errors.
	if res.StatusCounts["429"] != res.Completed || res.Completed == 0 {
		t.Errorf("status counts %v with %d completed", res.StatusCounts, res.Completed)
	}
	if res.Errors != 0 {
		t.Errorf("errors %d, want 0 for answered requests", res.Errors)
	}

	ts.Close() // now everything is a transport failure
	res, err = Run(context.Background(), Config{
		TargetURL: ts.URL,
		Queries:   []string{"q"},
		Rate:      100,
		Duration:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Errors != res.Sent || res.Completed != 0 {
		t.Errorf("dead server: %d errors / %d completed of %d sent, want all errors", res.Errors, res.Completed, res.Sent)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []Config{
		{},
		{TargetURL: "http://x"},
		{TargetURL: "http://x", Queries: []string{"q"}},
		{TargetURL: "http://x", Queries: []string{"q"}, Rate: 10},
		{TargetURL: "http://x", Queries: []string{"q"}, Rate: -1, Duration: time.Second},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: no error for invalid config %+v", i, cfg)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"estimate":1}`))
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{
		TargetURL: ts.URL,
		Queries:   []string{"q"},
		Rate:      10,
		Duration:  10 * time.Second, // would run far past the test without the cancel
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the schedule")
	}
	if res.Sent >= 100 {
		t.Errorf("sent %d of 100 scheduled despite early cancel", res.Sent)
	}
}

func TestQuantileExact(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.5); q != 5 {
		t.Errorf("p50 = %v, want 5", q)
	}
	if q := quantile(sorted, 0); q != 1 {
		t.Errorf("p0 = %v, want 1", q)
	}
	if q := quantile(sorted, 1); q != 10 {
		t.Errorf("p100 = %v, want 10", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	if q := quantile([]float64{math.Pi}, 0.99); q != math.Pi {
		t.Errorf("single-sample quantile = %v", q)
	}
}

// TestQuantileEdgeCases pins the nearest-rank convention at the
// boundaries the summary prints: one sample answers every quantile, an
// all-equal window answers the shared value everywhere, and q=0 / q=1
// are exactly the minimum and maximum.
func TestQuantileEdgeCases(t *testing.T) {
	single := []float64{7.5}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := quantile(single, q); got != 7.5 {
			t.Errorf("quantile([7.5], %v) = %v, want 7.5", q, got)
		}
	}
	equal := []float64{3, 3, 3, 3, 3}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := quantile(equal, q); got != 3 {
			t.Errorf("quantile(all-equal, %v) = %v, want 3", q, got)
		}
	}
	spread := []float64{1, 4, 9, 16}
	if got := quantile(spread, 0); got != 1 {
		t.Errorf("q=0 = %v, want the minimum 1", got)
	}
	if got := quantile(spread, 1); got != 16 {
		t.Errorf("q=1 = %v, want the maximum 16", got)
	}
}

package twig

import "testing"

// TestNormalizeText pins the whitespace normal form: interior runs of any
// Unicode whitespace collapse to one ASCII space, outer whitespace is
// dropped, and already-normal input comes back verbatim.
func TestNormalizeText(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"   ", ""},
		{"\t\n", ""},
		{"t0 in //a", "t0 in //a"},
		{"  t0 in //a  ", "t0 in //a"},
		{"t0\tin\t//a", "t0 in //a"},
		{"t0\nin\r\n//a", "t0 in //a"},
		{"t0   in   //a", "t0 in //a"},
		{"for\tt0 in //a", "for t0 in //a"},
		{"t0 in //a", "t0 in //a"}, // NBSP is Unicode space
		{"for t0 in //a, t1 in t0/b", "for t0 in //a, t1 in t0/b"},
	}
	for _, c := range cases {
		if got := NormalizeText(c.in); got != c.want {
			t.Errorf("NormalizeText(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeTextNoAllocOnNormalInput asserts the zero-allocation
// contract for already-normal text, which the plan-cache key lookup relies
// on.
func TestNormalizeTextNoAllocOnNormalInput(t *testing.T) {
	in := "for t0 in //item, t1 in t0/name"
	allocs := testing.AllocsPerRun(100, func() {
		if out := NormalizeText(in); len(out) != len(in) {
			t.Fatal("normal input changed")
		}
	})
	if allocs != 0 {
		t.Fatalf("NormalizeText allocates %v/op on normal input", allocs)
	}
}

// TestParseWhitespaceForms is the regression table for the parser
// whitespace bugs: a tab after the "for" keyword, tabs/newlines/multi-space
// runs around " in ", and whitespace-bearing variable names.
func TestParseWhitespaceForms(t *testing.T) {
	want := MustParse("for t0 in //a, t1 in t0/b").String()
	good := []string{
		"for\tt0 in //a, t1 in t0/b",
		"for t0\tin\t//a, t1 in t0/b",
		"for t0 in //a,\n\tt1 in t0/b",
		"  for   t0   in   //a ,  t1  in  t0/b  ",
		"FOR\tt0 in //a, t1 in t0/b",
		"t0 in //a, t1 in t0/b",
		"t0 in //a, t1 in t0/b",
	}
	for _, src := range good {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := q.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", src, got, want)
		}
	}

	bad := []string{
		"for t0 x in //a",     // space inside the variable name
		"for t0\tx in //a",    // tab inside the variable name
		"for t0\nx in //a",    // newline inside the variable name
		"for t0[ in //a",      // bracket in the variable name
		"for t0/b in //a",     // slash in the variable name
		"for",                 // keyword only
		"for\t",               // keyword and trailing whitespace only
		"for  t0  in",         // binding without a path
		"t0 in //a,, t1 in b", // empty binding survives normalization
	}
	for _, src := range bad {
		if q, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %q, want error", src, q.String())
		}
	}
}

// TestSplitBindingRejectsUnicodeSpaceNames exercises the guard directly
// (bypassing Parse's normalization) so a future refactor cannot reopen the
// hole where only ASCII space was rejected.
func TestSplitBindingRejectsUnicodeSpaceNames(t *testing.T) {
	for _, b := range []string{"t0\tx in //a", "t0\nx in //a", "t0 x in //a"} {
		if _, _, err := splitBinding(b); err == nil {
			t.Errorf("splitBinding(%q) accepted a whitespace-bearing name", b)
		}
	}
}

package twig

import (
	"fmt"
	"strings"
	"unicode"

	"xsketch/internal/pathexpr"
)

// Parse parses a twig query in the XQuery-style for-clause notation:
//
//	for t0 in //movie[type=5], t1 in t0/actor, t2 in t0/producer
//
// The leading "for" keyword is optional. Each binding is "<var> in <path>";
// the first binding's path is absolute, subsequent bindings must be rooted
// at a previously defined variable ("tK/<path>"). A binding rooted at a
// variable becomes a child twig node of that variable's node, mirroring the
// paper's equivalence between for-clauses and twig trees.
func Parse(src string) (*Query, error) {
	// Normalizing first means every later delimiter check ("for " prefix,
	// " in " separator) only ever sees single ASCII spaces: "for\tt0 in //a"
	// and "t0  in\n//a" parse exactly like their canonical spellings.
	s := NormalizeText(src)
	if rest, ok := cutPrefixFold(s, "for "); ok {
		s = rest
	}
	if s == "" {
		return nil, fmt.Errorf("twig: empty query")
	}
	bindings, err := splitBindings(s)
	if err != nil {
		return nil, err
	}
	vars := make(map[string]*Node)
	var q *Query
	for i, b := range bindings {
		name, expr, err := splitBinding(b)
		if err != nil {
			return nil, err
		}
		if _, dup := vars[name]; dup {
			return nil, fmt.Errorf("twig: duplicate variable %q", name)
		}
		// Does the expression start with a known variable?
		head, rest := splitHead(expr)
		if parent, ok := vars[head]; ok {
			if rest == "" {
				return nil, fmt.Errorf("twig: binding %q: missing path after variable %q", b, head)
			}
			p, err := pathexpr.Parse(rest)
			if err != nil {
				return nil, fmt.Errorf("twig: binding %q: %w", b, err)
			}
			n := &Node{Var: name, Path: p}
			parent.Children = append(parent.Children, n)
			vars[name] = n
			continue
		}
		if i != 0 {
			return nil, fmt.Errorf("twig: binding %q does not reference a previous variable", b)
		}
		p, err := pathexpr.Parse(expr)
		if err != nil {
			return nil, fmt.Errorf("twig: binding %q: %w", b, err)
		}
		root := &Node{Var: name, Path: p}
		q = &Query{Root: root}
		vars[name] = root
	}
	return q, nil
}

// MustParse is Parse but panics on error; intended for tests and constants.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// NormalizeText canonicalizes the whitespace of a query text: leading and
// trailing whitespace is dropped and every interior run of Unicode
// whitespace (tabs, newlines, NBSP, ...) collapses to one ASCII space.
// Texts with equal normal forms parse identically, so the normal form is
// the spelling-insensitive cache key for compiled query plans. Input that
// is already normal is returned unchanged without allocating, keeping the
// plan-cache hit path allocation-free.
func NormalizeText(s string) string {
	normal := true
	prevSpace := false
	for i, r := range s {
		if unicode.IsSpace(r) {
			if r != ' ' || prevSpace || i == 0 {
				normal = false
				break
			}
			prevSpace = true
		} else {
			prevSpace = false
		}
	}
	if normal && prevSpace {
		normal = false // trailing space
	}
	if normal {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	pending := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			// Collapse the run; drop it entirely when nothing precedes it.
			pending = b.Len() > 0
			continue
		}
		if pending {
			b.WriteByte(' ')
			pending = false
		}
		b.WriteRune(r)
	}
	return b.String()
}

func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix) {
		return s[len(prefix):], true
	}
	return s, false
}

// splitBindings splits on commas that are not nested inside brackets.
func splitBindings(s string) ([]string, error) {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("twig: unbalanced ']' in %q", s)
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("twig: unbalanced '[' in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	for _, b := range out {
		if b == "" {
			return nil, fmt.Errorf("twig: empty binding in %q", s)
		}
	}
	return out, nil
}

func splitBinding(b string) (name, expr string, err error) {
	idx := strings.Index(b, " in ")
	if idx < 0 {
		return "", "", fmt.Errorf("twig: binding %q lacks ' in '", b)
	}
	name = strings.TrimSpace(b[:idx])
	expr = strings.TrimSpace(b[idx+len(" in "):])
	// Parse normalizes whitespace up front, but the guard still rejects any
	// Unicode space on its own so direct callers cannot smuggle a
	// tab/newline-containing name through.
	if name == "" || strings.ContainsAny(name, "/[]") || strings.IndexFunc(name, unicode.IsSpace) >= 0 {
		return "", "", fmt.Errorf("twig: bad variable name %q", name)
	}
	if expr == "" {
		return "", "", fmt.Errorf("twig: binding %q lacks a path", b)
	}
	return name, expr, nil
}

// splitHead splits "t0/actor" into ("t0", "/actor") and "t0//b" into
// ("t0", "//b"), preserving the axis slashes so pathexpr.Parse sees them.
// For absolute paths it returns ("", expr) when the head cannot be a
// variable reference (leading slash or predicates) or (head, "") when there
// is no slash at all.
func splitHead(expr string) (head, rest string) {
	if strings.HasPrefix(expr, "/") {
		return "", expr
	}
	idx := strings.IndexByte(expr, '/')
	if idx < 0 {
		return expr, ""
	}
	// Only treat as a variable head if the segment has no predicates.
	seg := expr[:idx]
	if strings.ContainsAny(seg, "[]") {
		return "", expr
	}
	return seg, expr[idx:]
}

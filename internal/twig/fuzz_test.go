package twig

import "testing"

// FuzzParse checks that the twig parser never panics and that accepted
// queries round-trip through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"for t0 in //movie[/type=5], t1 in t0/actor, t2 in t0/producer",
		"t0 in a, t1 in t0/b, t2 in t1/c",
		"for t0 in author, t1 in t0/paper[year>2000], t2 in t1/keyword",
		"t0 in a",
		"t0 in a, t1 in t0//b",
		"",
		"for",
		"x in",
		"x in a, x in x/b",
		"t0 in a[b, t1 in t0/c",
		"t in a, u in t/b[c=1:2]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		s := q.String()
		q2, err := Parse(s)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", src, s, err)
		}
		if q2.String() != s {
			t.Fatalf("rendering not a fixed point: %q -> %q", s, q2.String())
		}
		// Structural invariants on whatever was parsed.
		if q.NodeCount() < 1 {
			t.Fatalf("parsed query has %d nodes", q.NodeCount())
		}
	})
}

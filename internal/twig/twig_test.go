package twig

import (
	"strings"
	"testing"

	"xsketch/internal/pathexpr"
)

func TestParsePaperMovieQuery(t *testing.T) {
	q, err := Parse("for t0 in //movie[/type=5], t1 in t0/actor, t2 in t0/producer")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, want 3", q.NodeCount())
	}
	if len(q.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(q.Root.Children))
	}
	if q.Root.Path.Steps[0].Label != "movie" || q.Root.Path.Steps[0].Axis != pathexpr.Descendant {
		t.Fatalf("root path = %s", q.Root.Path)
	}
	if len(q.Root.Path.Steps[0].Branches) != 1 {
		t.Fatalf("root branches = %d", len(q.Root.Path.Steps[0].Branches))
	}
	if q.Root.Children[0].Path.String() != "actor" {
		t.Fatalf("child0 = %s", q.Root.Children[0].Path)
	}
}

func TestParsePaperBibQuery(t *testing.T) {
	// The twig query of Figure 2(b): authors, their name, papers with
	// year > 2000, and the papers' title and keyword.
	q, err := Parse("for t0 in author, t1 in t0/name, t2 in t0/paper[year>2000], t3 in t2/title, t4 in t2/keyword")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.NodeCount() != 5 {
		t.Fatalf("NodeCount = %d, want 5", q.NodeCount())
	}
	if len(q.Root.Children) != 2 {
		t.Fatalf("root children = %d", len(q.Root.Children))
	}
	paper := q.Root.Children[1]
	if len(paper.Children) != 2 {
		t.Fatalf("paper children = %d", len(paper.Children))
	}
	if q.Leaves() != 3 {
		t.Fatalf("Leaves = %d, want 3", q.Leaves())
	}
	// Internal nodes: t0 (2 children), t2 (2 children) -> avg fanout 2.
	if got := q.AvgFanout(); got != 2 {
		t.Fatalf("AvgFanout = %v, want 2", got)
	}
}

func TestParseOptionalFor(t *testing.T) {
	q1 := MustParse("for t0 in a, t1 in t0/b")
	q2 := MustParse("t0 in a, t1 in t0/b")
	if q1.String() != q2.String() {
		t.Fatalf("%q vs %q", q1, q2)
	}
}

func TestParseDeepChains(t *testing.T) {
	q := MustParse("x in a/b/c, y in x/d/e")
	if q.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", q.NodeCount())
	}
	if len(q.Root.Path.Steps) != 3 || len(q.Root.Children[0].Path.Steps) != 2 {
		t.Fatal("step counts wrong")
	}
	if !q.IsPathQuery() {
		t.Fatal("IsPathQuery = false")
	}
}

func TestParseCommaInsidePredicate(t *testing.T) {
	// Ensure bracket-nesting is respected when splitting bindings. We don't
	// have commas in predicates in the grammar, but brackets with slashes
	// must not confuse the splitter.
	q := MustParse("t0 in a[b/c]/d, t1 in t0/e")
	if q.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d", q.NodeCount())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"for ",
		"t0 in",
		"t0 a/b",
		"t0 in a, t1 in a/b",        // second binding must reference a variable
		"t0 in a, t0 in t0/b",       // duplicate variable
		"t0 in a, t1 in t0/",        // missing path after variable
		"t0 in a, t1 in tX/b",       // unknown variable
		"t0 in a[b, t1 in t0/c",     // unbalanced bracket
		"t0 in a]b",                 // unbalanced close  bracket
		"t 0 in a",                  // bad variable name
		"t0 in a, , t1 in t0/b",     // empty binding
		"t0 in a, t1 in t0/b[>bad]", // path error propagates
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"for t0 in //movie[/type=5], t1 in t0/actor, t2 in t0/producer",
		"for t0 in author, t1 in t0/name, t2 in t0/paper[year>2000], t3 in t2/title, t4 in t2/keyword",
		"for t0 in a/b/c",
	}
	for _, src := range cases {
		q := MustParse(src)
		q2 := MustParse(q.String())
		if q.String() != q2.String() {
			t.Errorf("round trip %q -> %q -> %q", src, q, q2)
		}
	}
}

func TestBuilderAPI(t *testing.T) {
	q := New(pathexpr.MustParse("author"))
	name := q.AddChild(q.Root, pathexpr.MustParse("name"))
	paper := q.AddChild(q.Root, pathexpr.MustParse("paper"))
	q.AddChild(paper, pathexpr.MustParse("keyword"))
	if q.NodeCount() != 4 {
		t.Fatalf("NodeCount = %d", q.NodeCount())
	}
	if name.Var != "t1" {
		t.Fatalf("name.Var = %q", name.Var)
	}
	nodes := q.Nodes()
	if len(nodes) != 4 || nodes[0] != q.Root {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse("t0 in a[>5], t1 in t0/b")
	c := q.Clone()
	c.Root.Path.Steps[0].Value.Lo = 99
	c.Root.Children[0].Path.Steps[0].Label = "zzz"
	if q.Root.Path.Steps[0].Value.Lo == 99 || q.Root.Children[0].Path.Steps[0].Label == "zzz" {
		t.Fatal("clone aliases original")
	}
	if c.NodeCount() != q.NodeCount() {
		t.Fatal("clone shape differs")
	}
}

func TestIsSimple(t *testing.T) {
	if !MustParse("t0 in a/b, t1 in t0/c").IsSimple() {
		t.Error("simple query reported non-simple")
	}
	if MustParse("t0 in a[>5]").IsSimple() {
		t.Error("value predicate reported simple")
	}
	if MustParse("t0 in a[b]").IsSimple() {
		t.Error("branch predicate reported simple")
	}
	if MustParse("t0 in //a").IsSimple() {
		t.Error("descendant axis reported simple")
	}
}

func TestCountValuePreds(t *testing.T) {
	q := MustParse("t0 in a[>5], t1 in t0/b[c=2]/d[<9]")
	if got := q.CountValuePreds(); got != 3 {
		t.Fatalf("CountValuePreds = %d, want 3", got)
	}
}

func TestStringRenumbersVars(t *testing.T) {
	q := MustParse("x in a, y in x/b")
	s := q.String()
	if !strings.Contains(s, "t0 in a") || !strings.Contains(s, "t1 in t0/b") {
		t.Fatalf("String = %q", s)
	}
}

func TestIsPathQueryFalseForBranching(t *testing.T) {
	q := MustParse("t0 in a, t1 in t0/b, t2 in t0/c")
	if q.IsPathQuery() {
		t.Fatal("branching twig reported as path query")
	}
}

package twig

import (
	"fmt"
	"strings"

	"xsketch/internal/pathexpr"
)

// Node is one node of a twig query. Its Path is evaluated relative to the
// parent node's elements (or to the document root for the query root).
type Node struct {
	// Var is an optional variable name (kept for display; semantics are
	// positional).
	Var      string
	Path     *pathexpr.Path
	Children []*Node
}

// Query is a twig query: a rooted tree of path-labeled nodes.
type Query struct {
	Root *Node
}

// New builds a query from a root path expression.
func New(rootPath *pathexpr.Path) *Query {
	return &Query{Root: &Node{Var: "t0", Path: rootPath}}
}

// AddChild attaches a new twig node with the given path under parent and
// returns it.
func (q *Query) AddChild(parent *Node, path *pathexpr.Path) *Node {
	n := &Node{Var: fmt.Sprintf("t%d", q.NodeCount()), Path: path}
	parent.Children = append(parent.Children, n)
	return n
}

// NodeCount returns the number of twig nodes in the query.
func (q *Query) NodeCount() int {
	count := 0
	q.Walk(func(*Node, *Node, int) { count++ })
	return count
}

// Walk visits every node in depth-first (pre-)order, passing the node, its
// parent (nil for the root) and its depth.
func (q *Query) Walk(fn func(n, parent *Node, depth int)) {
	var rec func(n, parent *Node, depth int)
	rec = func(n, parent *Node, depth int) {
		fn(n, parent, depth)
		for _, c := range n.Children {
			rec(c, n, depth+1)
		}
	}
	if q.Root != nil {
		rec(q.Root, nil, 0)
	}
}

// Nodes returns all twig nodes in depth-first order.
func (q *Query) Nodes() []*Node {
	var out []*Node
	q.Walk(func(n, _ *Node, _ int) { out = append(out, n) })
	return out
}

// Leaves returns the number of leaf twig nodes.
func (q *Query) Leaves() int {
	n := 0
	q.Walk(func(node, _ *Node, _ int) {
		if len(node.Children) == 0 {
			n++
		}
	})
	return n
}

// AvgFanout returns the average number of children over internal twig nodes
// (the paper's Table 2 "Avg. Fanout"); 0 for a single-node query.
func (q *Query) AvgFanout() float64 {
	internal, children := 0, 0
	q.Walk(func(n, _ *Node, _ int) {
		if len(n.Children) > 0 {
			internal++
			children += len(n.Children)
		}
	})
	if internal == 0 {
		return 0
	}
	return float64(children) / float64(internal)
}

// IsPathQuery reports whether the twig degenerates to a single path (every
// node has at most one child).
func (q *Query) IsPathQuery() bool {
	ok := true
	q.Walk(func(n, _ *Node, _ int) {
		if len(n.Children) > 1 {
			ok = false
		}
	})
	return ok
}

// IsSimple reports whether every node's path is simple (child axis only, no
// predicates); with IsPathQuery this characterises the paper's "simple path"
// CST-comparison workload.
func (q *Query) IsSimple() bool {
	ok := true
	q.Walk(func(n, _ *Node, _ int) {
		if !n.Path.IsSimple() {
			ok = false
		}
	})
	return ok
}

// CountValuePreds returns the number of value predicates anywhere in the
// query (step predicates and branch predicates included).
func (q *Query) CountValuePreds() int {
	total := 0
	q.Walk(func(n, _ *Node, _ int) { total += n.Path.CountValuePreds() })
	return total
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	var rec func(n *Node) *Node
	rec = func(n *Node) *Node {
		out := &Node{Var: n.Var, Path: n.Path.Clone()}
		for _, c := range n.Children {
			out.Children = append(out.Children, rec(c))
		}
		return out
	}
	if q.Root == nil {
		return &Query{}
	}
	return &Query{Root: rec(q.Root)}
}

// String renders the query as a for-clause. Variables are renumbered in
// depth-first order, matching the paper's convention.
func (q *Query) String() string {
	var parts []string
	names := make(map[*Node]string)
	i := 0
	q.Walk(func(n, parent *Node, _ int) {
		name := fmt.Sprintf("t%d", i)
		names[n] = name
		i++
		if parent == nil {
			parts = append(parts, fmt.Sprintf("%s in %s", name, n.Path))
		} else {
			ps := n.Path.String()
			sep := "/"
			if strings.HasPrefix(ps, "//") {
				sep = ""
			}
			parts = append(parts, fmt.Sprintf("%s in %s%s%s", name, names[parent], sep, ps))
		}
	})
	return "for " + strings.Join(parts, ", ")
}

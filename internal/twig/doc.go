// Package twig implements the paper's twig query model (Section 2): a
// node-labeled tree T_Q(V_Q, E_Q) where each node t_i carries a path
// expression P_i describing the structural relationship between its elements
// and those of its parent node. The result of a twig query is the set of
// binding tuples assigning one document element to every twig node; the
// query's selectivity is the number of such tuples.
//
// Queries can be built programmatically or parsed from the XQuery-style
// for-clause notation the paper uses:
//
//	for t0 in //movie[type=5], t1 in t0/actor, t2 in t0/producer
package twig

package build

import (
	"encoding/json"
	"io"

	"xsketch/internal/obs"
)

// Event is one adopted XBUILD refinement, emitted to the configured Sink
// as the build runs. Fields use snake_case JSON so a `-trace` stream is
// directly loadable by log tooling.
type Event struct {
	// Step is the 1-based index of the adopted refinement.
	Step int `json:"step"`
	// Op is the refinement operation name (e.g. "b-stabilize").
	Op string `json:"op"`
	// Target is the synopsis node the operation transforms.
	Target int `json:"target"`
	// Refinement is the operation's compact rendering, e.g.
	// "edge-expand(n4 += 4->9)".
	Refinement string `json:"refinement"`
	// GainPerByte is the marginal gain that selected this candidate:
	// scoring-error reduction per byte of synopsis growth. Zero under
	// RandomSelection, which never computes gains.
	GainPerByte float64 `json:"gain_per_byte"`
	// Error is the scoring-workload error after the refinement.
	Error float64 `json:"error"`
	// SizeBytes is the synopsis size after the refinement.
	SizeBytes int `json:"size_bytes"`
	// SpaceDelta is the synopsis growth this refinement paid for.
	SpaceDelta int `json:"space_delta"`
	// CandidatesScored is how many candidates were scored this step.
	CandidatesScored int `json:"candidates_scored"`
	// ElapsedSeconds is the wall time the step took (candidate
	// generation, scoring, and adoption).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// A Sink receives one Event per adopted refinement, in step order, from
// the goroutine running the build. Emit must not retain the event.
type Sink interface {
	// Emit consumes one adopted-step event.
	Emit(Event)
}

// JSONLSink streams events as JSON Lines, one object per step.
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing one JSON object per line to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line; encoding errors are dropped
// (telemetry must never fail a build).
func (s *JSONLSink) Emit(ev Event) { s.enc.Encode(ev) }

// MultiSink fans every event out to each member sink in order.
type MultiSink []Sink

// Emit forwards the event to every member.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// ObsSink adapts build telemetry onto an obs metrics registry, exposing
// the xbuild_* families: adopted steps by op, candidates scored, the
// current synopsis size and scoring error, and per-step latency.
type ObsSink struct {
	steps *obs.CounterVec
	cands *obs.Counter
	size  *obs.Gauge
	err   *obs.Gauge
	lat   *obs.Histogram
}

// NewObsSink registers the xbuild_* metric families on reg and returns
// the sink feeding them.
func NewObsSink(reg *obs.Registry) *ObsSink {
	return &ObsSink{
		steps: reg.NewCounterVec("xbuild_steps_total",
			"Adopted XBUILD refinements by operation.", "op"),
		cands: reg.NewCounter("xbuild_candidates_scored_total",
			"Candidates scored across all build steps."),
		size: reg.NewGauge("xbuild_synopsis_size_bytes",
			"Synopsis size after the most recent refinement."),
		err: reg.NewGauge("xbuild_scoring_error",
			"Scoring-workload error after the most recent refinement."),
		lat: reg.NewHistogram("xbuild_step_latency_seconds",
			"Wall time per adopted refinement step.", nil),
	}
}

// Emit updates every xbuild_* family from one step event.
func (s *ObsSink) Emit(ev Event) {
	s.steps.With(ev.Op).Inc()
	s.cands.Add(uint64(ev.CandidatesScored))
	s.size.Set(float64(ev.SizeBytes))
	s.err.Set(ev.Error)
	s.lat.Observe(ev.ElapsedSeconds)
}

// emit sends an adopted-step event to the configured sink, if any.
func (b *Builder) emit(ev Event) {
	if b.opts.Sink != nil {
		b.opts.Sink.Emit(ev)
	}
}

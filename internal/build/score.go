package build

import (
	"math"
	"sync"

	"xsketch/internal/graphsyn"
	"xsketch/internal/metrics"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	core "xsketch/internal/xsketch"
)

// scoredQuery is one scoring-workload query with its truth: the exact
// selectivity, or the reference synopsis's estimate under
// Options.ReferenceScoring.
type scoredQuery struct {
	q     *twig.Query
	truth int64
}

// scoreResult is one candidate's outcome: the refined synopsis, its size,
// and its scoring-workload error.
type scoreResult struct {
	sk   *core.Sketch
	size int
	err  float64
}

// initScoring prepares the scoring workload and, when requested, the
// reference synopsis whose estimates stand in for true counts.
func (b *Builder) initScoring() {
	if b.opts.ReferenceScoring {
		// The reference summary is a large coarsest synopsis: label-split
		// structure with generous histogram budgets (the paper's "large
		// reference synopsis", cheap to build, far more accurate than the
		// budgeted synopsis being constructed).
		cfg := b.opts.Sketch
		if cfg.InitialEdgeBuckets < 16 {
			cfg.InitialEdgeBuckets = 16
		}
		if cfg.InitialValueBuckets < 16 {
			cfg.InitialValueBuckets = 16
		}
		b.ref = core.New(b.doc, cfg)
	}
	if w := b.opts.ScoringWorkload; w != nil {
		b.base = b.scoredQueries(w)
		b.queries = b.base
		return
	}
	// Sample a P+V workload so value predicates exercise the value
	// refinements. Queries are kept smaller than the paper's 4-8
	// evaluation twigs: scoring runs per candidate per step, and small
	// twigs localize the gain signal.
	cfg := workload.DefaultConfig(workload.KindPV)
	cfg.NumQueries = b.opts.ScoringQueries
	cfg.MinNodes, cfg.MaxNodes = 2, 6
	cfg.Seed = b.opts.Seed
	b.base = b.scoredQueries(workload.Generate(b.doc, cfg))
	b.queries = b.base
}

// resampleAnchored refreshes the anchored share of the scoring workload
// with queries rooted in the extent of the refined node (the paper samples
// queries "around the regions transformed by the candidate operations").
// A fixed ScoringWorkload disables this.
func (b *Builder) resampleAnchored(node graphsyn.NodeID) {
	if b.opts.ScoringWorkload != nil {
		return
	}
	cfg := workload.DefaultConfig(workload.KindPV)
	cfg.NumQueries = b.opts.ScoringQueries / 3
	cfg.MinNodes, cfg.MaxNodes = 2, 6
	cfg.Seed = b.rng.Int63()
	cfg.Anchors = b.sk.Syn.Node(node).Extent
	if cfg.NumQueries > 0 {
		b.anchored = b.scoredQueries(workload.Generate(b.doc, cfg))
	}
	b.queries = append(append([]scoredQuery(nil), b.base...), b.anchored...)
}

// scoredQueries converts a generated workload into scoring queries,
// substituting reference-synopsis estimates for the exact truths under
// ReferenceScoring. Reference estimates run on the batch path: the
// reference synopsis is never refined, so its estimation cache persists
// across every resampling and build step.
func (b *Builder) scoredQueries(w *workload.Workload) []scoredQuery {
	out := make([]scoredQuery, 0, len(w.Queries))
	if b.ref != nil {
		qs := make([]*twig.Query, len(w.Queries))
		for i, q := range w.Queries {
			qs[i] = q.Twig
		}
		ests := b.ref.EstimateBatch(qs, b.opts.Parallelism)
		for i, q := range w.Queries {
			out = append(out, scoredQuery{q: q.Twig, truth: int64(math.Round(ests[i].Estimate))})
		}
		return out
	}
	for _, q := range w.Queries {
		out = append(out, scoredQuery{q: q.Twig, truth: q.Truth})
	}
	return out
}

// errorOf scores a synopsis on the current scoring workload with the
// paper's sanity-bounded average relative error. It runs the batch path
// single-worker: candidate scoring already saturates the worker pool one
// level up, and the per-sketch cache (shared across the workload's
// queries) is where the win is.
func (b *Builder) errorOf(sk *core.Sketch) float64 {
	return b.errorOfParallel(sk, 1)
}

// errorOfParallel is errorOf with an explicit estimation worker count,
// used where the caller is not itself running on the scoring pool.
func (b *Builder) errorOfParallel(sk *core.Sketch, workers int) float64 {
	if len(b.queries) == 0 {
		return 0
	}
	qs := make([]*twig.Query, len(b.queries))
	for i, sq := range b.queries {
		qs[i] = sq.q
	}
	ests := sk.EstimateBatch(qs, workers)
	results := make([]metrics.Result, len(b.queries))
	for i, sq := range b.queries {
		results[i] = metrics.Result{Truth: sq.truth, Estimate: ests[i].Estimate}
	}
	return metrics.Evaluate(results, 0).AvgError
}

// scoreOne clones the current synopsis, applies the candidate and scores
// it. Returns nil when the candidate is inapplicable.
func (b *Builder) scoreOne(c candidate) *scoreResult {
	sk := b.sk.Clone()
	if !b.apply(sk, c.ref) {
		return nil
	}
	return &scoreResult{sk: sk, size: sk.SizeBytes(), err: b.errorOf(sk)}
}

// scoreAll scores every candidate on a worker pool. Results land at their
// candidate's index, and each candidate's score is independent of the
// others, so the outcome is deterministic regardless of worker count or
// scheduling order.
func (b *Builder) scoreAll(cands []candidate) []*scoreResult {
	out := make([]*scoreResult, len(cands))
	workers := b.opts.Parallelism
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, c := range cands {
			out[i] = b.scoreOne(c)
		}
		return out
	}
	ch := make(chan int, len(cands))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = b.scoreOne(cands[i])
			}
		}()
	}
	for i := range cands {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return out
}

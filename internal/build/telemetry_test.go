package build

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"xsketch/internal/obs"
	"xsketch/internal/xmlgen"
	core "xsketch/internal/xsketch"
)

// collectSink records every event for assertions.
type collectSink struct{ events []Event }

func (c *collectSink) Emit(ev Event) { c.events = append(c.events, ev) }

func telemetryOpts() Options {
	opts := DefaultOptions(1 << 30)
	opts.Seed = 3
	opts.MaxSteps = 8
	return opts
}

func TestSinkReceivesOneEventPerStep(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 7, Scale: 0.02})
	sink := &collectSink{}
	opts := telemetryOpts()
	opts.Sink = sink
	b := NewBuilder(doc, opts)
	b.Run()

	steps := b.Steps()
	if len(sink.events) != len(steps) {
		t.Fatalf("%d events for %d adopted steps", len(sink.events), len(steps))
	}
	prevSize := core.New(doc, opts.Sketch).SizeBytes()
	for i, ev := range sink.events {
		s := steps[i]
		if ev.Step != i+1 {
			t.Errorf("event %d: step %d, want %d", i, ev.Step, i+1)
		}
		if ev.Op != s.Refinement.Op.String() || ev.Refinement != s.Refinement.String() {
			t.Errorf("event %d: op/refinement %q/%q != adopted %q", i, ev.Op, ev.Refinement, s.Refinement)
		}
		if ev.Target != int(s.Refinement.target()) {
			t.Errorf("event %d: target %d, want %d", i, ev.Target, s.Refinement.target())
		}
		if ev.SizeBytes != s.SizeBytes || ev.Error != s.Error {
			t.Errorf("event %d: size/error %d/%v != step %d/%v", i, ev.SizeBytes, ev.Error, s.SizeBytes, s.Error)
		}
		if ev.SpaceDelta != s.SizeBytes-prevSize {
			t.Errorf("event %d: space delta %d, want %d", i, ev.SpaceDelta, s.SizeBytes-prevSize)
		}
		prevSize = s.SizeBytes
		if ev.GainPerByte <= 0 {
			t.Errorf("event %d: gain per byte %v, want > 0 under marginal-gains selection", i, ev.GainPerByte)
		}
		if ev.CandidatesScored <= 0 {
			t.Errorf("event %d: candidates scored %d", i, ev.CandidatesScored)
		}
		if ev.ElapsedSeconds < 0 {
			t.Errorf("event %d: negative elapsed %v", i, ev.ElapsedSeconds)
		}
	}
}

// TestSinkDoesNotChangeBuild pins telemetry's observational contract: the
// built synopsis is byte-identical with and without a sink.
func TestSinkDoesNotChangeBuild(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 7, Scale: 0.02})
	buildWith := func(sink Sink) []byte {
		opts := telemetryOpts()
		opts.Sink = sink
		var buf bytes.Buffer
		if err := core.Save(&buf, XBuild(doc, opts)); err != nil {
			t.Fatalf("Save: %v", err)
		}
		return buf.Bytes()
	}
	plain := buildWith(nil)
	traced := buildWith(&collectSink{})
	if !bytes.Equal(plain, traced) {
		t.Fatal("sink changed the built synopsis")
	}
}

func TestJSONLSinkStreamsSnakeCase(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 7, Scale: 0.02})
	var buf bytes.Buffer
	opts := telemetryOpts()
	opts.Sink = NewJSONLSink(&buf)
	b := NewBuilder(doc, opts)
	b.Run()

	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, key := range []string{
			"step", "op", "target", "refinement", "gain_per_byte",
			"error", "size_bytes", "space_delta", "candidates_scored",
			"elapsed_seconds",
		} {
			if _, ok := m[key]; !ok {
				t.Errorf("line %d missing key %q", lines, key)
			}
		}
	}
	if lines != len(b.Steps()) {
		t.Fatalf("%d JSONL lines for %d steps", lines, len(b.Steps()))
	}
	if lines == 0 {
		t.Fatal("no refinements adopted; test exercises nothing")
	}
}

func TestObsSinkAndMultiSink(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 7, Scale: 0.02})
	reg := obs.NewRegistry()
	collect := &collectSink{}
	opts := telemetryOpts()
	opts.Sink = MultiSink{NewObsSink(reg), collect}
	b := NewBuilder(doc, opts)
	b.Run()
	if len(collect.events) == 0 {
		t.Fatal("MultiSink did not forward to the collecting member")
	}

	var out bytes.Buffer
	reg.WriteTo(&out)
	text := out.String()
	for _, family := range []string{
		"xbuild_steps_total", "xbuild_candidates_scored_total",
		"xbuild_synopsis_size_bytes", "xbuild_scoring_error",
		"xbuild_step_latency_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("registry missing family %s:\n%s", family, text)
		}
	}
	last := collect.events[len(collect.events)-1]
	if !strings.Contains(text, "xbuild_synopsis_size_bytes "+strconv.Itoa(last.SizeBytes)) {
		t.Errorf("size gauge does not reflect last step (%d):\n%s", last.SizeBytes, text)
	}
	if !strings.Contains(text, "xbuild_step_latency_seconds_count "+strconv.Itoa(len(collect.events))) {
		t.Errorf("latency histogram count != %d steps:\n%s", len(collect.events), text)
	}
}

func TestRandomSelectionEmitsZeroGain(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 7, Scale: 0.02})
	sink := &collectSink{}
	opts := telemetryOpts()
	opts.MaxSteps = 3
	opts.RandomSelection = true
	opts.Sink = sink
	NewBuilder(doc, opts).Run()
	if len(sink.events) == 0 {
		t.Fatal("no events under RandomSelection")
	}
	for i, ev := range sink.events {
		if ev.GainPerByte != 0 {
			t.Errorf("event %d: gain %v, want 0 (random selection computes no gains)", i, ev.GainPerByte)
		}
	}
}

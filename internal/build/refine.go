package build

import (
	"fmt"

	"xsketch/internal/graphsyn"
	core "xsketch/internal/xsketch"
)

// Op identifies one of the paper's six refinement operations (Section 5).
type Op int

const (
	// OpBStabilize splits a node so an incoming edge becomes B-stable.
	OpBStabilize Op = iota
	// OpFStabilize splits a node so an outgoing edge becomes F-stable.
	OpFStabilize
	// OpEdgeRefine grows a node's edge-histogram bucket budget.
	OpEdgeRefine
	// OpEdgeExpand adds a count dimension to a node's edge histogram.
	OpEdgeExpand
	// OpValueRefine grows a node's value-summary unit budget.
	OpValueRefine
	// OpValueExpand adds a value dimension to a node's extended histogram.
	OpValueExpand
)

// String names the operation the way experiment logs print it.
func (o Op) String() string {
	switch o {
	case OpBStabilize:
		return "b-stabilize"
	case OpFStabilize:
		return "f-stabilize"
	case OpEdgeRefine:
		return "edge-refine"
	case OpEdgeExpand:
		return "edge-expand"
	case OpValueRefine:
		return "value-refine"
	case OpValueExpand:
		return "value-expand"
	}
	return "?"
}

// Refinement describes one candidate operation, fully determined by its
// fields so it can be applied to any clone of the synopsis it was
// generated from.
type Refinement struct {
	Op Op
	// Node is the node whose summary is refined (all ops except the
	// structural splits, which identify their target via From/To).
	Node graphsyn.NodeID
	// From, To identify the synopsis edge: the stabilized edge for the
	// structural ops, or the added scope edge for edge-expand.
	From, To graphsyn.NodeID
	// Source is the node providing the values of a value-expand dimension.
	Source graphsyn.NodeID
	// Buckets is the new bucket/unit budget for the refine ops and the bin
	// count for value-expand.
	Buckets int
}

// target returns the node whose neighborhood the operation transforms,
// used to anchor the per-step workload resampling.
func (r Refinement) target() graphsyn.NodeID {
	switch r.Op {
	case OpBStabilize:
		return r.To
	case OpFStabilize:
		return r.From
	}
	return r.Node
}

// String renders the operation compactly, e.g. "b-stabilize(3->7)" or
// "edge-expand(n4 += 4->9)".
func (r Refinement) String() string {
	switch r.Op {
	case OpBStabilize, OpFStabilize:
		return fmt.Sprintf("%s(%d->%d)", r.Op, r.From, r.To)
	case OpEdgeRefine:
		return fmt.Sprintf("%s(n%d, %d buckets)", r.Op, r.Node, r.Buckets)
	case OpValueRefine:
		return fmt.Sprintf("%s(n%d, %d units)", r.Op, r.Node, r.Buckets)
	case OpEdgeExpand:
		return fmt.Sprintf("%s(n%d += %d->%d)", r.Op, r.Node, r.From, r.To)
	case OpValueExpand:
		return fmt.Sprintf("%s(n%d += values(n%d))", r.Op, r.Node, r.Source)
	}
	return r.Op.String()
}

// candidate pairs a refinement with nothing else today; the indirection
// keeps room for per-candidate scoring hints.
type candidate struct {
	ref Refinement
}

// candidates generates the full candidate set over the current synopsis in
// a fixed, deterministic order: structural splits over the sorted edge
// list, then per-node (ascending ID) budget growth, scope expansion and
// value expansion.
func (b *Builder) candidates() []candidate {
	sk := b.sk
	var out []candidate
	edges := sk.Syn.Edges()
	for _, e := range edges {
		if !e.BStable {
			out = append(out, candidate{Refinement{Op: OpBStabilize, From: e.From, To: e.To}})
		}
	}
	for _, e := range edges {
		if !e.FStable {
			out = append(out, candidate{Refinement{Op: OpFStabilize, From: e.From, To: e.To}})
		}
	}
	for _, n := range sk.Syn.Nodes() {
		s := sk.Summary(n.ID)
		if s == nil {
			continue
		}
		// edge-refine: only when compression saturated the budget (an
		// unsaturated histogram is already exact).
		if s.Hist != nil && s.Hist.Dims() > 0 && s.Hist.NumBuckets() >= s.Buckets {
			out = append(out, candidate{Refinement{Op: OpEdgeRefine, Node: n.ID, Buckets: s.Buckets * 2}})
		}
		// value-refine: only when the node stores a saturated value summary.
		// A zero ValueBuckets config means value summaries are deliberately
		// disabled (e.g. the value-free CST comparison), so no candidate.
		if s.ValueBuckets > 0 && s.VHist != nil && s.VHist.SizeUnits() >= s.ValueBuckets {
			out = append(out, candidate{Refinement{Op: OpValueRefine, Node: n.ID, Buckets: s.ValueBuckets * 2}})
		}
		// edge-expand, forward: any child edge not yet in scope (the
		// default scope holds only F-stable child edges).
		for _, c := range n.Children {
			e := core.ScopeEdge{From: n.ID, To: c}
			if !inScope(s.Scope, e) {
				out = append(out, candidate{Refinement{Op: OpEdgeExpand, Node: n.ID, From: e.From, To: e.To}})
			}
		}
		// edge-expand, backward: counts from strict B-stable ancestors
		// within TSN (the full model; gated because the paper's prototype
		// is forward-only).
		if b.opts.EnableBackwardExpand {
			anc := sk.Syn.BStableAncestors(n.ID)
			for _, a := range anc[1:] {
				for _, z := range sk.Syn.Node(a).Children {
					e := core.ScopeEdge{From: a, To: z}
					if !inScope(s.Scope, e) && sk.Syn.InTSN(n.ID, a, z) {
						out = append(out, candidate{Refinement{Op: OpEdgeExpand, Node: n.ID, From: a, To: z}})
					}
				}
			}
		}
		// value-expand: a dimension over the node's own values or a
		// child's values (paper Section 3.2, H^v).
		if s.ValuedCount > 0 && !hasValueDim(s, n.ID) {
			out = append(out, candidate{Refinement{Op: OpValueExpand, Node: n.ID, Source: n.ID, Buckets: b.opts.ValueExpandBins}})
		}
		for _, c := range n.Children {
			if cs := sk.Summary(c); cs != nil && cs.ValuedCount > 0 && !hasValueDim(s, c) {
				out = append(out, candidate{Refinement{Op: OpValueExpand, Node: n.ID, Source: c, Buckets: b.opts.ValueExpandBins}})
			}
		}
	}
	return out
}

func inScope(scope []core.ScopeEdge, e core.ScopeEdge) bool {
	for _, s := range scope {
		if s == e {
			return true
		}
	}
	return false
}

func hasValueDim(s *core.NodeSummary, source graphsyn.NodeID) bool {
	for _, vd := range s.ValueDims {
		if vd.Source == source {
			return true
		}
	}
	return false
}

// apply executes the refinement on the given sketch (typically a clone of
// the one it was generated from). It reports false when the operation
// turns out to be a no-op there — e.g. the split predicate does not
// partition the extent, or the expanded dimension does not survive
// validation.
func (b *Builder) apply(sk *core.Sketch, r Refinement) bool {
	switch r.Op {
	case OpBStabilize:
		newID, ok := sk.Syn.BStabilize(r.From, r.To)
		if !ok {
			return false
		}
		inheritSummary(sk, r.To, newID)
		b.rebuildAfterSplit(sk, r.To, newID)
	case OpFStabilize:
		newID, ok := sk.Syn.FStabilize(r.From, r.To)
		if !ok {
			return false
		}
		inheritSummary(sk, r.From, newID)
		b.rebuildAfterSplit(sk, r.From, newID)
	case OpEdgeRefine:
		s := sk.Summary(r.Node)
		if s == nil || r.Buckets <= s.Buckets {
			return false
		}
		s.Buckets = r.Buckets
		sk.RebuildNode(r.Node)
	case OpValueRefine:
		s := sk.Summary(r.Node)
		if s == nil || r.Buckets <= s.ValueBuckets {
			return false
		}
		s.ValueBuckets = r.Buckets
		sk.RebuildNode(r.Node)
	case OpEdgeExpand:
		s := sk.Summary(r.Node)
		e := core.ScopeEdge{From: r.From, To: r.To}
		if s == nil || inScope(s.Scope, e) {
			return false
		}
		s.ExtraScope = append(s.ExtraScope, e)
		sk.RebuildNode(r.Node)
		// RebuildNode drops the edge again if it is not a valid scope
		// member; treat that as inapplicable.
		return inScope(sk.Summary(r.Node).Scope, e)
	case OpValueExpand:
		return sk.AddValueDim(r.Node, r.Source, r.Buckets)
	default:
		return false
	}
	return true
}

// inheritSummary seeds the summary of a node split off from `from` with
// the parent node's budgets, expanded scope and value dimensions (its
// extent is a subset of the old one, so the old construction decisions are
// the best available prior). Forward extra-scope edges are rewritten to
// originate from the new node; everything is revalidated on rebuild.
func inheritSummary(sk *core.Sketch, from, to graphsyn.NodeID) {
	src := sk.Summaries[from]
	if src == nil {
		return
	}
	dst := &core.NodeSummary{
		Buckets:      src.Buckets,
		ValueBuckets: src.ValueBuckets,
		ValueDims:    append([]*core.ValueDim(nil), src.ValueDims...),
	}
	for _, e := range src.ExtraScope {
		if e.From == from {
			e.From = to
		}
		dst.ExtraScope = append(dst.ExtraScope, e)
	}
	sk.Summaries[to] = dst
}

// rebuildAfterSplit recomputes the summaries invalidated by splitting v
// into (v, w). Without backward counts only the two halves, their parents
// (whose F-stable default scopes reference v/w) and their children (whose
// B-stable ancestor chains, and hence extra-scope/value-dim validity, may
// have changed) are affected; with backward expand enabled, scope edges
// can reference arbitrary ancestors, so everything is rebuilt.
func (b *Builder) rebuildAfterSplit(sk *core.Sketch, v, w graphsyn.NodeID) {
	if b.opts.EnableBackwardExpand {
		sk.RebuildAll()
		return
	}
	affected := map[graphsyn.NodeID]bool{v: true, w: true}
	for _, id := range []graphsyn.NodeID{v, w} {
		n := sk.Syn.Node(id)
		for _, p := range n.Parents {
			affected[p] = true
		}
		for _, c := range n.Children {
			affected[c] = true
		}
	}
	// Deterministic rebuild order (map iteration order is random, and
	// RebuildNode allocates into shared state).
	for _, n := range sk.Syn.Nodes() {
		if affected[n.ID] {
			sk.RebuildNode(n.ID)
		}
	}
}

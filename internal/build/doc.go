// Package build implements XBUILD, the paper's greedy construction
// algorithm for Twig XSKETCH synopses (Section 5).
//
// Construction starts from the coarsest label-split sketch (xsketch.New)
// and repeatedly applies the refinement operation with the best marginal
// gain: the reduction in estimation error on a sampled scoring workload
// per byte of additional synopsis space. Six refinement operations are
// generated as candidates (see refine.go):
//
//   - b-stabilize / f-stabilize: structural node splits that make a
//     synopsis edge backward- or forward-stable;
//   - edge-refine / value-refine: grow a node's edge-histogram or
//     value-summary bucket budget;
//   - edge-expand: add a count dimension (a scope edge) to a node's edge
//     histogram — a forward count to a non-F-stable child or, with
//     Options.EnableBackwardExpand, a backward count from a B-stable
//     ancestor (the full model of Section 3.2);
//   - value-expand: add a value dimension to a node's extended histogram
//     H^v (Section 3.2).
//
// Candidate scoring runs on a worker pool and is deterministic: candidates
// are generated in a fixed order, each candidate is scored independently
// of the others, and the selection scans results in candidate order, so
// the same Options.Seed always yields the same synopsis regardless of
// scheduling or Options.Parallelism.
//
// Scoring truths default to exact selectivities of the sampled queries;
// Options.ReferenceScoring substitutes estimates from a large reference
// synopsis, the paper's method for "avoiding costly accesses to the
// database". Following the paper, part of the scoring workload is
// resampled after every adopted refinement, anchored "around the regions
// transformed by the candidate operations".
package build

package build

import (
	"bytes"
	"math"
	"testing"

	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
	core "xsketch/internal/xsketch"
)

// TestXBuildDeterministic pins the determinism guarantee of the parallel
// candidate scorer: the same seed yields byte-identical persisted synopses
// regardless of the worker count.
func TestXBuildDeterministic(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 7, Scale: 0.02})
	buildWith := func(par int) []byte {
		opts := DefaultOptions(1 << 30)
		opts.Seed = 3
		opts.MaxSteps = 15
		opts.Parallelism = par
		sk := XBuild(doc, opts)
		var buf bytes.Buffer
		if err := core.Save(&buf, sk); err != nil {
			t.Fatalf("Save: %v", err)
		}
		return buf.Bytes()
	}
	serial := buildWith(1)
	for run := 0; run < 2; run++ {
		if parallel := buildWith(4); !bytes.Equal(serial, parallel) {
			t.Fatalf("run %d: parallel build diverged from serial build (%d vs %d bytes)", run, len(parallel), len(serial))
		}
	}
}

// TestXBuildBudgetCompliance checks the built synopsis never exceeds its
// byte budget when the coarsest synopsis fits it.
func TestXBuildBudgetCompliance(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 2, Scale: 0.03})
	coarse := core.New(doc, core.DefaultConfig()).SizeBytes()
	for _, factor := range []int{2, 3, 5} {
		budget := coarse * factor
		opts := DefaultOptions(budget)
		opts.MaxSteps = 200
		b := NewBuilder(doc, opts)
		b.Run()
		sk := b.Sketch()
		if got := sk.SizeBytes(); got > budget {
			t.Errorf("budget %d: built %d bytes", budget, got)
		}
		if err := sk.Validate(); err != nil {
			t.Errorf("budget %d: invalid synopsis: %v", budget, err)
		}
	}
}

// TestBuilderRunTo checks incremental sweeps: each RunTo call leaves the
// synopsis valid and at least as large as before, and steps accumulate.
func TestBuilderRunTo(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 4, Scale: 0.03})
	coarse := core.New(doc, core.DefaultConfig()).SizeBytes()
	opts := DefaultOptions(1 << 30)
	opts.MaxSteps = 100
	b := NewBuilder(doc, opts)
	prevSize, prevSteps := b.Sketch().SizeBytes(), 0
	for _, f := range []float64{1.2, 1.6, 2.2, 3} {
		b.RunTo(int(f * float64(coarse)))
		sk := b.Sketch()
		if sk.SizeBytes() < prevSize {
			t.Fatalf("RunTo(%v) shrank the synopsis: %d -> %d", f, prevSize, sk.SizeBytes())
		}
		if len(b.Steps()) < prevSteps {
			t.Fatalf("steps went backwards")
		}
		if err := sk.Validate(); err != nil {
			t.Fatalf("RunTo(%v): %v", f, err)
		}
		prevSize, prevSteps = sk.SizeBytes(), len(b.Steps())
	}
}

// sixOpsDoc builds a document with one planted imperfection per refinement
// operation:
//
//   - lib/shop both contain item elements whose page fan-out depends on
//     the parent (5 vs 1) — only b-stabilize separates the conditional;
//   - some q elements lack an s child, and the two groups differ in their
//     w fan-out — f-stabilize splits them cheaply;
//   - a's b fan-out is bimodal — edge-refine needs extra buckets;
//   - e carries three always-present child tags (an expensive summary to
//     duplicate by splitting) plus a y child whose presence tracks the k
//     fan-outs — edge-expand adds the y count dimension for a few bytes;
//   - price values are heavily skewed — value-refine grows the summary;
//   - m's t-child value determines its act fan-out (the paper's
//     genre/cast-size correlation) — value-expand captures it.
func sixOpsDoc() *xmltree.Document {
	d := xmltree.NewDocument("r")
	root := d.Root()

	lib := d.AddChild(root, "lib")
	shop := d.AddChild(root, "shop")
	for i := 0; i < 12; i++ {
		it := d.AddChild(lib, "item")
		for p := 0; p < 5; p++ {
			d.AddChild(it, "page")
		}
	}
	for i := 0; i < 12; i++ {
		it := d.AddChild(shop, "item")
		d.AddChild(it, "page")
	}

	hub := d.AddChild(root, "hub")
	for i := 0; i < 12; i++ {
		q := d.AddChild(hub, "q")
		d.AddChild(q, "s")
		for j := 0; j < 6; j++ {
			d.AddChild(q, "w")
		}
	}
	for i := 0; i < 12; i++ {
		q := d.AddChild(hub, "q")
		d.AddChild(q, "w")
	}

	zone := d.AddChild(root, "zone")
	for i := 0; i < 15; i++ {
		a := d.AddChild(zone, "a")
		d.AddChild(a, "b")
	}
	for i := 0; i < 15; i++ {
		a := d.AddChild(zone, "a")
		for j := 0; j < 8; j++ {
			d.AddChild(a, "b")
		}
	}

	exch := d.AddChild(root, "exch")
	for i := 0; i < 24; i++ {
		e := d.AddChild(exch, "e")
		k := 1
		if i%2 == 1 {
			k = 7
		}
		for _, tag := range []string{"k1", "k2", "k3"} {
			for j := 0; j < k; j++ {
				d.AddChild(e, tag)
			}
		}
		if k == 7 {
			for j := 0; j < 5; j++ {
				d.AddChild(e, "y")
			}
		}
	}

	store := d.AddChild(root, "store")
	for i := 0; i < 30; i++ {
		p := d.AddChild(store, "prod")
		v := int64(i % 5)
		if i%7 == 0 {
			v = 900 + int64(i)
		}
		d.AddValueChild(p, "price", v)
	}

	cine := d.AddChild(root, "cine")
	for i := 0; i < 24; i++ {
		m := d.AddChild(cine, "m")
		g := int64(i % 2)
		d.AddValueChild(m, "t", g)
		acts := 1
		if g == 1 {
			acts = 9
		}
		for j := 0; j < acts; j++ {
			d.AddChild(m, "act")
		}
	}
	return d
}

// TestAllSixRefinementOpsSelected runs XBUILD on the crafted document and
// checks every refinement operation is adopted at least once.
func TestAllSixRefinementOpsSelected(t *testing.T) {
	doc := sixOpsDoc()
	opts := DefaultOptions(1 << 30)
	opts.Seed = 1
	opts.MaxSteps = 80
	opts.MaxCandidates = 400
	opts.ScoringQueries = 60
	opts.EnableBackwardExpand = true
	b := NewBuilder(doc, opts)
	b.Run()
	seen := map[Op]int{}
	for _, s := range b.Steps() {
		seen[s.Refinement.Op]++
	}
	t.Logf("%d steps: %v", len(b.Steps()), seen)
	for _, op := range []Op{OpBStabilize, OpFStabilize, OpEdgeRefine, OpEdgeExpand, OpValueRefine, OpValueExpand} {
		if seen[op] == 0 {
			t.Errorf("refinement %s never selected", op)
		}
	}
	if err := b.Sketch().Validate(); err != nil {
		t.Fatalf("final synopsis invalid: %v", err)
	}
}

// TestRandomSelectionBuilds checks the ablation policy still produces a
// valid, budget-compliant synopsis and stays deterministic per seed.
func TestRandomSelectionBuilds(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 5, Scale: 0.02})
	coarse := core.New(doc, core.DefaultConfig()).SizeBytes()
	opts := DefaultOptions(coarse * 3)
	opts.RandomSelection = true
	opts.MaxSteps = 30
	save := func() []byte {
		sk := XBuild(doc, opts)
		if err := sk.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if sk.SizeBytes() > opts.BudgetBytes {
			t.Fatalf("over budget: %d > %d", sk.SizeBytes(), opts.BudgetBytes)
		}
		var buf bytes.Buffer
		if err := core.Save(&buf, sk); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(save(), save()) {
		t.Fatal("random selection not deterministic for a fixed seed")
	}
}

// TestReferenceScoringBuilds checks reference-summary scoring runs and
// yields finite estimates comparable to exact-scored construction.
func TestReferenceScoringBuilds(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 6, Scale: 0.02})
	coarse := core.New(doc, core.DefaultConfig()).SizeBytes()
	opts := DefaultOptions(coarse * 3)
	opts.ReferenceScoring = true
	opts.MaxSteps = 20
	sk := XBuild(doc, opts)
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	w := workload.Generate(doc, workload.Config{Kind: workload.KindP, NumQueries: 10, MinNodes: 2, MaxNodes: 5, Seed: 8, BranchProb: 0.2, DescendantProb: 0.2, MultiStepProb: 0.2})
	for _, q := range w.Queries {
		est := sk.EstimateQuery(q.Twig)
		if est < 0 || math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("estimate %v for %s", est, q.Twig)
		}
	}
}

// TestScoringWorkloadOverride checks a caller-provided workload is used
// verbatim (no anchored resampling) and steers construction.
func TestScoringWorkloadOverride(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 9, Scale: 0.02})
	w := workload.Generate(doc, workload.Config{Kind: workload.KindSimple, NumQueries: 20, MinNodes: 1, MaxNodes: 1, Seed: 3, MultiStepProb: 0.8})
	if len(w.Queries) == 0 {
		t.Skip("no queries generated")
	}
	coarse := core.New(doc, core.DefaultConfig()).SizeBytes()
	opts := DefaultOptions(coarse * 3)
	opts.ScoringWorkload = w
	opts.MaxSteps = 20
	b := NewBuilder(doc, opts)
	b.Run()
	if got := len(b.queries); got != len(w.Queries) {
		t.Fatalf("scoring on %d queries, want the %d provided", got, len(w.Queries))
	}
	if err := b.Sketch().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestRefinementString covers the trace rendering of every operation.
func TestRefinementString(t *testing.T) {
	cases := map[string]Refinement{
		"b-stabilize(1->2)":              {Op: OpBStabilize, From: 1, To: 2},
		"f-stabilize(3->4)":              {Op: OpFStabilize, From: 3, To: 4},
		"edge-refine(n5, 8 buckets)":     {Op: OpEdgeRefine, Node: 5, Buckets: 8},
		"value-refine(n6, 4 units)":      {Op: OpValueRefine, Node: 6, Buckets: 4},
		"edge-expand(n7 += 7->9)":        {Op: OpEdgeExpand, Node: 7, From: 7, To: 9},
		"value-expand(n8 += values(n9))": {Op: OpValueExpand, Node: 8, Source: 9},
	}
	for want, r := range cases {
		if got := r.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestZeroBudget checks a budget below the coarsest synopsis yields the
// coarsest synopsis untouched (zero steps).
func TestZeroBudget(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 1, Scale: 0.02})
	b := NewBuilder(doc, DefaultOptions(1))
	b.Run()
	if len(b.Steps()) != 0 {
		t.Fatalf("applied %d refinements under a 1-byte budget", len(b.Steps()))
	}
	if err := b.Sketch().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestXBuildRefinementSequenceDeterministic pins determinism at the step
// level, not just in the persisted bytes: two builds from the same seed must
// choose the same refinement, in the same order, at every step. This is the
// invariant the maporder analyzer protects in score.go — an unsorted map
// range feeding candidate scoring would break it.
func TestXBuildRefinementSequenceDeterministic(t *testing.T) {
	doc := xmlgen.IMDB(xmlgen.Config{Seed: 9, Scale: 0.02})
	runOnce := func() []Step {
		opts := DefaultOptions(1 << 30)
		opts.Seed = 11
		opts.MaxSteps = 12
		opts.Parallelism = 4
		b := NewBuilder(doc, opts)
		b.Run()
		return b.Steps()
	}
	first := runOnce()
	if len(first) == 0 {
		t.Fatal("build produced no refinement steps; the test exercises nothing")
	}
	second := runOnce()
	if len(first) != len(second) {
		t.Fatalf("step counts diverged: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("step %d diverged:\n  first:  %+v\n  second: %+v", i, first[i], second[i])
		}
	}
}

package build

import (
	"math/rand"
	"runtime"
	"sort"

	"xsketch/internal/trace"
	"xsketch/internal/workload"
	"xsketch/internal/xmltree"
	core "xsketch/internal/xsketch"
)

// Options configures an XBUILD run.
type Options struct {
	// BudgetBytes is the synopsis space budget. XBUILD never adopts a
	// refinement whose resulting synopsis exceeds it, so the built synopsis
	// satisfies SizeBytes() <= BudgetBytes whenever the coarsest synopsis
	// does.
	BudgetBytes int
	// MaxSteps bounds the number of adopted refinements.
	MaxSteps int
	// Seed drives all sampling: the scoring workload, its per-step
	// anchored refresh, candidate subsampling, and random selection.
	Seed int64
	// Sketch configures the underlying synopsis (initial budgets, size
	// model, estimation limits).
	Sketch core.Config
	// ScoringWorkload, when non-nil, replaces the sampled scoring workload
	// entirely: candidates are scored on exactly these queries and the
	// per-step anchored resampling is disabled. The Structural-XSKETCH
	// comparison uses this to target single-path workloads.
	ScoringWorkload *workload.Workload
	// RandomSelection adopts a uniformly random applicable candidate
	// instead of the best marginal gain (the ablation baseline for the
	// paper's marginal-gains policy).
	RandomSelection bool
	// EnableBackwardExpand also generates edge-expand candidates over
	// backward counts from B-stable ancestors (the full model; the paper's
	// prototype restricts itself to forward counts).
	EnableBackwardExpand bool
	// ReferenceScoring scores candidates against a large reference synopsis
	// instead of exact selectivities.
	ReferenceScoring bool
	// ScoringQueries is the size of the sampled scoring workload
	// (default 24; ignored when ScoringWorkload is set).
	ScoringQueries int
	// MaxCandidates caps the number of candidates scored per step; when
	// more are generated, a deterministic random subset is scored
	// (the paper's node sampling). Default 24.
	MaxCandidates int
	// ValueExpandBins is the bin count of value dimensions inserted by
	// value-expand (default 8).
	ValueExpandBins int
	// Parallelism is the scoring worker count (default GOMAXPROCS).
	Parallelism int
	// Sink, when non-nil, receives one telemetry Event per adopted
	// refinement (see telemetry.go). Telemetry is observational: it never
	// influences candidate generation, scoring, or selection.
	Sink Sink
}

// DefaultOptions returns XBUILD options for the given byte budget,
// mirroring the paper's prototype configuration.
func DefaultOptions(budgetBytes int) Options {
	return Options{
		BudgetBytes:     budgetBytes,
		MaxSteps:        1000,
		Seed:            1,
		Sketch:          core.DefaultConfig(),
		ScoringQueries:  24,
		MaxCandidates:   24,
		ValueExpandBins: 8,
	}
}

// withDefaults fills unset tuning knobs so a zero-extended Options still
// behaves like DefaultOptions.
func (o Options) withDefaults() Options {
	if o.ScoringQueries <= 0 {
		o.ScoringQueries = 24
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 24
	}
	if o.ValueExpandBins <= 0 {
		o.ValueExpandBins = 8
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Step records one adopted refinement.
type Step struct {
	// Refinement is the applied operation.
	Refinement Refinement
	// SizeBytes is the synopsis size after applying it.
	SizeBytes int
	// Error is the scoring-workload error after applying it.
	Error float64
}

// Builder runs XBUILD incrementally, exposing the synopsis between steps
// for budget sweeps and tracing.
type Builder struct {
	doc   *xmltree.Document
	opts  Options
	sk    *core.Sketch
	steps []Step
	rng   *rand.Rand

	// scoring state (see score.go)
	queries  []scoredQuery
	base     []scoredQuery
	anchored []scoredQuery
	ref      *core.Sketch
}

// NewBuilder initializes an XBUILD run: the coarsest synopsis plus the
// scoring machinery. No refinements are applied yet.
func NewBuilder(d *xmltree.Document, opts Options) *Builder {
	b := &Builder{
		doc:  d,
		opts: opts.withDefaults(),
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	b.sk = core.New(d, b.opts.Sketch)
	b.initScoring()
	return b
}

// XBuild constructs a Twig XSKETCH for the document under the given
// options: NewBuilder followed by Run.
func XBuild(d *xmltree.Document, opts Options) *core.Sketch {
	b := NewBuilder(d, opts)
	b.Run()
	return b.Sketch()
}

// Sketch returns the current synopsis. It is live: further Step calls
// replace it, but never mutate a previously returned value.
func (b *Builder) Sketch() *core.Sketch { return b.sk }

// Steps returns the refinements adopted so far, in order. The slice is
// owned by the builder and must not be modified.
func (b *Builder) Steps() []Step { return b.steps }

// Run applies refinements until the budget is exhausted, MaxSteps is
// reached, or no candidate improves the scoring error.
func (b *Builder) Run() {
	for b.Step() {
	}
}

// RunTo applies refinements until the synopsis size reaches target bytes
// (or Step refuses). Budget sweeps create one Builder with a large
// BudgetBytes and call RunTo with increasing targets, snapshotting the
// synopsis at each.
func (b *Builder) RunTo(target int) {
	for b.sk.SizeBytes() < target && b.Step() {
	}
}

// Step scores the current candidate set and adopts the refinement with the
// best marginal gain (error reduction per byte). It reports whether a
// refinement was adopted; false means the build is finished: the step or
// byte budget is exhausted, or no candidate both fits the budget and
// (under marginal-gains selection) reduces the scoring error.
func (b *Builder) Step() bool {
	if len(b.steps) >= b.opts.MaxSteps {
		return false
	}
	curSize := b.sk.SizeBytes()
	if curSize >= b.opts.BudgetBytes {
		return false
	}
	started := trace.MonotonicSeconds()
	cands := b.candidates()
	if len(cands) == 0 {
		return false
	}
	if b.opts.RandomSelection {
		return b.stepRandom(cands, curSize, started)
	}
	cands = b.sampleCandidates(cands)
	curErr := b.errorOfParallel(b.sk, b.opts.Parallelism)
	results := b.scoreAll(cands)
	best, bestGain := -1, 0.0
	for i, r := range results {
		if r == nil || r.size > b.opts.BudgetBytes {
			continue
		}
		delta := r.size - curSize
		if delta < 1 {
			delta = 1
		}
		gain := (curErr - r.err) / float64(delta)
		// Strict > keeps the earliest candidate on ties, and the zero
		// initialization demands a positive gain: XBUILD stops spending
		// bytes once no refinement reduces the sampled error.
		if gain > bestGain {
			best, bestGain = i, gain
		}
	}
	if best < 0 {
		return false
	}
	b.adopt(cands[best].ref, results[best])
	b.emit(b.stepEvent(cands[best].ref, results[best], bestGain, curSize, len(cands), started))
	return true
}

// stepRandom adopts a uniformly random applicable candidate regardless of
// its gain (the RandomSelection ablation). Candidates are tried in a
// seed-deterministic order until one applies within budget.
func (b *Builder) stepRandom(cands []candidate, curSize int, started float64) bool {
	tried := 0
	for _, i := range b.rng.Perm(len(cands)) {
		tried++
		r := b.scoreOne(cands[i])
		if r == nil || r.size > b.opts.BudgetBytes {
			continue
		}
		b.adopt(cands[i].ref, r)
		b.emit(b.stepEvent(cands[i].ref, r, 0, curSize, tried, started))
		return true
	}
	return false
}

// stepEvent assembles the telemetry event for a just-adopted refinement
// (adopt has already appended it to b.steps).
func (b *Builder) stepEvent(ref Refinement, r *scoreResult, gain float64, curSize, scored int, started float64) Event {
	return Event{
		Step:             len(b.steps),
		Op:               ref.Op.String(),
		Target:           int(ref.target()),
		Refinement:       ref.String(),
		GainPerByte:      gain,
		Error:            r.err,
		SizeBytes:        r.size,
		SpaceDelta:       r.size - curSize,
		CandidatesScored: scored,
		ElapsedSeconds:   trace.MonotonicSeconds() - started,
	}
}

// adopt installs a scored candidate's synopsis, records the step, and
// refreshes the anchored part of the scoring workload around the refined
// region.
func (b *Builder) adopt(ref Refinement, r *scoreResult) {
	b.sk = r.sk
	b.steps = append(b.steps, Step{Refinement: ref, SizeBytes: r.size, Error: r.err})
	b.resampleAnchored(ref.target())
}

// sampleCandidates bounds the scored candidate set to MaxCandidates with a
// deterministic random subset, preserving generation order.
func (b *Builder) sampleCandidates(cands []candidate) []candidate {
	if len(cands) <= b.opts.MaxCandidates {
		return cands
	}
	idx := b.rng.Perm(len(cands))[:b.opts.MaxCandidates]
	sort.Ints(idx)
	out := make([]candidate, len(idx))
	for i, j := range idx {
		out[i] = cands[j]
	}
	return out
}

package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *Recorder {
	rec := NewRecorder(Options{})
	rec.SetQuery("t0 in movie, t1 in t0/actor")
	rec.Event(Event{Kind: EventExpand, Detail: "movie", Count: 1, Cache: CacheMiss})
	rec.Event(Event{Kind: EventDedup, Count: 2})
	et := rec.AddEmbedding("0(1)")
	et.Estimate = 42
	et.Root = &Node{
		Syn:          0,
		Tag:          "movie",
		Extent:       100,
		Mode:         ModeFactorized,
		Expanded:     []Edge{{From: 0, To: 1}},
		Uniform:      []int{2},
		Assigned:     []Assigned{{From: 3, To: 0, Count: 1.5}},
		Contribution: 0.42,
		Terms: []Term{
			{Kind: TermBaseCount, Value: 100, Assumption: AssumptionExact},
			{Kind: TermCondSumProduct, Detail: "0->1", Value: 0.42, Assumption: AssumptionCSI},
		},
		Children: []*Node{{Syn: 1, Tag: "actor", Mode: ModeLeaf, Contribution: 1}},
	}
	et.Root.Enter()
	rec.SetResult(42, false)
	return rec
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetQuery("q")
	r.SetResult(1, true)
	r.Event(Event{Kind: EventExpand})
	if et := r.AddEmbedding("sig"); et != nil {
		t.Fatalf("nil recorder AddEmbedding = %v, want nil", et)
	}
	r.BeginStage(StageEmbed)
	r.EndStage(StageEmbed)
	if got := r.StageSeconds(); got != [NumStages]float64{} {
		t.Fatalf("nil recorder StageSeconds = %v, want zeros", got)
	}
	if tr := r.Trace(); tr != nil {
		t.Fatalf("nil recorder Trace = %v, want nil", tr)
	}
	if ec := r.EventCounts(); ec != nil {
		t.Fatalf("nil recorder EventCounts = %v, want nil", ec)
	}
	var n *Node
	if n.Enter() {
		t.Fatal("nil node Enter reports first evaluation")
	}
}

func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	var n *Node
	allocs := testing.AllocsPerRun(1000, func() {
		r.SetQuery("q")
		r.Event(Event{Kind: EventExpand, Detail: "d"})
		r.AddEmbedding("sig")
		r.BeginStage(StageTreeparse)
		r.EndStage(StageTreeparse)
		r.SetResult(1, false)
		n.Enter()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder methods allocate: %v allocs/op", allocs)
	}
}

func TestStageTiming(t *testing.T) {
	now := time.Unix(0, 0)
	rec := NewRecorder(Options{Clock: func() time.Time { return now }})
	rec.BeginStage(StageExpand)
	now = now.Add(250 * time.Millisecond)
	rec.EndStage(StageExpand)
	rec.BeginStage(StageExpand)
	now = now.Add(250 * time.Millisecond)
	rec.EndStage(StageExpand)
	// EndStage without Begin is ignored.
	rec.EndStage(StageEmbed)
	got := rec.StageSeconds()
	if got[StageExpand] != 0.5 {
		t.Fatalf("expand stage = %v s, want 0.5", got[StageExpand])
	}
	if got[StageEmbed] != 0 {
		t.Fatalf("embed stage = %v s, want 0", got[StageEmbed])
	}
}

func TestEventCapAndCounts(t *testing.T) {
	rec := NewRecorder(Options{MaxEvents: 3})
	for i := 0; i < 5; i++ {
		rec.Event(Event{Kind: EventExpand})
	}
	rec.Event(Event{Kind: EventDedup, Count: 7})
	tr := rec.Trace()
	if len(tr.Events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(tr.Events))
	}
	if tr.EventsDropped != 3 {
		t.Fatalf("EventsDropped = %d, want 3", tr.EventsDropped)
	}
	counts := rec.EventCounts()
	want := []EventCount{{Kind: "dropped", Count: 3}, {Kind: EventExpand, Count: 3}}
	if len(counts) != len(want) {
		t.Fatalf("EventCounts = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("EventCounts[%d] = %v, want %v", i, counts[i], want[i])
		}
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageExpand:          "expand",
		StageEmbed:           "embed",
		StageTreeparse:       "treeparse",
		StageHistogramLookup: "histogram_lookup",
		Stage(99):            "unknown",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Fatalf("Stage(%d).String() = %q, want %q", s, got, w)
		}
	}
}

func TestJSONDeterministicAndNoClock(t *testing.T) {
	a, err := sampleTrace().Trace().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleTrace().Trace().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("trace JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
	for _, banned := range []string{"seconds", "nanos", "time", "duration"} {
		if strings.Contains(strings.ToLower(string(a)), banned) {
			t.Fatalf("trace JSON contains clock-like field %q:\n%s", banned, a)
		}
	}
}

func TestWriteTextMarkers(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Trace().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"query: t0 in movie, t1 in t0/actor",
		"estimate: 42",
		"event expand",
		"event dedup x2",
		"covered (E): 0->1",
		"uniform (U): 2",
		"assigned (D): 3->0=1.5",
		"term base-count = 100 [exact]",
		"term cond-sum-product (0->1) = 0.42 [correlation-scope-independence]",
		"node 1 <actor>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, out)
		}
	}
}

func TestEnterCountsEvaluations(t *testing.T) {
	n := &Node{}
	if !n.Enter() {
		t.Fatal("first Enter not reported as first")
	}
	if n.Enter() {
		t.Fatal("second Enter reported as first")
	}
	if n.Evaluations != 2 {
		t.Fatalf("Evaluations = %d, want 2", n.Evaluations)
	}
}

func TestMonotonicSeconds(t *testing.T) {
	a := MonotonicSeconds()
	b := MonotonicSeconds()
	if b < a {
		t.Fatalf("MonotonicSeconds went backwards: %v then %v", a, b)
	}
}

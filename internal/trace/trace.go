package trace

import (
	"sort"
	"time"
)

// Stage identifies one stage of the estimation pipeline for latency
// accounting. Stages nest (Embed contains Expand; Treeparse contains
// HistogramLookup), so the outer stages' durations include the inner ones.
type Stage int

// The estimation pipeline stages, in execution order.
const (
	// StageExpand covers expandStep calls: realizing one query step as
	// synopsis-node sequences (the '//'-axis path search in particular).
	StageExpand Stage = iota
	// StageEmbed covers embedding enumeration end to end, including the
	// expansion work above.
	StageEmbed
	// StageTreeparse covers the per-embedding TREEPARSE evaluation.
	StageTreeparse
	// StageHistogramLookup covers edge-histogram bucket matching and
	// conditional sum-products inside the TREEPARSE evaluation.
	StageHistogramLookup

	// NumStages is the number of pipeline stages.
	NumStages = 4
)

// String names the stage the way metric labels spell it.
func (s Stage) String() string {
	switch s {
	case StageExpand:
		return "expand"
	case StageEmbed:
		return "embed"
	case StageTreeparse:
		return "treeparse"
	case StageHistogramLookup:
		return "histogram_lookup"
	}
	return "unknown"
}

// Assumption labels attached to trace terms: which of the paper's Section 4
// assumptions justified combining the factor into the estimate.
const (
	// AssumptionFI is Forward Independence: counts absent from every
	// correlation scope separate multiplicatively.
	AssumptionFI = "forward-independence"
	// AssumptionCSI is Correlation Scope Independence: histogram terms
	// F_i(E_i | D_i) condition only on the stored scope dimensions.
	AssumptionCSI = "correlation-scope-independence"
	// AssumptionFU is Forward Uniformity: uncovered counts use the average
	// child count per parent element.
	AssumptionFU = "forward-uniformity"
	// AssumptionExact marks terms read directly off the synopsis with no
	// modeling assumption (extent sizes).
	AssumptionExact = "exact"
)

// Node evaluation modes (Node.Mode).
const (
	// ModeLeaf marks a node with no children and no value uses: its
	// contribution is its single factor.
	ModeLeaf = "leaf"
	// ModeFactorized marks the fast path: no per-bucket value uses, so the
	// node combines a conditional sum-product with child recursions.
	ModeFactorized = "factorized"
	// ModeEnumerated marks the bucket-enumeration path taken when value
	// predicates overlap the node's scope dimensions.
	ModeEnumerated = "enumerated"
	// ModePruned marks a subtree short-circuited by a zero factor.
	ModePruned = "pruned"
)

// Term kinds (Term.Kind).
const (
	// TermBaseCount is the extent size of the embedding root.
	TermBaseCount = "base-count"
	// TermValueFraction is a value-predicate selectivity from the node's
	// value histogram.
	TermValueFraction = "value-fraction"
	// TermExistsFraction is a descendant-existence fraction for a
	// value-predicated '//' branch.
	TermExistsFraction = "exists-fraction"
	// TermAvgCount is an uncovered edge's average child count (Forward
	// Uniformity).
	TermAvgCount = "avg-count"
	// TermCondSumProduct is a conditional sum-product over the node's edge
	// histogram (factorized mode).
	TermCondSumProduct = "cond-sum-product"
	// TermBucketSum is the normalized sum over enumerated histogram
	// buckets (enumerated mode).
	TermBucketSum = "bucket-sum"
)

// Event kinds (Event.Kind).
const (
	// EventExpand is one expandStep call realizing a query step over the
	// synopsis.
	EventExpand = "expand"
	// EventDedup reports duplicate embeddings dropped after enumeration.
	EventDedup = "dedup"
	// EventMaxEmbeddings reports the MaxEmbeddings soft floor firing.
	EventMaxEmbeddings = "max-embeddings"
)

// Estimator-cache outcomes attached to memoized terms and events.
const (
	// CacheHit marks a term served from the per-sketch memo tables.
	CacheHit = "hit"
	// CacheMiss marks a term computed and inserted into the memo tables.
	CacheMiss = "miss"
	// CacheOff marks a term computed with the estimator cache disabled.
	CacheOff = "off"
)

// Trace is the structured explanation of one query estimate (the
// Explanation v2 wire format). It contains no wall-clock data, so its JSON
// encoding for a fixed query and synopsis is byte-stable across runs.
type Trace struct {
	// Version is the trace format version (currently 2; version 1 was the
	// flat text rendering this model replaced).
	Version int `json:"version"`
	// Query is the canonical rendering of the estimated twig query.
	Query string `json:"query"`
	// Estimate is the query estimate (the sum over embeddings).
	Estimate float64 `json:"estimate"`
	// Truncated reports that embedding enumeration hit MaxEmbeddings.
	Truncated bool `json:"truncated,omitempty"`
	// Events lists expansion-level events in occurrence order: expand
	// steps, dedup drops, the MaxEmbeddings soft-floor firing.
	Events []Event `json:"events,omitempty"`
	// EventsDropped counts events discarded beyond the recorder's cap.
	EventsDropped int `json:"events_dropped,omitempty"`
	// Embeddings lists the per-embedding breakdowns in enumeration order.
	Embeddings []*EmbeddingTrace `json:"embeddings"`
}

// EmbeddingTrace is the breakdown for one enumerated embedding.
type EmbeddingTrace struct {
	// Estimate is this embedding's contribution to the query estimate.
	Estimate float64 `json:"estimate"`
	// Signature is the embedding's canonical structural signature (the
	// dedup key), identifying the synopsis realization.
	Signature string `json:"signature"`
	// Root is the TREEPARSE trace of the embedding's (virtual) root node.
	Root *Node `json:"root"`
}

// Event is one expansion-level occurrence during embedding enumeration.
type Event struct {
	// Kind classifies the event: "expand", "dedup", "max-embeddings".
	Kind string `json:"kind"`
	// Detail is a deterministic human-readable specifics string.
	Detail string `json:"detail,omitempty"`
	// Count carries the event's cardinality (alternatives found, embeddings
	// dropped), when meaningful.
	Count int `json:"count,omitempty"`
	// Cache is the estimator-cache outcome backing the event, when the
	// event wraps a memoized lookup.
	Cache string `json:"cache,omitempty"`
}

// Edge references one synopsis edge (a histogram count dimension).
type Edge struct {
	// From is the source synopsis node.
	From int `json:"from"`
	// To is the target synopsis node.
	To int `json:"to"`
}

// Assigned is one ancestor-fixed count dimension (a member of the paper's
// D_i set) together with the count value the enclosing bucket choice fixed
// it to at this node's first evaluation.
type Assigned struct {
	// From is the source synopsis node of the assigned scope edge.
	From int `json:"from"`
	// To is the target synopsis node of the assigned scope edge.
	To int `json:"to"`
	// Count is the assigned per-element count value.
	Count float64 `json:"count"`
}

// Term is one multiplicative factor of a node's contribution.
type Term struct {
	// Kind classifies the factor: "base-count", "value-fraction",
	// "exists-fraction", "avg-count", "cond-sum-product", "bucket-sum".
	Kind string `json:"kind"`
	// Detail is a deterministic specifics string (the predicate, the edge,
	// the bucket count).
	Detail string `json:"detail,omitempty"`
	// Value is the factor's numeric value.
	Value float64 `json:"value"`
	// Assumption names the estimation assumption justifying the factor
	// (one of the Assumption* constants).
	Assumption string `json:"assumption,omitempty"`
	// Cache is the estimator-cache outcome for memoized factors (one of
	// the Cache* constants), empty for unmemoized ones.
	Cache string `json:"cache,omitempty"`
}

// Node is the TREEPARSE trace of one embedding node: the scope split into
// expanded/uniform/assigned edge sets, the evaluation mode, and the terms
// of its per-element contribution. Under bucket enumeration a node is
// evaluated once per surviving ancestor bucket; Terms and Contribution
// record the first evaluation and Evaluations counts them all.
type Node struct {
	// Syn is the embedded synopsis node.
	Syn int `json:"node"`
	// Tag is the node's element tag.
	Tag string `json:"tag,omitempty"`
	// Extent is the synopsis node's extent size.
	Extent int `json:"extent,omitempty"`
	// Mode is the evaluation mode: "leaf", "factorized", "enumerated", or
	// "pruned" (a zero factor short-circuited the subtree).
	Mode string `json:"mode,omitempty"`
	// Expanded lists the child edges covered by this node's histogram
	// scope (the paper's expansion set E_i).
	Expanded []Edge `json:"expanded,omitempty"`
	// Uniform lists the synopsis ids of children outside the scope,
	// estimated under Forward Uniformity (the uncovered set U_i).
	Uniform []int `json:"uniform,omitempty"`
	// Assigned lists the scope dimensions fixed by ancestor bucket choices
	// (the correlation set D_i) with their first-evaluation values.
	Assigned []Assigned `json:"assigned,omitempty"`
	// Buckets is the number of histogram buckets enumerated (enumerated
	// mode only).
	Buckets int `json:"buckets,omitempty"`
	// Denominator is the conditional normalizer of the bucket enumeration
	// (enumerated mode only).
	Denominator float64 `json:"denominator,omitempty"`
	// Evaluations counts how many times the node was evaluated (> 1 when
	// an ancestor enumerated buckets).
	Evaluations int `json:"evaluations,omitempty"`
	// Contribution is the node's per-element contribution at its first
	// evaluation.
	Contribution float64 `json:"contribution"`
	// Terms lists the multiplicative factors recorded at the first
	// evaluation.
	Terms []Term `json:"terms,omitempty"`
	// Children are the embedded children's traces, covered (expanded)
	// children first, then uniform ones.
	Children []*Node `json:"children,omitempty"`
}

// Enter marks one evaluation of the node and reports whether it is the
// first (the one whose terms are recorded). It is nil-safe: entering a nil
// node reports false.
func (n *Node) Enter() bool {
	if n == nil {
		return false
	}
	n.Evaluations++
	return n.Evaluations == 1
}

// EventCount is one (kind, count) aggregate of a recorder's events, for
// feeding monotone metric counters.
type EventCount struct {
	// Kind is the event kind.
	Kind string
	// Count is the number of events of that kind (dedup events count their
	// dropped embeddings).
	Count int
}

// DefaultMaxEvents caps a recorder's event list; pathological queries can
// enumerate (and dedup) hundreds of thousands of embeddings, and the trace
// must stay shippable over HTTP.
const DefaultMaxEvents = 1000

// Options configures a Recorder.
type Options struct {
	// MaxEvents caps the recorded event list (0 selects DefaultMaxEvents);
	// further events are counted in Trace.EventsDropped.
	MaxEvents int
	// Clock overrides the wall-clock source for stage timing (tests).
	// nil selects time.Now.
	Clock func() time.Time
}

// A Recorder captures one estimate's trace. Create one with NewRecorder,
// pass it to the traced estimation entry points, then read Trace and
// StageSeconds. A nil *Recorder is a valid disabled recorder: every method
// is a nil-safe no-op, so call sites never branch.
//
// A Recorder is single-use and not safe for concurrent use; record one
// estimate per recorder.
type Recorder struct {
	trace      Trace
	maxEvents  int
	clock      func() time.Time
	stageStart [NumStages]time.Time
	stageNanos [NumStages]int64
}

// NewRecorder returns an enabled recorder.
func NewRecorder(opts Options) *Recorder {
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = DefaultMaxEvents
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Recorder{
		trace:     Trace{Version: 2},
		maxEvents: opts.MaxEvents,
		clock:     opts.Clock,
	}
}

// Enabled reports whether the recorder captures anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetQuery records the canonical query string.
func (r *Recorder) SetQuery(q string) {
	if r == nil {
		return
	}
	r.trace.Query = q
}

// SetResult records the final estimate and its truncation flag.
func (r *Recorder) SetResult(estimate float64, truncated bool) {
	if r == nil {
		return
	}
	r.trace.Estimate = estimate
	r.trace.Truncated = truncated
}

// Event appends one expansion-level event, dropping (and counting) events
// beyond the configured cap.
func (r *Recorder) Event(e Event) {
	if r == nil {
		return
	}
	if len(r.trace.Events) >= r.maxEvents {
		r.trace.EventsDropped++
		return
	}
	r.trace.Events = append(r.trace.Events, e)
}

// AddEmbedding appends a new embedding trace and returns it for the
// estimator to fill in; nil on a nil recorder.
func (r *Recorder) AddEmbedding(signature string) *EmbeddingTrace {
	if r == nil {
		return nil
	}
	et := &EmbeddingTrace{Signature: signature}
	r.trace.Embeddings = append(r.trace.Embeddings, et)
	return et
}

// BeginStage starts (or resumes) accumulating wall time for a stage.
func (r *Recorder) BeginStage(s Stage) {
	if r == nil {
		return
	}
	r.stageStart[s] = r.clock()
}

// EndStage stops the stage's clock and adds the elapsed time to its total.
// An EndStage without a matching BeginStage is ignored.
func (r *Recorder) EndStage(s Stage) {
	if r == nil {
		return
	}
	start := r.stageStart[s]
	if start.IsZero() {
		return
	}
	r.stageStart[s] = time.Time{}
	r.stageNanos[s] += r.clock().Sub(start).Nanoseconds()
}

// StageSeconds returns the accumulated wall time per stage. The zero array
// is returned for a nil recorder.
func (r *Recorder) StageSeconds() [NumStages]float64 {
	var out [NumStages]float64
	if r == nil {
		return out
	}
	for i, n := range r.stageNanos {
		out[i] = float64(n) / 1e9
	}
	return out
}

// Trace returns the recorded trace; nil for a nil recorder. The returned
// value is owned by the recorder — read it only after estimation finished.
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return nil
	}
	return &r.trace
}

// EventCounts aggregates the recorded events by kind, in sorted kind order
// (dedup-style events contribute their Count, others count 1 each).
// Dropped events are reported under the kind "dropped".
func (r *Recorder) EventCounts() []EventCount {
	if r == nil {
		return nil
	}
	counts := make(map[string]int)
	for _, e := range r.trace.Events {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		counts[e.Kind] += n
	}
	if r.trace.EventsDropped > 0 {
		counts["dropped"] += r.trace.EventsDropped
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]EventCount, len(kinds))
	for i, k := range kinds {
		out[i] = EventCount{Kind: k, Count: counts[k]}
	}
	return out
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// MarshalIndent renders the trace as stable, human-diffable JSON. The model
// contains no maps and no wall-clock data, so the output for a fixed query,
// synopsis and cache state is byte-identical across runs.
func (t *Trace) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the stable JSON rendering to w.
func (t *Trace) WriteJSON(w io.Writer) error {
	b, err := t.MarshalIndent()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteText writes an indented human-readable rendering of the trace: the
// query and total, the recorded events, and per embedding the TREEPARSE
// tree with each node's E/U/D scope split and factor terms.
func (t *Trace) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("query: %s\n", t.Query)
	bw.printf("estimate: %g\n", t.Estimate)
	if t.Truncated {
		bw.printf("truncated: true\n")
	}
	for _, e := range t.Events {
		bw.printf("event %s", e.Kind)
		if e.Count > 0 {
			bw.printf(" x%d", e.Count)
		}
		if e.Detail != "" {
			bw.printf(": %s", e.Detail)
		}
		if e.Cache != "" {
			bw.printf(" [cache %s]", e.Cache)
		}
		bw.printf("\n")
	}
	if t.EventsDropped > 0 {
		bw.printf("events dropped: %d\n", t.EventsDropped)
	}
	for i, emb := range t.Embeddings {
		bw.printf("embedding %d: estimate=%g signature=%s\n", i, emb.Estimate, emb.Signature)
		writeNodeText(bw, emb.Root, 1)
	}
	return bw.err
}

func writeNodeText(bw *errWriter, n *Node, depth int) {
	if n == nil {
		return
	}
	pad := strings.Repeat("  ", depth)
	bw.printf("%snode %d", pad, n.Syn)
	if n.Tag != "" {
		bw.printf(" <%s>", n.Tag)
	}
	if n.Extent > 0 {
		bw.printf(" extent=%d", n.Extent)
	}
	if n.Mode != "" {
		bw.printf(" mode=%s", n.Mode)
	}
	bw.printf(" contribution=%g", n.Contribution)
	if n.Evaluations > 1 {
		bw.printf(" evaluations=%d", n.Evaluations)
	}
	bw.printf("\n")
	if len(n.Expanded) > 0 {
		bw.printf("%s  covered (E):", pad)
		for _, e := range n.Expanded {
			bw.printf(" %d->%d", e.From, e.To)
		}
		bw.printf("\n")
	}
	if len(n.Uniform) > 0 {
		bw.printf("%s  uniform (U):", pad)
		for _, id := range n.Uniform {
			bw.printf(" %d", id)
		}
		bw.printf("\n")
	}
	if len(n.Assigned) > 0 {
		bw.printf("%s  assigned (D):", pad)
		for _, a := range n.Assigned {
			bw.printf(" %d->%d=%g", a.From, a.To, a.Count)
		}
		bw.printf("\n")
	}
	if n.Mode == ModeEnumerated {
		bw.printf("%s  buckets=%d denominator=%g\n", pad, n.Buckets, n.Denominator)
	}
	for _, tm := range n.Terms {
		bw.printf("%s  term %s", pad, tm.Kind)
		if tm.Detail != "" {
			bw.printf(" (%s)", tm.Detail)
		}
		bw.printf(" = %g", tm.Value)
		if tm.Assumption != "" {
			bw.printf(" [%s]", tm.Assumption)
		}
		if tm.Cache != "" {
			bw.printf(" [cache %s]", tm.Cache)
		}
		bw.printf("\n")
	}
	for _, c := range n.Children {
		writeNodeText(bw, c, depth+1)
	}
}

// errWriter is the usual sticky-error writer wrapper.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Package trace is the structured estimation-trace model and its recorder.
//
// A Recorder is threaded through the estimation pipeline (see
// internal/xsketch) and, when non-nil, captures a deterministic tree of the
// decisions behind one estimate: the expansion steps taken while embedding
// the query over the synopsis, every embedding enumerated (with dedup and
// truncation events), the TREEPARSE scope split at every node (expanded,
// uniform and assigned edge sets — the paper's E_i, U_i and D_i), each
// numeric term with the assumption that justified it (Forward Independence,
// Correlation Scope Independence, Forward Uniformity), and the estimator
// cache outcome of every memoized sub-result. The recorder additionally
// accumulates per-stage wall-clock durations for the serving layer's
// latency histograms; durations are deliberately kept out of the Trace
// model so that its JSON encoding is byte-stable across runs.
//
// A nil *Recorder (and a nil *Node) is a valid no-op sink: every method is
// nil-safe and allocation-free, so the estimation hot path pays nothing
// when tracing is disabled.
package trace

package trace

import "time"

// start anchors MonotonicSeconds; readings are process-relative.
var start = time.Now()

// MonotonicSeconds returns seconds elapsed since process start on the
// monotonic clock. It exists so packages whose lint policy forbids direct
// wall-clock reads (internal/build's step telemetry in particular) can
// still stamp elapsed durations on their emitted events.
func MonotonicSeconds() float64 {
	return time.Since(start).Seconds()
}

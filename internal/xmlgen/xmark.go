package xmlgen

import "xsketch/internal/xmltree"

// XMark generates the auction-site benchmark stand-in. All fanouts are
// drawn uniformly from narrow fixed ranges, giving the regular structure
// for which the paper observes consistently low estimation error at every
// synopsis size. At Scale 1 the document holds roughly 100k elements.
func XMark(cfg Config) *xmltree.Document {
	g := newGen(cfg.Seed)
	d := xmltree.NewDocument("site")
	root := d.Root()

	regions := d.AddChild(root, "regions")
	regionNames := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	items := cfg.scaledCount(2000)
	for _, rn := range regionNames {
		region := d.AddChild(regions, rn)
		for i := 0; i < items/len(regionNames); i++ {
			xmarkItem(g, d, region)
		}
	}

	categories := d.AddChild(root, "categories")
	for i := 0; i < cfg.scaledCount(100); i++ {
		cat := d.AddChild(categories, "category")
		d.AddChild(cat, "name")
		d.AddChild(cat, "description")
	}

	people := d.AddChild(root, "people")
	for i := 0; i < cfg.scaledCount(2500); i++ {
		xmarkPerson(g, d, people)
	}

	open := d.AddChild(root, "open_auctions")
	for i := 0; i < cfg.scaledCount(1200); i++ {
		xmarkOpenAuction(g, d, open)
	}

	closed := d.AddChild(root, "closed_auctions")
	for i := 0; i < cfg.scaledCount(1000); i++ {
		xmarkClosedAuction(g, d, closed)
	}
	return d
}

func xmarkItem(g *gen, d *xmltree.Document, region xmltree.NodeID) {
	item := d.AddChild(region, "item")
	d.AddChild(item, "location")
	d.AddValueChild(item, "quantity", int64(g.uniform(1, 10)))
	d.AddChild(item, "name")
	d.AddChild(item, "payment")
	desc := d.AddChild(item, "description")
	for i, n := 0, g.uniform(1, 3); i < n; i++ {
		d.AddChild(desc, "parlist")
	}
	d.AddChild(item, "shipping")
	for i, n := 0, g.uniform(1, 3); i < n; i++ {
		d.AddValueChild(item, "incategory", int64(g.uniform(0, 99)))
	}
	mailbox := d.AddChild(item, "mailbox")
	for i, n := 0, g.uniform(0, 3); i < n; i++ {
		mail := d.AddChild(mailbox, "mail")
		d.AddChild(mail, "from")
		d.AddChild(mail, "to")
		d.AddValueChild(mail, "date", int64(g.uniform(19980101, 20031231)))
	}
}

func xmarkPerson(g *gen, d *xmltree.Document, people xmltree.NodeID) {
	p := d.AddChild(people, "person")
	d.AddChild(p, "name")
	d.AddChild(p, "emailaddress")
	if g.bernoulli(0.5) {
		d.AddChild(p, "phone")
	}
	if g.bernoulli(0.7) {
		addr := d.AddChild(p, "address")
		d.AddChild(addr, "street")
		d.AddChild(addr, "city")
		d.AddChild(addr, "country")
		d.AddValueChild(addr, "zipcode", int64(g.uniform(10000, 99999)))
	}
	if g.bernoulli(0.5) {
		d.AddChild(p, "creditcard")
	}
	if g.bernoulli(0.8) {
		prof := d.AddChild(p, "profile")
		for i, n := 0, g.uniform(0, 3); i < n; i++ {
			d.AddChild(prof, "interest")
		}
		if g.bernoulli(0.5) {
			d.AddChild(prof, "education")
		}
		if g.bernoulli(0.5) {
			d.AddChild(prof, "gender")
		}
		d.AddChild(prof, "business")
		if g.bernoulli(0.8) {
			d.AddValueChild(prof, "age", int64(g.uniform(18, 80)))
		}
	}
	if g.bernoulli(0.4) {
		watches := d.AddChild(p, "watches")
		for i, n := 0, g.uniform(1, 3); i < n; i++ {
			d.AddChild(watches, "watch")
		}
	}
}

func xmarkOpenAuction(g *gen, d *xmltree.Document, open xmltree.NodeID) {
	oa := d.AddChild(open, "open_auction")
	d.AddValueChild(oa, "initial", int64(g.uniform(1, 500)))
	for i, n := 0, g.uniform(0, 4); i < n; i++ {
		b := d.AddChild(oa, "bidder")
		d.AddValueChild(b, "date", int64(g.uniform(19980101, 20031231)))
		d.AddValueChild(b, "increase", int64(g.uniform(1, 50)))
	}
	d.AddValueChild(oa, "current", int64(g.uniform(1, 5000)))
	d.AddChild(oa, "itemref")
	d.AddChild(oa, "seller")
	d.AddValueChild(oa, "quantity", int64(g.uniform(1, 10)))
	d.AddChild(oa, "type")
	iv := d.AddChild(oa, "interval")
	d.AddValueChild(iv, "start", int64(g.uniform(19980101, 20031231)))
	d.AddValueChild(iv, "end", int64(g.uniform(19980101, 20031231)))
	d.AddChild(oa, "annotation")
}

func xmarkClosedAuction(g *gen, d *xmltree.Document, closed xmltree.NodeID) {
	ca := d.AddChild(closed, "closed_auction")
	d.AddChild(ca, "seller")
	d.AddChild(ca, "buyer")
	d.AddChild(ca, "itemref")
	d.AddValueChild(ca, "price", int64(g.uniform(1, 5000)))
	d.AddValueChild(ca, "date", int64(g.uniform(19980101, 20031231)))
	d.AddValueChild(ca, "quantity", int64(g.uniform(1, 10)))
	d.AddChild(ca, "type")
	ann := d.AddChild(ca, "annotation")
	d.AddChild(ann, "description")
	d.AddValueChild(ann, "happiness", int64(g.uniform(1, 10)))
}

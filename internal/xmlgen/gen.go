package xmlgen

import (
	"math/rand"

	"xsketch/internal/xmltree"
)

// Config controls dataset generation.
type Config struct {
	// Seed drives the deterministic random stream.
	Seed int64
	// Scale multiplies the dataset's element count; 1.0 targets the
	// paper's sizes (Table 1). Values below ~0.01 are clamped to keep the
	// documents structurally representative.
	Scale float64
}

// DefaultConfig returns Scale 1 with a fixed seed.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 1} }

func (c Config) scale() float64 {
	if c.Scale <= 0.01 {
		return 0.01
	}
	return c.Scale
}

// scaledCount converts a base population through the scale factor, keeping
// at least 1.
func (c Config) scaledCount(base int) int {
	n := int(float64(base) * c.scale())
	if n < 1 {
		n = 1
	}
	return n
}

// gen wraps the random stream with the small distribution helpers the
// generators share.
type gen struct {
	rng *rand.Rand
}

func newGen(seed int64) *gen {
	return &gen{rng: rand.New(rand.NewSource(seed))}
}

// uniform returns an integer uniform in [lo, hi].
func (g *gen) uniform(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// zipf returns a Zipf-distributed integer in [1, max] with skew s (> 1).
func (g *gen) zipf(s float64, max int) int {
	if max < 1 {
		return 1
	}
	z := rand.NewZipf(g.rng, s, 1, uint64(max-1))
	return int(z.Uint64()) + 1
}

// bernoulli returns true with probability p.
func (g *gen) bernoulli(p float64) bool { return g.rng.Float64() < p }

// pick returns a random element of the slice.
func (g *gen) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

// Dataset names understood by Generate.
const (
	XMarkName     = "xmark"
	IMDBName      = "imdb"
	SwissProtName = "sprot"
	// PartsName is the recursive assembly hierarchy — not one of the
	// paper's evaluation datasets, but available for recursive-schema
	// stress testing.
	PartsName = "parts"
)

// Names lists the paper's three evaluation datasets in the paper's order.
func Names() []string { return []string{XMarkName, IMDBName, SwissProtName} }

// AllNames lists every supported dataset, including the extra recursive
// one.
func AllNames() []string { return append(Names(), PartsName) }

// Generate builds the named dataset; it panics on an unknown name (callers
// validate names against AllNames).
func Generate(name string, cfg Config) *xmltree.Document {
	switch name {
	case XMarkName:
		return XMark(cfg)
	case IMDBName:
		return IMDB(cfg)
	case SwissProtName:
		return SwissProt(cfg)
	case PartsName:
		return Parts(cfg)
	}
	panic("xmlgen: unknown dataset " + name)
}

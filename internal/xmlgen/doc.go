// Package xmlgen generates the synthetic stand-ins for the paper's three
// experimental datasets (Table 1):
//
//   - XMark: the auction-site benchmark document. The paper notes it "is
//     generated from uniform distributions and is thus more regular in
//     structure"; our generator draws every fanout uniformly from fixed
//     ranges.
//   - IMDB: real-life movie data with strong skew and cross-edge
//     correlations (the paper's motivating example: the number of actors
//     and producers per movie depends on its type). Our generator plants
//     exactly such correlations using Zipf-distributed fanouts keyed by a
//     genre attribute.
//   - SwissProt: protein annotations; moderately regular with a long tail
//     of reference counts.
//
// Generators are deterministic given a seed, and scale linearly with the
// Scale parameter: Scale = 1 targets the paper's element counts (roughly
// 103k / 103k / 70k elements).
package xmlgen

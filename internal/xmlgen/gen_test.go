package xmlgen

import (
	"testing"

	"xsketch/internal/xmltree"
)

func TestGenerateKnownNames(t *testing.T) {
	for _, name := range Names() {
		cfg := Config{Seed: 7, Scale: 0.02}
		d := Generate(name, cfg)
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		if d.Len() < 100 {
			t.Fatalf("%s: only %d elements at scale 0.02", name, d.Len())
		}
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown dataset")
		}
	}()
	Generate("nope", DefaultConfig())
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		cfg := Config{Seed: 42, Scale: 0.05}
		d1 := Generate(name, cfg)
		d2 := Generate(name, cfg)
		if d1.Len() != d2.Len() {
			t.Fatalf("%s: lengths differ: %d vs %d", name, d1.Len(), d2.Len())
		}
		h1, h2 := d1.TagHistogram(), d2.TagHistogram()
		for tag, c := range h1 {
			if h2[tag] != c {
				t.Fatalf("%s: tag %q count %d vs %d", name, tag, c, h2[tag])
			}
		}
		d3 := Generate(name, Config{Seed: 43, Scale: 0.05})
		if d3.Len() == d1.Len() && name != XMarkName {
			// Different seeds should usually differ for the skewed
			// generators; XMark's outer fanouts are deterministic.
			t.Logf("%s: seeds 42 and 43 produced equal lengths (%d); acceptable but unusual", name, d1.Len())
		}
	}
}

func TestScaleTargetsPaperSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	// Paper Table 1: XMark 103,136; IMDB 102,755; SProt 69,599.
	targets := map[string][2]int{
		XMarkName:     {80_000, 130_000},
		IMDBName:      {80_000, 130_000},
		SwissProtName: {55_000, 90_000},
	}
	for name, bounds := range targets {
		d := Generate(name, Config{Seed: 1, Scale: 1})
		if d.Len() < bounds[0] || d.Len() > bounds[1] {
			t.Errorf("%s: %d elements, want within %v", name, d.Len(), bounds)
		}
	}
}

func TestXMarkStructure(t *testing.T) {
	d := XMark(Config{Seed: 3, Scale: 0.05})
	h := d.TagHistogram()
	for _, tag := range []string{"site", "regions", "item", "person", "open_auction", "closed_auction", "bidder", "quantity"} {
		if h[tag] == 0 {
			t.Errorf("xmark lacks %q elements", tag)
		}
	}
	// Items spread across 6 regions.
	for _, region := range []string{"africa", "asia", "australia", "europe", "namerica", "samerica"} {
		if h[region] != 1 {
			t.Errorf("region %q count = %d", region, h[region])
		}
	}
	// Values exist for the predicate workload.
	qt, _ := d.LookupTag("quantity")
	lo, hi, ok := xmltree.ValueDomain(d, qt)
	if !ok || lo < 1 || hi > 10 {
		t.Errorf("quantity domain = %d..%d %v", lo, hi, ok)
	}
}

func TestIMDBGenreCorrelation(t *testing.T) {
	d := IMDB(Config{Seed: 5, Scale: 0.2})
	movieTag, _ := d.LookupTag("movie")
	typeTag, _ := d.LookupTag("type")
	actorTag, _ := d.LookupTag("actor")
	producerTag, _ := d.LookupTag("producer")

	actorSum := map[int64]float64{}
	producerSum := map[int64]float64{}
	count := map[int64]float64{}
	for i := 0; i < d.Len(); i++ {
		id := xmltree.NodeID(i)
		if d.Node(id).Tag != movieTag {
			continue
		}
		var genre int64 = -1
		actors, producers := 0, 0
		for _, c := range d.Node(id).Children {
			switch d.Node(c).Tag {
			case typeTag:
				genre = d.Node(c).Value
			case actorTag:
				actors++
			case producerTag:
				producers++
			}
		}
		if genre < 0 {
			t.Fatal("movie without type")
		}
		actorSum[genre] += float64(actors)
		producerSum[genre] += float64(producers)
		count[genre]++
	}
	if count[GenreAction] == 0 || count[GenreDocumentary] == 0 {
		t.Skip("scale too small to observe both extreme genres")
	}
	actionAvg := actorSum[GenreAction] / count[GenreAction]
	docAvg := actorSum[GenreDocumentary] / count[GenreDocumentary]
	if actionAvg < 2*docAvg {
		t.Errorf("action avg actors %.1f not >> documentary %.1f", actionAvg, docAvg)
	}
	// Genre frequency skew: action movies outnumber documentaries.
	if count[GenreAction] < count[GenreDocumentary] {
		t.Errorf("genre skew missing: action %v < documentary %v", count[GenreAction], count[GenreDocumentary])
	}
	// Producers track actors.
	if producerSum[GenreAction]/count[GenreAction] < producerSum[GenreDocumentary]/count[GenreDocumentary] {
		t.Error("producer counts not correlated with genre")
	}
}

func TestSwissProtStructure(t *testing.T) {
	d := SwissProt(Config{Seed: 9, Scale: 0.05})
	h := d.TagHistogram()
	for _, tag := range []string{"entry", "protein", "organism", "reference", "author", "keyword", "sequence"} {
		if h[tag] == 0 {
			t.Errorf("sprot lacks %q elements", tag)
		}
	}
	// Every entry has exactly one protein and one sequence.
	if h["protein"] != h["entry"] || h["sequence"] != h["entry"] {
		t.Errorf("protein/sequence per entry: %d/%d of %d", h["protein"], h["sequence"], h["entry"])
	}
	// References outnumber entries (long tail).
	if h["reference"] < h["entry"] {
		t.Errorf("references %d < entries %d", h["reference"], h["entry"])
	}
}

func TestScaleMonotonicity(t *testing.T) {
	for _, name := range Names() {
		small := Generate(name, Config{Seed: 1, Scale: 0.02})
		large := Generate(name, Config{Seed: 1, Scale: 0.08})
		if large.Len() <= small.Len() {
			t.Errorf("%s: scale 0.08 (%d) not larger than 0.02 (%d)", name, large.Len(), small.Len())
		}
	}
}

func TestScaleClamping(t *testing.T) {
	d := XMark(Config{Seed: 1, Scale: -5})
	if err := d.Validate(); err != nil {
		t.Fatalf("clamped scale: %v", err)
	}
	if d.Len() < 50 {
		t.Fatalf("clamped scale produced %d elements", d.Len())
	}
}

func TestPartsRecursive(t *testing.T) {
	d := Parts(Config{Seed: 6, Scale: 0.1})
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	h := d.TagHistogram()
	if h["part"] == 0 || h["assembly"] == 0 || h["cost"] == 0 {
		t.Fatalf("histogram = %v", h)
	}
	// The schema is recursive: some part must nest under another part.
	partTag, _ := d.LookupTag("part")
	recursive := false
	for i := 0; i < d.Len(); i++ {
		n := d.Node(xmltree.NodeID(i))
		if n.Tag == partTag && n.Parent != xmltree.NilNode && d.Node(n.Parent).Tag == partTag {
			recursive = true
			break
		}
	}
	if !recursive {
		t.Fatal("no part nests under a part")
	}
	// Every part has a cost.
	if h["cost"] != h["part"] {
		t.Fatalf("cost %d != part %d", h["cost"], h["part"])
	}
}

func TestAllNamesIncludesParts(t *testing.T) {
	all := AllNames()
	if len(all) != 4 || all[3] != PartsName {
		t.Fatalf("AllNames = %v", all)
	}
	d := Generate(PartsName, Config{Seed: 1, Scale: 0.05})
	if d.Len() < 100 {
		t.Fatalf("parts dataset too small: %d", d.Len())
	}
}

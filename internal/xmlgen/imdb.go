package xmlgen

import "xsketch/internal/xmltree"

// Genre codes used by the IMDB generator's type element. Earlier genres are
// "bigger" productions: more actors, more producers, more awards — the
// cross-edge correlation the paper's introduction motivates ("we expect to
// retrieve more actors and producers per movie if the type X is 'Action'
// than if it is 'Documentary'").
const (
	GenreAction = iota
	GenreAdventure
	GenreThriller
	GenreComedy
	GenreDrama
	GenreRomance
	GenreHorror
	GenreAnimation
	GenreShort
	GenreDocumentary
	numGenres
)

// IMDB generates the movie-data stand-in: a skewed, correlated document.
// At Scale 1 it holds roughly 100k elements. Its key statistical properties:
//
//   - Genre frequencies are Zipf-distributed (dramas and comedies dominate,
//     shorts and documentaries are rare but structurally tiny).
//   - Cast and producer counts are driven by genre and by a Zipf "budget"
//     factor, so actor and producer counts are strongly correlated with
//     each other and with the type value.
//   - Awards exist mostly for big productions; box-office gross elements
//     only exist for wide releases, adding structure/value correlation.
func IMDB(cfg Config) *xmltree.Document {
	g := newGen(cfg.Seed)
	d := xmltree.NewDocument("imdb")
	root := d.Root()
	movies := cfg.scaledCount(3400)
	for i := 0; i < movies; i++ {
		imdbMovie(g, d, root)
	}
	return d
}

// genreCast maps genre to the base number of cast members.
var genreCast = [numGenres]int{18, 15, 12, 10, 9, 8, 7, 6, 3, 2}

func imdbMovie(g *gen, d *xmltree.Document, root xmltree.NodeID) {
	m := d.AddChild(root, "movie")
	d.AddChild(m, "title")
	d.AddValueChild(m, "year", int64(g.uniform(1950, 2003)))
	// Genre: Zipf over the 10 codes, so early genres are overrepresented.
	genre := g.zipf(1.4, numGenres) - 1
	d.AddValueChild(m, "type", int64(genre))
	d.AddValueChild(m, "rating", int64(g.uniform(10, 100)))

	// Budget factor: Zipf in [1, 8]; most movies are small productions,
	// a few are blockbusters. Cast size = base(genre) scaled by budget.
	budget := g.zipf(1.6, 8)
	actors := genreCast[genre] * budget / 4
	if actors < 1 {
		actors = 1
	}
	actors = g.uniform(actors/2+1, actors+1)
	for i := 0; i < actors; i++ {
		a := d.AddChild(m, "actor")
		d.AddChild(a, "name")
	}
	// Producers track actors (the correlation the twig query of the
	// paper's introduction joins over).
	producers := actors/6 + 1
	for i := 0; i < producers; i++ {
		p := d.AddChild(m, "producer")
		d.AddChild(p, "name")
	}
	for i, n := 0, g.uniform(1, 2); i < n; i++ {
		d.AddChild(m, "director")
	}
	for i, n := 0, g.zipf(1.8, 6); i < n; i++ {
		d.AddValueChild(m, "keyword", int64(g.uniform(0, 499)))
	}
	// Awards: big productions of "prestige" genres.
	if genre <= GenreDrama && budget >= 4 && g.bernoulli(0.6) {
		for i, n := 0, g.uniform(1, 3); i < n; i++ {
			aw := d.AddChild(m, "award")
			d.AddValueChild(aw, "awardyear", int64(g.uniform(1950, 2003)))
		}
	}
	// Box office: only wide releases carry a gross figure.
	if budget >= 3 {
		box := d.AddChild(m, "boxoffice")
		d.AddValueChild(box, "gross", int64(budget*g.uniform(1_000, 50_000)))
	}
	// Episodes: shorts and animations sometimes come as series.
	if (genre == GenreShort || genre == GenreAnimation) && g.bernoulli(0.4) {
		for i, n := 0, g.uniform(2, 6); i < n; i++ {
			ep := d.AddChild(m, "episode")
			d.AddChild(ep, "title")
			d.AddValueChild(ep, "number", int64(i+1))
		}
	}
}

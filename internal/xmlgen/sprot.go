package xmlgen

import "xsketch/internal/xmltree"

// SwissProt generates the protein-annotation stand-in: entries with
// references, features and keywords. It is "more regular" than IMDB (the
// paper finds CSTs competitive on it at 50KB) but keeps a long-tailed
// reference count. At Scale 1 it holds roughly 70k elements.
func SwissProt(cfg Config) *xmltree.Document {
	g := newGen(cfg.Seed)
	d := xmltree.NewDocument("sprot")
	root := d.Root()
	entries := cfg.scaledCount(2300)
	for i := 0; i < entries; i++ {
		sprotEntry(g, d, root)
	}
	return d
}

func sprotEntry(g *gen, d *xmltree.Document, root xmltree.NodeID) {
	e := d.AddChild(root, "entry")
	prot := d.AddChild(e, "protein")
	d.AddChild(prot, "name")
	org := d.AddChild(e, "organism")
	d.AddChild(org, "name")
	if g.bernoulli(0.6) {
		d.AddChild(org, "lineage")
	}
	seq := d.AddChild(e, "sequence")
	d.AddValueChild(seq, "length", int64(g.uniform(50, 3000)))
	d.AddValueChild(e, "created", int64(g.uniform(19860101, 20031231)))

	for i, n := 0, g.zipf(1.5, 8); i < n; i++ {
		ref := d.AddChild(e, "reference")
		for j, m := 0, g.uniform(1, 4); j < m; j++ {
			d.AddChild(ref, "author")
		}
		d.AddChild(ref, "title")
		d.AddValueChild(ref, "year", int64(g.uniform(1970, 2003)))
	}
	for i, n := 0, g.uniform(0, 4); i < n; i++ {
		f := d.AddChild(e, "feature")
		d.AddChild(f, "type")
		loc := d.AddChild(f, "location")
		from := g.uniform(1, 2500)
		d.AddValueChild(loc, "from", int64(from))
		d.AddValueChild(loc, "to", int64(from+g.uniform(1, 400)))
	}
	for i, n := 0, g.uniform(1, 5); i < n; i++ {
		d.AddValueChild(e, "keyword", int64(g.uniform(0, 199)))
	}
}

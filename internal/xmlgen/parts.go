package xmlgen

import "xsketch/internal/xmltree"

// Parts generates a recursive assembly hierarchy (part elements nesting
// under part elements), the classic recursive-DTD stress case for graph
// synopses: the label-split synopsis contains a part -> part self-loop, so
// descendant-axis expansion, TSN computation and XBUILD splits must all
// handle cycles. It is not one of the paper's three evaluation datasets
// but is shipped (as dataset "parts") for robustness testing and as a
// workload source for the recursive-schema unit tests.
//
// Structure: a catalog of assemblies; each assembly is a part tree of
// random depth (up to 6) where every part has a name, a cost value, and
// 0-3 sub-parts; leaves carry a supplier reference.
func Parts(cfg Config) *xmltree.Document {
	g := newGen(cfg.Seed)
	d := xmltree.NewDocument("catalog")
	assemblies := cfg.scaledCount(900)
	for i := 0; i < assemblies; i++ {
		a := d.AddChild(d.Root(), "assembly")
		d.AddChild(a, "name")
		partsSubtree(g, d, a, 0)
	}
	return d
}

func partsSubtree(g *gen, d *xmltree.Document, parent xmltree.NodeID, depth int) {
	p := d.AddChild(parent, "part")
	d.AddChild(p, "name")
	d.AddValueChild(p, "cost", int64(g.uniform(1, 1000)))
	if depth >= 5 {
		d.AddValueChild(p, "supplier", int64(g.uniform(0, 49)))
		return
	}
	// Deeper levels fan out less, keeping the expected size finite.
	max := 3 - depth/2
	if max < 0 {
		max = 0
	}
	n := g.uniform(0, max)
	if n == 0 {
		d.AddValueChild(p, "supplier", int64(g.uniform(0, 49)))
		return
	}
	for i := 0; i < n; i++ {
		partsSubtree(g, d, p, depth+1)
	}
}

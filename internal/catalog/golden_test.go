package catalog

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"xsketch/internal/twig"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_v1.xsb from the deterministic fixture build")

const goldenPath = "testdata/golden_v1.xsb"

// goldenQuery and goldenEstimateBits pin one estimate over the golden
// sketch down to the bit. If a format or estimator change shifts this,
// that change broke compatibility with files already on disk — bump
// FormatVersion rather than silently re-interpreting version-1 bytes.
const (
	goldenQuery        = "t0 in movie, t1 in t0/actor"
	goldenEstimateBits = 0x407b800000000000 // 440, logged by -update
)

// TestGoldenFixture decodes the version-1 fixture checked into testdata
// and verifies (a) it still decodes, (b) re-encoding reproduces the exact
// bytes on disk, and (c) a pinned estimate is bit-identical. Together
// these freeze the on-disk format: any encoder/decoder change that would
// reinterpret existing files fails here instead of in production.
//
// Regenerate with `go test ./internal/catalog -run Golden -update` —
// only alongside a FormatVersion bump.
func TestGoldenFixture(t *testing.T) {
	sk, _ := buildFixture(t, "imdb", 0.02, 16*1024, true)

	if *updateGolden {
		data, err := EncodeBytes(sk)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		est := sk.EstimateQuery(twig.MustParse(goldenQuery))
		t.Logf("golden fixture rewritten: %d bytes; pin goldenEstimateBits = %#x (estimate %v)",
			len(data), math.Float64bits(est), est)
	}

	disk, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update): %v", err)
	}

	got, info, err := Open(goldenPath)
	if err != nil {
		t.Fatalf("decode golden fixture: %v", err)
	}
	if info.Version != FormatVersion {
		t.Fatalf("golden fixture version %d, package FormatVersion %d — keep a decoder for old versions or regenerate", info.Version, FormatVersion)
	}

	// Today's encoder must reproduce the committed bytes exactly, both
	// from the decoded sketch and from a fresh fixture build.
	reenc, err := EncodeBytes(got)
	if err != nil {
		t.Fatalf("re-encode decoded fixture: %v", err)
	}
	if !bytes.Equal(reenc, disk) {
		t.Fatalf("re-encoding the decoded golden fixture changed the bytes (len %d vs %d) — format drift without a version bump", len(reenc), len(disk))
	}
	fresh, err := EncodeBytes(sk)
	if err != nil {
		t.Fatalf("encode fresh fixture: %v", err)
	}
	if !bytes.Equal(fresh, disk) {
		t.Fatalf("encoding a freshly built fixture no longer matches the golden file (len %d vs %d) — encoder or builder drift", len(fresh), len(disk))
	}

	q := twig.MustParse(goldenQuery)
	wantBits := math.Float64bits(sk.EstimateQuery(q))
	if pinned := uint64(goldenEstimateBits); pinned != 0 && pinned != wantBits {
		t.Fatalf("live estimate bits %#x differ from pinned %#x", wantBits, pinned)
	}
	if gotBits := math.Float64bits(got.EstimateQuery(q)); gotBits != wantBits {
		t.Fatalf("golden sketch estimate bits %#x, want %#x", gotBits, wantBits)
	}
}

package catalog

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"xsketch/internal/cli"
	"xsketch/internal/histogram"
	"xsketch/internal/xsketch"
)

// Ext is the file extension of catalog entries.
const Ext = ".xsb"

// ValidName reports whether name is usable as a catalog entry name: a
// non-empty bare file stem with no path separators or traversal, so
// filepath.Join(dir, name+Ext) always lands inside dir.
func ValidName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, `/\`)
}

// Write encodes the sketch into dir as name+Ext, creating dir if needed.
// The file appears atomically (temp file + fsync + rename), so a
// concurrent Scan or Open never observes a partial entry. It returns the
// written path.
func Write(dir, name string, sk *xsketch.Sketch) (string, error) {
	if !ValidName(name) {
		return "", fmt.Errorf("catalog: invalid entry name %q", name)
	}
	buf, err := EncodeBytes(sk)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("catalog: create directory: %w", err)
	}
	path := filepath.Join(dir, name+Ext)
	if err := cli.WriteFileAtomic(path, buf, 0o644); err != nil {
		return "", fmt.Errorf("catalog: %w", err)
	}
	return path, nil
}

// Open decodes the catalog entry at path with full checksum verification,
// returning the detached sketch and its info (Name derived from the file
// name).
func Open(path string) (*xsketch.Sketch, Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Info{}, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	sk, info, err := Decode(f)
	if err != nil {
		return nil, Info{}, fmt.Errorf("catalog: open %s: %w", path, err)
	}
	info.Name = entryName(path)
	info.Path = path
	return sk, info, nil
}

// OpenByName opens entry name from dir.
func OpenByName(dir, name string) (*xsketch.Sketch, Info, error) {
	if !ValidName(name) {
		return nil, Info{}, fmt.Errorf("catalog: invalid entry name %q", name)
	}
	return Open(filepath.Join(dir, name+Ext))
}

// Scan lists the catalog entries in dir in name order, reading only each
// file's header and stats prologue (no payload decode, no checksum pass).
// Files that fail the cheap header read are included with Err set so the
// caller can report them; Scan itself fails only when the directory cannot
// be read.
func Scan(dir string) ([]Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: scan: %w", err)
	}
	var infos []Info
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), Ext) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		info, err := ReadInfo(path)
		if err != nil {
			info = Info{Err: err}
		}
		info.Name = entryName(path)
		info.Path = path
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// ReadInfo reads a file's header and stats prologue without decoding or
// checksumming the payload: the cheap per-file step behind Scan. Name and
// Path are left for the caller to fill.
func ReadInfo(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Info{}, err
	}
	var buf [headerSize + prologueSize]byte
	if _, err := io.ReadFull(f, buf[:]); err != nil {
		return Info{}, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	version, payloadLen, _, err := parseHeader(buf[:headerSize])
	if err != nil {
		return Info{}, err
	}
	if int64(headerSize)+int64(payloadLen) != st.Size() {
		return Info{}, fmt.Errorf("%w: header says %d payload bytes, file has %d",
			ErrCorrupt, payloadLen, st.Size()-headerSize)
	}
	r := histogram.NewByteReader(buf[headerSize:])
	info, err := parsePrologue(r, int(payloadLen)-prologueSize)
	if err != nil {
		return Info{}, err
	}
	info.Version = version
	info.FileBytes = st.Size()
	return info, nil
}

// SniffFile reports whether the file at path starts with the catalog
// magic, distinguishing the standalone binary format from the legacy gob
// form without consuming the reader the caller will decode from.
func SniffFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, nil // too short to be either format; let the decoder complain
	}
	return bytes.Equal(m[:], []byte(magic)), nil
}

// entryName derives the catalog name from a file path.
func entryName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), Ext)
}

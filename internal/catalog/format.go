package catalog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"xsketch/internal/graphsyn"
	"xsketch/internal/histogram"
	"xsketch/internal/xmltree"
	"xsketch/internal/xsketch"
)

// File layout (all fields little-endian, fixed width):
//
//	header (32 bytes)
//	  magic      [4]byte  "XSKB"
//	  version    uint32   FormatVersion
//	  flags      uint32   reserved, must be 0
//	  payloadLen uint64   bytes following the header
//	  checksum   uint32   CRC-32 (IEEE) of the payload
//	  reserved   [8]byte  must be 0
//	payload
//	  stats prologue (28 bytes: nodes u32, edges u32, tags u32,
//	    elements u64, modelBytes u64) — readable by Scan without
//	    decoding, checksummed like everything else by Open
//	  config block (fixed width, see appendConfig)
//	  tag table (per tag: u32 length + raw bytes, TagID order)
//	  root synopsis node (u32)
//	  node array (per node: tag u32, extent count u64, node ID order)
//	  edge array (per edge: from u32, to u32, child count u64,
//	    parent count u64; Synopsis.Edges order — ascending From, then To)
//	  summary array (one per node in ID order, see appendSummary)
//
// Floats (histogram frequencies, centroids, wavelet coefficients) travel
// as raw IEEE-754 bit patterns via the internal/histogram codec, so a
// decoded sketch's estimates are Float64bits-identical to the original's.

const (
	// FormatVersion is the version written into new files. Decoders accept
	// exactly this version; anything else fails with ErrVersion.
	FormatVersion = 1

	headerSize   = 32
	prologueSize = 28
	magic        = "XSKB"

	// maxPayload bounds the payload length a decoder will buffer. Real
	// synopses are kilobytes; anything near this bound is a corrupt header.
	maxPayload = 1 << 30
)

// Sentinel errors for the load failure modes, wrapped with context by the
// decoding functions; match with errors.Is.
var (
	ErrMagic     = fmt.Errorf("catalog: not a sketch catalog file (bad magic)")
	ErrVersion   = fmt.Errorf("catalog: unsupported format version")
	ErrChecksum  = fmt.Errorf("catalog: payload checksum mismatch")
	ErrTruncated = fmt.Errorf("catalog: truncated file")
	ErrCorrupt   = fmt.Errorf("catalog: corrupt payload")
)

// Info summarizes one catalog file. Scan fills it from the header and
// stats prologue alone; Decode fills it from the decoded payload.
type Info struct {
	// Name is the catalog name: the file's base name without the .xsb
	// extension. Filled by the directory layer (Scan, Open).
	Name string
	// Path is the file path the info was read from (directory layer).
	Path string
	// Version is the format version in the header.
	Version uint32
	// Nodes, Edges and Tags are the synopsis dimensions.
	Nodes, Edges, Tags int
	// Elements is the summed extent size over all nodes — the element
	// count of the summarized document.
	Elements int64
	// ModelBytes is the sketch's size under its own size model
	// (Sketch.SizeBytes at encode time).
	ModelBytes int64
	// FileBytes is the on-disk file size.
	FileBytes int64
	// Err records why the file was skipped during a Scan; nil for files
	// whose header and prologue read cleanly. The other fields are
	// meaningless when Err is non-nil (except Name and Path).
	Err error
}

// Fixed-width little-endian append helpers, matching the
// internal/histogram codec's field layout.

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI64(b []byte, v int64) []byte  { return appendU64(b, uint64(v)) }
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Encode writes the sketch's standalone binary form to w.
func Encode(w io.Writer, sk *xsketch.Sketch) error {
	buf, err := EncodeBytes(sk)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("catalog: write encoded sketch: %w", err)
	}
	return nil
}

// EncodeBytes returns the sketch's standalone binary form: header plus
// checksummed payload. Encoding is deterministic — equal sketches produce
// equal bytes — and works for detached sketches too, so a loaded catalog
// entry can be re-encoded bit-identically.
func EncodeBytes(sk *xsketch.Sketch) ([]byte, error) {
	if sk == nil || sk.Syn == nil {
		return nil, fmt.Errorf("catalog: cannot encode nil sketch")
	}
	payload, err := appendPayload(make([]byte, 0, 4096), sk)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, headerSize+len(payload))
	buf = append(buf, magic...)
	buf = appendU32(buf, FormatVersion)
	buf = appendU32(buf, 0) // flags
	buf = appendU64(buf, uint64(len(payload)))
	buf = appendU32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, make([]byte, 8)...) // reserved
	return append(buf, payload...), nil
}

func appendPayload(buf []byte, sk *xsketch.Sketch) ([]byte, error) {
	syn := sk.Syn
	doc := syn.Doc
	tags := doc.Tags()
	nodes := syn.Nodes()
	edges := syn.Edges()

	var elements uint64
	for _, n := range nodes {
		elements += uint64(n.Count())
	}
	// Stats prologue.
	buf = appendU32(buf, uint32(len(nodes)))
	buf = appendU32(buf, uint32(len(edges)))
	buf = appendU32(buf, uint32(len(tags)))
	buf = appendU64(buf, elements)
	buf = appendU64(buf, uint64(sk.SizeBytes()))

	buf = appendConfig(buf, sk.Cfg)

	for _, t := range tags {
		buf = appendU32(buf, uint32(len(t)))
		buf = append(buf, t...)
	}

	buf = appendU32(buf, uint32(syn.NodeOf(doc.Root())))

	for _, n := range nodes {
		buf = appendU32(buf, uint32(n.Tag))
		buf = appendU64(buf, uint64(n.Count()))
	}
	for _, e := range edges {
		buf = appendU32(buf, uint32(e.From))
		buf = appendU32(buf, uint32(e.To))
		buf = appendU64(buf, uint64(e.ChildCount))
		buf = appendU64(buf, uint64(e.ParentCount))
	}

	for _, n := range nodes {
		s := sk.Summaries[n.ID]
		if s == nil {
			return nil, fmt.Errorf("catalog: node %d has no summary", n.ID)
		}
		var err error
		buf, err = appendSummary(buf, s)
		if err != nil {
			return nil, fmt.Errorf("catalog: node %d: %w", n.ID, err)
		}
	}
	return buf, nil
}

func appendConfig(buf []byte, cfg xsketch.Config) []byte {
	buf = appendI64(buf, int64(cfg.InitialEdgeBuckets))
	buf = appendI64(buf, int64(cfg.InitialValueBuckets))
	buf = appendBool(buf, cfg.WaveletValues)
	buf = appendBool(buf, cfg.StoreEdgeCounts)
	buf = appendI64(buf, int64(cfg.MaxDescendantPathLen))
	buf = appendI64(buf, int64(cfg.MaxEmbeddings))
	buf = appendBool(buf, cfg.DisableEstimatorCache)
	buf = appendI64(buf, int64(cfg.PlanCacheSize))
	buf = appendI64(buf, int64(cfg.SizeModel.NodeBytes))
	buf = appendI64(buf, int64(cfg.SizeModel.EdgeBytes))
	buf = appendI64(buf, int64(cfg.SizeModel.BucketDimBytes))
	buf = appendI64(buf, int64(cfg.SizeModel.BucketFreqBytes))
	return buf
}

func appendSummary(buf []byte, s *xsketch.NodeSummary) ([]byte, error) {
	buf = appendI64(buf, int64(s.Buckets))
	buf = appendI64(buf, int64(s.ValueBuckets))
	buf = appendU64(buf, uint64(s.ValuedCount))
	buf = appendScope(buf, s.Scope)
	buf = appendScope(buf, s.ExtraScope)
	buf = appendU32(buf, uint32(len(s.ValueDims)))
	for _, vd := range s.ValueDims {
		if len(vd.Los) != len(vd.Bounds) {
			return nil, fmt.Errorf("catalog: value dim has %d los for %d bounds", len(vd.Los), len(vd.Bounds))
		}
		buf = appendU32(buf, uint32(vd.Source))
		buf = appendI64(buf, vd.Lo)
		buf = appendU32(buf, uint32(len(vd.Bounds)))
		for _, b := range vd.Bounds {
			buf = appendI64(buf, b)
		}
		for _, lo := range vd.Los {
			buf = appendI64(buf, lo)
		}
	}
	if s.Hist == nil {
		buf = appendBool(buf, false)
	} else {
		buf = appendBool(buf, true)
		buf = s.Hist.AppendBinary(buf)
	}
	return histogram.AppendValueSummaryBinary(buf, s.VHist)
}

func appendScope(buf []byte, scope []xsketch.ScopeEdge) []byte {
	buf = appendU32(buf, uint32(len(scope)))
	for _, se := range scope {
		buf = appendU32(buf, uint32(se.From))
		buf = appendU32(buf, uint32(se.To))
	}
	return buf
}

// Decode reads one encoded sketch from r, verifying magic, version and
// checksum, and reconstructs it as a detached sketch: a stub document
// carrying the tag table, a graphsyn.FromDetached synopsis, and stored
// summaries assembled through xsketch.FromStored. No document is replayed;
// decode cost scales with synopsis size only. Corrupt input yields a
// wrapped sentinel error, never a panic.
func Decode(r io.Reader) (*xsketch.Sketch, Info, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, Info{}, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	version, payloadLen, sum, err := parseHeader(hdr[:])
	if err != nil {
		return nil, Info{}, err
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, Info{}, fmt.Errorf("%w: reading %d-byte payload: %v", ErrTruncated, payloadLen, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, Info{}, fmt.Errorf("%w: computed %08x, header says %08x", ErrChecksum, got, sum)
	}
	sk, info, err := decodePayload(payload)
	if err != nil {
		return nil, Info{}, err
	}
	info.Version = version
	info.FileBytes = int64(headerSize + len(payload))
	return sk, info, nil
}

// parseHeader validates a raw header and returns its version, payload
// length and checksum.
func parseHeader(hdr []byte) (version uint32, payloadLen uint64, sum uint32, err error) {
	r := histogram.NewByteReader(hdr)
	if string(r.Bytes(4, "magic")) != magic {
		return 0, 0, 0, ErrMagic
	}
	version = r.U32("version")
	r.U32("flags")
	payloadLen = r.U64("payload length")
	sum = r.U32("checksum")
	if err := r.Err(); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if version != FormatVersion {
		return 0, 0, 0, fmt.Errorf("%w: file has version %d, this build reads version %d", ErrVersion, version, FormatVersion)
	}
	if payloadLen < prologueSize {
		return 0, 0, 0, fmt.Errorf("%w: payload of %d bytes cannot hold the stats prologue", ErrCorrupt, payloadLen)
	}
	if payloadLen > maxPayload {
		return 0, 0, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, payloadLen)
	}
	return version, payloadLen, sum, nil
}

func decodePayload(payload []byte) (*xsketch.Sketch, Info, error) {
	r := histogram.NewByteReader(payload)
	info, err := parsePrologue(r, len(payload)-prologueSize)
	if err != nil {
		return nil, Info{}, err
	}
	cfg := decodeConfig(r)
	if err := r.Err(); err != nil {
		return nil, Info{}, fmt.Errorf("%w: config block: %v", ErrCorrupt, err)
	}

	tags := make([]string, info.Tags)
	for i := range tags {
		n := r.Count(1, "tag length")
		tags[i] = string(r.Bytes(n, "tag bytes"))
	}
	root := graphsyn.NodeID(r.U32("root node"))
	if err := r.Err(); err != nil {
		return nil, Info{}, fmt.Errorf("%w: tag table: %v", ErrCorrupt, err)
	}

	nodeSpecs := make([]graphsyn.DetachedNodeSpec, info.Nodes)
	for i := range nodeSpecs {
		nodeSpecs[i] = graphsyn.DetachedNodeSpec{
			Tag:   xmltree.TagID(r.U32("node tag")),
			Count: int(r.U64("node count")),
		}
	}
	edgeSpecs := make([]graphsyn.DetachedEdgeSpec, info.Edges)
	for i := range edgeSpecs {
		edgeSpecs[i] = graphsyn.DetachedEdgeSpec{
			From:        graphsyn.NodeID(r.U32("edge from")),
			To:          graphsyn.NodeID(r.U32("edge to")),
			ChildCount:  int(r.U64("edge child count")),
			ParentCount: int(r.U64("edge parent count")),
		}
	}
	if err := r.Err(); err != nil {
		return nil, Info{}, fmt.Errorf("%w: node/edge arrays: %v", ErrCorrupt, err)
	}
	if root < 0 || int(root) >= len(nodeSpecs) {
		return nil, Info{}, fmt.Errorf("%w: root node %d outside %d nodes", ErrCorrupt, root, len(nodeSpecs))
	}

	doc, err := xmltree.NewStubDocument(tags, nodeSpecs[root].Tag)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	syn, err := graphsyn.FromDetached(doc, root, nodeSpecs, edgeSpecs)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	summaries := make(map[graphsyn.NodeID]*xsketch.NodeSummary, info.Nodes)
	for i := 0; i < info.Nodes; i++ {
		s, err := decodeSummary(r)
		if err != nil {
			return nil, Info{}, fmt.Errorf("%w: summary of node %d: %v", ErrCorrupt, i, err)
		}
		summaries[graphsyn.NodeID(i)] = s
	}
	if r.Len() != 0 {
		return nil, Info{}, fmt.Errorf("%w: %d trailing bytes after last summary", ErrCorrupt, r.Len())
	}

	sk, err := xsketch.FromStored(syn, summaries, cfg)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return sk, info, nil
}

// parsePrologue reads the stats prologue into an Info. remaining is the
// number of payload bytes following the prologue, used to reject corrupt
// counts before they drive large allocations: every node needs at least
// its 12-byte array entry, every edge 24 bytes, every tag a 4-byte length.
func parsePrologue(r *histogram.ByteReader, remaining int) (Info, error) {
	info := Info{
		Nodes:    int(r.U32("node count")),
		Edges:    int(r.U32("edge count")),
		Tags:     int(r.U32("tag count")),
		Elements: int64(r.U64("element count")),
	}
	info.ModelBytes = int64(r.U64("model bytes"))
	if err := r.Err(); err != nil {
		return Info{}, fmt.Errorf("%w: stats prologue: %v", ErrCorrupt, err)
	}
	if info.Nodes <= 0 || info.Nodes > remaining/12 {
		return Info{}, fmt.Errorf("%w: implausible node count %d", ErrCorrupt, info.Nodes)
	}
	if info.Edges < 0 || info.Edges > remaining/24 {
		return Info{}, fmt.Errorf("%w: implausible edge count %d", ErrCorrupt, info.Edges)
	}
	if info.Tags <= 0 || info.Tags > remaining/4 {
		return Info{}, fmt.Errorf("%w: implausible tag count %d", ErrCorrupt, info.Tags)
	}
	return info, nil
}

func decodeConfig(r *histogram.ByteReader) xsketch.Config {
	var cfg xsketch.Config
	cfg.InitialEdgeBuckets = int(r.I64("config edge buckets"))
	cfg.InitialValueBuckets = int(r.I64("config value buckets"))
	cfg.WaveletValues = r.Byte("config wavelet flag") != 0
	cfg.StoreEdgeCounts = r.Byte("config edge-count flag") != 0
	cfg.MaxDescendantPathLen = int(r.I64("config descendant path bound"))
	cfg.MaxEmbeddings = int(r.I64("config embedding bound"))
	cfg.DisableEstimatorCache = r.Byte("config cache flag") != 0
	cfg.PlanCacheSize = int(r.I64("config plan cache size"))
	cfg.SizeModel.NodeBytes = int(r.I64("size-model node bytes"))
	cfg.SizeModel.EdgeBytes = int(r.I64("size-model edge bytes"))
	cfg.SizeModel.BucketDimBytes = int(r.I64("size-model bucket dim bytes"))
	cfg.SizeModel.BucketFreqBytes = int(r.I64("size-model bucket freq bytes"))
	return cfg
}

func decodeSummary(r *histogram.ByteReader) (*xsketch.NodeSummary, error) {
	s := &xsketch.NodeSummary{
		Buckets:      int(r.I64("summary buckets")),
		ValueBuckets: int(r.I64("summary value buckets")),
		ValuedCount:  int(r.U64("summary valued count")),
	}
	var err error
	//lint:allow sketchmutate decoding fills a fresh summary before any sketch (or cache) exists
	if s.Scope, err = decodeScope(r, "scope"); err != nil {
		return nil, err
	}
	//lint:allow sketchmutate decoding fills a fresh summary before any sketch (or cache) exists
	if s.ExtraScope, err = decodeScope(r, "extra scope"); err != nil {
		return nil, err
	}
	nd := r.Count(16, "value dims")
	for i := 0; i < nd; i++ {
		vd := &xsketch.ValueDim{
			Source: graphsyn.NodeID(r.U32("value-dim source")),
			Lo:     r.I64("value-dim lo"),
		}
		bins := r.Count(16, "value-dim bins")
		if r.Err() == nil {
			vd.Bounds = make([]int64, bins)
			for j := range vd.Bounds {
				vd.Bounds[j] = r.I64("value-dim bound")
			}
			vd.Los = make([]int64, bins)
			for j := range vd.Los {
				vd.Los[j] = r.I64("value-dim bin lo")
			}
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		//lint:allow sketchmutate decoding fills a fresh summary before any sketch (or cache) exists
		s.ValueDims = append(s.ValueDims, vd)
	}
	hasHist := r.Byte("histogram presence")
	if err := r.Err(); err != nil {
		return nil, err
	}
	if hasHist != 0 {
		h, rest, err := histogram.DecodeHistogramBinary(r.Rest())
		if err != nil {
			return nil, err
		}
		//lint:allow sketchmutate decoding fills a fresh summary before any sketch (or cache) exists
		s.Hist = h
		*r = *histogram.NewByteReader(rest)
	}
	vs, rest, err := histogram.DecodeValueSummaryBinary(r.Rest())
	if err != nil {
		return nil, err
	}
	//lint:allow sketchmutate decoding fills a fresh summary before any sketch (or cache) exists
	s.VHist = vs
	*r = *histogram.NewByteReader(rest)
	return s, nil
}

func decodeScope(r *histogram.ByteReader, what string) ([]xsketch.ScopeEdge, error) {
	n := r.Count(8, what)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	scope := make([]xsketch.ScopeEdge, n)
	for i := range scope {
		scope[i] = xsketch.ScopeEdge{
			From: graphsyn.NodeID(r.U32(what + " from")),
			To:   graphsyn.NodeID(r.U32(what + " to")),
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return scope, nil
}

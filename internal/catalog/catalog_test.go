package catalog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"xsketch/internal/build"
	"xsketch/internal/cli"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xsketch"
)

// buildFixture builds a refined sketch over a generated dataset plus a
// workload of queries to compare estimates on.
func buildFixture(t *testing.T, dataset string, scale float64, budget int, wavelets bool) (*xsketch.Sketch, []*twig.Query) {
	t.Helper()
	doc, err := cli.LoadDoc("", dataset, scale, 1)
	if err != nil {
		t.Fatalf("load %s: %v", dataset, err)
	}
	opts := build.DefaultOptions(budget)
	opts.MaxSteps = 40
	opts.Sketch.WaveletValues = wavelets
	b := build.NewBuilder(doc, opts)
	b.Run()
	sk := b.Sketch()
	if err := sk.Validate(); err != nil {
		t.Fatalf("built sketch invalid: %v", err)
	}
	cfg := workload.DefaultConfig(workload.KindPV)
	cfg.NumQueries = 60
	cfg.Seed = 7
	wl := workload.Generate(doc, cfg)
	queries := make([]*twig.Query, len(wl.Queries))
	for i := range wl.Queries {
		queries[i] = wl.Queries[i].Twig
	}
	return sk, queries
}

// TestRoundTripBitIdentity is the acceptance check of the standalone
// format: a decoded sketch — detached, no document — must produce
// Float64bits-identical estimates to the original on every workload query,
// through both the interpreter and the compiled-plan path.
func TestRoundTripBitIdentity(t *testing.T) {
	cases := []struct {
		dataset  string
		scale    float64
		budget   int
		wavelets bool
	}{
		{"xmark", 0.02, 16 * 1024, false},
		{"imdb", 0.02, 16 * 1024, true},
	}
	for _, tc := range cases {
		t.Run(tc.dataset, func(t *testing.T) {
			sk, queries := buildFixture(t, tc.dataset, tc.scale, tc.budget, tc.wavelets)
			buf, err := EncodeBytes(sk)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, info, err := Decode(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !got.Detached() {
				t.Fatalf("decoded sketch is not detached")
			}
			if info.Nodes != sk.Syn.NumNodes() || info.Edges != sk.Syn.NumEdges() {
				t.Fatalf("info reports %d nodes / %d edges, sketch has %d / %d",
					info.Nodes, info.Edges, sk.Syn.NumNodes(), sk.Syn.NumEdges())
			}
			if info.ModelBytes != int64(sk.SizeBytes()) || got.SizeBytes() != sk.SizeBytes() {
				t.Fatalf("size model bytes diverge: info %d, decoded %d, original %d",
					info.ModelBytes, got.SizeBytes(), sk.SizeBytes())
			}
			for i, q := range queries {
				want := sk.EstimateQuery(q)
				have := got.EstimateQuery(q)
				if math.Float64bits(want) != math.Float64bits(have) {
					t.Fatalf("query %d: original %v (%x), decoded %v (%x)",
						i, want, math.Float64bits(want), have, math.Float64bits(have))
				}
				planned, err := got.EstimateQueryPlanned(q.String())
				if err != nil {
					t.Fatalf("query %d: planned estimate: %v", i, err)
				}
				if math.Float64bits(want) != math.Float64bits(planned.Estimate) {
					t.Fatalf("query %d: planned estimate %v diverges from %v", i, planned.Estimate, want)
				}
			}
		})
	}
}

// TestEncodeDeterministic: equal sketches encode to equal bytes, and a
// decoded sketch re-encodes to the very same file.
func TestEncodeDeterministic(t *testing.T) {
	sk, _ := buildFixture(t, "xmark", 0.01, 8*1024, false)
	a, err := EncodeBytes(sk)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b, err := EncodeBytes(sk)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodings of the same sketch differ")
	}
	dec, _, err := Decode(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c, err := EncodeBytes(dec)
	if err != nil {
		t.Fatalf("encode decoded: %v", err)
	}
	if !bytes.Equal(a, c) {
		t.Fatalf("decoded sketch re-encodes to different bytes")
	}
}

// TestWriteScanOpen exercises the directory layer end to end.
func TestWriteScanOpen(t *testing.T) {
	sk, queries := buildFixture(t, "xmark", 0.01, 8*1024, false)
	dir := filepath.Join(t.TempDir(), "catalog")
	path, err := Write(dir, "xmark", sk)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if filepath.Dir(path) != dir || filepath.Base(path) != "xmark"+Ext {
		t.Fatalf("unexpected written path %s", path)
	}

	infos, err := Scan(dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "xmark" || infos[0].Err != nil {
		t.Fatalf("scan returned %+v", infos)
	}
	if infos[0].Nodes != sk.Syn.NumNodes() || infos[0].ModelBytes != int64(sk.SizeBytes()) {
		t.Fatalf("scan info %+v disagrees with sketch", infos[0])
	}

	got, info, err := OpenByName(dir, "xmark")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if info.Name != "xmark" || info.Path != path {
		t.Fatalf("open info %+v", info)
	}
	for i, q := range queries {
		if math.Float64bits(sk.EstimateQuery(q)) != math.Float64bits(got.EstimateQuery(q)) {
			t.Fatalf("query %d estimate diverges after Write/Open", i)
		}
	}

	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := Write(dir, bad, sk); err == nil {
			t.Fatalf("Write accepted invalid name %q", bad)
		}
		if _, _, err := OpenByName(dir, bad); err == nil {
			t.Fatalf("OpenByName accepted invalid name %q", bad)
		}
	}
}

// TestScanReportsCorruptEntries: a scan over a directory holding a corrupt
// entry surfaces it with Err set instead of failing the whole scan.
func TestScanReportsCorruptEntries(t *testing.T) {
	sk, _ := buildFixture(t, "xmark", 0.01, 8*1024, false)
	dir := t.TempDir()
	if _, err := Write(dir, "good", sk); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad"+Ext), []byte("not a sketch"), 0o644); err != nil {
		t.Fatalf("write bad entry: %v", err)
	}
	infos, err := Scan(dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(infos) != 2 {
		t.Fatalf("scan returned %d entries, want 2", len(infos))
	}
	if infos[0].Name != "bad" || infos[0].Err == nil {
		t.Fatalf("corrupt entry not reported: %+v", infos[0])
	}
	if infos[1].Name != "good" || infos[1].Err != nil {
		t.Fatalf("good entry misreported: %+v", infos[1])
	}
}

// rechecksum recomputes the header checksum after a test mutated the
// payload, so the mutation reaches the structural validators instead of
// tripping the checksum gate.
func rechecksum(buf []byte) {
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(buf[headerSize:]))
}

// TestDecodeFailureModes drives the documented load failure modes:
// truncation, checksum mismatch, unsupported version, bad magic, and
// structural corruption all yield wrapped sentinel errors — never a panic,
// never a sketch.
func TestDecodeFailureModes(t *testing.T) {
	sk, _ := buildFixture(t, "xmark", 0.01, 8*1024, false)
	buf, err := EncodeBytes(sk)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	check := func(t *testing.T, data []byte, want error) {
		t.Helper()
		got, _, err := Decode(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("decode of corrupted input succeeded")
		}
		if got != nil {
			t.Fatalf("decode returned a sketch alongside error %v", err)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("error %v does not wrap %v", err, want)
		}
	}

	t.Run("truncated-header", func(t *testing.T) { check(t, buf[:headerSize-3], ErrTruncated) })
	t.Run("truncated-payload", func(t *testing.T) { check(t, buf[:len(buf)-5], ErrTruncated) })
	t.Run("bad-magic", func(t *testing.T) {
		c := bytes.Clone(buf)
		c[0] ^= 0xff
		check(t, c, ErrMagic)
	})
	t.Run("unsupported-version", func(t *testing.T) {
		c := bytes.Clone(buf)
		binary.LittleEndian.PutUint32(c[4:8], FormatVersion+1)
		check(t, c, ErrVersion)
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		c := bytes.Clone(buf)
		c[headerSize+40] ^= 0x01
		check(t, c, ErrChecksum)
	})
	t.Run("implausible-node-count", func(t *testing.T) {
		c := bytes.Clone(buf)
		binary.LittleEndian.PutUint32(c[headerSize:], 1<<30)
		rechecksum(c)
		check(t, c, ErrCorrupt)
	})
	t.Run("tag-table-node-mismatch", func(t *testing.T) {
		// Shrink the tag table so node tags point past it: FromDetached's
		// cross-check must reject the mismatch.
		c := bytes.Clone(buf)
		binary.LittleEndian.PutUint32(c[headerSize+8:], 1)
		rechecksum(c)
		check(t, c, ErrCorrupt)
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		c := bytes.Clone(buf)
		c = append(c, 0)
		binary.LittleEndian.PutUint64(c[12:20], uint64(len(c)-headerSize))
		rechecksum(c)
		check(t, c, ErrCorrupt)
	})

	// Exhaustive truncation sweep: every prefix must fail cleanly. This is
	// the no-panic guarantee for arbitrarily cut files.
	t.Run("every-prefix", func(t *testing.T) {
		step := 1
		if len(buf) > 4096 {
			step = len(buf) / 4096
		}
		for i := 0; i < len(buf); i += step {
			// Re-stamp the payload length so the cut lands inside the
			// structural decoders, not just the up-front length check.
			c := bytes.Clone(buf[:i])
			if i >= headerSize {
				binary.LittleEndian.PutUint64(c[12:20], uint64(i-headerSize))
				rechecksum(c)
			}
			if sk, _, err := Decode(bytes.NewReader(c)); err == nil || sk != nil {
				t.Fatalf("prefix of %d bytes decoded without error", i)
			}
		}
	})
}

// TestSniffFile distinguishes catalog files from the legacy gob format.
func TestSniffFile(t *testing.T) {
	sk, _ := buildFixture(t, "xmark", 0.01, 8*1024, false)
	dir := t.TempDir()
	path, err := Write(dir, "s", sk)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if ok, err := SniffFile(path); err != nil || !ok {
		t.Fatalf("SniffFile(catalog) = %v, %v", ok, err)
	}
	gob := filepath.Join(dir, "legacy.bin")
	f, err := os.Create(gob)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := xsketch.Save(f, sk); err != nil {
		t.Fatalf("gob save: %v", err)
	}
	f.Close()
	if ok, err := SniffFile(gob); err != nil || ok {
		t.Fatalf("SniffFile(gob) = %v, %v", ok, err)
	}
}

// Package catalog implements the standalone binary synopsis format and
// the on-disk sketch catalog built on it.
//
// The persistence layer in internal/xsketch (Save/Load, encoding/gob)
// replays construction decisions against the original document, so a
// loader must hold the full XML tree — startup cost scales with document
// size. The catalog format instead stores everything the estimator reads
// and nothing it does not: a fixed little-endian header (magic, version,
// checksum), the interned tag table, flat node/edge/scope arrays with
// per-node extent counts, and the serialized histograms and value
// dimensions. Decode reconstructs a detached sketch
// (graphsyn.FromDetached + xsketch.FromStored) whose estimates are
// Float64bits-identical to the build-and-replay path, with no document
// available at all — the paper's offline-build/online-estimate split made
// literal: replicas load a synopsis of a few kilobytes, never the
// multi-megabyte tree it summarizes.
//
// On top of the codec sits a catalog directory abstraction: Write encodes
// a sketch atomically into DIR/<name>.xsb, Scan lists a directory's
// synopses from their headers, and Open decodes one with full checksum
// verification. xbuild writes into a catalog, xserve scans one at startup
// and hot-swaps sketches from it through POST /admin/reload or SIGHUP.
package catalog

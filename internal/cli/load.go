package cli

import (
	"bufio"
	"fmt"
	"os"

	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
)

// LoadDoc resolves the common -in/-dataset flag pair of the tools: exactly
// one of in (an XML file path, "-" for stdin) or dataset (a generator
// name) must be given.
func LoadDoc(in, dataset string, scale float64, seed int64) (*xmltree.Document, error) {
	switch {
	case in != "" && dataset != "":
		return nil, fmt.Errorf("give either -in or -dataset, not both")
	case dataset != "":
		for _, n := range xmlgen.AllNames() {
			if n == dataset {
				return xmlgen.Generate(dataset, xmlgen.Config{Seed: seed, Scale: scale}), nil
			}
		}
		return nil, fmt.Errorf("unknown dataset %q (want one of %v)", dataset, xmlgen.AllNames())
	case in == "-":
		return xmltree.Parse(bufio.NewReader(os.Stdin))
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return xmltree.Parse(bufio.NewReader(f))
	}
	return nil, fmt.Errorf("give -in <file> or -dataset <name>")
}

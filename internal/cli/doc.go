// Package cli holds small helpers shared by the command-line tools.
package cli

package cli

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes land in a temporary file in the target
// directory, are flushed to stable storage, and the temp file is renamed
// over path. A crash mid-write leaves either the old file or the new one,
// never a torn artifact — which matters for every tool output another
// process may pick up (xserve scans catalogs xbuild writes; workload and
// dataset files feed later runs).
//
// On any error the temporary file is removed. perm applies to newly
// created files subject to the process umask, matching os.WriteFile.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("create temp file in %s: %w", dir, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("write %s: %w", tmp, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("sync %s: %w", tmp, err)
	}
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("chmod %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rename %s to %s: %w", tmp, path, err)
	}
	return nil
}

package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("read back %q, %v", got, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("perm %v, want 0644", fi.Mode().Perm())
	}

	// Overwrite in place: the rename replaces the old content atomically.
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("after overwrite read back %q", got)
	}

	// No temp files may survive, success or failure.
	if err := WriteFileAtomic(filepath.Join(dir, "missing", "x"), []byte("y"), 0o644); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.bin" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only out.bin (no temp leftovers)", names)
	}
}

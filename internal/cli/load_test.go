package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDocDataset(t *testing.T) {
	d, err := LoadDoc("", "imdb", 0.02, 1)
	if err != nil {
		t.Fatalf("LoadDoc(dataset): %v", err)
	}
	if d.Len() < 100 {
		t.Fatalf("dataset too small: %d", d.Len())
	}
	if _, err := LoadDoc("", "parts", 0.02, 1); err != nil {
		t.Fatalf("LoadDoc(parts): %v", err)
	}
}

func TestLoadDocFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte(`<a><b>7</b></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDoc(path, "", 0, 0)
	if err != nil {
		t.Fatalf("LoadDoc(file): %v", err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestLoadDocErrors(t *testing.T) {
	if _, err := LoadDoc("x.xml", "imdb", 1, 1); err == nil {
		t.Fatal("accepted both -in and -dataset")
	}
	if _, err := LoadDoc("", "nope", 1, 1); err == nil {
		t.Fatal("accepted unknown dataset")
	}
	if _, err := LoadDoc("", "", 1, 1); err == nil {
		t.Fatal("accepted neither flag")
	}
	if _, err := LoadDoc("/no/such/file.xml", "", 1, 1); err == nil {
		t.Fatal("accepted missing file")
	}
}

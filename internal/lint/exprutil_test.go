package lint

import (
	"go/ast"
	"testing"
)

func TestRootIdent(t *testing.T) {
	src := `package p
type s struct{ buckets []float64 }
func sink(v any) {}
func f(h *s, i int) {
	sink(h.buckets[i])
	sink((*h).buckets)
	sink(&h.buckets)
	sink(1 + 2)
}`
	pkg := typecheckSrc(t, "xsketch/internal/eutest", src)
	args := sinkArgs(pkg)
	want := []string{"h", "h", "h", ""}
	for i, arg := range args {
		id := rootIdent(arg)
		got := ""
		if id != nil {
			got = id.Name
		}
		if got != want[i] {
			t.Errorf("rootIdent(sink #%d) = %q, want %q", i, got, want[i])
		}
	}
}

func TestStripParens(t *testing.T) {
	src := `package p
func sink(v any) {}
func f(x int) { sink(((x))) }`
	pkg := typecheckSrc(t, "xsketch/internal/eutest", src)
	arg := sinkArgs(pkg)[0]
	if _, ok := stripParens(arg).(*ast.Ident); !ok {
		t.Errorf("stripParens(((x))) = %T, want *ast.Ident", stripParens(arg))
	}
}

func TestNumericTypePredicates(t *testing.T) {
	src := `package p
type myFloat float32
var (
	a float64
	b myFloat
	c int
	d uint8
	e string
)`
	pkg := typecheckSrc(t, "xsketch/internal/eutest", src)
	scope := pkg.Types.Scope()
	cases := []struct {
		name          string
		float, intger bool
	}{
		{"a", true, false},
		{"b", true, false},
		{"c", false, true},
		{"d", false, true},
		{"e", false, false},
	}
	for _, c := range cases {
		tp := scope.Lookup(c.name).Type()
		if got := isFloat(tp); got != c.float {
			t.Errorf("isFloat(%s) = %v, want %v", tp, got, c.float)
		}
		if got := isInteger(tp); got != c.intger {
			t.Errorf("isInteger(%s) = %v, want %v", tp, got, c.intger)
		}
	}
	if isFloat(nil) || isInteger(nil) {
		t.Error("nil type must satisfy neither predicate")
	}
}

func TestConstPredicates(t *testing.T) {
	src := `package p
func sink(v any) {}
func f(x float64) {
	sink(2.0)
	sink(-3)
	sink(0)
	sink(x)
}`
	pkg := typecheckSrc(t, "xsketch/internal/eutest", src)
	pass := passFor(pkg)
	args := sinkArgs(pkg)
	type want struct{ nonZero, positive bool }
	wants := []want{
		{true, true},   // 2.0
		{true, false},  // -3
		{false, false}, // 0
		{false, false}, // x: not a constant at all
	}
	for i, arg := range args {
		if got := isNonZeroConst(pass, arg); got != wants[i].nonZero {
			t.Errorf("isNonZeroConst(sink #%d) = %v, want %v", i, got, wants[i].nonZero)
		}
		if got := isPositiveConst(pass, arg); got != wants[i].positive {
			t.Errorf("isPositiveConst(sink #%d) = %v, want %v", i, got, wants[i].positive)
		}
	}
}

func TestTypeFuncOfAndBuiltin(t *testing.T) {
	src := `package p
type s struct{}
func (s) m() {}
func g() {}
func f(xs []int, fn func()) {
	var v s
	v.m()
	g()
	fn()
	_ = append(xs, 1)
}`
	pkg := typecheckSrc(t, "xsketch/internal/eutest", src)
	pass := passFor(pkg)
	var calls []*ast.CallExpr
	ast.Inspect(pkg.Files[0], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if len(calls) != 4 {
		t.Fatalf("calls = %d, want 4", len(calls))
	}
	if fn := typeFuncOf(pass, calls[0]); fn == nil || fn.Name() != "m" {
		t.Errorf("typeFuncOf(v.m()) = %v, want method m", fn)
	}
	if fn := typeFuncOf(pass, calls[1]); fn == nil || fn.Name() != "g" {
		t.Errorf("typeFuncOf(g()) = %v, want func g", fn)
	}
	if fn := typeFuncOf(pass, calls[2]); fn != nil {
		t.Errorf("typeFuncOf(fn()) = %v, want nil for a function value", fn)
	}
	if fn := typeFuncOf(pass, calls[3]); fn != nil {
		t.Errorf("typeFuncOf(append(...)) = %v, want nil for a builtin", fn)
	}
	if !isBuiltinCall(pass, calls[3], "append") {
		t.Error("append call not recognized as builtin append")
	}
	if isBuiltinCall(pass, calls[1], "append") || isBuiltinCall(pass, calls[3], "delete") {
		t.Error("isBuiltinCall must match both the name and the builtin object")
	}
}

func TestEnclosingFuncName(t *testing.T) {
	src := `package p
func sink(v any) {}
func outer() {
	fn := func() {
		sink(1)
	}
	fn()
}`
	pkg := typecheckSrc(t, "xsketch/internal/eutest", src)
	// Reconstruct the ancestor stack by hand: FuncDecl(outer) is the only
	// frame enclosingFuncName should report, even from inside the closure.
	var fd *ast.FuncDecl
	for _, d := range pkg.Files[0].Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name.Name == "outer" {
			fd = f
		}
	}
	var lit *ast.FuncLit
	ast.Inspect(fd, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	got := enclosingFuncName([]ast.Node{pkg.Files[0], fd, lit})
	if got != "outer" {
		t.Errorf("enclosingFuncName through a closure = %q, want %q", got, "outer")
	}
	if enclosingFuncName([]ast.Node{pkg.Files[0]}) != "" {
		t.Error("enclosingFuncName at package scope must be empty")
	}
}

func TestDeclaredWithin(t *testing.T) {
	src := `package p
var global []int
func sink(v any) {}
func f() {
	local := []int{1}
	sink(local)
	sink(global)
}`
	pkg := typecheckSrc(t, "xsketch/internal/eutest", src)
	pass := passFor(pkg)
	var fd *ast.FuncDecl
	for _, d := range pkg.Files[0].Decls {
		if f, ok := d.(*ast.FuncDecl); ok && f.Name.Name == "f" {
			fd = f
		}
	}
	args := sinkArgs(pkg)
	if !declaredWithin(pass, args[0], fd.Pos(), fd.End()) {
		t.Error("local must be declaredWithin f")
	}
	if declaredWithin(pass, args[1], fd.Pos(), fd.End()) {
		t.Error("global must not be declaredWithin f")
	}
}

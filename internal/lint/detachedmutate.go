package lint

import (
	"go/ast"
	"go/token"

	"xsketch/internal/lint/analysis"
)

// DetachedMutate flags calls to sketch mutation entry points that panic on
// detached sketches — RebuildNode, RebuildAll, AddValueDim, SetBuckets,
// AddScopeEdge — in code reachable from catalog-served paths (the serve
// and catalog packages and the xserve binary, per the analyzer targets).
// Sketches loaded from a catalog are detached: they estimate perfectly
// well but carry no document extents, so the rebuild entry points reject
// them with a panic. In an HTTP handler or an admin reload path that
// panic is a request-killing 500 waiting for the first catalog-backed
// deployment. A call is accepted when it is dominated by a Detached()
// guard on the same receiver — an enclosing `if !sk.Detached()` branch, an
// `if sk.Detached()` else-branch, or a prior diverging
// `if sk.Detached() { return ... }` — and flagged otherwise.
var DetachedMutate = &analysis.Analyzer{
	Name: "detachedmutate",
	Doc:  "flags detached-panicking sketch mutations on catalog-served code paths",
	Run:  runDetachedMutate,
}

// detachedPanicking lists the xsketch.Sketch methods that panic when the
// receiver is detached (see sketch.go, valuedim.go).
var detachedPanicking = map[string]bool{
	"RebuildNode":  true,
	"RebuildAll":   true,
	"AddValueDim":  true,
	"SetBuckets":   true,
	"AddScopeEdge": true,
}

func runDetachedMutate(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := typeFuncOf(pass, call)
			if fn == nil || !detachedPanicking[fn.Name()] {
				return
			}
			if methodOnNamed(pass, call, "xsketch", "Sketch", fn.Name()) == nil {
				return
			}
			sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			recv := rootIdent(sel.X)
			if recv == nil {
				return
			}
			if detachedGuardOnPath(pass, call, stack, recv.Name) {
				return
			}
			pass.Reportf(call.Pos(),
				"%s.%s panics on a detached (catalog-loaded) sketch; guard with %s.Detached() before mutating, or add //lint:allow detachedmutate",
				recv.Name, fn.Name(), recv.Name)
		})
	}
	return nil, nil
}

// detachedGuardOnPath walks the call's ancestor chain for a dominating
// Detached() guard on recvName, stopping at function boundaries.
func detachedGuardOnPath(pass *analysis.Pass, call ast.Node, stack []ast.Node, recvName string) bool {
	inner := call
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		case *ast.IfStmt:
			if inner == ast.Node(s.Body) && condImpliesAttached(pass, s.Cond, recvName) {
				return true
			}
			if s.Else != nil && inner == ast.Node(s.Else) && condImpliesDetached(pass, s.Cond, recvName) {
				return true
			}
		case *ast.BlockStmt:
			if priorDetachedGuard(pass, s.List, inner, recvName) {
				return true
			}
		case *ast.CaseClause:
			if priorDetachedGuard(pass, s.Body, inner, recvName) {
				return true
			}
		case *ast.CommClause:
			if priorDetachedGuard(pass, s.Body, inner, recvName) {
				return true
			}
		}
		inner = stack[i]
	}
	return false
}

// priorDetachedGuard scans the statements before inner for a diverging
// `if recv.Detached() { return/panic/... }` early-exit guard.
func priorDetachedGuard(pass *analysis.Pass, list []ast.Stmt, inner ast.Node, recvName string) bool {
	idx := -1
	for i, st := range list {
		if ast.Node(st) == inner {
			idx = i
			break
		}
	}
	for j := 0; j < idx; j++ {
		ifs, ok := list[j].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condImpliesDetached(pass, ifs.Cond, recvName) && blockDiverges(ifs.Body) {
			return true
		}
	}
	return false
}

// condImpliesAttached reports whether cond being true implies the sketch
// is attached: `!recv.Detached()` or a conjunction containing it.
func condImpliesAttached(pass *analysis.Pass, cond ast.Expr, recvName string) bool {
	switch e := stripParens(cond).(type) {
	case *ast.UnaryExpr:
		return e.Op == token.NOT && isDetachedCall(pass, e.X, recvName)
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return condImpliesAttached(pass, e.X, recvName) || condImpliesAttached(pass, e.Y, recvName)
		}
	}
	return false
}

// condImpliesDetached reports whether cond being true implies the sketch
// is detached — and, dually, its falsity implies attached for || chains:
// `recv.Detached()` or a disjunction containing it.
func condImpliesDetached(pass *analysis.Pass, cond ast.Expr, recvName string) bool {
	switch e := stripParens(cond).(type) {
	case *ast.CallExpr:
		return isDetachedCall(pass, e, recvName)
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condImpliesDetached(pass, e.X, recvName) || condImpliesDetached(pass, e.Y, recvName)
		}
	}
	return false
}

// isDetachedCall recognizes `recv.Detached()` (or `recv.Syn.Detached()`)
// where recv's root identifier is recvName.
func isDetachedCall(pass *analysis.Pass, e ast.Expr, recvName string) bool {
	call, ok := stripParens(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Detached" {
		return false
	}
	id := rootIdent(sel.X)
	return id != nil && id.Name == recvName
}

package lint

import (
	"go/ast"

	"xsketch/internal/lint/analysis"
)

// AtomicSnap flags writes through data reached via an atomic.Pointer.Load
// snapshot. The hot-swap idiom (serve.sketchState, the estimator-cache
// table, compiled-plan generations) is only correct because a published
// state is immutable: a request loads the pointer once and reads a fully
// consistent value until it finishes, while swappers publish replacement
// state exclusively through Store/Swap/CompareAndSwap. A field write
// through a loaded snapshot silently mutates state that concurrent readers
// assume frozen — a data race the type system cannot see. The analyzer
// tracks snapshot values through the def-use layer (aliases, selector
// chains, slicing), so `st := p.Load(); s := st.sub; s.f = v` is flagged
// just like the direct write. Rebinding the snapshot variable itself
// (`st = p.Load()`) is fine, as is any call on the snapshot — publishing
// replacements goes through the pointer's own Store, which is a call, not
// an assignment.
var AtomicSnap = &analysis.Analyzer{
	Name: "atomicsnap",
	Doc:  "forbids writes through atomic.Pointer.Load snapshots; swapped state is immutable",
	Run:  runAtomicSnap,
}

func runAtomicSnap(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		d := collectDefUse(pass, f)
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					checkSnapshotWrite(pass, d, l)
				}
			case *ast.IncDecStmt:
				checkSnapshotWrite(pass, d, n.X)
			case *ast.CallExpr:
				if isBuiltinCall(pass, n, "delete") && len(n.Args) == 2 {
					checkSnapshotWrite(pass, d, n.Args[0])
				}
			}
		})
	}
	return nil, nil
}

// checkSnapshotWrite reports lvalue when it writes *through* a snapshot:
// the written location is a selector/index/star chain whose root value
// derives from an atomic.Pointer.Load call. A plain identifier lvalue is
// never a write through the snapshot — it merely rebinds the variable.
func checkSnapshotWrite(pass *analysis.Pass, d *defUse, lvalue ast.Expr) {
	lvalue = stripParens(lvalue)
	if _, ok := lvalue.(*ast.Ident); ok {
		return
	}
	if !writesThroughPointer(lvalue) {
		return
	}
	if !d.anyRefOrigin(lvalue, func(o ast.Expr) bool {
		return isAtomicPointerLoad(pass, o)
	}) {
		return
	}
	pass.Reportf(lvalue.Pos(),
		"write to %s mutates state loaded from an atomic.Pointer snapshot; build a new state and publish it via Store, or add //lint:allow atomicsnap",
		exprStr(lvalue))
}

// writesThroughPointer reports whether lvalue dereferences at least one
// selector/index/star layer, i.e. the assignment stores into the pointed-to
// state rather than rebinding a local.
func writesThroughPointer(lvalue ast.Expr) bool {
	switch x := stripParens(lvalue).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = x
		return true
	}
	return false
}

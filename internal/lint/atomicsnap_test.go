package lint_test

import (
	"testing"

	"xsketch/internal/lint"
	"xsketch/internal/lint/analysistest"
)

func TestAtomicSnap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.AtomicSnap, "atomicsnap")
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"xsketch/internal/lint/analysis"
)

// Nondeterminism flags constructs that make scoring or estimation results
// depend on anything other than the input and the seed: wall-clock reads
// (time.Now and friends), the unseeded global math/rand source, and
// goroutine bodies that accumulate into shared variables so the result
// depends on goroutine scheduling. The deterministic parallel pattern —
// each goroutine writing its own indexed slot, as in XBUILD's scoreAll and
// the batch estimator — is accepted, as are goroutine bodies that take a
// lock before writing.
var Nondeterminism = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc:  "forbids time.Now, unseeded math/rand and scheduling-dependent accumulation in estimation paths",
	Run:  runNondeterminism,
}

// seededRandConstructors are the math/rand entry points that produce an
// explicitly seeded source; everything else at package level draws from the
// global, unseeded source.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runNondeterminism(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineBody(pass, lit)
				}
			}
		})
	}
	return nil, nil
}

func checkNondetCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := typeFuncOf(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s makes results depend on the wall clock; thread the value in as an input or add //lint:allow nondeterminism", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return // method on an explicitly constructed *Rand/*Zipf
		}
		if seededRandConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(), "rand.%s draws from the global unseeded source; use rand.New(rand.NewSource(seed)) or add //lint:allow nondeterminism", fn.Name())
	}
}

// checkGoroutineBody flags shared-state accumulation inside a goroutine
// launched as a closure. Writes to variables declared outside the closure
// are ordering-dependent unless they land in distinct indexed slots
// (out[i] = ...) or the body synchronizes with a lock.
func checkGoroutineBody(pass *analysis.Pass, lit *ast.FuncLit) {
	if acquiresLock(lit.Body) {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested closures are not necessarily concurrent
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				checkSharedWrite(pass, lit, l, n.Tok)
			}
		case *ast.IncDecStmt:
			checkSharedWrite(pass, lit, n.X, n.Tok)
		}
		return true
	})
}

func checkSharedWrite(pass *analysis.Pass, lit *ast.FuncLit, lvalue ast.Expr, tok token.Token) {
	if tok == token.DEFINE {
		return
	}
	if declaredWithin(pass, lvalue, lit.Pos(), lit.End()) {
		return
	}
	if _, ok := stripParens(lvalue).(*ast.IndexExpr); ok {
		// The deterministic fan-out pattern: each goroutine owns its
		// index, so the final contents are schedule-independent.
		return
	}
	pass.Reportf(lvalue.Pos(), "write to shared %s inside goroutine depends on scheduling; write an indexed slot per goroutine or add //lint:allow nondeterminism", exprStr(lvalue))
}

// acquiresLock reports whether the body calls a Lock method, which we take
// as evidence the writes are deliberately synchronized.
func acquiresLock(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
			}
		}
		return !found
	})
	return found
}

package lint

import (
	"go/ast"
	"testing"
)

// originStrs resolves origins(e) for the i-th sink argument and renders
// each origin to source form.
func originStrs(t *testing.T, src string, i int) []string {
	t.Helper()
	pkg := typecheckSrc(t, "xsketch/internal/dftest", src)
	d := collectDefUse(passFor(pkg), pkg.Files[0])
	args := sinkArgs(pkg)
	if i >= len(args) {
		t.Fatalf("only %d sink calls, want index %d", len(args), i)
	}
	var out []string
	for _, o := range d.origins(args[i]) {
		out = append(out, exprStr(o))
	}
	return out
}

func TestOriginsMultiValueAssign(t *testing.T) {
	got := originStrs(t, `package p
func two() ([]int, error) { return nil, nil }
func sink(v any) {}
func f() {
	a, err := two()
	_ = err
	sink(a)
}`, 0)
	if len(got) != 1 || got[0] != "two()" {
		t.Errorf("origins of multi-value binding = %v, want [two()]", got)
	}
}

func TestOriginsRangeBinding(t *testing.T) {
	got := originStrs(t, `package p
func sink(v any) {}
func f(xs [][]int) {
	for _, v := range xs {
		sink(v)
	}
}`, 0)
	if len(got) != 1 || got[0] != "xs" {
		t.Errorf("origins of range value = %v, want [xs] (the ranged expression)", got)
	}
}

func TestOriginsPureCycleIsEmpty(t *testing.T) {
	// var-then-self-append never names an external buffer: the cycle
	// contributes nothing and the origin set must come out empty (hotalloc
	// treats that as "no caller-provided buffer").
	got := originStrs(t, `package p
func sink(v any) {}
func f(x int) {
	var out []int
	out = append(out, x)
	sink(out)
}`, 0)
	if len(got) != 0 {
		t.Errorf("origins of self-append cycle = %v, want empty", got)
	}
}

func TestOriginsCycleKeepsExternalSeed(t *testing.T) {
	// The sanctioned reuse idiom: the cycle edge contributes nothing but
	// the buf[:0] definition survives, naming the parameter.
	got := originStrs(t, `package p
func sink(v any) {}
func f(buf []byte, b byte) {
	out := buf[:0]
	out = append(out, b)
	sink(out)
}`, 0)
	if len(got) != 1 || got[0] != "buf" {
		t.Errorf("origins of seeded append cycle = %v, want [buf]", got)
	}
}

func TestOriginsUnderscoreNotRecorded(t *testing.T) {
	pkg := typecheckSrc(t, "xsketch/internal/dftest", `package p
func two() (int, error) { return 0, nil }
func f() {
	_, err := two()
	_ = err
}`)
	d := collectDefUse(passFor(pkg), pkg.Files[0])
	for obj := range d.defs {
		if obj.Name() == "_" {
			t.Error("blank identifier must not be recorded as a definition")
		}
	}
}

func TestRefOriginsValueCopyCuts(t *testing.T) {
	src := `package p
type state struct {
	count int
	names []string
}
func sink(v any) {}
func f(get func() *state) {
	st := get()
	ns := *st
	sink(&ns.count)
	names := st.names
	sink(names)
	sink(&st.count)
}`
	pkg := typecheckSrc(t, "xsketch/internal/dftest", src)
	d := collectDefUse(passFor(pkg), pkg.Files[0])
	args := sinkArgs(pkg)
	if len(args) != 3 {
		t.Fatalf("sink calls = %d, want 3", len(args))
	}
	isCall := func(e ast.Expr) bool { _, ok := e.(*ast.CallExpr); return ok }
	if d.anyRefOrigin(args[0], isCall) {
		t.Error("&ns.count: ns is a value copy, the chase must cut before get()")
	}
	if !d.anyRefOrigin(args[1], isCall) {
		t.Error("names: a slice field shares backing, the chase must reach get()")
	}
	if !d.anyRefOrigin(args[2], isCall) {
		t.Error("&st.count: st is a pointer, the chase must reach get()")
	}
}

func TestRefOriginsPeelsAccessLayers(t *testing.T) {
	src := `package p
type inner struct{ v int }
type state struct {
	m   map[string]*inner
	arr [4]int
}
func sink(v any) {}
func f(get func() *state) {
	st := get()
	sink(st.m["k"].v)
	sink(st.arr[1:2])
}`
	pkg := typecheckSrc(t, "xsketch/internal/dftest", src)
	d := collectDefUse(passFor(pkg), pkg.Files[0])
	isCall := func(e ast.Expr) bool { _, ok := e.(*ast.CallExpr); return ok }
	for i, arg := range sinkArgs(pkg) {
		if !d.anyRefOrigin(arg, isCall) {
			t.Errorf("sink #%d: selector/index/slice layers must peel through to get()", i)
		}
	}
}

func TestIsRefShaped(t *testing.T) {
	src := `package p
type s struct{ v int }
var (
	a *s
	b map[int]int
	c []int
	d chan int
	e any
	f s
	g int
	h [3]int
)`
	pkg := typecheckSrc(t, "xsketch/internal/dftest", src)
	want := map[string]bool{
		"a": true, "b": true, "c": true, "d": true, "e": true,
		"f": false, "g": false, "h": false,
	}
	scope := pkg.Types.Scope()
	for name, wantRef := range want {
		obj := scope.Lookup(name)
		if obj == nil {
			t.Fatalf("no object %q", name)
		}
		if got := isRefShaped(obj.Type()); got != wantRef {
			t.Errorf("isRefShaped(%s %s) = %v, want %v", name, obj.Type(), got, wantRef)
		}
	}
}

package lint

import (
	"go/ast"
	"go/token"

	"xsketch/internal/lint/analysis"
)

// PkgDoc enforces the documentation floor: every package carries a package
// comment, and every exported top-level identifier — functions, methods on
// exported receivers, types, consts and vars — carries a doc comment. It
// is the mechanical half of the repo's documentation pass; prose quality
// stays with review, but absence is caught here and in CI.
var PkgDoc = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc:  "requires package comments and doc comments on exported identifiers",
	Run:  runPkgDoc,
}

func runPkgDoc(pass *analysis.Pass) (interface{}, error) {
	if len(pass.Files) == 0 {
		return nil, nil
	}
	// The package comment may sit on any file (conventionally doc.go).
	// When missing, anchor the diagnostic to the lexically first file so
	// the finding's position is stable across runs.
	hasDoc := false
	primary := pass.Files[0]
	for _, f := range pass.Files {
		if f.Doc != nil {
			hasDoc = true
		}
		if pass.Fset.Position(f.Package).Filename < pass.Fset.Position(primary.Package).Filename {
			primary = f
		}
	}
	if !hasDoc {
		pass.Reportf(primary.Package, "package %s has no package comment; add one (conventionally in doc.go)", pass.Pkg.Name())
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
	return nil, nil
}

func checkFuncDoc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	if d.Recv == nil {
		pass.Reportf(d.Name.Pos(), "exported function %s has no doc comment", d.Name.Name)
		return
	}
	// Methods on unexported receivers are unreachable outside the package,
	// so their documentation is the package's own business.
	if recvExported(d.Recv) {
		pass.Reportf(d.Name.Pos(), "exported method %s has no doc comment", d.Name.Name)
	}
}

// checkGenDoc flags undocumented exported names in type, const and var
// declarations. A doc comment on the grouped declaration covers every spec
// in the group.
func checkGenDoc(pass *analysis.Pass, d *ast.GenDecl) {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && sp.Doc == nil {
				pass.Reportf(sp.Name.Pos(), "exported type %s has no doc comment", sp.Name.Name)
			}
		case *ast.ValueSpec:
			if sp.Doc != nil {
				continue
			}
			kind := "const"
			if d.Tok == token.VAR {
				kind = "var"
			}
			for _, n := range sp.Names {
				if n.IsExported() {
					pass.Reportf(n.Pos(), "exported %s %s has no doc comment", kind, n.Name)
				}
			}
		}
	}
}

// recvExported reports whether a method receiver's base type name is
// exported, unwrapping pointers and type-parameter instantiations.
func recvExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"

	"xsketch/internal/lint/analysis"
)

// CtxFlow checks that exported ...Context functions actually propagate
// their context. The estimator and serving layers expose context-aware
// entry points (EstimateQueryContext, EstimateBatchPlannedContext, the
// plan executor's EstimateContext) whose whole contract is cooperative
// cancellation: a request that drops its ctx — by calling
// context.Background()/TODO(), by passing some other context into a
// context-taking callee, or by never consulting ctx at all — keeps
// burning CPU after the client has gone away, which under load-shedding
// is exactly when the work is least affordable. Derivation through
// context.WithTimeout/WithCancel chains is recognized via the def-use
// layer, so `cctx, cancel := context.WithTimeout(ctx, d)` followed by
// calls on cctx is fine.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported ...Context functions must propagate ctx into context-taking calls",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !isContextSuffixed(fd.Name.Name) {
				continue
			}
			ctxObj := contextParam(pass, fd)
			if ctxObj == nil {
				continue
			}
			checkCtxFunc(pass, fd, ctxObj)
		}
	}
	return nil, nil
}

// isContextSuffixed reports whether name follows the ...Context naming
// convention (and is not literally "Context", which would be an accessor).
func isContextSuffixed(name string) bool {
	const suffix = "Context"
	return len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix
}

// contextParam returns the object of fd's first parameter of type
// context.Context, or nil.
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		if !isContextType(pass.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := identObj(pass, name); obj != nil {
				return obj
			}
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named := namedTypeOf(t)
	return named != nil && named.Obj() != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func checkCtxFunc(pass *analysis.Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	d := collectDefUse(pass, fd.Body)
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && identObj(pass, id) == ctxObj {
			used = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isFreshContextCall(pass, call) {
			pass.Reportf(call.Pos(),
				"%s in exported %s drops the caller's ctx; derive child contexts from ctx instead, or add //lint:allow ctxflow",
				exprStr(call.Fun), fd.Name.Name)
			return true
		}
		checkCtxArgs(pass, d, fd, ctxObj, call)
		return true
	})
	if !used {
		pass.Reportf(fd.Name.Pos(),
			"exported %s never uses its ctx; propagate it into the blocking calls (or drop the Context suffix), or add //lint:allow ctxflow",
			fd.Name.Name)
	}
}

// isFreshContextCall reports calls to context.Background or context.TODO.
func isFreshContextCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeFuncOf(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// checkCtxArgs flags context-typed arguments of call that do not derive
// from the function's own ctx parameter. Fresh-context arguments are
// skipped here — the Background/TODO call itself is already reported.
func checkCtxArgs(pass *analysis.Pass, d *defUse, fd *ast.FuncDecl, ctxObj types.Object, call *ast.CallExpr) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() && !sig.Variadic() {
			break
		}
		var pt types.Type
		if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !isContextType(pt) {
			continue
		}
		if containsFreshContextCall(pass, arg) {
			continue
		}
		if derivedFromCtx(pass, d, arg, ctxObj, 0) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"%s passes %s where the caller's ctx should flow; derive it from ctx, or add //lint:allow ctxflow",
			fd.Name.Name, exprStr(arg))
	}
}

func containsFreshContextCall(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isFreshContextCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// derivedFromCtx reports whether e's value derives from ctxObj: it is the
// parameter itself, an alias resolved through the def-use layer, or a call
// (context.WithTimeout, request wrappers) receiving a derived value as an
// argument.
func derivedFromCtx(pass *analysis.Pass, d *defUse, e ast.Expr, ctxObj types.Object, depth int) bool {
	if depth > maxOriginDepth {
		return false
	}
	for _, o := range d.origins(e) {
		switch x := o.(type) {
		case *ast.Ident:
			if identObj(pass, x) == ctxObj {
				return true
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if derivedFromCtx(pass, d, arg, ctxObj, depth+1) {
					return true
				}
			}
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"xsketch/internal/lint/analysis"
)

// exprStr renders an expression to its canonical source form so that
// syntactically identical expressions (a guard condition's operand and a
// division's denominator, say) compare equal as strings.
func exprStr(e ast.Expr) string { return types.ExprString(e) }

// stripParens removes any number of surrounding parentheses.
func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// rootIdent returns the leftmost identifier of a selector/index/star/paren
// chain (h for h.total, s for s.buckets[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isFloat reports whether t's underlying type is a floating-point type
// (including untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInteger reports whether t's underlying type is an integer type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// constValue returns the compile-time constant value of e, or nil.
func constValue(pass *analysis.Pass, e ast.Expr) constant.Value {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// constSign returns the sign of a numeric constant (-1, 0, +1) and whether
// the value was a usable numeric constant at all.
func constSign(v constant.Value) (int, bool) {
	if v == nil {
		return 0, false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v), true
	}
	return 0, false
}

// isNonZeroConst reports whether e is a numeric constant known to be != 0.
func isNonZeroConst(pass *analysis.Pass, e ast.Expr) bool {
	s, ok := constSign(constValue(pass, e))
	return ok && s != 0
}

// isPositiveConst reports whether e is a numeric constant known to be > 0.
func isPositiveConst(pass *analysis.Pass, e ast.Expr) bool {
	s, ok := constSign(constValue(pass, e))
	return ok && s > 0
}

// typeFuncOf resolves the *types.Func a call expression invokes, or nil for
// calls through function values, conversions and built-ins.
func typeFuncOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := stripParens(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isBuiltinCall reports whether call invokes the named built-in (delete,
// panic, append, ...).
func isBuiltinCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := stripParens(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// enclosingFuncName walks the ancestor stack outward and returns the name of
// the outermost enclosing function declaration, so that code inside closures
// is attributed to the method that owns them. Returns "" at package scope.
func enclosingFuncName(stack []ast.Node) string {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// declaredWithin reports whether the object behind e's root identifier is
// declared inside the [pos, end] span — i.e. whether the lvalue is local to
// that region.
func declaredWithin(pass *analysis.Pass, e ast.Expr, pos, end token.Pos) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := identObj(pass, id)
	return obj != nil && obj.Pos() >= pos && obj.Pos() <= end
}

package lint

import (
	"strings"
	"testing"
)

func TestAuditPackage(t *testing.T) {
	src := `package p

func f(a, b float64) float64 {
	//lint:allow divguard caller guarantees a non-zero denominator
	return a / b
}

//lint:allow divguard nothing divides on this line
var x = 1.0

//lint:allow nosuch not a real analyzer
var y = 2.0
`
	pkg := typecheckSrc(t, "xsketch/internal/xsketch", src)
	out := auditPackage(pkg)
	if len(out) != 2 {
		for _, f := range out {
			t.Logf("finding: %s: %s", f.Position, f.Message)
		}
		t.Fatalf("stale findings = %d, want 2 (the live directive must not report)", len(out))
	}
	for _, f := range out {
		if f.Analyzer != "audit" {
			t.Errorf("finding analyzer = %q, want audit", f.Analyzer)
		}
	}
	if !strings.Contains(out[0].Message, "reports nothing on this line") {
		t.Errorf("line-8 directive message = %q, want a no-finding explanation", out[0].Message)
	}
	if !strings.Contains(out[1].Message, `no analyzer named "nosuch"`) {
		t.Errorf("nosuch directive message = %q, want an unknown-analyzer explanation", out[1].Message)
	}
}

func TestAuditOutOfScopeDirective(t *testing.T) {
	src := `package cli

//lint:allow divguard divguard does not even run here
var z = 1.0
`
	pkg := typecheckSrc(t, "xsketch/internal/cli", src)
	out := auditPackage(pkg)
	if len(out) != 1 {
		t.Fatalf("stale findings = %d, want 1", len(out))
	}
	if !strings.Contains(out[0].Message, "not in scope") {
		t.Errorf("message = %q, want an out-of-scope explanation", out[0].Message)
	}
}

func TestAuditNoDirectivesIsCheap(t *testing.T) {
	pkg := typecheckSrc(t, "xsketch/internal/xsketch", `package p
func f(a, b float64) float64 { return a / b }
`)
	// An unguarded division exists, but with no directives the audit has
	// nothing to judge and must stay silent — it reports stale
	// suppressions, not findings.
	if out := auditPackage(pkg); len(out) != 0 {
		t.Fatalf("audit of directive-free package = %d findings, want 0", len(out))
	}
}

package lint_test

import (
	"testing"

	"xsketch/internal/lint"
	"xsketch/internal/lint/analysistest"
)

func TestPkgDoc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.PkgDoc, "pkgdoc", "pkgdocmissing")
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"testing"
)

// TestRepoIsClean is the acceptance gate in test form: the whole module
// must have zero unsuppressed findings, so introducing a new unguarded
// division or unsorted map-range fails go test as well as CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := repoRoot(t)
	findings, err := Run(root, "./...")
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
	}
}

// TestSuiteIncludesAllAnalyzers pins the registered suite, so a refactor
// that drops an analyzer from the Analyzers slice (silently exempting the
// whole repo from its rule, including TestRepoIsClean above) fails loudly.
// CI runs this test by name next to TestRepoIsClean.
func TestSuiteIncludesAllAnalyzers(t *testing.T) {
	want := []string{
		"divguard", "maporder", "sketchmutate", "nondeterminism", "pkgdoc",
		"atomicsnap", "poolscratch", "hotalloc", "ctxflow", "detachedmutate",
	}
	registered := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		registered[a.Name] = true
	}
	for _, name := range want {
		if !registered[name] {
			t.Errorf("analyzer %q missing from the registered suite", name)
		}
	}
	if len(Analyzers) != len(want) {
		t.Errorf("suite has %d analyzers, want %d — update this list and DESIGN.md together", len(Analyzers), len(want))
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func TestSuppressionIndex(t *testing.T) {
	src := `package p

//lint:allow divguard denominator is clamped two lines up
var a = 1

var b = 2 //lint:allow maporder same-line directive

//lint:allow divguard
var c = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildSuppressions(fset, []*ast.File{f})
	if len(idx.malformed) != 1 {
		t.Fatalf("malformed directives = %d, want 1 (the reason-less one)", len(idx.malformed))
	}
	posA, posB, posC := f.Decls[0].Pos(), f.Decls[1].Pos(), f.Decls[2].Pos()
	if !idx.allowed(fset, posA, "divguard") {
		t.Error("directive on the line above should suppress divguard at var a")
	}
	if idx.allowed(fset, posA, "maporder") {
		t.Error("directive names divguard only; maporder must not be suppressed")
	}
	if !idx.allowed(fset, posB, "maporder") {
		t.Error("same-line directive should suppress maporder at var b")
	}
	if idx.allowed(fset, posC, "divguard") {
		t.Error("reason-less directive must not suppress anything")
	}
}

func TestAnalyzerTargeting(t *testing.T) {
	if !analyzerApplies(DivGuard, "xsketch/internal/xsketch") {
		t.Error("divguard should apply to internal/xsketch")
	}
	if analyzerApplies(DivGuard, "xsketch/internal/cli") {
		t.Error("divguard should not apply to internal/cli")
	}
	if analyzerApplies(DivGuard, "xsketch/internal/notxsketch") {
		t.Error("suffix match must respect path-segment boundaries")
	}
	if !analyzerApplies(SketchMutate, "xsketch/examples/movies") {
		t.Error("sketchmutate applies everywhere")
	}
}

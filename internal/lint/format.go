package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// PrintJSON writes findings as an indented JSON array (never null, so
// consumers can index unconditionally).
func PrintJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// sarifLog is the subset of SARIF 2.1.0 the suite emits: one run, one rule
// per analyzer, one result per finding. Internal tool failures map to level
// "error", ordinary findings to "warning".
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifRules returns the rule table: every registered analyzer plus the two
// pseudo-rules the runner itself reports under ("lint" for malformed
// directives, "audit" for stale ones).
func sarifRules() []sarifRule {
	rules := make([]sarifRule, 0, len(Analyzers)+2)
	for _, a := range Analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules,
		sarifRule{ID: "lint", ShortDescription: sarifText{Text: "malformed //lint:allow suppression directives"}},
		sarifRule{ID: "audit", ShortDescription: sarifText{Text: "stale //lint:allow suppression directives"}},
	)
	return rules
}

// PrintSARIF writes findings as a SARIF 2.1.0 log. File paths are emitted
// relative to base (forward-slashed) when possible, so the log uploads
// cleanly as a repository-rooted artifact; paths outside base, and the
// package-level positions of internal errors, pass through verbatim.
func PrintSARIF(w io.Writer, base string, findings []Finding) error {
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: f.Message},
		}
		if f.Internal {
			r.Level = "error"
		}
		uri := f.File
		if base != "" && filepath.IsAbs(uri) {
			if rel, err := filepath.Rel(base, uri); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
				uri = rel
			}
		}
		loc := sarifLocation{PhysicalLocation: sarifPhysical{
			ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
		}}
		if f.Line > 0 {
			loc.PhysicalLocation.Region = &sarifRegion{StartLine: f.Line, StartColumn: f.Col}
		}
		r.Locations = []sarifLocation{loc}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "xsketchlint", Rules: sarifRules()}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// hasDotDotPrefix reports whether rel escapes its base ("../x" but not
// "..x").
func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[0] == '.' && rel[1] == '.' && (rel[2] == '/' || rel[2] == filepath.Separator)
}

package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPrintJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty finding list = %q, want [] (never null)", got)
	}

	in := []Finding{
		{Position: "a.go:1:2", File: "a.go", Line: 1, Col: 2, Analyzer: "divguard", Message: "m1"},
		{Position: "pkg/x", File: "pkg/x", Analyzer: "hotalloc", Message: "analyzer error: boom", Internal: true},
	}
	buf.Reset()
	if err := PrintJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("decoding own output: %v", err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("round-trip = %+v, want %+v", out, in)
	}
}

func TestPrintSARIF(t *testing.T) {
	findings := []Finding{
		{Position: "/base/pkg/file.go:3:7", File: "/base/pkg/file.go", Line: 3, Col: 7, Analyzer: "divguard", Message: "unguarded division"},
		{Position: "xsketch/internal/x", File: "xsketch/internal/x", Analyzer: "hotalloc", Message: "analyzer error: boom", Internal: true},
	}
	var buf bytes.Buffer
	if err := PrintSARIF(&buf, "/base", findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("decoding own output: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "xsketchlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range Analyzers {
		if !ruleIDs[a.Name] {
			t.Errorf("rule table missing analyzer %q", a.Name)
		}
	}
	for _, pseudo := range []string{"lint", "audit"} {
		if !ruleIDs[pseudo] {
			t.Errorf("rule table missing pseudo-rule %q", pseudo)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "divguard" || r0.Level != "warning" {
		t.Errorf("result 0 = %s/%s, want divguard/warning", r0.RuleID, r0.Level)
	}
	loc0 := r0.Locations[0].PhysicalLocation
	if loc0.ArtifactLocation.URI != "pkg/file.go" {
		t.Errorf("result 0 uri = %q, want base-relative pkg/file.go", loc0.ArtifactLocation.URI)
	}
	if loc0.Region == nil || loc0.Region.StartLine != 3 || loc0.Region.StartColumn != 7 {
		t.Errorf("result 0 region = %+v, want 3:7", loc0.Region)
	}
	r1 := run.Results[1]
	if r1.Level != "error" {
		t.Errorf("internal finding level = %q, want error", r1.Level)
	}
	if r1.Locations[0].PhysicalLocation.Region != nil {
		t.Error("package-level internal finding must carry no region")
	}
	if got := r1.Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "xsketch/internal/x" {
		t.Errorf("non-file position must pass through verbatim, got %q", got)
	}
}

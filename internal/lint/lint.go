package lint

import "xsketch/internal/lint/analysis"

// Analyzers is the full xsketchlint suite in output order.
var Analyzers = []*analysis.Analyzer{
	DivGuard,
	MapOrder,
	SketchMutate,
	Nondeterminism,
	PkgDoc,
	AtomicSnap,
	PoolScratch,
	HotAlloc,
	CtxFlow,
	DetachedMutate,
}

// targets maps each analyzer to the import-path suffixes it runs on; a nil
// entry means every package. divguard and friends are scoped to the
// estimator/scoring packages where a NaN or ordering difference corrupts
// results, not to CLI glue where (say) timing output is legitimate.
var targets = map[string][]string{
	"divguard": {
		"internal/xsketch",
		"internal/histogram",
		"internal/statix",
		"internal/metrics",
	},
	"maporder": {
		"internal/xsketch",
		"internal/histogram",
		"internal/statix",
		"internal/metrics",
		"internal/build",
		"internal/graphsyn",
		"internal/workload",
		"internal/eval",
	},
	"sketchmutate": nil,
	"pkgdoc":       nil,
	// The dataflow analyzers run everywhere: the constructs they track
	// (atomic.Pointer snapshots, sync.Pool scratch, //lint:hotpath
	// annotations, ...Context signatures) are self-selecting, so packages
	// without them cost nothing.
	"atomicsnap":  nil,
	"poolscratch": nil,
	"hotalloc":    nil,
	"ctxflow":     nil,
	// detachedmutate is scoped to the catalog-served code paths: only
	// there can a sketch be detached at runtime (attached builds go
	// through xbuild/estimator code that owns its documents).
	"detachedmutate": {
		"internal/serve",
		"internal/catalog",
		"cmd/xserve",
	},
	"nondeterminism": {
		"internal/xsketch",
		"internal/histogram",
		"internal/statix",
		"internal/metrics",
		"internal/build",
		"internal/graphsyn",
		"internal/workload",
		"internal/eval",
	},
}

// analyzerApplies reports whether an analyzer is in scope for a package.
func analyzerApplies(a *analysis.Analyzer, importPath string) bool {
	suffixes, ok := targets[a.Name]
	if !ok || suffixes == nil {
		return true
	}
	for _, s := range suffixes {
		if importPath == s || hasPathSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// hasPathSuffix reports whether path ends in suffix on a path-segment
// boundary ("xsketch/internal/xsketch" matches "internal/xsketch").
func hasPathSuffix(path, suffix string) bool {
	if len(path) <= len(suffix) {
		return path == suffix
	}
	return path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"xsketch/internal/lint/analysis"
)

// PoolScratch checks the lifecycle of sync.Pool objects: a value obtained
// from (*sync.Pool).Get must be returned with Put on every path out of the
// function that acquired it, and it must never escape — returned, stored
// into a field or other non-local lvalue, placed in a composite literal,
// or sent on a channel. The plan executor's Scratch arena depends on this:
// a leaked scratch silently degrades the zero-alloc cache-hit path back to
// per-request allocation, and an escaped one is mutated concurrently by
// the next request that draws it from the pool.
//
// The analysis is intra-procedural and alias-aware through the def-use
// layer: `t := s` joins t to s's acquisition, and a Put of either name
// releases it. Put coverage is established by a deferred Put (direct or
// inside a deferred closure) or by a Put statement textually preceding
// the return along its ancestor path; a Put only reachable conditionally
// can therefore mask a leaking branch — the analyzer trades that false
// negative for not flagging the common guard-then-put shapes. Passing the
// object to a callee inside the return expression itself
// (`return p.finish(s)`) is treated as an ownership transfer.
var PoolScratch = &analysis.Analyzer{
	Name: "poolscratch",
	Doc:  "sync.Pool objects must be Put on every return path and must not escape",
	Run:  runPoolScratch,
}

func runPoolScratch(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolFunc(pass, fd)
			}
		}
	}
	return nil, nil
}

// poolAcq is one Get site and the alias-closed set of objects holding its
// result. primary is the identifier defined directly from the Get call,
// used to name the object in diagnostics.
type poolAcq struct {
	pos     token.Pos
	primary types.Object
	objs    map[types.Object]bool
}

// collectPooled computes the function's pool acquisitions: objects with a
// (*sync.Pool).Get definition, closed under ident-to-ident aliasing, and
// grouped by Get site.
func collectPooled(pass *analysis.Pass, d *defUse) []*poolAcq {
	byPos := make(map[token.Pos]*poolAcq)
	memberOf := make(map[types.Object]*poolAcq)
	for changed := true; changed; {
		changed = false
		for obj, defs := range d.defs {
			if memberOf[obj] != nil {
				continue
			}
			for _, def := range defs {
				if isPoolGet(pass, def) {
					acq := byPos[def.Pos()]
					if acq == nil {
						acq = &poolAcq{pos: def.Pos(), primary: obj, objs: make(map[types.Object]bool)}
						byPos[def.Pos()] = acq
					}
					acq.objs[obj] = true
					memberOf[obj] = acq
					changed = true
					break
				}
				if id, ok := stripParens(def).(*ast.Ident); ok {
					if src := identObj(pass, id); src != nil {
						if acq := memberOf[src]; acq != nil {
							acq.objs[obj] = true
							memberOf[obj] = acq
							changed = true
							break
						}
					}
				}
			}
		}
	}
	acqs := make([]*poolAcq, 0, len(byPos))
	for _, acq := range byPos {
		acqs = append(acqs, acq)
	}
	return acqs
}

func checkPoolFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	d := collectDefUse(pass, fd.Body)
	acqs := collectPooled(pass, d)
	if len(acqs) == 0 {
		return
	}

	acqOf := func(e ast.Expr) *poolAcq {
		id, ok := stripParens(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := identObj(pass, id)
		if obj == nil {
			return nil
		}
		for _, acq := range acqs {
			if acq.objs[obj] {
				return acq
			}
		}
		return nil
	}

	deferReleased := collectDeferredPuts(pass, fd.Body, acqOf)

	analysis.WalkStack(fd, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if insideFuncLit(stack) {
				return
			}
			checkPoolReturn(pass, n, stack, acqs, deferReleased, acqOf)
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				acq := acqOf(n.Rhs[i])
				if acq == nil {
					continue
				}
				if _, plain := stripParens(l).(*ast.Ident); plain {
					continue
				}
				pass.Reportf(n.Rhs[i].Pos(),
					"pooled %s stored into %s; sync.Pool objects must not be retained beyond the request, or add //lint:allow poolscratch",
					acq.primary.Name(), exprStr(l))
			}
		case *ast.SendStmt:
			if acq := acqOf(n.Value); acq != nil {
				pass.Reportf(n.Value.Pos(),
					"pooled %s sent on a channel escapes its pool lifecycle; copy the data instead, or add //lint:allow poolscratch",
					acq.primary.Name())
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if acq := acqOf(v); acq != nil {
					pass.Reportf(v.Pos(),
						"pooled %s captured in a composite literal escapes its pool lifecycle, or add //lint:allow poolscratch",
						acq.primary.Name())
				}
			}
		}
	})

	checkFallThroughEnd(pass, fd, acqs, deferReleased, acqOf)
}

// collectDeferredPuts returns the Get sites released by a deferred Put:
// `defer pool.Put(s)` directly, or a Put of a pooled object anywhere
// inside a deferred closure.
func collectDeferredPuts(pass *analysis.Pass, body *ast.BlockStmt, acqOf func(ast.Expr) *poolAcq) map[token.Pos]bool {
	released := make(map[token.Pos]bool)
	markPutArgs := func(call *ast.CallExpr) {
		if !isPoolPut(pass, call) {
			return
		}
		for _, arg := range call.Args {
			if acq := acqOf(arg); acq != nil {
				released[acq.pos] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		markPutArgs(ds.Call)
		if fl, ok := stripParens(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					markPutArgs(call)
				}
				return true
			})
		}
		return true
	})
	return released
}

// insideFuncLit reports whether the innermost enclosing function of the
// node whose ancestors are stack is a function literal — such a return
// leaves the closure, not the declared function under analysis.
func insideFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

// checkPoolReturn verifies one return path: every acquisition live at the
// return must be deferred-released, Put along the path, or transferred
// inside the return expression — and returning the object itself is an
// escape.
func checkPoolReturn(pass *analysis.Pass, ret *ast.ReturnStmt, stack []ast.Node,
	acqs []*poolAcq, deferReleased map[token.Pos]bool, acqOf func(ast.Expr) *poolAcq) {

	// Acquisitions are alias-closed, so a returned pooled value is always
	// named by a pooled identifier directly.
	escaped := make(map[token.Pos]bool)
	for _, r := range ret.Results {
		if acq := acqOf(r); acq != nil {
			escaped[acq.pos] = true
			pass.Reportf(r.Pos(),
				"pooled %s returned to the caller escapes its sync.Pool; copy the result out and Put the scratch, or add //lint:allow poolscratch",
				acq.primary.Name())
		}
	}

	for _, acq := range acqs {
		if ret.Pos() <= acq.pos || deferReleased[acq.pos] || escaped[acq.pos] {
			continue
		}
		if transferredInReturn(pass, ret, acq) {
			continue
		}
		if putBeforeOnPath(pass, ret, stack, acq) {
			continue
		}
		pass.Reportf(ret.Pos(),
			"return without Put of pooled %s; release it on every path (defer the Put after Get), or add //lint:allow poolscratch",
			acq.primary.Name())
	}
}

// transferredInReturn reports whether the return expression passes one of
// the acquisition's objects as an argument to some call — ownership handed
// to the callee.
func transferredInReturn(pass *analysis.Pass, ret *ast.ReturnStmt, acq *poolAcq) bool {
	found := false
	for _, r := range ret.Results {
		ast.Inspect(r, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := stripParens(arg).(*ast.Ident); ok && acq.objs[identObj(pass, id)] {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// putBeforeOnPath scans the return's ancestor chain for a Put of the
// acquisition in a statement preceding the path at each block level.
func putBeforeOnPath(pass *analysis.Pass, ret ast.Node, stack []ast.Node, acq *poolAcq) bool {
	inner := ret
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch s := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		}
		if list != nil {
			idx := -1
			for j, st := range list {
				if ast.Node(st) == inner {
					idx = j
					break
				}
			}
			for j := 0; j < idx; j++ {
				if stmtPuts(pass, list[j], acq) {
					return true
				}
			}
		}
		inner = stack[i]
	}
	return false
}

// stmtPuts reports whether st contains a (*sync.Pool).Put whose argument
// resolves to one of the acquisition's objects.
func stmtPuts(pass *analysis.Pass, st ast.Stmt, acq *poolAcq) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolPut(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := stripParens(arg).(*ast.Ident); ok && acq.objs[identObj(pass, id)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkFallThroughEnd covers the path that falls off the end of a function
// without a return statement: if the body's end is reachable and an
// acquisition has no Put anywhere (and no deferred release), the Get
// itself is reported.
func checkFallThroughEnd(pass *analysis.Pass, fd *ast.FuncDecl,
	acqs []*poolAcq, deferReleased map[token.Pos]bool, acqOf func(ast.Expr) *poolAcq) {
	if fd.Type.Results != nil && len(fd.Type.Results.List) > 0 {
		// Every terminating path of a value-returning function ends in a
		// return (or panics); those paths are checked at the returns.
		return
	}
	if blockDiverges(fd.Body) {
		return
	}
	for _, acq := range acqs {
		if deferReleased[acq.pos] {
			continue
		}
		if anyPutInBody(pass, fd.Body, acq) {
			continue
		}
		pass.Reportf(acq.pos,
			"pooled %s from sync.Pool.Get is never Put back; release it before the function ends, or add //lint:allow poolscratch",
			acq.primary.Name())
	}
}

func anyPutInBody(pass *analysis.Pass, body *ast.BlockStmt, acq *poolAcq) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if st, ok := n.(ast.Stmt); ok && !found {
			if stmtPuts(pass, st, acq) {
				found = true
			}
		}
		return !found
	})
	return found
}

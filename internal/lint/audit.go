package lint

import (
	"fmt"

	"xsketch/internal/lint/analysis"
)

// AuditSuppressions loads the packages matching patterns under dir and
// reports every //lint:allow directive that has gone stale: the analyzers
// run with suppression filtering disabled, and a directive whose analyzer
// reports nothing on the directive's line or the line below it is no longer
// suppressing anything. Directives naming an unknown analyzer, or one not
// in scope for the package, are stale by construction. Stale directives are
// returned as findings under the pseudo-analyzer "audit" so runners print
// and exit on them uniformly.
func AuditSuppressions(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, auditPackage(pkg)...)
	}
	sortFindings(findings)
	return findings, nil
}

// auditPackage audits one loaded package's directives against its raw
// (unsuppressed) findings.
func auditPackage(pkg *analysis.Package) []Finding {
	sup := buildSuppressions(pkg.Fset, pkg.Files)
	if len(sup.directives) == 0 {
		return nil
	}
	byName := make(map[string]*analysis.Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	raw := analyzerFindings(pkg, nil)
	hit := make(map[string]bool, len(raw))
	errored := make(map[string]bool)
	var out []Finding
	for _, f := range raw {
		if f.Internal {
			// The analyzer died before reporting, so its directives cannot
			// be judged; surface the failure instead of a bogus "stale".
			errored[f.Analyzer] = true
			out = append(out, f)
			continue
		}
		hit[suppressKey(f.File, f.Line, f.Analyzer)] = true
	}
	for _, d := range sup.directives {
		p := pkg.Fset.Position(d.pos)
		stale := ""
		switch {
		case byName[d.analyzer] == nil:
			stale = fmt.Sprintf("no analyzer named %q exists", d.analyzer)
		case errored[d.analyzer]:
			continue
		case !analyzerApplies(byName[d.analyzer], pkg.ImportPath):
			stale = fmt.Sprintf("%s is not in scope for %s", d.analyzer, pkg.ImportPath)
		case !hit[suppressKey(d.file, d.line, d.analyzer)] && !hit[suppressKey(d.file, d.line+1, d.analyzer)]:
			stale = fmt.Sprintf("%s reports nothing on this line or the line below", d.analyzer)
		default:
			continue
		}
		out = append(out, Finding{
			Position: p.String(),
			File:     p.Filename, Line: p.Line, Col: p.Column,
			Analyzer: "audit",
			Message:  fmt.Sprintf("stale //lint:allow %s (%s): %s; remove the directive", d.analyzer, d.reason, stale),
		})
	}
	return out
}

package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// suppressionIndex records which (file, line, analyzer) triples carry a
// //lint:allow directive. A directive suppresses findings on its own line
// and on the line directly below it (the "comment above the statement"
// style), matching staticcheck's //lint:ignore placement rules.
type suppressionIndex struct {
	// byLine maps "file:line:analyzer" to the directive's reason.
	byLine map[string]string
	// directives lists every well-formed directive in scan order; the
	// suppression audit walks it to find directives that no longer match
	// any finding.
	directives []directive
	// malformed are directives missing an analyzer name or a reason; the
	// runner reports them so a typo cannot silently disable a check.
	malformed []malformedDirective
}

// directive is one well-formed //lint:allow occurrence.
type directive struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
}

type malformedDirective struct {
	pos  token.Pos
	text string
}

// buildSuppressions scans a package's comments for //lint:allow directives.
func buildSuppressions(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[string]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, malformedDirective{pos: c.Pos(), text: c.Text})
					continue
				}
				analyzer, reason := fields[0], strings.Join(fields[1:], " ")
				pos := fset.Position(c.Pos())
				idx.byLine[suppressKey(pos.Filename, pos.Line, analyzer)] = reason
				idx.directives = append(idx.directives, directive{
					pos:      c.Pos(),
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: analyzer,
					reason:   reason,
				})
			}
		}
	}
	return idx
}

func suppressKey(file string, line int, analyzer string) string {
	return file + ":" + strconv.Itoa(line) + ":" + analyzer
}

// allowed reports whether a finding from analyzer at position pos is
// suppressed by a directive on the same line or the line above.
func (idx *suppressionIndex) allowed(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	p := fset.Position(pos)
	if _, ok := idx.byLine[suppressKey(p.Filename, p.Line, analyzer)]; ok {
		return true
	}
	_, ok := idx.byLine[suppressKey(p.Filename, p.Line-1, analyzer)]
	return ok
}

package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"testing"

	"xsketch/internal/lint/analysis"
)

// typecheckSrc parses and type-checks one in-memory file as a package with
// the given import path, ready for white-box calls into the analyzers and
// the dataflow layer. Standard-library imports resolve through export data,
// like the fixture loader.
func typecheckSrc(t *testing.T, importPath, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	imp := importer.ForCompiler(fset, "gc", analysis.StdlibExportLookup())
	tpkg, info, err := analysis.TypeCheck(fset, importPath, []*ast.File{f}, imp)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &analysis.Package{
		ImportPath: importPath,
		Dir:        ".",
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		Info:       info,
	}
}

// passFor wraps a loaded package as a Pass for helpers that only need type
// information (no Report hook).
func passFor(pkg *analysis.Package) *analysis.Pass {
	return &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
}

// sinkArgs returns the first argument of every call to a function named
// sink, in source order — the conventional way these tests mark the
// expressions under inspection.
func sinkArgs(pkg *analysis.Package) []ast.Expr {
	var out []ast.Expr
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" && len(call.Args) > 0 {
				out = append(out, call.Args[0])
			}
			return true
		})
	}
	return out
}

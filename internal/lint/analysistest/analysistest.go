package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"xsketch/internal/lint/analysis"
)

// Run loads each named fixture package from dir/testdata/src and applies
// the analyzer, reporting any mismatch between actual diagnostics and
// `// want` expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(dir, "testdata", "src", pkg), a)
	}
}

// TestData returns the testdata directory of the caller's package, i.e.
// the current working directory of the test binary.
func TestData() string {
	dir, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return dir
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

func runOne(t *testing.T, pkgdir string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgdir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", pkgdir)
	}

	imp := &fixtureImporter{
		fset:    fset,
		srcRoot: filepath.Dir(pkgdir),
		stdlib:  importer.ForCompiler(fset, "gc", analysis.StdlibExportLookup()),
		loaded:  make(map[string]*types.Package),
	}
	tpkg, info, err := analysis.TypeCheck(fset, filepath.Base(pkgdir), files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	expects := collectWants(t, fset, pkgdir, files)
	sup := suppressions(fset, files)

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
	}
	var unexpected []string
	pass.Report = func(d analysis.Diagnostic) {
		p := fset.Position(d.Pos)
		if sup[suppressKey(p.Filename, p.Line, a.Name)] || sup[suppressKey(p.Filename, p.Line-1, a.Name)] {
			return
		}
		for _, ex := range expects {
			if !ex.met && ex.file == p.Filename && ex.line == p.Line && ex.re.MatchString(d.Message) {
				ex.met = true
				return
			}
		}
		unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", p, d.Message))
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}
	sort.Strings(unexpected)
	for _, msg := range unexpected {
		t.Error(msg)
	}
	for _, ex := range expects {
		if !ex.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", ex.file, ex.line, ex.raw)
		}
	}
}

// collectWants extracts `// want "re"` expectations from fixture comments.
func collectWants(t *testing.T, fset *token.FileSet, pkgdir string, files []*ast.File) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					p := fset.Position(c.Pos())
					expects = append(expects, &expectation{file: p.Filename, line: p.Line, re: re, raw: m[1]})
				}
			}
		}
	}
	return expects
}

// suppressions indexes //lint:allow directives the same way the runner does.
func suppressions(fset *token.FileSet, files []*ast.File) map[string]bool {
	idx := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue
				}
				p := fset.Position(c.Pos())
				idx[suppressKey(p.Filename, p.Line, fields[0])] = true
			}
		}
	}
	return idx
}

func suppressKey(file string, line int, analyzer string) string {
	return fmt.Sprintf("%s:%d:%s", file, line, analyzer)
}

// fixtureImporter resolves fixture-to-fixture imports from testdata/src and
// everything else from standard-library export data.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string
	stdlib  types.Importer
	loaded  map[string]*types.Package
}

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := imp.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(imp.srcRoot, path)
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(imp.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, _, err := analysis.TypeCheck(imp.fset, path, files, imp)
		if err != nil {
			return nil, err
		}
		imp.loaded[path] = pkg
		return pkg, nil
	}
	return imp.stdlib.Import(path)
}

// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations embedded in the fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest (see the package
// comment on internal/lint/analysis for why this is reimplemented).
//
// A fixture lives in testdata/src/<pkg>/ next to the test. Expected
// diagnostics are written as trailing comments on the offending line:
//
//	x := a / b // want "possibly-zero denominator"
//
// The quoted string is a regular expression matched against the diagnostic
// message; several `// want` comments on one line expect several
// diagnostics. Lines without a want comment expect none, so fixtures cover
// flagged and allowed cases side by side. //lint:allow suppressions are
// honored the same way the runner honors them, letting fixtures assert that
// a suppressed finding really is silent.
package analysistest

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"xsketch/internal/lint/analysis"
)

// MapOrder flags `range` loops over maps whose bodies do something that can
// observe Go's randomized map iteration order: accumulate floating-point
// values, append to a slice that is never sorted afterwards, write output, or
// return data derived from the loop variables. This is the XBUILD
// determinism bug class — candidate scoring and serialization must produce
// identical results for identical seeds, so anything order-sensitive inside
// a map range either iterates over sorted keys, sorts its result before use,
// or carries an explicit //lint:allow maporder suppression.
//
// Order-insensitive bodies are accepted: integer accumulation, min/max
// folds, writes keyed by the range key or value, delete, and work on
// loop-local state.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose order can reach estimates, scores, serialized output or slice appends",
	Run:  runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			checkMapRange(pass, rs, stack)
		})
	}
	return nil, nil
}

// checkMapRange classifies every statement in a map-range body.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	ctx := &rangeCtx{pass: pass, rs: rs, stack: stack}
	ctx.keyObj = ctx.loopVarObj(rs.Key)
	ctx.valObj = ctx.loopVarObj(rs.Value)
	for _, st := range rs.Body.List {
		ctx.classify(st)
	}
}

type rangeCtx struct {
	pass   *analysis.Pass
	rs     *ast.RangeStmt
	stack  []ast.Node
	keyObj types.Object
	valObj types.Object
}

func (c *rangeCtx) loopVarObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return identObj(c.pass, id)
}

// local reports whether the lvalue's root identifier is declared inside the
// range statement (including the key/value variables themselves).
func (c *rangeCtx) local(e ast.Expr) bool {
	return declaredWithin(c.pass, e, c.rs.Pos(), c.rs.End())
}

// usesLoopVar reports whether e references the range key or value variable.
func (c *rangeCtx) usesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := identObj(c.pass, id)
		if obj != nil && (obj == c.keyObj || obj == c.valObj) {
			found = true
		}
		return !found
	})
	return found
}

func (c *rangeCtx) report(n ast.Node, format string, args ...interface{}) {
	c.pass.Reportf(n.Pos(), format, args...)
}

func (c *rangeCtx) classify(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.IncDecStmt:
		// IncDec is a fixed ±1 per entry — exact and commutative even on
		// floats, so order-insensitive.
	case *ast.AssignStmt:
		c.classifyAssign(s)
	case *ast.BlockStmt:
		for _, inner := range s.List {
			c.classify(inner)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.classify(s.Init)
		}
		if c.isMinMaxFold(s) {
			return
		}
		for _, inner := range s.Body.List {
			c.classify(inner)
		}
		if s.Else != nil {
			c.classify(s.Else)
		}
	case *ast.ForStmt:
		for _, inner := range s.Body.List {
			c.classify(inner)
		}
	case *ast.RangeStmt:
		// The nested loop is checked on its own if it ranges a map; its
		// body still writes under the outer map's iteration order.
		for _, inner := range s.Body.List {
			c.classify(inner)
		}
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			for _, inner := range cc.(*ast.CaseClause).Body {
				c.classify(inner)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			for _, inner := range cc.(*ast.CaseClause).Body {
				c.classify(inner)
			}
		}
	case *ast.ExprStmt:
		c.classifyCall(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.usesLoopVar(r) {
				c.report(s, "return of map-key-derived value inside map range depends on iteration order; iterate sorted keys or add //lint:allow maporder")
				return
			}
		}
	case *ast.SendStmt:
		c.report(s, "channel send inside map range publishes values in map iteration order; iterate sorted keys or add //lint:allow maporder")
	case *ast.GoStmt:
		c.report(s, "goroutine launched inside map range starts in map iteration order; iterate sorted keys or add //lint:allow maporder")
	case *ast.DeferStmt:
		c.report(s, "defer inside map range runs in map iteration order; iterate sorted keys or add //lint:allow maporder")
	default:
		c.report(st, "statement inside map range may depend on iteration order; iterate sorted keys or add //lint:allow maporder")
	}
}

// classifyAssign vets one assignment inside the loop body.
func (c *rangeCtx) classifyAssign(s *ast.AssignStmt) {
	if s.Tok == token.DEFINE {
		return
	}
	if s.Tok != token.ASSIGN {
		// Compound assignment: integer accumulation is exact and
		// commutative; float (and string) accumulation is not.
		for _, l := range s.Lhs {
			if c.local(l) || isInteger(c.pass.TypeOf(l)) {
				continue
			}
			c.report(s, "order-sensitive accumulation into %s inside map range; iterate sorted keys or add //lint:allow maporder", exprStr(l))
		}
		return
	}
	for i, l := range s.Lhs {
		if isBlank(l) || c.local(l) {
			continue
		}
		if idx, ok := stripParens(l).(*ast.IndexExpr); ok {
			// Writes keyed by the range key (or data derived from the
			// entry) land each entry in its own slot — the final state is
			// order-independent. A fixed index is last-write-wins.
			if c.usesLoopVar(idx.Index) || c.local(idx.Index) {
				continue
			}
			c.report(s, "write to fixed element %s inside map range is last-write-wins in iteration order; iterate sorted keys or add //lint:allow maporder", exprStr(l))
			continue
		}
		if i < len(s.Rhs) && c.isSortedAppend(s, l, s.Rhs[i]) {
			continue
		}
		c.report(s, "assignment to %s inside map range depends on iteration order; iterate sorted keys or add //lint:allow maporder", exprStr(l))
	}
}

// isSortedAppend accepts the canonical collect-then-sort shape: the loop
// appends to an outer slice that a sort call normalizes after the loop.
func (c *rangeCtx) isSortedAppend(s *ast.AssignStmt, lhs, rhs ast.Expr) bool {
	call, ok := stripParens(rhs).(*ast.CallExpr)
	if !ok || !isBuiltinCall(c.pass, call, "append") {
		return false
	}
	fn := enclosingFunc(c.stack)
	if fn == nil {
		return false
	}
	return sortCallAfter(c.pass, fn, c.rs.End(), lhs)
}

// isMinMaxFold recognizes `if x > best { best = x }` (any comparison
// direction): the fold's fixpoint is order-independent as long as the
// assigned value is one of the compared operands.
func (c *rangeCtx) isMinMaxFold(s *ast.IfStmt) bool {
	cmp, ok := stripParens(s.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cmp.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return false
	}
	if s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	asn, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || asn.Tok != token.ASSIGN || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 {
		return false
	}
	lhs, rhs := exprStr(asn.Lhs[0]), exprStr(asn.Rhs[0])
	x, y := exprStr(stripParens(cmp.X)), exprStr(stripParens(cmp.Y))
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

func (c *rangeCtx) classifyCall(s *ast.ExprStmt) {
	call, ok := stripParens(s.X).(*ast.CallExpr)
	if !ok {
		c.report(s, "statement inside map range may depend on iteration order; iterate sorted keys or add //lint:allow maporder")
		return
	}
	for _, name := range []string{"delete", "clear", "panic", "copy"} {
		if isBuiltinCall(c.pass, call, name) {
			return
		}
	}
	c.report(s, "call %s inside map range runs in map iteration order; iterate sorted keys or add //lint:allow maporder", exprStr(call.Fun))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// enclosingFunc returns the innermost function body on the ancestor stack.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// sortCallAfter reports whether a recognized sort call normalizes slice
// after position `after` in body: sort.Strings/Ints/Float64s/Slice/
// SliceStable/Sort or slices.Sort/SortFunc/SortStableFunc.
func sortCallAfter(pass *analysis.Pass, body *ast.BlockStmt, after token.Pos, slice ast.Expr) bool {
	sliceRoot := rootIdent(slice)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after || len(call.Args) == 0 {
			return true
		}
		fn := typeFuncOf(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch fn.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		arg := stripParens(call.Args[0])
		if exprStr(arg) == exprStr(slice) {
			found = true
		} else if r := rootIdent(arg); r != nil && sliceRoot != nil && r.Name == sliceRoot.Name {
			found = true
		}
		return true
	})
	return found
}

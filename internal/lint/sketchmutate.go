package lint

import (
	"go/ast"
	"go/types"

	"xsketch/internal/lint/analysis"
)

// SketchMutate flags writes to Sketch and NodeSummary state — and to
// histogram internals from outside the histogram package — that happen
// outside the approved mutator set. PR 2 introduced an atomic-pointer
// estimator cache that RebuildNode/RebuildAll invalidate; a field write that
// bypasses that funnel leaves the cache serving estimates for a synopsis
// that no longer exists. The approved mutators are the constructors and the
// rebuild funnel in package xsketch, plus the two refinement-application
// helpers in package build (which finish by calling RebuildNode).
var SketchMutate = &analysis.Analyzer{
	Name: "sketchmutate",
	Doc:  "flags Sketch/NodeSummary/histogram state writes outside the approved mutator set",
	Run:  runSketchMutate,
}

// approvedMutators lists, per package name, the functions allowed to write
// sketch state directly. Everything else must go through these.
var approvedMutators = map[string]map[string]bool{
	"xsketch": {
		"New":               true,
		"FromSynopsis":      true,
		"Clone":             true,
		"Load":              true,
		"RebuildAll":        true,
		"RebuildNode":       true,
		"rebuildHistograms": true,
		"AddValueDim":       true,
		"SetBuckets":        true,
		"AddScopeEdge":      true,
	},
	"build": {
		"apply":          true,
		"inheritSummary": true,
	},
}

func runSketchMutate(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, l := range n.Lhs {
					checkSketchWrite(pass, l, n, stack)
				}
			case *ast.IncDecStmt:
				checkSketchWrite(pass, n.X, n, stack)
			case *ast.CallExpr:
				if isBuiltinCall(pass, n, "delete") && len(n.Args) == 2 {
					checkSketchWrite(pass, n.Args[0], n, stack)
				}
			}
		})
	}
	return nil, nil
}

func checkSketchWrite(pass *analysis.Pass, lvalue ast.Expr, at ast.Node, stack []ast.Node) {
	field, owner := protectedField(pass, lvalue)
	if field == "" {
		return
	}
	fn := enclosingFuncName(stack)
	if approvedMutators[pass.Pkg.Name()][fn] {
		return
	}
	where := fn
	if where == "" {
		where = "package scope"
	}
	pass.Reportf(lvalue.Pos(),
		"write to %s.%s outside approved mutators (in %s): mutate through RebuildNode/refinement ops so the estimator cache is invalidated, or add //lint:allow sketchmutate",
		owner, field, where)
}

// protectedField walks an lvalue's selector chain and returns the written
// field name and owning type when the write targets protected state:
// a field of xsketch.Sketch or xsketch.NodeSummary anywhere, or a field of
// any histogram-package type from outside package histogram.
func protectedField(pass *analysis.Pass, e ast.Expr) (field, owner string) {
	for {
		switch x := stripParens(e).(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if named := namedTypeOf(pass.TypeOf(x.X)); named != nil {
				if name, prot := protectedNamed(pass, named); prot {
					return x.Sel.Name, name
				}
			}
			e = x.X
		default:
			return "", ""
		}
	}
}

// namedTypeOf unwraps pointers down to a named type, or nil.
func namedTypeOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// protectedNamed reports whether the named type's state is protected from
// the current package. Matching is by package *name* rather than full import
// path so analysistest fixtures declaring `package xsketch` exercise the
// same rule as the real packages.
func protectedNamed(pass *analysis.Pass, named *types.Named) (string, bool) {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Name() {
	case "xsketch":
		if obj.Name() == "Sketch" || obj.Name() == "NodeSummary" {
			return obj.Name(), true
		}
	case "histogram":
		if pass.Pkg.Name() != "histogram" && obj.Exported() {
			return obj.Name(), true
		}
	}
	return "", false
}

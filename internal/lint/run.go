package lint

import (
	"fmt"
	"io"
	"sort"

	"xsketch/internal/lint/analysis"
)

// Finding is one unsuppressed diagnostic, ready to print.
type Finding struct {
	// Position is the finding's file:line:col.
	Position string `json:"position"`
	// File, Line, Col order findings deterministically.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// Message describes the problem.
	Message string `json:"message"`
	// Internal marks a failure of the tool itself (an analyzer panic or
	// load error surfaced as a finding) rather than a diagnosis of the
	// analyzed code. Runners exit 2 on these, distinct from the ordinary
	// findings-exist exit 1, so automation can tell "code is dirty" from
	// "the linter broke".
	Internal bool `json:"internal,omitempty"`
}

// Run loads the packages matching patterns under dir, applies every
// analyzer in scope for each package, filters //lint:allow suppressions,
// and returns the surviving findings sorted by position. Malformed
// suppression directives are themselves findings, so a typo cannot silently
// disable a check.
func Run(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, RunOnPackage(pkg)...)
	}
	sortFindings(findings)
	return findings, nil
}

// RunOnPackage applies every in-scope analyzer to one loaded package and
// returns its unsuppressed findings, sorted by position. Analyzer errors
// surface as findings at the package level rather than aborting the run.
func RunOnPackage(pkg *analysis.Package) []Finding {
	var findings []Finding
	sup := buildSuppressions(pkg.Fset, pkg.Files)
	for _, m := range sup.malformed {
		p := pkg.Fset.Position(m.pos)
		findings = append(findings, Finding{
			Position: p.String(),
			File:     p.Filename, Line: p.Line, Col: p.Column,
			Analyzer: "lint",
			Message:  fmt.Sprintf("malformed suppression %q: want //lint:allow <analyzer> <reason>", m.text),
		})
	}
	findings = append(findings, analyzerFindings(pkg, sup)...)
	sortFindings(findings)
	return findings
}

// analyzerFindings applies every in-scope analyzer to pkg. With sup non-nil
// suppressed findings are dropped; with sup nil every raw finding survives —
// the suppression audit uses that mode to learn what each directive would
// have suppressed.
func analyzerFindings(pkg *analysis.Package, sup *suppressionIndex) []Finding {
	var findings []Finding
	for _, a := range Analyzers {
		if !analyzerApplies(a, pkg.ImportPath) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			if sup != nil && sup.allowed(pkg.Fset, d.Pos, name) {
				return
			}
			p := pkg.Fset.Position(d.Pos)
			findings = append(findings, Finding{
				Position: p.String(),
				File:     p.Filename, Line: p.Line, Col: p.Column,
				Analyzer: name,
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			findings = append(findings, Finding{
				Position: pkg.ImportPath,
				File:     pkg.ImportPath,
				Analyzer: name,
				Message:  fmt.Sprintf("analyzer error: %v", err),
				Internal: true,
			})
		}
	}
	return findings
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// Print writes findings one per line in the conventional
// file:line:col: message [analyzer] shape.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s [%s]\n", f.Position, f.Message, f.Analyzer)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"xsketch/internal/lint/analysis"
)

// HotAlloc enforces the zero-allocation contract of functions annotated
// with //lint:hotpath in their doc comment — the compiled-plan cache-hit
// path and the histogram scratch-buffer kernels, whose AllocsPerRun
// regression tests assert zero allocations per call. Inside an annotated
// function the analyzer flags the allocating constructs: make/new, map and
// slice literals, heap-escaping &T{} literals, closure literals (which
// also covers capturing loop variables), fmt calls, appends that do not
// grow a caller-provided or scratch buffer, and interface conversions that
// box a non-pointer-shaped value. Pointer-shaped values (pointers, maps,
// channels, funcs) are stored directly in an interface word and are
// allowed — `pool.Put(scratch)` boxes a *Scratch without allocating.
//
// The append rule resolves the base operand through the def-use layer:
// the base is acceptable when every origin is a parameter, a receiver, or
// a field/element of one (the persistent scratch idiom `out := buf[:0]`),
// and a violation otherwise — a locally made slice is already flagged at
// its make site, but an un-preallocated `var out []T; out = append(...)`
// only surfaces here.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbids allocating constructs in functions annotated //lint:hotpath",
	Run:  runHotAlloc,
}

// hotPathDirective is the annotation marking a function as subject to the
// zero-allocation contract.
const hotPathDirective = "//lint:hotpath"

// isHotPath reports whether the function's doc comment carries the
// //lint:hotpath directive (optionally followed by explanatory text).
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotPathDirective || strings.HasPrefix(c.Text, hotPathDirective+" ") {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	d := collectDefUse(pass, fd.Body)
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fd, d, n)
		case *ast.CompositeLit:
			checkHotComposite(pass, n, stack)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure literal allocates in a //lint:hotpath function; hoist it to a method or package function, or add //lint:allow hotalloc")
		}
	})
}

// checkHotCall flags allocating calls: make/new, fmt.*, un-preallocated
// append, interface-boxing argument conversions, and explicit conversions
// to an interface type.
func checkHotCall(pass *analysis.Pass, fd *ast.FuncDecl, d *defUse, call *ast.CallExpr) {
	if isBuiltinCall(pass, call, "make") || isBuiltinCall(pass, call, "new") {
		pass.Reportf(call.Pos(),
			"%s allocates in a //lint:hotpath function; preallocate in setup code, or add //lint:allow hotalloc",
			exprStr(call.Fun))
		return
	}
	if isBuiltinCall(pass, call, "append") {
		checkHotAppend(pass, fd, d, call)
		return
	}
	if fn := typeFuncOf(pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s allocates in a //lint:hotpath function; move formatting off the hot path, or add //lint:allow hotalloc",
			fn.Name())
		return
	}
	// Explicit conversion to an interface type: any(x), error(x), ...
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type.Underlying()) && len(call.Args) == 1 {
			reportBoxing(pass, call.Args[0])
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		reportBoxing(pass, arg)
	}
}

// reportBoxing flags arg when passing it to an interface-typed slot boxes
// a non-pointer-shaped value (which allocates). Values already of
// interface type, nils, and pointer-shaped values are free.
func reportBoxing(pass *analysis.Pass, arg ast.Expr) {
	at := pass.TypeOf(arg)
	if at == nil || types.IsInterface(at.Underlying()) {
		return
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if isPointerShaped(at) {
		return
	}
	pass.Reportf(arg.Pos(),
		"interface conversion of %s (%s) allocates in a //lint:hotpath function; pass a pointer-shaped value, or add //lint:allow hotalloc",
		exprStr(arg), at.String())
}

// isPointerShaped reports whether values of t occupy exactly one pointer
// word, so an interface conversion stores them directly without boxing.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// checkHotAppend flags appends whose base buffer is not caller-provided or
// persistent scratch: every origin of the base must be a parameter or
// receiver identifier, or a selector/index expression (a field of the
// receiver or an element of a scratch arena).
func checkHotAppend(pass *analysis.Pass, fd *ast.FuncDecl, d *defUse, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	origins := d.origins(base)
	ok := len(origins) > 0 // an all-cycle chain (var out []T; out = append(out, ...)) has no source buffer
	for _, o := range origins {
		if !hotAppendBaseOK(pass, fd, o) {
			ok = false
			break
		}
	}
	if ok {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s may allocate a fresh buffer in a //lint:hotpath function; grow a caller-provided or scratch buffer instead, or add //lint:allow hotalloc",
		exprStr(base))
}

func hotAppendBaseOK(pass *analysis.Pass, fd *ast.FuncDecl, o ast.Expr) bool {
	switch x := o.(type) {
	case *ast.Ident:
		return isParamOrReceiver(pass, fd, identObj(pass, x))
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// isParamOrReceiver reports whether obj is declared in fd's signature
// (parameter, named result, or receiver).
func isParamOrReceiver(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() >= fd.Type.Pos() && obj.Pos() <= fd.Type.End()
}

// checkHotComposite flags composite literals that allocate: map and slice
// literals always, and any literal whose address is taken (&T{} escapes to
// the heap). A by-value struct literal stays on the stack and is allowed.
func checkHotComposite(pass *analysis.Pass, lit *ast.CompositeLit, stack []ast.Node) {
	t := pass.TypeOf(lit)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Map:
			pass.Reportf(lit.Pos(),
				"map literal allocates in a //lint:hotpath function; hoist it to setup code, or add //lint:allow hotalloc")
			return
		case *types.Slice:
			pass.Reportf(lit.Pos(),
				"slice literal allocates in a //lint:hotpath function; hoist it to setup code, or add //lint:allow hotalloc")
			return
		}
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			pass.Reportf(u.Pos(),
				"&%s heap-allocates in a //lint:hotpath function; reuse a scratch value, or add //lint:allow hotalloc",
				exprStr(lit))
		}
	}
}

// Package lint is the xsketchlint analyzer suite: repo-specific static
// analyses that mechanically enforce the estimator's NaN-safety (divguard),
// per-seed determinism (maporder, nondeterminism) and cache-invalidation
// (sketchmutate) invariants. See DESIGN.md, "Invariants and static
// analysis".
//
// Intentional exceptions are suppressed in source with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it; the reason is
// mandatory so every exception is visible and justified in review.
package lint

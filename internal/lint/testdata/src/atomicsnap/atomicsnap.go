// Package atomicsnap exercises the atomicsnap analyzer: writes through
// atomic.Pointer.Load snapshots are flagged, while value copies, local
// state and snapshot rebinding are not.
package atomicsnap

import "sync/atomic"

type inner struct{ n int }

type view struct{ total float64 }

type state struct {
	count int
	names []string
	m     map[string]int
	sub   *inner
	view  view
}

type server struct {
	state atomic.Pointer[state]
}

func (s *server) directWrites() {
	st := s.state.Load()
	st.count = 1      // want "write to st.count mutates state loaded from an atomic.Pointer snapshot"
	st.names[0] = "x" // want "mutates state loaded from an atomic.Pointer snapshot"
	st.sub.n = 2      // want "mutates state loaded from an atomic.Pointer snapshot"
	st.count++        // want "mutates state loaded from an atomic.Pointer snapshot"
	delete(st.m, "k") // want "mutates state loaded from an atomic.Pointer snapshot"
}

func (s *server) aliasedWrites() {
	st := s.state.Load()
	alias := st
	alias.count = 3 // want "mutates state loaded from an atomic.Pointer snapshot"
	names := st.names
	names[0] = "y" // want "mutates state loaded from an atomic.Pointer snapshot"
	p := &st.count
	*p = 4 // want "mutates state loaded from an atomic.Pointer snapshot"
	sub := st.sub
	sub.n = 5 // want "mutates state loaded from an atomic.Pointer snapshot"
}

func (s *server) allowedUses() {
	st := s.state.Load()
	ns := *st    // value copy severs the reference chain
	ns.count = 1 // writes to the copy stay local
	v := st.view
	v.total = 2
	local := &state{count: st.count}
	local.count = 9 // fresh local state, fine to mutate
	st = s.state.Load()
	cp := make([]string, len(st.names))
	copy(cp, st.names)
	cp[0] = "z"
	s.state.Store(local) // publishing via Store is the approved path
	_ = ns
	_ = v
}

func (s *server) suppressed() {
	st := s.state.Load()
	//lint:allow atomicsnap single-writer startup path, no concurrent readers yet
	st.count = 7
}

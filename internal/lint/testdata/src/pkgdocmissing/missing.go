package pkgdocmissing // want "package pkgdocmissing has no package comment"

// F is documented, so only the package comment is missing.
func F() {}

// Package ctxflow exercises the ctxflow analyzer: exported ...Context
// functions must propagate their ctx into context-taking calls.
package ctxflow

import (
	"context"
	"time"
)

type store struct{}

func (s *store) fetch(ctx context.Context, k string) int { _ = ctx; return len(k) }

// LookupContext propagates ctx directly: clean.
func (s *store) LookupContext(ctx context.Context, k string) int {
	return s.fetch(ctx, k)
}

// DerivedContext derives a child context from ctx: clean.
func (s *store) DerivedContext(ctx context.Context, k string) int {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return s.fetch(cctx, k)
}

// DropsContext replaces the caller's ctx with a fresh one.
func (s *store) DropsContext(ctx context.Context, k string) int {
	_ = ctx.Err()
	return s.fetch(context.Background(), k) // want "context.Background in exported DropsContext drops the caller's ctx"
}

// MixedContext propagates ctx once but routes a TODO into the second call.
func (s *store) MixedContext(ctx context.Context, k string) int {
	n := s.fetch(ctx, k)
	todo := context.TODO()      // want "context.TODO in exported MixedContext drops the caller's ctx"
	return n + s.fetch(todo, k) // want "MixedContext passes todo where the caller's ctx should flow"
}

// IgnoredContext takes a ctx and never consults it.
func (s *store) IgnoredContext(ctx context.Context, k string) int { // want "exported IgnoredContext never uses its ctx"
	return len(k)
}

// helperContext is unexported: out of the contract's scope.
func (s *store) helperContext(ctx context.Context, k string) int {
	return s.fetch(context.Background(), k)
}

// NewContext has no ctx parameter: it produces contexts, not consumes them.
func NewContext() context.Context {
	return context.Background()
}

// SuppressedContext documents an accepted drop.
func (s *store) SuppressedContext(ctx context.Context, k string) int {
	_ = ctx.Err()
	//lint:allow ctxflow background refresh must outlive the request
	return s.fetch(context.Background(), k)
}

// Fixture for the sketchmutate analyzer. The package is named xsketch so
// the fixture types match the protected-type rule exactly like the real
// internal/xsketch package does.
package xsketch

import "histogram"

// NodeSummary mirrors the real per-node summary state.
type NodeSummary struct {
	Buckets int
	Scope   []int
}

// Sketch mirrors the real sketch: summaries keyed by node.
type Sketch struct {
	Summaries map[int]*NodeSummary
	total     int
}

// New is an approved constructor: initialization writes are fine.
func New() *Sketch {
	sk := &Sketch{}
	sk.Summaries = map[int]*NodeSummary{}
	sk.total = 1
	return sk
}

// RebuildNode is the approved mutation funnel.
func (sk *Sketch) RebuildNode(id int) {
	s := &NodeSummary{}
	s.Buckets = 4
	sk.Summaries[id] = s
}

// SetBuckets is approved: it rebuilds after the write.
func (sk *Sketch) SetBuckets(id, n int) {
	sk.Summaries[id].Buckets = n
	sk.RebuildNode(id)
}

// Tweak bypasses the funnel from an unapproved function.
func Tweak(sk *Sketch) {
	sk.Summaries[0].Buckets = 8 // want "write to NodeSummary.Buckets outside approved mutators"
	sk.total++                  // want "write to Sketch.total outside approved mutators"
	delete(sk.Summaries, 0)     // want "write to Sketch.Summaries outside approved mutators"
}

func appendScope(s *NodeSummary) {
	s.Scope = append(s.Scope, 1) // want "write to NodeSummary.Scope outside approved mutators"
}

func touchHistogram(h *histogram.Value) {
	h.Total = 1 // want "write to Value.Total outside approved mutators"
}

func callHistogram(h *histogram.Value) {
	h.Bump() // ok: mutation through the owning package's API
}

type scratch struct{ n int }

func localState() int {
	var s scratch
	s.n = 3 // ok: not sketch state
	return s.n
}

func suppressedWrite(sk *Sketch) {
	//lint:allow sketchmutate fixture demonstrates an accepted exception
	sk.total = 9
}

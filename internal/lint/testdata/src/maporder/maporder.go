// Fixture for the maporder analyzer: flagged cases carry a want comment,
// everything else must be accepted.
package maporder

import (
	"fmt"
	"sort"
)

func floatAccumulate(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "order-sensitive accumulation into sum"
	}
	return sum
}

func intAccumulate(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer addition is exact and commutative
	}
	return n
}

func keyedWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2 // ok: each entry lands in its own slot
	}
	return out
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "assignment to keys inside map range"
	}
	return keys
}

func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: normalized by the sort below
	}
	sort.Strings(keys)
	return keys
}

func maxFold(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v // ok: min/max fold converges regardless of order
		}
	}
	return best
}

func deleteEntries(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k) // ok: delete during range is order-insensitive
		}
	}
}

func printEntries(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "call fmt.Println inside map range"
	}
}

func fixedSlot(m map[string]int, arr []int) {
	for _, v := range m {
		arr[0] = v // want "write to fixed element"
	}
}

func orderDependentReturn(m map[string]int) string {
	for k, v := range m {
		if v > 10 {
			return k // want "return of map-key-derived value"
		}
	}
	return ""
}

func suppressedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow maporder the caller sorts these keys itself
		keys = append(keys, k)
	}
	return keys
}

func sliceRange(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v // ok: slice iteration order is fixed
	}
	return sum
}

func localWork(m map[string]int) int {
	worst := 0
	for _, v := range m {
		scratch := v * v // ok: loop-local state
		if scratch > worst {
			worst = scratch
		}
	}
	return worst
}

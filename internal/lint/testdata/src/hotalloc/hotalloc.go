// Package hotalloc exercises the hotalloc analyzer: functions annotated
// //lint:hotpath may not contain allocating constructs, while unannotated
// functions are left alone.
package hotalloc

import "fmt"

type item struct{ v float64 }

type eng struct {
	scratch []item
	bufs    [][]item
}

func give(v any)       { _ = v }
func giveAll(v ...any) { _ = v }

//lint:hotpath cache-hit estimate path
func (e *eng) hotOK(buf []item, x *item) []item {
	out := buf[:0]
	for i := 0; i < 4; i++ {
		out = append(out, *x) // growing a caller-provided buffer is the sanctioned idiom
	}
	e.scratch = append(e.scratch, *x) // field scratch is persistent
	e.bufs[0] = append(e.bufs[0], *x) // arena element, same
	give(x)                           // boxing a pointer is free
	return out
}

//lint:hotpath
func (e *eng) hotAllocs(n int) []item {
	s := make([]item, n) // want "make allocates in a //lint:hotpath function"
	p := new(item)       // want "new allocates in a //lint:hotpath function"
	_ = p
	m := map[string]int{} // want "map literal allocates in a //lint:hotpath function"
	_ = m
	lit := []item{{v: 1}} // want "slice literal allocates in a //lint:hotpath function"
	_ = lit
	q := &item{v: 2} // want "heap-allocates in a //lint:hotpath function"
	_ = q
	f := func() {} // want "closure literal allocates in a //lint:hotpath function"
	f()
	fmt.Println(n) // want "fmt.Println allocates in a //lint:hotpath function"
	var out []item
	out = append(out, item{}) // want "append to out may allocate a fresh buffer"
	_ = out
	return s
}

//lint:hotpath
func (e *eng) hotBoxing(x *item, f float64) {
	give(x)       // pointer-shaped: stored directly in the interface word
	give(f)       // want "interface conversion of f"
	giveAll(x, f) // want "interface conversion of f"
	_ = any(f)    // want "interface conversion of f"
	var v any = x
	_ = v
}

//lint:hotpath
func (e *eng) hotSuppressed(n int) {
	//lint:allow hotalloc one-time growth, amortized across the run
	e.scratch = make([]item, n)
}

func cold(n int) []item {
	m := map[string]int{"a": 1}
	_ = m
	fmt.Println(n)
	return make([]item, n)
}

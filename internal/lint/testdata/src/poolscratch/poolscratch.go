// Package poolscratch exercises the poolscratch analyzer: sync.Pool
// objects must be Put on every return path and must not escape.
package poolscratch

import (
	"errors"
	"sync"
)

type scratch struct{ buf []byte }

type engine struct {
	pool sync.Pool
	kept *scratch
	sink chan *scratch
}

var errFail = errors.New("fail")

func (e *engine) goodDefer() int {
	s := e.pool.Get().(*scratch)
	defer e.pool.Put(s)
	return len(s.buf)
}

func (e *engine) goodDeferClosure() int {
	s := e.pool.Get().(*scratch)
	defer func() {
		s.buf = s.buf[:0]
		e.pool.Put(s)
	}()
	return len(s.buf)
}

func (e *engine) goodExplicit(fail bool) (int, error) {
	s := e.pool.Get().(*scratch)
	if fail {
		e.pool.Put(s)
		return 0, errFail
	}
	n := len(s.buf)
	e.pool.Put(s)
	return n, nil
}

func (e *engine) goodAliasPut() int {
	s := e.pool.Get().(*scratch)
	t := s
	n := len(t.buf)
	e.pool.Put(t) // releasing through the alias releases the acquisition
	return n
}

func (e *engine) missingPutOnBranch(fail bool) int {
	s := e.pool.Get().(*scratch)
	if fail {
		return -1 // want "return without Put of pooled s"
	}
	e.pool.Put(s)
	return 0
}

func (e *engine) missingPutEverywhere() int {
	s := e.pool.Get().(*scratch)
	return len(s.buf) // want "return without Put of pooled s"
}

func (e *engine) neverPut() {
	s := e.pool.Get().(*scratch) // want "pooled s from sync.Pool.Get is never Put back"
	s.buf = s.buf[:0]
}

func (e *engine) escapesViaReturn() *scratch {
	s := e.pool.Get().(*scratch)
	return s // want "pooled s returned to the caller escapes its sync.Pool"
}

func (e *engine) retainedInField() {
	s := e.pool.Get().(*scratch)
	e.kept = s // want "pooled s stored into e.kept"
	e.pool.Put(s)
}

func (e *engine) sentOnChannel() {
	s := e.pool.Get().(*scratch)
	e.sink <- s // want "pooled s sent on a channel escapes its pool lifecycle"
	e.pool.Put(s)
}

func (e *engine) capturedInComposite() {
	s := e.pool.Get().(*scratch)
	pair := []*scratch{s} // want "pooled s captured in a composite literal escapes its pool lifecycle"
	_ = pair
	e.pool.Put(s)
}

func (e *engine) transfersOwnership() int {
	s := e.pool.Get().(*scratch)
	return e.finish(s) // handing the object to a callee transfers ownership
}

func (e *engine) finish(s *scratch) int {
	n := len(s.buf)
	e.pool.Put(s)
	return n
}

func (e *engine) suppressed() *scratch {
	s := e.pool.Get().(*scratch)
	//lint:allow poolscratch caller is the pool's documented drain hook
	return s
}

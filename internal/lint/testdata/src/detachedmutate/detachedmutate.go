// Package detachedmutate exercises the detachedmutate analyzer: calls to
// detached-panicking sketch mutators are flagged unless dominated by a
// Detached() guard on the same receiver.
package detachedmutate

import "xsketch"

func unguarded(sk *xsketch.Sketch) {
	sk.RebuildAll()         // want "sk.RebuildAll panics on a detached"
	sk.RebuildNode(1)       // want "sk.RebuildNode panics on a detached"
	sk.SetBuckets(1, 8)     // want "sk.SetBuckets panics on a detached"
	sk.AddValueDim(1, 2, 4) // want "sk.AddValueDim panics on a detached"
}

func guardedBranch(sk *xsketch.Sketch) {
	if !sk.Detached() {
		sk.RebuildAll()
	}
}

func guardedEarlyReturn(sk *xsketch.Sketch) {
	if sk.Detached() {
		return
	}
	sk.RebuildNode(1)
}

func guardedElse(sk *xsketch.Sketch) {
	if sk.Detached() {
		return
	} else {
		sk.RebuildAll()
	}
}

func guardedConjunction(sk *xsketch.Sketch, force bool) {
	if force && !sk.Detached() {
		sk.RebuildAll()
	}
}

func guardedDisjunctReturn(sk *xsketch.Sketch) {
	if sk == nil || sk.Detached() {
		return
	}
	sk.AddScopeEdge(1, xsketch.ScopeEdge{From: 1, To: 2})
}

func wrongReceiver(a, b *xsketch.Sketch) {
	if a.Detached() {
		return
	}
	b.RebuildAll() // want "b.RebuildAll panics on a detached"
}

func guardOutsideClosure(sk *xsketch.Sketch) {
	if sk.Detached() {
		return
	}
	f := func() {
		// The closure may run long after the guard; the boundary resets
		// the analysis, matching divguard's closure rule.
		sk.RebuildAll() // want "sk.RebuildAll panics on a detached"
	}
	f()
}

func suppressed(sk *xsketch.Sketch) {
	//lint:allow detachedmutate startup-only path, sketches here are always attached
	sk.RebuildAll()
}

// Fixture for the divguard analyzer: flagged cases carry a want comment,
// everything else must be accepted.
package divguard

import "math"

func unguarded(x, y float64) float64 {
	return x / y // want "possibly-zero denominator y"
}

func constDenominator(x float64) float64 {
	return x / 2 // ok: non-zero constant
}

func earlyReturn(x, d float64) float64 {
	if d == 0 {
		return 0
	}
	return x / d // ok: early-return guard
}

func earlyContinue(xs []float64, d float64) float64 {
	sum := 0.0
	for _, x := range xs {
		if d == 0 {
			continue
		}
		sum += x / d // ok: guarded by continue
	}
	return sum
}

func conversionGuard(x float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return x / float64(n) // ok: guard tests the unconverted value
}

func lenGuard(x float64, vals []int64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return x / float64(len(vals)) // ok: guard on len
}

func enclosingIf(x, d float64) float64 {
	r := 0.0
	if d > 0 {
		r = x / d // ok: branch condition implies non-zero
	}
	return r
}

func elseBranch(x, d float64) float64 {
	if d == 0 {
		return 1
	} else {
		return x / d // ok: else branch of an == 0 test
	}
}

func conjunction(x, d float64, on bool) float64 {
	if on && d != 0 {
		return x / d // ok: one conjunct implies non-zero
	}
	return 0
}

func orChain(x float64, total int, hi, lo int64) float64 {
	if total == 0 || hi < lo {
		return 0
	}
	return x / float64(total) // ok: a false || falsifies every disjunct
}

func reassign(x, d float64) float64 {
	if d <= 0 {
		d = 1
	}
	return x / d // ok: guard-by-reassign pins d above zero
}

func staleGuard(x, d, other float64) float64 {
	if d == 0 {
		return 0
	}
	d = other
	return x / d // want "possibly-zero denominator d"
}

func quoAssign(x, y float64) float64 {
	x /= y // want "possibly-zero denominator y"
	return x
}

func closureEscapesGuard(x, d float64) func() float64 {
	if d == 0 {
		return nil
	}
	return func() float64 {
		// The guard is outside the closure; conservatively flagged.
		return x / d // want "possibly-zero denominator d"
	}
}

func maxDenominator(x, d float64) float64 {
	return x / math.Max(d, 1) // ok: pinned above zero
}

func loopCond(x, d float64) float64 {
	for d > 1 {
		x /= d // ok: loop condition implies non-zero
		d--
	}
	return x
}

func suppressed(x, y float64) float64 {
	//lint:allow divguard fixture demonstrates an accepted exception
	return x / y
}

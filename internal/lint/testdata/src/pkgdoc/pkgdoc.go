// Package pkgdoc is a fixture with a package comment, exercising the
// exported-identifier checks.
package pkgdoc

// Documented is fine.
func Documented() {}

func Undocumented() {} // want "exported function Undocumented has no doc comment"

func unexported() {} // fine: not exported

// T is documented.
type T struct{}

// Method is documented.
func (T) Method() {}

func (T) Bare() {} // want "exported method Bare has no doc comment"

type hidden struct{}

func (hidden) Exported() {} // fine: receiver type is unexported

type U struct{} // want "exported type U has no doc comment"

// V is documented at the spec.
type V struct{}

// Grouped doc comments cover every spec in the group.
const (
	GroupedA = 1
	GroupedB = 2
)

const Lone = 3 // want "exported const Lone has no doc comment"

func Suppressed() {} //lint:allow pkgdoc fixture demonstrates suppression

var Loose int // want "exported var Loose has no doc comment"

// Documented var.
var Fine int

func init() { unexported() }

// Fixture for the nondeterminism analyzer: flagged cases carry a want
// comment, everything else must be accepted.
package nondet

import (
	"math/rand"
	"sync"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now makes results depend on the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since makes results depend on the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the global unseeded source"
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: explicitly seeded
	return rng.Intn(10)                   // ok: method on the seeded source
}

func racyAccumulate(vals []float64) float64 {
	total := 0.0
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			total += v // want "write to shared total inside goroutine"
		}(v)
	}
	wg.Wait()
	return total
}

func indexedFanOut(vals []float64) []float64 {
	out := make([]float64, len(vals))
	var wg sync.WaitGroup
	for i, v := range vals {
		wg.Add(1)
		go func(i int, v float64) {
			defer wg.Done()
			out[i] = v * 2 // ok: each goroutine owns its slot
		}(i, v)
	}
	wg.Wait()
	return out
}

func lockedAccumulate(vals []float64) float64 {
	total := 0.0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, v := range vals {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			mu.Lock()
			total += v // ok: lock-synchronized
			mu.Unlock()
		}(v)
	}
	wg.Wait()
	return total
}

func suppressedClock() time.Time {
	//lint:allow nondeterminism fixture demonstrates an accepted exception
	return time.Now()
}

// Package xsketch is a fixture mirror of the real sketch API for the
// detachedmutate analyzer: the package and type names match the real
// internal/xsketch so the analyzer's type rule binds, and the listed
// mutators are the ones that panic on detached sketches.
package xsketch

// ScopeEdge mirrors the real scope-edge descriptor.
type ScopeEdge struct{ From, To int }

// Sketch mirrors the real sketch.
type Sketch struct{ detached bool }

// Detached reports whether the sketch was loaded from the stored form.
func (sk *Sketch) Detached() bool { return sk.detached }

// RebuildNode mirrors the real detached-panicking mutator.
func (sk *Sketch) RebuildNode(id int) {}

// RebuildAll mirrors the real detached-panicking mutator.
func (sk *Sketch) RebuildAll() {}

// SetBuckets mirrors the real detached-panicking mutator.
func (sk *Sketch) SetBuckets(id, n int) bool { return true }

// AddValueDim mirrors the real detached-panicking mutator.
func (sk *Sketch) AddValueDim(a, b, n int) bool { return true }

// AddScopeEdge mirrors the real detached-panicking mutator.
func (sk *Sketch) AddScopeEdge(id int, e ScopeEdge) {}

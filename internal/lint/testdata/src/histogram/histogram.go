// Helper fixture: a stand-in for internal/histogram so the sketchmutate
// fixture can exercise the cross-package histogram-state rule.
package histogram

// Value is a minimal exported histogram whose fields are protected from
// writes outside this package.
type Value struct {
	Total int
}

// Bump mutates from inside the owning package, which is always allowed.
func (v *Value) Bump() { v.Total++ }

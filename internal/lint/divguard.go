package lint

import (
	"go/ast"
	"go/token"

	"xsketch/internal/lint/analysis"
)

// DivGuard flags floating-point divisions whose denominator is not provably
// guarded against zero on the path to the division. This is the bug class
// behind the PR 2 valueFraction fix: an unguarded e.Count/extent quotient
// turned empty value extents into NaN selectivities that poisoned every
// downstream estimate. The analyzer accepts a division when the denominator
// is a non-zero constant, a math.Max with a positive constant arm, or is
// dominated by a recognizable guard (an early return/continue on == 0 or
// <= 0, an enclosing `if x > 0` / `if x != 0` branch, or a guard-by-reassign
// such as `if d <= 0 { d = 1 }`). Everything else must either grow a guard
// or carry an explicit //lint:allow divguard suppression.
var DivGuard = &analysis.Analyzer{
	Name: "divguard",
	Doc:  "flags float divisions whose denominator is not provably guarded against zero",
	Run:  runDivGuard,
}

func runDivGuard(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.QUO && isFloat(pass.TypeOf(n)) {
					checkDivision(pass, n.Y, n, stack)
				}
			case *ast.AssignStmt:
				if n.Tok == token.QUO_ASSIGN && len(n.Lhs) == 1 && isFloat(pass.TypeOf(n.Lhs[0])) {
					checkDivision(pass, n.Rhs[0], n, stack)
				}
			}
		})
	}
	return nil, nil
}

// checkDivision reports div unless its denominator den is provably non-zero.
func checkDivision(pass *analysis.Pass, den ast.Expr, div ast.Node, stack []ast.Node) {
	den = stripParens(den)
	if isNonZeroConst(pass, den) {
		return
	}
	if maxWithPositiveArm(pass, den) {
		return
	}
	cands := guardCandidates(pass, den)
	if guardedOnPath(pass, div, stack, cands) {
		return
	}
	pass.Reportf(den.Pos(), "possibly-zero denominator %s in float division; guard against zero or add //lint:allow divguard", exprStr(den))
}

// maxWithPositiveArm recognizes math.Max(x, c) with a positive constant arm,
// which pins the result above zero.
func maxWithPositiveArm(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := typeFuncOf(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math" || fn.Name() != "Max" {
		// Also accept the built-in max, which has the same semantics.
		if !isBuiltinCall(pass, call, "max") {
			return false
		}
	}
	for _, arg := range call.Args {
		if isPositiveConst(pass, arg) {
			return true
		}
	}
	return false
}

// guardCandidates returns the set of expression spellings a zero-guard may
// test for this denominator. A conversion like float64(h.total) is guarded
// just as well by `if h.total == 0`, so conversion and paren layers are
// peeled and every layer becomes a candidate.
func guardCandidates(pass *analysis.Pass, den ast.Expr) map[string]bool {
	cands := make(map[string]bool)
	for {
		den = stripParens(den)
		cands[exprStr(den)] = true
		call, ok := den.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return cands
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return cands
		}
		den = call.Args[0]
	}
}

// candIdents collects the identifier names occurring in any candidate
// spelling; an assignment to one of these invalidates guards established
// earlier on the path.
func candIdents(pass *analysis.Pass, den ast.Expr) map[string]bool {
	idents := make(map[string]bool)
	ast.Inspect(den, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			idents[id.Name] = true
		}
		return true
	})
	return idents
}

// guardedOnPath walks the ancestor stack from the division outward, looking
// for a dominating zero-guard. The search honors three guard shapes:
//
//   - an enclosing if/for branch whose condition implies the denominator is
//     non-zero on the branch containing the division;
//   - a prior sibling statement `if cond { return/continue/break/panic }`
//     whose condition being false implies non-zero (the early-return guard);
//   - a prior sibling `if d <= 0 { d = c }` reassignment, or a plain
//     `d := c` binding to a non-zero constant.
//
// The scan stops at function-literal boundaries (a closure may run on a
// different path than its enclosing guard), and any intervening assignment
// to an identifier involved in the denominator kills guards further out.
func guardedOnPath(pass *analysis.Pass, div ast.Node, stack []ast.Node, cands map[string]bool) bool {
	idents := candIdents(pass, divDenominator(div))
	inner := div
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		case *ast.IfStmt:
			if inner == ast.Node(s.Body) && condTrueImpliesNonZero(pass, s.Cond, cands) {
				return true
			}
			if s.Else != nil && inner == ast.Node(s.Else) && condFalseImpliesNonZero(pass, s.Cond, cands) {
				return true
			}
		case *ast.ForStmt:
			if inner == ast.Node(s.Body) && s.Cond != nil && condTrueImpliesNonZero(pass, s.Cond, cands) {
				return true
			}
		case *ast.BlockStmt:
			guarded, killed := scanPriorStmts(pass, s.List, inner, cands, idents)
			if guarded {
				return true
			}
			if killed {
				return false
			}
		case *ast.CaseClause:
			guarded, killed := scanPriorStmts(pass, s.Body, inner, cands, idents)
			if guarded {
				return true
			}
			if killed {
				return false
			}
		case *ast.CommClause:
			guarded, killed := scanPriorStmts(pass, s.Body, inner, cands, idents)
			if guarded {
				return true
			}
			if killed {
				return false
			}
		}
		inner = stack[i]
	}
	return false
}

// divDenominator recovers the denominator expression from a division node.
func divDenominator(div ast.Node) ast.Expr {
	switch d := div.(type) {
	case *ast.BinaryExpr:
		return d.Y
	case *ast.AssignStmt:
		return d.Rhs[0]
	}
	return nil
}

// scanPriorStmts walks the statements before inner in a block, in reverse
// order, returning guarded=true at the first dominating guard or killed=true
// at the first statement that reassigns part of the denominator.
func scanPriorStmts(pass *analysis.Pass, list []ast.Stmt, inner ast.Node, cands, idents map[string]bool) (guarded, killed bool) {
	idx := -1
	for i, st := range list {
		if ast.Node(st) == inner {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, false
	}
	for j := idx - 1; j >= 0; j-- {
		if stmtGuards(pass, list[j], cands) {
			return true, false
		}
		if stmtMutates(pass, list[j], idents) {
			return false, true
		}
	}
	return false, false
}

// stmtGuards reports whether a statement establishes that every candidate
// path onward has a non-zero denominator.
func stmtGuards(pass *analysis.Pass, st ast.Stmt, cands map[string]bool) bool {
	switch s := st.(type) {
	case *ast.IfStmt:
		if !condFalseImpliesNonZero(pass, s.Cond, cands) {
			return false
		}
		if blockDiverges(s.Body) {
			return true
		}
		return blockAssignsNonZero(pass, s.Body, cands)
	case *ast.AssignStmt:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		for i := range s.Lhs {
			if cands[exprStr(s.Lhs[i])] && isNonZeroConst(pass, s.Rhs[i]) {
				return true
			}
		}
	}
	return false
}

// stmtMutates reports whether st assigns to any identifier involved in the
// denominator, which invalidates guards established before it.
func stmtMutates(pass *analysis.Pass, st ast.Stmt, idents map[string]bool) bool {
	mutated := false
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id := rootIdent(l); id != nil && idents[id.Name] {
					mutated = true
				}
			}
		case *ast.IncDecStmt:
			if id := rootIdent(n.X); id != nil && idents[id.Name] {
				mutated = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id := rootIdent(n.X); id != nil && idents[id.Name] {
					mutated = true
				}
			}
		case *ast.RangeStmt:
			for _, l := range []ast.Expr{n.Key, n.Value} {
				if l == nil {
					continue
				}
				if id := rootIdent(l); id != nil && idents[id.Name] {
					mutated = true
				}
			}
		}
		return !mutated
	})
	return mutated
}

// blockDiverges reports whether a block always leaves the enclosing scope:
// its final statement is a return, branch (break/continue/goto) or panic.
func blockDiverges(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := stripParens(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// blockAssignsNonZero recognizes the guard-by-reassign body: the block
// assigns a non-zero constant to a candidate (`if d <= 0 { d = 1 }`).
func blockAssignsNonZero(pass *analysis.Pass, b *ast.BlockStmt, cands map[string]bool) bool {
	for _, st := range b.List {
		if stmtGuards(pass, st, cands) {
			return true
		}
	}
	return false
}

// normalizeCmp rewrites a comparison so the candidate expression sits on the
// left and a constant on the right, flipping the operator when the operands
// arrive reversed. ok is false when neither shape applies.
func normalizeCmp(pass *analysis.Pass, e *ast.BinaryExpr, cands map[string]bool) (op token.Token, sign int, ok bool) {
	x, y := stripParens(e.X), stripParens(e.Y)
	if cands[exprStr(x)] {
		if s, numeric := constSign(constValue(pass, y)); numeric {
			return e.Op, s, true
		}
	}
	if cands[exprStr(y)] {
		if s, numeric := constSign(constValue(pass, x)); numeric {
			return flipCmp(e.Op), s, true
		}
	}
	return 0, 0, false
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// condTrueImpliesNonZero reports whether cond being true implies a candidate
// denominator is non-zero: x != 0, x > c (c >= 0), x >= c (c > 0),
// x < c (c <= 0), x <= c (c < 0), or a conjunction containing any of these.
func condTrueImpliesNonZero(pass *analysis.Pass, cond ast.Expr, cands map[string]bool) bool {
	e, ok := stripParens(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if e.Op == token.LAND {
		return condTrueImpliesNonZero(pass, e.X, cands) || condTrueImpliesNonZero(pass, e.Y, cands)
	}
	op, sign, ok := normalizeCmp(pass, e, cands)
	if !ok {
		return false
	}
	switch op {
	case token.NEQ:
		return sign == 0
	case token.GTR:
		return sign >= 0
	case token.GEQ:
		return sign > 0
	case token.LSS:
		return sign <= 0
	case token.LEQ:
		return sign < 0
	}
	return false
}

// condFalseImpliesNonZero reports whether cond being false implies a
// candidate denominator is non-zero: x == 0, x <= c (c >= 0), x < c (c > 0),
// x >= c (c <= 0), x > c (c < 0), or a disjunction containing any of these
// (the falsity of an || chain falsifies every disjunct).
func condFalseImpliesNonZero(pass *analysis.Pass, cond ast.Expr, cands map[string]bool) bool {
	e, ok := stripParens(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if e.Op == token.LOR {
		return condFalseImpliesNonZero(pass, e.X, cands) || condFalseImpliesNonZero(pass, e.Y, cands)
	}
	op, sign, ok := normalizeCmp(pass, e, cands)
	if !ok {
		return false
	}
	switch op {
	case token.EQL:
		return sign == 0
	case token.LEQ:
		return sign >= 0
	case token.LSS:
		return sign > 0
	case token.GEQ:
		return sign <= 0
	case token.GTR:
		return sign < 0
	}
	return false
}

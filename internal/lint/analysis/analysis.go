package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass: a name used in diagnostics
// and //lint:allow suppressions, documentation, and the Run function.
type Analyzer struct {
	// Name identifies the analyzer in output and suppression comments.
	// It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation (first line: one-sentence
	// summary).
	Doc string
	// Run applies the analyzer to one package, reporting diagnostics
	// through pass.Report.
	Run func(*Pass) (interface{}, error)
}

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the pass's analyzer.
	Analyzer *Analyzer
	// Fset maps token positions across Files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees (non-test files only).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type information for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// Diagnostic is one finding: a position and a message. The analyzer name is
// attached by the runner.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// WalkStack traverses every node under root in depth-first order, invoking
// fn with the node and the stack of its ancestors (outermost first, not
// including the node itself). It is the ancestor-aware complement of
// ast.Inspect that guard-style analyzers need.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

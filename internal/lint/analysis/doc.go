// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis, sized for this repository's needs.
//
// The container this project builds in has no module proxy access, so the
// canonical x/tools analysis framework cannot be vendored or fetched. This
// package reimplements the small slice the xsketchlint analyzers need —
// the Analyzer/Pass/Diagnostic triple plus a package loader built from
// `go list -export` and go/types — with deliberately compatible shapes, so
// migrating to x/tools (should the dependency become available) is a
// mechanical import swap, not a rewrite.
package analysis

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path (e.g.
	// "xsketch/internal/xsketch").
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type information for Files.
	Info *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns under dir (a directory inside
// the module), parses and type-checks every main-module package among them,
// and returns those packages in `go list` (dependency-first) order. Imports
// outside the module — in this repository, only the standard library — are
// resolved from compiler export data produced by `go list -export`, so no
// network or third-party tooling is involved.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, &p)
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		byPath:  make(map[string]*listedPkg, len(listed)),
		checked: make(map[string]*Package),
	}
	for _, p := range listed {
		ld.byPath[p.ImportPath] = p
	}
	ld.exportImporter = importer.ForCompiler(fset, "gc", ld.lookupExport)

	var pkgs []*Package
	for _, p := range listed {
		if p.Standard {
			continue
		}
		// The error check must precede the module/file skips: a mistyped
		// pattern lists as an error package with no module and no Go files,
		// and skipping it first would silently yield zero packages — a
		// "clean" run that analyzed nothing.
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %s", strings.Join(patterns, " "))
	}
	return pkgs, nil
}

// loader type-checks main-module packages from source, resolving external
// imports through compiler export data.
type loader struct {
	fset           *token.FileSet
	byPath         map[string]*listedPkg
	checked        map[string]*Package
	exportImporter types.Importer
}

// lookupExport opens the export data file `go list -export` recorded for an
// import path.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	p := ld.byPath[path]
	if p == nil || p.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(p.Export)
}

// Import implements types.Importer over the loader: main-module packages
// are type-checked from source (recursively), everything else comes from
// export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := ld.byPath[path]; p != nil && p.Module != nil && !p.Standard {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.exportImporter.Import(path)
}

// check parses and type-checks one main-module package (memoized).
func (ld *loader) check(p *listedPkg) (*Package, error) {
	if pkg, ok := ld.checked[p.ImportPath]; ok {
		return pkg, nil
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	tpkg, info, err := TypeCheck(ld.fset, p.ImportPath, files, ld)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", p.ImportPath, err)
	}
	pkg := &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	ld.checked[p.ImportPath] = pkg
	return pkg, nil
}

// TypeCheck type-checks a parsed package with full expression, object and
// selection information, resolving imports through imp.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: imp}
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// StdlibExportLookup returns an export-data lookup for standard-library
// packages, resolving lazily through `go list -export` and caching results.
// The fixture loader in analysistest uses it so fixtures can import the
// standard library without a surrounding module.
func StdlibExportLookup() func(path string) (io.ReadCloser, error) {
	cache := make(map[string]string)
	return func(path string) (io.ReadCloser, error) {
		file, ok := cache[path]
		if !ok {
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				return nil, fmt.Errorf("lint: locating export data for %q: %v", path, err)
			}
			file = strings.TrimSpace(string(out))
			if file == "" {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			cache[path] = file
		}
		return os.Open(file)
	}
}

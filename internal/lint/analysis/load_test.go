package analysis

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	// internal/lint/analysis/load_test.go → repo root is four levels up.
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

// TestLoadBadPatternErrors is the regression test for the false-clean bug:
// a mistyped pattern used to list as an error package with no module and no
// Go files, be skipped before the error check, and yield zero packages — so
// the runner printed nothing and exited 0 without analyzing a single file.
func TestLoadBadPatternErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root := moduleRoot(t)
	if _, err := Load(root, "./does/not/exist"); err == nil {
		t.Error("Load with a nonexistent directory pattern must error, not read as clean")
	}
	// The ... form matches nothing without listing an error package; the
	// zero-packages guard must catch that shape too.
	if _, err := Load(root, "./does/not/exist/..."); err == nil {
		t.Error("Load with a pattern matching no packages must error")
	} else if !strings.Contains(err.Error(), "no packages matched") && !strings.Contains(err.Error(), "does/not/exist") {
		t.Errorf("unexpected error shape: %v", err)
	}
}

func TestLoadValidPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list and type-checks")
	}
	root := moduleRoot(t)
	pkgs, err := Load(root, "./internal/lint/analysis")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "xsketch/internal/lint/analysis" {
		t.Fatalf("Load = %d packages (first %v), want exactly this package", len(pkgs), pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Types == nil || pkgs[0].Info == nil {
		t.Error("loaded package missing files or type information")
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"xsketch/internal/lint/analysis"
)

// This file is the lint suite's lightweight intra-procedural dataflow
// layer: a def-use index built over the same ancestor-stack walk the
// guard-style analyzers use. Analyzers that care where a value came from —
// was this variable loaded from an atomic.Pointer snapshot? does this
// append target derive from a caller-provided buffer? — resolve the
// question through origins/refOrigins instead of re-implementing ad-hoc
// alias chasing.
//
// The model is deliberately small: definitions are recorded per object
// (every RHS ever assigned to it), and resolution follows those
// definitions transitively until it reaches expressions that actually
// produce a value. There is no path sensitivity and no inter-procedural
// reach; a variable with two definitions simply has two origins, and
// analyzers treat "any origin matches" as the conservative answer.

// defUse is the def-use index of one syntax region (typically a file or a
// function body): for each object, every expression ever assigned to it.
type defUse struct {
	pass *analysis.Pass
	defs map[types.Object][]ast.Expr
}

// collectDefUse builds the def-use index for every definition under root:
// plain and short-form assignments, var specs with initializers, and range
// bindings (recorded against the ranged expression).
func collectDefUse(pass *analysis.Pass, root ast.Node) *defUse {
	d := &defUse{pass: pass, defs: make(map[types.Object][]ast.Expr)}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch {
			case len(n.Lhs) == len(n.Rhs):
				for i, l := range n.Lhs {
					d.record(l, n.Rhs[i])
				}
			case len(n.Rhs) == 1:
				// Multi-value form (call, type assertion, map index):
				// every LHS is defined by the one RHS expression.
				for _, l := range n.Lhs {
					d.record(l, n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			switch {
			case len(n.Names) == len(n.Values):
				for i, name := range n.Names {
					d.record(name, n.Values[i])
				}
			case len(n.Values) == 1:
				for _, name := range n.Names {
					d.record(name, n.Values[0])
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				d.record(n.Key, n.X)
			}
			if n.Value != nil {
				d.record(n.Value, n.X)
			}
		}
		return true
	})
	return d
}

// record adds one definition: lvalue must be a plain identifier (selector
// and index writes define no new local object).
func (d *defUse) record(lvalue ast.Expr, rhs ast.Expr) {
	id, ok := stripParens(lvalue).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := identObj(d.pass, id)
	if obj == nil {
		return
	}
	d.defs[obj] = append(d.defs[obj], rhs)
}

// maxOriginDepth bounds the transitive definition chase; real code is a
// handful of hops, the bound only guards degenerate definition chains the
// visited set does not already cut.
const maxOriginDepth = 32

// origins resolves e to the set of expressions its value may come from,
// following identifier definitions, parens, slice expressions and append's
// base operand. Parameters and otherwise-undefined identifiers are
// terminal and appear in the result as *ast.Ident; selectors, calls and
// literals are terminal as-is. This is the value-identity question the
// hotalloc append rule asks: "which buffer does this slice grow".
func (d *defUse) origins(e ast.Expr) []ast.Expr {
	var out []ast.Expr
	seen := make(map[types.Object]bool)
	var walk func(e ast.Expr, depth int)
	walk = func(e ast.Expr, depth int) {
		e = stripParens(e)
		if depth > maxOriginDepth {
			out = append(out, e)
			return
		}
		switch x := e.(type) {
		case *ast.Ident:
			obj := identObj(d.pass, x)
			if obj == nil {
				out = append(out, x)
				return
			}
			if seen[obj] {
				// A definition cycle (out = append(out, ...)): the object's
				// other definitions carry the real sources, so the repeat
				// visit contributes nothing. A purely cyclic chain resolves
				// to an empty origin set.
				return
			}
			seen[obj] = true
			defs := d.defs[obj]
			if len(defs) == 0 {
				out = append(out, x)
				return
			}
			for _, def := range defs {
				walk(def, depth+1)
			}
		case *ast.SliceExpr:
			walk(x.X, depth+1)
		case *ast.CallExpr:
			if isBuiltinCall(d.pass, x, "append") && len(x.Args) > 0 {
				walk(x.Args[0], depth+1)
				return
			}
			out = append(out, x)
		default:
			out = append(out, e)
		}
	}
	walk(e, 0)
	return out
}

// refOrigins resolves the state-reference roots of e: the expressions the
// memory reachable through e was obtained from. Access layers (selectors,
// indexing, dereference, slicing, address-of, type assertions) are peeled
// unconditionally, while definition hops (x := expr) are followed only
// while the defined variable has reference semantics — assigning a value
// type copies, severing the link to the source. This is the reach question
// atomicsnap asks: "does this write land in memory loaded from an
// atomic.Pointer snapshot".
func (d *defUse) refOrigins(e ast.Expr) []ast.Expr {
	var out []ast.Expr
	seen := make(map[types.Object]bool)
	var walk func(e ast.Expr, depth int)
	walk = func(e ast.Expr, depth int) {
		e = stripParens(e)
		if depth > maxOriginDepth {
			out = append(out, e)
			return
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			walk(x.X, depth+1)
		case *ast.IndexExpr:
			walk(x.X, depth+1)
		case *ast.StarExpr:
			walk(x.X, depth+1)
		case *ast.SliceExpr:
			walk(x.X, depth+1)
		case *ast.TypeAssertExpr:
			walk(x.X, depth+1)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				walk(x.X, depth+1)
				return
			}
			out = append(out, x)
		case *ast.CallExpr:
			if isBuiltinCall(d.pass, x, "append") && len(x.Args) > 0 {
				walk(x.Args[0], depth+1)
				return
			}
			out = append(out, x)
		case *ast.Ident:
			obj := identObj(d.pass, x)
			if obj == nil {
				out = append(out, x)
				return
			}
			if seen[obj] {
				return
			}
			seen[obj] = true
			// A value-typed variable is a copy: writes through it (or
			// through an address taken of it) stay local, so the chase
			// ends here.
			if !isRefShaped(obj.Type()) {
				out = append(out, x)
				return
			}
			defs := d.defs[obj]
			if len(defs) == 0 {
				out = append(out, x)
				return
			}
			for _, def := range defs {
				walk(def, depth+1)
			}
		default:
			out = append(out, e)
		}
	}
	walk(e, 0)
	return out
}

// anyRefOrigin reports whether any reference root of e satisfies pred.
func (d *defUse) anyRefOrigin(e ast.Expr, pred func(ast.Expr) bool) bool {
	for _, o := range d.refOrigins(e) {
		if pred(o) {
			return true
		}
	}
	return false
}

// isRefShaped reports whether values of t have reference semantics:
// writing through such a value mutates state shared with whatever the
// value was read from (pointers, maps, slices, channels, interfaces).
func isRefShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// methodOnNamed resolves call to a method named name on a receiver whose
// named type is typeName inside a package named or pathed pkg (matching
// either the package name or the full import path, so analysistest
// fixtures exercise the same rule as the real packages). It returns the
// resolved *types.Func, or nil.
func methodOnNamed(pass *analysis.Pass, call *ast.CallExpr, pkg, typeName, name string) *types.Func {
	fn := typeFuncOf(pass, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return nil
	}
	if fn.Pkg().Name() != pkg && fn.Pkg().Path() != pkg {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	named := namedTypeOf(sig.Recv().Type())
	if named == nil || named.Obj() == nil || named.Obj().Name() != typeName {
		return nil
	}
	return fn
}

// isAtomicPointerLoad reports whether e is a call to
// (*sync/atomic.Pointer[T]).Load — the snapshot acquisition the atomicsnap
// analyzer tracks.
func isAtomicPointerLoad(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := stripParens(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return methodOnNamed(pass, call, "sync/atomic", "Pointer", "Load") != nil
}

// isPoolGet reports whether e is a call to (*sync.Pool).Get, optionally
// wrapped in a type assertion (`pool.Get().(*T)`).
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	e = stripParens(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = stripParens(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	return methodOnNamed(pass, call, "sync", "Pool", "Get") != nil
}

// isPoolPut reports whether call is (*sync.Pool).Put.
func isPoolPut(pass *analysis.Pass, call *ast.CallExpr) bool {
	return methodOnNamed(pass, call, "sync", "Pool", "Put") != nil
}

// Package eval implements exact evaluation of path expressions and twig
// queries over xmltree documents. It provides the ground-truth selectivities
// against which synopsis estimates are scored, and the reference evaluator
// used by workload generation.
//
// Conventions:
//
//   - A path is evaluated from a context element. A child-axis step matches
//     the context's children with the step label; a descendant-axis step
//     matches descendants at any depth >= 1.
//   - A twig query's root path is evaluated from the document root element,
//     so "author" denotes author children of the root while "//author"
//     denotes author elements anywhere. (The paper writes "t0 in A" for
//     documents whose authors sit directly under the root, where the two
//     coincide.)
//   - A step's value predicate requires the reached element to carry a value
//     inside the range; a branching predicate requires at least one match of
//     the nested relative path.
//
// Selectivity is computed with the product-of-children dynamic program: for
// twig node t matched at element e,
//
//	count(t, e) = Σ_{e' ∈ P_t(e)} Π_{c ∈ children(t)} count(c, e')
//
// which counts exactly the binding tuples of the paper's Section 2. On
// tree-structured data path results are sets (deduplication is only needed
// when descendant steps can stack), which the evaluator handles.
package eval

package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

func bibEval() *Evaluator { return New(xmltree.Bibliography()) }

func TestEvalPathSimple(t *testing.T) {
	ev := bibEval()
	cases := []struct {
		path string
		want int
	}{
		{"author", 3},
		{"author/paper", 4},
		{"author/paper/keyword", 5},
		{"author/paper/year", 4},
		{"author/book", 1},
		{"author/book/title", 1},
		{"author/name", 3},
		{"author/paper/title", 4},
		{"book", 0},       // books are not children of the root
		{"author/zzz", 0}, // unknown tag
	}
	for _, c := range cases {
		got := len(ev.EvalPath(ev.Doc().Root(), pathexpr.MustParse(c.path)))
		if got != c.want {
			t.Errorf("EvalPath(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestEvalPathDescendant(t *testing.T) {
	ev := bibEval()
	cases := []struct {
		path string
		want int
	}{
		{"//title", 5},
		{"//paper", 4},
		{"//keyword", 5},
		{"author//title", 5},
		{"//paper/keyword", 5},
		{"//book//title", 1},
	}
	for _, c := range cases {
		got := len(ev.EvalPath(ev.Doc().Root(), pathexpr.MustParse(c.path)))
		if got != c.want {
			t.Errorf("EvalPath(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestEvalPathValuePred(t *testing.T) {
	ev := bibEval()
	// years: 1999, 2002, 2001, 1998
	cases := []struct {
		path string
		want int
	}{
		{"author/paper/year[>2000]", 2},
		{"author/paper/year[>=2001]", 2},
		{"author/paper/year[<2000]", 2},
		{"author/paper/year[=2001]", 1},
		{"author/paper/year[=1998:1999]", 2},
		{"author/paper/year[>2002]", 0},
	}
	for _, c := range cases {
		got := len(ev.EvalPath(ev.Doc().Root(), pathexpr.MustParse(c.path)))
		if got != c.want {
			t.Errorf("EvalPath(%q) = %d, want %d", c.path, got, c.want)
		}
	}
	// Elements without values never satisfy value predicates.
	if got := len(ev.EvalPath(ev.Doc().Root(), pathexpr.MustParse("author/name[>0]"))); got != 0 {
		t.Errorf("valueless elements matched a value predicate: %d", got)
	}
}

func TestEvalPathBranchPred(t *testing.T) {
	ev := bibEval()
	cases := []struct {
		path string
		want int
	}{
		{"author[book]", 1},
		{"author[paper]", 3},
		{"author[paper][book]", 1},
		{"author/paper[year>2000]", 2},
		{"author/paper[year>2000]/keyword", 2}, // p5 has 1 kw, p8 has 1 kw
		{"author[paper/year>2000]/name", 2},
		{"author[book]/paper", 1},
		{"author[zzz]", 0},
	}
	for _, c := range cases {
		got := len(ev.EvalPath(ev.Doc().Root(), pathexpr.MustParse(c.path)))
		if got != c.want {
			t.Errorf("EvalPath(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

func TestSelectivityPaperExample(t *testing.T) {
	// Example 2.1's query over our Figure-1 fixture. Our fixture follows
	// Example 3.1's keyword counts (p4 has 2 keywords; p5, p8 one each),
	// so the query yields: p5 (year 2002) 1 tuple, p8 (year 2001) 1 tuple.
	ev := bibEval()
	q := twig.MustParse("for t0 in author, t1 in t0/name, t2 in t0/paper[year>2000], t3 in t2/title, t4 in t2/keyword")
	if got := ev.Selectivity(q); got != 2 {
		t.Fatalf("Selectivity = %d, want 2", got)
	}
	// Dropping the year predicate: papers have (title x keyword) counts
	// 1*2, 1*1, 1*1, 1*1 = 5, each joined with the author's single name.
	q2 := twig.MustParse("for t0 in author, t1 in t0/name, t2 in t0/paper, t3 in t2/title, t4 in t2/keyword")
	if got := ev.Selectivity(q2); got != 5 {
		t.Fatalf("Selectivity (no pred) = %d, want 5", got)
	}
}

func TestSelectivityMotivating(t *testing.T) {
	// Figure 4: the twig pairing b and c under the same a yields 2000 on
	// the first document and 10100 on the second.
	q := twig.MustParse("for t0 in a, t1 in t0/b, t2 in t0/c")
	if got := New(xmltree.MotivatingUniform()).Selectivity(q); got != 2000 {
		t.Fatalf("uniform doc selectivity = %d, want 2000", got)
	}
	if got := New(xmltree.MotivatingSkewed()).Selectivity(q); got != 10100 {
		t.Fatalf("skewed doc selectivity = %d, want 10100", got)
	}
}

func TestSelectivitySingleNode(t *testing.T) {
	ev := bibEval()
	if got := ev.Selectivity(twig.MustParse("t0 in author")); got != 3 {
		t.Fatalf("Selectivity = %d, want 3", got)
	}
	if got := ev.Selectivity(twig.MustParse("t0 in author/paper/keyword")); got != 5 {
		t.Fatalf("Selectivity = %d, want 5", got)
	}
}

func TestSelectivityZero(t *testing.T) {
	ev := bibEval()
	cases := []string{
		"t0 in magazine",
		"t0 in author, t1 in t0/magazine",
		"t0 in author/paper[year>2100]",
		"t0 in author[book/keyword]",
	}
	for _, src := range cases {
		if got := ev.Selectivity(twig.MustParse(src)); got != 0 {
			t.Errorf("Selectivity(%q) = %d, want 0", src, got)
		}
	}
}

func TestSelectivityProductSemantics(t *testing.T) {
	// An author with 2 papers and 1 book produces 2*1 combined tuples when
	// both are requested.
	ev := bibEval()
	q := twig.MustParse("t0 in author, t1 in t0/paper, t2 in t0/book")
	// Only a3 has a book; a3 has 1 paper. 1 author * 1 paper * 1 book = 1.
	if got := ev.Selectivity(q); got != 1 {
		t.Fatalf("Selectivity = %d, want 1", got)
	}
	q2 := twig.MustParse("t0 in author, t1 in t0/paper, t2 in t0/name")
	// a1: 2 papers * 1 name; a2: 1; a3: 1 -> 4.
	if got := ev.Selectivity(q2); got != 4 {
		t.Fatalf("Selectivity = %d, want 4", got)
	}
}

func TestPathCount(t *testing.T) {
	ev := bibEval()
	if got := ev.PathCount(pathexpr.MustParse("//keyword")); got != 5 {
		t.Fatalf("PathCount = %d, want 5", got)
	}
}

func TestBindingTuples(t *testing.T) {
	ev := bibEval()
	q := twig.MustParse("t0 in author, t1 in t0/paper, t2 in t1/keyword")
	tuples := ev.BindingTuples(q, 0)
	if int64(len(tuples)) != ev.Selectivity(q) {
		t.Fatalf("materialized %d tuples, selectivity says %d", len(tuples), ev.Selectivity(q))
	}
	d := ev.Doc()
	authorTag, _ := d.LookupTag("author")
	paperTag, _ := d.LookupTag("paper")
	kwTag, _ := d.LookupTag("keyword")
	for _, tp := range tuples {
		if len(tp) != 3 {
			t.Fatalf("tuple arity = %d", len(tp))
		}
		if d.Node(tp[0]).Tag != authorTag || d.Node(tp[1]).Tag != paperTag || d.Node(tp[2]).Tag != kwTag {
			t.Fatalf("tuple tags wrong: %v", tp)
		}
		if d.Node(tp[1]).Parent != tp[0] || d.Node(tp[2]).Parent != tp[1] {
			t.Fatalf("tuple structure wrong: %v", tp)
		}
	}
	// Tuples must be distinct.
	seen := make(map[[3]xmltree.NodeID]bool)
	for _, tp := range tuples {
		k := [3]xmltree.NodeID{tp[0], tp[1], tp[2]}
		if seen[k] {
			t.Fatalf("duplicate tuple %v", tp)
		}
		seen[k] = true
	}
}

func TestBindingTuplesLimit(t *testing.T) {
	ev := bibEval()
	q := twig.MustParse("t0 in author, t1 in t0/paper")
	tuples := ev.BindingTuples(q, 2)
	if len(tuples) != 2 {
		t.Fatalf("limit ignored: %d tuples", len(tuples))
	}
}

func TestDescendantDedup(t *testing.T) {
	// A document where a nests under a: //a//b could otherwise double
	// count.
	d := xmltree.NewDocument("r")
	a1 := d.AddChild(d.Root(), "a")
	a2 := d.AddChild(a1, "a")
	d.AddChild(a2, "b")
	ev := New(d)
	got := ev.EvalPath(d.Root(), pathexpr.MustParse("//a//b"))
	if len(got) != 1 {
		t.Fatalf("//a//b matched %d elements, want 1 (set semantics)", len(got))
	}
	// Selectivity counts binding tuples: (a1,b) and (a2,b) are distinct
	// tuples for the twig a//b.
	q := twig.MustParse("t0 in //a, t1 in t0//b")
	if got := ev.Selectivity(q); got != 2 {
		t.Fatalf("twig //a -> //b selectivity = %d, want 2", got)
	}
}

// buildRandomDoc constructs a random document for the brute-force
// cross-check property test.
func buildRandomDoc(rng *rand.Rand, n int) *xmltree.Document {
	tags := []string{"a", "b", "c"}
	d := xmltree.NewDocument("r")
	for d.Len() < n {
		parent := xmltree.NodeID(rng.Intn(d.Len()))
		tag := tags[rng.Intn(len(tags))]
		if rng.Intn(3) == 0 {
			d.AddValueChild(parent, tag, int64(rng.Intn(10)))
		} else {
			d.AddChild(parent, tag)
		}
	}
	return d
}

// buildRandomTwig constructs a small random twig query over tags a,b,c.
func buildRandomTwig(rng *rand.Rand) *twig.Query {
	tags := []string{"a", "b", "c"}
	randPath := func() *pathexpr.Path {
		p := &pathexpr.Path{}
		n := rng.Intn(2) + 1
		for i := 0; i < n; i++ {
			s := &pathexpr.Step{Axis: pathexpr.Child, Label: tags[rng.Intn(len(tags))]}
			if rng.Intn(4) == 0 {
				s.Axis = pathexpr.Descendant
			}
			if rng.Intn(5) == 0 {
				v := pathexpr.ValuePred{Lo: 0, Hi: int64(rng.Intn(10))}
				s.Value = &v
			}
			p.Steps = append(p.Steps, s)
		}
		return p
	}
	q := twig.New(randPath())
	nodes := []*twig.Node{q.Root}
	extra := rng.Intn(3)
	for i := 0; i < extra; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		n := q.AddChild(parent, randPath())
		nodes = append(nodes, n)
	}
	return q
}

func TestSelectivityMatchesMaterialization(t *testing.T) {
	// Property: the counting DP agrees with brute-force tuple enumeration.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := buildRandomDoc(rng, 40)
		ev := New(d)
		q := buildRandomTwig(rng)
		want := int64(len(ev.BindingTuples(q, 0)))
		got := ev.Selectivity(q)
		if got != want {
			t.Logf("seed %d: query %s: DP=%d brute=%d", seed, q, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalPathResultsSortedAndDistinct(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := buildRandomDoc(rng, 60)
		ev := New(d)
		p := pathexpr.MustParse("//a//b")
		got := ev.EvalPath(d.Root(), p)
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRootSelfInterpretation(t *testing.T) {
	// XPath-style absolute paths: the first step naming the root tag
	// matches the root element itself.
	ev := bibEval()
	cases := []struct {
		src  string
		want int64
	}{
		{"t0 in bib/author", 3},
		{"t0 in bib/author/paper", 4},
		{"t0 in bib", 1}, // binds the root itself
		{"t0 in bib, t1 in t0/author", 3},
		{"t0 in bib/author, t1 in t0/paper, t2 in t1/keyword", 5},
	}
	for _, c := range cases {
		q := twig.MustParse(c.src)
		if got := ev.Selectivity(q); got != c.want {
			t.Errorf("Selectivity(%q) = %d, want %d", c.src, got, c.want)
		}
		if got := int64(len(ev.BindingTuples(q, 0))); got != c.want {
			t.Errorf("BindingTuples(%q) = %d, want %d", c.src, got, c.want)
		}
	}
	// PathCount agrees.
	if got := ev.PathCount(pathexpr.MustParse("bib/author/paper/keyword")); got != 5 {
		t.Fatalf("PathCount(bib/...) = %d, want 5", got)
	}
	// Root-self with a failing predicate on the root contributes nothing.
	if got := ev.Selectivity(twig.MustParse("t0 in bib[>5]/author")); got != 0 {
		t.Fatalf("predicate on valueless root matched: %d", got)
	}
}

func TestRootSelfUnionWithChildren(t *testing.T) {
	// A child sharing the root's tag: both interpretations contribute.
	d := xmltree.NewDocument("a")
	a1 := d.AddChild(d.Root(), "a")
	d.AddChild(a1, "b")
	d.AddChild(d.Root(), "b")
	ev := New(d)
	// "a/b": root-self (b child of root: 1) + root's a-children's b (1).
	if got := ev.Selectivity(twig.MustParse("t0 in a/b")); got != 2 {
		t.Fatalf("a/b = %d, want 2", got)
	}
	// "a": root-self (1) + a-children of root (1).
	if got := ev.Selectivity(twig.MustParse("t0 in a")); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
}

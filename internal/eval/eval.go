package eval

import (
	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// Evaluator evaluates paths and twigs over a single document. It caches the
// tag interning lookups; it is cheap to construct.
type Evaluator struct {
	doc *xmltree.Document
}

// New returns an Evaluator for the document.
func New(d *xmltree.Document) *Evaluator {
	return &Evaluator{doc: d}
}

// Doc returns the underlying document.
func (ev *Evaluator) Doc() *xmltree.Document { return ev.doc }

// EvalPath returns the set of elements reached by evaluating p from ctx, in
// document order (ascending NodeID). Value and branching predicates are
// applied at each step.
func (ev *Evaluator) EvalPath(ctx xmltree.NodeID, p *pathexpr.Path) []xmltree.NodeID {
	frontier := []xmltree.NodeID{ctx}
	for _, step := range p.Steps {
		frontier = ev.evalStep(frontier, step)
		if len(frontier) == 0 {
			return nil
		}
	}
	return frontier
}

// evalStep advances a frontier of distinct elements across one step.
// The result is kept in ascending NodeID order and deduplicated.
func (ev *Evaluator) evalStep(frontier []xmltree.NodeID, step *pathexpr.Step) []xmltree.NodeID {
	d := ev.doc
	tag, ok := d.LookupTag(step.Label)
	if !ok {
		return nil
	}
	var out []xmltree.NodeID
	var seen map[xmltree.NodeID]struct{}
	if step.Axis == pathexpr.Descendant && len(frontier) > 1 {
		seen = make(map[xmltree.NodeID]struct{})
	}
	emit := func(id xmltree.NodeID) {
		if !ev.nodeSatisfies(id, step) {
			return
		}
		if seen != nil {
			if _, dup := seen[id]; dup {
				return
			}
			seen[id] = struct{}{}
		}
		out = append(out, id)
	}
	for _, e := range frontier {
		switch step.Axis {
		case pathexpr.Child:
			for _, c := range d.Node(e).Children {
				if d.Node(c).Tag == tag {
					emit(c)
				}
			}
		case pathexpr.Descendant:
			ev.walkDescendants(e, func(id xmltree.NodeID) {
				if d.Node(id).Tag == tag {
					emit(id)
				}
			})
		}
	}
	if seen != nil {
		sortNodeIDs(out)
	}
	return out
}

// walkDescendants visits every strict descendant of e in document order.
func (ev *Evaluator) walkDescendants(e xmltree.NodeID, fn func(xmltree.NodeID)) {
	d := ev.doc
	stack := make([]xmltree.NodeID, 0, 8)
	ch := d.Node(e).Children
	for i := len(ch) - 1; i >= 0; i-- {
		stack = append(stack, ch[i])
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(id)
		ch := d.Node(id).Children
		for i := len(ch) - 1; i >= 0; i-- {
			stack = append(stack, ch[i])
		}
	}
}

// nodeSatisfies checks a step's value and branching predicates on a matched
// element.
func (ev *Evaluator) nodeSatisfies(id xmltree.NodeID, step *pathexpr.Step) bool {
	if step.Value != nil {
		n := ev.doc.Node(id)
		if !n.HasValue || !step.Value.Matches(n.Value) {
			return false
		}
	}
	for _, br := range step.Branches {
		if !ev.pathExists(id, br) {
			return false
		}
	}
	return true
}

// pathExists reports whether at least one match of p exists from ctx
// (existential semantics of branching predicates), with early exit.
func (ev *Evaluator) pathExists(ctx xmltree.NodeID, p *pathexpr.Path) bool {
	return ev.existsFrom(ctx, p.Steps)
}

func (ev *Evaluator) existsFrom(ctx xmltree.NodeID, steps []*pathexpr.Step) bool {
	if len(steps) == 0 {
		return true
	}
	step := steps[0]
	d := ev.doc
	tag, ok := d.LookupTag(step.Label)
	if !ok {
		return false
	}
	try := func(id xmltree.NodeID) bool {
		return d.Node(id).Tag == tag && ev.nodeSatisfies(id, step) && ev.existsFrom(id, steps[1:])
	}
	switch step.Axis {
	case pathexpr.Child:
		for _, c := range d.Node(ctx).Children {
			if try(c) {
				return true
			}
		}
	case pathexpr.Descendant:
		found := false
		ev.walkDescendants(ctx, func(id xmltree.NodeID) {
			if !found && try(id) {
				found = true
			}
		})
		return found
	}
	return false
}

// Selectivity returns the exact number of binding tuples of q over the
// document (the paper's s(T_Q)).
func (ev *Evaluator) Selectivity(q *twig.Query) int64 {
	if q.Root == nil {
		return 0
	}
	total := ev.countNode(ev.doc.Root(), q.Root)
	// XPath-style absolute paths: a child-axis first step naming the root
	// element's tag also matches the root itself ("/bib/author" selects
	// the bib root, then its authors). This only adds matches (the root is
	// not among its own children), so both conventions coexist.
	return total + ev.rootSelfCount(q)
}

// rootSelfCount returns the binding tuples contributed by the root-self
// interpretation of the query's first step: the step's predicates must
// hold on the root element and the remaining steps evaluate from the root
// (an empty remainder binds the twig root to the root element itself,
// since an empty path evaluates to its context).
func (ev *Evaluator) rootSelfCount(q *twig.Query) int64 {
	rq, ok := ev.rootSelfRewrite(q)
	if !ok {
		return 0
	}
	return ev.countNode(ev.doc.Root(), rq.Root)
}

// rootSelfRewrite strips the query's first step when it denotes the
// document root element (child axis, root tag, predicates satisfied on the
// root). ok is false when the interpretation does not apply.
func (ev *Evaluator) rootSelfRewrite(q *twig.Query) (*twig.Query, bool) {
	steps := q.Root.Path.Steps
	if len(steps) == 0 || steps[0].Axis != pathexpr.Child {
		return nil, false
	}
	d := ev.doc
	root := d.Root()
	if d.Tag(d.Node(root).Tag) != steps[0].Label || !ev.nodeSatisfies(root, steps[0]) {
		return nil, false
	}
	rq := q.Clone()
	rq.Root.Path.Steps = rq.Root.Path.Steps[1:]
	return rq, true
}

func (ev *Evaluator) countNode(ctx xmltree.NodeID, t *twig.Node) int64 {
	matches := ev.EvalPath(ctx, t.Path)
	if len(t.Children) == 0 {
		return int64(len(matches))
	}
	var total int64
	for _, e := range matches {
		prod := int64(1)
		for _, c := range t.Children {
			prod *= ev.countNode(e, c)
			if prod == 0 {
				break
			}
		}
		total += prod
	}
	return total
}

// PathCount returns the number of elements reached by p from the document
// root (the selectivity of a single path expression), including the
// root-self interpretation of an absolute first step (see Selectivity).
func (ev *Evaluator) PathCount(p *pathexpr.Path) int64 {
	return ev.Selectivity(twig.New(p))
}

// BindingTuples materializes up to limit binding tuples of q (limit <= 0
// means no limit), including those of the root-self interpretation (see
// Selectivity). Each tuple lists one element per twig node in the query's
// depth-first node order. Intended for tests and examples; Selectivity is
// the efficient counting interface.
func (ev *Evaluator) BindingTuples(q *twig.Query, limit int) [][]xmltree.NodeID {
	out := ev.materialize(q, limit)
	if rq, ok := ev.rootSelfRewrite(q); ok && (limit <= 0 || len(out) < limit) {
		rest := limit
		if limit > 0 {
			rest = limit - len(out)
		}
		out = append(out, ev.materialize(rq, rest)...)
	}
	return out
}

// materialize enumerates binding tuples under the plain root-children
// convention (no root-self interpretation).
func (ev *Evaluator) materialize(q *twig.Query, limit int) [][]xmltree.NodeID {
	if q.Root == nil {
		return nil
	}
	order := q.Nodes()
	index := make(map[*twig.Node]int, len(order))
	for i, n := range order {
		index[n] = i
	}
	// parentIdx[i] is the position of node i's parent in DFS order, or -1
	// for the root. Since DFS order visits parents before children, by the
	// time node i is assigned, current[parentIdx[i]] is valid.
	parentIdx := make([]int, len(order))
	q.Walk(func(n, parent *twig.Node, _ int) {
		if parent == nil {
			parentIdx[index[n]] = -1
		} else {
			parentIdx[index[n]] = index[parent]
		}
	})
	var out [][]xmltree.NodeID
	current := make([]xmltree.NodeID, len(order))
	var assign func(i int) bool
	assign = func(i int) bool {
		if i == len(order) {
			tuple := make([]xmltree.NodeID, len(current))
			copy(tuple, current)
			out = append(out, tuple)
			return limit <= 0 || len(out) < limit
		}
		ctx := ev.doc.Root()
		if parentIdx[i] >= 0 {
			ctx = current[parentIdx[i]]
		}
		for _, e := range ev.EvalPath(ctx, order[i].Path) {
			current[i] = e
			if !assign(i + 1) {
				return false
			}
		}
		return true
	}
	assign(0)
	return out
}

func sortNodeIDs(ids []xmltree.NodeID) {
	// insertion sort is fine: slices are small and mostly sorted.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

package xmltree

import (
	"bytes"
	"testing"
)

// FuzzParse checks that the XML parser never panics, and that every
// accepted document validates and survives a serialize/re-parse cycle.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`<a/>`,
		`<a><b>7</b></a>`,
		`<bib><author id="3"><name/></author></bib>`,
		`<a>text<b/>tail</a>`,
		`<a b="x" c="-12"/>`,
		``,
		`<a>`,
		`<a></b>`,
		`<a/><b/>`,
		`<a>&lt;</a>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted document fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := Serialize(&buf, d); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		d2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized output failed: %v\n%s", err, buf.String())
		}
		if d2.Len() != d.Len() {
			t.Fatalf("element count changed: %d -> %d", d.Len(), d2.Len())
		}
	})
}

package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads an XML document from r into the arena representation.
//
// Element attributes are modeled as child elements (the paper's data model
// treats attributes as containment edges just like sub-elements). Character
// data under an element is parsed as an int64 value when it is entirely
// numeric; otherwise it is ignored, matching the prototype's focus on
// integer range predicates.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var d *Document
	var stack []NodeID
	var text strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			text.Reset()
			var id NodeID
			if d == nil {
				d = NewDocument(t.Name.Local)
				id = d.Root()
			} else {
				if len(stack) == 0 {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements (second is <%s>)", t.Name.Local)
				}
				id = d.AddChild(stack[len(stack)-1], t.Name.Local)
			}
			for _, attr := range t.Attr {
				if attr.Name.Space == "xmlns" || attr.Name.Local == "xmlns" {
					continue
				}
				aid := d.AddChild(id, "@"+attr.Name.Local)
				if v, err := strconv.ParseInt(strings.TrimSpace(attr.Value), 10, 64); err == nil {
					d.SetValue(aid, v)
				}
			}
			stack = append(stack, id)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element </%s>", t.Name.Local)
			}
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s := strings.TrimSpace(text.String()); s != "" && len(d.Nodes[id].Children) == 0 {
				if v, err := strconv.ParseInt(s, 10, 64); err == nil {
					d.SetValue(id, v)
				}
			}
			text.Reset()
		case xml.CharData:
			text.Write(t)
		}
	}
	if d == nil {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: %d unclosed elements", len(stack))
	}
	return d, nil
}

// ParseString parses an XML document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// Serialize writes the document as XML to w. Leaf values are written as
// character data; attribute-modeled children (tags starting with '@') are
// written back as attributes. The output round-trips through Parse.
func Serialize(w io.Writer, d *Document) error {
	bw := &errWriter{w: w}
	if _, err := io.WriteString(bw, xml.Header); err != nil {
		return err
	}
	serializeNode(bw, d, d.Root(), 0)
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

func serializeNode(w io.Writer, d *Document, id NodeID, depth int) {
	n := d.Node(id)
	tag := d.Tag(n.Tag)
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(w, "%s<%s", indent, tag)
	// Emit attribute-children inline, remember element children.
	var elems []NodeID
	for _, c := range n.Children {
		ctag := d.Tag(d.Node(c).Tag)
		if strings.HasPrefix(ctag, "@") {
			cn := d.Node(c)
			if cn.HasValue {
				fmt.Fprintf(w, " %s=%q", ctag[1:], strconv.FormatInt(cn.Value, 10))
			} else {
				fmt.Fprintf(w, " %s=\"\"", ctag[1:])
			}
			continue
		}
		elems = append(elems, c)
	}
	switch {
	case len(elems) == 0 && n.HasValue:
		fmt.Fprintf(w, ">%d</%s>\n", n.Value, tag)
	case len(elems) == 0:
		fmt.Fprintf(w, "/>\n")
	default:
		fmt.Fprintf(w, ">\n")
		for _, c := range elems {
			serializeNode(w, d, c, depth+1)
		}
		fmt.Fprintf(w, "%s</%s>\n", indent, tag)
	}
}

package xmltree

// This file provides the paper's running-example documents as programmatic
// fixtures. They are used by tests across packages and by the bibliography
// example application, so they live in the library rather than in _test
// files.

// Bibliography builds the document of the paper's Figure 1: bibliographical
// data with authors pointing to a name and several papers and books; papers
// contain a title, a year of publication and one or more keywords; a book
// points to its title.
//
// Element identities follow the figure: author a1 has name n6 and papers
// p4, p5; author a2 has name n7 and paper p8; author a3 has name n10(...)
// The figure's essential cardinalities reproduced here are:
//
//	3 authors; 4 papers; 1 book; 3 names
//	a1 -> {n, p4, p5}; a2 -> {n, p8}; a3 -> {n, p9, b}
//	p4 -> {t, y(1999), k, k}; p5 -> {t, y(2002), k, k}
//	p8 -> {t, y(2001), k};    p9 -> {t, y(1998), k}
//	b  -> {t}
//
// These counts are chosen to be consistent with the paper's Example 3.1
// edge-distribution table for node P:
//
//	(C_K=2, C_Y=1, C_P=2, C_N=1) -> 0.25  (p4)
//	(C_K=1, C_Y=1, C_P=2, C_N=1) -> 0.25  (p5)
//	(C_K=1, C_Y=1, C_P=1, C_N=1) -> 0.50  (p8, p9)
//
// which requires p4 to have two keywords, p5/p8/p9 one keyword each, and
// p4,p5 to share an author with two papers while p8, p9 each belong to an
// author with exactly one paper. (Example 2.1's binding-tuple table has p5
// with two keywords; the two examples use slightly different keyword counts
// and we follow Example 3.1, which the estimation walk-through of Section 4
// depends on. Example 2.1's count is covered separately in tests.)
func Bibliography() *Document {
	d := NewDocument("bib")
	root := d.Root()

	a1 := d.AddChild(root, "author")
	d.AddChild(a1, "name")
	p4 := d.AddChild(a1, "paper")
	d.AddChild(p4, "title")
	d.AddValueChild(p4, "year", 1999)
	d.AddChild(p4, "keyword")
	d.AddChild(p4, "keyword")
	p5 := d.AddChild(a1, "paper")
	d.AddChild(p5, "title")
	d.AddValueChild(p5, "year", 2002)
	d.AddChild(p5, "keyword")

	a2 := d.AddChild(root, "author")
	d.AddChild(a2, "name")
	p8 := d.AddChild(a2, "paper")
	d.AddChild(p8, "title")
	d.AddValueChild(p8, "year", 2001)
	d.AddChild(p8, "keyword")

	a3 := d.AddChild(root, "author")
	d.AddChild(a3, "name")
	p9 := d.AddChild(a3, "paper")
	d.AddChild(p9, "title")
	d.AddValueChild(p9, "year", 1998)
	d.AddChild(p9, "keyword")
	b := d.AddChild(a3, "book")
	d.AddChild(b, "title")

	return d
}

// MotivatingUniform builds the first document of the paper's Figure 4: an
// r root with 20 a children, half of which have 10 b and 100 c children and
// half 100 b and 10 c children. Total b*c pairs per a: 1000, so the twig
// query A[B][C] pairing b and c under the same a yields 20*1000 = 20000...
//
// The figure actually shows two a elements; to match the paper's reported
// selectivities (2000 vs 10100 tuples) we use exactly two a elements:
//
//	doc1: a1 with (10 b, 100 c), a2 with (100 b, 10 c)  -> 10*100 + 100*10 = 2000
//	doc2: a1 with (100 b, 100 c), a2 with (10 b, 10 c)  -> 100*100 + 10*10 = 10100
func MotivatingUniform() *Document {
	return motivating([2][2]int{{10, 100}, {100, 10}})
}

// MotivatingSkewed builds the second document of Figure 4 (see
// MotivatingUniform).
func MotivatingSkewed() *Document {
	return motivating([2][2]int{{100, 100}, {10, 10}})
}

func motivating(bc [2][2]int) *Document {
	d := NewDocument("r")
	for _, counts := range bc {
		a := d.AddChild(d.Root(), "a")
		for i := 0; i < counts[0]; i++ {
			d.AddChild(a, "b")
		}
		for i := 0; i < counts[1]; i++ {
			d.AddChild(a, "c")
		}
	}
	return d
}

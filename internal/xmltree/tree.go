package xmltree

import (
	"fmt"
	"sort"
)

// NodeID identifies an element within its Document. The root has ID 0.
// NilNode marks the absence of a node (e.g. the root's parent).
type NodeID int32

// NilNode is the sentinel "no node" value.
const NilNode NodeID = -1

// TagID is an interned element tag. Tag text is recovered via Document.Tag.
type TagID int32

// Node is a single element of the document tree. Children are stored as a
// contiguous slice of NodeIDs in document order.
type Node struct {
	Parent   NodeID
	Tag      TagID
	Children []NodeID
	// Value is the node's integer content for leaf elements that carry one;
	// HasValue reports whether Value is meaningful.
	Value    int64
	HasValue bool
}

// Document is an XML tree in arena form. The zero value is not usable;
// construct documents with NewBuilder or Parse.
type Document struct {
	// Nodes holds every element; Nodes[0] is the root.
	Nodes []Node
	// tags maps interned TagIDs back to tag text.
	tags []string
	// tagIndex maps tag text to its TagID.
	tagIndex map[string]TagID
}

// NewDocument returns an empty document with a single root element carrying
// the given tag.
func NewDocument(rootTag string) *Document {
	d := &Document{tagIndex: make(map[string]TagID)}
	root := d.Intern(rootTag)
	d.Nodes = append(d.Nodes, Node{Parent: NilNode, Tag: root})
	return d
}

// Intern returns the TagID for tag, allocating one if needed.
func (d *Document) Intern(tag string) TagID {
	if id, ok := d.tagIndex[tag]; ok {
		return id
	}
	id := TagID(len(d.tags))
	d.tags = append(d.tags, tag)
	if d.tagIndex == nil {
		d.tagIndex = make(map[string]TagID)
	}
	d.tagIndex[tag] = id
	return id
}

// LookupTag returns the TagID for tag and whether it is known.
func (d *Document) LookupTag(tag string) (TagID, bool) {
	id, ok := d.tagIndex[tag]
	return id, ok
}

// Tag returns the text of an interned tag.
func (d *Document) Tag(id TagID) string {
	if id < 0 || int(id) >= len(d.tags) {
		return fmt.Sprintf("<bad tag %d>", id)
	}
	return d.tags[id]
}

// TagCount returns the number of distinct tags in the document.
func (d *Document) TagCount() int { return len(d.tags) }

// Root returns the root node's ID (always 0 for a non-empty document).
func (d *Document) Root() NodeID { return 0 }

// Len returns the number of elements in the document.
func (d *Document) Len() int { return len(d.Nodes) }

// Node returns a pointer to the node with the given ID.
func (d *Document) Node(id NodeID) *Node { return &d.Nodes[id] }

// AddChild appends a new element with the given tag under parent and returns
// its ID.
func (d *Document) AddChild(parent NodeID, tag string) NodeID {
	id := NodeID(len(d.Nodes))
	d.Nodes = append(d.Nodes, Node{Parent: parent, Tag: d.Intern(tag)})
	p := &d.Nodes[parent]
	p.Children = append(p.Children, id)
	return id
}

// AddValueChild appends a new leaf element with the given tag and integer
// value under parent and returns its ID.
func (d *Document) AddValueChild(parent NodeID, tag string, value int64) NodeID {
	id := d.AddChild(parent, tag)
	n := &d.Nodes[id]
	n.Value = value
	n.HasValue = true
	return id
}

// SetValue assigns an integer value to an existing node.
func (d *Document) SetValue(id NodeID, value int64) {
	n := &d.Nodes[id]
	n.Value = value
	n.HasValue = true
}

// ChildrenWithTag returns the children of id whose tag equals tag, in
// document order. The result aliases no internal storage.
func (d *Document) ChildrenWithTag(id NodeID, tag TagID) []NodeID {
	var out []NodeID
	for _, c := range d.Nodes[id].Children {
		if d.Nodes[c].Tag == tag {
			out = append(out, c)
		}
	}
	return out
}

// Walk visits every node in document order (pre-order DFS), calling fn with
// each node's ID and depth (root depth 0). If fn returns false the subtree
// below that node is skipped.
func (d *Document) Walk(fn func(id NodeID, depth int) bool) {
	type frame struct {
		id    NodeID
		depth int
	}
	if len(d.Nodes) == 0 {
		return
	}
	stack := []frame{{0, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(f.id, f.depth) {
			continue
		}
		ch := d.Nodes[f.id].Children
		for i := len(ch) - 1; i >= 0; i-- {
			stack = append(stack, frame{ch[i], f.depth + 1})
		}
	}
}

// Depth returns the depth of id (root is 0).
func (d *Document) Depth(id NodeID) int {
	depth := 0
	for d.Nodes[id].Parent != NilNode {
		id = d.Nodes[id].Parent
		depth++
	}
	return depth
}

// PathTags returns the tag sequence from the root down to id, inclusive.
func (d *Document) PathTags(id NodeID) []TagID {
	var rev []TagID
	for {
		rev = append(rev, d.Nodes[id].Tag)
		if d.Nodes[id].Parent == NilNode {
			break
		}
		id = d.Nodes[id].Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathString renders the root-to-id label path as "a/b/c".
func (d *Document) PathString(id NodeID) string {
	tags := d.PathTags(id)
	s := ""
	for i, t := range tags {
		if i > 0 {
			s += "/"
		}
		s += d.Tag(t)
	}
	return s
}

// Validate checks structural invariants: parent/child links are mutual,
// every non-root node is reachable from the root exactly once, and tag IDs
// are in range. It returns the first violation found.
func (d *Document) Validate() error {
	if len(d.Nodes) == 0 {
		return fmt.Errorf("xmltree: empty document")
	}
	if d.Nodes[0].Parent != NilNode {
		return fmt.Errorf("xmltree: root has parent %d", d.Nodes[0].Parent)
	}
	seen := make([]bool, len(d.Nodes))
	count := 0
	d.Walk(func(id NodeID, _ int) bool {
		if seen[id] {
			return false
		}
		seen[id] = true
		count++
		return true
	})
	if count != len(d.Nodes) {
		return fmt.Errorf("xmltree: %d of %d nodes reachable from root", count, len(d.Nodes))
	}
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Tag < 0 || int(n.Tag) >= len(d.tags) {
			return fmt.Errorf("xmltree: node %d has out-of-range tag %d", i, n.Tag)
		}
		for _, c := range n.Children {
			if c <= 0 || int(c) >= len(d.Nodes) {
				return fmt.Errorf("xmltree: node %d has out-of-range child %d", i, c)
			}
			if d.Nodes[c].Parent != NodeID(i) {
				return fmt.Errorf("xmltree: node %d lists child %d whose parent is %d", i, c, d.Nodes[c].Parent)
			}
		}
		if n.Parent != NilNode {
			found := false
			for _, c := range d.Nodes[n.Parent].Children {
				if c == NodeID(i) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("xmltree: node %d not listed among parent %d's children", i, n.Parent)
			}
		}
	}
	return nil
}

// TagHistogram returns a map from tag text to the number of elements with
// that tag.
func (d *Document) TagHistogram() map[string]int {
	h := make(map[string]int, len(d.tags))
	for i := range d.Nodes {
		h[d.Tag(d.Nodes[i].Tag)]++
	}
	return h
}

// Tags returns all tag strings in TagID order.
func (d *Document) Tags() []string {
	out := make([]string, len(d.tags))
	copy(out, d.tags)
	return out
}

// SortedTags returns all tag strings sorted lexicographically (for stable
// diagnostics output).
func (d *Document) SortedTags() []string {
	out := d.Tags()
	sort.Strings(out)
	return out
}

package xmltree

import (
	"bytes"
	"sort"
)

// Stats summarizes the structural characteristics a dataset reports in the
// paper's Table 1 plus a few extras that are useful when validating the
// synthetic generators.
type Stats struct {
	// ElementCount is the total number of elements (paper: "Element Count").
	ElementCount int
	// TextBytes is the size of the serialized XML file (paper: "Text Size").
	TextBytes int
	// DistinctTags is the number of distinct element tags.
	DistinctTags int
	// DistinctPaths is the number of distinct root-to-node label paths.
	DistinctPaths int
	// MaxDepth is the maximum node depth (root = 0).
	MaxDepth int
	// AvgFanout is the average number of children over internal nodes.
	AvgFanout float64
	// ValueCount is the number of elements carrying an integer value.
	ValueCount int
}

// ComputeStats derives Stats for a document. TextBytes is measured by
// serializing the document, which is what the paper reports ("the size of
// the corresponding disk file").
func ComputeStats(d *Document) Stats {
	var s Stats
	s.ElementCount = d.Len()
	s.DistinctTags = d.TagCount()

	paths := make(map[string]struct{})
	internal := 0
	childSum := 0
	d.Walk(func(id NodeID, depth int) bool {
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		n := d.Node(id)
		if n.HasValue {
			s.ValueCount++
		}
		if len(n.Children) > 0 {
			internal++
			childSum += len(n.Children)
		}
		paths[d.PathString(id)] = struct{}{}
		return true
	})
	s.DistinctPaths = len(paths)
	if internal > 0 {
		s.AvgFanout = float64(childSum) / float64(internal)
	}

	var buf bytes.Buffer
	if err := Serialize(&buf, d); err == nil {
		s.TextBytes = buf.Len()
	}
	return s
}

// ValueDomain returns the [min, max] range of integer values under elements
// with the given tag, and whether any were found. Workload generation uses
// this to draw the paper's "random 10% range" value predicates.
func ValueDomain(d *Document, tag TagID) (lo, hi int64, ok bool) {
	first := true
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Tag != tag || !n.HasValue {
			continue
		}
		if first {
			lo, hi, first = n.Value, n.Value, false
			continue
		}
		if n.Value < lo {
			lo = n.Value
		}
		if n.Value > hi {
			hi = n.Value
		}
	}
	return lo, hi, !first
}

// ValueTags returns the TagIDs (sorted) of tags for which at least minCount
// elements carry a value. Workloads attach value predicates to these tags.
func ValueTags(d *Document, minCount int) []TagID {
	counts := make(map[TagID]int)
	for i := range d.Nodes {
		if d.Nodes[i].HasValue {
			counts[d.Nodes[i].Tag]++
		}
	}
	var out []TagID
	for t, c := range counts {
		if c >= minCount {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

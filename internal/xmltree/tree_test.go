package xmltree

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDocument(t *testing.T) {
	d := NewDocument("root")
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	if got := d.Tag(d.Node(d.Root()).Tag); got != "root" {
		t.Fatalf("root tag = %q, want root", got)
	}
	if d.Node(d.Root()).Parent != NilNode {
		t.Fatalf("root parent = %d, want NilNode", d.Node(d.Root()).Parent)
	}
}

func TestInternReuse(t *testing.T) {
	d := NewDocument("r")
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatalf("distinct tags interned to same ID %d", a)
	}
	if again := d.Intern("a"); again != a {
		t.Fatalf("Intern(a) twice: %d then %d", a, again)
	}
	if d.TagCount() != 3 { // r, a, b
		t.Fatalf("TagCount = %d, want 3", d.TagCount())
	}
	id, ok := d.LookupTag("b")
	if !ok || id != b {
		t.Fatalf("LookupTag(b) = %d,%v", id, ok)
	}
	if _, ok := d.LookupTag("missing"); ok {
		t.Fatal("LookupTag(missing) reported ok")
	}
}

func TestAddChildLinks(t *testing.T) {
	d := NewDocument("r")
	c1 := d.AddChild(d.Root(), "a")
	c2 := d.AddChild(d.Root(), "b")
	g := d.AddChild(c1, "a")
	if got := d.Node(d.Root()).Children; !reflect.DeepEqual(got, []NodeID{c1, c2}) {
		t.Fatalf("root children = %v", got)
	}
	if d.Node(g).Parent != c1 {
		t.Fatalf("grandchild parent = %d, want %d", d.Node(g).Parent, c1)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddValueChild(t *testing.T) {
	d := NewDocument("r")
	v := d.AddValueChild(d.Root(), "year", 2001)
	n := d.Node(v)
	if !n.HasValue || n.Value != 2001 {
		t.Fatalf("value child = %+v", n)
	}
	plain := d.AddChild(d.Root(), "name")
	if d.Node(plain).HasValue {
		t.Fatal("plain child unexpectedly has a value")
	}
}

func TestChildrenWithTag(t *testing.T) {
	d := NewDocument("r")
	a := d.AddChild(d.Root(), "a")
	d.AddChild(a, "b")
	d.AddChild(a, "c")
	d.AddChild(a, "b")
	bTag, _ := d.LookupTag("b")
	got := d.ChildrenWithTag(a, bTag)
	if len(got) != 2 {
		t.Fatalf("ChildrenWithTag(b) = %v, want 2 nodes", got)
	}
	cTag, _ := d.LookupTag("c")
	if got := d.ChildrenWithTag(a, cTag); len(got) != 1 {
		t.Fatalf("ChildrenWithTag(c) = %v, want 1 node", got)
	}
}

func TestWalkOrderAndDepth(t *testing.T) {
	d := NewDocument("r")
	a := d.AddChild(d.Root(), "a")
	d.AddChild(a, "x")
	d.AddChild(d.Root(), "b")
	var order []string
	var depths []int
	d.Walk(func(id NodeID, depth int) bool {
		order = append(order, d.Tag(d.Node(id).Tag))
		depths = append(depths, depth)
		return true
	})
	if !reflect.DeepEqual(order, []string{"r", "a", "x", "b"}) {
		t.Fatalf("walk order = %v", order)
	}
	if !reflect.DeepEqual(depths, []int{0, 1, 2, 1}) {
		t.Fatalf("walk depths = %v", depths)
	}
}

func TestWalkPrune(t *testing.T) {
	d := NewDocument("r")
	a := d.AddChild(d.Root(), "a")
	d.AddChild(a, "x")
	d.AddChild(d.Root(), "b")
	var visited []string
	d.Walk(func(id NodeID, _ int) bool {
		tag := d.Tag(d.Node(id).Tag)
		visited = append(visited, tag)
		return tag != "a" // prune below a
	})
	if !reflect.DeepEqual(visited, []string{"r", "a", "b"}) {
		t.Fatalf("visited = %v", visited)
	}
}

func TestDepthAndPath(t *testing.T) {
	d := NewDocument("bib")
	a := d.AddChild(d.Root(), "author")
	p := d.AddChild(a, "paper")
	y := d.AddChild(p, "year")
	if got := d.Depth(y); got != 3 {
		t.Fatalf("Depth = %d, want 3", got)
	}
	if got := d.PathString(y); got != "bib/author/paper/year" {
		t.Fatalf("PathString = %q", got)
	}
	if got := d.PathString(d.Root()); got != "bib" {
		t.Fatalf("root PathString = %q", got)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	d := NewDocument("r")
	c := d.AddChild(d.Root(), "a")
	d.Nodes[c].Parent = NodeID(5) // out of range / wrong
	if err := d.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted parent link")
	}
}

func TestTagHistogram(t *testing.T) {
	d := Bibliography()
	h := d.TagHistogram()
	want := map[string]int{"bib": 1, "author": 3, "name": 3, "paper": 4, "book": 1, "title": 5, "year": 4, "keyword": 5}
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("TagHistogram = %v, want %v", h, want)
	}
}

func TestBibliographyShape(t *testing.T) {
	d := Bibliography()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Example 3.1 requires specific (keyword, paper-sibling) combinations.
	paperTag, _ := d.LookupTag("paper")
	kwTag, _ := d.LookupTag("keyword")
	type combo struct{ k, p int }
	counts := make(map[combo]int)
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.Tag != paperTag {
			continue
		}
		k := len(d.ChildrenWithTag(NodeID(i), kwTag))
		p := len(d.ChildrenWithTag(n.Parent, paperTag))
		counts[combo{k, p}]++
	}
	want := map[combo]int{{2, 2}: 1, {1, 2}: 1, {1, 1}: 2}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("paper (keyword,sibling) combos = %v, want %v", counts, want)
	}
}

func TestMotivatingDocs(t *testing.T) {
	d1 := MotivatingUniform()
	d2 := MotivatingSkewed()
	for _, d := range []*Document{d1, d2} {
		if err := d.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
	// Both documents have identical single-path statistics: 2 a's, 110 b's,
	// 110 c's.
	for _, d := range []*Document{d1, d2} {
		h := d.TagHistogram()
		if h["a"] != 2 || h["b"] != 110 || h["c"] != 110 {
			t.Fatalf("histogram = %v", h)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `<?xml version="1.0"?>
<bib>
  <author id="7">
    <name/>
    <paper><year>2001</year><keyword/></paper>
  </author>
</bib>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// attribute id becomes @id child with value 7
	idTag, ok := d.LookupTag("@id")
	if !ok {
		t.Fatal("@id tag missing")
	}
	found := false
	for i := range d.Nodes {
		if d.Nodes[i].Tag == idTag {
			found = true
			if !d.Nodes[i].HasValue || d.Nodes[i].Value != 7 {
				t.Fatalf("@id node = %+v", d.Nodes[i])
			}
		}
	}
	if !found {
		t.Fatal("no @id node")
	}
	yearTag, _ := d.LookupTag("year")
	for i := range d.Nodes {
		if d.Nodes[i].Tag == yearTag {
			if !d.Nodes[i].HasValue || d.Nodes[i].Value != 2001 {
				t.Fatalf("year node = %+v", d.Nodes[i])
			}
		}
	}

	var buf bytes.Buffer
	if err := Serialize(&buf, d); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("round trip length %d -> %d\n%s", d.Len(), d2.Len(), buf.String())
	}
	if !reflect.DeepEqual(d.TagHistogram(), d2.TagHistogram()) {
		t.Fatalf("round trip tags %v -> %v", d.TagHistogram(), d2.TagHistogram())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"not xml at all <",
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseNonNumericText(t *testing.T) {
	d, err := ParseString(`<a><t>hello</t><n>42</n></a>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tTag, _ := d.LookupTag("t")
	nTag, _ := d.LookupTag("n")
	for i := range d.Nodes {
		switch d.Nodes[i].Tag {
		case tTag:
			if d.Nodes[i].HasValue {
				t.Fatal("non-numeric text produced a value")
			}
		case nTag:
			if !d.Nodes[i].HasValue || d.Nodes[i].Value != 42 {
				t.Fatalf("numeric text node = %+v", d.Nodes[i])
			}
		}
	}
}

func TestComputeStatsBibliography(t *testing.T) {
	d := Bibliography()
	s := ComputeStats(d)
	if s.ElementCount != 26 {
		t.Fatalf("ElementCount = %d, want 26", s.ElementCount)
	}
	if s.DistinctTags != 8 {
		t.Fatalf("DistinctTags = %d, want 8", s.DistinctTags)
	}
	if s.MaxDepth != 3 {
		t.Fatalf("MaxDepth = %d, want 3", s.MaxDepth)
	}
	// Distinct paths: bib, bib/author, bib/author/name, bib/author/paper,
	// .../title, .../year, .../keyword, bib/author/book, bib/author/book/title
	if s.DistinctPaths != 9 {
		t.Fatalf("DistinctPaths = %d, want 9", s.DistinctPaths)
	}
	if s.ValueCount != 4 {
		t.Fatalf("ValueCount = %d, want 4", s.ValueCount)
	}
	if s.TextBytes == 0 {
		t.Fatal("TextBytes = 0")
	}
	if s.AvgFanout <= 1 {
		t.Fatalf("AvgFanout = %v", s.AvgFanout)
	}
}

func TestValueDomain(t *testing.T) {
	d := Bibliography()
	yearTag, _ := d.LookupTag("year")
	lo, hi, ok := ValueDomain(d, yearTag)
	if !ok || lo != 1998 || hi != 2002 {
		t.Fatalf("ValueDomain(year) = %d..%d, %v", lo, hi, ok)
	}
	nameTag, _ := d.LookupTag("name")
	if _, _, ok := ValueDomain(d, nameTag); ok {
		t.Fatal("ValueDomain(name) reported values")
	}
}

func TestValueTags(t *testing.T) {
	d := Bibliography()
	got := ValueTags(d, 1)
	yearTag, _ := d.LookupTag("year")
	if len(got) != 1 || got[0] != yearTag {
		t.Fatalf("ValueTags = %v, want [%d]", got, yearTag)
	}
	if got := ValueTags(d, 100); len(got) != 0 {
		t.Fatalf("ValueTags(minCount=100) = %v", got)
	}
}

// randomDoc builds a random tree with n nodes for property tests.
func randomDoc(rng *rand.Rand, n int) *Document {
	tags := []string{"a", "b", "c", "d", "e"}
	d := NewDocument("root")
	for d.Len() < n {
		parent := NodeID(rng.Intn(d.Len()))
		tag := tags[rng.Intn(len(tags))]
		if rng.Intn(4) == 0 {
			d.AddValueChild(parent, tag, int64(rng.Intn(1000)))
		} else {
			d.AddChild(parent, tag)
		}
	}
	return d
}

func TestRandomDocInvariants(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%200 + 1
		d := randomDoc(rng, n)
		if err := d.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		// Sum of tag histogram equals node count.
		total := 0
		for _, c := range d.TagHistogram() {
			total += c
		}
		if total != d.Len() {
			return false
		}
		// Every node's PathTags ends with its own tag and has length Depth+1.
		for i := 0; i < d.Len(); i++ {
			id := NodeID(i)
			pt := d.PathTags(id)
			if len(pt) != d.Depth(id)+1 || pt[len(pt)-1] != d.Node(id).Tag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDocSerializeRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 80)
		var buf bytes.Buffer
		if err := Serialize(&buf, d); err != nil {
			return false
		}
		d2, err := Parse(&buf)
		if err != nil {
			t.Logf("reparse: %v", err)
			return false
		}
		if d2.Len() != d.Len() {
			return false
		}
		return reflect.DeepEqual(d.TagHistogram(), d2.TagHistogram())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedTags(t *testing.T) {
	d := NewDocument("z")
	d.Intern("m")
	d.Intern("a")
	got := d.SortedTags()
	if !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("SortedTags = %v", got)
	}
}

func TestSerializeEmptyAttr(t *testing.T) {
	d, err := ParseString(`<a name="x"><b/></a>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := Serialize(&buf, d); err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	if !strings.Contains(buf.String(), `name=""`) {
		t.Fatalf("expected empty attr in output:\n%s", buf.String())
	}
}

// Package xmltree provides the XML data model used throughout the library.
//
// Following the paper's preliminaries (Section 2), an XML document is modeled
// as a tree T(V, E) where each node corresponds to an element (we fold
// attributes into elements, as the paper's synopsis model treats them
// uniformly) and an edge represents containment. Leaf elements may carry an
// integer value; the paper's value predicates are ranges over integers.
//
// Documents are stored in a flat arena: node identity is an int32 index into
// Document.Nodes, parents and children are index links, and tags are interned
// into small integer TagIDs. This keeps a 100k-element document within a few
// megabytes and makes synopsis construction (which partitions elements into
// extents of node IDs) cheap.
package xmltree

package xmltree

import "fmt"

// NewStubDocument builds a single-element document carrying a prescribed
// tag table: tags[i] is interned with TagID i, and the lone root element
// carries rootTag. Standalone synopsis loading (internal/catalog) uses
// stubs to satisfy the estimator's two remaining document needs — label
// lookup (LookupTag) and the root element (Root) — without materializing
// the original tree. A stub is not a valid estimation target itself: it
// has one element and no values.
func NewStubDocument(tags []string, rootTag TagID) (*Document, error) {
	if len(tags) == 0 {
		return nil, fmt.Errorf("xmltree: stub document needs at least one tag")
	}
	if rootTag < 0 || int(rootTag) >= len(tags) {
		return nil, fmt.Errorf("xmltree: stub root tag %d outside table of %d tags", rootTag, len(tags))
	}
	d := &Document{tagIndex: make(map[string]TagID, len(tags))}
	for i, t := range tags {
		if _, dup := d.tagIndex[t]; dup {
			return nil, fmt.Errorf("xmltree: duplicate tag %q in stub tag table", t)
		}
		d.tags = append(d.tags, t)
		d.tagIndex[t] = TagID(i)
	}
	d.Nodes = append(d.Nodes, Node{Parent: NilNode, Tag: rootTag})
	return d, nil
}

package graphsyn

import (
	"fmt"
	"sort"

	"xsketch/internal/xmltree"
)

// NodeID identifies a synopsis node.
type NodeID int32

// Edge connects two synopsis nodes and carries the stability flags plus the
// build-time statistics used to derive them.
type Edge struct {
	From, To NodeID
	// ChildCount is the number of elements of To whose parent lies in From.
	// (On tree data every element has one parent, so this equals the number
	// of document edges represented by this synopsis edge.)
	ChildCount int
	// ParentCount is the number of elements of From with at least one child
	// in To.
	ParentCount int
	// BStable: every element of To has its parent in From.
	BStable bool
	// FStable: every element of From has at least one child in To.
	FStable bool
}

// Node is one synopsis node: a set of same-tag elements.
type Node struct {
	ID  NodeID
	Tag xmltree.TagID
	// Extent lists the member elements in ascending order. Extents are
	// treated as immutable: splits build new slices, so clones may share
	// them. Detached nodes (FromDetached) have a nil extent and carry only
	// the stored count.
	Extent []xmltree.NodeID
	// Children and Parents list neighbor node IDs in ascending order.
	Children []NodeID
	Parents  []NodeID
	// storedCount is the extent size of a detached node; 0 when the node
	// has a live extent.
	storedCount int
}

// Count returns the extent size |u|.
func (n *Node) Count() int {
	if n.Extent == nil {
		return n.storedCount
	}
	return len(n.Extent)
}

// Synopsis is a graph synopsis over a document. A detached synopsis
// (FromDetached) holds a stub document and per-node counts instead of
// extents; it supports every estimation read but no repartitioning.
type Synopsis struct {
	Doc   *xmltree.Document
	nodes []*Node
	// assign maps each element to its synopsis node.
	assign []NodeID
	edges  map[[2]NodeID]*Edge
	// detached marks a synopsis reconstructed from the standalone stored
	// form (no extents, stub document).
	detached bool
}

// LabelSplit builds the coarsest synopsis: one node per distinct tag (the
// paper's label split graph S0(G)).
func LabelSplit(d *xmltree.Document) *Synopsis {
	s := &Synopsis{
		Doc:    d,
		assign: make([]NodeID, d.Len()),
		edges:  map[[2]NodeID]*Edge{},
	}
	byTag := make(map[xmltree.TagID]NodeID)
	for i := 0; i < d.Len(); i++ {
		tag := d.Node(xmltree.NodeID(i)).Tag
		id, ok := byTag[tag]
		if !ok {
			id = NodeID(len(s.nodes))
			s.nodes = append(s.nodes, &Node{ID: id, Tag: tag})
			byTag[tag] = id
		}
		s.assign[i] = id
		n := s.nodes[id]
		n.Extent = append(n.Extent, xmltree.NodeID(i))
	}
	s.RecomputeEdges()
	return s
}

// FromAssignment reconstructs a synopsis from an element-to-node
// assignment (the inverse of the Split history), used when loading a
// persisted synopsis. Node IDs are taken from the assignment; they must
// form a contiguous range starting at 0 and every node must hold elements
// of a single tag.
func FromAssignment(d *xmltree.Document, assign []NodeID) (*Synopsis, error) {
	if len(assign) != d.Len() {
		return nil, fmt.Errorf("graphsyn: assignment covers %d of %d elements", len(assign), d.Len())
	}
	maxID := NodeID(-1)
	for _, id := range assign {
		if id < 0 {
			return nil, fmt.Errorf("graphsyn: negative node id %d", id)
		}
		if id > maxID {
			maxID = id
		}
	}
	s := &Synopsis{
		Doc:    d,
		nodes:  make([]*Node, maxID+1),
		assign: append([]NodeID(nil), assign...),
		edges:  map[[2]NodeID]*Edge{},
	}
	for i, id := range assign {
		n := s.nodes[id]
		e := xmltree.NodeID(i)
		if n == nil {
			n = &Node{ID: id, Tag: d.Node(e).Tag}
			s.nodes[id] = n
		} else if n.Tag != d.Node(e).Tag {
			return nil, fmt.Errorf("graphsyn: node %d mixes tags %d and %d", id, n.Tag, d.Node(e).Tag)
		}
		n.Extent = append(n.Extent, e)
	}
	for id, n := range s.nodes {
		if n == nil {
			return nil, fmt.Errorf("graphsyn: node id %d unused (non-contiguous assignment)", id)
		}
	}
	s.RecomputeEdges()
	return s, nil
}

// Assignment returns a copy of the element-to-node assignment.
func (s *Synopsis) Assignment() []NodeID {
	return append([]NodeID(nil), s.assign...)
}

// Nodes returns the synopsis nodes in ID order. The slice must not be
// modified.
func (s *Synopsis) Nodes() []*Node { return s.nodes }

// NumNodes returns the number of synopsis nodes.
func (s *Synopsis) NumNodes() int { return len(s.nodes) }

// Node returns the node with the given ID.
func (s *Synopsis) Node(id NodeID) *Node { return s.nodes[id] }

// NodeOf returns the synopsis node containing element e.
func (s *Synopsis) NodeOf(e xmltree.NodeID) NodeID { return s.assign[e] }

// Edge returns the edge from u to v, or nil when absent.
func (s *Synopsis) Edge(u, v NodeID) *Edge { return s.edges[[2]NodeID{u, v}] }

// Edges returns all edges in deterministic (From, To) order.
func (s *Synopsis) Edges() []*Edge {
	out := make([]*Edge, 0, len(s.edges))
	for _, e := range s.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumEdges returns the number of synopsis edges.
func (s *Synopsis) NumEdges() int { return len(s.edges) }

// NodesByTag returns the IDs of all nodes carrying tag, ascending.
func (s *Synopsis) NodesByTag(tag xmltree.TagID) []NodeID {
	var out []NodeID
	for _, n := range s.nodes {
		if n.Tag == tag {
			out = append(out, n.ID)
		}
	}
	return out
}

// RecomputeEdges rebuilds the edge set, adjacency lists, counts and
// stability flags from the current assignment. It runs in O(|document| +
// |edges|) and is called after any repartitioning.
func (s *Synopsis) RecomputeEdges() {
	if s.detached {
		panic("graphsyn: cannot recompute edges of a detached synopsis (loaded without its document)")
	}
	d := s.Doc
	s.edges = make(map[[2]NodeID]*Edge, len(s.edges))
	// Child counts: one pass over document edges.
	for i := 0; i < d.Len(); i++ {
		p := d.Node(xmltree.NodeID(i)).Parent
		if p == xmltree.NilNode {
			continue
		}
		key := [2]NodeID{s.assign[p], s.assign[i]}
		e := s.edges[key]
		if e == nil {
			e = &Edge{From: key[0], To: key[1]}
			s.edges[key] = e
		}
		e.ChildCount++
	}
	// Parent counts: for each element, the set of distinct child nodes.
	var childNodes []NodeID
	for i := 0; i < d.Len(); i++ {
		n := d.Node(xmltree.NodeID(i))
		if len(n.Children) == 0 {
			continue
		}
		childNodes = childNodes[:0]
		for _, c := range n.Children {
			childNodes = append(childNodes, s.assign[c])
		}
		sortNodeIDs(childNodes)
		prev := NodeID(-1)
		for _, v := range childNodes {
			if v == prev {
				continue
			}
			prev = v
			s.edges[[2]NodeID{s.assign[i], v}].ParentCount++
		}
	}
	// Stability flags and adjacency lists.
	for _, n := range s.nodes {
		n.Children = n.Children[:0]
		n.Parents = n.Parents[:0]
	}
	for _, e := range s.edges {
		e.BStable = e.ChildCount == s.nodes[e.To].Count()
		e.FStable = e.ParentCount == s.nodes[e.From].Count()
		//lint:allow maporder adjacency lists are sorted by sortNodeIDs immediately below
		s.nodes[e.From].Children = append(s.nodes[e.From].Children, e.To)
		//lint:allow maporder adjacency lists are sorted by sortNodeIDs immediately below
		s.nodes[e.To].Parents = append(s.nodes[e.To].Parents, e.From)
	}
	for _, n := range s.nodes {
		sortNodeIDs(n.Children)
		sortNodeIDs(n.Parents)
	}
}

// Split partitions node v into two nodes: elements satisfying pred stay in
// v (with a fresh extent), the rest move to a new node whose ID is
// returned. It returns (newID, true) on success, or (0, false) when the
// predicate does not actually split the extent (all or none satisfy it), in
// which case the synopsis is unchanged. Edges are recomputed.
func (s *Synopsis) Split(v NodeID, pred func(e xmltree.NodeID) bool) (NodeID, bool) {
	if s.detached {
		panic("graphsyn: cannot split a detached synopsis (loaded without its document)")
	}
	old := s.nodes[v]
	var keep, move []xmltree.NodeID
	for _, e := range old.Extent {
		if pred(e) {
			keep = append(keep, e)
		} else {
			move = append(move, e)
		}
	}
	if len(keep) == 0 || len(move) == 0 {
		return 0, false
	}
	newID := NodeID(len(s.nodes))
	s.nodes = append(s.nodes, &Node{ID: newID, Tag: old.Tag, Extent: move})
	old.Extent = keep
	for _, e := range move {
		s.assign[e] = newID
	}
	s.RecomputeEdges()
	return newID, true
}

// BStabilize splits node v so that the edge u -> v becomes backward-stable:
// elements of v whose parent lies in u remain in v, the rest move to a new
// node. Returns the new node's ID and whether a split occurred.
func (s *Synopsis) BStabilize(u, v NodeID) (NodeID, bool) {
	d := s.Doc
	return s.Split(v, func(e xmltree.NodeID) bool {
		p := d.Node(e).Parent
		return p != xmltree.NilNode && s.assign[p] == u
	})
}

// FStabilize splits node u so that the edge u -> v becomes forward-stable:
// elements of u with at least one child in v remain in u, the rest move to
// a new node. Returns the new node's ID and whether a split occurred.
func (s *Synopsis) FStabilize(u, v NodeID) (NodeID, bool) {
	d := s.Doc
	return s.Split(u, func(e xmltree.NodeID) bool {
		for _, c := range d.Node(e).Children {
			if s.assign[c] == v {
				return true
			}
		}
		return false
	})
}

// Clone returns a deep copy sharing the document and extent backing arrays
// (extents are immutable by convention).
func (s *Synopsis) Clone() *Synopsis {
	c := &Synopsis{
		Doc:      s.Doc,
		detached: s.detached,
		nodes:    make([]*Node, len(s.nodes)),
		assign:   make([]NodeID, len(s.assign)),
		edges:    make(map[[2]NodeID]*Edge, len(s.edges)),
	}
	copy(c.assign, s.assign)
	for i, n := range s.nodes {
		cn := *n
		cn.Children = append([]NodeID(nil), n.Children...)
		cn.Parents = append([]NodeID(nil), n.Parents...)
		c.nodes[i] = &cn
	}
	for k, e := range s.edges {
		ce := *e
		c.edges[k] = &ce
	}
	return c
}

// Validate checks the synopsis invariants: the extents partition the
// document, tags are uniform within nodes, the assignment is consistent
// with extents, and edge counts/stabilities match a recomputation.
func (s *Synopsis) Validate() error {
	if s.detached {
		return s.validateDetached()
	}
	seen := make([]bool, s.Doc.Len())
	total := 0
	for _, n := range s.nodes {
		if n.Count() == 0 {
			return fmt.Errorf("graphsyn: node %d has empty extent", n.ID)
		}
		for _, e := range n.Extent {
			if seen[e] {
				return fmt.Errorf("graphsyn: element %d in two extents", e)
			}
			seen[e] = true
			total++
			if s.Doc.Node(e).Tag != n.Tag {
				return fmt.Errorf("graphsyn: node %d mixes tags", n.ID)
			}
			if s.assign[e] != n.ID {
				return fmt.Errorf("graphsyn: element %d assigned to %d but in extent of %d", e, s.assign[e], n.ID)
			}
		}
	}
	if total != s.Doc.Len() {
		return fmt.Errorf("graphsyn: extents cover %d of %d elements", total, s.Doc.Len())
	}
	// Cross-check edges by recomputing on a clone.
	c := s.Clone()
	c.RecomputeEdges()
	if len(c.edges) != len(s.edges) {
		return fmt.Errorf("graphsyn: edge set stale: %d vs recomputed %d", len(s.edges), len(c.edges))
	}
	for k, e := range s.edges {
		ce := c.edges[k]
		if ce == nil {
			//lint:allow maporder any stale edge fails validation; which one the error names is diagnostic only
			return fmt.Errorf("graphsyn: stale edge %v", k)
		}
		if *ce != *e {
			//lint:allow maporder any stale edge fails validation; which one the error names is diagnostic only
			return fmt.Errorf("graphsyn: edge %v stale: %+v vs recomputed %+v", k, e, ce)
		}
	}
	return nil
}

// String renders a compact description for diagnostics.
func (s *Synopsis) String() string {
	if s.detached {
		total := 0
		for _, n := range s.nodes {
			total += n.Count()
		}
		return fmt.Sprintf("synopsis{%d nodes, %d edges over %d elements, detached}", len(s.nodes), len(s.edges), total)
	}
	return fmt.Sprintf("synopsis{%d nodes, %d edges over %d elements}", len(s.nodes), len(s.edges), s.Doc.Len())
}

func sortNodeIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Package graphsyn implements the generic graph-synopsis model underlying
// XSKETCHes (paper Section 3.1): a partition of document elements into
// synopsis nodes of equal tag, with edges between nodes whose extents are
// linked by document edges, annotated with backward/forward stability.
//
// An edge u -> v is Backward-stable when every element of extent(v) has its
// parent in extent(u), and Forward-stable when every element of extent(u)
// has at least one child in extent(v).
//
// The synopsis keeps the full element-to-node assignment so construction
// refinements (node splits) and distribution computations can consult
// extents; the *stored* summary that the size model charges for consists
// only of node tags, extent counts and per-edge stability bits, as in the
// paper.
package graphsyn

package graphsyn

// SizeModel assigns a storage cost in bytes to the stored form of a
// synopsis. The stored structural summary consists of, per node, its tag
// reference and extent count and, per edge, a target reference plus the two
// stability bits; extents and the element assignment exist only at build
// time and are never charged, matching the paper's accounting where the
// coarsest XMark synopsis is ~12KB for a 103k-element document.
type SizeModel struct {
	// NodeBytes is the stored cost of one synopsis node (tag + count).
	NodeBytes int
	// EdgeBytes is the stored cost of one synopsis edge (target reference +
	// stability flags).
	EdgeBytes int
	// BucketDimBytes is the per-dimension cost of a histogram bucket
	// coordinate, and BucketFreqBytes the cost of its frequency, used by the
	// histogram packages through this shared model.
	BucketDimBytes  int
	BucketFreqBytes int
}

// DefaultSizeModel mirrors a plausible packed representation: 6-byte nodes
// (2-byte tag, 4-byte count), 5-byte edges (4-byte target + flag byte),
// 4-byte bucket coordinates and frequencies.
func DefaultSizeModel() SizeModel {
	return SizeModel{NodeBytes: 6, EdgeBytes: 5, BucketDimBytes: 4, BucketFreqBytes: 4}
}

// StructureBytes returns the stored size of the structural summary (nodes +
// edges) under the model.
func (m SizeModel) StructureBytes(s *Synopsis) int {
	return len(s.nodes)*m.NodeBytes + len(s.edges)*m.EdgeBytes
}

// BucketBytes returns the stored size of one histogram bucket with the
// given dimensionality.
func (m SizeModel) BucketBytes(dims int) int {
	return dims*m.BucketDimBytes + m.BucketFreqBytes
}

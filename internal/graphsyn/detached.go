package graphsyn

import (
	"fmt"

	"xsketch/internal/xmltree"
)

// Detached synopses: graph summaries reconstructed from a standalone
// stored form (internal/catalog) with no document behind them. A detached
// synopsis carries per-node extent *counts* instead of extents, so every
// estimation read — Count, Edge, TSN, adjacency — behaves exactly as on
// the original synopsis, while repartitioning operations (Split,
// RecomputeEdges) are unavailable: they need element-level data that was
// deliberately left out of the stored form.

// DetachedNodeSpec describes one node of a detached synopsis.
type DetachedNodeSpec struct {
	// Tag is the node's tag in the stub document's tag table.
	Tag xmltree.TagID
	// Count is the extent size |u| of the original node.
	Count int
}

// DetachedEdgeSpec describes one edge of a detached synopsis. Stability
// flags are not part of the spec: they are derived from the counts exactly
// as RecomputeEdges derives them, so a stored synopsis can never carry
// flags inconsistent with its own counts.
type DetachedEdgeSpec struct {
	From, To NodeID
	// ChildCount is the number of elements of To whose parent lies in From.
	ChildCount int
	// ParentCount is the number of elements of From with >= 1 child in To.
	ParentCount int
}

// FromDetached reconstructs a synopsis from its stored structural form:
// a stub document carrying the tag table (see xmltree.NewStubDocument),
// the synopsis node containing the document root, and flat node/edge
// specs. The result is read-only in the repartitioning sense — Split and
// RecomputeEdges panic — but fully supports estimation.
func FromDetached(doc *xmltree.Document, root NodeID, nodes []DetachedNodeSpec, edges []DetachedEdgeSpec) (*Synopsis, error) {
	if doc == nil {
		return nil, fmt.Errorf("graphsyn: detached synopsis needs a stub document")
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("graphsyn: detached synopsis has no nodes")
	}
	if root < 0 || int(root) >= len(nodes) {
		return nil, fmt.Errorf("graphsyn: root node %d outside %d nodes", root, len(nodes))
	}
	s := &Synopsis{
		Doc:      doc,
		detached: true,
		nodes:    make([]*Node, len(nodes)),
		// The stub document has exactly one element, the root; its
		// assignment makes NodeOf(doc.Root()) resolve to the root node.
		assign: []NodeID{root},
		edges:  make(map[[2]NodeID]*Edge, len(edges)),
	}
	for i, spec := range nodes {
		if spec.Count <= 0 {
			return nil, fmt.Errorf("graphsyn: detached node %d has non-positive count %d", i, spec.Count)
		}
		if spec.Tag < 0 || int(spec.Tag) >= doc.TagCount() {
			return nil, fmt.Errorf("graphsyn: detached node %d tag %d outside table of %d tags", i, spec.Tag, doc.TagCount())
		}
		s.nodes[i] = &Node{ID: NodeID(i), Tag: spec.Tag, storedCount: spec.Count}
	}
	if s.nodes[root].Tag != doc.Node(doc.Root()).Tag {
		return nil, fmt.Errorf("graphsyn: root node tag %d disagrees with stub root tag %d",
			s.nodes[root].Tag, doc.Node(doc.Root()).Tag)
	}
	for i, e := range edges {
		if e.From < 0 || int(e.From) >= len(nodes) || e.To < 0 || int(e.To) >= len(nodes) {
			return nil, fmt.Errorf("graphsyn: detached edge %d (%d->%d) references missing node", i, e.From, e.To)
		}
		key := [2]NodeID{e.From, e.To}
		if _, dup := s.edges[key]; dup {
			return nil, fmt.Errorf("graphsyn: duplicate detached edge %d->%d", e.From, e.To)
		}
		cf, ct := s.nodes[e.From].Count(), s.nodes[e.To].Count()
		if e.ChildCount < 1 || e.ChildCount > ct {
			return nil, fmt.Errorf("graphsyn: detached edge %d->%d child count %d outside [1, %d]", e.From, e.To, e.ChildCount, ct)
		}
		if e.ParentCount < 1 || e.ParentCount > cf {
			return nil, fmt.Errorf("graphsyn: detached edge %d->%d parent count %d outside [1, %d]", e.From, e.To, e.ParentCount, cf)
		}
		s.edges[key] = &Edge{
			From:        e.From,
			To:          e.To,
			ChildCount:  e.ChildCount,
			ParentCount: e.ParentCount,
			// Stability derived exactly as RecomputeEdges derives it.
			BStable: e.ChildCount == ct,
			FStable: e.ParentCount == cf,
		}
		s.nodes[e.From].Children = append(s.nodes[e.From].Children, e.To)
		s.nodes[e.To].Parents = append(s.nodes[e.To].Parents, e.From)
	}
	for _, n := range s.nodes {
		sortNodeIDs(n.Children)
		sortNodeIDs(n.Parents)
	}
	return s, nil
}

// Detached reports whether the synopsis was reconstructed from a
// standalone stored form and therefore has no extents or document tree
// behind it.
func (s *Synopsis) Detached() bool { return s.detached }

// validateDetached is the detached half of Validate: with no document to
// cross-check against, it verifies internal consistency — positive counts,
// edge endpoints, count bounds and stability flags agreeing with the
// counts they are derived from.
func (s *Synopsis) validateDetached() error {
	for i, n := range s.nodes {
		if n == nil {
			return fmt.Errorf("graphsyn: detached node %d missing", i)
		}
		if n.ID != NodeID(i) {
			return fmt.Errorf("graphsyn: detached node %d carries ID %d", i, n.ID)
		}
		if n.Count() <= 0 {
			return fmt.Errorf("graphsyn: detached node %d has non-positive count", i)
		}
	}
	for k, e := range s.edges {
		if k[0] != e.From || k[1] != e.To {
			//lint:allow maporder any inconsistent edge fails validation; which one the error names is diagnostic only
			return fmt.Errorf("graphsyn: detached edge key %v holds edge %d->%d", k, e.From, e.To)
		}
		if e.From < 0 || int(e.From) >= len(s.nodes) || e.To < 0 || int(e.To) >= len(s.nodes) {
			//lint:allow maporder any inconsistent edge fails validation; which one the error names is diagnostic only
			return fmt.Errorf("graphsyn: detached edge %d->%d references missing node", e.From, e.To)
		}
		cf, ct := s.nodes[e.From].Count(), s.nodes[e.To].Count()
		if e.ChildCount < 1 || e.ChildCount > ct || e.ParentCount < 1 || e.ParentCount > cf {
			//lint:allow maporder any inconsistent edge fails validation; which one the error names is diagnostic only
			return fmt.Errorf("graphsyn: detached edge %d->%d counts (%d, %d) out of range", e.From, e.To, e.ChildCount, e.ParentCount)
		}
		if e.BStable != (e.ChildCount == ct) || e.FStable != (e.ParentCount == cf) {
			//lint:allow maporder any inconsistent edge fails validation; which one the error names is diagnostic only
			return fmt.Errorf("graphsyn: detached edge %d->%d stability flags disagree with counts", e.From, e.To)
		}
	}
	return nil
}

package graphsyn

// This file implements the twig stable neighborhood (paper Section 3.2):
// TSN(n) is the set of synopsis nodes that either (a) reach n through a
// backward-stable path (including n itself), or (b) are reached from any
// node in (a) through a forward-stable path of length 1. Every element of n
// is contained in a document twig covering elements from all nodes of
// TSN(n), which is why edge distributions are restricted to counts between
// TSN members.

// TSN returns the twig stable neighborhood of n as two sets:
//
//   - anc: the nodes reaching n through a B-stable path, including n
//     itself, in ascending ID order. On tree data the B-stable ancestors of
//     a node form a chain (each element has one parent), returned from n
//     upward.
//   - fstable: for each node a in anc, the IDs of nodes reached from a by a
//     single F-stable edge, ascending.
//
// The full TSN node set is the union of anc and all fstable lists.
func (s *Synopsis) TSN(n NodeID) (anc []NodeID, fstable map[NodeID][]NodeID) {
	anc = s.BStableAncestors(n)
	fstable = make(map[NodeID][]NodeID, len(anc))
	for _, a := range anc {
		var fs []NodeID
		for _, c := range s.nodes[a].Children {
			if e := s.Edge(a, c); e != nil && e.FStable {
				fs = append(fs, c)
			}
		}
		fstable[a] = fs
	}
	return anc, fstable
}

// BStableAncestors returns the chain n = a0, a1, a2, ... where each a(i+1)
// is a parent node of a(i) connected by a B-stable edge. On tree-structured
// data the chain is unique: a B-stable edge u -> v means every element of v
// has its (single) parent in u, so at most one parent edge of v can be
// B-stable. The walk stops when no B-stable parent edge exists or when a
// cycle would form (possible in recursive schemas).
func (s *Synopsis) BStableAncestors(n NodeID) []NodeID {
	chain := []NodeID{n}
	visited := map[NodeID]bool{n: true}
	cur := n
	for {
		next := NodeID(-1)
		for _, p := range s.nodes[cur].Parents {
			if e := s.Edge(p, cur); e != nil && e.BStable {
				next = p
				break
			}
		}
		if next < 0 || visited[next] {
			break
		}
		chain = append(chain, next)
		visited[next] = true
		cur = next
	}
	return chain
}

// InTSN reports whether the edge u -> v lies entirely within TSN(n): u must
// be n or a B-stable ancestor of n, and v a child of u (for forward counts
// on n itself or F-stable reach from an ancestor) such that the edge exists.
// Per Definition 3.1, histogram count dimensions must satisfy this.
func (s *Synopsis) InTSN(n, u, v NodeID) bool {
	if s.Edge(u, v) == nil {
		return false
	}
	anc, fstable := s.TSN(n)
	for _, a := range anc {
		if a != u {
			continue
		}
		if u == n {
			// Forward counts from n itself may target any child of n.
			return true
		}
		// Edges from a strict B-stable ancestor must be F-stable (or lead
		// back down the B-stable chain toward n) to be provably present for
		// every element of n.
		for _, f := range fstable[a] {
			if f == v {
				return true
			}
		}
		// The edge down the chain itself (a -> previous chain node) is
		// B-stable and also in the neighborhood.
		for i := 1; i < len(anc); i++ {
			if anc[i] == a && anc[i-1] == v {
				return true
			}
		}
	}
	return false
}

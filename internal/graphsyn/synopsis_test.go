package graphsyn

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xsketch/internal/xmltree"
)

// bibSynopsis returns the label-split synopsis of the Figure-1 document,
// which is exactly the paper's Figure 3(a)/(b).
func bibSynopsis(t *testing.T) (*xmltree.Document, *Synopsis) {
	t.Helper()
	d := xmltree.Bibliography()
	s := LabelSplit(d)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d, s
}

func nodeByTag(t *testing.T, d *xmltree.Document, s *Synopsis, tag string) *Node {
	t.Helper()
	id, ok := d.LookupTag(tag)
	if !ok {
		t.Fatalf("unknown tag %q", tag)
	}
	ids := s.NodesByTag(id)
	if len(ids) != 1 {
		t.Fatalf("tag %q maps to %d nodes", tag, len(ids))
	}
	return s.Node(ids[0])
}

func TestLabelSplitCounts(t *testing.T) {
	d, s := bibSynopsis(t)
	if s.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", s.NumNodes())
	}
	want := map[string]int{"bib": 1, "author": 3, "name": 3, "paper": 4, "book": 1, "title": 5, "year": 4, "keyword": 5}
	for tag, count := range want {
		n := nodeByTag(t, d, s, tag)
		if n.Count() != count {
			t.Errorf("|%s| = %d, want %d", tag, n.Count(), count)
		}
	}
}

func TestFigure3Stabilities(t *testing.T) {
	d, s := bibSynopsis(t)
	A := nodeByTag(t, d, s, "author")
	P := nodeByTag(t, d, s, "paper")
	B := nodeByTag(t, d, s, "book")
	N := nodeByTag(t, d, s, "name")
	T := nodeByTag(t, d, s, "title")
	Y := nodeByTag(t, d, s, "year")
	K := nodeByTag(t, d, s, "keyword")

	// The paper: edge A -> P is both backward and forward stable (all
	// papers have an author parent, all authors have a paper child).
	ap := s.Edge(A.ID, P.ID)
	if ap == nil || !ap.BStable || !ap.FStable {
		t.Fatalf("A->P = %+v, want B+F stable", ap)
	}
	// A -> N: every author has a name and every name an author parent.
	an := s.Edge(A.ID, N.ID)
	if an == nil || !an.BStable || !an.FStable {
		t.Fatalf("A->N = %+v", an)
	}
	// A -> B: only one author has a book: B-stable but not F-stable.
	ab := s.Edge(A.ID, B.ID)
	if ab == nil || !ab.BStable || ab.FStable {
		t.Fatalf("A->B = %+v, want B-stable only", ab)
	}
	// P -> T: every paper has a title; T also has book parents, so the
	// edge is F-stable but NOT B-stable.
	pt := s.Edge(P.ID, T.ID)
	if pt == nil || pt.BStable || !pt.FStable {
		t.Fatalf("P->T = %+v, want F-stable only", pt)
	}
	// B -> T: F-stable (every book has a title), not B-stable.
	bt := s.Edge(B.ID, T.ID)
	if bt == nil || bt.BStable || !bt.FStable {
		t.Fatalf("B->T = %+v, want F-stable only", bt)
	}
	// P -> Y and P -> K: B+F stable.
	for _, to := range []*Node{Y, K} {
		e := s.Edge(P.ID, to.ID)
		if e == nil || !e.BStable || !e.FStable {
			t.Fatalf("P->%s = %+v, want B+F stable", d.Tag(to.Tag), e)
		}
	}
	// No edge between unrelated nodes.
	if s.Edge(N.ID, K.ID) != nil {
		t.Fatal("spurious edge N->K")
	}
}

func TestEdgeCounts(t *testing.T) {
	d, s := bibSynopsis(t)
	A := nodeByTag(t, d, s, "author")
	P := nodeByTag(t, d, s, "paper")
	T := nodeByTag(t, d, s, "title")
	ap := s.Edge(A.ID, P.ID)
	if ap.ChildCount != 4 || ap.ParentCount != 3 {
		t.Fatalf("A->P counts = %+v", ap)
	}
	pt := s.Edge(P.ID, T.ID)
	if pt.ChildCount != 4 || pt.ParentCount != 4 {
		t.Fatalf("P->T counts = %+v", pt)
	}
}

func TestAdjacencySorted(t *testing.T) {
	_, s := bibSynopsis(t)
	for _, n := range s.Nodes() {
		for i := 1; i < len(n.Children); i++ {
			if n.Children[i] <= n.Children[i-1] {
				t.Fatalf("node %d children unsorted: %v", n.ID, n.Children)
			}
		}
		for i := 1; i < len(n.Parents); i++ {
			if n.Parents[i] <= n.Parents[i-1] {
				t.Fatalf("node %d parents unsorted: %v", n.ID, n.Parents)
			}
		}
	}
}

func TestBStabilizeSplit(t *testing.T) {
	d, s := bibSynopsis(t)
	P := nodeByTag(t, d, s, "paper")
	T := nodeByTag(t, d, s, "title")
	// P -> T is not B-stable (book titles). B-stabilizing splits T into
	// paper-titles (4) and the book title (1).
	newID, ok := s.BStabilize(P.ID, T.ID)
	if !ok {
		t.Fatal("BStabilize did not split")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate after split: %v", err)
	}
	if T.Count() != 4 || s.Node(newID).Count() != 1 {
		t.Fatalf("split sizes = %d, %d", T.Count(), s.Node(newID).Count())
	}
	e := s.Edge(P.ID, T.ID)
	if e == nil || !e.BStable {
		t.Fatalf("P->T after split = %+v, want B-stable", e)
	}
	B := nodeByTag(t, d, s, "book")
	e2 := s.Edge(B.ID, newID)
	if e2 == nil || !e2.BStable || !e2.FStable {
		t.Fatalf("B->T' after split = %+v, want B+F stable", e2)
	}
	if s.Edge(B.ID, T.ID) != nil {
		t.Fatal("stale edge B->T survived the split")
	}
}

func TestFStabilizeSplit(t *testing.T) {
	d, s := bibSynopsis(t)
	A := nodeByTag(t, d, s, "author")
	B := nodeByTag(t, d, s, "book")
	// A -> B is not F-stable (only one author has a book). F-stabilizing
	// splits A into book-authors (1) and the rest (2).
	newID, ok := s.FStabilize(A.ID, B.ID)
	if !ok {
		t.Fatal("FStabilize did not split")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate after split: %v", err)
	}
	if A.Count() != 1 || s.Node(newID).Count() != 2 {
		t.Fatalf("split sizes = %d, %d", A.Count(), s.Node(newID).Count())
	}
	e := s.Edge(A.ID, B.ID)
	if e == nil || !e.FStable {
		t.Fatalf("A->B after split = %+v, want F-stable", e)
	}
	if s.Edge(newID, B.ID) != nil {
		t.Fatal("new author node still has a book edge")
	}
}

func TestSplitNoop(t *testing.T) {
	d, s := bibSynopsis(t)
	A := nodeByTag(t, d, s, "author")
	P := nodeByTag(t, d, s, "paper")
	// A -> P is already B-stable: splitting is a no-op.
	if _, ok := s.BStabilize(A.ID, P.ID); ok {
		t.Fatal("BStabilize split a stable edge")
	}
	if _, ok := s.FStabilize(A.ID, P.ID); ok {
		t.Fatal("FStabilize split a stable edge")
	}
	before := s.NumNodes()
	if _, ok := s.Split(A.ID, func(xmltree.NodeID) bool { return true }); ok {
		t.Fatal("degenerate split succeeded")
	}
	if s.NumNodes() != before {
		t.Fatal("node count changed on no-op split")
	}
}

func TestCloneIndependence(t *testing.T) {
	d, s := bibSynopsis(t)
	c := s.Clone()
	P := nodeByTag(t, d, s, "paper")
	T := nodeByTag(t, d, s, "title")
	if _, ok := c.BStabilize(P.ID, T.ID); !ok {
		t.Fatal("clone split failed")
	}
	// Original unchanged.
	if s.NumNodes() != 8 {
		t.Fatalf("original NumNodes = %d after clone split", s.NumNodes())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("original Validate: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	if e := s.Edge(P.ID, T.ID); e.BStable {
		t.Fatal("original edge mutated by clone split")
	}
}

func TestTSNBibliography(t *testing.T) {
	d, s := bibSynopsis(t)
	P := nodeByTag(t, d, s, "paper")
	A := nodeByTag(t, d, s, "author")
	R := nodeByTag(t, d, s, "bib")
	N := nodeByTag(t, d, s, "name")
	Y := nodeByTag(t, d, s, "year")
	K := nodeByTag(t, d, s, "keyword")
	B := nodeByTag(t, d, s, "book")
	T := nodeByTag(t, d, s, "title")

	anc, fstable := s.TSN(P.ID)
	// B-stable chain from P: P -> A -> bib (A->P B-stable, bib->A B-stable).
	wantChain := []NodeID{P.ID, A.ID, R.ID}
	if !reflect.DeepEqual(anc, wantChain) {
		t.Fatalf("anc = %v, want %v", anc, wantChain)
	}
	// F-stable length-1 from A: P and N (not B: not all authors have books).
	fsA := fstable[A.ID]
	if !containsID(fsA, P.ID) || !containsID(fsA, N.ID) || containsID(fsA, B.ID) {
		t.Fatalf("fstable[A] = %v", fsA)
	}
	// F-stable from P: T, Y, K.
	fsP := fstable[P.ID]
	for _, want := range []NodeID{T.ID, Y.ID, K.ID} {
		if !containsID(fsP, want) {
			t.Fatalf("fstable[P] = %v missing %d", fsP, want)
		}
	}

	// InTSN: the dimensions of the paper's Example 3.1 histogram
	// f_P(C_Y, C_K, C_P, C_N) must all be within TSN(P).
	for _, e := range [][2]NodeID{{P.ID, Y.ID}, {P.ID, K.ID}, {A.ID, P.ID}, {A.ID, N.ID}} {
		if !s.InTSN(P.ID, e[0], e[1]) {
			t.Errorf("InTSN(P, %d->%d) = false", e[0], e[1])
		}
	}
	// A -> B is not F-stable, so C_B would not be provable: not in TSN.
	if s.InTSN(P.ID, A.ID, B.ID) {
		t.Error("InTSN(P, A->B) = true, want false")
	}
	// Nonexistent edge.
	if s.InTSN(P.ID, N.ID, K.ID) {
		t.Error("InTSN on nonexistent edge")
	}
}

func TestTSNAfterUnstableSplit(t *testing.T) {
	d, s := bibSynopsis(t)
	T := nodeByTag(t, d, s, "title")
	// T has two parent nodes; neither P->T nor B->T is B-stable, so the
	// chain from T is just {T}.
	anc, _ := s.TSN(T.ID)
	if len(anc) != 1 || anc[0] != T.ID {
		t.Fatalf("anc(T) = %v", anc)
	}
}

func TestSizeModel(t *testing.T) {
	_, s := bibSynopsis(t)
	m := DefaultSizeModel()
	got := m.StructureBytes(s)
	want := 8*m.NodeBytes + s.NumEdges()*m.EdgeBytes
	if got != want {
		t.Fatalf("StructureBytes = %d, want %d", got, want)
	}
	if m.BucketBytes(3) != 3*m.BucketDimBytes+m.BucketFreqBytes {
		t.Fatalf("BucketBytes = %d", m.BucketBytes(3))
	}
}

func containsID(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// randomDoc builds a random tree for property tests.
func randomDoc(rng *rand.Rand, n int) *xmltree.Document {
	tags := []string{"a", "b", "c", "d"}
	d := xmltree.NewDocument("r")
	for d.Len() < n {
		parent := xmltree.NodeID(rng.Intn(d.Len()))
		d.AddChild(parent, tags[rng.Intn(len(tags))])
	}
	return d
}

func TestRandomSplitsPreserveInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 120)
		s := LabelSplit(d)
		for i := 0; i < 6; i++ {
			edges := s.Edges()
			if len(edges) == 0 {
				break
			}
			e := edges[rng.Intn(len(edges))]
			if rng.Intn(2) == 0 {
				s.BStabilize(e.From, e.To)
			} else {
				s.FStabilize(e.From, e.To)
			}
		}
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Extent sizes sum to document size.
		total := 0
		for _, n := range s.Nodes() {
			total += n.Count()
		}
		return total == d.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBStabilizeMakesEdgeStable(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDoc(rng, 100)
		s := LabelSplit(d)
		for _, e := range s.Edges() {
			if e.BStable {
				continue
			}
			if _, ok := s.BStabilize(e.From, e.To); ok {
				ne := s.Edge(e.From, e.To)
				if ne == nil || !ne.BStable {
					return false
				}
			}
			break
		}
		return s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromAssignmentRoundTrip(t *testing.T) {
	d := xmltree.Bibliography()
	s := LabelSplit(d)
	// Apply a split so the assignment is nontrivial.
	paperID, _ := d.LookupTag("paper")
	titleID, _ := d.LookupTag("title")
	s.BStabilize(s.NodesByTag(paperID)[0], s.NodesByTag(titleID)[0])
	assign := s.Assignment()
	s2, err := FromAssignment(d, assign)
	if err != nil {
		t.Fatalf("FromAssignment: %v", err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s2.NumNodes() != s.NumNodes() || s2.NumEdges() != s.NumEdges() {
		t.Fatalf("shape %d/%d vs %d/%d", s2.NumNodes(), s2.NumEdges(), s.NumNodes(), s.NumEdges())
	}
	for _, e := range s.Edges() {
		e2 := s2.Edge(e.From, e.To)
		if e2 == nil || *e2 != *e {
			t.Fatalf("edge %d->%d differs: %+v vs %+v", e.From, e.To, e, e2)
		}
	}
}

func TestFromAssignmentErrors(t *testing.T) {
	d := xmltree.Bibliography()
	// Wrong length.
	if _, err := FromAssignment(d, make([]NodeID, 3)); err == nil {
		t.Fatal("accepted short assignment")
	}
	// Negative id.
	bad := make([]NodeID, d.Len())
	bad[0] = -1
	if _, err := FromAssignment(d, bad); err == nil {
		t.Fatal("accepted negative id")
	}
	// Non-contiguous ids.
	gap := make([]NodeID, d.Len())
	gap[0] = 5
	if _, err := FromAssignment(d, gap); err == nil {
		t.Fatal("accepted non-contiguous ids")
	}
	// Mixed tags in one node.
	mixed := make([]NodeID, d.Len())
	if _, err := FromAssignment(d, mixed); err == nil {
		t.Fatal("accepted mixed-tag node")
	}
}

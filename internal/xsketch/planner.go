package xsketch

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"xsketch/internal/pathexpr"
	"xsketch/internal/plan"
	"xsketch/internal/twig"
)

// This file is the plan compiler: it freezes the query-shape-invariant
// work of EstimateQuery — maximal-twig expansion, embedding enumeration,
// TREEPARSE decomposition, predicate factors — into an executable
// plan.Program, and serves programs from a per-sketch LRU keyed by the
// query's canonical form (with whitespace-normalized text aliases, so
// equivalent spellings share one plan). Compiled execution performs only
// histogram lookups and float arithmetic into pooled scratch, is
// bit-identical to the interpreter, and allocates nothing on the cache-hit
// path (both asserted in planner_test.go).
//
// Invalidation rides on the estimator-cache generation (estcache.go):
// every program records the generation it was compiled under, every
// mutation advances the generation via InvalidateEstimatorCache, and both
// the cache lookups and EstimatePlanContext discard or recompile programs
// whose generation no longer matches. A stale plan can therefore never
// contribute a single term to an estimate.

// DefaultPlanCacheSize is the per-sketch compiled-plan LRU capacity when
// Config.PlanCacheSize is zero.
const DefaultPlanCacheSize = 256

// planHandle lazily creates the sketch's plan cache so the struct-literal
// constructors need no setup.
type planHandle struct {
	once  sync.Once
	cache *plan.Cache
}

// planCache returns the sketch's compiled-plan cache, or nil when
// Config.PlanCacheSize is negative (plan caching disabled).
func (sk *Sketch) planCache() *plan.Cache {
	if sk.Cfg.PlanCacheSize < 0 {
		return nil
	}
	sk.plans.once.Do(func() {
		size := sk.Cfg.PlanCacheSize
		if size == 0 {
			size = DefaultPlanCacheSize
		}
		//lint:allow sketchmutate lazy once-guarded cache construction; plans are generation-checked, not invalidated here
		sk.plans.cache = plan.NewCache(size)
	})
	return sk.plans.cache
}

// PlanCacheStats samples the sketch's plan-cache counters (zero when the
// cache is disabled). Safe to call concurrently with estimation.
func (sk *Sketch) PlanCacheStats() plan.Stats {
	if c := sk.planCache(); c != nil {
		return c.Stats()
	}
	return plan.Stats{}
}

// generation returns the sketch's current mutation epoch (see estcache.go).
func (sk *Sketch) generation() uint64 { return sk.est.gen.Load() }

// PlanQueryText returns a compiled plan for the query text, serving it
// from the plan cache when possible. The text is whitespace-normalized
// first, so any spelling of the same query shares one cached plan; only a
// cache miss pays for parsing and compilation.
func (sk *Sketch) PlanQueryText(text string) (*plan.Program, error) {
	gen := sk.generation()
	c := sk.planCache()
	var norm string
	if c != nil {
		norm = twig.NormalizeText(text)
		if p := c.Lookup(norm, gen); p != nil {
			return p, nil
		}
	}
	q, err := twig.Parse(text)
	if err != nil {
		return nil, err
	}
	return sk.planParsed(c, q, norm, gen), nil
}

// PlanQuery returns a compiled plan for a parsed query, serving it from
// the plan cache by canonical form when possible.
func (sk *Sketch) PlanQuery(q *twig.Query) *plan.Program {
	return sk.planParsed(sk.planCache(), q, "", sk.generation())
}

// planParsed resolves a parsed query against the cache by canonical form
// and compiles on a miss.
func (sk *Sketch) planParsed(c *plan.Cache, q *twig.Query, norm string, gen uint64) *plan.Program {
	canonical := q.String()
	if c != nil {
		if p := c.Promote(canonical, norm, gen); p != nil {
			return p
		}
	}
	p := sk.compileProgram(q, canonical, gen)
	if c != nil {
		c.Insert(p, norm)
	}
	return p
}

// EstimatePlan executes a compiled plan, recompiling first if the sketch
// mutated since compilation (so callers may hold plans across RebuildNode
// without ever seeing stale results).
func (sk *Sketch) EstimatePlan(p *plan.Program) EstimateResult {
	r, _ := sk.EstimatePlanContext(context.Background(), p)
	return r
}

// EstimatePlanContext is EstimatePlan with cooperative cancellation,
// checked before execution and between embeddings. On error the result is
// the zero value and must be discarded.
func (sk *Sketch) EstimatePlanContext(ctx context.Context, p *plan.Program) (EstimateResult, error) {
	if err := ctx.Err(); err != nil {
		return EstimateResult{}, err
	}
	if gen := sk.generation(); p.Generation != gen {
		// Stale: the sketch mutated after compilation. Recompile against
		// the current state (replacing the cache entry) instead of
		// executing against retired histograms.
		p = sk.planParsed(sk.planCache(), p.Query, "", gen)
	}
	v, truncated, err := p.EstimateContext(ctx)
	if err != nil {
		return EstimateResult{}, err
	}
	return EstimateResult{Estimate: v, Truncated: truncated}, nil
}

// EstimateQueryPlanned estimates a twig query through the compiled-plan
// path: the plan is compiled once per canonical query (per sketch
// generation) and reused from the plan cache afterwards. Results are
// bit-identical to EstimateQuery for any mix of planned and interpreted
// calls; the cache-hit path performs zero allocations.
func (sk *Sketch) EstimateQueryPlanned(text string) (EstimateResult, error) {
	return sk.EstimateQueryPlannedContext(context.Background(), text)
}

// EstimateQueryPlannedContext is EstimateQueryPlanned with cooperative
// cancellation (checked before planning and between embeddings).
func (sk *Sketch) EstimateQueryPlannedContext(ctx context.Context, text string) (EstimateResult, error) {
	if err := ctx.Err(); err != nil {
		return EstimateResult{}, err
	}
	p, err := sk.PlanQueryText(text)
	if err != nil {
		return EstimateResult{}, err
	}
	return sk.EstimatePlanContext(ctx, p)
}

// EstimateBatchPlanned runs a workload of parsed queries through the
// compiled-plan path on a worker pool, returning one result per query in
// input order; workers <= 0 selects GOMAXPROCS. Results are bit-identical
// to EstimateBatch for any worker count.
func (sk *Sketch) EstimateBatchPlanned(queries []*twig.Query, workers int) []EstimateResult {
	out, _ := sk.EstimateBatchPlannedContext(context.Background(), queries, workers)
	return out
}

// EstimateBatchPlannedContext is EstimateBatchPlanned under a context: the
// worker pool stops pulling queries once cancellation is observed and the
// call returns ctx.Err(), with untouched entries left at their zero value.
func (sk *Sketch) EstimateBatchPlannedContext(ctx context.Context, queries []*twig.Query, workers int) ([]EstimateResult, error) {
	out := make([]EstimateResult, len(queries))
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			r, err := sk.EstimatePlanContext(ctx, sk.PlanQuery(q))
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := sk.EstimatePlanContext(ctx, sk.PlanQuery(queries[i]))
				if err != nil {
					return
				}
				out[i] = r
			}
		}()
	}
feed:
	for i := range queries {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, ctx.Err()
}

// compileProgram compiles a query into an executable program against the
// current sketch state, tagged with the given generation. The compiler
// reuses the interpreter's own enumeration and term computations
// (EmbeddingsTruncated, newEstimator, valueFraction, existsFraction,
// avgCount), evaluating every constant in the interpreter's order, so the
// frozen constants are the bits the interpreter would produce.
func (sk *Sketch) compileProgram(q *twig.Query, canonical string, gen uint64) *plan.Program {
	ems, truncated := sk.EmbeddingsTruncated(q)
	p := &plan.Program{
		Canonical:  canonical,
		Query:      q,
		Generation: gen,
		Truncated:  truncated,
		Tags:       sk.internTags(q),
	}
	pc := &planCompiler{sk: sk, prog: p, env: map[ScopeEdge]int{}}
	for _, em := range ems {
		pc.est = newEstimator(sk, em)
		root := pc.node(em.Root, false)
		p.Embeddings = append(p.Embeddings, plan.Emb{
			Base: float64(sk.Syn.Node(em.Root.Syn).Count()),
			Root: root,
		})
	}
	p.Finalize()
	return p
}

// internTags resolves every distinct step label of the query (including
// branch predicates) to its document tag ID, sorted by label for
// deterministic plan rendering.
func (sk *Sketch) internTags(q *twig.Query) []plan.Tag {
	seen := map[string]int{}
	var steps func(ss []*pathexpr.Step)
	steps = func(ss []*pathexpr.Step) {
		for _, st := range ss {
			if _, ok := seen[st.Label]; !ok {
				id := -1
				if tag, ok := sk.Syn.Doc.LookupTag(st.Label); ok {
					id = int(tag)
				}
				seen[st.Label] = id
			}
			for _, br := range st.Branches {
				steps(br.Steps)
			}
		}
	}
	q.Walk(func(n, _ *twig.Node, _ int) {
		if n.Path != nil {
			steps(n.Path.Steps)
		}
	})
	labels := make([]string, 0, len(seen))
	for l := range seen {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	tags := make([]plan.Tag, len(labels))
	for i, l := range labels {
		tags[i] = plan.Tag{Label: l, ID: seen[l]}
	}
	return tags
}

// planCompiler compiles one embedding at a time. env is the compile-time
// image of the interpreter's runtime assignment map: it binds each scope
// edge expanded by an enumerating ancestor to the slot that will carry the
// bucket's coordinate at execution time, with lexical push/pop mirroring
// the per-bucket set/delete of the interpreter.
type planCompiler struct {
	sk   *Sketch
	est  *estimator
	prog *plan.Program
	env  map[ScopeEdge]int
}

// node compiles one embedding node, mirroring the interpreter's contrib
// (estimate.go) decision for decision: the same predicate factors in the
// same multiplication order, the same covered/uncovered split, the same
// needEnum criterion, and the same early zero cutoffs — except that
// everything depending only on (query shape, sketch state) is evaluated
// now and stored.
func (pc *planCompiler) node(n *EmbNode, skipSelfValue bool) *plan.Node {
	sk := pc.sk
	s := sk.Summaries[n.Syn]
	var scope []ScopeEdge
	var vdims []*ValueDim
	if s != nil && s.Hist != nil {
		scope = s.Scope
		vdims = s.ValueDims
	}

	var uses []plan.Use
	factor := 1.0
	if n.Value != nil && !skipSelfValue {
		if idx := valueDimIdx(s, n.Syn); idx >= 0 {
			uses = append(uses, plan.Use{Dim: idx, Overlap: vdims[idx-len(scope)], Pred: n.Value, CountDim: -1})
		} else {
			factor *= sk.valueFraction(n.Syn, n.Value)
		}
	}
	for _, br := range n.Branches {
		if u, ok := pc.est.branchValueUse(s, scope, vdims, n, br); ok {
			uses = append(uses, plan.Use{Dim: u.dim, Overlap: u.vd, Pred: u.pred, CountDim: u.countDim})
			continue
		}
		v, _ := pc.est.existsFraction(n.Syn, br.Steps)
		factor *= v
	}

	pn := &plan.Node{Syn: int(n.Syn), Index: pc.prog.NumNodes, Factor: factor, UncBase: 1}
	pc.prog.NumNodes++
	if factor == 0 {
		pn.Mode = plan.ModeZero
		return pn
	}
	if len(n.Children) == 0 && len(uses) == 0 {
		pn.Mode = plan.ModeLeaf
		return pn
	}

	type coveredChild struct {
		child *EmbNode
		dim   int
		skip  bool
	}
	var covered []coveredChild
	var uncovered []*EmbNode
	uncoveredSkip := map[*EmbNode]bool{}
	for _, c := range n.Children {
		cc := coveredChild{child: c, dim: scopeIndex(scope, ScopeEdge{From: n.Syn, To: c.Syn})}
		if c.Value != nil {
			if idx := valueDimIdx(s, c.Syn); idx >= 0 {
				uses = append(uses, plan.Use{Dim: idx, Overlap: vdims[idx-len(scope)], Pred: c.Value, CountDim: -1})
				cc.skip = true
			}
		}
		if cc.dim >= 0 {
			covered = append(covered, cc)
		} else {
			uncovered = append(uncovered, c)
			if cc.skip {
				uncoveredSkip[c] = true
			}
		}
	}

	// D_i: scope dims bound by enumerating ancestors, read off the
	// compile-time environment in scope order (the interpreter reads its
	// assignment map in the same order).
	for i, se := range scope {
		if slot, ok := pc.env[se]; ok {
			pn.DDims = append(pn.DDims, i)
			pn.DSlots = append(pn.DSlots, slot)
		}
	}
	pn.DOff = pc.prog.DValsLen
	pc.prog.DValsLen += len(pn.DDims)

	needEnum := len(uses) > 0
	for _, cc := range covered {
		if pc.est.condSet[scope[cc.dim]] {
			needEnum = true
			break
		}
	}

	unc := 1.0
	for _, c := range uncovered {
		v, _ := pc.est.avgCount(n.Syn, c.Syn)
		unc *= v
	}
	pn.UncBase = unc
	if unc == 0 {
		pn.Mode = plan.ModeZero
		return pn
	}
	pn.Uses = uses

	if !needEnum {
		if len(covered) > 0 {
			if s == nil || s.Hist == nil {
				pn.Mode = plan.ModeZero
				return pn
			}
			pn.Hist = s.Hist
			for _, cc := range covered {
				pn.CovDims = append(pn.CovDims, cc.dim)
			}
		}
		pn.Mode = plan.ModeFactorized
		for _, cc := range covered {
			pn.Covered = append(pn.Covered, pc.node(cc.child, cc.skip))
		}
		for _, c := range uncovered {
			pn.Uncovered = append(pn.Uncovered, pc.node(c, uncoveredSkip[c]))
		}
		return pn
	}

	if s == nil || s.Hist == nil {
		pn.Mode = plan.ModeZero
		return pn
	}
	pn.Mode = plan.ModeEnumerated
	pn.Hist = s.Hist
	// Bind this node's expanded dims to fresh slots for the subtree, and
	// restore any shadowed outer bindings afterwards — the lexical image
	// of the interpreter's copied-and-extended assignment map.
	type shadow struct {
		edge ScopeEdge
		slot int
		had  bool
	}
	shadows := make([]shadow, 0, len(covered))
	for _, cc := range covered {
		pn.CovDims = append(pn.CovDims, cc.dim)
		slot := pc.prog.NumSlots
		pc.prog.NumSlots++
		pn.CovSlots = append(pn.CovSlots, slot)
		edge := scope[cc.dim]
		old, had := pc.env[edge]
		shadows = append(shadows, shadow{edge: edge, slot: old, had: had})
		pc.env[edge] = slot
	}
	for _, cc := range covered {
		pn.Covered = append(pn.Covered, pc.node(cc.child, cc.skip))
	}
	for _, c := range uncovered {
		pn.Uncovered = append(pn.Uncovered, pc.node(c, uncoveredSkip[c]))
	}
	for i := len(shadows) - 1; i >= 0; i-- {
		sh := shadows[i]
		if sh.had {
			pc.env[sh.edge] = sh.slot
		} else {
			delete(pc.env, sh.edge)
		}
	}
	return pn
}

package xsketch

import (
	"context"
	"runtime"
	"sync"

	"xsketch/internal/twig"
)

// This file adds context-aware entry points to the estimation engine, for
// callers in a serving path (internal/serve) that must bound request
// latency. Cancellation is cooperative: the estimator checks the context
// between embeddings — the natural unit of work — so a cancelled estimate
// returns promptly without threading the context through the recursive
// TREEPARSE evaluation. When the context is never cancelled, the computed
// values are bit-identical to EstimateQueryResult: the same embeddings are
// enumerated and the identical per-embedding code runs.

// EstimateQueryContext estimates a twig query like EstimateQueryResult,
// aborting with ctx.Err() as soon as cancellation is observed (before
// enumeration and between embeddings). On error the returned result is the
// zero value and must be discarded.
func (sk *Sketch) EstimateQueryContext(ctx context.Context, q *twig.Query) (EstimateResult, error) {
	return sk.EstimateQueryTraced(ctx, q, nil)
}

// EstimateBatchContext runs EstimateBatch under a context: the worker pool
// stops pulling queries once cancellation is observed and the call returns
// ctx.Err(). On success the results are bit-identical to EstimateBatch
// (and therefore to sequential EstimateQuery calls) for any worker count.
// On error the partially filled slice is returned so callers can report
// progress, with untouched entries left at their zero value.
func (sk *Sketch) EstimateBatchContext(ctx context.Context, queries []*twig.Query, workers int) ([]EstimateResult, error) {
	out := make([]EstimateResult, len(queries))
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			r, err := sk.EstimateQueryContext(ctx, q)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := sk.EstimateQueryContext(ctx, queries[i])
				if err != nil {
					return
				}
				out[i] = r
			}
		}()
	}
feed:
	for i := range queries {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, ctx.Err()
}

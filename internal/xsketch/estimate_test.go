package xsketch

import (
	"math"
	"testing"

	"xsketch/internal/eval"
	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestEstimatePathExactOnStableChains(t *testing.T) {
	sk := bibSketch(t)
	cases := []struct {
		path string
		want float64
	}{
		{"author", 3},
		{"author/paper", 4},
		{"author/paper/keyword", 5},
		{"author/name", 3},
		{"author/paper/year", 4},
	}
	for _, c := range cases {
		got := sk.EstimatePath(pathexpr.MustParse(c.path))
		approx(t, got, c.want, 1e-9, c.path)
	}
}

func TestEstimatePathDescendant(t *testing.T) {
	// Figure 5 of the paper: //title expands into the author/paper/title
	// and author/book/title maximal forms; their estimates sum to |title|.
	sk := bibSketch(t)
	ems := sk.Embeddings(twig.New(pathexpr.MustParse("//title")))
	if len(ems) != 2 {
		t.Fatalf("embeddings of //title = %d, want 2", len(ems))
	}
	got := sk.EstimatePath(pathexpr.MustParse("//title"))
	approx(t, got, 5, 1e-9, "//title")
}

func TestEstimateTwigFanout(t *testing.T) {
	sk := bibSketch(t)
	ev := eval.New(sk.Syn.Doc)
	q := twig.MustParse("t0 in author, t1 in t0/name, t2 in t0/paper, t3 in t2/title, t4 in t2/keyword")
	truth := float64(ev.Selectivity(q))
	got := sk.EstimateQuery(q)
	// With exact joint histograms over F-stable children, this query's
	// estimate is exact: each level's joint distribution is stored.
	approx(t, got, truth, 1e-9, "author{name, paper{title, keyword}}")
}

func TestEstimateValuePredicate(t *testing.T) {
	sk := bibSketch(t)
	q := twig.MustParse("t0 in author/paper/year[>2000]")
	// Exact value histogram: 2 of 4 years exceed 2000.
	approx(t, sk.EstimateQuery(q), 2, 1e-9, "year>2000")
	q2 := twig.MustParse("t0 in author/paper/year[=1998:1999]")
	approx(t, sk.EstimateQuery(q2), 2, 1e-9, "year in 1998..1999")
	q3 := twig.MustParse("t0 in author/paper/year[>2100]")
	approx(t, sk.EstimateQuery(q3), 0, 1e-9, "year>2100")
	// Value predicate on a node that never carries values.
	q4 := twig.MustParse("t0 in author/name[>0]")
	approx(t, sk.EstimateQuery(q4), 0, 1e-9, "name>0")
}

func TestEstimateBranchPredicate(t *testing.T) {
	sk := bibSketch(t)
	// author[book]: 1 of 3 authors; the A->book edge is B-stable so
	// |A->book| = |book| = 1 and the expected-count estimate is exact.
	q := twig.MustParse("t0 in author[book]")
	approx(t, sk.EstimateQuery(q), 1, 1e-9, "author[book]")
	// author[paper] is F-stable: every author qualifies.
	q2 := twig.MustParse("t0 in author[paper]")
	approx(t, sk.EstimateQuery(q2), 3, 1e-9, "author[paper]")
	// Nested branch with value predicate: author[paper/year>2000].
	q3 := twig.MustParse("t0 in author[paper/year>2000]")
	got := sk.EstimateQuery(q3)
	// Expected matches per author = E[papers] * P(year>2000) = 4/3 * 0.5 =
	// 2/3, clamped at 1 -> estimate 3 * 2/3 = 2. Truth is also 2 (a1, a2).
	approx(t, got, 2, 1e-9, "author[paper/year>2000]")
	// Branch that can never match.
	q4 := twig.MustParse("t0 in author[magazine]")
	approx(t, sk.EstimateQuery(q4), 0, 1e-9, "author[magazine]")
}

func TestEstimateMotivatingExample(t *testing.T) {
	// Paper Figure 4: both documents share the same zero-error single-path
	// XSKETCH, but the twig pairing b's and c's under the same a has true
	// selectivity 2000 vs 10100. With exact joint edge histograms the
	// estimates are exact; with a single bucket both documents estimate the
	// same (wrong) value, demonstrating why edge distributions are needed.
	q := twig.MustParse("t0 in a, t1 in t0/b, t2 in t0/c")
	exact := exactConfig()
	skU := New(xmltree.MotivatingUniform(), exact)
	skS := New(xmltree.MotivatingSkewed(), exact)
	approx(t, skU.EstimateQuery(q), 2000, 1e-6, "uniform doc, exact buckets")
	approx(t, skS.EstimateQuery(q), 10100, 1e-6, "skewed doc, exact buckets")

	coarse := DefaultConfig() // 1 bucket per histogram
	cU := New(xmltree.MotivatingUniform(), coarse)
	cS := New(xmltree.MotivatingSkewed(), coarse)
	eu, es := cU.EstimateQuery(q), cS.EstimateQuery(q)
	// One centroid bucket stores only mean counts (55, 55): both documents
	// produce the same estimate 2*55*55.
	approx(t, eu, 6050, 1e-6, "uniform doc, 1 bucket")
	approx(t, es, 6050, 1e-6, "skewed doc, 1 bucket")
}

// workedExampleDoc modifies the bibliography fixture so that author a3 owns
// two books, reproducing the |A->B| = 2 of the paper's Section 4 walk-through
// (which evaluates to s(T) = 10/3).
func workedExampleDoc() *xmltree.Document {
	d := xmltree.NewDocument("bib")
	root := d.Root()
	addPaper := func(a xmltree.NodeID, year int64, keywords int) {
		p := d.AddChild(a, "paper")
		d.AddChild(p, "title")
		d.AddValueChild(p, "year", year)
		for i := 0; i < keywords; i++ {
			d.AddChild(p, "keyword")
		}
	}
	a1 := d.AddChild(root, "author")
	d.AddChild(a1, "name")
	addPaper(a1, 1999, 2)
	addPaper(a1, 2002, 1)
	a2 := d.AddChild(root, "author")
	d.AddChild(a2, "name")
	addPaper(a2, 2001, 1)
	a3 := d.AddChild(root, "author")
	d.AddChild(a3, "name")
	addPaper(a3, 1998, 1)
	for i := 0; i < 2; i++ {
		b := d.AddChild(a3, "book")
		d.AddChild(b, "title")
	}
	return d
}

func TestEstimatePaperWorkedExample(t *testing.T) {
	// Section 4's walk-through: the embedding T = A{B, N, P{K, Y}} with
	// histograms H_A(p, n) and H_P(k, y, p) (backward count p) evaluates to
	//
	//   s(T) = |A->B| * Σ_{k,y,p,n} F_A(p,n) * F_P(k,y | p) = 10/3
	//
	// with |A->B| = 2, H_A = {(2,1): 1/3, (1,1): 2/3} and H_P = {(2,1,2):
	// .25, (1,1,2): .25, (1,1,1): .5}.
	d := workedExampleDoc()
	sk := New(d, exactConfig())
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	author := synNode(t, sk, "author")
	paper := synNode(t, sk, "paper")
	// Add the backward count C_P = (A -> P) to the paper histogram, as in
	// Figure 6(b).
	s := sk.Summary(paper)
	s.ExtraScope = append(s.ExtraScope, ScopeEdge{author, paper})
	sk.RebuildNode(paper)

	q := twig.MustParse("t0 in author, t1 in t0/book, t2 in t0/name, t3 in t0/paper, t4 in t3/keyword, t5 in t3/year")
	got := sk.EstimateQuery(q)
	approx(t, got, 10.0/3, 1e-9, "worked example s(T)")

	// Sanity: the true count is 2 (only a3 has books: 2 books * 1 name *
	// 1 keyword * 1 year).
	if truth := eval.New(d).Selectivity(q); truth != 2 {
		t.Fatalf("true selectivity = %d, want 2", truth)
	}
}

func TestBackwardCountConditioningImprovesEstimate(t *testing.T) {
	// Without the backward count the same query falls back to Correlation
	// Scope Independence with an unconditioned F_P, giving a different
	// (less informed) estimate. This pins the ablation the paper's
	// prototype discussion mentions (no backward counts).
	d := workedExampleDoc()
	skNoBack := New(d, exactConfig())
	q := twig.MustParse("t0 in author, t1 in t0/book, t2 in t0/name, t3 in t0/paper, t4 in t3/keyword, t5 in t3/year")
	got := skNoBack.EstimateQuery(q)
	// Unconditioned: |A->B| * Σ F_A(p,n) * Σ F_P(k,y) =
	// 2 * (1/3*2 + 2/3*1) * (0.25*2 + 0.25*1 + 0.5*1) = 2 * 4/3 * 1.25.
	approx(t, got, 2*(4.0/3)*1.25, 1e-9, "forward-only estimate")
}

func TestEstimateZeroForMissingStructure(t *testing.T) {
	sk := bibSketch(t)
	for _, src := range []string{
		"t0 in magazine",
		"t0 in author/magazine",
		"t0 in author, t1 in t0/paper, t2 in t1/book",
		"t0 in book/keyword",
	} {
		if got := sk.EstimateQuery(twig.MustParse(src)); got != 0 {
			t.Errorf("EstimateQuery(%q) = %v, want 0", src, got)
		}
	}
}

func TestEmbeddingsRespectBudget(t *testing.T) {
	cfg := exactConfig()
	cfg.MaxEmbeddings = 1
	sk := New(xmltree.Bibliography(), cfg)
	ems := sk.Embeddings(twig.New(pathexpr.MustParse("//title")))
	if len(ems) != 1 {
		t.Fatalf("embeddings = %d, want 1 (budget)", len(ems))
	}
}

func TestEmbeddingSizeAndWalk(t *testing.T) {
	sk := bibSketch(t)
	q := twig.MustParse("t0 in author, t1 in t0/paper, t2 in t1/keyword")
	ems := sk.Embeddings(q)
	if len(ems) != 1 {
		t.Fatalf("embeddings = %d", len(ems))
	}
	if got := ems[0].Size(); got != 3 {
		t.Fatalf("embedding size = %d, want 3", got)
	}
	var tags []string
	ems[0].Walk(func(n, parent *EmbNode) {
		tags = append(tags, sk.Syn.Doc.Tag(sk.Syn.Node(n.Syn).Tag))
	})
	if len(tags) != 3 || tags[0] != "author" || tags[1] != "paper" || tags[2] != "keyword" {
		t.Fatalf("walk tags = %v", tags)
	}
}

func TestEstimateMultiStepPathNode(t *testing.T) {
	// A twig node whose path has several steps expands into a chain of
	// maximal nodes (Section 4).
	sk := bibSketch(t)
	q := twig.MustParse("t0 in author/paper, t1 in t0/keyword")
	ev := eval.New(sk.Syn.Doc)
	approx(t, sk.EstimateQuery(q), float64(ev.Selectivity(q)), 1e-9, "multi-step")
}

func TestEstimateRepeatedChildEdge(t *testing.T) {
	// Two twig nodes over the same synopsis edge: pairs of keywords of the
	// same paper. Truth: papers have (2,1,1,1) keywords -> Σ k^2 = 4+1+1+1
	// = 7. The exact joint histogram captures E[k^2] across buckets.
	sk := bibSketch(t)
	q := twig.MustParse("t0 in author/paper, t1 in t0/keyword, t2 in t0/keyword")
	approx(t, sk.EstimateQuery(q), 7, 1e-9, "keyword pairs")
}

func TestEstimateDescendantBranch(t *testing.T) {
	sk := bibSketch(t)
	// author[//keyword]: every author has at least one paper keyword.
	q := twig.MustParse("t0 in author[//keyword]")
	got := sk.EstimateQuery(q)
	if got < 2.9 || got > 3.0+1e-9 {
		t.Fatalf("author[//keyword] = %v, want ~3", got)
	}
}

func TestStoreEdgeCountsImprovesUnstableEdges(t *testing.T) {
	// A node whose elements split unevenly across two parents: without
	// stored edge counts the estimator splits |v| proportionally to parent
	// extent sizes; with them, exactly.
	d := xmltree.NewDocument("r")
	a := d.AddChild(d.Root(), "a")
	b1 := d.AddChild(d.Root(), "b")
	d.AddChild(d.Root(), "b") // second b with no t child: b->t not F-stable
	// 9 of 10 t-elements under a, 1 under b1.
	for i := 0; i < 9; i++ {
		d.AddChild(a, "t")
	}
	d.AddChild(b1, "t")

	plain := New(d, exactConfig())
	exactCounts := exactConfig()
	exactCounts.StoreEdgeCounts = true
	stored := New(d, exactCounts)

	q := twig.MustParse("t0 in b, t1 in t0/t")
	truth := float64(eval.New(d).Selectivity(q)) // 1
	// b->t is not F-stable, so Forward Uniformity applies. Proportional
	// split of |t| = 10 over the parent extents |a| = 1, |b| = 2:
	// |b->t| ~ 10 * 2/3, estimate = |b| * (|b->t| / |b|) = 20/3.
	approx(t, plain.EstimateQuery(q), 20.0/3, 1e-9, "proportional split")
	approx(t, stored.EstimateQuery(q), truth, 1e-9, "stored edge counts")
	if stored.SizeBytes() <= plain.SizeBytes() {
		t.Fatal("stored edge counts not charged by the size model")
	}
}

// Package xsketch implements the paper's core contribution: Twig XSKETCH
// synopses (Definition 3.1) and the estimation framework of Section 4.
//
// A Twig XSKETCH is a graph summary (internal/graphsyn) recording (a) edge
// stabilities and (b) a multidimensional edge-histogram H_i per node n_i
// whose count dimensions correspond to a set scope(n_i) of synopsis edges
// contained in the twig stable neighborhood TSN(n_i), plus (c) per-node
// value histograms. Estimation combines the stored histograms with the
// paper's three statistical assumptions (Forward Independence, Correlation
// Scope Independence, Forward Uniformity).
package xsketch

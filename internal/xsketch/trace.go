package xsketch

import (
	"context"
	"fmt"

	"xsketch/internal/graphsyn"
	"xsketch/internal/pathexpr"
	"xsketch/internal/trace"
	"xsketch/internal/twig"
)

// This file wires the internal/trace recorder through the estimation
// pipeline. Tracing is strictly observational: a traced estimate runs the
// identical arithmetic as the untraced one (bit-identical results), and a
// nil recorder reduces every hook to a nil-check, so the hot path pays no
// allocations when tracing is disabled (asserted in trace_test.go).

// EstimateQueryTraced estimates a twig query like EstimateQueryContext,
// additionally recording a structured trace into rec when it is non-nil:
// expansion and dedup events, per-embedding TREEPARSE trees with E/U/D
// scope splits and per-term factors, and per-stage latencies. A nil rec
// makes this identical to EstimateQueryContext.
func (sk *Sketch) EstimateQueryTraced(ctx context.Context, q *twig.Query, rec *trace.Recorder) (EstimateResult, error) {
	if err := ctx.Err(); err != nil {
		return EstimateResult{}, err
	}
	if rec != nil {
		rec.SetQuery(q.String())
	}
	rec.BeginStage(trace.StageEmbed)
	ems, truncated := sk.embeddingsTraced(q, rec)
	rec.EndStage(trace.StageEmbed)
	total := 0.0
	for _, em := range ems {
		if err := ctx.Err(); err != nil {
			return EstimateResult{}, err
		}
		rec.BeginStage(trace.StageTreeparse)
		total += sk.estimateEmbeddingTraced(em, rec)
		rec.EndStage(trace.StageTreeparse)
	}
	rec.SetResult(total, truncated)
	return EstimateResult{Estimate: total, Truncated: truncated}, nil
}

// estimateEmbeddingTraced is EstimateEmbedding with an optional recorder:
// when rec is non-nil a new embedding trace is appended and its TREEPARSE
// tree filled in during evaluation.
func (sk *Sketch) estimateEmbeddingTraced(em *Embedding, rec *trace.Recorder) float64 {
	est := newEstimator(sk, em)
	est.rec = rec
	base := float64(sk.Syn.Node(em.Root.Syn).Count())
	if rec == nil {
		return base * est.contrib(em.Root, nil, false, nil)
	}
	et := rec.AddEmbedding(embSig(em.Root))
	tn := est.newTraceNode(em.Root)
	tn.Terms = append(tn.Terms, trace.Term{
		Kind:       trace.TermBaseCount,
		Detail:     fmt.Sprintf("|node %d|", em.Root.Syn),
		Value:      base,
		Assumption: trace.AssumptionExact,
	})
	et.Root = tn
	v := base * est.contrib(em.Root, nil, false, tn)
	et.Estimate = v
	return v
}

// expandStepTraced wraps the memoized expandStep with stage timing and an
// expansion event when a recorder is attached.
func (sk *Sketch) expandStepTraced(ctx graphsyn.NodeID, step *pathexpr.Step, rec *trace.Recorder) [][]graphsyn.NodeID {
	if rec == nil {
		return sk.expandStep(ctx, step)
	}
	rec.BeginStage(trace.StageExpand)
	seqs, outcome := sk.expandStepOutcome(ctx, step)
	rec.EndStage(trace.StageExpand)
	rec.Event(trace.Event{
		Kind:   trace.EventExpand,
		Detail: fmt.Sprintf("node %d %s%s", ctx, step.Axis, step.Label),
		Count:  len(seqs),
		Cache:  outcome,
	})
	return seqs
}

// newTraceNode creates the trace node mirroring one embedding node.
func (e *estimator) newTraceNode(n *EmbNode) *trace.Node {
	syn := e.sk.Syn.Node(n.Syn)
	return &trace.Node{
		Syn:    int(n.Syn),
		Tag:    e.sk.Syn.Doc.Tag(syn.Tag),
		Extent: syn.Count(),
	}
}

// tnChild indexes a node's pre-built child trace nodes; nil tracing yields
// nil children.
func tnChild(tns []*trace.Node, i int) *trace.Node {
	if tns == nil {
		return nil
	}
	return tns[i]
}

// done finalizes a trace node on its first evaluation (mode and
// contribution) and passes the value through, so contrib's return sites
// stay single-expression.
func done(tn *trace.Node, first bool, mode string, v float64) float64 {
	if first {
		tn.Mode = mode
		tn.Contribution = v
	}
	return v
}

package xsketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"xsketch/internal/eval"
	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// recursiveDoc builds a document whose schema nests a tag under itself
// (part -> part), producing a cyclic synopsis.
func recursiveDoc(depth int) *xmltree.Document {
	d := xmltree.NewDocument("assembly")
	cur := d.Root()
	for i := 0; i < depth; i++ {
		cur = d.AddChild(cur, "part")
		d.AddChild(cur, "bolt")
	}
	return d
}

func TestExpandStepRecursiveSchemaTerminates(t *testing.T) {
	d := recursiveDoc(6)
	sk := New(d, exactConfig())
	// The label-split synopsis has a part -> part self-loop; descendant
	// expansion must not loop forever. Simple paths avoid node repetition,
	// so //bolt expands to a single path (part -> bolt preceded by at most
	// one visit of part).
	ems := sk.Embeddings(twig.New(pathexpr.MustParse("//bolt")))
	if len(ems) == 0 {
		t.Fatal("no embeddings for //bolt")
	}
	// Estimate stays finite.
	got := sk.EstimatePath(pathexpr.MustParse("//bolt"))
	if math.IsInf(got, 0) || math.IsNaN(got) || got <= 0 {
		t.Fatalf("estimate = %v", got)
	}
}

func TestMaxDescendantPathLenLimitsExpansion(t *testing.T) {
	// Distinct tags per level keep the synopsis as deep as the document
	// (a repeated tag would collapse into one synopsis node, making the
	// synopsis path short regardless of document depth).
	d := xmltree.NewDocument("r")
	cur := d.Root()
	for _, tag := range []string{"m1", "m2", "m3", "m4", "m5", "m6"} {
		cur = d.AddChild(cur, tag)
	}
	d.AddChild(cur, "leaf")
	cfg := exactConfig()
	cfg.MaxDescendantPathLen = 3
	sk := New(d, cfg)
	// leaf sits 7 synopsis steps below the root; a 3-step cap finds
	// nothing.
	if ems := sk.Embeddings(twig.New(pathexpr.MustParse("//leaf"))); len(ems) != 0 {
		t.Fatalf("embeddings = %d, want 0 under cap", len(ems))
	}
	cfg.MaxDescendantPathLen = 10
	sk2 := New(d, cfg)
	if ems := sk2.Embeddings(twig.New(pathexpr.MustParse("//leaf"))); len(ems) != 1 {
		t.Fatalf("embeddings = %d, want 1 without cap", len(ems))
	}
}

func TestEmbeddingsDescendantMidPath(t *testing.T) {
	sk := bibSketch(t)
	// author//title reaches titles via paper and via book: 2 embeddings.
	ems := sk.Embeddings(twig.MustParse("t0 in author//title"))
	if len(ems) != 2 {
		t.Fatalf("embeddings = %d, want 2", len(ems))
	}
	got := sk.EstimatePath(pathexpr.MustParse("author//title"))
	approx(t, got, 5, 1e-9, "author//title")
}

func TestEmbeddingChainSharing(t *testing.T) {
	// Multiple alternatives on two independent children: the cartesian
	// product must keep chains independent (no shared mutation).
	d := xmltree.NewDocument("r")
	a := d.AddChild(d.Root(), "a")
	x1 := d.AddChild(a, "x")
	d.AddChild(x1, "t")
	y := d.AddChild(a, "y")
	d.AddChild(y, "t")
	b := d.AddChild(d.Root(), "b")
	d.AddChild(b, "t")
	sk := New(d, exactConfig())
	q := twig.MustParse("t0 in a, t1 in t0//t, t2 in t0//t")
	ems := sk.Embeddings(q)
	// //t from a: via x and via y -> 2 alternatives per child, 4 combos.
	if len(ems) != 4 {
		t.Fatalf("embeddings = %d, want 4", len(ems))
	}
	for _, em := range ems {
		if em.Size() != 5 { // a + 2*(intermediate + t)
			t.Fatalf("embedding size = %d, want 5", em.Size())
		}
	}
	truth := eval.New(d).Selectivity(q)
	got := sk.EstimateQuery(q)
	approx(t, got, float64(truth), 1e-9, "t pairs")
}

func TestEstimateTwoLevelExactProperty(t *testing.T) {
	// Property: on a two-level document (root -> groups -> leaves) whose
	// child edges are all F-stable (every group has at least one child of
	// each tag, so the joint distribution is in scope), any two-level twig
	// estimate with exact joint histograms matches the exact count.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := xmltree.NewDocument("r")
		tags := []string{"x", "y", "z"}
		groups := rng.Intn(6) + 2
		for i := 0; i < groups; i++ {
			g := d.AddChild(d.Root(), "g")
			for _, tag := range tags {
				for k, n := 0, rng.Intn(3)+1; k < n; k++ {
					d.AddChild(g, tag)
				}
			}
		}
		cfg := DefaultConfig()
		cfg.InitialEdgeBuckets = 1024
		sk := New(d, cfg)
		ev := eval.New(d)
		q := twig.MustParse("t0 in g, t1 in t0/x, t2 in t0/y")
		truth := float64(ev.Selectivity(q))
		got := sk.EstimateQuery(q)
		if math.Abs(got-truth) > 1e-6*(1+truth) {
			t.Logf("seed %d: estimate %v, truth %v", seed, got, truth)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatePathChainExactProperty(t *testing.T) {
	// Property: chain paths over fully B-stable structures estimate
	// exactly with exact histograms (chains multiply exact means).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := xmltree.NewDocument("r")
		for i, n := 0, rng.Intn(5)+1; i < n; i++ {
			a := d.AddChild(d.Root(), "a")
			for j, m := 0, rng.Intn(4); j < m; j++ {
				b := d.AddChild(a, "b")
				for k, l := 0, rng.Intn(3); k < l; k++ {
					d.AddChild(b, "c")
				}
			}
		}
		cfg := DefaultConfig()
		cfg.InitialEdgeBuckets = 1024
		sk := New(d, cfg)
		ev := eval.New(d)
		for _, p := range []string{"a", "a/b", "a/b/c"} {
			truth := float64(ev.PathCount(pathexpr.MustParse(p)))
			got := sk.EstimatePath(pathexpr.MustParse(p))
			if math.Abs(got-truth) > 1e-6*(1+truth) {
				t.Logf("seed %d: path %s estimate %v truth %v", seed, p, got, truth)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateNonNegativeFiniteProperty(t *testing.T) {
	// Property: estimates are always finite and non-negative, for random
	// documents, random bucket budgets and random twigs.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := xmltree.NewDocument("r")
		tags := []string{"a", "b", "c", "d"}
		for d.Len() < 60 {
			parent := xmltree.NodeID(rng.Intn(d.Len()))
			tag := tags[rng.Intn(len(tags))]
			if rng.Intn(4) == 0 {
				d.AddValueChild(parent, tag, int64(rng.Intn(50)))
			} else {
				d.AddChild(parent, tag)
			}
		}
		cfg := DefaultConfig()
		cfg.InitialEdgeBuckets = rng.Intn(8) + 1
		cfg.InitialValueBuckets = rng.Intn(4)
		sk := New(d, cfg)
		queries := []string{
			"t0 in a, t1 in t0/b, t2 in t0/c",
			"t0 in //b, t1 in t0//d",
			"t0 in a[b][c>10], t1 in t0/d",
			"t0 in a/b/c, t1 in t0/d[=0:25]",
		}
		for _, src := range queries {
			got := sk.EstimateQuery(twig.MustParse(src))
			if got < 0 || math.IsNaN(got) || math.IsInf(got, 0) {
				t.Logf("seed %d: %s -> %v", seed, src, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateEmbeddingDirect(t *testing.T) {
	// Build an embedding by hand (the low-level API used in the paper's
	// Section 4 walk-through) and check EstimateEmbedding.
	sk := bibSketch(t)
	author := synNode(t, sk, "author")
	paper := synNode(t, sk, "paper")
	keyword := synNode(t, sk, "keyword")
	em := &Embedding{Root: &EmbNode{
		Syn: author,
		Children: []*EmbNode{{
			Syn:      paper,
			Children: []*EmbNode{{Syn: keyword}},
		}},
	}}
	// |A| * E[p * E[k|...]] — with exact joints this is the exact count 5.
	got := sk.EstimateEmbedding(em)
	approx(t, got, 5, 1e-9, "manual embedding")
}

func TestValueFractionPartialValues(t *testing.T) {
	// A node where only some elements carry values: the fraction scales by
	// the valued share.
	d := xmltree.NewDocument("r")
	for i := 0; i < 4; i++ {
		d.AddValueChild(d.Root(), "v", int64(i))
	}
	for i := 0; i < 4; i++ {
		d.AddChild(d.Root(), "v") // valueless
	}
	sk := New(d, exactConfig())
	// v[=0:3] matches the 4 valued elements only.
	got := sk.EstimateQuery(twig.MustParse("t0 in v[=0:3]"))
	approx(t, got, 4, 1e-9, "partial values")
}

func TestEstimateQueryIsSumOverEmbeddings(t *testing.T) {
	sk := bibSketch(t)
	for _, src := range []string{
		"t0 in //title",
		"t0 in author//title",
		"t0 in author, t1 in t0//title, t2 in t0/name",
	} {
		q := twig.MustParse(src)
		total := 0.0
		for _, em := range sk.Embeddings(q) {
			total += sk.EstimateEmbedding(em)
		}
		approx(t, sk.EstimateQuery(q), total, 1e-9, src)
	}
}

func TestConditioningUnderCompression(t *testing.T) {
	// Backward-count conditioning with a lossy (compressed) histogram:
	// the Match nearest-bucket fallback must keep estimates finite and
	// sane. Build a deep correlated document: groups with many mid nodes
	// have mids with many leaves.
	d := xmltree.NewDocument("r")
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40; i++ {
		g := d.AddChild(d.Root(), "g")
		mids := rng.Intn(6) + 1
		for j := 0; j < mids; j++ {
			m := d.AddChild(g, "m")
			// Leaf count correlated with the parent's mid count.
			for k := 0; k < mids+rng.Intn(2); k++ {
				d.AddChild(m, "leaf")
			}
		}
	}
	cfg := DefaultConfig()
	cfg.InitialEdgeBuckets = 3 // deliberately lossy
	sk := New(d, cfg)
	m := synNode(t, sk, "m")
	g := synNode(t, sk, "g")
	s := sk.Summary(m)
	s.ExtraScope = append(s.ExtraScope, ScopeEdge{From: g, To: m})
	sk.RebuildNode(m)
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	q := twig.MustParse("t0 in g, t1 in t0/m, t2 in t1/leaf")
	truth := float64(eval.New(d).Selectivity(q))
	got := sk.EstimateQuery(q)
	if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
		t.Fatalf("estimate = %v", got)
	}
	if got < truth/3 || got > truth*3 {
		t.Fatalf("compressed conditioning estimate %v far from truth %v", got, truth)
	}
	// The backward count should not be worse than the unconditioned
	// estimate by much; compare against forward-only at same buckets.
	plain := New(d, cfg)
	plainEst := plain.EstimateQuery(q)
	t.Logf("truth %v, conditioned %v, forward-only %v", truth, got, plainEst)
}

func TestEmbeddingsTruncatedTinyBudget(t *testing.T) {
	// Regression: a budget too small for the full chain used to starve the
	// outer enumeration levels entirely, returning zero embeddings (and so
	// a zero estimate) for a query the synopsis clearly embeds. The budget
	// is now a soft floor: each level keeps at least its first alternative.
	cfg := exactConfig()
	cfg.MaxEmbeddings = 1
	sk := New(xmltree.Bibliography(), cfg)
	q := twig.MustParse("t0 in author, t1 in t0/paper, t2 in t1/title")
	ems, truncated := sk.EmbeddingsTruncated(q)
	if len(ems) == 0 {
		t.Fatal("tiny budget collapsed an embeddable query to zero embeddings")
	}
	if !truncated {
		t.Fatal("budget 1 on a multi-level chain should report truncation")
	}
	res := sk.EstimateQueryResult(q)
	if res.Estimate <= 0 {
		t.Fatalf("estimate under tiny budget = %v, want > 0", res.Estimate)
	}
	if !res.Truncated {
		t.Fatal("EstimateQueryResult should surface truncation")
	}
	// An ample budget reports no truncation.
	if _, tr := bibSketch(t).EmbeddingsTruncated(q); tr {
		t.Fatal("ample budget reported truncation")
	}
}

func TestEmbeddingsNoDuplicates(t *testing.T) {
	// The root-self interpretation of absolute paths must not introduce
	// duplicate embeddings (each would be double-counted by the estimate's
	// sum over embeddings). Checked on absolute paths naming the root tag
	// and on a recursive schema where descendant expansion is busiest.
	check := func(sk *Sketch, src string) {
		t.Helper()
		ems := sk.Embeddings(twig.MustParse(src))
		seen := make(map[string]bool, len(ems))
		for _, em := range ems {
			sig := embSig(em.Root)
			if seen[sig] {
				t.Errorf("%s: duplicate embedding %s", src, sig)
			}
			seen[sig] = true
		}
	}
	bib := bibSketch(t)
	check(bib, "t0 in bib/author")
	check(bib, "t0 in bib, t1 in t0/author")
	check(bib, "t0 in //title")
	rec := New(recursiveDoc(6), exactConfig())
	check(rec, "t0 in //part, t1 in t0/bolt")
	check(rec, "t0 in assembly/part")
}

func TestEstimateRootSelfInterpretation(t *testing.T) {
	sk := bibSketch(t)
	ev := eval.New(sk.Syn.Doc)
	for _, src := range []string{
		"t0 in bib/author",
		"t0 in bib/author/paper/keyword",
		"t0 in bib",
		"t0 in bib, t1 in t0/author, t2 in t1/paper",
		"t0 in bib/author, t1 in t0/name, t2 in t0/paper",
	} {
		q := twig.MustParse(src)
		truth := float64(ev.Selectivity(q))
		got := sk.EstimateQuery(q)
		approx(t, got, truth, 1e-9, src)
	}
}

package xsketch

import (
	"fmt"

	"xsketch/internal/graphsyn"
)

// FromStored assembles a sketch directly from a decoded synopsis and
// fully-populated summaries, without replaying construction against a
// document. It is the entry point for the standalone binary format
// (internal/catalog): the summaries must already carry their scopes and
// histograms — nothing is rebuilt — and the synopsis is typically detached
// (graphsyn.FromDetached). The assembled sketch is validated: every node
// needs a summary with a histogram whose dimensionality matches its scope,
// and every scope edge must lie within the node's twig stable neighborhood
// exactly as Validate enforces for built sketches.
func FromStored(syn *graphsyn.Synopsis, summaries map[graphsyn.NodeID]*NodeSummary, cfg Config) (*Sketch, error) {
	if syn == nil {
		return nil, fmt.Errorf("xsketch: stored sketch has no synopsis")
	}
	if len(summaries) != syn.NumNodes() {
		return nil, fmt.Errorf("xsketch: %d summaries for %d synopsis nodes", len(summaries), syn.NumNodes())
	}
	sk := &Sketch{Syn: syn, Summaries: summaries, Cfg: cfg}
	if err := sk.Validate(); err != nil {
		return nil, fmt.Errorf("xsketch: stored sketch invalid: %w", err)
	}
	return sk, nil
}

// Detached reports whether the sketch was loaded from the standalone
// stored form (no document, no extents). Detached sketches support every
// estimation path — interpreter, compiled plans, batches, tracing — but
// cannot be rebuilt or refined: RebuildNode and RebuildAll panic.
func (sk *Sketch) Detached() bool { return sk.Syn.Detached() }

package xsketch

import (
	"fmt"
	"sort"

	"xsketch/internal/graphsyn"
	"xsketch/internal/pathexpr"
	"xsketch/internal/xmltree"
)

// This file implements the paper's extended value histograms H^v (Section
// 3.2): joint distributions over element values and edge counts within the
// twig stable neighborhood. Structurally, a node's edge histogram gains
// *value dimensions*: bucketized values of the node's own elements or of a
// child node's elements. The value-expand refinement (Section 5) inserts
// such a dimension, capturing correlations like "movies whose type is
// Action have many actors" that the independent per-node value histograms
// miss.

// ValueDim is one value dimension of a node's extended histogram.
type ValueDim struct {
	// Source is the synopsis node providing the value: the histogram's own
	// node (the element's value) or one of its children (the value of the
	// element's first valued child in Source — exact when elements have a
	// single such child, e.g. a movie's type).
	Source graphsyn.NodeID
	// Bounds are the inclusive upper bounds of the value bins (ascending);
	// Los are the corresponding smallest observed values, so each bin's
	// span is tight around the data (a point predicate on a bin holding a
	// single distinct value estimates exactly). Bin coordinates are
	// 1-based; coordinate 0 means "no value present".
	Bounds []int64
	Los    []int64
	// Lo is the minimum observed value (equals Los[0]).
	Lo int64
}

// bins returns the number of value bins.
func (vd *ValueDim) bins() int { return len(vd.Bounds) }

// binOf maps a value to its 1-based bin coordinate.
func (vd *ValueDim) binOf(v int64) int32 {
	idx := sort.Search(len(vd.Bounds), func(i int) bool { return vd.Bounds[i] >= v })
	if idx >= len(vd.Bounds) {
		idx = len(vd.Bounds) - 1
	}
	return int32(idx + 1)
}

// binRange returns the tight inclusive value range of a 1-based bin
// coordinate.
func (vd *ValueDim) binRange(bin int32) (lo, hi int64) {
	i := int(bin) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(vd.Bounds) {
		i = len(vd.Bounds) - 1
	}
	return vd.Los[i], vd.Bounds[i]
}

// overlap estimates the fraction of a bin's values satisfying the
// predicate, assuming values spread uniformly over the bin's range.
// Coordinate 0 ("no value") never satisfies a predicate.
func (vd *ValueDim) overlap(coord float64, pred *pathexpr.ValuePred) float64 {
	bin := int32(coord + 0.5)
	if bin <= 0 {
		return 0
	}
	lo, hi := vd.binRange(bin)
	olo, ohi := lo, hi
	if pred.Lo > olo {
		olo = pred.Lo
	}
	if pred.Hi < ohi {
		ohi = pred.Hi
	}
	if ohi < olo {
		return 0
	}
	// A dimension whose bin range is inverted (possible only through a
	// corrupt serialized sketch) must not turn into a NaN or negative
	// selectivity here.
	den := hi - lo + 1
	if den <= 0 {
		return 0
	}
	return float64(ohi-olo+1) / float64(den)
}

// Overlap is the exported form of overlap. It implements the plan
// package's Overlapper interface, so compiled query plans evaluate
// value-dimension uses with the identical arithmetic as the interpreter.
func (vd *ValueDim) Overlap(coord float64, pred *pathexpr.ValuePred) float64 {
	return vd.overlap(coord, pred)
}

// newValueDim builds a ValueDim with equi-depth bins over the values
// observed at source (its elements' own values). It returns nil when
// source has no values.
func (sk *Sketch) newValueDim(source graphsyn.NodeID, bins int) *ValueDim {
	if bins < 1 {
		bins = 1
	}
	d := sk.Syn.Doc
	var vals []int64
	for _, e := range sk.Syn.Node(source).Extent {
		if n := d.Node(e); n.HasValue {
			vals = append(vals, n.Value)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	vd := &ValueDim{Source: source, Lo: vals[0]}
	per := (len(vals) + bins - 1) / bins
	lo := vals[0]
	prev := int64(0)
	for i := per - 1; i < len(vals); i += per {
		ub := vals[i]
		if n := len(vd.Bounds); n == 0 || prev < ub {
			vd.Bounds = append(vd.Bounds, ub)
			vd.Los = append(vd.Los, lo)
			prev = ub
			// The next bin's tight lower bound is the first value above ub.
			j := sort.Search(len(vals), func(k int) bool { return vals[k] > ub })
			if j < len(vals) {
				lo = vals[j]
			}
		}
	}
	if last := vals[len(vals)-1]; len(vd.Bounds) == 0 || vd.Bounds[len(vd.Bounds)-1] < last {
		vd.Bounds = append(vd.Bounds, last)
		vd.Los = append(vd.Los, lo)
	}
	return vd
}

// valueDimValid reports whether a value dimension may appear on node id:
// its source must be the node itself or one of its children, and must
// still carry values.
func (sk *Sketch) valueDimValid(id graphsyn.NodeID, vd *ValueDim) bool {
	if len(vd.Bounds) == 0 || len(vd.Los) != len(vd.Bounds) {
		return false
	}
	// Bin shape invariants: each bin is a non-empty range and bounds grow
	// strictly, so binRange/overlap never see an inverted bin. Serialized
	// sketches are the only source of shapes that violate this.
	for i := range vd.Bounds {
		if vd.Los[i] > vd.Bounds[i] {
			return false
		}
		if i > 0 && vd.Bounds[i-1] >= vd.Bounds[i] {
			return false
		}
	}
	if vd.Source != id {
		found := false
		for _, c := range sk.Syn.Node(id).Children {
			if c == vd.Source {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if sk.Syn.Detached() {
		// No extents to consult; the bin-shape and source checks above are
		// the full detached validation (a stored dimension was valid when
		// the sketch was built, and detached sketches never rebuild).
		return true
	}
	d := sk.Syn.Doc
	for _, e := range sk.Syn.Node(vd.Source).Extent {
		if d.Node(e).HasValue {
			return true
		}
	}
	return false
}

// valueCoord computes the value-dimension coordinate of element e of the
// histogram's node: the bin of e's own value (self source) or of e's first
// valued child in the source node; 0 when no value is present.
func (sk *Sketch) valueCoord(e xmltree.NodeID, id graphsyn.NodeID, vd *ValueDim) int32 {
	d := sk.Syn.Doc
	if vd.Source == id {
		if n := d.Node(e); n.HasValue {
			return vd.binOf(n.Value)
		}
		return 0
	}
	for _, c := range d.Node(e).Children {
		if sk.Syn.NodeOf(c) == vd.Source {
			if n := d.Node(c); n.HasValue {
				return vd.binOf(n.Value)
			}
		}
	}
	return 0
}

// AddValueDim appends a value dimension for source to node id's extended
// histogram and rebuilds it. It reports whether the dimension was added
// (false when invalid or already present).
func (sk *Sketch) AddValueDim(id, source graphsyn.NodeID, bins int) bool {
	s := sk.Summaries[id]
	if s == nil {
		return false
	}
	for _, vd := range s.ValueDims {
		if vd.Source == source {
			return false
		}
	}
	vd := sk.newValueDim(source, bins)
	if vd == nil || !sk.valueDimValid(id, vd) {
		return false
	}
	s.ValueDims = append(s.ValueDims, vd)
	sk.RebuildNode(id)
	// Rebuild may drop an invalid dimension; confirm it survived.
	for _, kept := range sk.Summaries[id].ValueDims {
		if kept.Source == source {
			return true
		}
	}
	return false
}

// valueDimIndex returns the histogram dimension index of the value dim with
// the given source, or -1. Value dimensions follow the scope edges.
func (s *NodeSummary) valueDimIndex(source graphsyn.NodeID) int {
	for k, vd := range s.ValueDims {
		if vd.Source == source {
			return len(s.Scope) + k
		}
	}
	return -1
}

// describeValueDim renders a value dimension for diagnostics.
func (vd *ValueDim) String() string {
	return fmt.Sprintf("vdim{source %d, %d bins, [%d..%d]}", vd.Source, vd.bins(), vd.Lo, vd.Bounds[len(vd.Bounds)-1])
}

package xsketch

import (
	"math"
	"sync"
	"testing"

	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/workload"
	"xsketch/internal/xmlgen"
	"xsketch/internal/xmltree"
)

// xmarkQueries samples a mixed P+V workload over a small XMark document.
func xmarkQueries(n int) (*xmltree.Document, []*twig.Query) {
	d := xmlgen.XMark(xmlgen.Config{Seed: 1, Scale: 0.02})
	cfg := workload.DefaultConfig(workload.KindPV)
	cfg.NumQueries = n
	cfg.Seed = 3
	w := workload.Generate(d, cfg)
	qs := make([]*twig.Query, len(w.Queries))
	for i, q := range w.Queries {
		qs[i] = q.Twig
	}
	return d, qs
}

func TestEstimateBatchMatchesSequential(t *testing.T) {
	d, qs := xmarkQueries(50)
	for _, workers := range []int{2, 4, 8} {
		seq := New(d, DefaultConfig())
		par := New(d, DefaultConfig())
		batch := par.EstimateBatch(qs, workers)
		if len(batch) != len(qs) {
			t.Fatalf("batch returned %d results for %d queries", len(batch), len(qs))
		}
		for i, q := range qs {
			want := seq.EstimateQueryResult(q)
			got := batch[i]
			if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) {
				t.Errorf("workers=%d query %d: batch %v != sequential %v", workers, i, got.Estimate, want.Estimate)
			}
			if got.Truncated != want.Truncated {
				t.Errorf("workers=%d query %d: truncated %v != %v", workers, i, got.Truncated, want.Truncated)
			}
		}
	}
}

func TestEstimateBatchConcurrentWithStats(t *testing.T) {
	// Exercised under -race: several goroutines run batches on one sketch
	// while another polls the cache counters.
	d, qs := xmarkQueries(30)
	sk := New(d, DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sk.EstimateBatch(qs, 4)
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			sk.EstimatorStats()
		}
	}()
	wg.Wait()
	<-done
	st := sk.EstimatorStats()
	if st.Misses == 0 {
		t.Fatalf("stats after batches: %+v, want misses > 0", st)
	}
}

func TestEstimatorStatsAndInvalidation(t *testing.T) {
	sk := bibSketch(t)
	q := twig.MustParse("t0 in author, t1 in t0//title, t2 in t0/name")
	before := sk.EstimateQuery(q)
	sk.EstimateQuery(q)
	st := sk.EstimatorStats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("stats after repeated estimation: %+v, want hits and misses", st)
	}
	// Refinement invalidates: the rebuilt node's cache entries are dropped
	// and re-estimation reproduces the same value from scratch.
	sk.RebuildNode(synNode(t, sk, "author"))
	if got := sk.EstimatorStats(); got.Evictions == 0 {
		t.Fatalf("stats after RebuildNode: %+v, want evictions > 0", got)
	}
	approx(t, sk.EstimateQuery(q), before, 1e-12, "estimate after invalidation")
}

func TestDisableEstimatorCacheParity(t *testing.T) {
	d, qs := xmarkQueries(25)
	cached := New(d, DefaultConfig())
	cfg := DefaultConfig()
	cfg.DisableEstimatorCache = true
	uncached := New(d, cfg)
	for i, q := range qs {
		c := cached.EstimateQuery(q)
		u := uncached.EstimateQuery(q)
		if math.Float64bits(c) != math.Float64bits(u) {
			t.Errorf("query %d: cached %v != uncached %v", i, c, u)
		}
	}
	if st := uncached.EstimatorStats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}

func TestExistsFractionDepthGuard(t *testing.T) {
	sk := bibSketch(t)
	id := synNode(t, sk, "author")
	steps := pathexpr.MustParse("paper/title").Steps
	if v, clean := sk.existsFraction(id, steps, maxExistsDepth+1); v != 0 || clean {
		t.Fatalf("past guard: got (%v, %v), want (0, false)", v, clean)
	}
	// Guarded results must not be cached: the same lookup at depth 0 still
	// computes the real value.
	if v, clean := sk.existsFraction(id, steps, 0); v <= 0 || !clean {
		t.Fatalf("after guarded call: got (%v, %v), want positive and clean", v, clean)
	}
}

func TestValueFractionEmptyExtent(t *testing.T) {
	d := xmltree.NewDocument("r")
	for i := 0; i < 3; i++ {
		d.AddValueChild(d.Root(), "v", int64(i))
	}
	sk := New(d, exactConfig())
	id := synNode(t, sk, "v")
	// Fabricate the stale-summary scenario: a node whose extent was emptied
	// by refinement but whose value histogram still holds mass.
	sk.Syn.Node(id).Extent = nil
	pred := &pathexpr.ValuePred{Lo: 0, Hi: 2}
	if got := sk.valueFraction(id, pred); got != 0 {
		t.Fatalf("valueFraction over empty extent = %v, want 0", got)
	}
}

func TestEstimateBatchDegenerateInputs(t *testing.T) {
	sk := bibSketch(t)
	if got := sk.EstimateBatch(nil, 4); len(got) != 0 {
		t.Fatalf("nil batch returned %d results", len(got))
	}
	qs := []*twig.Query{twig.MustParse("t0 in author")}
	for _, workers := range []int{-1, 0, 1, 16} {
		res := sk.EstimateBatch(qs, workers)
		if len(res) != 1 {
			t.Fatalf("workers=%d: %d results", workers, len(res))
		}
		approx(t, res[0].Estimate, 3, 1e-9, "author count")
	}
}

package xsketch

import (
	"runtime"
	"sync"

	"xsketch/internal/twig"
)

// EstimateResult is one query's outcome from the estimation engine.
type EstimateResult struct {
	// Estimate is the estimated number of binding tuples (the value
	// EstimateQuery returns).
	Estimate float64
	// Truncated reports that embedding enumeration exhausted
	// Config.MaxEmbeddings, so the estimate was computed from a truncated
	// (but non-empty, when any embedding exists) embedding set.
	Truncated bool
}

// EstimateQueryResult estimates a twig query and reports whether the
// embedding enumeration was truncated by Config.MaxEmbeddings.
func (sk *Sketch) EstimateQueryResult(q *twig.Query) EstimateResult {
	ems, truncated := sk.EmbeddingsTruncated(q)
	total := 0.0
	for _, em := range ems {
		total += sk.EstimateEmbedding(em)
	}
	return EstimateResult{Estimate: total, Truncated: truncated}
}

// EstimateBatch estimates a workload of twig queries on a worker pool,
// returning one result per query in input order. workers <= 0 selects
// GOMAXPROCS. Results are bit-identical to calling EstimateQuery on each
// query sequentially, for any worker count: every memoized sub-result is a
// pure function of the (unchanging) sketch, so cache interleaving cannot
// alter values. The batch shares the sketch's estimation cache, which is
// where the speedup comes from — workload queries overlap heavily in the
// structural sub-results they need.
func (sk *Sketch) EstimateBatch(queries []*twig.Query, workers int) []EstimateResult {
	out := make([]EstimateResult, len(queries))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, q := range queries {
			out[i] = sk.EstimateQueryResult(q)
		}
		return out
	}
	idx := make(chan int, len(queries))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = sk.EstimateQueryResult(queries[i])
			}
		}()
	}
	for i := range queries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

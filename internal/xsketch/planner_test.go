package xsketch

import (
	"context"
	"math"
	"sync"
	"testing"

	"xsketch/internal/plan"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// plannerFixtures returns named sketches covering every compiled execution
// mode: the Bibliography sketch exercises factorized and enumerated shapes
// (backward scope conditions, branch predicates), and the typed-movie
// sketches exercise value-dimension uses (self, branch, covered child).
func plannerFixtures(t *testing.T) map[string]*Sketch {
	t.Helper()
	bib := New(xmltree.Bibliography(), exactConfig())

	joint := New(typedDoc(), exactConfig())
	movie := synNode(t, joint, "movie")
	typ := synNode(t, joint, "type")
	if !joint.AddValueDim(movie, typ, 8) {
		t.Fatal("AddValueDim failed")
	}

	return map[string]*Sketch{"bib": bib, "movies": joint}
}

// plannerFixtureQueries lists the workload per fixture name.
var plannerFixtureQueries = map[string][]string{
	"bib": {
		"t0 in author, t1 in t0//title, t2 in t0/name",
		"t0 in author, t1 in t0/paper, t2 in t1/title, t3 in t0/name",
		"t0 in //paper[/year=1], t1 in t0/title",
		"t0 in author[/name=2], t1 in t0/paper",
		"t0 in bib, t1 in t0/author",
		"t0 in //nosuchtag",
	},
	"movies": {
		"t0 in movie[type=0], t1 in t0/actor",
		"t0 in movie[type=9], t1 in t0/actor",
		"t0 in movie, t1 in t0/type[=0], t2 in t0/actor",
		"t0 in movie, t1 in t0/actor",
	},
}

// TestPlannedBitIdentical asserts the tentpole invariant: the compiled-plan
// path produces bit-for-bit the interpreter's float for every fixture
// query, both on the cold (compile) call and on the warm (cache-hit) call.
func TestPlannedBitIdentical(t *testing.T) {
	for name, sk := range plannerFixtures(t) {
		for _, qs := range plannerFixtureQueries[name] {
			q := twig.MustParse(qs)
			want := sk.EstimateQueryResult(q)
			for pass, label := range []string{"cold", "warm"} {
				got, err := sk.EstimateQueryPlanned(qs)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, qs, err)
				}
				if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) {
					t.Fatalf("%s/%s (%s): planned %v != interpreted %v",
						name, qs, label, got.Estimate, want.Estimate)
				}
				if got.Truncated != want.Truncated {
					t.Fatalf("%s/%s (%s pass %d): truncated %v != %v",
						name, qs, label, pass, got.Truncated, want.Truncated)
				}
			}
		}
	}
}

// TestPlannedNormalizedSpellingsShareOnePlan asserts whitespace variants of
// one query resolve to the same cached program without reparsing.
func TestPlannedNormalizedSpellingsShareOnePlan(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	spellings := []string{
		"t0 in author, t1 in t0/paper",
		"for t0 in author, t1 in t0/paper",
		"t0  in\tauthor,\n t1 in t0/paper",
	}
	p0, err := sk.PlanQueryText(spellings[0])
	if err != nil {
		t.Fatal(err)
	}
	// The canonical spelling itself must hit too (it takes the
	// canonical-map fallback in Lookup rather than an alias slot).
	spellings = append(spellings, p0.Canonical)
	for _, s := range spellings[1:] {
		p, err := sk.PlanQueryText(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if p != p0 {
			t.Fatalf("%q compiled a second program", s)
		}
	}
	st := sk.PlanCacheStats()
	if st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 1 miss / size 1 across %d spellings", st, len(spellings))
	}
	if st.Hits < uint64(len(spellings)-1) {
		t.Fatalf("stats = %+v, want >= %d hits", st, len(spellings)-1)
	}
}

// TestPlannedZeroAllocsOnHit is the tentpole perf gate: once a query's plan
// is cached, estimating it allocates nothing — lookup, execution scratch,
// and histogram match buffers are all reused.
func TestPlannedZeroAllocsOnHit(t *testing.T) {
	for name, sk := range plannerFixtures(t) {
		for _, qs := range plannerFixtureQueries[name] {
			p, err := sk.PlanQueryText(qs)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, qs, err)
			}
			if _, err := sk.EstimateQueryPlanned(qs); err != nil { // warm buffers
				t.Fatalf("%s/%s: %v", name, qs, err)
			}
			// Both the given spelling (alias hit) and the canonical one
			// (canonical-map fallback) must be allocation-free.
			for _, text := range []string{qs, p.Canonical} {
				allocs := testing.AllocsPerRun(200, func() {
					if _, err := sk.EstimateQueryPlanned(text); err != nil {
						t.Fatal(err)
					}
				})
				if allocs != 0 {
					t.Fatalf("%s/%s: %v allocs/op on the cache-hit path, want 0", name, text, allocs)
				}
			}
		}
	}
}

// TestPlanCacheInvalidation is the satellite-4 regression test: mutating
// the sketch between planned estimates must retire the cached plan, and the
// replanned estimate must match a fresh interpreted estimate exactly.
func TestPlanCacheInvalidation(t *testing.T) {
	d := typedDoc()
	sk := New(d, exactConfig())
	qs := "t0 in movie, t1 in t0/actor"
	q := twig.MustParse(qs)

	before, err := sk.EstimateQueryPlanned(qs)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate: coarsen the movie histogram, then add a value dimension.
	// Both route through RebuildNode and advance the generation.
	movie := synNode(t, sk, "movie")
	if !sk.SetBuckets(movie, 1) {
		t.Fatal("SetBuckets failed")
	}
	typ := synNode(t, sk, "type")
	if !sk.AddValueDim(movie, typ, 8) {
		t.Fatal("AddValueDim failed")
	}

	after, err := sk.EstimateQueryPlanned(qs)
	if err != nil {
		t.Fatal(err)
	}
	want := sk.EstimateQueryResult(q)
	if math.Float64bits(after.Estimate) != math.Float64bits(want.Estimate) {
		t.Fatalf("replanned %v != interpreted %v after mutation", after.Estimate, want.Estimate)
	}
	// The coarsened histogram genuinely changes nothing here, but the value
	// dimension estimate must match an entirely fresh sketch too.
	fresh := New(d, exactConfig())
	if !fresh.SetBuckets(synNode(t, fresh, "movie"), 1) {
		t.Fatal("fresh SetBuckets failed")
	}
	if !fresh.AddValueDim(synNode(t, fresh, "movie"), synNode(t, fresh, "type"), 8) {
		t.Fatal("fresh AddValueDim failed")
	}
	freshWant := fresh.EstimateQueryResult(q)
	if math.Abs(after.Estimate-freshWant.Estimate) > 1e-12 {
		t.Fatalf("replanned %v deviates from fresh-sketch %v", after.Estimate, freshWant.Estimate)
	}
	_ = before

	// The stale entry must be gone from the cache: a plan held across the
	// mutation recompiles rather than executing stale state.
	stale, err := sk.PlanQueryText(qs)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Generation != sk.generation() {
		t.Fatalf("post-mutation plan carries generation %d, sketch at %d", stale.Generation, sk.generation())
	}
}

// TestEstimatePlanHeldAcrossMutation asserts a caller-held *Program from
// before a mutation is transparently recompiled by EstimatePlan.
func TestEstimatePlanHeldAcrossMutation(t *testing.T) {
	sk := New(typedDoc(), exactConfig())
	qs := "t0 in movie, t1 in t0/actor"
	p, err := sk.PlanQueryText(qs)
	if err != nil {
		t.Fatal(err)
	}
	movie := synNode(t, sk, "movie")
	typ := synNode(t, sk, "type")
	if !sk.AddValueDim(movie, typ, 8) {
		t.Fatal("AddValueDim failed")
	}
	got := sk.EstimatePlan(p) // p is stale now
	want := sk.EstimateQueryResult(twig.MustParse(qs))
	if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) {
		t.Fatalf("stale-plan estimate %v != interpreted %v", got.Estimate, want.Estimate)
	}
}

// TestPlanCacheDisabled asserts PlanCacheSize < 0 still estimates correctly
// (compiling every call) and reports zero stats.
func TestPlanCacheDisabled(t *testing.T) {
	cfg := exactConfig()
	cfg.PlanCacheSize = -1
	sk := New(xmltree.Bibliography(), cfg)
	qs := "t0 in author, t1 in t0/paper"
	want := sk.EstimateQueryResult(twig.MustParse(qs))
	for i := 0; i < 2; i++ {
		got, err := sk.EstimateQueryPlanned(qs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) {
			t.Fatalf("uncached planned %v != interpreted %v", got.Estimate, want.Estimate)
		}
	}
	if st := sk.PlanCacheStats(); st != (plan.Stats{}) {
		t.Fatalf("disabled cache reported stats %+v", st)
	}
}

// TestPlannedTruncation asserts the MaxEmbeddings flag survives
// compilation.
func TestPlannedTruncation(t *testing.T) {
	cfg := exactConfig()
	cfg.MaxEmbeddings = 1
	sk := New(xmltree.Bibliography(), cfg)
	got, err := sk.EstimateQueryPlanned("t0 in author, t1 in t0//title")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated {
		t.Fatal("planned estimate lost the truncation flag")
	}
}

// TestPlannedParseError asserts invalid query text surfaces the parser's
// error rather than a plan.
func TestPlannedParseError(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	if _, err := sk.EstimateQueryPlanned("t0 in"); err == nil {
		t.Fatal("expected a parse error")
	}
}

// TestPlannedConcurrent hammers one sketch's planned path from many
// goroutines (meaningful under -race): the shared plan cache and scratch
// pool must never change a result.
func TestPlannedConcurrent(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	queries := plannerFixtureQueries["bib"]
	want := make([]EstimateResult, len(queries))
	for i, qs := range queries {
		want[i] = sk.EstimateQueryResult(twig.MustParse(qs))
	}
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j := (w + i) % len(queries)
				got, err := sk.EstimateQueryPlanned(queries[j])
				if err != nil {
					t.Errorf("%s: %v", queries[j], err)
					return
				}
				if math.Float64bits(got.Estimate) != math.Float64bits(want[j].Estimate) {
					t.Errorf("%s: concurrent planned %v != %v", queries[j], got.Estimate, want[j].Estimate)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestPlannedBatchBitIdentical asserts the planned batch entry point
// matches the interpreted batch for every worker count.
func TestPlannedBatchBitIdentical(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	var queries []*twig.Query
	for _, qs := range plannerFixtureQueries["bib"] {
		queries = append(queries, twig.MustParse(qs))
	}
	want := sk.EstimateBatch(queries, 1)
	for _, workers := range []int{0, 1, 2, 8} {
		got := sk.EstimateBatchPlanned(queries, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i].Estimate) != math.Float64bits(want[i].Estimate) ||
				got[i].Truncated != want[i].Truncated {
				t.Fatalf("workers=%d query %d: planned %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPlannedContextCancellation asserts the context-aware entry points
// observe cancellation up front.
func TestPlannedContextCancellation(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sk.EstimateQueryPlannedContext(ctx, "t0 in author"); err == nil {
		t.Fatal("planned estimate ignored a cancelled context")
	}
	queries := []*twig.Query{twig.MustParse("t0 in author")}
	if _, err := sk.EstimateBatchPlannedContext(ctx, queries, 2); err == nil {
		t.Fatal("planned batch ignored a cancelled context")
	}
}

// TestPlanCacheLRUInSketch asserts the sketch-level cache honors
// Config.PlanCacheSize.
func TestPlanCacheLRUInSketch(t *testing.T) {
	cfg := exactConfig()
	cfg.PlanCacheSize = 2
	sk := New(xmltree.Bibliography(), cfg)
	for _, qs := range []string{"t0 in author", "t0 in bib", "t0 in paper"} {
		if _, err := sk.EstimateQueryPlanned(qs); err != nil {
			t.Fatal(err)
		}
	}
	st := sk.PlanCacheStats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want size 2 / 1 eviction", st)
	}
}

// TestProgramTagsInterned asserts compilation interns every step label of
// the query, including branch predicates, resolving document tags.
func TestProgramTagsInterned(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	p, err := sk.PlanQueryText("t0 in author[/name=2], t1 in t0/paper, t2 in t1/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]int{}
	for _, tag := range p.Tags {
		byLabel[tag.Label] = tag.ID
	}
	for _, label := range []string{"author", "name", "paper", "nosuch"} {
		id, ok := byLabel[label]
		if !ok {
			t.Fatalf("label %q not interned (tags: %v)", label, p.Tags)
		}
		if label == "nosuch" {
			if id != -1 {
				t.Fatalf("unknown label %q resolved to %d", label, id)
			}
		} else if id < 0 {
			t.Fatalf("document label %q unresolved", label)
		}
	}
}

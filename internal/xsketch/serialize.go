package xsketch

import (
	"encoding/gob"
	"fmt"
	"io"

	"xsketch/internal/graphsyn"
	"xsketch/internal/xmltree"
)

// Synopsis persistence. A Twig XSKETCH is built once (offline, against the
// document) and consulted many times by an optimizer, so the library
// persists the *construction decisions* — the element partition, per-node
// budgets, expanded scopes and value dimensions — rather than the derived
// histograms; Load replays them against the document, reusing the rebuild
// machinery and guaranteeing the loaded synopsis is bit-for-bit consistent
// with a freshly built one.

// sketchGob is the wire format (encoding/gob).
type sketchGob struct {
	Version   int
	DocLen    int
	RootTag   string
	Assign    []graphsyn.NodeID
	Tags      []string
	Summaries []summaryGob
	Cfg       Config
}

type summaryGob struct {
	Buckets      int
	ValueBuckets int
	ExtraScope   []ScopeEdge
	ValueDims    []*ValueDim
}

const gobVersion = 1

// Save writes the sketch's construction state to w.
func Save(w io.Writer, sk *Sketch) error {
	d := sk.Syn.Doc
	g := sketchGob{
		Version: gobVersion,
		DocLen:  d.Len(),
		RootTag: d.Tag(d.Node(d.Root()).Tag),
		Assign:  sk.Syn.Assignment(),
		Cfg:     sk.Cfg,
	}
	for _, n := range sk.Syn.Nodes() {
		g.Tags = append(g.Tags, d.Tag(n.Tag))
		s := sk.Summaries[n.ID]
		sg := summaryGob{}
		if s != nil {
			sg.Buckets = s.Buckets
			sg.ValueBuckets = s.ValueBuckets
			sg.ExtraScope = s.ExtraScope
			sg.ValueDims = s.ValueDims
		}
		g.Summaries = append(g.Summaries, sg)
	}
	if err := gob.NewEncoder(w).Encode(&g); err != nil {
		return fmt.Errorf("xsketch: save: %w", err)
	}
	return nil
}

// Load reads a sketch persisted by Save and rebinds it to the document it
// was built from. The document must be structurally identical (Load
// verifies the element count, root tag and per-node tag agreement).
func Load(r io.Reader, d *xmltree.Document) (*Sketch, error) {
	var g sketchGob
	if err := gob.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("xsketch: load: %w", err)
	}
	if g.Version != gobVersion {
		return nil, fmt.Errorf("xsketch: load: unsupported version %d", g.Version)
	}
	if g.DocLen != d.Len() {
		return nil, fmt.Errorf("xsketch: load: document has %d elements, synopsis was built on %d", d.Len(), g.DocLen)
	}
	if root := d.Tag(d.Node(d.Root()).Tag); root != g.RootTag {
		return nil, fmt.Errorf("xsketch: load: document root %q, synopsis root %q", root, g.RootTag)
	}
	syn, err := graphsyn.FromAssignment(d, g.Assign)
	if err != nil {
		return nil, fmt.Errorf("xsketch: load: %w", err)
	}
	if len(g.Summaries) != syn.NumNodes() || len(g.Tags) != syn.NumNodes() {
		return nil, fmt.Errorf("xsketch: load: %d summaries for %d nodes", len(g.Summaries), syn.NumNodes())
	}
	for i, n := range syn.Nodes() {
		if got := d.Tag(n.Tag); got != g.Tags[i] {
			return nil, fmt.Errorf("xsketch: load: node %d tag %q, synopsis recorded %q", i, got, g.Tags[i])
		}
	}
	sk := &Sketch{Syn: syn, Summaries: make(map[graphsyn.NodeID]*NodeSummary), Cfg: g.Cfg}
	for i, sg := range g.Summaries {
		sk.Summaries[graphsyn.NodeID(i)] = &NodeSummary{
			Buckets:      sg.Buckets,
			ValueBuckets: sg.ValueBuckets,
			ExtraScope:   sg.ExtraScope,
			ValueDims:    sg.ValueDims,
		}
	}
	sk.RebuildAll()
	if err := sk.Validate(); err != nil {
		return nil, fmt.Errorf("xsketch: load: rebuilt synopsis invalid: %w", err)
	}
	return sk, nil
}

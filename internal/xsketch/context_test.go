package xsketch

import (
	"context"
	"math"
	"testing"

	"xsketch/internal/twig"
)

func TestEstimateQueryContextMatchesPlain(t *testing.T) {
	d, qs := xmarkQueries(30)
	ctxSk := New(d, DefaultConfig())
	plain := New(d, DefaultConfig())
	for i, q := range qs {
		got, err := ctxSk.EstimateQueryContext(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := plain.EstimateQueryResult(q)
		if math.Float64bits(got.Estimate) != math.Float64bits(want.Estimate) || got.Truncated != want.Truncated {
			t.Errorf("query %d: context %+v != plain %+v", i, got, want)
		}
	}
}

func TestEstimateQueryContextCancelled(t *testing.T) {
	sk := bibSketch(t)
	q := twig.MustParse("t0 in author, t1 in t0//title")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sk.EstimateQueryContext(ctx, q)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != (EstimateResult{}) {
		t.Fatalf("cancelled estimate returned %+v, want zero", res)
	}
}

func TestEstimateBatchContextMatchesBatch(t *testing.T) {
	d, qs := xmarkQueries(40)
	for _, workers := range []int{1, 4} {
		a := New(d, DefaultConfig())
		b := New(d, DefaultConfig())
		got, err := a.EstimateBatchContext(context.Background(), qs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := b.EstimateBatch(qs, workers)
		for i := range qs {
			if math.Float64bits(got[i].Estimate) != math.Float64bits(want[i].Estimate) {
				t.Errorf("workers=%d query %d: %v != %v", workers, i, got[i].Estimate, want[i].Estimate)
			}
		}
	}
}

func TestEstimateBatchContextCancelled(t *testing.T) {
	d, qs := xmarkQueries(20)
	sk := New(d, DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sk.EstimateBatchContext(ctx, qs, 4)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(res), len(qs))
	}
}

func TestEstimatorCacheViewSnapshot(t *testing.T) {
	sk := bibSketch(t)
	view := sk.EstimatorCache()
	before := view.Snapshot()
	q := twig.MustParse("t0 in author, t1 in t0/name")
	sk.EstimateQuery(q)
	sk.EstimateQuery(q)
	after := view.Snapshot()
	if after.Misses <= before.Misses || after.Hits <= before.Hits {
		t.Fatalf("snapshot did not advance: before %+v after %+v", before, after)
	}
	if got, want := after, sk.EstimatorStats(); got != want {
		t.Fatalf("view snapshot %+v != EstimatorStats %+v", got, want)
	}
	delta := after.Sub(before)
	if delta.Hits != after.Hits-before.Hits {
		t.Fatalf("Sub delta %+v", delta)
	}
	if hr := after.HitRate(); hr <= 0 || hr >= 1 {
		t.Fatalf("hit rate %v, want in (0,1)", hr)
	}
	if (EstimatorStats{}).HitRate() != 0 {
		t.Fatal("zero-lookup hit rate should be 0")
	}
	if n := after.Lookups(); n != after.Hits+after.Misses {
		t.Fatalf("Lookups = %d", n)
	}
}

package xsketch

import (
	"fmt"
	"math"

	"xsketch/internal/graphsyn"
	"xsketch/internal/pathexpr"
	"xsketch/internal/trace"
	"xsketch/internal/twig"
)

// This file implements the paper's estimation framework (Section 4): the
// TREEPARSE decomposition of a twig embedding into expansion sets E_i,
// uncovered sets U_i and correlation sets D_i, and the selectivity
// expression
//
//	s(T) = |n_0| * Π_i Π_{C∈U_i} ΣF_i(C) * Σ_{E_1..E_m} Π_i F_i(E_i | D_i)
//
// Terms over uncovered counts use the Forward Uniformity assumption,
// F_i(E_i | D_i) terms use histogram buckets under Correlation Scope
// Independence, and counts absent from every scope separate multiplicatively
// under Forward Independence.

// EstimateQuery estimates the selectivity (number of binding tuples) of a
// twig query as the sum over its embeddings. It is safe for concurrent use;
// see EstimateBatch for the worker-pool form and EstimateQueryResult for
// the truncation-aware form.
func (sk *Sketch) EstimateQuery(q *twig.Query) float64 {
	return sk.EstimateQueryResult(q).Estimate
}

// EstimatePath estimates the selectivity of a single path expression (the
// number of elements it reaches from the document root). On tree data a
// chain twig's binding-tuple count equals the number of reached elements,
// so this reuses the twig machinery — the "Twig XSKETCHes compute low-error
// estimates of path selectivities" mode of the paper's Section 6.2.
func (sk *Sketch) EstimatePath(p *pathexpr.Path) float64 {
	return sk.EstimateQuery(twig.New(p))
}

// EstimateEmbedding estimates the selectivity of one embedding: the extent
// size of the (virtual) root node times the expected binding tuples per
// root element.
func (sk *Sketch) EstimateEmbedding(em *Embedding) float64 {
	return sk.estimateEmbeddingTraced(em, nil)
}

// estimator carries per-embedding precomputation: condSet lists the scope
// edges that some embedding node's histogram conditions on as a backward
// count, so ancestors know when bucket enumeration must carry into the
// recursion (and when the cheaper factorized form is exact). rec, when
// non-nil, receives per-stage latencies during evaluation (the structural
// trace rides on the *trace.Node threaded through contrib).
type estimator struct {
	sk      *Sketch
	condSet map[ScopeEdge]bool
	rec     *trace.Recorder
}

func newEstimator(sk *Sketch, em *Embedding) *estimator {
	e := &estimator{sk: sk, condSet: map[ScopeEdge]bool{}}
	var scan func(n *EmbNode)
	scan = func(n *EmbNode) {
		if s := sk.Summaries[n.Syn]; s != nil {
			for _, se := range s.Scope {
				if se.From != n.Syn {
					e.condSet[se] = true
				}
			}
		}
		for _, c := range n.Children {
			scan(c)
		}
	}
	scan(em.Root)
	return e
}

// assignment records the count values fixed by ancestor bucket choices,
// keyed by scope edge. It is nil when nothing is assigned.
type assignment map[ScopeEdge]float64

// vdUse is one value-dimension consumption at a node: a predicate whose
// selectivity is read off the extended histogram's value coordinate
// instead of an independent value histogram. countDim, when >= 0, marks a
// branch-existence use whose per-bucket probability is min(1, count *
// overlap) over the branch edge's count dimension.
type vdUse struct {
	dim      int
	vd       *ValueDim
	pred     *pathexpr.ValuePred
	countDim int
}

// contrib returns the expected number of binding tuples of the
// sub-embedding rooted at n, per element of n's synopsis node, given the
// ancestor count assignment. skipSelfValue marks that n's value predicate
// was already consumed by the parent's extended histogram.
//
// tn, when non-nil, is the node's trace skeleton: terms and the scope
// split are recorded on the first evaluation only (an ancestor's bucket
// enumeration re-evaluates subtrees once per bucket; Enter counts those).
// Tracing never changes the arithmetic — every trace write is guarded so
// the untraced path runs the identical computation with zero extra
// allocations.
func (e *estimator) contrib(n *EmbNode, assigned assignment, skipSelfValue bool, tn *trace.Node) float64 {
	first := tn.Enter()
	sk := e.sk
	s := sk.Summaries[n.Syn]
	var scope []ScopeEdge
	var vdims []*ValueDim
	if s != nil && s.Hist != nil {
		scope = s.Scope
		vdims = s.ValueDims
	}

	var uses []vdUse
	factor := 1.0

	// Self value predicate: use the extended histogram's self value
	// dimension when present (correlated with the count dims), otherwise
	// the independent per-node value histogram.
	if n.Value != nil && !skipSelfValue {
		if idx := valueDimIdx(s, n.Syn); idx >= 0 {
			uses = append(uses, vdUse{dim: idx, vd: vdims[idx-len(scope)], pred: n.Value, countDim: -1})
		} else {
			v := e.valueFraction(n)
			if first {
				tn.Terms = append(tn.Terms, trace.Term{
					Kind:       trace.TermValueFraction,
					Detail:     n.Value.String(),
					Value:      v,
					Assumption: trace.AssumptionFI,
				})
			}
			factor *= v
		}
	}
	// Branch predicates: a single-step branch with a value predicate whose
	// target has a value dimension here is consumed per bucket; everything
	// else falls back to the independent existence estimate.
	for _, br := range n.Branches {
		if u, ok := e.branchValueUse(s, scope, vdims, n, br); ok {
			uses = append(uses, u)
			continue
		}
		v, outcome := e.existsFraction(n.Syn, br.Steps)
		if first {
			tn.Terms = append(tn.Terms, trace.Term{
				Kind:       trace.TermExistsFraction,
				Detail:     br.String(),
				Value:      v,
				Assumption: trace.AssumptionFI,
				Cache:      outcome,
			})
		}
		factor *= v
	}
	if factor == 0 {
		return done(tn, first, trace.ModePruned, 0)
	}
	if len(n.Children) == 0 && len(uses) == 0 {
		return done(tn, first, trace.ModeLeaf, factor)
	}

	// TREEPARSE sets: covered children expand scope dims (E_i), the rest
	// fall to Forward Uniformity (U_i); D_i is the subset of scope assigned
	// by ancestors.
	type coveredChild struct {
		child *EmbNode
		dim   int
		skip  bool // child's value predicate consumed via a value dim
	}
	var covered []coveredChild
	var uncovered []*EmbNode
	uncoveredSkip := map[*EmbNode]bool{}
	for _, c := range n.Children {
		cc := coveredChild{child: c, dim: scopeIndex(scope, ScopeEdge{From: n.Syn, To: c.Syn})}
		// A child's value predicate correlates with this node's extended
		// histogram when a value dimension sourced at the child exists.
		if c.Value != nil {
			if idx := valueDimIdx(s, c.Syn); idx >= 0 {
				uses = append(uses, vdUse{dim: idx, vd: vdims[idx-len(scope)], pred: c.Value, countDim: -1})
				cc.skip = true
			}
		}
		if cc.dim >= 0 {
			covered = append(covered, cc)
		} else {
			uncovered = append(uncovered, c)
			if cc.skip {
				uncoveredSkip[c] = true
			}
		}
	}

	var dDims []int
	var dVals []float64
	for i, se := range scope {
		if v, ok := assigned[se]; ok {
			dDims = append(dDims, i)
			dVals = append(dVals, v)
		}
	}

	// First traced evaluation: record the TREEPARSE scope split (E/U/D)
	// and build the child trace skeletons, covered children first, so that
	// re-evaluations under later buckets find them by index.
	var childTNs []*trace.Node
	if tn != nil {
		if first {
			for _, cc := range covered {
				tn.Expanded = append(tn.Expanded, trace.Edge{From: int(n.Syn), To: int(cc.child.Syn)})
				tn.Children = append(tn.Children, e.newTraceNode(cc.child))
			}
			for _, c := range uncovered {
				tn.Uniform = append(tn.Uniform, int(c.Syn))
				tn.Children = append(tn.Children, e.newTraceNode(c))
			}
			for i, d := range dDims {
				se := scope[d]
				tn.Assigned = append(tn.Assigned, trace.Assigned{From: int(se.From), To: int(se.To), Count: dVals[i]})
			}
		}
		childTNs = tn.Children
	}

	// Uncovered children: Forward Uniformity for the count multiplier, and
	// Forward Independence to separate them from the covered expansion.
	// Their recursion still sees the ancestor assignment, so when one of
	// their descendants conditions on this node's expanded dims we must
	// evaluate them inside the bucket loop; value-dimension uses force the
	// same.
	needEnum := len(uses) > 0
	for _, cc := range covered {
		if e.condSet[scope[cc.dim]] {
			needEnum = true
			break
		}
	}

	uncMult := 1.0
	for _, c := range uncovered {
		v, outcome := e.avgCount(n.Syn, c.Syn)
		if first {
			tn.Terms = append(tn.Terms, trace.Term{
				Kind:       trace.TermAvgCount,
				Detail:     fmt.Sprintf("%d->%d", n.Syn, c.Syn),
				Value:      v,
				Assumption: trace.AssumptionFU,
				Cache:      outcome,
			})
		}
		uncMult *= v
	}
	if uncMult == 0 {
		return done(tn, first, trace.ModePruned, 0)
	}

	if !needEnum {
		// Factorized form: Σ_b f_b/denom Π c_dim times each child's own
		// contribution (no descendant conditions on our dims).
		part := 1.0
		if len(covered) > 0 {
			eDims := make([]int, len(covered))
			for i, cc := range covered {
				eDims[i] = cc.dim
			}
			if s == nil || s.Hist == nil {
				return done(tn, first, trace.ModePruned, 0)
			}
			e.rec.BeginStage(trace.StageHistogramLookup)
			part = s.Hist.CondSumProduct(eDims, dDims, dVals)
			e.rec.EndStage(trace.StageHistogramLookup)
			if first {
				tn.Terms = append(tn.Terms, trace.Term{
					Kind:       trace.TermCondSumProduct,
					Detail:     fmt.Sprintf("%d expanded dim(s) | %d assigned", len(eDims), len(dDims)),
					Value:      part,
					Assumption: trace.AssumptionCSI,
				})
			}
		}
		for i, cc := range covered {
			part *= e.contrib(cc.child, assigned, cc.skip, tnChild(childTNs, i))
			if part == 0 {
				return done(tn, first, trace.ModeFactorized, 0)
			}
		}
		for j, c := range uncovered {
			uncMult *= e.contrib(c, assigned, uncoveredSkip[c], tnChild(childTNs, len(covered)+j))
		}
		return done(tn, first, trace.ModeFactorized, factor*uncMult*part)
	}

	// Enumerated form: iterate bucket choices of this node's histogram,
	// applying value-dimension factors per bucket and extending the
	// assignment with the expanded dims for descendants that condition on
	// them.
	if s == nil || s.Hist == nil {
		return done(tn, first, trace.ModePruned, 0)
	}
	e.rec.BeginStage(trace.StageHistogramLookup)
	buckets, denom := s.Hist.Match(dDims, dVals)
	e.rec.EndStage(trace.StageHistogramLookup)
	if first {
		tn.Buckets = len(buckets)
		tn.Denominator = denom
	}
	if denom == 0 {
		return done(tn, first, trace.ModePruned, 0)
	}
	ext := make(assignment, len(assigned)+len(covered))
	for k, v := range assigned {
		ext[k] = v
	}
	total := 0.0
	for _, b := range buckets {
		w := b.Freq / denom
		for _, cc := range covered {
			w *= b.Centroid[cc.dim]
		}
		for _, u := range uses {
			ov := u.vd.overlap(b.Centroid[u.dim], u.pred)
			if u.countDim >= 0 {
				cnt := b.Centroid[u.countDim]
				p := cnt * ov
				if p > 1 {
					p = 1
				}
				ov = p
			}
			w *= ov
			if w == 0 {
				break
			}
		}
		if w == 0 {
			continue
		}
		for _, cc := range covered {
			ext[scope[cc.dim]] = b.Centroid[cc.dim]
		}
		for i, cc := range covered {
			w *= e.contrib(cc.child, ext, cc.skip, tnChild(childTNs, i))
			if w == 0 {
				break
			}
		}
		if w != 0 {
			for j, c := range uncovered {
				w *= e.contrib(c, ext, uncoveredSkip[c], tnChild(childTNs, len(covered)+j))
				if w == 0 {
					break
				}
			}
		}
		total += w
		for _, cc := range covered {
			delete(ext, scope[cc.dim])
		}
	}
	if first {
		tn.Terms = append(tn.Terms, trace.Term{
			Kind:       trace.TermBucketSum,
			Detail:     fmt.Sprintf("%d bucket(s), %d value-dim use(s)", len(buckets), len(uses)),
			Value:      total,
			Assumption: trace.AssumptionCSI,
		})
	}
	return done(tn, first, trace.ModeEnumerated, factor*uncMult*total)
}

// valueDimIdx returns the histogram dimension index of the value dim with
// the given source in summary s, or -1.
func valueDimIdx(s *NodeSummary, source graphsyn.NodeID) int {
	if s == nil {
		return -1
	}
	return s.valueDimIndex(source)
}

// branchValueUse matches a branching predicate against the node's value
// dimensions: a single-step branch [tag op value] whose label resolves to
// exactly one synopsis child carrying a value dimension is consumed per
// bucket. The per-bucket probability is min(1, count * overlap), where
// count is the branch edge's count dimension when in scope (1 otherwise).
func (e *estimator) branchValueUse(s *NodeSummary, scope []ScopeEdge, vdims []*ValueDim, n *EmbNode, br *pathexpr.Path) (vdUse, bool) {
	if s == nil || len(vdims) == 0 || len(br.Steps) != 1 {
		return vdUse{}, false
	}
	step := br.Steps[0]
	if step.Value == nil || len(step.Branches) != 0 || step.Axis != pathexpr.Child {
		return vdUse{}, false
	}
	tag, ok := e.sk.Syn.Doc.LookupTag(step.Label)
	if !ok {
		return vdUse{}, false
	}
	var target graphsyn.NodeID = -1
	matches := 0
	for _, c := range e.sk.Syn.Node(n.Syn).Children {
		if e.sk.Syn.Node(c).Tag == tag {
			matches++
			target = c
		}
	}
	if matches != 1 {
		return vdUse{}, false
	}
	idx := s.valueDimIndex(target)
	if idx < 0 {
		return vdUse{}, false
	}
	countDim := scopeIndex(scope, ScopeEdge{From: n.Syn, To: target})
	return vdUse{dim: idx, vd: vdims[idx-len(scope)], pred: step.Value, countDim: countDim}, true
}

// valueFraction delegates to the sketch-level form (see below).
func (e *estimator) valueFraction(n *EmbNode) float64 {
	return e.sk.valueFraction(n.Syn, n.Value)
}

// existsFraction delegates to the memoized sketch-level form, returning
// the estimator-cache outcome alongside the value for trace terms.
func (e *estimator) existsFraction(id graphsyn.NodeID, steps []*pathexpr.Step) (float64, string) {
	v, _, outcome := e.sk.existsFractionOutcome(id, steps, 0)
	return v, outcome
}

// avgCount delegates to the sketch-level form, returning the
// estimator-cache outcome alongside the value for trace terms.
func (e *estimator) avgCount(u, v graphsyn.NodeID) (float64, string) {
	return e.sk.avgCountOutcome(u, v)
}

// valueFraction estimates the fraction of the synopsis node's elements
// satisfying the value predicate, using the stored value histogram scaled
// by the share of valued elements; a predicate on a node with no value
// information — including a refined-away node with an empty extent —
// yields 0 (no element can be proven to carry a matching value).
func (sk *Sketch) valueFraction(id graphsyn.NodeID, pred *pathexpr.ValuePred) float64 {
	if pred == nil {
		return 1
	}
	s := sk.Summaries[id]
	if s == nil || s.VHist == nil || s.VHist.Total() == 0 {
		return 0
	}
	extent := sk.Syn.Node(id).Count()
	if extent == 0 {
		// A stale summary over an emptied extent would otherwise divide by
		// zero and leak Inf/NaN into the estimate.
		return 0
	}
	valuedShare := float64(s.VHist.Total()) / float64(extent)
	if valuedShare > 1 {
		valuedShare = 1
	}
	return s.VHist.Selectivity(pred.Lo, pred.Hi) * valuedShare
}

// existsFractionUncached estimates P(an element of node id has >= 1 match
// of the remaining branch steps). Following the single-path XSKETCH
// framework, an F-stable edge whose target certainly satisfies the rest
// contributes probability 1; otherwise the probability is approximated by
// the expected number of satisfying matches clamped to 1, summing over the
// alternative synopsis realizations of the step. The second return reports
// that no recursive call hit the depth guard (see existsFraction in
// estcache.go, the memoized entry point).
func (sk *Sketch) existsFractionUncached(id graphsyn.NodeID, steps []*pathexpr.Step, depth int) (float64, bool) {
	step := steps[0]
	expected := 0.0
	clean := true
	for _, seq := range sk.expandStep(id, step) {
		// Probability mass via the chain: expected count of elements at the
		// end of the sequence, times the probability each satisfies the
		// step predicates and the rest of the branch.
		target := seq[len(seq)-1]
		q := 1.0
		if step.Value != nil {
			q *= sk.valueFraction(target, step.Value)
		}
		for _, sub := range step.Branches {
			v, ok := sk.existsFraction(target, sub.Steps, depth+1)
			q *= v
			clean = clean && ok
		}
		if q == 0 {
			continue
		}
		v, ok := sk.existsFraction(target, steps[1:], depth+1)
		q *= v
		clean = clean && ok
		if q == 0 {
			continue
		}
		// Exact shortcut: a direct F-stable edge with certain satisfaction
		// guarantees existence for every element.
		if len(seq) == 1 && q == 1 {
			if edge := sk.Syn.Edge(id, target); edge != nil && edge.FStable {
				return 1, clean
			}
		}
		mult := 1.0
		prev := id
		for _, nodeID := range seq {
			mult *= sk.avgCount(prev, nodeID)
			prev = nodeID
		}
		expected += mult * q
	}
	return math.Min(1, expected), clean
}

// avgCount estimates the average number of children in node v per element
// of node u, i.e. ΣF_u(c_v) under Forward Uniformity:
// |u -> v| / |u|, where the edge count |u -> v| is taken from the stored
// model — |v| when the edge is B-stable, otherwise |v| split across v's
// parent nodes proportionally to their extent sizes (the single-path
// XSKETCH estimate for unstable edges).
func (sk *Sketch) avgCount(u, v graphsyn.NodeID) float64 {
	c, _ := sk.avgCountOutcome(u, v)
	return c
}

// avgCountOutcome is avgCount plus the estimator-cache outcome of the
// underlying edge-count lookup, for trace terms.
func (sk *Sketch) avgCountOutcome(u, v graphsyn.NodeID) (float64, string) {
	cu := float64(sk.Syn.Node(u).Count())
	if cu == 0 {
		return 0, trace.CacheOff
	}
	cnt, outcome := sk.estEdgeCountOutcome(u, v)
	return cnt / cu, outcome
}

// estEdgeCountUncached estimates |u -> v|: the number of elements of v
// whose parent lies in u. estEdgeCount in estcache.go is the memoized
// entry point.
func (sk *Sketch) estEdgeCountUncached(u, v graphsyn.NodeID) float64 {
	edge := sk.Syn.Edge(u, v)
	if edge == nil {
		return 0
	}
	if sk.Cfg.StoreEdgeCounts {
		return float64(edge.ChildCount)
	}
	nv := sk.Syn.Node(v)
	if edge.BStable {
		return float64(nv.Count())
	}
	var parentTotal float64
	for _, p := range nv.Parents {
		parentTotal += float64(sk.Syn.Node(p).Count())
	}
	if parentTotal == 0 {
		return 0
	}
	return float64(nv.Count()) * float64(sk.Syn.Node(u).Count()) / parentTotal
}

package xsketch

import (
	"math"
	"testing"

	"xsketch/internal/graphsyn"
	"xsketch/internal/xmltree"
)

// exactConfig gives budgets large enough that histograms on the small
// fixtures are exact.
func exactConfig() Config {
	cfg := DefaultConfig()
	cfg.InitialEdgeBuckets = 64
	cfg.InitialValueBuckets = 64
	return cfg
}

func bibSketch(t *testing.T) *Sketch {
	t.Helper()
	sk := New(xmltree.Bibliography(), exactConfig())
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return sk
}

func synNode(t *testing.T, sk *Sketch, tag string) graphsyn.NodeID {
	t.Helper()
	id, ok := sk.Syn.Doc.LookupTag(tag)
	if !ok {
		t.Fatalf("unknown tag %q", tag)
	}
	ids := sk.Syn.NodesByTag(id)
	if len(ids) != 1 {
		t.Fatalf("tag %q maps to %d synopsis nodes", tag, len(ids))
	}
	return ids[0]
}

func TestNewBuildsSummariesForAllNodes(t *testing.T) {
	sk := bibSketch(t)
	for _, n := range sk.Syn.Nodes() {
		s := sk.Summary(n.ID)
		if s == nil {
			t.Fatalf("node %d lacks summary", n.ID)
		}
		if s.Hist == nil {
			t.Fatalf("node %d lacks histogram", n.ID)
		}
	}
}

func TestDefaultScopeIsFStableChildren(t *testing.T) {
	sk := bibSketch(t)
	author := synNode(t, sk, "author")
	s := sk.Summary(author)
	// F-stable children of author: name and paper (book is not F-stable).
	if len(s.Scope) != 2 {
		t.Fatalf("author scope = %v", s.Scope)
	}
	name, paper, book := synNode(t, sk, "name"), synNode(t, sk, "paper"), synNode(t, sk, "book")
	if !containsScope(s.Scope, ScopeEdge{author, name}) || !containsScope(s.Scope, ScopeEdge{author, paper}) {
		t.Fatalf("author scope = %v", s.Scope)
	}
	if containsScope(s.Scope, ScopeEdge{author, book}) {
		t.Fatal("author scope contains the non-F-stable book edge")
	}
}

func TestEdgeDistributionForwardCounts(t *testing.T) {
	sk := bibSketch(t)
	author := synNode(t, sk, "author")
	paper := synNode(t, sk, "paper")
	sparse, err := sk.EdgeDistribution(author, []ScopeEdge{{author, paper}})
	if err != nil {
		t.Fatalf("EdgeDistribution: %v", err)
	}
	// a1 has 2 papers, a2 and a3 one each.
	pts := sparse.Points()
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Coords[0] != 1 || math.Abs(pts[0].Freq-2.0/3) > 1e-9 {
		t.Fatalf("point0 = %+v", pts[0])
	}
	if pts[1].Coords[0] != 2 || math.Abs(pts[1].Freq-1.0/3) > 1e-9 {
		t.Fatalf("point1 = %+v", pts[1])
	}
}

func TestEdgeDistributionExample31(t *testing.T) {
	// Paper Example 3.1: f_P(C_K, C_Y, C_P, C_N) with backward counts C_P,
	// C_N through the B-stable ancestor A.
	sk := bibSketch(t)
	author := synNode(t, sk, "author")
	paper := synNode(t, sk, "paper")
	keyword := synNode(t, sk, "keyword")
	year := synNode(t, sk, "year")
	name := synNode(t, sk, "name")
	scope := []ScopeEdge{
		{paper, keyword},
		{paper, year},
		{author, paper},
		{author, name},
	}
	sparse, err := sk.EdgeDistribution(paper, scope)
	if err != nil {
		t.Fatalf("EdgeDistribution: %v", err)
	}
	want := map[[4]int32]float64{
		{2, 1, 2, 1}: 0.25, // p4
		{1, 1, 2, 1}: 0.25, // p5
		{1, 1, 1, 1}: 0.50, // p8, p9
	}
	pts := sparse.Points()
	if len(pts) != len(want) {
		t.Fatalf("points = %+v", pts)
	}
	for _, p := range pts {
		k := [4]int32{p.Coords[0], p.Coords[1], p.Coords[2], p.Coords[3]}
		if math.Abs(p.Freq-want[k]) > 1e-9 {
			t.Fatalf("f_P%v = %v, want %v", k, p.Freq, want[k])
		}
	}
}

func TestEdgeDistributionRejectsBadScope(t *testing.T) {
	sk := bibSketch(t)
	paper := synNode(t, sk, "paper")
	book := synNode(t, sk, "book")
	title := synNode(t, sk, "title")
	// book is not a B-stable ancestor of paper.
	if _, err := sk.EdgeDistribution(paper, []ScopeEdge{{book, title}}); err == nil {
		t.Fatal("EdgeDistribution accepted a scope edge off the ancestor chain")
	}
}

func TestSizeBytesGrowsWithBudget(t *testing.T) {
	d := xmltree.Bibliography()
	small := New(d, DefaultConfig())
	big := New(d, exactConfig())
	if small.SizeBytes() >= big.SizeBytes() {
		t.Fatalf("size(small)=%d >= size(big)=%d", small.SizeBytes(), big.SizeBytes())
	}
}

func TestCloneIndependence(t *testing.T) {
	sk := bibSketch(t)
	c := sk.Clone()
	paper := synNode(t, sk, "paper")
	author := synNode(t, sk, "author")
	cs := c.Summary(paper)
	cs.ExtraScope = append(cs.ExtraScope, ScopeEdge{author, paper})
	c.RebuildNode(paper)
	if len(sk.Summary(paper).Scope) == len(cs.Scope) {
		t.Fatal("clone scope change leaked into original")
	}
	if err := sk.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestExtraScopeSurvivesRebuild(t *testing.T) {
	sk := bibSketch(t)
	paper := synNode(t, sk, "paper")
	author := synNode(t, sk, "author")
	s := sk.Summary(paper)
	s.ExtraScope = []ScopeEdge{{author, paper}}
	sk.RebuildNode(paper)
	if !containsScope(sk.Summary(paper).Scope, ScopeEdge{author, paper}) {
		t.Fatal("extra scope edge missing after rebuild")
	}
	sk.RebuildAll()
	if !containsScope(sk.Summary(paper).Scope, ScopeEdge{author, paper}) {
		t.Fatal("extra scope edge missing after RebuildAll")
	}
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValueHistogramsBuilt(t *testing.T) {
	sk := bibSketch(t)
	year := synNode(t, sk, "year")
	s := sk.Summary(year)
	if s.VHist == nil || s.VHist.Total() != 4 {
		t.Fatalf("year VHist = %+v", s.VHist)
	}
	name := synNode(t, sk, "name")
	if sk.Summary(name).VHist != nil {
		t.Fatal("valueless node got a value histogram")
	}
}

func TestValueHistogramsDisabled(t *testing.T) {
	cfg := exactConfig()
	cfg.InitialValueBuckets = 0
	sk := New(xmltree.Bibliography(), cfg)
	year := synNode(t, sk, "year")
	if sk.Summary(year).VHist != nil {
		t.Fatal("value histogram built despite 0 budget")
	}
}

func TestFromSynopsis(t *testing.T) {
	d := xmltree.Bibliography()
	syn := graphsyn.LabelSplit(d)
	// Pre-split the synopsis, then wrap it.
	paperTag, _ := d.LookupTag("paper")
	titleTag, _ := d.LookupTag("title")
	syn.BStabilize(syn.NodesByTag(paperTag)[0], syn.NodesByTag(titleTag)[0])
	sk := FromSynopsis(syn, exactConfig())
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sk.Syn.NumNodes() != 9 {
		t.Fatalf("NumNodes = %d, want 9", sk.Syn.NumNodes())
	}
	if sk.String() == "" {
		t.Fatal("empty String")
	}
}

package xsketch

import (
	"bytes"
	"testing"

	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := xmltree.Bibliography()
	sk := New(d, exactConfig())
	// Make the sketch non-trivial: a split, an expanded scope, a value
	// dimension and per-node budgets.
	paper := synNode(t, sk, "paper")
	author := synNode(t, sk, "author")
	year := synNode(t, sk, "year")
	title := synNode(t, sk, "title")
	if _, ok := sk.Syn.BStabilize(paper, title); !ok {
		t.Fatal("split failed")
	}
	sk.RebuildAll()
	sk.Summaries[paper].ExtraScope = append(sk.Summaries[paper].ExtraScope, ScopeEdge{author, paper})
	sk.Summaries[paper].Buckets = 32
	sk.RebuildNode(paper)
	if !sk.AddValueDim(paper, year, 4) {
		t.Fatal("AddValueDim failed")
	}
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	var buf bytes.Buffer
	if err := Save(&buf, sk); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), d)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded Validate: %v", err)
	}
	if loaded.SizeBytes() != sk.SizeBytes() {
		t.Fatalf("size %d -> %d after round trip", sk.SizeBytes(), loaded.SizeBytes())
	}
	if loaded.Syn.NumNodes() != sk.Syn.NumNodes() {
		t.Fatalf("nodes %d -> %d", sk.Syn.NumNodes(), loaded.Syn.NumNodes())
	}
	// Estimates are identical.
	queries := []string{
		"t0 in author, t1 in t0/name, t2 in t0/paper[year>2000], t3 in t2/title, t4 in t2/keyword",
		"t0 in //title",
		"t0 in author[book], t1 in t0/paper, t2 in t1/keyword",
	}
	for _, src := range queries {
		q := twig.MustParse(src)
		a, b := sk.EstimateQuery(q), loaded.EstimateQuery(q)
		if a != b {
			t.Fatalf("estimate changed after round trip: %v vs %v for %s", a, b, src)
		}
	}
}

func TestLoadRejectsWrongDocument(t *testing.T) {
	d := xmltree.Bibliography()
	sk := New(d, DefaultConfig())
	var buf bytes.Buffer
	if err := Save(&buf, sk); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Different element count.
	d2 := xmltree.Bibliography()
	d2.AddChild(d2.Root(), "author")
	if _, err := Load(bytes.NewReader(buf.Bytes()), d2); err == nil {
		t.Fatal("Load accepted a larger document")
	}
	// Same size, different root tag.
	d3 := xmltree.NewDocument("other")
	for d3.Len() < d.Len() {
		d3.AddChild(d3.Root(), "x")
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), d3); err == nil {
		t.Fatal("Load accepted a different document shape")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	d := xmltree.Bibliography()
	if _, err := Load(bytes.NewReader([]byte("not a gob stream")), d); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestSaveLoadPreservesBuiltSketch(t *testing.T) {
	// A sketch with several structural refinements applied by hand.
	d := xmltree.MotivatingSkewed()
	cfg := DefaultConfig()
	cfg.InitialEdgeBuckets = 4
	sk := New(d, cfg)
	var buf bytes.Buffer
	if err := Save(&buf, sk); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, d)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	q := twig.MustParse("t0 in a, t1 in t0/b, t2 in t0/c")
	if a, b := sk.EstimateQuery(q), loaded.EstimateQuery(q); a != b {
		t.Fatalf("estimates differ: %v vs %v", a, b)
	}
}

func TestWriteDOT(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	var buf bytes.Buffer
	if err := sk.WriteDOT(&buf); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"digraph xsketch", "author", "style=solid", "->"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// One node line per synopsis node.
	if got := bytes.Count(buf.Bytes(), []byte("[label=")); got < sk.Syn.NumNodes() {
		t.Fatalf("DOT has %d labeled entities for %d nodes", got, sk.Syn.NumNodes())
	}
}

func TestExplainQuery(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	q := twig.MustParse("t0 in author, t1 in t0//title, t2 in t0/name")
	ex := sk.ExplainQuery(q)
	if len(ex.Embeddings) != 2 {
		t.Fatalf("embeddings = %d, want 2", len(ex.Embeddings))
	}
	sum := 0.0
	for _, e := range ex.Embeddings {
		sum += e.Estimate
		if e.Root == nil {
			t.Fatal("embedding trace has no TREEPARSE root")
		}
		if e.Signature == "" {
			t.Fatal("embedding trace has no signature")
		}
	}
	if sum != ex.Estimate {
		t.Fatalf("total %v != sum %v", ex.Estimate, sum)
	}
	if ex.Estimate != sk.EstimateQuery(q) {
		t.Fatalf("explain total %v != estimate %v", ex.Estimate, sk.EstimateQuery(q))
	}
	var buf bytes.Buffer
	if err := ex.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"embedding 1", "author", "covered (E)", "uniform (U)", "event expand"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestStatsBreakdown(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	st := sk.Stats()
	if st.Nodes != sk.Syn.NumNodes() || st.Edges != sk.Syn.NumEdges() {
		t.Fatalf("stats shape = %+v", st)
	}
	if st.TotalBytes != sk.SizeBytes() {
		t.Fatalf("Stats total %d != SizeBytes %d", st.TotalBytes, sk.SizeBytes())
	}
	if st.StructureBytes <= 0 || st.HistogramBytes <= 0 || st.ValueBytes <= 0 {
		t.Fatalf("degenerate breakdown %+v", st)
	}
	if st.BStableEdges == 0 || st.FStableEdges == 0 {
		t.Fatalf("stability counts = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty String")
	}
	// Adding a value dim shows up in the breakdown.
	paper := synNode(t, sk, "paper")
	year := synNode(t, sk, "year")
	if !sk.AddValueDim(paper, year, 4) {
		t.Fatal("AddValueDim failed")
	}
	st2 := sk.Stats()
	if st2.ValueDims != 1 || st2.TotalBytes <= st.TotalBytes {
		t.Fatalf("value dim not reflected: %+v", st2)
	}
	if st2.TotalBytes != sk.SizeBytes() {
		t.Fatalf("Stats total %d != SizeBytes %d after dim", st2.TotalBytes, sk.SizeBytes())
	}
}

package xsketch

import (
	"fmt"
	"strings"

	"xsketch/internal/graphsyn"
	"xsketch/internal/pathexpr"
	"xsketch/internal/trace"
	"xsketch/internal/twig"
)

// This file implements the expansion of a twig query into its embeddings
// over the synopsis (paper Section 4). A maximal twig query replaces every
// multi-step path with a chain of single-step nodes and every '//' operator
// with valid document paths taken from the synopsis structure; an embedding
// then assigns a concrete synopsis node to every (expanded) twig node. The
// selectivity of the query is the sum of the selectivities of its unique
// embeddings.

// EmbNode is one node of a twig embedding: a synopsis node together with
// the value and branching predicates that apply at this navigational step,
// and the embedded children.
type EmbNode struct {
	Syn      graphsyn.NodeID
	Value    *pathexpr.ValuePred
	Branches []*pathexpr.Path
	Children []*EmbNode
}

// Embedding is a fully expanded match of a twig query over the synopsis.
// Root is a virtual node standing for the document root's synopsis node;
// its children embed the query's root path.
type Embedding struct {
	Root *EmbNode
}

// embedBudget threads the Cfg.MaxEmbeddings bound through the enumeration.
// The budget is soft: once exhausted, every enumeration level still yields
// its first alternative (instead of dropping partially built combinations
// and collapsing the whole query to zero embeddings), so a truncated
// enumeration always returns a usable prefix of the embedding set.
type embedBudget struct {
	left      int
	truncated bool
	// rec receives expansion events when tracing; nil otherwise.
	rec *trace.Recorder
}

// exhausted reports that the budget is spent, flagging truncation as a side
// effect (it is only consulted where further work is pending or skipped).
// The first exhaustion records the MaxEmbeddings soft-floor event.
func (b *embedBudget) exhausted() bool {
	if b.left <= 0 {
		if !b.truncated {
			b.truncated = true
			b.rec.Event(trace.Event{
				Kind:   trace.EventMaxEmbeddings,
				Detail: "embedding budget exhausted; enumeration truncated to a usable prefix",
			})
		}
		return true
	}
	return false
}

// Embeddings enumerates the embeddings of q over the synopsis. The
// enumeration expands '//' into simple (non-repeating) synopsis paths of
// length at most Cfg.MaxDescendantPathLen and caps the total embedding
// count at Cfg.MaxEmbeddings (returning the truncated set when the cap is
// hit; see EmbeddingsTruncated).
func (sk *Sketch) Embeddings(q *twig.Query) []*Embedding {
	ems, _ := sk.EmbeddingsTruncated(q)
	return ems
}

// EmbeddingsTruncated enumerates the embeddings of q and additionally
// reports whether enumeration was truncated by Cfg.MaxEmbeddings.
//
// Structurally identical embeddings are deduplicated before returning:
// both interpretations of an absolute first step naming the root tag (the
// plain root-children reading and the root-self reading, mirroring eval)
// draw from one budget and produce distinct trees by construction, but the
// dedup pass guarantees no synopsis realization is ever counted twice by
// EstimateQuery even if a future enumeration change introduces overlap.
func (sk *Sketch) EmbeddingsTruncated(q *twig.Query) ([]*Embedding, bool) {
	return sk.embeddingsTraced(q, nil)
}

// embeddingsTraced is EmbeddingsTruncated with an optional recorder
// receiving expansion, dedup and soft-floor events.
func (sk *Sketch) embeddingsTraced(q *twig.Query, rec *trace.Recorder) ([]*Embedding, bool) {
	if q.Root == nil {
		return nil, false
	}
	rootSyn := sk.Syn.NodeOf(sk.Syn.Doc.Root())
	bud := &embedBudget{left: sk.Cfg.MaxEmbeddings, rec: rec}
	if bud.left <= 0 {
		bud.left = 1 << 30
	}
	alts := sk.embedTwig(rootSyn, q.Root, bud)
	out := make([]*Embedding, 0, len(alts))
	for _, a := range alts {
		out = append(out, &Embedding{Root: &EmbNode{Syn: rootSyn, Children: []*EmbNode{a}}})
	}
	// Root-self interpretation of absolute paths (mirroring eval): a
	// child-axis first step naming the root element's tag consumes the
	// virtual root itself, its predicates attaching there.
	if steps := q.Root.Path.Steps; len(steps) > 0 && steps[0].Axis == pathexpr.Child {
		if tag, ok := sk.Syn.Doc.LookupTag(steps[0].Label); ok && sk.Syn.Node(rootSyn).Tag == tag {
			step0 := steps[0]
			if len(steps) == 1 {
				for _, combo := range sk.embedChildren(rootSyn, q.Root.Children, bud) {
					out = append(out, &Embedding{Root: &EmbNode{
						Syn: rootSyn, Value: step0.Value, Branches: step0.Branches, Children: combo,
					}})
				}
			} else {
				rq := q.Clone()
				rq.Root.Path.Steps = rq.Root.Path.Steps[1:]
				for _, alt := range sk.embedTwig(rootSyn, rq.Root, bud) {
					out = append(out, &Embedding{Root: &EmbNode{
						Syn: rootSyn, Value: step0.Value, Branches: step0.Branches, Children: []*EmbNode{alt},
					}})
				}
			}
		}
	}
	deduped := dedupeEmbeddings(out)
	if rec != nil && len(deduped) < len(out) {
		rec.Event(trace.Event{
			Kind:   trace.EventDedup,
			Detail: "structurally identical embeddings dropped",
			Count:  len(out) - len(deduped),
		})
	}
	return deduped, bud.truncated
}

// dedupeEmbeddings drops embeddings whose trees are structurally identical
// (same synopsis nodes, predicates and shape) to an earlier one, preserving
// enumeration order.
func dedupeEmbeddings(ems []*Embedding) []*Embedding {
	if len(ems) < 2 {
		return ems
	}
	seen := make(map[string]bool, len(ems))
	out := ems[:0]
	for _, em := range ems {
		sig := embSig(em.Root)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, em)
	}
	return out
}

// embSig renders an embedding subtree as a canonical signature string.
func embSig(n *EmbNode) string {
	var b strings.Builder
	writeEmbSig(&b, n)
	return b.String()
}

func writeEmbSig(b *strings.Builder, n *EmbNode) {
	fmt.Fprintf(b, "n%d", n.Syn)
	if n.Value != nil {
		fmt.Fprintf(b, "{%d:%d}", n.Value.Lo, n.Value.Hi)
	}
	for _, br := range n.Branches {
		fmt.Fprintf(b, "[%s]", br)
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		writeEmbSig(b, c)
	}
	b.WriteByte(')')
}

// embedChildren enumerates the cartesian combinations of the children's
// embedded alternatives from a fixed context node (used by the root-self
// interpretation, where the parent is the virtual root itself). With no
// children it yields one empty combination.
func (sk *Sketch) embedChildren(ctx graphsyn.NodeID, children []*twig.Node, bud *embedBudget) [][]*EmbNode {
	alts := make([][]*EmbNode, len(children))
	for i, ct := range children {
		alts[i] = sk.embedTwig(ctx, ct, bud)
		if len(alts[i]) == 0 {
			return nil
		}
	}
	var out [][]*EmbNode
	combo := make([]*EmbNode, len(children))
	var emit func(i int)
	emit = func(i int) {
		if i == len(children) {
			out = append(out, append([]*EmbNode(nil), combo...))
			bud.left--
			return
		}
		for _, a := range alts[i] {
			combo[i] = a
			emit(i + 1)
			if bud.exhausted() && len(out) > 0 {
				return
			}
		}
	}
	emit(0)
	return out
}

// chain is a single-path realization of one twig node's path expression:
// head is attached under the parent context, tail receives the twig node's
// children.
type chain struct {
	head, tail *EmbNode
}

// embedTwig returns the alternative embedded subtrees for twig node t
// evaluated from synopsis context ctx. Even with the budget exhausted it
// yields at least one subtree whenever t is structurally embeddable, so a
// truncated enumeration never collapses an embeddable query to zero
// embeddings (it returns a prefix of the full set instead).
func (sk *Sketch) embedTwig(ctx graphsyn.NodeID, t *twig.Node, bud *embedBudget) []*EmbNode {
	chains := sk.embedPath(ctx, t.Path.Steps, bud)
	if len(chains) == 0 {
		return nil
	}
	var out []*EmbNode
	for _, ch := range chains {
		// Embed each twig child from the chain tail; collect the
		// alternatives per child.
		childAlts := make([][]*EmbNode, len(t.Children))
		ok := true
		for i, ct := range t.Children {
			childAlts[i] = sk.embedTwig(ch.tail.Syn, ct, bud)
			if len(childAlts[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Cartesian product over the children's alternatives; each
		// combination needs its own copy of the chain.
		combo := make([]*EmbNode, len(t.Children))
		var emit func(i int)
		emit = func(i int) {
			if i == len(t.Children) {
				c := cloneChain(ch)
				c.tail.Children = append(c.tail.Children, combo...)
				out = append(out, c.head)
				bud.left--
				return
			}
			for _, alt := range childAlts[i] {
				combo[i] = alt
				emit(i + 1)
				if bud.exhausted() && len(out) > 0 {
					return
				}
			}
		}
		emit(0)
		if bud.exhausted() && len(out) > 0 {
			break
		}
	}
	return out
}

// embedPath enumerates the chains realizing a path expression from ctx.
func (sk *Sketch) embedPath(ctx graphsyn.NodeID, steps []*pathexpr.Step, bud *embedBudget) []chain {
	if len(steps) == 0 {
		return nil
	}
	step := steps[0]
	var out []chain
	for _, seq := range sk.expandStepTraced(ctx, step, bud.rec) {
		// seq is the node sequence realizing this step (intermediate '//'
		// nodes followed by the labeled target).
		head, tail := buildChain(seq)
		tail.Value = step.Value
		tail.Branches = step.Branches
		if len(steps) == 1 {
			out = append(out, chain{head, tail})
			continue
		}
		for _, rest := range sk.embedPath(tail.Syn, steps[1:], bud) {
			c := cloneChain(chain{head, tail})
			c.tail.Children = append(c.tail.Children, rest.head)
			out = append(out, chain{c.head, rest.tail})
		}
	}
	return out
}

// cloneChain deep-copies the spine from head to tail (children hanging off
// the spine are shared; the enumeration only ever appends to tails of fresh
// clones). It returns the cloned chain.
func cloneChain(c chain) chain {
	// The spine is the path of last-children? No: chains are built so that
	// each spine node has exactly the next spine node among its children
	// (appended last). We copy nodes along the spine by following the
	// recorded structure: walk from head following the child that leads to
	// tail. Since chains are trees built here, the spine is the unique path
	// head..tail; we rebuild it.
	spine := findSpine(c.head, c.tail)
	var prevCopy *EmbNode
	var headCopy, tailCopy *EmbNode
	for i, n := range spine {
		cp := &EmbNode{Syn: n.Syn, Value: n.Value, Branches: n.Branches}
		cp.Children = append(cp.Children, n.Children...)
		if i > 0 {
			// Replace the spine child in the parent copy.
			for j, ch := range prevCopy.Children {
				if ch == spine[i] {
					prevCopy.Children[j] = cp
					break
				}
			}
		} else {
			headCopy = cp
		}
		prevCopy = cp
		tailCopy = cp
	}
	return chain{headCopy, tailCopy}
}

// findSpine returns the node path from head to tail within the embedded
// subtree.
func findSpine(head, tail *EmbNode) []*EmbNode {
	var path []*EmbNode
	var dfs func(n *EmbNode) bool
	dfs = func(n *EmbNode) bool {
		path = append(path, n)
		if n == tail {
			return true
		}
		for _, c := range n.Children {
			if dfs(c) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	dfs(head)
	return path
}

// buildChain converts a synopsis-node sequence into a linked chain of
// embedding nodes, returning head and tail.
func buildChain(seq []graphsyn.NodeID) (head, tail *EmbNode) {
	for _, id := range seq {
		n := &EmbNode{Syn: id}
		if head == nil {
			head = n
		} else {
			tail.Children = append(tail.Children, n)
		}
		tail = n
	}
	return head, tail
}

// expandStepUncached enumerates the synopsis-node sequences realizing one
// step from ctx: a single child for the child axis, or every simple
// downward path of bounded length ending at the step's label for the
// descendant axis. expandStep in estcache.go is the memoized entry point.
func (sk *Sketch) expandStepUncached(ctx graphsyn.NodeID, step *pathexpr.Step) [][]graphsyn.NodeID {
	d := sk.Syn.Doc
	tag, ok := d.LookupTag(step.Label)
	if !ok {
		return nil
	}
	var out [][]graphsyn.NodeID
	switch step.Axis {
	case pathexpr.Child:
		for _, c := range sk.Syn.Node(ctx).Children {
			if sk.Syn.Node(c).Tag == tag {
				out = append(out, []graphsyn.NodeID{c})
			}
		}
	case pathexpr.Descendant:
		maxLen := sk.Cfg.MaxDescendantPathLen
		if maxLen <= 0 {
			maxLen = 10
		}
		var path []graphsyn.NodeID
		onPath := map[graphsyn.NodeID]bool{ctx: true}
		var dfs func(cur graphsyn.NodeID)
		dfs = func(cur graphsyn.NodeID) {
			if len(path) >= maxLen {
				return
			}
			for _, c := range sk.Syn.Node(cur).Children {
				if onPath[c] {
					continue
				}
				path = append(path, c)
				if sk.Syn.Node(c).Tag == tag {
					out = append(out, append([]graphsyn.NodeID(nil), path...))
				}
				onPath[c] = true
				dfs(c)
				onPath[c] = false
				path = path[:len(path)-1]
			}
		}
		dfs(ctx)
	}
	return out
}

// Walk visits every node of the embedding in depth-first order (excluding
// the virtual root), passing the node and its parent.
func (e *Embedding) Walk(fn func(n, parent *EmbNode)) {
	var rec func(n, parent *EmbNode)
	rec = func(n, parent *EmbNode) {
		fn(n, parent)
		for _, c := range n.Children {
			rec(c, n)
		}
	}
	for _, c := range e.Root.Children {
		rec(c, e.Root)
	}
}

// Size returns the number of embedding nodes (excluding the virtual root).
func (e *Embedding) Size() int {
	n := 0
	e.Walk(func(*EmbNode, *EmbNode) { n++ })
	return n
}

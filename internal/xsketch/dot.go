package xsketch

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the synopsis as a Graphviz digraph: one node per
// synopsis node labeled with its tag, extent size and histogram summary
// (scope dimensionality x buckets, plus value summary units), and one edge
// per synopsis edge styled by stability (solid = B+F stable, dashed =
// partially stable, dotted = unstable). Useful with `xbuild -dot`.
func (sk *Sketch) WriteDOT(w io.Writer) error {
	ew := &dotWriter{w: w}
	ew.printf("digraph xsketch {\n")
	ew.printf("  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	d := sk.Syn.Doc
	for _, n := range sk.Syn.Nodes() {
		label := fmt.Sprintf("%s\\n|%d|", escapeDOT(d.Tag(n.Tag)), n.Count())
		if s := sk.Summaries[n.ID]; s != nil && s.Hist != nil && len(s.Scope)+len(s.ValueDims) > 0 {
			label += fmt.Sprintf("\\nH: %dd x %db", len(s.Scope)+len(s.ValueDims), s.Hist.NumBuckets())
			if len(s.ValueDims) > 0 {
				label += fmt.Sprintf(" (+%dv)", len(s.ValueDims))
			}
		}
		if s := sk.Summaries[n.ID]; s != nil && s.VHist != nil {
			label += fmt.Sprintf("\\nV: %du", s.VHist.SizeUnits())
		}
		ew.printf("  n%d [label=\"%s\"];\n", n.ID, label)
	}
	for _, e := range sk.Syn.Edges() {
		style := "dotted"
		switch {
		case e.BStable && e.FStable:
			style = "solid"
		case e.BStable || e.FStable:
			style = "dashed"
		}
		flags := ""
		if e.BStable {
			flags += "B"
		}
		if e.FStable {
			flags += "F"
		}
		ew.printf("  n%d -> n%d [style=%s, label=\"%s\"];\n", e.From, e.To, style, flags)
	}
	ew.printf("}\n")
	return ew.err
}

type dotWriter struct {
	w   io.Writer
	err error
}

func (dw *dotWriter) printf(format string, args ...any) {
	if dw.err != nil {
		return
	}
	_, dw.err = fmt.Fprintf(dw.w, format, args...)
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

package xsketch

import (
	"fmt"
	"io"
	"strings"

	"xsketch/internal/twig"
)

// Explanation decomposes an EstimateQuery result for inspection: one entry
// per embedding, each with its estimate and a rendered tree showing the
// TREEPARSE decision at every node (which children were covered by the
// histogram scope, which fell to Forward Uniformity, and which predicates
// were consumed by value dimensions).
type Explanation struct {
	// Total is the query estimate (the sum over embeddings).
	Total float64
	// Embeddings lists the per-embedding breakdowns, in enumeration order.
	Embeddings []EmbeddingExplanation
}

// EmbeddingExplanation is the breakdown for one embedding.
type EmbeddingExplanation struct {
	Estimate float64
	// Tree is a human-readable rendering of the embedding with per-node
	// annotations.
	Tree string
}

// ExplainQuery estimates a query and returns the per-embedding breakdown.
func (sk *Sketch) ExplainQuery(q *twig.Query) *Explanation {
	ex := &Explanation{}
	for _, em := range sk.Embeddings(q) {
		est := sk.EstimateEmbedding(em)
		ex.Total += est
		ex.Embeddings = append(ex.Embeddings, EmbeddingExplanation{
			Estimate: est,
			Tree:     sk.renderEmbedding(em),
		})
	}
	return ex
}

// WriteTo renders the explanation as indented text.
func (ex *Explanation) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "estimate %.4f over %d embedding(s)\n", ex.Total, len(ex.Embeddings))
	for i, e := range ex.Embeddings {
		fmt.Fprintf(&b, "embedding %d: %.4f\n%s", i+1, e.Estimate, e.Tree)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the explanation.
func (ex *Explanation) String() string {
	var b strings.Builder
	ex.WriteTo(&b)
	return b.String()
}

// renderEmbedding draws the embedding tree with per-node TREEPARSE
// annotations.
func (sk *Sketch) renderEmbedding(em *Embedding) string {
	var b strings.Builder
	var rec func(n *EmbNode, depth int)
	rec = func(n *EmbNode, depth int) {
		d := sk.Syn.Doc
		indent := strings.Repeat("  ", depth)
		tag := d.Tag(sk.Syn.Node(n.Syn).Tag)
		fmt.Fprintf(&b, "%s%s (node %d, |%d|)", indent, tag, n.Syn, sk.Syn.Node(n.Syn).Count())

		s := sk.Summaries[n.Syn]
		var scope []ScopeEdge
		if s != nil && s.Hist != nil {
			scope = s.Scope
		}
		var notes []string
		if n.Value != nil {
			how := "value-hist"
			if valueDimIdx(s, n.Syn) >= 0 {
				how = "H^v self dim"
			}
			notes = append(notes, fmt.Sprintf("value %s via %s", n.Value, how))
		}
		for _, br := range n.Branches {
			notes = append(notes, fmt.Sprintf("branch [%s]", br))
		}
		covered, uncovered := 0, 0
		for _, c := range n.Children {
			if scopeIndex(scope, ScopeEdge{From: n.Syn, To: c.Syn}) >= 0 {
				covered++
			} else {
				uncovered++
			}
		}
		if covered > 0 {
			notes = append(notes, fmt.Sprintf("%d child(ren) covered (E)", covered))
		}
		if uncovered > 0 {
			notes = append(notes, fmt.Sprintf("%d child(ren) uniform (U)", uncovered))
		}
		if s != nil {
			for _, se := range s.Scope {
				if se.From != n.Syn {
					notes = append(notes, fmt.Sprintf("backward count %d->%d (D)", se.From, se.To))
				}
			}
			if len(s.ValueDims) > 0 {
				notes = append(notes, fmt.Sprintf("%d value dim(s)", len(s.ValueDims)))
			}
		}
		if len(notes) > 0 {
			fmt.Fprintf(&b, "  [%s]", strings.Join(notes, "; "))
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, c := range em.Root.Children {
		rec(c, 1)
	}
	return b.String()
}

package xsketch

import (
	"context"

	"xsketch/internal/trace"
	"xsketch/internal/twig"
)

// Explanation is the structured trace of one query estimate (the v2
// explain format): per-embedding TREEPARSE trees with E/U/D scope splits,
// every numeric factor with the assumption that justified it, expansion
// and dedup events, and estimator-cache outcomes. It renders as stable
// JSON (WriteJSON / MarshalIndent) or indented text (WriteText); see
// internal/trace for the model.
type Explanation = trace.Trace

// ExplainQuery estimates a query with tracing enabled and returns the
// structured explanation. The traced estimate is bit-identical to
// EstimateQuery; note the recorded cache outcomes depend on the sketch's
// estimator-cache state at call time (a repeated call sees hits where the
// first saw misses), so byte-stable output requires a fresh sketch or a
// disabled cache.
func (sk *Sketch) ExplainQuery(q *twig.Query) *Explanation {
	rec := trace.NewRecorder(trace.Options{})
	// The background context never cancels, so the error is structurally
	// impossible here.
	_, _ = sk.EstimateQueryTraced(context.Background(), q, rec)
	return rec.Trace()
}

package xsketch

import (
	"fmt"

	"xsketch/internal/graphsyn"
	"xsketch/internal/histogram"
	"xsketch/internal/xmltree"
)

// ScopeEdge identifies one count dimension of a node's edge histogram: the
// synopsis edge From -> To. For a forward count, From is the histogram's
// own node; for a backward count, From is a strict B-stable ancestor of it
// (paper Section 3.2).
type ScopeEdge struct {
	From, To graphsyn.NodeID
}

// NodeSummary holds the distribution information stored for one synopsis
// node: the edge-histogram scope, its bucket budget and compressed
// histogram, and the value histogram for nodes whose elements carry values.
type NodeSummary struct {
	// Scope lists the histogram dimensions in deterministic order: forward
	// counts first (ascending To), then backward counts (ascending
	// ancestor-distance, then To).
	Scope []ScopeEdge
	// Buckets is the bucket budget for the edge histogram.
	Buckets int
	// Hist is the compressed edge histogram over Scope.
	Hist *histogram.Histogram
	// ValueBuckets is the unit budget (buckets or wavelet coefficients) for
	// the value summary; 0 disables it.
	ValueBuckets int
	// VHist approximates the distribution of element values under the node
	// (an equi-depth histogram or a Haar wavelet synopsis, per
	// Config.WaveletValues); nil when the node has no valued elements or
	// ValueBuckets is 0.
	VHist histogram.ValueSummary
	// ExtraScope records scope edges added by edge-expand refinements, so
	// rebuilds after structural splits can try to preserve them.
	ExtraScope []ScopeEdge
	// ValueDims are the value dimensions of the extended histogram H^v
	// (paper Section 3.2), appended after the Scope count dimensions.
	// They are inserted by the value-expand refinement.
	ValueDims []*ValueDim
	// ValuedCount is the number of extent elements carrying a value
	// (maintained on rebuild; used by construction to find value-expand
	// candidates).
	ValuedCount int
}

// Config controls synopsis construction and estimation behaviour.
type Config struct {
	// InitialEdgeBuckets is the bucket budget of each node's edge histogram
	// in the coarsest synopsis.
	InitialEdgeBuckets int
	// InitialValueBuckets is the unit budget of each node's value summary
	// in the coarsest synopsis (0 disables value summaries).
	InitialValueBuckets int
	// WaveletValues selects Haar wavelet synopses instead of equi-depth
	// histograms for the per-node value summaries (the paper's "histograms
	// or wavelets").
	WaveletValues bool
	// StoreEdgeCounts stores the exact per-edge element count |u -> v| in
	// the synopsis (charged by the size model) instead of estimating
	// unstable edges by distributing |v| across v's parents. The paper's
	// XSKETCH model stores only stability bits; this option is a measured
	// design alternative (see the ablation benches).
	StoreEdgeCounts bool
	// MaxDescendantPathLen bounds the synopsis-path length used to expand
	// the '//' axis during embedding enumeration.
	MaxDescendantPathLen int
	// MaxEmbeddings bounds the number of embeddings enumerated per query
	// (safety valve for pathological synopses); 0 means no bound. When the
	// bound is hit, enumeration returns the (truncated) embeddings found so
	// far and flags the result (see EmbeddingsTruncated, EstimateResult).
	MaxEmbeddings int
	// DisableEstimatorCache turns off the per-sketch memo tables for
	// estimation sub-results (expandStep, estEdgeCount, existsFraction).
	// Estimates are identical either way; the switch exists for measuring
	// the cache's effect and as a safety valve.
	DisableEstimatorCache bool
	// PlanCacheSize bounds the number of compiled query plans the sketch
	// retains in its LRU plan cache (see EstimateQueryPlanned). 0 selects
	// DefaultPlanCacheSize; a negative value disables the plan cache, so
	// every planned call compiles afresh. Estimates are identical either
	// way.
	PlanCacheSize int
	// SizeModel prices the stored summary.
	SizeModel graphsyn.SizeModel
}

// DefaultConfig mirrors the paper's prototype: forward-only scopes over
// F-stable child edges, minimal initial budgets.
func DefaultConfig() Config {
	return Config{
		InitialEdgeBuckets:   1,
		InitialValueBuckets:  1,
		MaxDescendantPathLen: 10,
		MaxEmbeddings:        100000,
		SizeModel:            graphsyn.DefaultSizeModel(),
	}
}

// Sketch is a Twig XSKETCH synopsis. Estimation methods are safe for
// concurrent use; mutation (refinements, rebuilds) requires exclusive
// access and invalidates the estimation cache (see estcache.go).
type Sketch struct {
	Syn       *graphsyn.Synopsis
	Summaries map[graphsyn.NodeID]*NodeSummary
	Cfg       Config

	// est holds the estimation memo tables and their counters. Its zero
	// value is ready to use, so the struct-literal constructors (New,
	// FromSynopsis, Clone, Load) need no extra setup; clones start with an
	// empty cache.
	est estEngine

	// plans holds the lazily created compiled-plan cache (planner.go).
	// Like est, its zero value is ready, keeping the struct-literal
	// constructors valid; clones start with an empty plan cache.
	plans planHandle
}

// New builds the coarsest Twig XSKETCH for a document: the label split
// graph with, per node, an edge histogram over its forward-stable child
// edges (paper Section 5, initial synopsis S0) and a value histogram when
// the node's elements carry values.
func New(d *xmltree.Document, cfg Config) *Sketch {
	sk := &Sketch{
		Syn:       graphsyn.LabelSplit(d),
		Summaries: make(map[graphsyn.NodeID]*NodeSummary),
		Cfg:       cfg,
	}
	sk.RebuildAll()
	return sk
}

// FromSynopsis wraps an existing graph synopsis (used by the construction
// algorithm after structural refinements and by tests).
func FromSynopsis(s *graphsyn.Synopsis, cfg Config) *Sketch {
	sk := &Sketch{Syn: s, Summaries: make(map[graphsyn.NodeID]*NodeSummary), Cfg: cfg}
	sk.RebuildAll()
	return sk
}

// Clone returns a deep copy. Histograms are immutable and shared.
func (sk *Sketch) Clone() *Sketch {
	c := &Sketch{
		Syn:       sk.Syn.Clone(),
		Summaries: make(map[graphsyn.NodeID]*NodeSummary, len(sk.Summaries)),
		Cfg:       sk.Cfg,
	}
	for id, s := range sk.Summaries {
		cs := *s
		cs.Scope = append([]ScopeEdge(nil), s.Scope...)
		cs.ExtraScope = append([]ScopeEdge(nil), s.ExtraScope...)
		// ValueDims are immutable after construction; sharing them is safe.
		cs.ValueDims = append([]*ValueDim(nil), s.ValueDims...)
		c.Summaries[id] = &cs
	}
	return c
}

// RebuildAll recomputes every node's scope and histograms from the current
// partition, preserving per-node bucket budgets and previously expanded
// scope edges where they remain valid.
func (sk *Sketch) RebuildAll() {
	for _, n := range sk.Syn.Nodes() {
		sk.RebuildNode(n.ID)
	}
	// Drop summaries of nodes that no longer exist (IDs only grow in
	// graphsyn, so this only matters for maps carried across documents).
	for id := range sk.Summaries {
		if int(id) >= sk.Syn.NumNodes() {
			delete(sk.Summaries, id)
		}
	}
}

// RebuildNode recomputes the scope and histograms of one node. The default
// scope is the node's F-stable child edges; surviving ExtraScope edges
// (still existing and still inside TSN) are appended. Any rebuild
// invalidates the estimation cache: memoized sub-results reference the
// synopsis structure and the summaries, both of which may have changed.
func (sk *Sketch) RebuildNode(id graphsyn.NodeID) {
	if sk.Syn.Detached() {
		panic("xsketch: cannot rebuild a detached sketch (loaded without its document)")
	}
	sk.InvalidateEstimatorCache()
	s := sk.Summaries[id]
	if s == nil {
		s = &NodeSummary{
			Buckets:      sk.Cfg.InitialEdgeBuckets,
			ValueBuckets: sk.Cfg.InitialValueBuckets,
		}
		sk.Summaries[id] = s
	}
	s.Scope = sk.defaultScope(id)
	var kept []ScopeEdge
	for _, e := range s.ExtraScope {
		if sk.scopeEdgeValid(id, e) && !containsScope(s.Scope, e) {
			s.Scope = append(s.Scope, e)
			kept = append(kept, e)
		}
	}
	s.ExtraScope = kept
	var keptDims []*ValueDim
	for _, vd := range s.ValueDims {
		if sk.valueDimValid(id, vd) {
			keptDims = append(keptDims, vd)
		}
	}
	s.ValueDims = keptDims
	sk.rebuildHistograms(id, s)
}

// SetBuckets changes a node's edge-histogram bucket budget and rebuilds the
// node so the new resolution takes effect and the estimator cache is
// invalidated. It reports whether the node has a summary. Callers must not
// set NodeSummary.Buckets directly (the sketchmutate analyzer enforces
// this): a bare field write leaves the histogram and cache stale.
func (sk *Sketch) SetBuckets(id graphsyn.NodeID, buckets int) bool {
	s := sk.Summaries[id]
	if s == nil {
		return false
	}
	s.Buckets = buckets
	sk.RebuildNode(id)
	return true
}

// AddScopeEdge appends an extra scope edge to a node's summary and rebuilds
// the node, reporting whether the edge survived scope validation. Like
// SetBuckets, this is the approved route: appending to ExtraScope directly
// bypasses histogram rebuild and cache invalidation.
func (sk *Sketch) AddScopeEdge(id graphsyn.NodeID, e ScopeEdge) bool {
	s := sk.Summaries[id]
	if s == nil {
		return false
	}
	s.ExtraScope = append(s.ExtraScope, e)
	sk.RebuildNode(id)
	for _, kept := range sk.Summaries[id].ExtraScope {
		if kept == e {
			return true
		}
	}
	return false
}

// defaultScope returns the forward counts to F-stable children, the
// paper's initial-synopsis scope, in ascending child-ID order.
func (sk *Sketch) defaultScope(id graphsyn.NodeID) []ScopeEdge {
	n := sk.Syn.Node(id)
	var scope []ScopeEdge
	for _, c := range n.Children {
		if e := sk.Syn.Edge(id, c); e != nil && e.FStable {
			scope = append(scope, ScopeEdge{From: id, To: c})
		}
	}
	return scope
}

// scopeEdgeValid reports whether a scope edge may appear in node id's
// histogram: the edge must exist and lie within TSN(id) (Definition 3.1).
func (sk *Sketch) scopeEdgeValid(id graphsyn.NodeID, e ScopeEdge) bool {
	if e.From == id {
		return sk.Syn.Edge(e.From, e.To) != nil
	}
	return sk.Syn.InTSN(id, e.From, e.To)
}

// rebuildHistograms recomputes the edge and value histograms of a node from
// its extent under the current scope, value dimensions and budgets.
func (sk *Sketch) rebuildHistograms(id graphsyn.NodeID, s *NodeSummary) {
	sparse, err := sk.jointDistribution(id, s.Scope, s.ValueDims)
	if err != nil {
		// Scope invalid (should not happen after validation); degrade to an
		// empty scope rather than panicking mid-build.
		s.Scope = nil
		s.ValueDims = nil
		sparse, _ = sk.jointDistribution(id, nil, nil)
	}
	s.Hist = histogram.Compress(sparse, s.Buckets)

	s.VHist = nil
	var vals []int64
	d := sk.Syn.Doc
	for _, e := range sk.Syn.Node(id).Extent {
		if n := d.Node(e); n.HasValue {
			vals = append(vals, n.Value)
		}
	}
	s.ValuedCount = len(vals)
	if s.ValueBuckets > 0 && len(vals) > 0 {
		if sk.Cfg.WaveletValues {
			s.VHist = histogram.NewWavelet(vals, s.ValueBuckets)
		} else {
			s.VHist = histogram.NewValueHistogram(vals, s.ValueBuckets)
		}
	}
}

// EdgeDistribution computes the exact edge distribution f_id over the given
// scope: for every element of the node's extent, the vector of (a) child
// counts into each forward-scope target and (b) for backward scope edges
// (a -> z), the number of children in z of the element's unique B-stable
// ancestor in a. Frequencies are normalized fractions of the extent.
func (sk *Sketch) EdgeDistribution(id graphsyn.NodeID, scope []ScopeEdge) (*histogram.Sparse, error) {
	return sk.jointDistribution(id, scope, nil)
}

// jointDistribution extends EdgeDistribution with value dimensions: each
// element additionally contributes the bucketized value coordinates of the
// given ValueDims (0 meaning "no value"), yielding the paper's extended
// histogram H^v over counts and values jointly.
func (sk *Sketch) jointDistribution(id graphsyn.NodeID, scope []ScopeEdge, vdims []*ValueDim) (*histogram.Sparse, error) {
	n := sk.Syn.Node(id)
	d := sk.Syn.Doc
	anc := sk.Syn.BStableAncestors(id)
	ancDepth := make(map[graphsyn.NodeID]int, len(anc))
	for depth, a := range anc {
		ancDepth[a] = depth
	}
	type dimSpec struct {
		depth int // 0 = the node itself
		to    graphsyn.NodeID
	}
	specs := make([]dimSpec, len(scope))
	for i, e := range scope {
		depth, ok := ancDepth[e.From]
		if !ok {
			return nil, fmt.Errorf("xsketch: scope edge %d->%d not on the B-stable ancestor chain of node %d", e.From, e.To, id)
		}
		specs[i] = dimSpec{depth: depth, to: e.To}
	}
	dims := len(scope) + len(vdims)
	sparse := histogram.NewSparse(dims)
	coords := make([]int32, dims)
	for _, e := range n.Extent {
		for i, spec := range specs {
			anchor := e
			for k := 0; k < spec.depth; k++ {
				anchor = d.Node(anchor).Parent
				if anchor == xmltree.NilNode {
					break
				}
			}
			count := int32(0)
			if anchor != xmltree.NilNode {
				for _, c := range d.Node(anchor).Children {
					if sk.Syn.NodeOf(c) == spec.to {
						count++
					}
				}
			}
			coords[i] = count
		}
		for k, vd := range vdims {
			coords[len(scope)+k] = sk.valueCoord(e, id, vd)
		}
		sparse.Add(coords, 1)
	}
	sparse.Normalize()
	return sparse, nil
}

// Summary returns the stored summary of a node (never nil after
// construction).
func (sk *Sketch) Summary(id graphsyn.NodeID) *NodeSummary { return sk.Summaries[id] }

// Document returns the source document the synopsis summarizes, or nil
// for detached sketches (loaded from a standalone catalog), which carry
// only a structural stub — consumers needing exact ground truth (the
// accuracy auditor) must treat those as unauditable online.
func (sk *Sketch) Document() *xmltree.Document {
	if sk.Syn == nil || sk.Syn.Detached() {
		return nil
	}
	return sk.Syn.Doc
}

// SizeBytes prices the stored synopsis under the size model: structural
// summary + per-node scope descriptors and histogram buckets + value
// histogram buckets (each value bucket charged as two bounds plus a count).
func (sk *Sketch) SizeBytes() int {
	m := sk.Cfg.SizeModel
	total := m.StructureBytes(sk.Syn)
	if sk.Cfg.StoreEdgeCounts {
		// One stored count per edge.
		total += sk.Syn.NumEdges() * m.BucketFreqBytes
	}
	for _, s := range sk.Summaries {
		total += len(s.Scope) * m.BucketDimBytes // scope edge references
		for _, vd := range s.ValueDims {
			// A value dimension stores its source reference and bin bounds.
			total += m.BucketDimBytes + len(vd.Bounds)*m.BucketDimBytes
		}
		if s.Hist != nil {
			total += s.Hist.NumBuckets() * m.BucketBytes(len(s.Scope)+len(s.ValueDims))
		}
		if s.VHist != nil {
			total += s.VHist.SizeUnits() * (2*m.BucketDimBytes + m.BucketFreqBytes)
		}
	}
	return total
}

// Validate cross-checks the synopsis invariants plus summary consistency:
// every node has a summary, every scope edge is valid, and histogram
// dimensionalities match scope sizes.
func (sk *Sketch) Validate() error {
	if err := sk.Syn.Validate(); err != nil {
		return err
	}
	for _, n := range sk.Syn.Nodes() {
		s := sk.Summaries[n.ID]
		if s == nil {
			return fmt.Errorf("xsketch: node %d lacks a summary", n.ID)
		}
		for _, e := range s.Scope {
			if !sk.scopeEdgeValid(n.ID, e) {
				return fmt.Errorf("xsketch: node %d scope edge %d->%d invalid", n.ID, e.From, e.To)
			}
		}
		for _, vd := range s.ValueDims {
			if !sk.valueDimValid(n.ID, vd) {
				return fmt.Errorf("xsketch: node %d value dim %s invalid", n.ID, vd)
			}
		}
		if s.Hist == nil {
			return fmt.Errorf("xsketch: node %d lacks an edge histogram", n.ID)
		}
		if want := len(s.Scope) + len(s.ValueDims); s.Hist.Dims() != want {
			return fmt.Errorf("xsketch: node %d histogram dims %d != scope+vdims %d", n.ID, s.Hist.Dims(), want)
		}
	}
	return nil
}

// String summarizes the sketch for diagnostics.
func (sk *Sketch) String() string {
	return fmt.Sprintf("xsketch{%s, %d bytes}", sk.Syn, sk.SizeBytes())
}

// scopeIndex returns the index of edge within scope, or -1.
func scopeIndex(scope []ScopeEdge, e ScopeEdge) int {
	for i, s := range scope {
		if s == e {
			return i
		}
	}
	return -1
}

func containsScope(scope []ScopeEdge, e ScopeEdge) bool { return scopeIndex(scope, e) >= 0 }

package xsketch

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xsketch/internal/trace"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

var traceTestQueries = []string{
	"t0 in author, t1 in t0//title, t2 in t0/name",
	"t0 in author, t1 in t0/paper, t2 in t1/title, t3 in t0/name",
	"t0 in //paper[/year=1], t1 in t0/title",
	"t0 in author[/name=2], t1 in t0/paper",
	"t0 in bib, t1 in t0/author",
}

// TestTracedBitIdentical asserts the tentpole invariant: estimating with a
// recorder attached produces bit-for-bit the same float as the untraced
// path, for every query shape the fixture exercises (factorized,
// enumerated, branch-predicated, root-self).
func TestTracedBitIdentical(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	for _, qs := range traceTestQueries {
		q := twig.MustParse(qs)
		want := sk.EstimateQuery(q)
		rec := trace.NewRecorder(trace.Options{})
		got, err := sk.EstimateQueryTraced(context.Background(), q, rec)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if math.Float64bits(got.Estimate) != math.Float64bits(want) {
			t.Fatalf("%s: traced %v != untraced %v", qs, got.Estimate, want)
		}
		tr := rec.Trace()
		if tr.Estimate != got.Estimate {
			t.Fatalf("%s: trace estimate %v != result %v", qs, tr.Estimate, got.Estimate)
		}
		sum := 0.0
		for _, em := range tr.Embeddings {
			sum += em.Estimate
		}
		if math.Float64bits(sum) != math.Float64bits(got.Estimate) {
			t.Fatalf("%s: embedding sum %v != estimate %v", qs, sum, got.Estimate)
		}
	}
}

// TestTracingDisabledZeroAllocs asserts the other half of the tentpole
// invariant: running the traced entry point with a nil recorder allocates
// exactly as much as the plain estimation path — the hooks reduce to nil
// checks.
func TestTracingDisabledZeroAllocs(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	q := twig.MustParse("t0 in author, t1 in t0/paper, t2 in t1/title")
	ctx := context.Background()
	sk.EstimateQuery(q) // warm the estimator cache so both runs hit
	plain := testing.AllocsPerRun(200, func() { sk.EstimateQuery(q) })
	nilTraced := testing.AllocsPerRun(200, func() {
		if _, err := sk.EstimateQueryTraced(ctx, q, nil); err != nil {
			t.Fatal(err)
		}
	})
	if nilTraced != plain {
		t.Fatalf("nil-recorder estimation allocates %v/op vs %v/op untraced", nilTraced, plain)
	}
}

// TestTracedConcurrentBitIdentical runs traced estimates from many
// goroutines against one sketch (meaningful under -race): every estimate
// must equal the sequential value regardless of cache interleavings, and
// every recorder must capture a complete trace.
func TestTracedConcurrentBitIdentical(t *testing.T) {
	sk := New(xmltree.Bibliography(), exactConfig())
	q := twig.MustParse("t0 in author, t1 in t0//title, t2 in t0/name")
	want := sk.EstimateQuery(q)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := trace.NewRecorder(trace.Options{})
			got, err := sk.EstimateQueryTraced(context.Background(), q, rec)
			if err != nil {
				errs <- err
				return
			}
			if math.Float64bits(got.Estimate) != math.Float64bits(want) {
				t.Errorf("concurrent traced estimate %v != %v", got.Estimate, want)
			}
			if len(rec.Trace().Embeddings) == 0 {
				t.Error("concurrent trace has no embeddings")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTracedTruncationEvent asserts the MaxEmbeddings soft floor is
// surfaced as a trace event exactly when the result reports truncation.
func TestTracedTruncationEvent(t *testing.T) {
	cfg := exactConfig()
	cfg.MaxEmbeddings = 1
	sk := New(xmltree.Bibliography(), cfg)
	q := twig.MustParse("t0 in author, t1 in t0//title")
	rec := trace.NewRecorder(trace.Options{})
	res, err := sk.EstimateQueryTraced(context.Background(), q, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation with MaxEmbeddings=1")
	}
	tr := rec.Trace()
	if !tr.Truncated {
		t.Fatal("trace did not record truncation")
	}
	found := false
	for _, e := range tr.Events {
		if e.Kind == trace.EventMaxEmbeddings {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s event in %+v", trace.EventMaxEmbeddings, tr.Events)
	}
}

// TestTracedCacheOutcomes asserts per-term cache attribution: a cold
// sketch's first trace records misses, a second identical run records hits
// on the memoized terms, and a cache-disabled sketch records "off".
func TestTracedCacheOutcomes(t *testing.T) {
	outcomes := func(sk *Sketch) map[string]bool {
		q := twig.MustParse("t0 in author, t1 in t0//title, t2 in t0/name")
		rec := trace.NewRecorder(trace.Options{})
		if _, err := sk.EstimateQueryTraced(context.Background(), q, rec); err != nil {
			t.Fatal(err)
		}
		seen := map[string]bool{}
		for _, e := range rec.Trace().Events {
			if e.Cache != "" {
				seen[e.Cache] = true
			}
		}
		var scan func(n *trace.Node)
		scan = func(n *trace.Node) {
			if n == nil {
				return
			}
			for _, tm := range n.Terms {
				if tm.Cache != "" {
					seen[tm.Cache] = true
				}
			}
			for _, c := range n.Children {
				scan(c)
			}
		}
		for _, em := range rec.Trace().Embeddings {
			scan(em.Root)
		}
		return seen
	}

	sk := New(xmltree.Bibliography(), exactConfig())
	first := outcomes(sk)
	if !first[trace.CacheMiss] {
		t.Fatalf("cold run saw no cache misses: %v", first)
	}
	second := outcomes(sk)
	if !second[trace.CacheHit] {
		t.Fatalf("warm run saw no cache hits: %v", second)
	}

	cfg := exactConfig()
	cfg.DisableEstimatorCache = true
	off := outcomes(New(xmltree.Bibliography(), cfg))
	if off[trace.CacheHit] || off[trace.CacheMiss] {
		t.Fatalf("cache-disabled run saw hit/miss outcomes: %v", off)
	}
	if !off[trace.CacheOff] {
		t.Fatalf("cache-disabled run recorded no off outcomes: %v", off)
	}
}

// TestExplainGoldenJSON pins the Explanation v2 JSON for a fixed query
// over the Bibliography fixture. Each run builds a fresh sketch so the
// recorded cache outcomes (cold cache: all misses, then hits) are
// reproducible; two in-process runs must be byte-identical, and the bytes
// must match the checked-in golden file. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/xsketch -run TestExplainGoldenJSON.
func TestExplainGoldenJSON(t *testing.T) {
	render := func() []byte {
		sk := New(xmltree.Bibliography(), exactConfig())
		q := twig.MustParse("t0 in author, t1 in t0//title, t2 in t0/name")
		b, err := sk.ExplainQuery(q).MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("explanation JSON differs across identical runs:\n%s\nvs\n%s", a, b)
	}
	golden := filepath.Join("testdata", "explain_bib.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("explanation JSON deviates from golden file %s:\ngot:\n%s\nwant:\n%s", golden, a, want)
	}
}

package xsketch

import (
	"math"
	"testing"

	"xsketch/internal/eval"
	"xsketch/internal/pathexpr"
	"xsketch/internal/twig"
	"xsketch/internal/xmltree"
)

// typedDoc builds a document with a strong value/count correlation: movies
// with type 0 have 10 actors, movies with type 9 have 1 actor.
func typedDoc() *xmltree.Document {
	d := xmltree.NewDocument("db")
	addMovie := func(genre int64, actors int) {
		m := d.AddChild(d.Root(), "movie")
		d.AddValueChild(m, "type", genre)
		for i := 0; i < actors; i++ {
			d.AddChild(m, "actor")
		}
	}
	for i := 0; i < 5; i++ {
		addMovie(0, 10)
	}
	for i := 0; i < 5; i++ {
		addMovie(9, 1)
	}
	return d
}

func TestValueDimBinning(t *testing.T) {
	vd := &ValueDim{Source: 0, Lo: 0, Bounds: []int64{4, 9}, Los: []int64{0, 5}}
	if vd.bins() != 2 {
		t.Fatalf("bins = %d", vd.bins())
	}
	if got := vd.binOf(0); got != 1 {
		t.Fatalf("binOf(0) = %d", got)
	}
	if got := vd.binOf(4); got != 1 {
		t.Fatalf("binOf(4) = %d", got)
	}
	if got := vd.binOf(5); got != 2 {
		t.Fatalf("binOf(5) = %d", got)
	}
	if got := vd.binOf(100); got != 2 {
		t.Fatalf("binOf(100) clamps to %d", got)
	}
	lo, hi := vd.binRange(1)
	if lo != 0 || hi != 4 {
		t.Fatalf("binRange(1) = %d..%d", lo, hi)
	}
	lo, hi = vd.binRange(2)
	if lo != 5 || hi != 9 {
		t.Fatalf("binRange(2) = %d..%d", lo, hi)
	}
}

func TestValueDimOverlap(t *testing.T) {
	vd := &ValueDim{Source: 0, Lo: 0, Bounds: []int64{9}, Los: []int64{0}}
	pred := &pathexpr.ValuePred{Lo: 0, Hi: 4}
	if got := vd.overlap(1, pred); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("overlap = %v, want 0.5", got)
	}
	if got := vd.overlap(0, pred); got != 0 {
		t.Fatalf("missing-value overlap = %v", got)
	}
	if got := vd.overlap(1, &pathexpr.ValuePred{Lo: 100, Hi: 200}); got != 0 {
		t.Fatalf("disjoint overlap = %v", got)
	}
	if got := vd.overlap(1, &pathexpr.ValuePred{Lo: -10, Hi: 100}); got != 1 {
		t.Fatalf("containing overlap = %v", got)
	}
}

func TestAddValueDimRebuildsJoint(t *testing.T) {
	d := typedDoc()
	sk := New(d, exactConfig())
	movie := synNode(t, sk, "movie")
	typ := synNode(t, sk, "type")
	if !sk.AddValueDim(movie, typ, 4) {
		t.Fatal("AddValueDim failed")
	}
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := sk.Summary(movie)
	if len(s.ValueDims) != 1 {
		t.Fatalf("ValueDims = %d", len(s.ValueDims))
	}
	if s.Hist.Dims() != len(s.Scope)+1 {
		t.Fatalf("hist dims = %d, scope %d", s.Hist.Dims(), len(s.Scope))
	}
	// Adding the same source again is rejected.
	if sk.AddValueDim(movie, typ, 4) {
		t.Fatal("duplicate AddValueDim accepted")
	}
	// A valueless source is rejected.
	actor := synNode(t, sk, "actor")
	if sk.AddValueDim(movie, actor, 4) {
		t.Fatal("AddValueDim accepted valueless source")
	}
	// A non-child source is rejected.
	if sk.AddValueDim(actor, typ, 4) {
		t.Fatal("AddValueDim accepted non-child source")
	}
}

func TestValueDimCapturesCorrelation(t *testing.T) {
	// The headline use: //movie[/type=X]/actor with genre-correlated cast
	// sizes. Without the value dimension the estimate uses the independent
	// value fraction times the average cast; with it, the genre-specific
	// cast size.
	d := typedDoc()
	ev := eval.New(d)
	qAction := twig.MustParse("t0 in movie[type=0], t1 in t0/actor")
	qDoc := twig.MustParse("t0 in movie[type=9], t1 in t0/actor")

	plain := New(d, exactConfig())
	// Independent estimate: P(type=0) = 0.5, E[actors] = 5.5 ->
	// 10 * 0.5 * 5.5 = 27.5 for both genres.
	approx(t, plain.EstimateQuery(qAction), 27.5, 1e-9, "independent action")
	approx(t, plain.EstimateQuery(qDoc), 27.5, 1e-9, "independent documentary")

	joint := New(d, exactConfig())
	movie := synNode(t, joint, "movie")
	typ := synNode(t, joint, "type")
	if !joint.AddValueDim(movie, typ, 8) {
		t.Fatal("AddValueDim failed")
	}
	// Correlated: type=0 movies have 10 actors -> 5 * 10 = 50; type=9
	// movies have 1 actor -> 5 * 1 = 5. Exact joint buckets give exact
	// answers here.
	approx(t, joint.EstimateQuery(qAction), float64(ev.Selectivity(qAction)), 1e-6, "joint action")
	approx(t, joint.EstimateQuery(qDoc), float64(ev.Selectivity(qDoc)), 1e-6, "joint documentary")
	if truth := ev.Selectivity(qAction); truth != 50 {
		t.Fatalf("truth action = %d", truth)
	}
}

func TestValueDimSelfValue(t *testing.T) {
	// A value dimension on the node's own values: years correlated with
	// keyword counts (papers after 2000 have 3 keywords, before: 1).
	d := xmltree.NewDocument("bib")
	addPaper := func(year int64, keywords int) {
		p := d.AddChild(d.Root(), "paper")
		d.SetValue(p, year) // the paper element itself carries the year
		for i := 0; i < keywords; i++ {
			d.AddChild(p, "keyword")
		}
	}
	for i := 0; i < 4; i++ {
		addPaper(1990, 1)
	}
	for i := 0; i < 4; i++ {
		addPaper(2001, 3)
	}
	sk := New(d, exactConfig())
	paper := synNode(t, sk, "paper")
	if !sk.AddValueDim(paper, paper, 8) {
		t.Fatal("AddValueDim(self) failed")
	}
	q := twig.MustParse("t0 in paper[>2000], t1 in t0/keyword")
	truth := eval.New(d).Selectivity(q)
	if truth != 12 {
		t.Fatalf("truth = %d", truth)
	}
	approx(t, sk.EstimateQuery(q), 12, 1e-6, "self value dim")
	// Without the dimension: 8 * 0.5 * E[k]=2 = 8.
	plain := New(d, exactConfig())
	approx(t, plain.EstimateQuery(q), 8, 1e-9, "independent self value")
}

func TestValueDimCoveredChildPredicate(t *testing.T) {
	// The child itself is part of the twig (not just a branch): movie with
	// its type element bound and predicated.
	d := typedDoc()
	sk := New(d, exactConfig())
	movie := synNode(t, sk, "movie")
	typ := synNode(t, sk, "type")
	if !sk.AddValueDim(movie, typ, 8) {
		t.Fatal("AddValueDim failed")
	}
	q := twig.MustParse("t0 in movie, t1 in t0/type[=0], t2 in t0/actor")
	truth := eval.New(d).Selectivity(q) // 5 movies * 1 type * 10 actors
	if truth != 50 {
		t.Fatalf("truth = %d", truth)
	}
	approx(t, sk.EstimateQuery(q), 50, 1e-6, "covered child value dim")
}

func TestValueDimSurvivesUnrelatedSplit(t *testing.T) {
	d := typedDoc()
	sk := New(d, exactConfig())
	movie := synNode(t, sk, "movie")
	typ := synNode(t, sk, "type")
	if !sk.AddValueDim(movie, typ, 4) {
		t.Fatal("AddValueDim failed")
	}
	// Splitting an unrelated node keeps the dimension valid.
	actor := synNode(t, sk, "actor")
	_, _ = sk.Syn.Split(actor, func(e xmltree.NodeID) bool { return int(e)%2 == 0 })
	sk.RebuildAll()
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate after split: %v", err)
	}
	if len(sk.Summary(movie).ValueDims) != 1 {
		t.Fatal("value dim dropped by unrelated split")
	}
}

func TestValueDimString(t *testing.T) {
	vd := &ValueDim{Source: 3, Lo: 1, Bounds: []int64{5, 9}, Los: []int64{1, 6}}
	if vd.String() == "" {
		t.Fatal("empty String")
	}
}

func TestWaveletValueSummaries(t *testing.T) {
	cfg := exactConfig()
	cfg.WaveletValues = true
	sk := New(xmltree.Bibliography(), cfg)
	if err := sk.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The wavelet-backed value summary answers the paper's year predicate.
	q := twig.MustParse("t0 in author/paper/year[>2000]")
	got := sk.EstimateQuery(q)
	if math.Abs(got-2) > 0.6 {
		t.Fatalf("wavelet year>2000 = %v, want ~2", got)
	}
}

// TestValueDimOverlapOverflowedSpan is the divguard regression: a bin
// spanning the full int64 range makes hi-lo+1 overflow to zero, and the
// quotient in overlap must come out 0, never NaN (pre-fix it was 0/0).
func TestValueDimOverlapOverflowedSpan(t *testing.T) {
	vd := &ValueDim{
		Source: 0,
		Lo:     math.MinInt64,
		Bounds: []int64{math.MaxInt64},
		Los:    []int64{math.MinInt64},
	}
	pred := pathexpr.AnyValue()
	got := vd.overlap(1, &pred)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("overlap on overflowed span = %v, want finite", got)
	}
	if got != 0 {
		t.Fatalf("overlap on degenerate span = %v, want 0", got)
	}
}

// TestValueDimValidRejectsCorruptShapes pins the strengthened shape checks:
// a dimension arriving from a corrupt serialized sketch with mismatched or
// inverted bins must be rejected before binRange/overlap can see it.
func TestValueDimValidRejectsCorruptShapes(t *testing.T) {
	d := typedDoc()
	sk := New(d, DefaultConfig())
	tag, ok := d.LookupTag("type")
	if !ok {
		t.Fatal("no type tag")
	}
	ids := sk.Syn.NodesByTag(tag)
	if len(ids) == 0 {
		t.Fatal("no type nodes")
	}
	id := ids[0]

	valid := &ValueDim{Source: id, Lo: 0, Bounds: []int64{4, 9}, Los: []int64{0, 5}}
	if !sk.valueDimValid(id, valid) {
		t.Fatal("well-formed dimension rejected")
	}
	corrupt := []*ValueDim{
		{Source: id, Bounds: []int64{4, 9}, Los: []int64{0}},    // length mismatch
		{Source: id, Bounds: []int64{1}, Los: []int64{5}},       // inverted bin
		{Source: id, Bounds: []int64{4, 4}, Los: []int64{0, 4}}, // non-increasing bounds
		{Source: id, Bounds: []int64{9, 4}, Los: []int64{0, 0}}, // decreasing bounds
	}
	for i, vd := range corrupt {
		if sk.valueDimValid(id, vd) {
			t.Errorf("corrupt dimension %d accepted: %+v", i, vd)
		}
	}
}
